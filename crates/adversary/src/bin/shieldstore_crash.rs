//! `shieldstore_crash`: kill-point crash-recovery matrix.
//!
//! For every (seed, kill-point, policy) cell the harness re-spawns
//! itself as a child process that writes keys through a WAL-attached
//! store with the crash fuse armed: the n-th durability-critical I/O
//! boundary reached — torn frame write, post-write, post-fsync,
//! post-pin, post-counter — calls `abort(2)`, killing the process for
//! real mid-commit. The child appends one line to an `O_APPEND`
//! progress file after each *acknowledged* write, so the parent knows
//! exactly how many operations the store confirmed before dying.
//!
//! The parent then recovers from the on-disk snapshot-less WAL and
//! checks the replayed state against the progress count `P`:
//!
//! * `Strict` — every acknowledged op was committed first: the
//!   recovered count must be `P` or `P + 1` (the in-flight op may or
//!   may not have reached the log before the abort).
//! * `EveryN(4)` — only whole groups are durable: the recovered count
//!   must be a multiple of 4 within `[P - 3, P + 1]`.
//! * `snapshot` — strict writes, but the fuse is armed right before a
//!   mid-run snapshot (blocking or background by seed parity), so the
//!   kill points land inside the two-phase log-rotation protocol
//!   instead of the plain write path. Recovery uses the snapshot when
//!   its rename became durable and the bare WAL otherwise; the strict
//!   window applies either way.
//! * `expiry` — strict writes where every op carries an absolute TTL
//!   deadline: even steps get a far-future deadline (live), odd steps
//!   a near one (doomed). The child runs on a frozen clock and the
//!   parent recovers on a later frozen clock positioned *between* the
//!   two deadlines, so the crash always lands with expiries in flight.
//!   Recovery must neither resurrect a doomed entry (every doomed key
//!   reads as absent, and the sweep reaps exactly the replayed doomed
//!   population) nor early-expire a live one (every acknowledged live
//!   key is served byte-exact). Absolute deadlines keep the cell
//!   immune to wall-clock skew between the two processes.
//! * `storage` — strict writes through a fault-injecting filesystem:
//!   instead of an abort fuse, the kill-point picks the n-th durable
//!   I/O call that *fails* (EIO, ENOSPC, short write, or a lying
//!   fsync, by seed). The child checks the writer poisons — the first
//!   `StorageFailed` makes every later write answer the same — then
//!   simulates power loss and exits. Recovery must yield exactly the
//!   acknowledged prefix: a record whose sync failed or never ran
//!   cannot survive the cut.
//!
//! In every case each recovered value must be byte-exact and no
//! phantom keys may appear.
//!
//! ```text
//! shieldstore_crash [--seeds N] [--start S0] [--kill-points K] [--ops M]
//! ```
//!
//! Exit status is non-zero iff any cell recovered outside its policy
//! window.

use sgx_sim::counter::PersistentCounter;
use sgx_sim::enclave::{Enclave, EnclaveBuilder};
use sgx_sim::storage::{FaultFs, FaultKind, FaultOp, FaultSpec, StorageFs};
use shieldstore::{ttl, Config, DurabilityPolicy, Error, ShieldStore};
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Storage-mode fault sites, cycled by seed: the commit path's log
/// append and its fsync, failing every way a disk can.
const STORAGE_SITES: &[(FaultOp, &str, FaultKind)] = &[
    (FaultOp::Write, "wal-", FaultKind::Enospc),
    (FaultOp::Write, "wal-", FaultKind::ShortWrite),
    (FaultOp::Write, "wal-", FaultKind::Eio),
    (FaultOp::SyncData, "wal-", FaultKind::SyncFail),
    (FaultOp::SyncData, "wal-", FaultKind::Eio),
];

/// Frozen "wall clock" the expiry-mode child writes under. An absolute
/// anchor (not `now`) so child and parent agree without sharing state.
const EXPIRY_BASE_NS: u64 = 1_800_000_000_000_000_000;
/// Live entries expire two hours after the anchor.
const LIVE_DEADLINE_NS: u64 = EXPIRY_BASE_NS + 7_200_000_000_000;
/// Doomed entries expire one hour after the anchor.
const DOOMED_DEADLINE_NS: u64 = EXPIRY_BASE_NS + 3_600_000_000_000;
/// The parent recovers ninety minutes in: doomed are past due, live
/// have half an hour left.
const RECOVERY_CLOCK_NS: u64 = EXPIRY_BASE_NS + 5_400_000_000_000;

const ROLE_ENV: &str = "SHIELDSTORE_CRASH_ROLE";
const DIR_ENV: &str = "SHIELDSTORE_CRASH_DIR";
const SEED_ENV: &str = "SHIELDSTORE_CRASH_SEED";
const FUSE_ENV: &str = "SHIELDSTORE_CRASH_FUSE";
const POLICY_ENV: &str = "SHIELDSTORE_CRASH_POLICY";
const OPS_ENV: &str = "SHIELDSTORE_CRASH_OPS";

fn enclave(seed: u64) -> Arc<Enclave> {
    EnclaveBuilder::new("crash-matrix").seed(seed).epc_bytes(8 << 20).build()
}

fn config(policy: DurabilityPolicy) -> Config {
    Config::shield_opt().buckets(64).mac_hashes(16).with_shards(2).with_durability(policy)
}

fn policy_from_tag(tag: &str) -> DurabilityPolicy {
    match tag {
        // `snapshot` writes strictly and cuts a mid-run snapshot with the
        // fuse armed, so kill points land inside the log-rotation
        // protocol (rotate_begin pin, rotate_commit pin, and the commits
        // that follow) instead of the plain write path.
        // `expiry` writes strictly too, but every op carries an
        // absolute deadline so the kill points land with expiries in
        // flight on the WAL.
        // `storage` writes strictly through a fault-injecting
        // filesystem; the kill point is the n-th durable I/O call that
        // fails instead of the n-th crash-fuse boundary.
        "strict" | "snapshot" | "expiry" | "storage" => DurabilityPolicy::Strict,
        "group4" => DurabilityPolicy::EveryN(4),
        other => panic!("unknown policy tag {other:?}"),
    }
}

fn key_bytes(step: u64) -> Vec<u8> {
    format!("crash-key-{step:03}").into_bytes()
}

fn value_bytes(seed: u64, step: u64) -> Vec<u8> {
    format!("crash-val-{seed}-{step}").into_bytes()
}

fn main() {
    if std::env::var(ROLE_ENV).as_deref() == Ok("child") {
        run_child();
        return;
    }
    run_parent();
}

// ---------------------------------------------------------------------
// Child: write until the armed fuse aborts the process
// ---------------------------------------------------------------------

fn env_u64(name: &str) -> u64 {
    std::env::var(name)
        .unwrap_or_else(|_| panic!("{name} not set"))
        .parse()
        .unwrap_or_else(|_| panic!("{name} not numeric"))
}

fn run_child() {
    let dir = PathBuf::from(std::env::var(DIR_ENV).expect("crash dir"));
    let seed = env_u64(SEED_ENV);
    let fuse = env_u64(FUSE_ENV) as i64;
    let ops = env_u64(OPS_ENV);
    let tag = std::env::var(POLICY_ENV).expect("policy tag");
    let snapshot_mode = tag == "snapshot";
    let expiry_mode = tag == "expiry";
    if tag == "storage" {
        run_storage_child(&dir, seed, fuse as u64, ops);
        return;
    }
    let policy = policy_from_tag(&tag);

    let mut progress = std::fs::OpenOptions::new()
        .append(true)
        .create(true)
        .open(dir.join("progress"))
        .expect("progress file");

    // In snapshot mode the fuse is armed right before the mid-run
    // snapshot, so every kill point exercises the rotation protocol;
    // otherwise arm before attaching so kill points inside WAL creation
    // (the first pin write) are part of the matrix too.
    if expiry_mode {
        // Write under a frozen clock anchored at an absolute time the
        // parent also knows, so deadlines mean the same thing in both
        // processes regardless of the real wall clock.
        ttl::freeze(EXPIRY_BASE_NS);
    }
    if !snapshot_mode {
        shieldstore::wal::crash::arm(fuse);
    }
    let store = ShieldStore::new(enclave(seed), config(policy)).expect("store");
    store.attach_wal(dir.join("wal")).expect("attach wal");
    let snap_at = ops / 2;
    for step in 0..ops {
        if snapshot_mode && step == snap_at {
            shieldstore::wal::crash::arm(fuse);
            let counter = PersistentCounter::open(dir.join("snapctr")).expect("snapshot counter");
            let snap = dir.join("snap.db");
            if seed.is_multiple_of(2) {
                store.snapshot_blocking(&snap, &counter).expect("blocking snapshot");
            } else {
                let job = store.snapshot_background(&snap, &counter).expect("start snapshot");
                job.finish().expect("finish snapshot");
            }
        }
        // The ack line goes to disk only after the set returned:
        // anything recorded was confirmed to the (hypothetical) client.
        if expiry_mode {
            let (deadline, marker) = if step.is_multiple_of(2) {
                (LIVE_DEADLINE_NS, b"L\n".as_slice())
            } else {
                (DOOMED_DEADLINE_NS, b"D\n".as_slice())
            };
            store
                .set_with_expiry(0, &key_bytes(step), &value_bytes(seed, step), deadline)
                .expect("acknowledged set");
            progress.write_all(marker).expect("progress write");
        } else {
            store.set(&key_bytes(step), &value_bytes(seed, step)).expect("acknowledged set");
            progress.write_all(b"+\n").expect("progress write");
        }
    }
    // Fuse outlasted the run: finish cleanly so the parent can check
    // full recovery instead.
    shieldstore::wal::crash::disarm();
    store.flush_wal().expect("final flush");
}

/// Storage-mode child: the `kill`-th matching durable I/O call fails
/// (site by seed), the writer must poison fail-closed, and the run ends
/// in a simulated power cut. Exits non-zero iff the fault fired.
fn run_storage_child(dir: &Path, seed: u64, kill: u64, ops: u64) {
    let ffs = Arc::new(FaultFs::new());
    let store = ShieldStore::new_with_storage(
        enclave(seed),
        config(DurabilityPolicy::Strict),
        Arc::clone(&ffs) as Arc<dyn StorageFs>,
    )
    .expect("store");
    store.attach_wal(dir.join("wal")).expect("attach wal");

    let mut progress = std::fs::OpenOptions::new()
        .append(true)
        .create(true)
        .open(dir.join("progress"))
        .expect("progress file");

    let (op, path, kind) = STORAGE_SITES[(seed as usize) % STORAGE_SITES.len()];
    ffs.inject(FaultSpec { op, path_substr: path.into(), nth: kill, kind });

    for step in 0..ops {
        match store.set(&key_bytes(step), &value_bytes(seed, step)) {
            Ok(()) => progress.write_all(b"+\n").expect("progress write"),
            Err(Error::StorageFailed) => {
                // Fail-closed: the poisoned writer refuses every later
                // mutation while reads keep serving the acked prefix.
                assert!(
                    matches!(store.set(b"poisoned-probe", b"x"), Err(Error::StorageFailed)),
                    "writer accepted a mutation after poisoning"
                );
                if step > 0 {
                    store.get(&key_bytes(step - 1)).expect("acked read under poison");
                }
                ffs.power_cut().expect("power cut");
                std::process::exit(3);
            }
            Err(e) => panic!("unexpected set error: {e:?}"),
        }
    }
    // The fault never fired (kill point past the run): finish cleanly.
    ffs.clear_faults();
    store.flush_wal().expect("final flush");
}

// ---------------------------------------------------------------------
// Parent: spawn the matrix, recover each cell, check the window
// ---------------------------------------------------------------------

struct Args {
    start: u64,
    seeds: u64,
    kill_points: u64,
    ops: u64,
}

fn parse_args() -> Args {
    let mut args = Args { start: 0, seeds: 4, kill_points: 12, ops: 48 };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| -> u64 {
            it.next()
                .and_then(|v| v.parse().ok())
                .unwrap_or_else(|| panic!("{name} needs a numeric argument"))
        };
        match flag.as_str() {
            "--seeds" => args.seeds = value("--seeds"),
            "--start" => args.start = value("--start"),
            "--kill-points" => args.kill_points = value("--kill-points"),
            "--ops" => args.ops = value("--ops"),
            "--help" | "-h" => {
                println!(
                    "usage: shieldstore_crash [--seeds N] [--start S0] [--kill-points K] [--ops M]"
                );
                std::process::exit(0);
            }
            other => {
                eprintln!("unknown flag {other:?}; try --help");
                std::process::exit(2);
            }
        }
    }
    args
}

fn run_parent() {
    let args = parse_args();
    let exe = std::env::current_exe().expect("own executable path");
    let mut cells = 0u64;
    let mut crashes = 0u64;
    let mut clean_runs = 0u64;
    let mut failures: Vec<String> = Vec::new();

    for seed in args.start..args.start + args.seeds {
        for kill in 1..=args.kill_points {
            for tag in ["strict", "group4", "snapshot", "expiry", "storage"] {
                cells += 1;
                let dir = std::env::temp_dir()
                    .join(format!("ss-crash-{}-{seed}-{kill}-{tag}", std::process::id()));
                std::fs::remove_dir_all(&dir).ok();
                std::fs::create_dir_all(&dir).expect("cell dir");
                let status = std::process::Command::new(&exe)
                    .env(ROLE_ENV, "child")
                    .env(DIR_ENV, &dir)
                    .env(SEED_ENV, seed.to_string())
                    .env(FUSE_ENV, kill.to_string())
                    .env(POLICY_ENV, tag)
                    .env(OPS_ENV, args.ops.to_string())
                    .status()
                    .expect("spawn child");
                if status.success() {
                    clean_runs += 1;
                } else {
                    crashes += 1;
                }
                if let Err(why) = check_cell(seed, tag, &dir, args.ops, status.success()) {
                    failures.push(format!("seed={seed} kill={kill} policy={tag}: {why}"));
                    println!("FAIL seed={seed} kill={kill} policy={tag}");
                    println!("  {why}");
                }
                std::fs::remove_dir_all(&dir).ok();
            }
        }
    }

    println!(
        "crash-matrix: {cells} cells ({} seeds x {} kill-points x 5 modes), \
         {crashes} aborted mid-commit, {clean_runs} ran to completion, {}",
        args.seeds,
        args.kill_points,
        if failures.is_empty() {
            "every recovery inside its policy window".to_string()
        } else {
            format!("{} WINDOW VIOLATIONS", failures.len())
        },
    );
    if !failures.is_empty() {
        std::process::exit(1);
    }
}

/// Recovers one cell's WAL and checks the replayed state against the
/// acknowledged-progress count.
fn check_cell(seed: u64, tag: &str, dir: &Path, ops: u64, clean_exit: bool) -> Result<(), String> {
    if tag == "expiry" {
        // Recover on a frozen clock between the two deadline classes,
        // and always thaw so later cells see real time again.
        ttl::freeze(RECOVERY_CLOCK_NS);
        let verdict = check_expiry_cell(seed, dir, ops, clean_exit);
        ttl::thaw();
        return verdict;
    }
    let acked = std::fs::read(dir.join("progress"))
        .map(|b| b.iter().filter(|&&c| c == b'\n').count() as u64)
        .unwrap_or(0);
    if tag == "storage" {
        return check_storage_cell(seed, dir, ops, clean_exit, acked);
    }
    let policy = policy_from_tag(tag);
    let counter = PersistentCounter::open(dir.join("snapctr"))
        .map_err(|e| format!("snapshot counter: {e}"))?;
    // Snapshot-mode cells restore from the snapshot when the child got
    // far enough to durably rename one; a crash before the rename must
    // still recover everything from the WAL alone.
    let snap_path = dir.join("snap.db");
    let snapshot = snap_path.exists().then_some(snap_path);
    let store = ShieldStore::recover(
        enclave(seed),
        config(policy),
        snapshot.as_deref(),
        &counter,
        dir.join("wal"),
    )
    .map_err(|e| format!("recovery failed: {e:?} (acked={acked})"))?;
    let recovered = store.len() as u64;

    let in_window = if clean_exit {
        // The fuse never fired and the child flushed: nothing may be lost.
        acked == ops && recovered == ops
    } else {
        match policy {
            // Strict commits before acking; only the in-flight op is open.
            DurabilityPolicy::Strict => recovered == acked || recovered == acked + 1,
            // Group commit: whole groups only, within the buffered window.
            DurabilityPolicy::EveryN(n) => {
                let n = n as u64;
                recovered.is_multiple_of(n) && recovered + n > acked && recovered <= acked + 1
            }
            _ => unreachable!("matrix only runs strict/group4/snapshot"),
        }
    };
    if !in_window {
        return Err(format!(
            "recovered {recovered} ops, acknowledged {acked} (clean_exit={clean_exit}): \
             outside the {tag} durability window"
        ));
    }
    for step in 0..recovered {
        match store.get(&key_bytes(step)) {
            Ok(v) if v == value_bytes(seed, step) => {}
            other => {
                return Err(format!(
                    "key {step} recovered as {other:?}, expected the acknowledged value"
                ));
            }
        }
    }
    // The recovered store must accept new writes in the same generation.
    store.set(b"post-recovery", b"ok").map_err(|e| format!("post-recovery write: {e:?}"))?;
    store
        .snapshot()
        .check_consistent()
        .map_err(|detail| format!("stats invariant after recovery: {detail}"))?;
    Ok(())
}

/// Recovers one storage-mode cell. The child power-cut after the
/// injected fault, so recovery must yield *exactly* the acknowledged
/// prefix: the faulted op's bytes were never synced and cannot survive,
/// and anything acked was committed durably first.
fn check_storage_cell(
    seed: u64,
    dir: &Path,
    ops: u64,
    clean_exit: bool,
    acked: u64,
) -> Result<(), String> {
    let counter = PersistentCounter::open(dir.join("snapctr"))
        .map_err(|e| format!("snapshot counter: {e}"))?;
    let store = ShieldStore::recover(
        enclave(seed),
        config(DurabilityPolicy::Strict),
        None,
        &counter,
        dir.join("wal"),
    )
    .map_err(|e| format!("recovery failed: {e:?} (acked={acked})"))?;
    let recovered = store.len() as u64;
    let in_window = if clean_exit { acked == ops && recovered == ops } else { recovered == acked };
    if !in_window {
        return Err(format!(
            "recovered {recovered} ops, acknowledged {acked} (clean_exit={clean_exit}): \
             a power cut after a storage fault must preserve exactly the acked prefix"
        ));
    }
    for step in 0..recovered {
        match store.get(&key_bytes(step)) {
            Ok(v) if v == value_bytes(seed, step) => {}
            other => {
                return Err(format!(
                    "key {step} recovered as {other:?}, expected the acknowledged value"
                ));
            }
        }
    }
    // The fresh writer (new process, healthy disk) accepts writes again.
    store.set(b"post-recovery", b"ok").map_err(|e| format!("post-recovery write: {e:?}"))?;
    store
        .snapshot()
        .check_consistent()
        .map_err(|detail| format!("stats invariant after recovery: {detail}"))?;
    Ok(())
}

/// Recovers one expiry-mode cell and checks the two TTL crash
/// invariants: no resurrection of doomed entries, no early expiry of
/// live ones. Caller has already frozen the clock at
/// `RECOVERY_CLOCK_NS` (doomed past due, live still good).
fn check_expiry_cell(seed: u64, dir: &Path, ops: u64, clean_exit: bool) -> Result<(), String> {
    let markers = std::fs::read(dir.join("progress")).unwrap_or_default();
    let acked = markers.iter().filter(|&&c| c == b'\n').count() as u64;
    let acked_doomed = markers.iter().filter(|&&c| c == b'D').count() as u64;

    let counter = PersistentCounter::open(dir.join("snapctr"))
        .map_err(|e| format!("snapshot counter: {e}"))?;
    let store = ShieldStore::recover(
        enclave(seed),
        config(DurabilityPolicy::Strict),
        None,
        &counter,
        dir.join("wal"),
    )
    .map_err(|e| format!("recovery failed: {e:?} (acked={acked})"))?;

    // Replay reinserts even entries that are past due (reads filter
    // lazily), so the strict window applies to the *physical* count.
    let recovered = store.len() as u64;
    let in_window = if clean_exit {
        acked == ops && recovered == ops
    } else {
        recovered == acked || recovered == acked + 1
    };
    if !in_window {
        return Err(format!(
            "recovered {recovered} entries, acknowledged {acked} (clean_exit={clean_exit}): \
             outside the strict durability window"
        ));
    }

    // No early expiry: every acknowledged live key is served byte-exact.
    // Steps are acked in order, so step `acked` is the only possibly
    // in-flight op; later steps must be absent.
    for step in (0..ops).step_by(2) {
        match store.get(&key_bytes(step)) {
            Ok(v) if v == value_bytes(seed, step) => {
                if step > acked {
                    return Err(format!("unacknowledged live key {step} appeared (acked={acked})"));
                }
            }
            Ok(_) => return Err(format!("live key {step} recovered with the wrong bytes")),
            Err(Error::KeyNotFound) => {
                if step < acked {
                    return Err(format!(
                        "acknowledged live key {step} early-expired or lost (acked={acked})"
                    ));
                }
            }
            Err(e) => return Err(format!("live key {step}: {e}")),
        }
    }

    // No resurrection: a doomed key must never be served, acknowledged
    // or not — its deadline is behind the recovery clock.
    for step in (1..ops).step_by(2) {
        match store.get(&key_bytes(step)) {
            Err(Error::KeyNotFound) => {}
            Ok(_) => return Err(format!("doomed key {step} resurrected by recovery")),
            Err(e) => return Err(format!("doomed key {step}: {e}")),
        }
    }

    // The sweep reaps exactly the replayed doomed population: every
    // acknowledged doomed write plus at most the one in flight.
    let swept = store.sweep_expired().map_err(|e| format!("sweep: {e}"))? as u64;
    if swept < acked_doomed || swept > acked_doomed + 1 {
        return Err(format!(
            "sweep reaped {swept} entries, acknowledged doomed {acked_doomed}: \
             outside the strict window"
        ));
    }
    if store.len() as u64 != recovered - swept {
        return Err(format!(
            "sweep bookkeeping: len {} after reaping {swept} of {recovered}",
            store.len()
        ));
    }
    // Live keys survive the sweep untouched.
    for step in (0..acked.min(ops)).step_by(2) {
        match store.get(&key_bytes(step)) {
            Ok(v) if v == value_bytes(seed, step) => {}
            other => return Err(format!("live key {step} damaged by the sweep: {other:?}")),
        }
    }

    store.set(b"post-recovery", b"ok").map_err(|e| format!("post-recovery write: {e:?}"))?;
    store
        .snapshot()
        .check_consistent()
        .map_err(|detail| format!("stats invariant after recovery: {detail}"))?;
    Ok(())
}
