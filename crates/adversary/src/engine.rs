//! The store-layer attack engine: seeded random operations interleaved
//! with attacks on untrusted memory, differentially checked against the
//! shadow model after every step.

use crate::model::{ShadowModel, Violation};
use sgx_sim::enclave::EnclaveBuilder;
use shield_workload::rng::SplitMix64;
use shield_workload::{Generator, Spec};
use shieldstore::testing::{EntryField, StaleEntry, TamperOp};
use shieldstore::{Config, Error, ShieldStore};
use std::collections::HashSet;

/// One attack type from the catalog. Each maps to a concrete mutation of
/// untrusted state (entry fields of the Fig. 5 layout, chain structure,
/// MAC side arrays, raw heap bytes, or a stale-entry rollback).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Attack {
    /// Bit-flip in an entry's encrypted key‖value payload.
    CiphertextFlip,
    /// Bit-flip in an entry's 16-byte MAC field.
    MacFlip,
    /// Bit-flip in an entry's IV/counter.
    IvFlip,
    /// Bit-flip in the (MAC-covered) key-size field.
    KeySizeFlip,
    /// Bit-flip in the (MAC-covered) value-size field.
    ValueSizeFlip,
    /// Bit-flip in the 1-byte key hint (MAC-covered per Fig. 5, but read
    /// pre-verification: the flip first forces the §5.4 two-step full
    /// search, which then detects it).
    HintFlip,
    /// Bit-flip in the chain pointer (not MAC-covered).
    ChainNextFlip,
    /// Unlink an entry from its bucket chain.
    Unlink,
    /// Move an entry into a different bucket's chain.
    Splice,
    /// Bit-flip inside a §5.2 MAC side-array node.
    MacSideArrayFlip,
    /// Bit-flip a raw allocator chunk byte (may hit anything).
    HeapChunkFlip,
    /// Replay a previously captured byte-exact entry (rollback).
    StaleReplay,
}

/// Every attack the store phase draws from.
pub const CATALOG: [Attack; 12] = [
    Attack::CiphertextFlip,
    Attack::MacFlip,
    Attack::IvFlip,
    Attack::KeySizeFlip,
    Attack::ValueSizeFlip,
    Attack::HintFlip,
    Attack::ChainNextFlip,
    Attack::Unlink,
    Attack::Splice,
    Attack::MacSideArrayFlip,
    Attack::HeapChunkFlip,
    Attack::StaleReplay,
];

impl Attack {
    fn tamper_op(self) -> Option<TamperOp> {
        Some(match self {
            Attack::CiphertextFlip => TamperOp::Field(EntryField::Ciphertext),
            Attack::MacFlip => TamperOp::Field(EntryField::Mac),
            Attack::IvFlip => TamperOp::Field(EntryField::Iv),
            Attack::KeySizeFlip => TamperOp::Field(EntryField::KeySize),
            Attack::ValueSizeFlip => TamperOp::Field(EntryField::ValueSize),
            Attack::HintFlip => TamperOp::Field(EntryField::Hint),
            Attack::ChainNextFlip => TamperOp::Field(EntryField::ChainNext),
            Attack::Unlink => TamperOp::Unlink,
            Attack::Splice => TamperOp::Splice,
            Attack::MacSideArrayFlip => TamperOp::MacSideArray,
            Attack::HeapChunkFlip => TamperOp::HeapChunk,
            Attack::StaleReplay => return None,
        })
    }
}

/// Outcome accounting for one store-phase run.
#[derive(Debug, Default, Clone)]
pub struct StoreReport {
    /// Store operations issued (batch = one op).
    pub ops: u64,
    /// Attack steps that actually mutated untrusted state.
    pub attacks: u64,
    /// Landed attacks per catalog entry (indexed like [`CATALOG`]).
    pub attacks_by_kind: [u64; CATALOG.len()],
    /// Operations that failed with `IntegrityViolation` (detections).
    pub detected: u64,
    /// Full decrypting scans triggered by hint corruption.
    pub hint_full_scans: u64,
}

const NUM_KEYS: u64 = 48;
const VAL_LEN: usize = 24;

fn key_bytes(id: u64) -> Vec<u8> {
    shield_workload::make_key(id, 16)
}

fn value_bytes(id: u64, step: u64) -> Vec<u8> {
    shield_workload::make_value(id, step, VAL_LEN)
}

fn store_config() -> Config {
    // Full protection: key hint + two-step + MAC bucketing all on. The
    // KeySize/Hint attacks are only *survivable-or-detectable* with the
    // two-step fallback in place, so the harness always runs with it.
    Config::shield_opt().buckets(96).mac_hashes(24).with_shards(3)
}

fn new_store(name: &str, seed: u64) -> ShieldStore {
    let enclave = EnclaveBuilder::new(name).seed(seed).epc_bytes(8 << 20).build();
    ShieldStore::new(enclave, store_config()).expect("store construction")
}

/// A deterministic §5.4 scenario run before the chaotic phase: corrupt
/// one key hint, then read back *every* key. The hint lives in untrusted
/// memory, so the first-pass hint comparison misses the victim entry;
/// the two-step fallback must then run a full decrypting scan and —
/// because the hint is MAC-covered (Fig. 5) — report the corruption as
/// an integrity violation. What must *never* happen is a silent
/// `KeyNotFound` (the attacker hiding a key) or a wrong value.
fn hint_fallback_scenario(seed: u64) -> Result<u64, Violation> {
    let store = new_store("adversary-hint", seed);
    for id in 0..NUM_KEYS {
        store.set(&key_bytes(id), &value_bytes(id, 0)).expect("clean store set");
    }
    let before = store.stats().full_scans;
    if !store.tamper(TamperOp::Field(EntryField::Hint), seed) {
        return Err(Violation {
            context: "hint scenario".into(),
            detail: "hint tamper found no entry in a populated store".into(),
        });
    }
    let mut detections = 0u64;
    for id in 0..NUM_KEYS {
        match store.get(&key_bytes(id)) {
            Ok(v) if v == value_bytes(id, 0) => {}
            Err(Error::IntegrityViolation { .. }) => detections += 1,
            other => {
                return Err(Violation {
                    context: "hint scenario".into(),
                    detail: format!(
                        "after a hint flip, get(key {id}) returned {other:?}: hint corruption \
                         must surface as a detection, never a silent miss or wrong value"
                    ),
                });
            }
        }
    }
    if detections == 0 {
        return Err(Violation {
            context: "hint scenario".into(),
            detail: "the flipped (MAC-covered) hint was never detected".into(),
        });
    }
    let full_scans = store.stats().full_scans - before;
    if full_scans == 0 {
        return Err(Violation {
            context: "hint scenario".into(),
            detail: "no two-step full scan ran despite a corrupted hint".into(),
        });
    }
    check_stats(&store, "hint scenario stats")?;
    Ok(full_scans)
}

/// State for the chaotic interleaved phase.
struct Chaos {
    store: ShieldStore,
    model: ShadowModel,
    rng: SplitMix64,
    zipf: Generator,
    report: StoreReport,
    /// Stale entry copies captured for later replay: `(shard, entry)`.
    stash: Vec<(usize, StaleEntry)>,
    /// Shards hit by at least one attack (for the liveness check).
    attacked_shards: HashSet<usize>,
}

impl Chaos {
    fn next_key(&mut self) -> Vec<u8> {
        key_bytes(self.zipf.next_key())
    }

    /// Applies one store operation and checks the trichotomy.
    fn step_op(&mut self, step: u64) -> Result<(), Violation> {
        self.report.ops += 1;
        match self.rng.next_below(10) {
            // Reads dominate, as in the paper's workloads.
            0..=3 => {
                let key = self.next_key();
                self.check_get("get", &key)
            }
            4..=6 => {
                let key = self.next_key();
                let value = value_bytes(self.rng.next_u64() % NUM_KEYS, step);
                match self.store.set(&key, &value) {
                    Ok(()) => {
                        self.model.apply_set(&key, &value);
                        Ok(())
                    }
                    Err(Error::IntegrityViolation { .. }) => {
                        self.report.detected += 1;
                        self.model.apply_failed_set(&key, &value);
                        Ok(())
                    }
                    Err(e) => Err(unexpected("set", &e)),
                }
            }
            7 => {
                let key = self.next_key();
                match self.store.delete(&key) {
                    Ok(()) => {
                        self.model.check_delete_hit("delete hit", &key)?;
                        self.model.apply_delete(&key);
                        Ok(())
                    }
                    Err(Error::KeyNotFound) => {
                        // A proven miss: absence must be acceptable.
                        self.model.check_read("delete miss", &key, &None)
                    }
                    Err(Error::IntegrityViolation { .. }) => {
                        self.report.detected += 1;
                        self.model.apply_failed_delete(&key);
                        Ok(())
                    }
                    Err(e) => Err(unexpected("delete", &e)),
                }
            }
            8 => {
                // Batched read, duplicates allowed.
                let n = 1 + self.rng.next_below(8) as usize;
                let keys: Vec<Vec<u8>> = (0..n).map(|_| self.next_key()).collect();
                let refs: Vec<&[u8]> = keys.iter().map(|k| k.as_slice()).collect();
                match self.store.multi_get(&refs) {
                    Ok(results) => {
                        if results.len() != keys.len() {
                            return Err(Violation {
                                context: "multi_get".into(),
                                detail: format!(
                                    "asked for {} keys, got {} results",
                                    keys.len(),
                                    results.len()
                                ),
                            });
                        }
                        for (key, r) in keys.iter().zip(results) {
                            self.model.check_read("multi_get", key, &r)?;
                        }
                        Ok(())
                    }
                    Err(Error::IntegrityViolation { .. }) => {
                        self.report.detected += 1;
                        Ok(())
                    }
                    Err(e) => Err(unexpected("multi_get", &e)),
                }
            }
            _ => {
                // Batched write, duplicates allowed.
                let n = 1 + self.rng.next_below(8) as usize;
                let items: Vec<(Vec<u8>, Vec<u8>)> = (0..n)
                    .map(|i| {
                        let key = self.next_key();
                        let value = value_bytes(self.rng.next_u64() % NUM_KEYS, step + i as u64);
                        (key, value)
                    })
                    .collect();
                let refs: Vec<(&[u8], &[u8])> =
                    items.iter().map(|(k, v)| (k.as_slice(), v.as_slice())).collect();
                match self.store.multi_set(&refs) {
                    Ok(()) => {
                        for (key, value) in &items {
                            self.model.apply_set(key, value);
                        }
                        Ok(())
                    }
                    Err(Error::IntegrityViolation { .. }) => {
                        // The batch stops where verification failed:
                        // every prefix is possible, so every item's new
                        // value joins its acceptable set.
                        self.report.detected += 1;
                        for (key, value) in &items {
                            self.model.apply_failed_set(key, value);
                        }
                        Ok(())
                    }
                    Err(e) => Err(unexpected("multi_set", &e)),
                }
            }
        }
    }

    /// Issues a get and checks the trichotomy for it.
    fn check_get(&mut self, context: &str, key: &[u8]) -> Result<(), Violation> {
        match self.store.get(key) {
            Ok(v) => self.model.check_read(context, key, &Some(v)),
            Err(Error::KeyNotFound) => self.model.check_read(context, key, &None),
            Err(Error::IntegrityViolation { .. }) => {
                self.report.detected += 1;
                Ok(())
            }
            Err(e) => Err(unexpected(context, &e)),
        }
    }

    /// Applies one attack step.
    fn step_attack(&mut self) {
        let kind = self.rng.next_below(CATALOG.len() as u64) as usize;
        let attack = CATALOG[kind];
        let atk_seed = self.rng.next_u64();
        match attack.tamper_op() {
            Some(op) => {
                if self.store.tamper(op, atk_seed) {
                    self.report.attacks += 1;
                    self.report.attacks_by_kind[kind] += 1;
                    self.attacked_shards.insert(atk_seed as usize % self.store.num_shards());
                }
            }
            None => {
                // StaleReplay: half the time capture fresh copies, half
                // the time replay one captured earlier (a rollback).
                if !self.stash.is_empty() && atk_seed.is_multiple_of(2) {
                    let idx = (atk_seed >> 8) as usize % self.stash.len();
                    let (shard, stale) = self.stash.swap_remove(idx);
                    if self.store.replay_entry(shard, &stale) {
                        self.report.attacks += 1;
                        self.report.attacks_by_kind[kind] += 1;
                        self.attacked_shards.insert(shard);
                    }
                } else {
                    let shard = (atk_seed >> 8) as usize % self.store.num_shards();
                    let copies = self.store.stale_entry_copies(shard);
                    if !copies.is_empty() {
                        let pick = (atk_seed >> 16) as usize % copies.len();
                        self.stash.push((shard, copies[pick].clone()));
                    }
                }
            }
        }
    }
}

/// Asserts the store's observability snapshot is self-consistent. Under
/// attack the counter invariants must still hold — detections only widen
/// `hits + misses <= gets + deletes`, they never break the histogram or
/// batch accounting — so a failure here means the stats plumbing itself
/// miscounted.
pub(crate) fn check_stats(store: &ShieldStore, context: &str) -> Result<(), Violation> {
    store
        .snapshot()
        .check_consistent()
        .map_err(|detail| Violation { context: context.into(), detail })
}

fn unexpected(context: &str, e: &Error) -> Violation {
    Violation {
        context: context.into(),
        detail: format!("unexpected error {e:?} (neither model-consistent nor a detection)"),
    }
}

/// Runs the interleaved op/attack phase for one seed.
pub fn run_store_phase(seed: u64, steps: u64) -> Result<StoreReport, Violation> {
    sgx_sim::vclock::reset();
    let hint_full_scans = hint_fallback_scenario(seed)?;

    let store = new_store("adversary-store", seed);
    let spec = Spec::by_name("RD50_Z").expect("workload spec");
    let mut chaos = Chaos {
        store,
        model: ShadowModel::new(),
        rng: SplitMix64::new(seed ^ 0xadf0_77aa_11cc_5511),
        zipf: Generator::new(spec, NUM_KEYS, seed),
        report: StoreReport { hint_full_scans, ..Default::default() },
        stash: Vec::new(),
        attacked_shards: HashSet::new(),
    };

    // Warm-up: populate so attacks have targets, checking as we go.
    for id in 0..NUM_KEYS / 2 {
        let key = key_bytes(id);
        let value = value_bytes(id, 0);
        chaos.store.set(&key, &value).expect("clean warm-up set");
        chaos.model.apply_set(&key, &value);
    }

    for step in 0..steps {
        if chaos.rng.next_below(100) < 70 {
            chaos.step_op(step)?;
        } else {
            chaos.step_attack();
        }
    }

    // Liveness: a shard no attack ever touched must still serve writes —
    // detection fails closed per bucket set, it does not wedge the store.
    let untouched: Vec<usize> =
        (0..chaos.store.num_shards()).filter(|s| !chaos.attacked_shards.contains(s)).collect();
    if !untouched.is_empty() {
        let mut exercised = false;
        for i in 0..64u64 {
            let key = format!("liveness-{seed}-{i}").into_bytes();
            if untouched.contains(&chaos.store.shard_of(&key)) {
                let value = value_bytes(i, u64::MAX);
                if chaos.store.set(&key, &value).is_err()
                    || chaos.store.get(&key).ok().as_deref() != Some(value.as_slice())
                {
                    return Err(Violation {
                        context: "liveness".into(),
                        detail: format!(
                            "shard {} was never attacked but cannot serve a fresh key",
                            chaos.store.shard_of(&key)
                        ),
                    });
                }
                exercised = true;
            }
        }
        if !exercised {
            // With 64 candidate keys over ≤3 shards this cannot happen;
            // guard anyway so a routing bug is loud.
            return Err(Violation {
                context: "liveness".into(),
                detail: "no probe key routed to an untouched shard".into(),
            });
        }
    }

    // Attack accounting must have reached the enclave counters.
    let recorded = chaos.store.enclave().stats().snapshot().attack_steps;
    if recorded < chaos.report.attacks {
        return Err(Violation {
            context: "accounting".into(),
            detail: format!(
                "applied {} attack steps but the enclave recorded {recorded}",
                chaos.report.attacks
            ),
        });
    }
    check_stats(&chaos.store, "store phase stats")?;
    Ok(chaos.report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn store_phase_runs_clean_on_a_few_seeds() {
        for seed in 0..4 {
            let report = run_store_phase(seed, 300).unwrap_or_else(|v| {
                panic!("seed {seed}: trichotomy violation: {v}");
            });
            assert!(report.ops > 0);
            assert!(report.hint_full_scans > 0);
        }
    }

    #[test]
    fn catalog_attacks_all_land_over_seeds() {
        // Every catalog entry must actually mutate state on some seed
        // (a stuck attack would silently weaken the whole harness).
        let mut by_kind = [0u64; CATALOG.len()];
        for seed in 0..12 {
            let report = run_store_phase(seed, 400).expect("clean run");
            for (total, landed) in by_kind.iter_mut().zip(report.attacks_by_kind) {
                *total += landed;
            }
        }
        for (kind, landed) in CATALOG.iter().zip(by_kind) {
            assert!(landed > 0, "attack {kind:?} never landed in 12 seeds");
        }
    }
}
