//! Deterministic adversary harness for ShieldStore.
//!
//! Everything here is a pure function of a 64-bit seed: the operation
//! stream, the attack schedule, the snapshot corruptions, and the wire
//! faults. A failing seed therefore reproduces the failure exactly —
//! `cargo run -p adversary -- --seed <s>` — with no flakiness to chase.
//!
//! Three phases run per seed, each differentially checked against the
//! plain-`HashMap` shadow model in [`model`]:
//!
//! * [`engine`] — store-layer attacks on untrusted memory (entry field
//!   flips, chain unlink/splice, MAC side-array corruption, allocator
//!   faults, stale-entry rollback) interleaved with random operations.
//! * [`snapshot`] — persistence-layer attacks on the snapshot file
//!   (truncation, bit flips, zero-length, stale-file replay).
//! * [`wire`] — network-layer attacks via a byte-level fault proxy
//!   (garbled, truncated, duplicated, and dropped frames), plus an
//!   overload-and-tamper phase ([`wire::run_overload_phase`], run on its
//!   own seed budget) that saturates a small-capacity server past its
//!   connection cap while one partition is corrupted, checking graceful
//!   degradation: correct, `Busy`, or `Quarantined` — never wrong.
//! * [`walphase`] — write-ahead-log attacks (torn tails, bit flips,
//!   record splices, stale pin+log replays, pre-snapshot logs after
//!   rotation) plus kill-point crash/recover cycles checked against the
//!   shadow model within the policy's loss window.
//! * [`tenantphase`] — cross-tenant attacks (cross-namespace reads with
//!   leaked derived keys, re-MAC forgery, quota exhaustion, TTL
//!   resurrection), proving the multi-tenant isolation boundary.
//! * [`replphase`] — replication attacks (split brain after failover,
//!   stale and foreign-key promotions against a live primary, batch
//!   truncation/corruption in flight), proving fencing and the sealed
//!   stream's fail-closed chain.
//! * [`storagephase`] — storage-fault attacks (commit-path I/O errors
//!   that must poison the writer fail-closed, power cuts that must
//!   preserve exactly the acked prefix, sealed-segment and pin rot that
//!   the scrubber must detect, and forged repair payloads that the
//!   chain check must refuse while genuine ones restore service).
//!
//! The invariant checked after every step is the *trichotomy*: the
//! result matches the model, or the operation failed with an integrity
//! violation (detection, failing closed), and never anything else.

pub mod engine;
pub mod model;
pub mod replphase;
pub mod snapshot;
pub mod storagephase;
pub mod tenantphase;
pub mod walphase;
pub mod wire;

/// Combined accounting for one seed's full run.
#[derive(Debug, Default, Clone)]
pub struct SeedReport {
    pub store: engine::StoreReport,
    pub snapshot: snapshot::SnapshotReport,
    pub wal: walphase::WalReport,
    pub wire: wire::WireReport,
    pub tenant: tenantphase::TenantReport,
    pub repl: replphase::ReplReport,
    pub storage: storagephase::StorageReport,
}

/// Runs every phase for one seed. `store_steps` sizes the chaotic
/// store phase; the other phases have fixed shapes.
pub fn run_seed(seed: u64, store_steps: u64) -> Result<SeedReport, model::Violation> {
    let store = engine::run_store_phase(seed, store_steps)?;
    let snapshot = snapshot::run_snapshot_phase(seed)?;
    let wal = walphase::run_wal_phase(seed)?;
    let wire = wire::run_wire_phase(seed)?;
    let tenant = tenantphase::run_tenant_phase(seed)?;
    let repl = replphase::run_repl_phase(seed)?;
    let storage = storagephase::run_storage_phase(seed)?;
    Ok(SeedReport { store, snapshot, wal, wire, tenant, repl, storage })
}
