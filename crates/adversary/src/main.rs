//! `shieldstore_adversary`: run the deterministic adversary harness over
//! a range of seeds and report any trichotomy violation with the seed
//! that reproduces it.
//!
//! ```text
//! shieldstore_adversary [--seed S | --seeds N] [--start S0] [--steps K] [--no-wire]
//!                       [--report PATH]
//! ```
//!
//! `--report PATH` additionally writes a machine-readable JSON summary —
//! per-attack-kind landed counts, detection totals, and the failing
//! seeds — which CI uploads as a build artifact.
//!
//! Exit status is non-zero iff any seed found a violation; the offending
//! seed is printed as `FAIL seed=<s>` so it can be replayed alone with
//! `--seed <s>`.

use adversary::{engine, run_seed};

struct Args {
    start: u64,
    count: u64,
    steps: u64,
    wire: bool,
    overload: u64,
    report: Option<String>,
}

fn parse_args() -> Args {
    let mut args = Args { start: 0, count: 50, steps: 400, wire: true, overload: 4, report: None };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| -> u64 {
            it.next()
                .and_then(|v| v.parse().ok())
                .unwrap_or_else(|| panic!("{name} needs a numeric argument"))
        };
        match flag.as_str() {
            "--seed" => {
                args.start = value("--seed");
                args.count = 1;
            }
            "--seeds" => args.count = value("--seeds"),
            "--start" => args.start = value("--start"),
            "--steps" => args.steps = value("--steps"),
            "--no-wire" => args.wire = false,
            "--overload-seeds" => args.overload = value("--overload-seeds"),
            "--report" => {
                args.report = Some(it.next().unwrap_or_else(|| panic!("--report needs a path")));
            }
            "--help" | "-h" => {
                println!(
                    "usage: shieldstore_adversary [--seed S | --seeds N] [--start S0] \
                     [--steps K] [--no-wire] [--overload-seeds K] [--report PATH]"
                );
                std::process::exit(0);
            }
            other => {
                eprintln!("unknown flag {other:?}; try --help");
                std::process::exit(2);
            }
        }
    }
    args
}

fn main() {
    let args = parse_args();
    // ops, attacks, detections, wire faults, crash/recover cycles
    let mut totals = (0u64, 0u64, 0u64, 0u64, 0u64);
    let mut by_kind = [0u64; engine::CATALOG.len()];
    let mut tenant = adversary::tenantphase::TenantReport::default();
    let mut repl = adversary::replphase::ReplReport::default();
    let mut storage = adversary::storagephase::StorageReport::default();
    let mut failed_seeds: Vec<u64> = Vec::new();

    for seed in args.start..args.start + args.count {
        let outcome = if args.wire {
            run_seed(seed, args.steps)
        } else {
            engine::run_store_phase(seed, args.steps)
                .map(|store| adversary::SeedReport { store, ..Default::default() })
        };
        match outcome {
            Ok(report) => {
                totals.0 += report.store.ops
                    + report.wire.ops
                    + report.tenant.ops
                    + report.repl.ops
                    + report.storage.ops;
                totals.1 += report.store.attacks
                    + report.snapshot.corruptions
                    + report.wal.attacks
                    + report.wire.faults
                    + report.tenant.attacks
                    + report.repl.attacks
                    + report.storage.attacks;
                totals.2 += report.store.detected
                    + report.snapshot.detected
                    + report.wal.detected
                    + report.tenant.detected
                    + report.repl.detected
                    + report.storage.detected;
                tenant.ops += report.tenant.ops;
                tenant.attacks += report.tenant.attacks;
                tenant.detected += report.tenant.detected;
                tenant.cross_reads += report.tenant.cross_reads;
                tenant.forgeries += report.tenant.forgeries;
                tenant.quota_rejections += report.tenant.quota_rejections;
                tenant.ttl_resurrections += report.tenant.ttl_resurrections;
                repl.ops += report.repl.ops;
                repl.attacks += report.repl.attacks;
                repl.detected += report.repl.detected;
                repl.split_brains += report.repl.split_brains;
                repl.stale_promotions += report.repl.stale_promotions;
                repl.truncations += report.repl.truncations;
                storage.ops += report.storage.ops;
                storage.attacks += report.storage.attacks;
                storage.detected += report.storage.detected;
                storage.poisoned += report.storage.poisoned;
                storage.power_cuts += report.storage.power_cuts;
                storage.repairs += report.storage.repairs;
                totals.3 += report.wire.faults;
                totals.4 += report.wal.cycles + report.storage.power_cuts;
                for (total, landed) in by_kind.iter_mut().zip(report.store.attacks_by_kind) {
                    *total += landed;
                }
            }
            Err(violation) => {
                failed_seeds.push(seed);
                println!("FAIL seed={seed}");
                println!("  {violation}");
                println!("  replay with: cargo run -p adversary -- --seed {seed}");
            }
        }
    }

    // Overload-and-tamper phase: its own (smaller) seed budget, since
    // each seed spins up servers, client fleets, and a fault proxy.
    let mut overload = adversary::wire::OverloadReport::default();
    for seed in args.start..args.start + args.overload {
        match adversary::wire::run_overload_phase(seed) {
            Ok(r) => {
                overload.ops += r.ops;
                overload.busy += r.busy;
                overload.quarantined += r.quarantined;
                overload.refused += r.refused;
                overload.reconnects += r.reconnects;
                overload.drain_ms = overload.drain_ms.max(r.drain_ms);
            }
            Err(v) => {
                failed_seeds.push(seed);
                println!("FAIL overload seed={seed}");
                println!("  {v}");
            }
        }
    }
    totals.0 += overload.ops;

    if args.wire {
        println!(
            "tenant phase: {} ops, {} attacks ({} cross-reads, {} forgeries, \
             {} quota rejections, {} TTL revivals), {} detections",
            tenant.ops,
            tenant.attacks,
            tenant.cross_reads,
            tenant.forgeries,
            tenant.quota_rejections,
            tenant.ttl_resurrections,
            tenant.detected,
        );
        println!(
            "replication phase: {} ops, {} attacks ({} split-brain, {} stale promotions, \
             {} in-flight truncations), {} detections",
            repl.ops,
            repl.attacks,
            repl.split_brains,
            repl.stale_promotions,
            repl.truncations,
            repl.detected,
        );
        println!(
            "storage phase: {} ops, {} faults injected, {} detections \
             ({} writers poisoned, {} power cuts, {} verified repairs)",
            storage.ops,
            storage.attacks,
            storage.detected,
            storage.poisoned,
            storage.power_cuts,
            storage.repairs,
        );
    }
    println!("attack coverage:");
    for (kind, landed) in engine::CATALOG.iter().zip(by_kind) {
        println!("  {kind:?}: {landed}");
    }
    if args.overload > 0 {
        println!(
            "overload phase: {} seeds, {} ops, {} busy sheds, {} quarantined answers, \
             {} refused connections, {} reconnects, worst drain {} ms",
            args.overload,
            overload.ops,
            overload.busy,
            overload.quarantined,
            overload.refused,
            overload.reconnects,
            overload.drain_ms,
        );
    }
    println!(
        "adversary: {} seeds, {} ops, {} attacks injected ({} on the wire), {} detections, \
         {} crash/recover cycles, {}",
        args.count,
        totals.0,
        totals.1,
        totals.3,
        totals.2,
        totals.4,
        if failed_seeds.is_empty() { "zero trichotomy violations" } else { "FAILURES FOUND" },
    );

    if let Some(path) = &args.report {
        let json = report_json(
            &args,
            totals,
            &by_kind,
            &overload,
            &tenant,
            &repl,
            &storage,
            &failed_seeds,
        );
        match std::fs::write(path, &json) {
            Ok(()) => println!("wrote {path}"),
            Err(e) => {
                eprintln!("could not write {path}: {e}");
                std::process::exit(2);
            }
        }
    }
    if !failed_seeds.is_empty() {
        std::process::exit(1);
    }
}

/// Hand-rolled JSON summary (no serde in the tree): run parameters,
/// totals, per-attack-kind landed counts, and any failing seeds.
#[allow(clippy::too_many_arguments)]
fn report_json(
    args: &Args,
    totals: (u64, u64, u64, u64, u64),
    by_kind: &[u64; engine::CATALOG.len()],
    overload: &adversary::wire::OverloadReport,
    tenant: &adversary::tenantphase::TenantReport,
    repl: &adversary::replphase::ReplReport,
    storage: &adversary::storagephase::StorageReport,
    failed_seeds: &[u64],
) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"harness\": \"shieldstore_adversary\",\n");
    out.push_str(&format!("  \"start_seed\": {},\n", args.start));
    out.push_str(&format!("  \"seeds\": {},\n", args.count));
    out.push_str(&format!("  \"steps_per_seed\": {},\n", args.steps));
    out.push_str(&format!("  \"wire_phase\": {},\n", args.wire));
    out.push_str(&format!("  \"ops\": {},\n", totals.0));
    out.push_str(&format!("  \"attacks_injected\": {},\n", totals.1));
    out.push_str(&format!("  \"wire_faults\": {},\n", totals.3));
    out.push_str(&format!("  \"detections\": {},\n", totals.2));
    out.push_str(&format!("  \"crash_recover_cycles\": {},\n", totals.4));
    out.push_str("  \"attacks_by_kind\": {\n");
    for (i, (kind, landed)) in engine::CATALOG.iter().zip(by_kind).enumerate() {
        out.push_str(&format!(
            "    \"{kind:?}\": {landed}{}\n",
            if i + 1 == engine::CATALOG.len() { "" } else { "," }
        ));
    }
    out.push_str("  },\n");
    out.push_str("  \"overload\": {\n");
    out.push_str(&format!("    \"seeds\": {},\n", args.overload));
    out.push_str(&format!("    \"ops\": {},\n", overload.ops));
    out.push_str(&format!("    \"busy\": {},\n", overload.busy));
    out.push_str(&format!("    \"quarantined\": {},\n", overload.quarantined));
    out.push_str(&format!("    \"refused_connections\": {},\n", overload.refused));
    out.push_str(&format!("    \"reconnects\": {},\n", overload.reconnects));
    out.push_str(&format!("    \"worst_drain_ms\": {}\n", overload.drain_ms));
    out.push_str("  },\n");
    out.push_str("  \"tenant\": {\n");
    out.push_str(&format!("    \"ops\": {},\n", tenant.ops));
    out.push_str(&format!("    \"attacks\": {},\n", tenant.attacks));
    out.push_str(&format!("    \"detections\": {},\n", tenant.detected));
    out.push_str("    \"by_attack_kind\": {\n");
    out.push_str(&format!("      \"cross_read\": {},\n", tenant.cross_reads));
    out.push_str(&format!("      \"forge\": {},\n", tenant.forgeries));
    out.push_str(&format!("      \"quota_exhaustion\": {},\n", tenant.quota_rejections));
    out.push_str(&format!("      \"ttl_resurrection\": {}\n", tenant.ttl_resurrections));
    out.push_str("    }\n");
    out.push_str("  },\n");
    out.push_str("  \"replication\": {\n");
    out.push_str(&format!("    \"ops\": {},\n", repl.ops));
    out.push_str(&format!("    \"attacks\": {},\n", repl.attacks));
    out.push_str(&format!("    \"detections\": {},\n", repl.detected));
    out.push_str("    \"by_attack_kind\": {\n");
    out.push_str(&format!("      \"split_brain\": {},\n", repl.split_brains));
    out.push_str(&format!("      \"stale_promotion\": {},\n", repl.stale_promotions));
    out.push_str(&format!("      \"truncation_in_flight\": {}\n", repl.truncations));
    out.push_str("    }\n");
    out.push_str("  },\n");
    out.push_str("  \"storage\": {\n");
    out.push_str(&format!("    \"ops\": {},\n", storage.ops));
    out.push_str(&format!("    \"faults_injected\": {},\n", storage.attacks));
    out.push_str(&format!("    \"detections\": {},\n", storage.detected));
    out.push_str(&format!("    \"writers_poisoned\": {},\n", storage.poisoned));
    out.push_str(&format!("    \"power_cuts\": {},\n", storage.power_cuts));
    out.push_str(&format!("    \"verified_repairs\": {}\n", storage.repairs));
    out.push_str("  },\n");
    let seeds: Vec<String> = failed_seeds.iter().map(u64::to_string).collect();
    out.push_str(&format!("  \"failed_seeds\": [{}]\n", seeds.join(", ")));
    out.push_str("}\n");
    out
}
