//! `shieldstore_adversary`: run the deterministic adversary harness over
//! a range of seeds and report any trichotomy violation with the seed
//! that reproduces it.
//!
//! ```text
//! shieldstore_adversary [--seed S | --seeds N] [--start S0] [--steps K] [--no-wire]
//! ```
//!
//! Exit status is non-zero iff any seed found a violation; the offending
//! seed is printed as `FAIL seed=<s>` so it can be replayed alone with
//! `--seed <s>`.

use adversary::{engine, run_seed};

struct Args {
    start: u64,
    count: u64,
    steps: u64,
    wire: bool,
}

fn parse_args() -> Args {
    let mut args = Args { start: 0, count: 50, steps: 400, wire: true };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| -> u64 {
            it.next()
                .and_then(|v| v.parse().ok())
                .unwrap_or_else(|| panic!("{name} needs a numeric argument"))
        };
        match flag.as_str() {
            "--seed" => {
                args.start = value("--seed");
                args.count = 1;
            }
            "--seeds" => args.count = value("--seeds"),
            "--start" => args.start = value("--start"),
            "--steps" => args.steps = value("--steps"),
            "--no-wire" => args.wire = false,
            "--help" | "-h" => {
                println!(
                    "usage: shieldstore_adversary [--seed S | --seeds N] [--start S0] \
                     [--steps K] [--no-wire]"
                );
                std::process::exit(0);
            }
            other => {
                eprintln!("unknown flag {other:?}; try --help");
                std::process::exit(2);
            }
        }
    }
    args
}

fn main() {
    let args = parse_args();
    let mut totals = (0u64, 0u64, 0u64, 0u64); // ops, attacks, detections, wire faults
    let mut by_kind = [0u64; engine::CATALOG.len()];
    let mut failed = false;

    for seed in args.start..args.start + args.count {
        let outcome = if args.wire {
            run_seed(seed, args.steps)
        } else {
            engine::run_store_phase(seed, args.steps)
                .map(|store| adversary::SeedReport { store, ..Default::default() })
        };
        match outcome {
            Ok(report) => {
                totals.0 += report.store.ops + report.wire.ops;
                totals.1 += report.store.attacks + report.snapshot.corruptions + report.wire.faults;
                totals.2 += report.store.detected + report.snapshot.detected;
                totals.3 += report.wire.faults;
                for (total, landed) in by_kind.iter_mut().zip(report.store.attacks_by_kind) {
                    *total += landed;
                }
            }
            Err(violation) => {
                failed = true;
                println!("FAIL seed={seed}");
                println!("  {violation}");
                println!("  replay with: cargo run -p adversary -- --seed {seed}");
            }
        }
    }

    println!("attack coverage:");
    for (kind, landed) in engine::CATALOG.iter().zip(by_kind) {
        println!("  {kind:?}: {landed}");
    }
    println!(
        "adversary: {} seeds, {} ops, {} attacks injected ({} on the wire), {} detections, {}",
        args.count,
        totals.0,
        totals.1,
        totals.3,
        totals.2,
        if failed { "FAILURES FOUND" } else { "zero trichotomy violations" },
    );
    if failed {
        std::process::exit(1);
    }
}
