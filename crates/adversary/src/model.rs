//! The differential shadow model: plain in-enclave ground truth.
//!
//! A `HashMap` plays the role of an oracle with no untrusted state at
//! all. After every store operation the harness checks the *trichotomy*:
//! the result matches the model, or the operation failed with
//! `IntegrityViolation` (the attack was detected), and never anything
//! else — in particular, never silently wrong data.
//!
//! One wrinkle: a write that fails with `IntegrityViolation` may have
//! partially applied before verification caught the tampering (the store
//! fails closed, it does not roll back). The model therefore tracks a
//! *set* of acceptable states per key — usually a singleton, widened to
//! `{old, new}` by a failed write — and collapses back to a singleton
//! whenever a successful read observes one of the candidates.

use std::collections::{BTreeSet, HashMap};

/// One acceptable state for a key: present with a value, or absent.
pub type KeyState = Option<Vec<u8>>;

/// The shadow model.
#[derive(Debug, Default, Clone)]
pub struct ShadowModel {
    /// Acceptable states per key. Absent key == singleton `{None}`.
    states: HashMap<Vec<u8>, BTreeSet<KeyState>>,
}

/// A trichotomy violation: the store returned something the model says
/// is impossible.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// What the harness was doing.
    pub context: String,
    /// Why the observation is inconsistent.
    pub detail: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.context, self.detail)
    }
}

fn fmt_bytes(b: &[u8]) -> String {
    match std::str::from_utf8(b) {
        Ok(s) => format!("{s:?}"),
        Err(_) => format!("0x{}", b.iter().map(|x| format!("{x:02x}")).collect::<String>()),
    }
}

fn fmt_state(s: &KeyState) -> String {
    match s {
        Some(v) => fmt_bytes(v),
        None => "<absent>".into(),
    }
}

impl ShadowModel {
    /// A fresh, empty model.
    pub fn new() -> Self {
        Self::default()
    }

    /// Keys the model has ever seen written.
    pub fn keys(&self) -> impl Iterator<Item = &Vec<u8>> {
        self.states.keys()
    }

    fn set_of(&self, key: &[u8]) -> BTreeSet<KeyState> {
        self.states.get(key).cloned().unwrap_or_else(|| BTreeSet::from([None]))
    }

    /// Records a successful `set`: the key now holds exactly `value`.
    pub fn apply_set(&mut self, key: &[u8], value: &[u8]) {
        self.states.insert(key.to_vec(), BTreeSet::from([Some(value.to_vec())]));
    }

    /// Records a failed `set`: the key holds its old state or the new
    /// value (the write may have landed before verification failed).
    pub fn apply_failed_set(&mut self, key: &[u8], value: &[u8]) {
        let mut set = self.set_of(key);
        set.insert(Some(value.to_vec()));
        self.states.insert(key.to_vec(), set);
    }

    /// Records a successful `delete`.
    pub fn apply_delete(&mut self, key: &[u8]) {
        self.states.insert(key.to_vec(), BTreeSet::from([None]));
    }

    /// Records a failed `delete`: old state or absent.
    pub fn apply_failed_delete(&mut self, key: &[u8]) {
        let mut set = self.set_of(key);
        set.insert(None);
        self.states.insert(key.to_vec(), set);
    }

    /// Checks an observed read result against the model and, on success,
    /// collapses the key's acceptable states to the observed one.
    pub fn check_read(
        &mut self,
        context: &str,
        key: &[u8],
        observed: &KeyState,
    ) -> Result<(), Violation> {
        let set = self.set_of(key);
        if !set.contains(observed) {
            return Err(Violation {
                context: context.into(),
                detail: format!(
                    "key {} returned {} but acceptable states are [{}]",
                    fmt_bytes(key),
                    fmt_state(observed),
                    set.iter().map(fmt_state).collect::<Vec<_>>().join(", "),
                ),
            });
        }
        self.states.insert(key.to_vec(), BTreeSet::from([observed.clone()]));
        Ok(())
    }

    /// True when the key is *definitely* present (every acceptable state
    /// is a value). Used to pick keys for targeted probes.
    pub fn definitely_present(&self, key: &[u8]) -> bool {
        let set = self.set_of(key);
        !set.is_empty() && set.iter().all(|s| s.is_some())
    }

    /// Checks that a successful `delete` is consistent: the key must have
    /// had at least one acceptable *present* state (a delete that
    /// succeeds on a definitely-absent key fabricated an entry).
    pub fn check_delete_hit(&self, context: &str, key: &[u8]) -> Result<(), Violation> {
        let set = self.set_of(key);
        if !set.iter().any(|s| s.is_some()) {
            return Err(Violation {
                context: context.into(),
                detail: format!(
                    "delete of key {} succeeded but the model says the key was definitely absent",
                    fmt_bytes(key),
                ),
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn singleton_lifecycle() {
        let mut m = ShadowModel::new();
        m.check_read("get", b"k", &None).unwrap();
        m.apply_set(b"k", b"v1");
        m.check_read("get", b"k", &Some(b"v1".to_vec())).unwrap();
        assert!(m.check_read("get", b"k", &Some(b"v2".to_vec())).is_err());
        assert!(m.check_read("get", b"k", &None).is_err());
        m.apply_delete(b"k");
        m.check_read("get", b"k", &None).unwrap();
    }

    #[test]
    fn failed_write_widens_then_collapses() {
        let mut m = ShadowModel::new();
        m.apply_set(b"k", b"old");
        m.apply_failed_set(b"k", b"new");
        // Both old and new are now acceptable...
        m.clone().check_read("get", b"k", &Some(b"old".to_vec())).unwrap();
        m.check_read("get", b"k", &Some(b"new".to_vec())).unwrap();
        // ...but the observation collapsed the set: "old" is gone.
        assert!(m.check_read("get", b"k", &Some(b"old".to_vec())).is_err());
    }

    #[test]
    fn failed_delete_widens() {
        let mut m = ShadowModel::new();
        m.apply_set(b"k", b"v");
        m.apply_failed_delete(b"k");
        assert!(!m.definitely_present(b"k"));
        m.clone().check_read("get", b"k", &None).unwrap();
        m.check_read("get", b"k", &Some(b"v".to_vec())).unwrap();
    }
}
