//! Replication attacks: the adversary owns the wire between primary and
//! replica, the shared log directory, and the promotion trigger. Three
//! attack families run per seed, each seed-pure and checked against an
//! in-process shadow model:
//!
//! * **split brain** — after a legitimate promotion fences the old
//!   primary, the stale primary's next commit and a second racing
//!   promotion must both fail closed; the new primary stays live.
//! * **stale promotion** — a replica stranded on a pruned generation,
//!   or one holding another primary's log keys, must be refused
//!   *before* anything is fenced: the live primary keeps committing.
//! * **truncation in flight** — batches truncated or bit-flipped on the
//!   wire must be rejected without desyncing the chain; a clean re-poll
//!   from the replica's held position always completes catch-up to the
//!   byte-exact acknowledged state.

use crate::model::Violation;
use sgx_sim::counter::PersistentCounter;
use sgx_sim::enclave::{Enclave, EnclaveBuilder};
use shield_workload::rng::SplitMix64;
use shieldstore::{Config, DurabilityPolicy, Replica, ShieldStore, Watermark};
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Outcome accounting for one replication-phase run.
#[derive(Debug, Default, Clone)]
pub struct ReplReport {
    /// Acknowledged primary mutations streamed to replicas.
    pub ops: u64,
    /// Attacks injected (sum of the per-kind counters).
    pub attacks: u64,
    /// Attacks that failed closed.
    pub detected: u64,
    /// Split-brain attempts: fenced-primary commits and racing
    /// promotions refused after a legitimate failover.
    pub split_brains: u64,
    /// Stale promotions refused: pruned-generation replicas and
    /// foreign-log key mismatches, with the live primary unfenced.
    pub stale_promotions: u64,
    /// In-flight batch truncations/corruptions rejected without
    /// desyncing the stream.
    pub truncations: u64,
}

fn config() -> Config {
    Config::shield_opt()
        .buckets(64)
        .mac_hashes(16)
        .with_shards(2)
        .with_durability(DurabilityPolicy::Strict)
}

/// Primary and replicas share one enclave identity: promotion reads the
/// primary's sealed pin, which MRENCLAVE sealing only permits for the
/// same measurement on the same platform.
fn enclave(seed: u64) -> Arc<Enclave> {
    EnclaveBuilder::new("adversary-repl").seed(seed).epc_bytes(8 << 20).build()
}

fn scratch_dir(seed: u64) -> PathBuf {
    std::env::temp_dir().join(format!("ss-adversary-repl-{}-{seed}", std::process::id()))
}

/// Runs the replication attack phase for one seed.
pub fn run_repl_phase(seed: u64) -> Result<ReplReport, Violation> {
    sgx_sim::vclock::reset();
    let dir = scratch_dir(seed);
    std::fs::create_dir_all(&dir).expect("scratch dir");
    let result = run_in_dir(seed, &dir);
    std::fs::remove_dir_all(&dir).ok();
    result
}

fn run_in_dir(seed: u64, dir: &Path) -> Result<ReplReport, Violation> {
    let mut report = ReplReport::default();
    let mut rng = SplitMix64::new(seed ^ 0x5e9a_ca7e_d51d_e0a7);
    split_brain(seed, dir, &mut rng, &mut report)?;
    stale_promotion(seed, dir, &mut rng, &mut report)?;
    truncation_in_flight(seed, dir, &mut rng, &mut report)?;
    Ok(report)
}

/// Writes `n` keyed values to the primary, mirrored into `shadow`.
fn load(
    store: &ShieldStore,
    shadow: &mut HashMap<Vec<u8>, Vec<u8>>,
    prefix: &str,
    n: u64,
    report: &mut ReplReport,
) -> Result<(), Violation> {
    for i in 0..n {
        let key = format!("{prefix}{i}").into_bytes();
        let value = format!("{prefix}-val-{i}").into_bytes();
        store.set(&key, &value).map_err(|e| Violation {
            context: "repl phase load".into(),
            detail: format!("primary set failed: {e:?}"),
        })?;
        shadow.insert(key, value);
        report.ops += 1;
    }
    Ok(())
}

/// The replica's store must hold exactly the shadow model.
fn verify_state(
    store: &ShieldStore,
    expected: &HashMap<Vec<u8>, Vec<u8>>,
    context: &str,
) -> Result<(), Violation> {
    if store.len() != expected.len() {
        return Err(Violation {
            context: context.into(),
            detail: format!(
                "replica holds {} entries, shadow model has {}",
                store.len(),
                expected.len()
            ),
        });
    }
    for (key, value) in expected {
        match store.get(key) {
            Ok(v) if v == *value => {}
            other => {
                return Err(Violation {
                    context: context.into(),
                    detail: format!(
                        "key {:?} replicated as {other:?}, shadow model holds {:?}",
                        String::from_utf8_lossy(key),
                        String::from_utf8_lossy(value),
                    ),
                });
            }
        }
    }
    Ok(())
}

/// Streams the primary's log into `replica` until it reaches `target`.
fn catch_up(
    primary: &ShieldStore,
    replica: &mut Replica,
    target: Watermark,
    context: &str,
) -> Result<(), Violation> {
    while replica.watermark() < target {
        let at = replica.watermark();
        let batch = primary.repl_batch(at.generation, at.seq, 1 << 20).map_err(|e| Violation {
            context: context.into(),
            detail: format!("poll at {at} chasing {target} failed: {e:?}"),
        })?;
        replica.apply_batch(&batch).map_err(|e| Violation {
            context: context.into(),
            detail: format!("genuine batch at {at} refused: {e:?}"),
        })?;
    }
    Ok(())
}

// ---------------------------------------------------------------------
// Attack A: split brain after a legitimate failover
// ---------------------------------------------------------------------

/// A caught-up replica promotes, fencing the old primary. The stale
/// primary's next commit and a second replica's racing promotion must
/// both fail closed, while the new primary keeps serving and accepting
/// writes — no window in which two nodes commit.
fn split_brain(
    seed: u64,
    dir: &Path,
    rng: &mut SplitMix64,
    report: &mut ReplReport,
) -> Result<(), Violation> {
    let p_wal = dir.join("sb-p-wal");
    let primary = ShieldStore::new(enclave(seed), config()).expect("primary");
    primary.attach_wal(&p_wal).expect("attach wal");
    let mut shadow = HashMap::new();
    load(&primary, &mut shadow, "sb", 8 + rng.next_below(8), report)?;
    let durable =
        primary.flush_wal().expect("flush").expect("strict primary has a durable watermark");

    let fail =
        |what: &str, detail: String| Violation { context: format!("split brain: {what}"), detail };
    let hello = primary.repl_subscribe().map_err(|e| fail("subscribe", format!("{e:?}")))?;
    let winner_store = Arc::new(ShieldStore::new(enclave(seed), config()).expect("winner store"));
    let mut winner = Replica::new(Arc::clone(&winner_store), &hello)
        .map_err(|e| fail("winner replica", format!("{e:?}")))?;
    catch_up(&primary, &mut winner, durable, "split brain: winner catch-up")?;

    // A second replica subscribes but never applies a byte: it will
    // race the promotion from the stream's origin.
    let hello2 = primary.repl_subscribe().map_err(|e| fail("subscribe 2", format!("{e:?}")))?;
    let loser_store = Arc::new(ShieldStore::new(enclave(seed), config()).expect("loser store"));
    let loser = Replica::new(Arc::clone(&loser_store), &hello2)
        .map_err(|e| fail("loser replica", format!("{e:?}")))?;

    // Legitimate failover: the winner's promoted watermark covers every
    // durably acked write, byte-exact.
    let promoted = winner
        .promote(&p_wal, &dir.join("sb-w-wal"))
        .map_err(|e| fail("promotion", format!("caught-up replica refused: {e:?}")))?;
    if promoted < durable {
        return Err(fail("promotion", format!("promoted to {promoted}, acked was {durable}")));
    }
    verify_state(&winner_store, &shadow, "split brain: promoted state")?;

    // The fenced stale primary must not commit another write.
    report.attacks += 1;
    report.split_brains += 1;
    match primary.set(b"split-brain", b"stale") {
        Err(_) => report.detected += 1,
        Ok(()) => {
            return Err(fail("fencing", "fenced stale primary acknowledged a write".into()));
        }
    }

    // The racing promotion must fail closed on the fenced pin.
    report.attacks += 1;
    report.split_brains += 1;
    match loser.promote(&p_wal, &dir.join("sb-l-wal")) {
        Err(_) => report.detected += 1,
        Ok(wm) => {
            return Err(fail("racing promotion", format!("second promotion won at {wm}")));
        }
    }

    // Liveness: the new primary accepts and remembers writes.
    winner_store.set(b"post-failover", b"alive").map_err(|e| {
        fail("new primary liveness", format!("promoted store refused a write: {e:?}"))
    })?;
    match winner_store.get(b"post-failover") {
        Ok(v) if v == b"alive" => Ok(()),
        other => Err(fail("new primary liveness", format!("readback got {other:?}"))),
    }
}

// ---------------------------------------------------------------------
// Attack B: stale promotion against a live primary
// ---------------------------------------------------------------------

/// Two illegitimate promotions against a primary that is alive and
/// rotating: a replica stranded on a generation the log has pruned, and
/// a replica holding a *different* primary's log keys. Both must be
/// refused before the fence — the live primary keeps acknowledging
/// writes afterwards.
fn stale_promotion(
    seed: u64,
    dir: &Path,
    rng: &mut SplitMix64,
    report: &mut ReplReport,
) -> Result<(), Violation> {
    let p_wal = dir.join("sp-p-wal");
    let counter = PersistentCounter::open(dir.join("sp-ctr")).expect("counter");
    let primary = Arc::new(ShieldStore::new(enclave(seed), config()).expect("primary"));
    primary.attach_wal(&p_wal).expect("attach wal");
    let mut shadow = HashMap::new();
    load(&primary, &mut shadow, "sp", 4 + rng.next_below(4), report)?;

    let fail = |what: &str, detail: String| Violation {
        context: format!("stale promotion: {what}"),
        detail,
    };
    // A live subscriber follows the stream across the rotation and acks,
    // releasing the retention floor so generation 0 can be pruned.
    let hello = primary.repl_subscribe().map_err(|e| fail("subscribe", format!("{e:?}")))?;
    let live_store = Arc::new(ShieldStore::new(enclave(seed), config()).expect("live store"));
    let mut live = Replica::new(Arc::clone(&live_store), &hello)
        .map_err(|e| fail("live replica", format!("{e:?}")))?;
    let durable = primary.flush_wal().expect("flush").expect("durable watermark");
    catch_up(&primary, &mut live, durable, "stale promotion: pre-rotation catch-up")?;

    primary.snapshot_blocking(dir.join("sp-1.db"), &counter).expect("first snapshot");
    load(&primary, &mut shadow, "sp-g1-", 2, report)?;
    let durable = primary.flush_wal().expect("flush").expect("durable watermark");
    catch_up(&primary, &mut live, durable, "stale promotion: post-rotation catch-up")?;
    primary
        .repl_ack(hello.subscriber, live.watermark())
        .map_err(|e| fail("ack", format!("{e:?}")))?;
    primary.snapshot_blocking(dir.join("sp-2.db"), &counter).expect("second snapshot");

    // The stranded replica: same subscription, but positioned at the
    // stream's origin — a generation the second snapshot just pruned.
    let stranded_store = Arc::new(ShieldStore::new(enclave(seed), config()).expect("stranded"));
    let stranded = Replica::new(Arc::clone(&stranded_store), &hello)
        .map_err(|e| fail("stranded replica", format!("{e:?}")))?;
    report.attacks += 1;
    report.stale_promotions += 1;
    match stranded.promote(&p_wal, &dir.join("sp-s-wal")) {
        Err(_) => report.detected += 1,
        Ok(wm) => {
            return Err(fail("pruned generation", format!("stranded replica promoted at {wm}")));
        }
    }

    // The foreign replica: subscribed to a *different* primary, aimed at
    // this one's log. Its session keys cannot match the pin's.
    let f_wal = dir.join("sp-f-wal");
    let foreign_primary = ShieldStore::new(enclave(seed), config()).expect("foreign primary");
    foreign_primary.attach_wal(&f_wal).expect("attach foreign wal");
    foreign_primary.set(b"foreign", b"log").expect("foreign set");
    let f_hello = foreign_primary
        .repl_subscribe()
        .map_err(|e| fail("foreign subscribe", format!("{e:?}")))?;
    let foreign_store = Arc::new(ShieldStore::new(enclave(seed), config()).expect("foreign store"));
    let foreign = Replica::new(Arc::clone(&foreign_store), &f_hello)
        .map_err(|e| fail("foreign replica", format!("{e:?}")))?;
    report.attacks += 1;
    report.stale_promotions += 1;
    match foreign.promote(&p_wal, &dir.join("sp-f2-wal")) {
        Err(_) => report.detected += 1,
        Ok(wm) => {
            return Err(fail("foreign keys", format!("foreign replica promoted at {wm}")));
        }
    }

    // Both refusals happened before the fence: the primary is still the
    // primary.
    primary.set(b"still-primary", b"yes").map_err(|e| {
        fail("collateral fencing", format!("live primary fenced by a refused promotion: {e:?}"))
    })?;
    report.ops += 1;
    Ok(())
}

// ---------------------------------------------------------------------
// Attack C: truncation and corruption in flight
// ---------------------------------------------------------------------

/// Ships the stream one record at a time and mangles the first three
/// batches on the wire — truncating the frame bytes or flipping a bit
/// in them. Every mangled batch must be refused; the replica's position
/// never desyncs, so re-polling from its held watermark completes
/// catch-up to the byte-exact acknowledged state.
fn truncation_in_flight(
    seed: u64,
    dir: &Path,
    rng: &mut SplitMix64,
    report: &mut ReplReport,
) -> Result<(), Violation> {
    let p_wal = dir.join("tr-p-wal");
    let primary = ShieldStore::new(enclave(seed), config()).expect("primary");
    primary.attach_wal(&p_wal).expect("attach wal");
    let mut shadow = HashMap::new();
    load(&primary, &mut shadow, "tr", 8, report)?;
    let durable = primary.flush_wal().expect("flush").expect("durable watermark");

    let fail = |what: &str, detail: String| Violation {
        context: format!("truncation in flight: {what}"),
        detail,
    };
    let hello = primary.repl_subscribe().map_err(|e| fail("subscribe", format!("{e:?}")))?;
    let replica_store = Arc::new(ShieldStore::new(enclave(seed), config()).expect("replica store"));
    let mut replica = Replica::new(Arc::clone(&replica_store), &hello)
        .map_err(|e| fail("replica", format!("{e:?}")))?;

    let mut mangled = 0u64;
    while replica.watermark() < durable {
        let at = replica.watermark();
        // max_bytes=1 exercises the first-frame-always rule: every poll
        // ships exactly one record, so each tamper aims at one frame.
        let batch = primary
            .repl_batch(at.generation, at.seq, 1)
            .map_err(|e| fail("poll", format!("at {at}: {e:?}")))?;
        if mangled < 3 && batch.count > 0 {
            mangled += 1;
            report.attacks += 1;
            report.truncations += 1;
            let mut bad = batch.clone();
            if rng.next_below(2) == 0 {
                let cut = rng.next_below(bad.frames.len() as u64) as usize;
                bad.frames.truncate(cut);
            } else {
                let pos = rng.next_below(bad.frames.len() as u64) as usize;
                bad.frames[pos] ^= 1u8 << rng.next_below(8);
            }
            match replica.apply_batch(&bad) {
                Err(_) => report.detected += 1,
                Ok(wm) => {
                    return Err(fail("tampered batch", format!("applied through to {wm}")));
                }
            }
            // The chain must not have moved: the adversary only touched
            // authenticated frame bytes.
            if replica.watermark() != at {
                return Err(fail(
                    "chain position",
                    format!("moved from {at} to {} on a refused batch", replica.watermark()),
                ));
            }
            continue; // re-poll from the held position
        }
        replica
            .apply_batch(&batch)
            .map_err(|e| fail("genuine batch", format!("refused at {at}: {e:?}")))?;
    }
    verify_state(&replica_store, &shadow, "truncation in flight: caught-up state")?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn repl_phase_runs_clean_on_a_few_seeds() {
        for seed in 0..3 {
            let report = run_repl_phase(seed).unwrap_or_else(|v| {
                panic!("seed {seed}: repl-phase violation: {v}");
            });
            assert_eq!(report.split_brains, 2, "split-brain count drifted: {report:?}");
            assert_eq!(report.stale_promotions, 2, "stale-promotion count drifted: {report:?}");
            assert_eq!(report.truncations, 3, "truncation count drifted: {report:?}");
            assert_eq!(report.attacks, 7, "attack count drifted: {report:?}");
            assert_eq!(report.detected, 7, "undetected attack: {report:?}");
        }
    }
}
