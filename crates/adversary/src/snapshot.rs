//! Persistence-layer attacks: the adversary owns the snapshot file on
//! disk. Truncations, bit flips, and replays of stale-but-valid files
//! must all make `restore` fail — or, when a flip lands in bytes the
//! format legitimately ignores (the zeroed chain-pointer slack), restore
//! may succeed but every value must come back exact.

use crate::model::Violation;
use sgx_sim::counter::PersistentCounter;
use sgx_sim::enclave::EnclaveBuilder;
use shield_workload::rng::SplitMix64;
use shieldstore::{Config, Error, ShieldStore};
use std::path::{Path, PathBuf};

const KEYS: u64 = 32;

/// Outcome accounting for one snapshot-phase run.
#[derive(Debug, Default, Clone)]
pub struct SnapshotReport {
    /// Corrupted files offered to `restore`.
    pub corruptions: u64,
    /// Restores that failed (detections).
    pub detected: u64,
    /// Restores that survived because the flip hit ignored bytes.
    pub benign: u64,
}

fn config() -> Config {
    Config::shield_opt().buckets(64).mac_hashes(16).with_shards(2)
}

fn build_store(seed: u64) -> ShieldStore {
    let enclave = EnclaveBuilder::new("adversary-snap").seed(seed).epc_bytes(8 << 20).build();
    ShieldStore::new(enclave, config()).expect("store construction")
}

fn restore(seed: u64, path: &Path, counter: &PersistentCounter) -> Result<ShieldStore, Error> {
    let enclave = EnclaveBuilder::new("adversary-snap").seed(seed).epc_bytes(8 << 20).build();
    ShieldStore::restore(enclave, config(), path, counter)
}

fn key_bytes(id: u64) -> Vec<u8> {
    format!("snap-key-{id:03}").into_bytes()
}

fn value_bytes(id: u64, round: u64) -> Vec<u8> {
    format!("snap-value-{id}-round-{round}").into_bytes()
}

/// A scratch directory unique to this process and seed.
fn scratch_dir(seed: u64) -> PathBuf {
    std::env::temp_dir().join(format!("ss-adversary-{}-{seed}", std::process::id()))
}

/// Runs the snapshot corruption phase for one seed.
pub fn run_snapshot_phase(seed: u64) -> Result<SnapshotReport, Violation> {
    sgx_sim::vclock::reset();
    let dir = scratch_dir(seed);
    std::fs::create_dir_all(&dir).expect("scratch dir");
    let result = run_in_dir(seed, &dir);
    std::fs::remove_dir_all(&dir).ok();
    result
}

fn run_in_dir(seed: u64, dir: &Path) -> Result<SnapshotReport, Violation> {
    let mut report = SnapshotReport::default();
    let mut rng = SplitMix64::new(seed ^ 0x5eed_f11e_c0ff_ee00);
    let counter = PersistentCounter::open(dir.join("ctr")).expect("counter");

    // A clean store — never snapshot a tampered table; the attacks here
    // are on the *file*, not on live memory.
    let store = build_store(seed);
    for id in 0..KEYS {
        store.set(&key_bytes(id), &value_bytes(id, 0)).expect("clean set");
    }
    let snap_a = dir.join("a.db");
    store.snapshot_blocking(&snap_a, &counter).expect("snapshot a");

    // Sanity: the untouched file restores, with every value exact.
    check_exact_restore(seed, &snap_a, &counter, 0, "clean restore")?;

    // Corruption sweep: deterministic truncations and bit flips.
    let bytes = std::fs::read(&snap_a).expect("read snapshot");
    let corrupt = dir.join("corrupt.db");
    for round in 0..6u64 {
        let mutated = match round {
            0 => Vec::new(), // zero-length file
            1..=2 => {
                let cut = 1 + rng.next_below(bytes.len() as u64 - 1) as usize;
                bytes[..cut].to_vec()
            }
            _ => {
                let mut m = bytes.clone();
                let pos = rng.next_below(m.len() as u64) as usize;
                m[pos] ^= 1 << rng.next_below(8);
                m
            }
        };
        std::fs::write(&corrupt, &mutated).expect("write corrupted snapshot");
        report.corruptions += 1;
        match restore(seed, &corrupt, &counter) {
            Err(_) => report.detected += 1,
            Ok(restored) => {
                // Permitted only when the damage hit ignored bytes: the
                // restored contents must then be byte-exact.
                verify_contents(&restored, 0, "restore of corrupted file succeeded")?;
                report.benign += 1;
            }
        }
    }

    // Rollback: a second snapshot supersedes the first; replaying the
    // stale-but-internally-valid file must fail with `Rollback`.
    for id in 0..KEYS {
        store.set(&key_bytes(id), &value_bytes(id, 1)).expect("clean overwrite");
    }
    let snap_b = dir.join("b.db");
    store.snapshot_blocking(&snap_b, &counter).expect("snapshot b");
    check_exact_restore(seed, &snap_b, &counter, 1, "restore of latest snapshot")?;
    report.corruptions += 1;
    match restore(seed, &snap_a, &counter) {
        Err(Error::Rollback) => report.detected += 1,
        other => {
            return Err(Violation {
                context: "snapshot rollback".into(),
                detail: format!(
                    "replaying a stale snapshot returned {:?} instead of Err(Rollback)",
                    other.map(|_| "a working store"),
                ),
            });
        }
    }
    // The live store went through two freeze/snapshot/unfreeze cycles;
    // its counters must still satisfy every stats invariant.
    crate::engine::check_stats(&store, "snapshot phase stats")?;
    Ok(report)
}

fn check_exact_restore(
    seed: u64,
    path: &Path,
    counter: &PersistentCounter,
    round: u64,
    context: &str,
) -> Result<(), Violation> {
    match restore(seed, path, counter) {
        Ok(restored) => verify_contents(&restored, round, context),
        Err(e) => Err(Violation {
            context: context.into(),
            detail: format!("a valid snapshot failed to restore: {e:?}"),
        }),
    }
}

fn verify_contents(store: &ShieldStore, round: u64, context: &str) -> Result<(), Violation> {
    for id in 0..KEYS {
        match store.get(&key_bytes(id)) {
            Ok(v) if v == value_bytes(id, round) => {}
            other => {
                return Err(Violation {
                    context: context.into(),
                    detail: format!(
                        "restored store returned {other:?} for key {id} (expected round-{round} \
                         value): partial or wrong state after restore"
                    ),
                });
            }
        }
    }
    crate::engine::check_stats(store, context)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_phase_runs_clean_on_a_few_seeds() {
        for seed in 0..3 {
            let report = run_snapshot_phase(seed).unwrap_or_else(|v| {
                panic!("seed {seed}: snapshot-phase violation: {v}");
            });
            assert_eq!(report.corruptions, 7);
            assert!(report.detected >= 5, "too few detections: {report:?}");
        }
    }
}
