//! Storage-fault attacks: the adversary owns the disk's failure modes.
//!
//! Three scripted scenarios per seed, all deterministic:
//!
//! 1. **Fault under load** — a random commit-path I/O call fails (EIO,
//!    ENOSPC, short write, or a lying fsync, by seed). The writer must
//!    poison fail-closed (every later mutation answers
//!    [`shieldstore::Error::StorageFailed`], reads keep serving), and
//!    after a simulated power cut recovery must replay *exactly* the
//!    acknowledged prefix against the shadow model.
//! 2. **Segment rot, forged repair, genuine repair** — a sealed WAL
//!    byte flips on disk. The scrubber must find it and quarantine
//!    writes; a bit-flipped repair payload from a "lying peer" must be
//!    refused with the quarantine held; the genuine frames (from a
//!    journaling replica) must verify, swap in, and restore service.
//! 3. **Pin rot** — the sealed freshness pin flips a byte. The scrubber
//!    must detect it and self-repair from in-enclave state, leaving the
//!    store writable and recoverable.

use crate::model::Violation;
use sgx_sim::counter::PersistentCounter;
use sgx_sim::enclave::{Enclave, EnclaveBuilder};
use sgx_sim::storage::{FaultFs, FaultKind, FaultOp, FaultSpec, StorageFs};
use shield_workload::rng::SplitMix64;
use shieldstore::{Config, DurabilityPolicy, Error, Replica, ShieldStore};
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Accounting for the storage-fault phase.
#[derive(Debug, Default, Clone)]
pub struct StorageReport {
    /// Acknowledged operations across all scenarios.
    pub ops: u64,
    /// Storage faults and corruptions injected.
    pub attacks: u64,
    /// Faults detected (writer poisoned, scrub finding, forged repair
    /// refused).
    pub detected: u64,
    /// Writers driven into the fail-closed poisoned state.
    pub poisoned: u64,
    /// Simulated power cuts survived with the acked prefix intact.
    pub power_cuts: u64,
    /// Verified segment/pin repairs that restored service.
    pub repairs: u64,
}

const COMMIT_SITES: &[(FaultOp, &str, FaultKind)] = &[
    (FaultOp::Write, "wal-", FaultKind::Eio),
    (FaultOp::Write, "wal-", FaultKind::Enospc),
    (FaultOp::Write, "wal-", FaultKind::ShortWrite),
    (FaultOp::SyncData, "wal-", FaultKind::SyncFail),
    (FaultOp::SyncData, "wal-", FaultKind::Eio),
];

fn config() -> Config {
    Config::shield_opt()
        .buckets(64)
        .mac_hashes(16)
        .with_shards(2)
        .with_durability(DurabilityPolicy::Strict)
}

fn enclave(seed: u64) -> Arc<Enclave> {
    EnclaveBuilder::new("adversary-storage").seed(seed).epc_bytes(8 << 20).build()
}

fn scratch_dir(seed: u64) -> PathBuf {
    std::env::temp_dir().join(format!("ss-adversary-storage-{}-{seed}", std::process::id()))
}

/// Runs the storage-fault phase for one seed.
pub fn run_storage_phase(seed: u64) -> Result<StorageReport, Violation> {
    sgx_sim::vclock::reset();
    let dir = scratch_dir(seed);
    std::fs::create_dir_all(&dir).expect("scratch dir");
    let result = run_in_dir(seed, &dir);
    std::fs::remove_dir_all(&dir).ok();
    result
}

fn run_in_dir(seed: u64, dir: &Path) -> Result<StorageReport, Violation> {
    let mut report = StorageReport::default();
    let mut rng = SplitMix64::new(seed ^ 0xd15c_fa11_0bad_d15c);
    fault_under_load(seed, dir, &mut rng, &mut report)?;
    segment_rot_and_repair(seed, dir, &mut report)?;
    pin_rot_self_repair(seed, dir, &mut report)?;
    Ok(report)
}

fn fail(context: &str, detail: String) -> Violation {
    Violation { context: format!("storage phase: {context}"), detail }
}

// ---------------------------------------------------------------------
// Scenario 1: commit-path fault, poison, power cut, exact recovery
// ---------------------------------------------------------------------

fn fault_under_load(
    seed: u64,
    dir: &Path,
    rng: &mut SplitMix64,
    report: &mut StorageReport,
) -> Result<(), Violation> {
    let wal_dir = dir.join("fault-wal");
    let ffs = Arc::new(FaultFs::new());
    let store = ShieldStore::new_with_storage(
        enclave(seed),
        config(),
        Arc::clone(&ffs) as Arc<dyn StorageFs>,
    )
    .expect("store");
    store.attach_wal(&wal_dir).expect("attach wal");

    let total = 16 + rng.next_below(16);
    let fault_at = 2 + rng.next_below(total - 2);
    let (op, path, kind) = COMMIT_SITES[rng.next_below(COMMIT_SITES.len() as u64) as usize];
    ffs.inject(FaultSpec { op, path_substr: path.into(), nth: fault_at, kind });
    report.attacks += 1;

    let mut shadow: HashMap<Vec<u8>, Vec<u8>> = HashMap::new();
    let mut poisoned = false;
    for step in 0..total {
        let key = format!("sf-{step}").into_bytes();
        let value = format!("sv-{seed}-{step}").into_bytes();
        match store.set(&key, &value) {
            Ok(()) if !poisoned => {
                shadow.insert(key, value);
                report.ops += 1;
            }
            Ok(()) => {
                return Err(fail(
                    "fault under load",
                    format!("write acked after the writer poisoned ({op:?}/{kind:?})"),
                ));
            }
            Err(Error::StorageFailed) => poisoned = true,
            Err(e) => {
                return Err(fail("fault under load", format!("unexpected error {e:?}")));
            }
        }
    }
    if !poisoned {
        return Err(fail(
            "fault under load",
            format!("armed fault {op:?}/{kind:?} at nth={fault_at} never fired in {total} ops"),
        ));
    }
    report.detected += 1;
    report.poisoned += 1;

    // Reads keep serving the acked state under poison.
    for (key, value) in &shadow {
        match store.get(key) {
            Ok(v) if v == *value => {}
            other => {
                return Err(fail(
                    "fault under load",
                    format!("poisoned store misread an acked key: {other:?}"),
                ));
            }
        }
    }

    ffs.power_cut().expect("power cut");
    drop(store);
    report.power_cuts += 1;
    let counter = PersistentCounter::open(dir.join("fault-ctr")).expect("counter");
    let recovered = ShieldStore::recover(enclave(seed), config(), None, &counter, &wal_dir)
        .map_err(|e| fail("fault under load", format!("recovery failed: {e:?}")))?;
    crate::walphase::verify_state(&recovered, &shadow, "storage phase: power-cut recovery")?;
    Ok(())
}

// ---------------------------------------------------------------------
// Scenario 2: segment rot → quarantine → forged repair refused →
// genuine repair restores service
// ---------------------------------------------------------------------

fn segment_rot_and_repair(
    seed: u64,
    dir: &Path,
    report: &mut StorageReport,
) -> Result<(), Violation> {
    let wal_dir = dir.join("rot-wal");
    let store = Arc::new(ShieldStore::new(enclave(seed ^ 1), config()).expect("store"));
    store.attach_wal(&wal_dir).expect("attach wal");

    let hello = store.repl_subscribe().expect("subscribe");
    let rstore = Arc::new(ShieldStore::new(enclave(seed ^ 2), config()).expect("replica store"));
    let mut replica = Replica::with_journal(Arc::clone(&rstore), &hello, &dir.join("rot-journal"))
        .expect("journaling replica");
    for step in 0..16u64 {
        store.set(format!("rot-{step}").as_bytes(), format!("rv-{step}").as_bytes()).unwrap();
        report.ops += 1;
    }
    loop {
        let wm = replica.watermark();
        let batch = store.repl_batch(wm.generation, wm.seq, 1 << 20).expect("batch");
        if batch.count == 0 && batch.advance_to.is_none() {
            break;
        }
        replica.apply_batch(&batch).expect("apply");
    }

    // Rot a sealed byte at a seed-dependent offset past the header.
    let log = wal_dir.join("wal-0.log");
    let mut bytes = std::fs::read(&log).expect("read log");
    let off = 8 + (seed as usize % (bytes.len() - 8));
    bytes[off] ^= 1u8 << (seed % 8);
    std::fs::write(&log, &bytes).expect("write rot");
    report.attacks += 1;

    let mut found = false;
    for _ in 0..10_000 {
        let tick = store.scrub_tick(1 << 12).expect("scrub tick");
        if tick.corrupt_generation == Some(0) {
            found = true;
            break;
        }
        if tick.pass_completed {
            break;
        }
    }
    if !found {
        return Err(fail("segment rot", format!("scrub missed a flipped bit at offset {off}")));
    }
    report.detected += 1;
    if !matches!(store.set(b"rot-probe", b"x"), Err(Error::StorageFailed)) {
        return Err(fail("segment rot", "quarantined writer accepted a write".into()));
    }
    if store.get(b"rot-0").map_or(true, |v| v != b"rv-0") {
        return Err(fail("segment rot", "reads stopped serving under quarantine".into()));
    }

    // Collect the genuine frames from the journal.
    let mut genuine = Vec::new();
    let mut after = 0u64;
    loop {
        let b = replica.serve_frames(0, after, 1 << 14).expect("serve frames");
        if b.count == 0 {
            break;
        }
        after += u64::from(b.count);
        genuine.extend_from_slice(&b.frames);
    }

    // A lying peer: one flipped bit anywhere must be refused whole.
    let mut forged = genuine.clone();
    let flip = (seed as usize).wrapping_mul(31) % forged.len();
    forged[flip] ^= 0x10;
    report.attacks += 1;
    if store.repair_wal_segment(0, &forged).is_ok() {
        return Err(fail("segment rot", format!("forged repair accepted (flip at {flip})")));
    }
    report.detected += 1;
    if !matches!(store.set(b"rot-probe-2", b"x"), Err(Error::StorageFailed)) {
        return Err(fail("segment rot", "refused repair lifted the quarantine".into()));
    }

    store
        .repair_wal_segment(0, &genuine)
        .map_err(|e| fail("segment rot", format!("genuine repair refused: {e:?}")))?;
    report.repairs += 1;
    store
        .set(b"rot-after", b"back")
        .map_err(|e| fail("segment rot", format!("write after repair failed: {e:?}")))?;
    report.ops += 1;
    Ok(())
}

// ---------------------------------------------------------------------
// Scenario 3: pin rot self-repairs from in-enclave state
// ---------------------------------------------------------------------

fn pin_rot_self_repair(seed: u64, dir: &Path, report: &mut StorageReport) -> Result<(), Violation> {
    let wal_dir = dir.join("pin-wal");
    let store = ShieldStore::new(enclave(seed ^ 3), config()).expect("store");
    store.attach_wal(&wal_dir).expect("attach wal");
    for step in 0..8u64 {
        store.set(format!("pin-{step}").as_bytes(), b"pinned").unwrap();
        report.ops += 1;
    }

    let pin = wal_dir.join("wal.pin");
    let mut bytes = std::fs::read(&pin).expect("read pin");
    let off = seed as usize % bytes.len();
    bytes[off] ^= 0x04;
    std::fs::write(&pin, &bytes).expect("write pin rot");
    report.attacks += 1;

    let mut flagged = false;
    for _ in 0..10_000 {
        let tick = store.scrub_tick(1 << 16).expect("scrub tick");
        flagged |= tick.pin_corrupt;
        if tick.pass_completed {
            break;
        }
    }
    if !flagged {
        return Err(fail("pin rot", format!("scrub missed a flipped pin byte at {off}")));
    }
    report.detected += 1;
    if store.snapshot().scrub_repaired == 0 {
        return Err(fail("pin rot", "pin was not rewritten in place".into()));
    }
    report.repairs += 1;

    store
        .set(b"pin-after", b"ok")
        .map_err(|e| fail("pin rot", format!("write after pin repair failed: {e:?}")))?;
    report.ops += 1;
    drop(store);
    let counter = PersistentCounter::open(dir.join("pin-ctr")).expect("counter");
    let recovered = ShieldStore::recover(enclave(seed ^ 3), config(), None, &counter, &wal_dir)
        .map_err(|e| fail("pin rot", format!("recovery after pin repair failed: {e:?}")))?;
    if recovered.get(b"pin-after").map_or(true, |v| v != b"ok") {
        return Err(fail("pin rot", "post-repair write lost across recovery".into()));
    }
    Ok(())
}
