//! The `tenant` phase: cross-tenant attacks, checked differentially.
//!
//! Four attack kinds run per seed, each against the same two-tenant
//! store (victim tenant 2, attacker tenant 1, quota-bounded tenant 3):
//!
//! * **cross-read** — the attacker reads the victim's key names through
//!   its own namespace and sweeps raw untrusted memory with its *own
//!   leaked derived keys*. Nothing of the victim's may decrypt or
//!   verify.
//! * **forge** — the attacker re-MACs victim-tagged entries under its
//!   leaked key and plants them back. The victim's reads must fail
//!   closed, never serve the forgery.
//! * **quota-exhaustion** — a flood from the quota-bounded tenant must
//!   hit `QuotaExceeded` without ever overshooting its configured
//!   budget, and must not block the victim's writes.
//! * **TTL-resurrection** — expired entries are "revived" by rewriting
//!   the plaintext expiry field and by replaying stale pre-expiry entry
//!   bytes. An expired value must never be served again.
//!
//! Everything is a pure function of the seed, like the other phases.

use crate::model::Violation;
use shield_workload::rng::SplitMix64;
use shieldstore::testing::StaleEntry;
use shieldstore::{entry, ttl, Config, Error, ShieldStore, TenantQuota};

/// Accounting for one seed's tenant phase.
#[derive(Debug, Default, Clone)]
pub struct TenantReport {
    /// Store operations issued.
    pub ops: u64,
    /// Attack mutations landed (all kinds).
    pub attacks: u64,
    /// Attacks answered with an integrity failure (detections).
    pub detected: u64,
    /// Cross-namespace read attempts (API + leaked-key sweeps).
    pub cross_reads: u64,
    /// Forged entries planted.
    pub forgeries: u64,
    /// Writes rejected by quota.
    pub quota_rejections: u64,
    /// Expired-entry revival attempts.
    pub ttl_resurrections: u64,
}

const ATTACKER: u32 = 1;
const VICTIM: u32 = 2;
const BOUNDED: u32 = 3;
const NUM_KEYS: u64 = 16;

fn key_bytes(id: u64) -> Vec<u8> {
    format!("tenant-key-{id:04}").into_bytes()
}

fn value_bytes(tenant: u32, id: u64, seed: u64) -> Vec<u8> {
    format!("t{tenant}-v{id}-{:08x}", seed & 0xffff_ffff).into_bytes()
}

fn violation(context: &str, detail: String) -> Violation {
    Violation { context: context.into(), detail }
}

/// Unfreezes the TTL clock even when a check fails early.
struct ThawGuard;
impl Drop for ThawGuard {
    fn drop(&mut self) {
        ttl::thaw();
    }
}

/// Runs the tenant phase for one seed.
pub fn run_tenant_phase(seed: u64) -> Result<TenantReport, Violation> {
    sgx_sim::vclock::reset();
    let mut report = TenantReport::default();
    let mut rng = SplitMix64::new(seed ^ 0x7e4a_917e_4a91_7e4a);
    let enclave =
        sgx_sim::enclave::EnclaveBuilder::new("adversary-tenant").epc_bytes(16 << 20).build();
    let store =
        ShieldStore::new(enclave, Config::shield_opt().buckets(64).mac_hashes(16).with_shards(1))
            .map_err(|e| violation("tenant setup", format!("store: {e}")))?;

    // Freeze the TTL clock so expiry is deterministic per seed.
    let base_ns = 1_700_000_000_000_000_000u64 + (seed & 0xffff) * 1_000_000;
    ttl::freeze(base_ns);
    let _thaw = ThawGuard;

    // Populate attacker and victim namespaces over the SAME key names.
    for id in 0..NUM_KEYS {
        store
            .set_t(ATTACKER, &key_bytes(id), &value_bytes(ATTACKER, id, seed))
            .map_err(|e| violation("tenant warm-up", format!("attacker set: {e}")))?;
        store
            .set_t(VICTIM, &key_bytes(id), &value_bytes(VICTIM, id, seed))
            .map_err(|e| violation("tenant warm-up", format!("victim set: {e}")))?;
        report.ops += 2;
    }

    cross_read_attacks(&store, seed, &mut report)?;
    forge_attacks(&store, &mut rng, seed, &mut report)?;
    quota_exhaustion(&store, seed, &mut report)?;
    ttl_resurrection(&store, &mut rng, seed, &mut report)?;
    Ok(report)
}

/// Attack 1: cross-tenant reads via the API and via leaked keys over
/// raw memory.
fn cross_read_attacks(
    store: &ShieldStore,
    seed: u64,
    report: &mut TenantReport,
) -> Result<(), Violation> {
    // API level: the attacker's namespace resolves to its own values.
    for id in 0..NUM_KEYS {
        report.ops += 1;
        report.cross_reads += 1;
        let got = store
            .get_t(ATTACKER, &key_bytes(id))
            .map_err(|e| violation("cross-read", format!("attacker get: {e}")))?;
        if got == value_bytes(VICTIM, id, seed) {
            return Err(violation(
                "cross-read",
                format!("attacker read the victim's value for key {id}"),
            ));
        }
        if got != value_bytes(ATTACKER, id, seed) {
            return Err(violation(
                "cross-read",
                format!("attacker's own value wrong for key {id}"),
            ));
        }
    }

    // Raw level: leaked attacker keys over every victim entry.
    let (enc_raw, mac_raw) = store.leak_tenant_keys(ATTACKER);
    let enc = shield_crypto::ctr::AesCtr::new(&enc_raw);
    let mac = shield_crypto::cmac::Cmac::new(&mac_raw);
    let mut victim_entries = 0u64;
    for stale in store.stale_entry_copies(0) {
        let header = entry::parse_header(&stale.bytes);
        if header.tenant != VICTIM {
            continue;
        }
        victim_entries += 1;
        report.cross_reads += 1;
        report.attacks += 1;
        let ct = &stale.bytes[entry::HEADER_LEN..];
        if entry::verify_mac(&mac, &header, ct) {
            return Err(violation(
                "cross-read",
                "victim entry verified under the attacker's leaked MAC key".into(),
            ));
        }
        report.detected += 1;
        let (k, _v) = entry::decrypt_entry(&enc, &header, ct);
        if (0..NUM_KEYS).any(|id| k == key_bytes(id)) {
            return Err(violation(
                "cross-read",
                "attacker's leaked data key decrypted a victim key".into(),
            ));
        }
    }
    if victim_entries == 0 {
        return Err(violation("cross-read", "no victim entries found in raw memory".into()));
    }
    Ok(())
}

/// Attack 2: plant victim-tagged entries re-MACed under the attacker's
/// leaked key.
fn forge_attacks(
    store: &ShieldStore,
    rng: &mut SplitMix64,
    seed: u64,
    report: &mut TenantReport,
) -> Result<(), Violation> {
    let (_, mac_raw) = store.leak_tenant_keys(ATTACKER);
    let mac = shield_crypto::cmac::Cmac::new(&mac_raw);
    let stales = store.stale_entry_copies(0);
    let victims: Vec<&StaleEntry> =
        stales.iter().filter(|s| entry::parse_header(&s.bytes).tenant == VICTIM).collect();
    // Forge a pseudo-random subset (at least one).
    let picks = 1 + rng.next_below(victims.len() as u64 / 2 + 1) as usize;
    for stale in victims.iter().take(picks) {
        let header = entry::parse_header(&stale.bytes);
        let ct = &stale.bytes[entry::HEADER_LEN..];
        let tag = entry::compute_mac(
            &mac,
            ct,
            header.key_len,
            header.val_len,
            header.hint,
            header.tenant,
            header.expires_at,
            &header.iv,
        );
        let mut forged = stale.bytes.clone();
        forged[entry::OFF_MAC..entry::OFF_MAC + 16].copy_from_slice(&tag);
        if store.replay_entry(0, &StaleEntry { handle: stale.handle, bytes: forged }) {
            report.forgeries += 1;
            report.attacks += 1;
        }
    }

    // The victim's reads now either fail closed or return its own
    // values (for untouched entries) — never anything else.
    for id in 0..NUM_KEYS {
        report.ops += 1;
        match store.get_t(VICTIM, &key_bytes(id)) {
            Ok(v) => {
                if v != value_bytes(VICTIM, id, seed) {
                    return Err(violation(
                        "forge",
                        format!("victim read a non-own value for key {id}"),
                    ));
                }
            }
            Err(Error::IntegrityViolation { .. }) => report.detected += 1,
            Err(e) => {
                return Err(violation("forge", format!("unexpected error {e:?}")));
            }
        }
    }
    // Undo the attack (restore the captured honest bytes) so later
    // attacks start from a verifying store; the store itself rightly
    // refuses to write through a tampered chain.
    for stale in victims.iter().take(picks) {
        store.replay_entry(0, stale);
    }
    for id in 0..NUM_KEYS {
        report.ops += 1;
        let got = store
            .get_t(VICTIM, &key_bytes(id))
            .map_err(|e| violation("forge repair", format!("victim get: {e}")))?;
        if got != value_bytes(VICTIM, id, seed) {
            return Err(violation("forge repair", format!("key {id} not restored")));
        }
    }
    Ok(())
}

/// Attack 3: a bounded tenant floods past its quota.
fn quota_exhaustion(
    store: &ShieldStore,
    seed: u64,
    report: &mut TenantReport,
) -> Result<(), Violation> {
    let max_keys = 8u64;
    store.tenants().configure(BOUNDED, TenantQuota { max_bytes: u64::MAX, max_keys, weight: 1 });
    let mut rejected = 0u64;
    for id in 0..max_keys * 3 {
        report.ops += 1;
        match store.set_t(BOUNDED, &key_bytes(id), &value_bytes(BOUNDED, id, seed)) {
            Ok(()) => {}
            Err(Error::QuotaExceeded { tenant }) if tenant == BOUNDED => rejected += 1,
            Err(e) => return Err(violation("quota", format!("unexpected error {e:?}"))),
        }
    }
    report.attacks += 1;
    report.quota_rejections += rejected;
    if rejected == 0 {
        return Err(violation("quota", "flood past max_keys was never rejected".into()));
    }
    report.detected += 1;
    let used =
        store.tenants().state(BOUNDED).usage.used_keys.load(std::sync::atomic::Ordering::Relaxed);
    if used > max_keys {
        return Err(violation(
            "quota",
            format!("bounded tenant holds {used} keys over its {max_keys} budget"),
        ));
    }
    // The victim is unaffected by the bounded tenant's exhaustion.
    report.ops += 1;
    store
        .set_t(VICTIM, b"quota-victim-probe", b"still-writable")
        .map_err(|e| violation("quota", format!("victim write blocked: {e}")))?;
    Ok(())
}

/// Attack 4: revive expired entries by expiry-field rewrite and by
/// stale-bytes replay.
fn ttl_resurrection(
    store: &ShieldStore,
    rng: &mut SplitMix64,
    seed: u64,
    report: &mut TenantReport,
) -> Result<(), Violation> {
    let ttl_ns = 1_000_000_000u64; // 1s on the frozen clock
    let doomed: Vec<u64> = (0..4).map(|i| NUM_KEYS + 100 + i).collect();
    for &id in &doomed {
        report.ops += 1;
        store
            .set_ttl(VICTIM, &key_bytes(id), &value_bytes(VICTIM, id, seed), ttl_ns)
            .map_err(|e| violation("ttl", format!("set_ttl: {e}")))?;
    }
    // Stale pre-expiry copies for the replay attack.
    let stales: Vec<StaleEntry> = store
        .stale_entry_copies(0)
        .into_iter()
        .filter(|s| {
            let h = entry::parse_header(&s.bytes);
            h.tenant == VICTIM && h.expires_at != 0
        })
        .collect();
    if stales.is_empty() {
        return Err(violation("ttl", "no TTL'd victim entries captured".into()));
    }

    ttl::advance(ttl_ns + 1);

    // Expired: every read misses (lazy expiry).
    for &id in &doomed {
        report.ops += 1;
        match store.get_t(VICTIM, &key_bytes(id)) {
            Err(Error::KeyNotFound) => {}
            Ok(_) => return Err(violation("ttl", format!("expired key {id} still served"))),
            Err(e) => return Err(violation("ttl", format!("unexpected error {e:?}"))),
        }
    }

    // Revival 1: rewrite the plaintext expiry field to the far future.
    for stale in &stales {
        let mut revived = stale.bytes.clone();
        revived[entry::OFF_EXPIRY..entry::OFF_EXPIRY + 8].copy_from_slice(&u64::MAX.to_le_bytes());
        if store.replay_entry(0, &StaleEntry { handle: stale.handle, bytes: revived }) {
            report.ttl_resurrections += 1;
            report.attacks += 1;
        }
    }
    for &id in &doomed {
        report.ops += 1;
        match store.get_t(VICTIM, &key_bytes(id)) {
            Ok(_) => {
                return Err(violation("ttl", format!("expiry-field rewrite resurrected key {id}")))
            }
            Err(Error::KeyNotFound) => {}
            Err(Error::IntegrityViolation { .. }) => report.detected += 1,
            Err(e) => return Err(violation("ttl", format!("unexpected error {e:?}"))),
        }
    }

    // Restore honest bytes, sweep the expired entries out, then replay
    // the (authentically MACed!) stale pre-expiry bytes at a survivor's
    // slot — rollback to a live-looking expired entry.
    for stale in &stales {
        store.replay_entry(0, stale);
    }
    let swept = store.sweep_expired().map_err(|e| violation("ttl", format!("sweep: {e}")))?;
    if swept == 0 {
        return Err(violation("ttl", "sweep reclaimed nothing despite expired entries".into()));
    }
    report.ops += 1;

    let survivors = store.stale_entry_copies(0);
    if let Some(target) = survivors.get(rng.next_below(survivors.len() as u64) as usize) {
        if let Some(stale) = stales.first() {
            if store
                .replay_entry(0, &StaleEntry { handle: target.handle, bytes: stale.bytes.clone() })
            {
                report.ttl_resurrections += 1;
                report.attacks += 1;
            }
        }
    }
    for &id in &doomed {
        report.ops += 1;
        match store.get_t(VICTIM, &key_bytes(id)) {
            Ok(_) => return Err(violation("ttl", format!("stale replay resurrected key {id}"))),
            Err(Error::KeyNotFound) => {}
            Err(Error::IntegrityViolation { .. }) => report.detected += 1,
            Err(e) => return Err(violation("ttl", format!("unexpected error {e:?}"))),
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tenant_phase_runs_clean_over_seeds() {
        for seed in 0..8 {
            let report = run_tenant_phase(seed).expect("no violations");
            assert!(report.cross_reads > 0);
            assert!(report.forgeries > 0);
            assert!(report.quota_rejections > 0);
            assert!(report.ttl_resurrections > 0);
            assert!(report.detected > 0);
        }
    }

    #[test]
    fn tenant_phase_is_deterministic() {
        let a = run_tenant_phase(77).expect("clean");
        let b = run_tenant_phase(77).expect("clean");
        assert_eq!(a.ops, b.ops);
        assert_eq!(a.attacks, b.attacks);
        assert_eq!(a.detected, b.detected);
    }
}
