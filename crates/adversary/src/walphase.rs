//! Write-ahead-log attacks: the adversary owns the log file, the sealed
//! pin, and the process lifetime. Torn tails past the pinned point must
//! recover to the exact acknowledged state; everything else — truncation
//! into pinned records, bit flips, record splices, stale pin+log replays,
//! a hidden pin, or a pre-snapshot log offered after rotation — must make
//! [`ShieldStore::recover`] fail closed. Kill-point crash/recover cycles
//! are cross-checked against an in-process shadow model, with the loss
//! window bounded exactly by the configured [`DurabilityPolicy`].

use crate::model::Violation;
use sgx_sim::counter::PersistentCounter;
use sgx_sim::enclave::{Enclave, EnclaveBuilder};
use shield_workload::rng::SplitMix64;
use shieldstore::{Config, DurabilityPolicy, Error, ShieldStore};
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Keys per namespace; small so deletes and overwrites collide often.
const KEY_SPACE: u64 = 16;

/// Outcome accounting for one WAL-phase run.
#[derive(Debug, Default, Clone)]
pub struct WalReport {
    /// Tampered or stale logs offered to `recover` that must fail.
    pub attacks: u64,
    /// Recoveries that failed closed (detections).
    pub detected: u64,
    /// Host-side damage the format tolerates by design (torn un-pinned
    /// tail): recovery must succeed with byte-exact acknowledged state.
    pub benign: u64,
    /// Crash/recover cycles whose replayed state matched the shadow
    /// model within the policy-permitted loss window.
    pub cycles: u64,
}

fn config(policy: DurabilityPolicy) -> Config {
    Config::shield_opt().buckets(64).mac_hashes(16).with_shards(2).with_durability(policy)
}

fn enclave(seed: u64) -> Arc<Enclave> {
    EnclaveBuilder::new("adversary-wal").seed(seed).epc_bytes(8 << 20).build()
}

/// A scratch directory unique to this process and seed.
fn scratch_dir(seed: u64) -> PathBuf {
    std::env::temp_dir().join(format!("ss-adversary-wal-{}-{seed}", std::process::id()))
}

/// Runs the WAL attack phase for one seed.
pub fn run_wal_phase(seed: u64) -> Result<WalReport, Violation> {
    sgx_sim::vclock::reset();
    let dir = scratch_dir(seed);
    std::fs::create_dir_all(&dir).expect("scratch dir");
    let result = run_in_dir(seed, &dir);
    std::fs::remove_dir_all(&dir).ok();
    result
}

fn run_in_dir(seed: u64, dir: &Path) -> Result<WalReport, Violation> {
    let mut report = WalReport::default();
    let mut rng = SplitMix64::new(seed ^ 0x0a1c_5ea1_ed10_6f11);
    crash_cycles_strict(seed, dir, &mut rng, &mut report)?;
    group_commit_loss_window(seed, dir, &mut rng, &mut report)?;
    log_tamper_attacks(seed, dir, &mut rng, &mut report)?;
    stale_log_after_snapshot(seed, dir, &mut report)?;
    snapshot_crash_window(seed, dir, &mut report)?;
    Ok(report)
}

// ---------------------------------------------------------------------
// Shadow-model op generator
// ---------------------------------------------------------------------

/// One acknowledged mutation: the key and the value it left behind
/// (`None` = deleted). Replay of a committed prefix of these must
/// reproduce the recovered store exactly.
type Effect = (Vec<u8>, Option<Vec<u8>>);

/// Applies one random mutation to `store` and `shadow` in lockstep.
/// Returns the effect when the store acknowledged a state change.
fn apply_random_op(
    store: &ShieldStore,
    shadow: &mut HashMap<Vec<u8>, Vec<u8>>,
    rng: &mut SplitMix64,
    step: u64,
) -> Result<Option<Effect>, Violation> {
    let fail = |what: &str, detail: String| {
        Err(Violation { context: format!("wal phase op: {what}"), detail })
    };
    match rng.next_below(10) {
        0..=4 => {
            let key = format!("k{}", rng.next_below(KEY_SPACE)).into_bytes();
            let value = format!("wal-val-{step}").into_bytes();
            if let Err(e) = store.set(&key, &value) {
                return fail("set", format!("{e:?}"));
            }
            shadow.insert(key.clone(), value.clone());
            Ok(Some((key, Some(value))))
        }
        5..=6 => {
            let key = format!("k{}", rng.next_below(KEY_SPACE)).into_bytes();
            match (store.delete(&key), shadow.remove(&key).is_some()) {
                (Ok(()), true) => Ok(Some((key, None))),
                (Err(Error::KeyNotFound), false) => Ok(None),
                (res, present) => {
                    fail("delete", format!("store said {res:?}, shadow present={present}"))
                }
            }
        }
        7 => {
            let key = format!("a{}", rng.next_below(4)).into_bytes();
            let suffix = format!("+{step}").into_bytes();
            if let Err(e) = store.append(&key, &suffix) {
                return fail("append", format!("{e:?}"));
            }
            let entry = shadow.entry(key.clone()).or_default();
            entry.extend_from_slice(&suffix);
            let value = entry.clone();
            Ok(Some((key, Some(value))))
        }
        _ => {
            let key = format!("n{}", rng.next_below(4)).into_bytes();
            let delta = rng.next_below(100) as i64 - 50;
            let current: i64 = shadow
                .get(&key)
                .map(|v| String::from_utf8_lossy(v).parse().expect("shadow counter"))
                .unwrap_or(0);
            match store.increment(&key, delta) {
                Ok(next) if next == current + delta => {
                    let value = next.to_string().into_bytes();
                    shadow.insert(key.clone(), value.clone());
                    Ok(Some((key, Some(value))))
                }
                other => fail("increment", format!("expected {}, got {other:?}", current + delta)),
            }
        }
    }
}

/// Recovered state must be byte-exact against the expected map.
/// Shared with the storage phase, which checks the same invariant
/// after a power cut instead of a process kill.
pub(crate) fn verify_state(
    store: &ShieldStore,
    expected: &HashMap<Vec<u8>, Vec<u8>>,
    context: &str,
) -> Result<(), Violation> {
    if store.len() != expected.len() {
        return Err(Violation {
            context: context.into(),
            detail: format!(
                "recovered store has {} entries, shadow model has {}",
                store.len(),
                expected.len()
            ),
        });
    }
    for (key, value) in expected {
        match store.get(key) {
            Ok(v) if v == *value => {}
            other => {
                return Err(Violation {
                    context: context.into(),
                    detail: format!(
                        "key {:?} recovered as {other:?}, shadow model holds {:?}",
                        String::from_utf8_lossy(key),
                        String::from_utf8_lossy(value),
                    ),
                });
            }
        }
    }
    crate::engine::check_stats(store, context)
}

// ---------------------------------------------------------------------
// Part A: kill-point crash/recover cycles under Strict
// ---------------------------------------------------------------------

/// Strict commits every acknowledged op before returning, so each
/// recovery must reproduce the shadow model exactly — across repeated
/// crash/recover cycles that chain one log generation's pin into the
/// next process life.
fn crash_cycles_strict(
    seed: u64,
    dir: &Path,
    rng: &mut SplitMix64,
    report: &mut WalReport,
) -> Result<(), Violation> {
    let wal_dir = dir.join("strict-wal");
    let counter = PersistentCounter::open(dir.join("strict-ctr")).expect("counter");
    let mut shadow = HashMap::new();
    let mut store =
        ShieldStore::new(enclave(seed), config(DurabilityPolicy::Strict)).expect("store");
    store.attach_wal(&wal_dir).expect("attach wal");
    for cycle in 0..3u64 {
        for step in 0..20 {
            apply_random_op(&store, &mut shadow, rng, cycle * 100 + step)?;
        }
        store.wal_handle().expect("wal attached").simulate_crash();
        drop(store);
        store = ShieldStore::recover(
            enclave(seed),
            config(DurabilityPolicy::Strict),
            None,
            &counter,
            &wal_dir,
        )
        .map_err(|e| Violation {
            context: "strict crash cycle".into(),
            detail: format!("recovery after clean crash failed: {e:?}"),
        })?;
        verify_state(&store, &shadow, "strict crash cycle")?;
        report.cycles += 1;
    }
    Ok(())
}

// ---------------------------------------------------------------------
// Part B: group-commit loss window under EveryN
// ---------------------------------------------------------------------

/// With `EveryN(4)` a crash may only lose the buffered suffix — fewer
/// than 4 acknowledged effects. The recovered store must equal the
/// shadow model replayed up to the last group-commit boundary, exactly.
fn group_commit_loss_window(
    seed: u64,
    dir: &Path,
    rng: &mut SplitMix64,
    report: &mut WalReport,
) -> Result<(), Violation> {
    let wal_dir = dir.join("group-wal");
    let counter = PersistentCounter::open(dir.join("group-ctr")).expect("counter");
    let policy = DurabilityPolicy::EveryN(4);
    let store = ShieldStore::new(enclave(seed), config(policy)).expect("store");
    store.attach_wal(&wal_dir).expect("attach wal");

    let mut shadow = HashMap::new();
    let mut effects: Vec<Effect> = Vec::new();
    let total = 10 + rng.next_below(8);
    let mut step = 0u64;
    while (effects.len() as u64) < total {
        if let Some(effect) = apply_random_op(&store, &mut shadow, rng, 1000 + step)? {
            effects.push(effect);
        }
        step += 1;
    }
    store.wal_handle().expect("wal attached").simulate_crash();
    drop(store);

    // Only whole groups of 4 reached the log; the buffered remainder is
    // legitimately lost. Anything else — more, fewer, or reordered — is
    // a durability violation.
    let committed = effects.len() - effects.len() % 4;
    let mut expected = HashMap::new();
    for (key, value) in &effects[..committed] {
        match value {
            Some(v) => {
                expected.insert(key.clone(), v.clone());
            }
            None => {
                expected.remove(key);
            }
        }
    }
    let recovered = ShieldStore::recover(enclave(seed), config(policy), None, &counter, &wal_dir)
        .map_err(|e| Violation {
        context: "group-commit crash".into(),
        detail: format!("recovery after group-commit crash failed: {e:?}"),
    })?;
    verify_state(&recovered, &expected, "group-commit loss window")?;
    report.cycles += 1;
    Ok(())
}

// ---------------------------------------------------------------------
// Part C: attacks on the log file and pin
// ---------------------------------------------------------------------

/// Splits a raw log image into its length-prefixed frames. Only used to
/// aim the splice attack; the store's own parser is the thing under test.
fn frame_spans(bytes: &[u8]) -> Vec<std::ops::Range<usize>> {
    let mut spans = Vec::new();
    let mut off = 0;
    while off + 4 <= bytes.len() {
        let len = u32::from_le_bytes(bytes[off..off + 4].try_into().expect("4 bytes")) as usize;
        let end = off + 4 + len;
        if end > bytes.len() {
            break;
        }
        spans.push(off..end);
        off = end;
    }
    spans
}

/// Writes 8 strictly-committed records, crashes, then replays tampered
/// images of the pin and log. Every mutation of pinned bytes must fail
/// closed; garbage appended past the pin must be cleanly dropped.
fn log_tamper_attacks(
    seed: u64,
    dir: &Path,
    rng: &mut SplitMix64,
    report: &mut WalReport,
) -> Result<(), Violation> {
    let wal_dir = dir.join("tamper-wal");
    let counter = PersistentCounter::open(dir.join("tamper-ctr")).expect("counter");
    let store = ShieldStore::new(enclave(seed), config(DurabilityPolicy::Strict)).expect("store");
    store.attach_wal(&wal_dir).expect("attach wal");
    let mut shadow = HashMap::new();
    for id in 0..8u64 {
        let key = format!("c{id}").into_bytes();
        let value = format!("tamper-val-{id}").into_bytes();
        store.set(&key, &value).expect("clean set");
        shadow.insert(key, value);
    }
    store.wal_handle().expect("wal attached").simulate_crash();
    drop(store);

    let pin_path = wal_dir.join("wal.pin");
    let log_path = wal_dir.join("wal-0.log");
    let pin_bytes = std::fs::read(&pin_path).expect("read pin");
    let log_bytes = std::fs::read(&log_path).expect("read log");
    let restore_files = || {
        std::fs::write(&pin_path, &pin_bytes).expect("restore pin");
        std::fs::write(&log_path, &log_bytes).expect("restore log");
    };
    let recover = || {
        ShieldStore::recover(
            enclave(seed),
            config(DurabilityPolicy::Strict),
            None,
            &counter,
            &wal_dir,
        )
    };
    let mut expect_err = |mutate: &dyn Fn(), what: &str| -> Result<(), Violation> {
        restore_files();
        mutate();
        report.attacks += 1;
        match recover() {
            Err(_) => {
                report.detected += 1;
                Ok(())
            }
            Ok(store) => Err(Violation {
                context: format!("wal tamper: {what}"),
                detail: format!(
                    "recovery accepted a tampered log and produced a {}-entry store",
                    store.len()
                ),
            }),
        }
    };

    // Truncation into pinned records: the pin remembers sequence 8, so a
    // log that ends early is a rollback, not a torn tail.
    let cut = 1 + rng.next_below(log_bytes.len() as u64 - 1) as usize;
    expect_err(&|| std::fs::write(&log_path, &log_bytes[..cut]).expect("truncate"), "truncation")?;

    // Bit flips anywhere in the image: length fields, sequence numbers,
    // IVs, ciphertext, and MACs are all covered by the record MACs.
    for _ in 0..3 {
        let pos = rng.next_below(log_bytes.len() as u64) as usize;
        let bit = 1u8 << rng.next_below(8);
        expect_err(
            &|| {
                let mut m = log_bytes.clone();
                m[pos] ^= bit;
                std::fs::write(&log_path, &m).expect("flip");
            },
            "bit flip",
        )?;
    }

    // Record splice: swap two internally-valid frames. Each MAC chains
    // over its predecessor's, so reordering breaks the chain.
    let spans = frame_spans(&log_bytes);
    assert!(spans.len() >= 2, "strict log should hold one frame per op");
    expect_err(
        &|| {
            let mut m = Vec::with_capacity(log_bytes.len());
            m.extend_from_slice(&log_bytes[spans[1].clone()]);
            m.extend_from_slice(&log_bytes[spans[0].clone()]);
            m.extend_from_slice(&log_bytes[spans[1].end..]);
            std::fs::write(&log_path, &m).expect("splice");
        },
        "record splice",
    )?;

    // The sealed pin itself: every byte is CMAC-authenticated.
    let pin_pos = rng.next_below(pin_bytes.len() as u64) as usize;
    let pin_bit = 1u8 << rng.next_below(8);
    expect_err(
        &|| {
            let mut m = pin_bytes.clone();
            m[pin_pos] ^= pin_bit;
            std::fs::write(&pin_path, &m).expect("flip pin");
        },
        "pin bit flip",
    )?;

    // Torn tail past the pin: a crashed half-written frame is the one
    // kind of damage the format absorbs. Recovery must drop it and
    // reproduce the acknowledged state byte-exactly. (This recovery
    // succeeds, advancing the monotonic counter past the saved pin.)
    restore_files();
    let garbage = 1 + rng.next_below(32);
    {
        let mut m = log_bytes.clone();
        for _ in 0..garbage {
            m.push(rng.next_below(256) as u8);
        }
        std::fs::write(&log_path, &m).expect("torn tail");
    }
    match recover() {
        Ok(recovered) => {
            verify_state(&recovered, &shadow, "torn un-pinned tail")?;
            report.benign += 1;
        }
        Err(e) => {
            return Err(Violation {
                context: "torn un-pinned tail".into(),
                detail: format!("recovery should drop trailing garbage, got {e:?}"),
            });
        }
    }

    // Stale pin+log replay: the files are internally valid but the
    // monotonic counter has moved on. Must be a rollback, specifically.
    restore_files();
    report.attacks += 1;
    match recover() {
        Err(Error::Rollback) => report.detected += 1,
        other => {
            return Err(Violation {
                context: "stale wal replay".into(),
                detail: format!(
                    "replaying a superseded pin+log returned {:?} instead of Err(Rollback)",
                    other.map(|_| "a working store"),
                ),
            });
        }
    }

    // Hidden pin: deleting the pin and log while the counter says a
    // generation exists must also be a rollback, not a fresh start.
    std::fs::remove_file(&pin_path).expect("hide pin");
    std::fs::remove_file(wal_dir.join("wal-0.log")).ok();
    report.attacks += 1;
    match recover() {
        Err(Error::Rollback) => report.detected += 1,
        other => {
            return Err(Violation {
                context: "hidden wal pin".into(),
                detail: format!(
                    "a hidden pin returned {:?} instead of Err(Rollback)",
                    other.map(|_| "a working store"),
                ),
            });
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------
// Part D: rotation and the pre-snapshot log
// ---------------------------------------------------------------------

/// A snapshot rotates the log to a new generation. Normal recovery
/// (snapshot + rotated tail) must be exact; offering the pre-snapshot
/// pin and log afterwards must fail closed.
fn stale_log_after_snapshot(
    seed: u64,
    dir: &Path,
    report: &mut WalReport,
) -> Result<(), Violation> {
    let wal_dir = dir.join("rotate-wal");
    let counter = PersistentCounter::open(dir.join("rotate-ctr")).expect("counter");
    let store = ShieldStore::new(enclave(seed), config(DurabilityPolicy::Strict)).expect("store");
    store.attach_wal(&wal_dir).expect("attach wal");
    let mut shadow = HashMap::new();
    for id in 0..6u64 {
        let key = format!("r{id}").into_bytes();
        let value = format!("rot-val-{id}").into_bytes();
        store.set(&key, &value).expect("pre-snapshot set");
        shadow.insert(key, value);
    }

    // Capture the generation-0 pin and log before rotation deletes them.
    let stale_pin = std::fs::read(wal_dir.join("wal.pin")).expect("read pin");
    let stale_log = std::fs::read(wal_dir.join("wal-0.log")).expect("read log");

    let snap = dir.join("rotate.db");
    store.snapshot_blocking(&snap, &counter).expect("snapshot");
    for id in 0..2u64 {
        let key = format!("t{id}").into_bytes();
        let value = format!("tail-val-{id}").into_bytes();
        store.set(&key, &value).expect("tail set");
        shadow.insert(key, value);
    }
    store.wal_handle().expect("wal attached").simulate_crash();
    drop(store);

    // Honest recovery: snapshot plus the rotated generation-1 tail.
    let recovered = ShieldStore::recover(
        enclave(seed),
        config(DurabilityPolicy::Strict),
        Some(&snap),
        &counter,
        &wal_dir,
    )
    .map_err(|e| Violation {
        context: "post-snapshot recovery".into(),
        detail: format!("recovery from snapshot + rotated tail failed: {e:?}"),
    })?;
    verify_state(&recovered, &shadow, "post-snapshot recovery")?;
    recovered.wal_handle().expect("wal attached").simulate_crash();
    drop(recovered);

    // Replay the pre-snapshot generation against the post-snapshot
    // store: the pin names generation 0, the snapshot says 1, and the
    // counter has moved past the stale pin's claim.
    std::fs::write(wal_dir.join("wal.pin"), &stale_pin).expect("plant stale pin");
    std::fs::write(wal_dir.join("wal-0.log"), &stale_log).expect("plant stale log");
    report.attacks += 1;
    match ShieldStore::recover(
        enclave(seed),
        config(DurabilityPolicy::Strict),
        Some(&snap),
        &counter,
        &wal_dir,
    ) {
        Err(Error::Rollback) => report.detected += 1,
        other => {
            return Err(Violation {
                context: "pre-snapshot log replay".into(),
                detail: format!(
                    "a pre-rotation pin+log returned {:?} instead of Err(Rollback)",
                    other.map(|_| "a working store"),
                ),
            });
        }
    }
    report.cycles += 1;
    Ok(())
}

// ---------------------------------------------------------------------
// Part E: crash inside the snapshot/rotation window
// ---------------------------------------------------------------------

/// The most dangerous durability window: a snapshot has *begun* (the log
/// rotated to the upcoming generation) but never lands on disk. The old
/// log generation must survive until the snapshot is durably renamed, so
/// a writer failure followed by a crash recovers every acknowledged
/// write from the last good snapshot plus both retained log generations.
fn snapshot_crash_window(seed: u64, dir: &Path, report: &mut WalReport) -> Result<(), Violation> {
    let wal_dir = dir.join("window-wal");
    let counter = PersistentCounter::open(dir.join("window-ctr")).expect("counter");
    let store = ShieldStore::new(enclave(seed), config(DurabilityPolicy::Strict)).expect("store");
    store.attach_wal(&wal_dir).expect("attach wal");
    let mut shadow = HashMap::new();
    for id in 0..6u64 {
        let key = format!("b{id}").into_bytes();
        let value = format!("base-val-{id}").into_bytes();
        store.set(&key, &value).expect("base set");
        shadow.insert(key, value);
    }
    let snap = dir.join("window.db");
    store.snapshot_blocking(&snap, &counter).expect("good snapshot");
    for id in 0..4u64 {
        let key = format!("w{id}").into_bytes();
        let value = format!("mid-val-{id}").into_bytes();
        store.set(&key, &value).expect("mid set");
        shadow.insert(key, value);
    }

    // A background snapshot whose writer dies (target directory missing):
    // rotation began, the snapshot never lands.
    let job = store
        .snapshot_background(dir.join("no-such-dir").join("s.db"), &counter)
        .expect("start background snapshot");
    if job.finish().is_ok() {
        return Err(Violation {
            context: "snapshot crash window".into(),
            detail: "background snapshot into a missing directory reported success".into(),
        });
    }
    // The store keeps acknowledging writes into the newest generation.
    for id in 0..4u64 {
        let key = format!("x{id}").into_bytes();
        let value = format!("tail-val-{id}").into_bytes();
        store.set(&key, &value).expect("tail set");
        shadow.insert(key, value);
    }
    store.wal_handle().expect("wal attached").simulate_crash();
    drop(store);

    // Recovery from the last *successful* snapshot must replay both
    // retained generations: Strict means not one acknowledged write may
    // be missing.
    let recovered = ShieldStore::recover(
        enclave(seed),
        config(DurabilityPolicy::Strict),
        Some(&snap),
        &counter,
        &wal_dir,
    )
    .map_err(|e| Violation {
        context: "snapshot crash window".into(),
        detail: format!("recovery after a failed snapshot attempt failed: {e:?}"),
    })?;
    verify_state(&recovered, &shadow, "snapshot crash window")?;
    report.cycles += 1;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wal_phase_runs_clean_on_a_few_seeds() {
        for seed in 0..3 {
            let report = run_wal_phase(seed).unwrap_or_else(|v| {
                panic!("seed {seed}: wal-phase violation: {v}");
            });
            assert_eq!(report.attacks, 9, "attack count drifted: {report:?}");
            assert_eq!(report.detected, 9, "undetected attack: {report:?}");
            assert_eq!(report.benign, 1, "torn-tail case missing: {report:?}");
            assert_eq!(report.cycles, 6, "crash cycle count drifted: {report:?}");
        }
    }
}
