//! Wire-layer attacks: a deterministic byte-level fault proxy sits
//! between a real client and a real server, garbling, truncating,
//! duplicating, and dropping frames. The client survives by failing
//! closed — any receive failure poisons the session and forces a
//! reconnect — and the shadow model checks that no fault ever turns
//! into silently wrong data.

use crate::model::{ShadowModel, Violation};
use sgx_sim::attest::AttestationVerifier;
use sgx_sim::enclave::EnclaveBuilder;
use shield_net::client::KvClient;
use shield_net::proxy::{FaultPlan, FaultProxy};
use shield_net::server::{CrossingMode, Server, ServerConfig};
use shield_workload::rng::SplitMix64;
use shieldstore::{Config, ShieldStore};
use std::sync::Arc;
use std::time::Duration;

const NUM_KEYS: u64 = 24;
const OPS: u64 = 14;
const READ_TIMEOUT: Duration = Duration::from_millis(150);

/// Outcome accounting for one wire-phase run.
#[derive(Debug, Default, Clone)]
pub struct WireReport {
    /// Operations attempted over the faulty link.
    pub ops: u64,
    /// Frame faults the proxy actually injected.
    pub faults: u64,
    /// Operations that failed closed (poisoned session, reconnect).
    pub failed_closed: u64,
    /// Reconnects forced by poisoned sessions.
    pub reconnects: u64,
}

fn key_bytes(id: u64) -> Vec<u8> {
    shield_workload::make_key(id, 12)
}

fn value_bytes(id: u64, step: u64) -> Vec<u8> {
    shield_workload::make_value(id, step, 20)
}

/// Runs the proxy-mediated wire phase for one seed.
pub fn run_wire_phase(seed: u64) -> Result<WireReport, Violation> {
    sgx_sim::vclock::reset();
    let enclave = EnclaveBuilder::new("adversary-wire").seed(seed).epc_bytes(8 << 20).build();
    let store = Arc::new(
        ShieldStore::new(Arc::clone(&enclave), Config::shield_opt().buckets(64).mac_hashes(16))
            .expect("store construction"),
    );
    // One event loop: the engine then executes an old connection's
    // in-flight request before a new connection's (strict global FIFO),
    // so the model's sequential view stays valid across reconnects.
    // Short frame/drain deadlines keep seeds fast when the proxy's
    // `Stall` fault leaves a half-written frame on the server.
    let backend: Arc<dyn shield_baseline::KvBackend> = store.clone();
    let server = Server::start(
        backend,
        Some(Arc::clone(&enclave)),
        ServerConfig {
            event_loops: 1,
            crossing: CrossingMode::HotCalls,
            secure: true,
            frame_timeout: Duration::from_millis(500),
            drain_deadline: Duration::from_millis(500),
            ..Default::default()
        },
    )
    .expect("server start");
    let verifier = AttestationVerifier::for_enclave(&enclave);
    // skip_frames=1 keeps the one-frame-each-way handshake clean; every
    // frame after that is fair game, one fault per `period` frames.
    let proxy = FaultProxy::start(server.addr(), FaultPlan { seed, skip_frames: 1, period: 3 })
        .expect("proxy start");

    let mut report = WireReport::default();
    let mut model = ShadowModel::new();
    let mut rng = SplitMix64::new(seed ^ 0x3131_c0de_fa17_0000);
    let mut conn_seq = 0u64;
    let mut client = connect(&proxy, &verifier, seed, &mut conn_seq);

    let result = (|| {
        for step in 0..OPS {
            report.ops += 1;
            let id = rng.next_u64() % NUM_KEYS;
            let key = key_bytes(id);
            let failed = match rng.next_below(3) {
                0 => match client.get(&key) {
                    Ok(observed) => {
                        model.check_read("wire get", &key, &observed)?;
                        false
                    }
                    Err(_) => true,
                },
                1 => {
                    let value = value_bytes(id, step);
                    match client.set(&key, &value) {
                        Ok(()) => {
                            model.apply_set(&key, &value);
                            false
                        }
                        Err(_) => {
                            // The request may or may not have reached the
                            // store before the fault hit.
                            model.apply_failed_set(&key, &value);
                            true
                        }
                    }
                }
                _ => match client.delete(&key) {
                    Ok(true) => {
                        model.check_delete_hit("wire delete", &key)?;
                        model.apply_delete(&key);
                        false
                    }
                    Ok(false) => {
                        model.check_read("wire delete miss", &key, &None)?;
                        false
                    }
                    Err(_) => {
                        model.apply_failed_delete(&key);
                        true
                    }
                },
            };
            if failed {
                // Fail closed: the session is poisoned; reconnect.
                report.failed_closed += 1;
                report.reconnects += 1;
                client = connect(&proxy, &verifier, seed, &mut conn_seq);
            }
        }

        // Batched ops through the same faulty link.
        for round in 0..3u64 {
            report.ops += 1;
            let n = 2 + rng.next_below(4) as usize;
            if rng.next_below(2) == 0 {
                let keys: Vec<Vec<u8>> =
                    (0..n).map(|_| key_bytes(rng.next_u64() % NUM_KEYS)).collect();
                match client.multi_get(&keys) {
                    Ok(results) if results.len() == keys.len() => {
                        for (key, r) in keys.iter().zip(results) {
                            model.check_read("wire multi_get", key, &r)?;
                        }
                    }
                    Ok(results) => {
                        return Err(Violation {
                            context: "wire multi_get".into(),
                            detail: format!(
                                "asked for {} keys, got {} results",
                                keys.len(),
                                results.len()
                            ),
                        });
                    }
                    Err(_) => {
                        report.failed_closed += 1;
                        report.reconnects += 1;
                        client = connect(&proxy, &verifier, seed, &mut conn_seq);
                    }
                }
            } else {
                let items: Vec<(Vec<u8>, Vec<u8>)> = (0..n)
                    .map(|i| {
                        let id = rng.next_u64() % NUM_KEYS;
                        (key_bytes(id), value_bytes(id, 1000 + round * 10 + i as u64))
                    })
                    .collect();
                match client.multi_set(&items) {
                    Ok(()) => {
                        for (key, value) in &items {
                            model.apply_set(key, value);
                        }
                    }
                    Err(_) => {
                        for (key, value) in &items {
                            model.apply_failed_set(key, value);
                        }
                        report.failed_closed += 1;
                        report.reconnects += 1;
                        client = connect(&proxy, &verifier, seed, &mut conn_seq);
                    }
                }
            }
        }
        Ok(())
    })();

    report.faults = proxy.faults_injected();
    drop(client);
    proxy.shutdown();
    server.shutdown();
    // With every worker joined, the store is quiescent: its counters must
    // be self-consistent no matter where the injected faults cut frames.
    result.and_then(|()| crate::engine::check_stats(&store, "wire phase stats")).map(|()| report)
}

fn connect(
    proxy: &FaultProxy,
    verifier: &AttestationVerifier,
    seed: u64,
    conn_seq: &mut u64,
) -> KvClient {
    *conn_seq += 1;
    // The handshake itself crosses the proxy but is protected by
    // skip_frames; retry a few times anyway in case a previous
    // connection's teardown races the accept loop.
    for attempt in 0..8u64 {
        match KvClient::connect_secure(proxy.addr(), verifier, seed ^ (*conn_seq << 32) ^ attempt) {
            Ok(mut c) => {
                c.set_read_timeout(Some(READ_TIMEOUT)).expect("set timeout");
                return c;
            }
            Err(_) => std::thread::sleep(Duration::from_millis(5)),
        }
    }
    panic!("could not reconnect through the fault proxy");
}

// ---------------------------------------------------------------------
// Overload-and-tamper phase: saturate a small-capacity server past its
// connection cap while corrupting one partition, and check graceful
// degradation — untampered partitions keep answering correctly,
// tampered partitions answer `Quarantined`, shed requests answer `Busy`
// (never a wrong value), and shutdown drains within its deadline even
// with a stalled half-frame connection.
// ---------------------------------------------------------------------

/// Outcome accounting for one overload-phase run.
#[derive(Debug, Default, Clone)]
pub struct OverloadReport {
    /// Operations attempted across all segments.
    pub ops: u64,
    /// Requests answered `Busy` (admission control or deadline sheds).
    pub busy: u64,
    /// Requests answered `Quarantined` on the poisoned partition.
    pub quarantined: u64,
    /// Connections refused at the cap.
    pub refused: u64,
    /// Reconnects performed by the self-healing client segment.
    pub reconnects: u64,
    /// Wall-clock milliseconds `shutdown()` took with a stalled
    /// half-frame connection still open.
    pub drain_ms: u64,
}

const OVERLOAD_CLIENTS: usize = 3;
const OVERLOAD_ROUNDS: u64 = 6;

fn violation(context: &str, detail: String) -> Violation {
    Violation { context: context.into(), detail }
}

/// Connects through the real listener with a few retries, so a prior
/// connection's asynchronous teardown cannot race the accept cap.
fn connect_direct(
    addr: std::net::SocketAddr,
    verifier: &AttestationVerifier,
    seed: u64,
) -> Result<KvClient, shield_net::NetError> {
    let mut last = None;
    for attempt in 0..100u64 {
        match KvClient::connect_secure(addr, verifier, seed ^ (attempt << 40)) {
            Ok(mut c) => {
                c.set_read_timeout(Some(Duration::from_secs(2))).expect("set timeout");
                return Ok(c);
            }
            Err(e) => {
                last = Some(e);
                std::thread::sleep(Duration::from_millis(5));
            }
        }
    }
    Err(last.expect("at least one attempt"))
}

/// Runs the overload-and-tamper phase for one seed.
pub fn run_overload_phase(seed: u64) -> Result<OverloadReport, Violation> {
    sgx_sim::vclock::reset();
    let enclave = EnclaveBuilder::new("adversary-overload").seed(seed).epc_bytes(8 << 20).build();
    let store = Arc::new(
        ShieldStore::new(
            Arc::clone(&enclave),
            Config::shield_opt().buckets(64).mac_hashes(16).with_shards(2).with_quarantine(),
        )
        .expect("store construction"),
    );
    let backend: Arc<dyn shield_baseline::KvBackend> = store.clone();
    let server = Server::start(
        Arc::clone(&backend),
        Some(Arc::clone(&enclave)),
        ServerConfig {
            event_loops: 2,
            crossing: CrossingMode::HotCalls,
            secure: true,
            max_connections: OVERLOAD_CLIENTS + 1,
            max_in_flight: 2,
            frame_timeout: Duration::from_secs(30),
            drain_deadline: Duration::from_millis(500),
            ..Default::default()
        },
    )
    .expect("server start");
    let verifier = AttestationVerifier::for_enclave(&enclave);
    let mut report = OverloadReport::default();

    // Populate, then corrupt one entry in untrusted memory.
    let keys: Vec<Vec<u8>> = (0..NUM_KEYS).map(key_bytes).collect();
    let mut client = connect_direct(server.addr(), &verifier, seed).expect("populate connect");
    for (i, key) in keys.iter().enumerate() {
        client.set(key, &value_bytes(i as u64, 0)).expect("populate set");
        report.ops += 1;
    }
    assert!(store.tamper_any_entry_byte(seed), "tamper must land");

    // First sweep trips the violation; afterwards the store must name
    // exactly one quarantined bucket set.
    for key in &keys {
        report.ops += 1;
        match client.get(key) {
            Ok(Some(_)) | Err(_) => {}
            Ok(None) => {
                return Err(violation(
                    "overload first sweep",
                    "a populated key vanished without an error".into(),
                ));
            }
        }
    }
    let q = store.quarantine_report();
    if q.is_clean() || q.quarantined_sets() != 1 {
        return Err(violation(
            "overload quarantine report",
            format!("expected exactly one quarantined set, got {q:?}"),
        ));
    }
    let poisoned = |key: &[u8]| -> bool {
        let (shard, set) = store.key_partition(key);
        q.shards[shard].whole || q.shards[shard].quarantined_sets.contains(&set)
    };

    // Second sweep: tampered partition answers `Quarantined`, every
    // other key still serves its exact value.
    for (i, key) in keys.iter().enumerate() {
        report.ops += 1;
        match client.get(key) {
            Ok(Some(v)) if !poisoned(key) && v == value_bytes(i as u64, 0) => {}
            Err(shield_net::NetError::Quarantined) if poisoned(key) => report.quarantined += 1,
            other => {
                return Err(violation(
                    "overload partition sweep",
                    format!("key {i}: poisoned={} but outcome {other:?}", poisoned(key)),
                ));
            }
        }
    }
    if report.quarantined == 0 {
        return Err(violation(
            "overload partition sweep",
            "no key mapped to the quarantined partition".into(),
        ));
    }
    drop(client);

    // Concurrency rounds: barrier-synchronized clients hammer the
    // healthy keys past the in-flight cap. Every reply is either the
    // exact stored value or an honest `Busy` — never a wrong value.
    let healthy: Arc<Vec<(Vec<u8>, Vec<u8>)>> = Arc::new(
        keys.iter()
            .enumerate()
            .filter(|(_, k)| !poisoned(k))
            .map(|(i, k)| (k.clone(), value_bytes(i as u64, 0)))
            .collect(),
    );
    let barrier = Arc::new(std::sync::Barrier::new(OVERLOAD_CLIENTS));
    let mut handles = Vec::new();
    for t in 0..OVERLOAD_CLIENTS {
        let healthy = Arc::clone(&healthy);
        let barrier = Arc::clone(&barrier);
        let verifier = verifier.clone();
        let addr = server.addr();
        handles.push(std::thread::spawn(move || -> Result<(u64, u64), Violation> {
            let mut client = connect_direct(addr, &verifier, seed ^ ((t as u64 + 2) << 48))
                .expect("overload connect");
            let (mut ops, mut busy) = (0u64, 0u64);
            for round in 0..OVERLOAD_ROUNDS {
                barrier.wait();
                for (i, (key, want)) in healthy.iter().enumerate() {
                    if !(i as u64 + round + t as u64).is_multiple_of(3) {
                        continue;
                    }
                    ops += 1;
                    match client.get(key) {
                        Ok(Some(v)) if &v == want => {}
                        Err(shield_net::NetError::Busy) => busy += 1,
                        other => {
                            return Err(violation(
                                "overload concurrency",
                                format!("client {t} round {round}: {other:?}"),
                            ));
                        }
                    }
                }
            }
            Ok((ops, busy))
        }));
    }
    for handle in handles {
        let (ops, busy) = handle.join().expect("overload client thread")?;
        report.ops += ops;
        report.busy += busy;
    }

    // Connection cap: hold the cap's worth of sessions, then one more
    // connect must be refused at accept.
    let mut held = Vec::new();
    for c in 0..OVERLOAD_CLIENTS + 1 {
        let mut client = connect_direct(server.addr(), &verifier, seed ^ ((c as u64 + 9) << 44))
            .expect("cap-fill connect");
        client.ping().expect("cap-fill ping");
        held.push(client);
    }
    if KvClient::connect_secure(server.addr(), &verifier, seed ^ (0xcab << 44)).is_ok() {
        return Err(violation(
            "overload connection cap",
            "a connection past the cap was admitted".into(),
        ));
    }
    report.refused = server.refused_connections();
    if report.refused == 0 {
        return Err(violation(
            "overload connection cap",
            "refused connection was not counted".into(),
        ));
    }
    // The held sessions are unaffected by the refusal.
    for client in &mut held {
        report.ops += 1;
        client.ping().expect("held session ping");
    }
    drop(held);

    // Deterministic worker-side shedding: a second door onto the same
    // store with a zero request deadline sheds everything it admits.
    let shed_door = Server::start(
        backend,
        Some(Arc::clone(&enclave)),
        ServerConfig {
            event_loops: 1,
            crossing: CrossingMode::HotCalls,
            secure: true,
            request_deadline: Duration::ZERO,
            ..Default::default()
        },
    )
    .expect("shed door start");
    let mut shed_client =
        connect_direct(shed_door.addr(), &verifier, seed ^ (0x5ed << 44)).expect("shed connect");
    for _ in 0..4 {
        report.ops += 1;
        match shed_client.get(&keys[0]) {
            Err(shield_net::NetError::Busy) => report.busy += 1,
            other => {
                return Err(violation(
                    "overload shed door",
                    format!("expected Busy from the zero-deadline door, got {other:?}"),
                ));
            }
        }
    }
    drop(shed_client);
    shed_door.shutdown();

    // Self-healing client through the byte-fault proxy: authenticated
    // replies are correct by construction; the RetryClient must also
    // stay *live*, transparently reconnecting poisoned sessions.
    let proxy = FaultProxy::start(server.addr(), FaultPlan { seed, skip_frames: 1, period: 3 })
        .expect("proxy start");
    let mut healer = shield_net::client::RetryClient::new(
        shield_net::client::Connector::Secure {
            addr: proxy.addr(),
            verifier: verifier.clone(),
            seed: seed ^ (0x4ea1 << 40),
        },
        shield_net::client::RetryPolicy {
            max_retries: 8,
            base_backoff: Duration::from_millis(1),
            max_backoff: Duration::from_millis(10),
            seed,
            read_timeout: Some(READ_TIMEOUT),
        },
    );
    let mut correct_gets = 0u64;
    for attempt in 0..200u64 {
        let (key, want) = &healthy[(attempt % healthy.len() as u64) as usize];
        report.ops += 1;
        match healer.get(key) {
            Ok(Some(v)) if &v == want => correct_gets += 1,
            Ok(other) => {
                return Err(violation(
                    "overload self-healing client",
                    format!("authenticated reply with a wrong value: {other:?}"),
                ));
            }
            // The retry budget can run dry under a dense fault schedule;
            // the next operation starts a fresh session.
            Err(_) => {}
        }
        if correct_gets >= 10 && healer.reconnects() >= 1 {
            break;
        }
    }
    report.reconnects = healer.reconnects();
    if correct_gets < 10 || report.reconnects == 0 {
        return Err(violation(
            "overload self-healing client",
            format!(
                "wanted 10 correct gets and ≥1 reconnect, got {correct_gets} and {}",
                report.reconnects
            ),
        ));
    }
    drop(healer);
    proxy.shutdown();

    // Drain: a half-frame slow-loris connection must not stall
    // `shutdown()` past the drain deadline.
    let mut stalled = std::net::TcpStream::connect(server.addr()).expect("slow-loris connect");
    std::io::Write::write_all(&mut stalled, &[0x07, 0x00]).expect("half frame");
    let started = std::time::Instant::now();
    server.shutdown();
    let elapsed = started.elapsed();
    report.drain_ms = elapsed.as_millis() as u64;
    drop(stalled);
    if elapsed > Duration::from_secs(5) {
        return Err(violation(
            "overload drain",
            format!("shutdown took {elapsed:?} with a stalled connection"),
        ));
    }

    // Quiescent store: counters self-consistent, quarantine gauges live.
    crate::engine::check_stats(&store, "overload phase stats")?;
    let snap = store.snapshot();
    if snap.quarantined_sets != 1 || snap.ops.quarantine_rejections == 0 {
        return Err(violation(
            "overload gauges",
            format!(
                "expected quarantine gauges in the snapshot, got sets={} rejections={}",
                snap.quarantined_sets, snap.ops.quarantine_rejections
            ),
        ));
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overload_phase_runs_clean_on_a_couple_seeds() {
        for seed in 0..2 {
            let report = run_overload_phase(seed).unwrap_or_else(|v| {
                panic!("seed {seed}: overload-phase violation: {v}");
            });
            assert!(report.busy >= 4, "seed {seed}: shed door must shed");
            assert!(report.quarantined >= 1, "seed {seed}: quarantine must land");
            assert!(report.refused >= 1, "seed {seed}: cap must refuse");
            assert!(report.reconnects >= 1, "seed {seed}: healer must reconnect");
        }
    }

    #[test]
    fn wire_phase_runs_clean_on_a_few_seeds() {
        let mut total_faults = 0;
        for seed in 0..4 {
            let report = run_wire_phase(seed).unwrap_or_else(|v| {
                panic!("seed {seed}: wire-phase violation: {v}");
            });
            total_faults += report.faults;
        }
        assert!(total_faults > 0, "the proxy never injected a fault");
    }
}
