//! Wire-layer attacks: a deterministic byte-level fault proxy sits
//! between a real client and a real server, garbling, truncating,
//! duplicating, and dropping frames. The client survives by failing
//! closed — any receive failure poisons the session and forces a
//! reconnect — and the shadow model checks that no fault ever turns
//! into silently wrong data.

use crate::model::{ShadowModel, Violation};
use sgx_sim::attest::AttestationVerifier;
use sgx_sim::enclave::EnclaveBuilder;
use shield_net::client::KvClient;
use shield_net::proxy::{FaultPlan, FaultProxy};
use shield_net::server::{CrossingMode, Server, ServerConfig};
use shield_workload::rng::SplitMix64;
use shieldstore::{Config, ShieldStore};
use std::sync::Arc;
use std::time::Duration;

const NUM_KEYS: u64 = 24;
const OPS: u64 = 14;
const READ_TIMEOUT: Duration = Duration::from_millis(150);

/// Outcome accounting for one wire-phase run.
#[derive(Debug, Default, Clone)]
pub struct WireReport {
    /// Operations attempted over the faulty link.
    pub ops: u64,
    /// Frame faults the proxy actually injected.
    pub faults: u64,
    /// Operations that failed closed (poisoned session, reconnect).
    pub failed_closed: u64,
    /// Reconnects forced by poisoned sessions.
    pub reconnects: u64,
}

fn key_bytes(id: u64) -> Vec<u8> {
    shield_workload::make_key(id, 12)
}

fn value_bytes(id: u64, step: u64) -> Vec<u8> {
    shield_workload::make_value(id, step, 20)
}

/// Runs the proxy-mediated wire phase for one seed.
pub fn run_wire_phase(seed: u64) -> Result<WireReport, Violation> {
    sgx_sim::vclock::reset();
    let enclave = EnclaveBuilder::new("adversary-wire").seed(seed).epc_bytes(8 << 20).build();
    let store = Arc::new(
        ShieldStore::new(Arc::clone(&enclave), Config::shield_opt().buckets(64).mac_hashes(16))
            .expect("store construction"),
    );
    // One worker: the global FIFO work ring then processes an old
    // connection's in-flight request before a new connection's, so the
    // model's sequential view stays valid across reconnects.
    let backend: Arc<dyn shield_baseline::KvBackend> = store.clone();
    let server = Server::start(
        backend,
        Some(Arc::clone(&enclave)),
        ServerConfig { workers: 1, crossing: CrossingMode::HotCalls, secure: true },
    )
    .expect("server start");
    let verifier = AttestationVerifier::for_enclave(&enclave);
    // skip_frames=1 keeps the one-frame-each-way handshake clean; every
    // frame after that is fair game, one fault per `period` frames.
    let proxy = FaultProxy::start(server.addr(), FaultPlan { seed, skip_frames: 1, period: 3 })
        .expect("proxy start");

    let mut report = WireReport::default();
    let mut model = ShadowModel::new();
    let mut rng = SplitMix64::new(seed ^ 0x3131_c0de_fa17_0000);
    let mut conn_seq = 0u64;
    let mut client = connect(&proxy, &verifier, seed, &mut conn_seq);

    let result = (|| {
        for step in 0..OPS {
            report.ops += 1;
            let id = rng.next_u64() % NUM_KEYS;
            let key = key_bytes(id);
            let failed = match rng.next_below(3) {
                0 => match client.get(&key) {
                    Ok(observed) => {
                        model.check_read("wire get", &key, &observed)?;
                        false
                    }
                    Err(_) => true,
                },
                1 => {
                    let value = value_bytes(id, step);
                    match client.set(&key, &value) {
                        Ok(()) => {
                            model.apply_set(&key, &value);
                            false
                        }
                        Err(_) => {
                            // The request may or may not have reached the
                            // store before the fault hit.
                            model.apply_failed_set(&key, &value);
                            true
                        }
                    }
                }
                _ => match client.delete(&key) {
                    Ok(true) => {
                        model.check_delete_hit("wire delete", &key)?;
                        model.apply_delete(&key);
                        false
                    }
                    Ok(false) => {
                        model.check_read("wire delete miss", &key, &None)?;
                        false
                    }
                    Err(_) => {
                        model.apply_failed_delete(&key);
                        true
                    }
                },
            };
            if failed {
                // Fail closed: the session is poisoned; reconnect.
                report.failed_closed += 1;
                report.reconnects += 1;
                client = connect(&proxy, &verifier, seed, &mut conn_seq);
            }
        }

        // Batched ops through the same faulty link.
        for round in 0..3u64 {
            report.ops += 1;
            let n = 2 + rng.next_below(4) as usize;
            if rng.next_below(2) == 0 {
                let keys: Vec<Vec<u8>> =
                    (0..n).map(|_| key_bytes(rng.next_u64() % NUM_KEYS)).collect();
                match client.multi_get(&keys) {
                    Ok(results) if results.len() == keys.len() => {
                        for (key, r) in keys.iter().zip(results) {
                            model.check_read("wire multi_get", key, &r)?;
                        }
                    }
                    Ok(results) => {
                        return Err(Violation {
                            context: "wire multi_get".into(),
                            detail: format!(
                                "asked for {} keys, got {} results",
                                keys.len(),
                                results.len()
                            ),
                        });
                    }
                    Err(_) => {
                        report.failed_closed += 1;
                        report.reconnects += 1;
                        client = connect(&proxy, &verifier, seed, &mut conn_seq);
                    }
                }
            } else {
                let items: Vec<(Vec<u8>, Vec<u8>)> = (0..n)
                    .map(|i| {
                        let id = rng.next_u64() % NUM_KEYS;
                        (key_bytes(id), value_bytes(id, 1000 + round * 10 + i as u64))
                    })
                    .collect();
                match client.multi_set(&items) {
                    Ok(()) => {
                        for (key, value) in &items {
                            model.apply_set(key, value);
                        }
                    }
                    Err(_) => {
                        for (key, value) in &items {
                            model.apply_failed_set(key, value);
                        }
                        report.failed_closed += 1;
                        report.reconnects += 1;
                        client = connect(&proxy, &verifier, seed, &mut conn_seq);
                    }
                }
            }
        }
        Ok(())
    })();

    report.faults = proxy.faults_injected();
    drop(client);
    proxy.shutdown();
    server.shutdown();
    // With every worker joined, the store is quiescent: its counters must
    // be self-consistent no matter where the injected faults cut frames.
    result.and_then(|()| crate::engine::check_stats(&store, "wire phase stats")).map(|()| report)
}

fn connect(
    proxy: &FaultProxy,
    verifier: &AttestationVerifier,
    seed: u64,
    conn_seq: &mut u64,
) -> KvClient {
    *conn_seq += 1;
    // The handshake itself crosses the proxy but is protected by
    // skip_frames; retry a few times anyway in case a previous
    // connection's teardown races the accept loop.
    for attempt in 0..8u64 {
        match KvClient::connect_secure(proxy.addr(), verifier, seed ^ (*conn_seq << 32) ^ attempt) {
            Ok(mut c) => {
                c.set_read_timeout(Some(READ_TIMEOUT)).expect("set timeout");
                return c;
            }
            Err(_) => std::thread::sleep(Duration::from_millis(5)),
        }
    }
    panic!("could not reconnect through the fault proxy");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_phase_runs_clean_on_a_few_seeds() {
        let mut total_faults = 0;
        for seed in 0..4 {
            let report = run_wire_phase(seed).unwrap_or_else(|v| {
                panic!("seed {seed}: wire-phase violation: {v}");
            });
            total_faults += report.faults;
        }
        assert!(total_faults > 0, "the proxy never injected a fault");
    }
}
