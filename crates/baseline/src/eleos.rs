//! An Eleos-style user-space paging store (paper §6.3).
//!
//! Eleos (Orenbach et al., EuroSys '17) extends enclave memory without
//! kernel involvement: a *secure page cache* (SPC) of decrypted frames
//! lives inside the EPC, and evicted pages are encrypted at page
//! granularity into an untrusted backing store. Faults are handled in user
//! space — no enclave exits — but every miss still pays page-sized
//! en/decryption, which is exactly why it loses to ShieldStore's
//! entry-granularity crypto on small values (Fig. 16).
//!
//! Matching the paper's observations:
//!
//! * page size is configurable (4 KiB default, 1 KiB "sub-pages");
//! * the memsys5-style pool allocator manages at most **2 GiB**; beyond
//!   that, allocations fail (Fig. 17 stops Eleos at 2 GB);
//! * evicted pages are MAC-protected and verified on reload.

use crate::KvBackend;
use parking_lot::Mutex;
use sgx_sim::enclave::{Enclave, EnclaveBuilder};
use shield_crypto::cmac::Cmac;
use shield_crypto::ctr::AesCtr;
use shield_crypto::siphash::SipHash24;
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

const HEADER: usize = 16;
const NULL: u64 = u64::MAX;

/// One evicted page in the untrusted backing store.
struct BackingPage {
    ciphertext: Vec<u8>,
    iv: [u8; 16],
    mac: [u8; 16],
}

/// One SPC frame's metadata.
#[derive(Clone, Copy)]
struct Frame {
    vpage: u64,
    referenced: bool,
    dirty: bool,
    valid: bool,
}

struct EleosState {
    /// vpage -> SPC frame index.
    resident: HashMap<u64, usize>,
    frames: Vec<Frame>,
    clock_hand: usize,
    /// vpage -> encrypted page (untrusted memory).
    backing: HashMap<u64, BackingPage>,
    /// Bump allocator over the virtual pool.
    next_vaddr: u64,
    free_lists: Vec<Vec<u64>>,
    /// Hash bucket heads (virtual addresses).
    heads: Vec<u64>,
    /// Page-cache statistics.
    spc_misses: u64,
    spc_hits: u64,
    /// Monotonic IV source for page encryption.
    iv_counter: u64,
}

/// The Eleos-style store.
pub struct EleosStore {
    enclave: Arc<Enclave>,
    page_size: usize,
    pool_limit: u64,
    spc_base: u64,
    spc_frames: usize,
    enc: AesCtr,
    mac: Cmac,
    hash: SipHash24,
    state: Mutex<EleosState>,
    count: AtomicUsize,
    name: String,
}

impl std::fmt::Debug for EleosStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EleosStore")
            .field("page_size", &self.page_size)
            .field("spc_frames", &self.spc_frames)
            .finish()
    }
}

impl EleosStore {
    /// Creates a store with a `spc_bytes` secure page cache, `page_size`
    /// paging granularity, and the default 2 GiB pool limit.
    pub fn new(num_buckets: usize, spc_bytes: usize, page_size: usize, epc_bytes: usize) -> Self {
        Self::with_pool_limit(num_buckets, spc_bytes, page_size, epc_bytes, 2 << 30)
    }

    /// Creates a store with an explicit pool limit.
    pub fn with_pool_limit(
        num_buckets: usize,
        spc_bytes: usize,
        page_size: usize,
        epc_bytes: usize,
        pool_limit: u64,
    ) -> Self {
        assert!(page_size.is_power_of_two(), "page size must be a power of two");
        let enclave = EnclaveBuilder::new("eleos").epc_bytes(epc_bytes).build();
        let spc_frames = (spc_bytes / page_size).max(4);
        let spc_base =
            enclave.memory().alloc(spc_frames * page_size).expect("secure page cache allocation");
        let mut key_enc = [0u8; 16];
        let mut key_mac = [0u8; 16];
        enclave.read_rand(&mut key_enc);
        enclave.read_rand(&mut key_mac);
        Self {
            enclave,
            page_size,
            pool_limit,
            spc_base,
            spc_frames,
            enc: AesCtr::new(&key_enc),
            mac: Cmac::new(&key_mac),
            hash: SipHash24::from_parts(0x1111, 0x2222),
            state: Mutex::new(EleosState {
                resident: HashMap::new(),
                frames: vec![
                    Frame { vpage: 0, referenced: false, dirty: false, valid: false };
                    spc_frames
                ],
                clock_hand: 0,
                backing: HashMap::new(),
                next_vaddr: 0,
                free_lists: Vec::new(),
                heads: vec![NULL; num_buckets],
                spc_misses: 0,
                spc_hits: 0,
                iv_counter: 1,
            }),
            count: AtomicUsize::new(0),
            name: "Eleos".to_string(),
        }
    }

    /// The enclave this store runs in.
    pub fn enclave(&self) -> &Arc<Enclave> {
        &self.enclave
    }

    /// `(hits, misses)` of the secure page cache.
    pub fn spc_stats(&self) -> (u64, u64) {
        let st = self.state.lock();
        (st.spc_hits, st.spc_misses)
    }

    /// Virtual pool bytes allocated so far.
    pub fn pool_used(&self) -> u64 {
        self.state.lock().next_vaddr
    }

    fn frame_addr(&self, frame: usize) -> u64 {
        self.spc_base + (frame * self.page_size) as u64
    }

    /// Ensures `vpage` is resident in the SPC; returns its frame index.
    fn ensure_resident(&self, st: &mut EleosState, vpage: u64) -> usize {
        if let Some(&frame) = st.resident.get(&vpage) {
            st.frames[frame].referenced = true;
            st.spc_hits += 1;
            return frame;
        }
        st.spc_misses += 1;

        // Pick a victim with CLOCK.
        let victim = loop {
            let hand = st.clock_hand;
            st.clock_hand = (hand + 1) % self.spc_frames;
            if !st.frames[hand].valid {
                break hand;
            }
            if st.frames[hand].referenced {
                st.frames[hand].referenced = false;
                continue;
            }
            break hand;
        };

        // Write back a dirty victim at page granularity: the cost Eleos
        // pays that ShieldStore avoids.
        if st.frames[victim].valid {
            let old_vpage = st.frames[victim].vpage;
            if st.frames[victim].dirty {
                let mut plain = vec![0u8; self.page_size];
                self.enclave.memory().read(self.frame_addr(victim), &mut plain);
                let mut iv = [0u8; 16];
                iv[..8].copy_from_slice(&st.iv_counter.to_le_bytes());
                st.iv_counter += 1;
                let mut ciphertext = plain;
                self.enc.apply_keystream(&iv, &mut ciphertext);
                let mac = self.mac.compute_parts(&[&ciphertext, &iv]);
                st.backing.insert(old_vpage, BackingPage { ciphertext, iv, mac });
            }
            st.resident.remove(&old_vpage);
        }

        // Load (decrypt + verify) or zero-fill the target page.
        match st.backing.get(&vpage) {
            Some(page) => {
                let expect = self.mac.compute_parts(&[&page.ciphertext, &page.iv]);
                assert!(
                    shield_crypto::constant_time::ct_eq(&expect, &page.mac),
                    "Eleos backing page failed integrity verification"
                );
                let mut plain = page.ciphertext.clone();
                self.enc.apply_keystream(&page.iv, &mut plain);
                self.enclave.memory().write(self.frame_addr(victim), &plain);
            }
            None => {
                self.enclave.memory().write(self.frame_addr(victim), &vec![0u8; self.page_size]);
            }
        }
        st.frames[victim] = Frame { vpage, referenced: true, dirty: false, valid: true };
        st.resident.insert(vpage, victim);
        victim
    }

    /// Reads `buf.len()` bytes at virtual address `vaddr`.
    fn vread(&self, st: &mut EleosState, vaddr: u64, buf: &mut [u8]) {
        let mut off = 0usize;
        while off < buf.len() {
            let addr = vaddr + off as u64;
            let vpage = addr / self.page_size as u64;
            let in_page = (addr % self.page_size as u64) as usize;
            let take = (self.page_size - in_page).min(buf.len() - off);
            let frame = self.ensure_resident(st, vpage);
            self.enclave
                .memory()
                .read(self.frame_addr(frame) + in_page as u64, &mut buf[off..off + take]);
            off += take;
        }
    }

    /// Writes `data` at virtual address `vaddr`.
    fn vwrite(&self, st: &mut EleosState, vaddr: u64, data: &[u8]) {
        let mut off = 0usize;
        while off < data.len() {
            let addr = vaddr + off as u64;
            let vpage = addr / self.page_size as u64;
            let in_page = (addr % self.page_size as u64) as usize;
            let take = (self.page_size - in_page).min(data.len() - off);
            let frame = self.ensure_resident(st, vpage);
            st.frames[frame].dirty = true;
            self.enclave
                .memory()
                .write(self.frame_addr(frame) + in_page as u64, &data[off..off + take]);
            off += take;
        }
    }

    /// memsys5-style allocation: power-of-two classes from a bounded pool.
    fn valloc(&self, st: &mut EleosState, len: usize) -> Option<u64> {
        let class = len.max(16).next_power_of_two();
        let class_log = class.trailing_zeros() as usize;
        if st.free_lists.len() <= class_log {
            st.free_lists.resize_with(class_log + 1, Vec::new);
        }
        if let Some(addr) = st.free_lists[class_log].pop() {
            return Some(addr);
        }
        if st.next_vaddr + class as u64 > self.pool_limit {
            return None;
        }
        let addr = st.next_vaddr;
        st.next_vaddr += class as u64;
        Some(addr)
    }

    fn vfree(&self, st: &mut EleosState, addr: u64, len: usize) {
        let class = len.max(16).next_power_of_two();
        let class_log = class.trailing_zeros() as usize;
        if st.free_lists.len() <= class_log {
            st.free_lists.resize_with(class_log + 1, Vec::new);
        }
        st.free_lists[class_log].push(addr);
    }

    fn read_header(&self, st: &mut EleosState, vaddr: u64) -> (u64, usize, usize) {
        let mut buf = [0u8; HEADER];
        self.vread(st, vaddr, &mut buf);
        let next = u64::from_le_bytes(buf[..8].try_into().expect("8 bytes"));
        let klen = u32::from_le_bytes(buf[8..12].try_into().expect("4 bytes")) as usize;
        let vlen = u32::from_le_bytes(buf[12..16].try_into().expect("4 bytes")) as usize;
        (next, klen, vlen)
    }

    fn find(
        &self,
        st: &mut EleosState,
        bucket: usize,
        key: &[u8],
    ) -> Option<(u64, u64, usize, usize)> {
        let mut prev = NULL;
        let mut cur = st.heads[bucket];
        while cur != NULL {
            let (next, klen, vlen) = self.read_header(st, cur);
            if klen == key.len() {
                let mut stored = vec![0u8; klen];
                self.vread(st, cur + HEADER as u64, &mut stored);
                if stored == key {
                    return Some((cur, prev, klen, vlen));
                }
            }
            prev = cur;
            cur = next;
        }
        None
    }

    fn write_entry(&self, st: &mut EleosState, vaddr: u64, next: u64, key: &[u8], value: &[u8]) {
        let mut buf = Vec::with_capacity(HEADER + key.len() + value.len());
        buf.extend_from_slice(&next.to_le_bytes());
        buf.extend_from_slice(&(key.len() as u32).to_le_bytes());
        buf.extend_from_slice(&(value.len() as u32).to_le_bytes());
        buf.extend_from_slice(key);
        buf.extend_from_slice(value);
        self.vwrite(st, vaddr, &buf);
    }

    fn bucket_of(&self, st: &EleosState, key: &[u8]) -> usize {
        (self.hash.hash(key) % st.heads.len() as u64) as usize
    }
}

impl KvBackend for EleosStore {
    fn name(&self) -> &str {
        &self.name
    }

    fn get(&self, key: &[u8]) -> Option<Vec<u8>> {
        let mut st = self.state.lock();
        let bucket = self.bucket_of(&st, key);
        let (addr, _, klen, vlen) = self.find(&mut st, bucket, key)?;
        let mut value = vec![0u8; vlen];
        self.vread(&mut st, addr + (HEADER + klen) as u64, &mut value);
        Some(value)
    }

    fn set(&self, key: &[u8], value: &[u8]) -> bool {
        let mut st = self.state.lock();
        let bucket = self.bucket_of(&st, key);
        match self.find(&mut st, bucket, key) {
            Some((addr, prev, klen, vlen)) => {
                if vlen == value.len() {
                    self.vwrite(&mut st, addr + (HEADER + klen) as u64, value);
                } else {
                    let (next, _, _) = self.read_header(&mut st, addr);
                    let new_len = HEADER + key.len() + value.len();
                    let Some(fresh) = self.valloc(&mut st, new_len) else {
                        return false;
                    };
                    self.write_entry(&mut st, fresh, next, key, value);
                    if prev == NULL {
                        st.heads[bucket] = fresh;
                    } else {
                        let mut next_bytes = fresh.to_le_bytes();
                        self.vwrite(&mut st, prev, &next_bytes);
                        next_bytes.fill(0);
                    }
                    self.vfree(&mut st, addr, HEADER + klen + vlen);
                }
                true
            }
            None => {
                let new_len = HEADER + key.len() + value.len();
                let Some(fresh) = self.valloc(&mut st, new_len) else {
                    return false;
                };
                let head = st.heads[bucket];
                self.write_entry(&mut st, fresh, head, key, value);
                st.heads[bucket] = fresh;
                self.count.fetch_add(1, Ordering::Relaxed);
                true
            }
        }
    }

    fn delete(&self, key: &[u8]) -> bool {
        let mut st = self.state.lock();
        let bucket = self.bucket_of(&st, key);
        let Some((addr, prev, klen, vlen)) = self.find(&mut st, bucket, key) else {
            return false;
        };
        let (next, _, _) = self.read_header(&mut st, addr);
        if prev == NULL {
            st.heads[bucket] = next;
        } else {
            self.vwrite(&mut st, prev, &next.to_le_bytes());
        }
        self.vfree(&mut st, addr, HEADER + klen + vlen);
        self.count.fetch_sub(1, Ordering::Relaxed);
        true
    }

    fn len(&self) -> usize {
        self.count.load(Ordering::Relaxed)
    }

    fn reset_timing(&self) {
        self.enclave.reset_timing();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sgx_sim::vclock;

    fn small_store() -> EleosStore {
        // 16 KiB SPC, 1 KiB pages, tiny EPC-enough budget.
        EleosStore::new(64, 16 << 10, 1024, 1 << 20)
    }

    #[test]
    fn set_get_delete_roundtrip() {
        let s = small_store();
        vclock::reset();
        assert!(s.set(b"alpha", b"one"));
        assert!(s.set(b"beta", b"two"));
        assert_eq!(s.get(b"alpha").unwrap(), b"one");
        assert_eq!(s.get(b"beta").unwrap(), b"two");
        assert!(s.delete(b"alpha"));
        assert!(s.get(b"alpha").is_none());
        assert_eq!(s.len(), 1);
        vclock::reset();
    }

    #[test]
    fn paging_roundtrips_through_encrypted_backing() {
        let s = small_store(); // 16 frames of 1 KiB
        vclock::reset();
        // Write far more than the SPC can hold, forcing evict + reload.
        for i in 0..200u32 {
            assert!(s.set(format!("key-{i:04}").as_bytes(), &[i as u8; 100]));
        }
        for i in 0..200u32 {
            assert_eq!(s.get(format!("key-{i:04}").as_bytes()).unwrap(), vec![i as u8; 100]);
        }
        let (hits, misses) = s.spc_stats();
        assert!(misses > 16, "expected SPC misses, got {misses} (hits {hits})");
        assert!(!s.state.lock().backing.is_empty(), "evictions must hit the backing store");
        vclock::reset();
    }

    #[test]
    fn entries_span_page_boundaries() {
        let s = EleosStore::new(4, 8 << 10, 1024, 1 << 20);
        vclock::reset();
        // 900-byte values straddle 1 KiB pages regularly.
        for i in 0..20u32 {
            assert!(s.set(format!("span-{i}").as_bytes(), &[0xcd; 900]));
        }
        for i in 0..20u32 {
            assert_eq!(s.get(format!("span-{i}").as_bytes()).unwrap(), vec![0xcd; 900]);
        }
        vclock::reset();
    }

    #[test]
    fn pool_limit_fails_allocations() {
        // 4 KiB pool: a handful of entries exhausts it.
        let s = EleosStore::with_pool_limit(16, 4 << 10, 1024, 1 << 20, 4 << 10);
        vclock::reset();
        let mut accepted = 0;
        for i in 0..100u32 {
            if s.set(format!("k{i}").as_bytes(), &[0u8; 200]) {
                accepted += 1;
            }
        }
        assert!(accepted < 100, "pool limit must reject some inserts");
        assert!(accepted > 0);
        // Existing keys still readable.
        assert!(s.get(b"k0").is_some());
        vclock::reset();
    }

    #[test]
    fn update_in_place_and_realloc() {
        let s = small_store();
        vclock::reset();
        assert!(s.set(b"k", b"aaaa"));
        assert!(s.set(b"k", b"bbbb"));
        assert_eq!(s.get(b"k").unwrap(), b"bbbb");
        assert!(s.set(b"k", &[1u8; 300]));
        assert_eq!(s.get(b"k").unwrap(), vec![1u8; 300]);
        assert_eq!(s.len(), 1);
        vclock::reset();
    }

    #[test]
    fn collisions_in_single_bucket() {
        let s = EleosStore::new(1, 8 << 10, 1024, 1 << 20);
        vclock::reset();
        for i in 0..32u32 {
            assert!(s.set(format!("c{i}").as_bytes(), format!("v{i}").as_bytes()));
        }
        for i in (0..32u32).step_by(2) {
            assert!(s.delete(format!("c{i}").as_bytes()));
        }
        for i in 0..32u32 {
            assert_eq!(s.get(format!("c{i}").as_bytes()).is_some(), i % 2 == 1);
        }
        vclock::reset();
    }
}
