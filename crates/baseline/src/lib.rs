//! Baseline key-value stores for the ShieldStore reproduction.
//!
//! The paper compares ShieldStore against four systems; all are
//! implemented here on top of the same [`sgx_sim`] substrate:
//!
//! * [`naive::NaiveEnclaveStore`] — the paper's **Baseline**: a chained
//!   hash table placed entirely in enclave memory, so every access beyond
//!   the EPC budget demand-pages (§3.1, Figs. 3, 10-13).
//! * [`naive::NaiveEnclaveStore::insecure`] — the same store without SGX
//!   (the paper's **NoSGX** / *Insecure Baseline*).
//! * [`memcached::MemcachedLike`] — a memcached-flavoured store (slab
//!   classes, striped locks, a maintainer thread that holds locks) run
//!   under a Graphene-style libOS inside the enclave (Table 1, Fig. 13).
//! * [`eleos::EleosStore`] — Eleos-style **user-space paging**: an
//!   in-enclave secure page cache backed by page-granularity encrypted
//!   untrusted memory, with a memsys5-like 2 GB pool limit (Figs. 16-17).
//!
//! The [`KvBackend`] trait gives the benchmark harness one interface over
//! every store, including ShieldStore itself.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod eleos;
pub mod memcached;
pub mod naive;

pub use eleos::EleosStore;
pub use memcached::MemcachedLike;
pub use naive::NaiveEnclaveStore;

/// Why a backend operation failed, at the granularity the wire protocol
/// can express. The `try_*` methods on [`KvBackend`] return this so a
/// serving layer can distinguish a quarantined partition (degraded but
/// deliberate, the client should not retry) from any other failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpError {
    /// The key's hash partition is quarantined after an integrity
    /// violation; other partitions keep serving.
    Quarantined,
    /// The write would exceed the requesting tenant's byte or key
    /// quota; the store was left untouched. Distinct from `Failed` so a
    /// serving layer can tell the tenant to shed load (not retry).
    QuotaExceeded,
    /// The store is a replica serving reads only; the mutation was not
    /// executed. The client should retry against the primary (or wait
    /// for this node's promotion).
    ReadOnly,
    /// Durable storage failed under the store's write-ahead log and the
    /// writer is poisoned: this mutation — and every further one on this
    /// node — fails closed, while reads keep serving. Distinct from
    /// `Failed` so a serving layer can tell clients to fail over rather
    /// than retry.
    StorageFailed,
    /// Any other failure (capacity, integrity violation, malformed
    /// value, …).
    Failed,
}

/// Result alias for the distinguishing [`KvBackend`] methods.
pub type OpResult<T> = core::result::Result<T, OpError>;

/// A uniform interface over every store under evaluation.
///
/// Methods take `&self`; implementations synchronize internally. `set`
/// returns `false` when the store cannot accept the item (e.g. Eleos
/// exhausting its memory pool), letting harnesses record capacity limits
/// instead of panicking.
pub trait KvBackend: Send + Sync {
    /// Store name for report rows.
    fn name(&self) -> &str;
    /// Reads a key.
    fn get(&self, key: &[u8]) -> Option<Vec<u8>>;
    /// Writes a key. Returns `false` on capacity failure.
    fn set(&self, key: &[u8], value: &[u8]) -> bool;
    /// Deletes a key; `true` if it existed.
    fn delete(&self, key: &[u8]) -> bool;
    /// Appends to a key's value (creating it when absent).
    fn append(&self, key: &[u8], suffix: &[u8]) -> bool {
        let mut v = self.get(key).unwrap_or_default();
        v.extend_from_slice(suffix);
        self.set(key, &v)
    }
    /// Adds `delta` to a decimal-integer value (creating it when absent).
    /// Returns the new value, or `None` if the value is not numeric.
    fn increment(&self, key: &[u8], delta: i64) -> Option<i64> {
        let current = match self.get(key) {
            Some(v) => core::str::from_utf8(&v).ok()?.trim().parse::<i64>().ok()?,
            None => 0,
        };
        let next = current.checked_add(delta)?;
        self.set(key, next.to_string().as_bytes()).then_some(next)
    }
    /// Batched read. Returns one entry per key, in input order (`None`
    /// for a miss), or `None` as a whole when the backend failed the
    /// batch (e.g. an integrity violation) — a wire server maps that to
    /// an error status instead of fabricating misses. The default runs
    /// per-key `get`s; batching backends override it to amortize
    /// per-operation costs.
    fn multi_get(&self, keys: &[Vec<u8>]) -> Option<Vec<Option<Vec<u8>>>> {
        Some(keys.iter().map(|k| self.get(k)).collect())
    }
    /// Batched write. Returns `false` if any item was rejected. The
    /// default runs per-key `set`s; batching backends override it.
    fn multi_set(&self, items: &[(Vec<u8>, Vec<u8>)]) -> bool {
        items.iter().all(|(k, v)| self.set(k, v))
    }
    /// Number of live entries.
    fn len(&self) -> usize;
    /// True when empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
    /// Ordered prefix scan, where supported. `None` means the store has
    /// no ordered index (the paper's hash-only design); stores built with
    /// `Config::ordered_index` return the matching entries in key order.
    fn scan_prefix(&self, _prefix: &[u8], _limit: usize) -> Option<Vec<(Vec<u8>, Vec<u8>)>> {
        None
    }
    /// The index of the hash partition serving `key`, where the store
    /// is partitioned. A networked front-end uses this to run each
    /// request on the event loop aligned with the key's partition
    /// (paper §5.3); `None` (the default) means the store has no stable
    /// partitioning and any loop may execute the request.
    fn shard_hint(&self, _key: &[u8]) -> Option<usize> {
        None
    }
    /// Resets phase-relative simulator timing (the EPC fault channel).
    /// Harnesses call this when they reset per-thread virtual clocks at
    /// the start of a measured run; stores without a simulated enclave
    /// have nothing to do.
    fn reset_timing(&self) {}
    /// Informs the store of the modeled worker concurrency for the
    /// upcoming run. Used by stores whose contention cannot manifest as
    /// real lock waits under the harness's modeled parallelism —
    /// memcached's maintainer-thread interference (Fig. 13) is charged as
    /// virtual time scaled by this count. Default: ignored.
    fn set_concurrency(&self, _workers: usize) {}
    /// A full observability snapshot (counters, latency histograms,
    /// occupancy, SGX transition counters), where the store keeps one.
    /// `None` means the backend is not instrumented; the wire server maps
    /// that to an error status on the `Stats` opcode.
    fn stats_snapshot(&self) -> Option<shieldstore::StatsSnapshot> {
        None
    }
    /// Durability barrier: commit everything buffered in the store's
    /// write-ahead log. Returns `false` when the commit failed; stores
    /// without a WAL trivially succeed (there is nothing to flush).
    fn flush(&self) -> bool {
        true
    }
    /// [`KvBackend::flush`] returning the durable `(generation, seq)`
    /// watermark where the store keeps a sealed log. `Ok(None)` means the
    /// store has no log (nothing to make durable, trivially succeeded).
    /// Every write at or below the returned watermark survives a crash
    /// and is what a replication subscriber may acknowledge.
    fn flush_durable(&self) -> OpResult<Option<(u64, u64)>> {
        if self.flush() {
            Ok(None)
        } else {
            Err(OpError::Failed)
        }
    }

    // --- replication (primary side) ------------------------------------
    //
    // Only stores with a sealed WAL can serve as replication primaries;
    // the defaults fail closed so a baseline store answers `Error` to
    // replication opcodes instead of pretending to stream a log. The
    // byte payloads are the core codecs' (`shieldstore::ReplHello` /
    // `shieldstore::ReplBatch`) encodings — the serving layer relays
    // them opaquely.

    /// Registers a replication subscriber. Returns the encoded
    /// [`shieldstore::ReplHello`] (log keys + start position) to relay
    /// over the attested channel.
    fn repl_subscribe(&self) -> OpResult<Vec<u8>> {
        Err(OpError::Failed)
    }
    /// Ships the next sealed log batch after `(generation, after_seq)`,
    /// bounded by `max_bytes`. Returns the encoded
    /// [`shieldstore::ReplBatch`]; `Err(OpError::Failed)` when the
    /// subscriber's position is invalid or there is nothing to ship yet.
    fn repl_batch(&self, _generation: u64, _after_seq: u64, _max_bytes: u32) -> OpResult<Vec<u8>> {
        Err(OpError::Failed)
    }
    /// Records `subscriber`'s verified-and-applied watermark. Fails
    /// closed when the ack runs ahead of the primary's durable position.
    fn repl_ack(&self, _subscriber: u64, _generation: u64, _seq: u64) -> OpResult<()> {
        Err(OpError::Failed)
    }
    /// Promotes a read-only replica backend to primary, returning the
    /// promoted `(generation, seq)` watermark. Non-replica stores fail
    /// closed.
    fn promote(&self) -> OpResult<(u64, u64)> {
        Err(OpError::Failed)
    }

    // --- failure-distinguishing variants -------------------------------
    //
    // The plain methods collapse every failure into `None`/`false`, which
    // is fine for benchmarks but loses the distinction a wire server
    // needs to answer `Quarantined` instead of a generic error. The
    // `try_*` defaults delegate to the plain methods (never quarantined);
    // stores with partition quarantine override them.

    /// [`KvBackend::get`], distinguishing a quarantined partition from
    /// a miss or failure. `Ok(None)` is a clean miss.
    fn try_get(&self, key: &[u8]) -> OpResult<Option<Vec<u8>>> {
        Ok(self.get(key))
    }
    /// [`KvBackend::set`], distinguishing quarantine from failure.
    fn try_set(&self, key: &[u8], value: &[u8]) -> OpResult<()> {
        if self.set(key, value) {
            Ok(())
        } else {
            Err(OpError::Failed)
        }
    }
    /// [`KvBackend::delete`]; `Ok(false)` is a clean miss.
    fn try_delete(&self, key: &[u8]) -> OpResult<bool> {
        Ok(self.delete(key))
    }
    /// [`KvBackend::append`], distinguishing quarantine from failure.
    fn try_append(&self, key: &[u8], suffix: &[u8]) -> OpResult<()> {
        if self.append(key, suffix) {
            Ok(())
        } else {
            Err(OpError::Failed)
        }
    }
    /// [`KvBackend::increment`]; `Ok(n)` is the new value.
    fn try_increment(&self, key: &[u8], delta: i64) -> OpResult<i64> {
        self.increment(key, delta).ok_or(OpError::Failed)
    }
    /// [`KvBackend::multi_get`], distinguishing quarantine from failure.
    fn try_multi_get(&self, keys: &[Vec<u8>]) -> OpResult<Vec<Option<Vec<u8>>>> {
        self.multi_get(keys).ok_or(OpError::Failed)
    }
    /// [`KvBackend::multi_set`], distinguishing quarantine from failure.
    fn try_multi_set(&self, items: &[(Vec<u8>, Vec<u8>)]) -> OpResult<()> {
        if self.multi_set(items) {
            Ok(())
        } else {
            Err(OpError::Failed)
        }
    }
    /// [`KvBackend::scan_prefix`], distinguishing quarantine from an
    /// absent index (`Err(OpError::Failed)` covers both for stores that
    /// do not override this).
    fn try_scan_prefix(&self, prefix: &[u8], limit: usize) -> OpResult<Vec<(Vec<u8>, Vec<u8>)>> {
        self.scan_prefix(prefix, limit).ok_or(OpError::Failed)
    }

    // --- tenant-scoped variants ----------------------------------------
    //
    // The wire server executes every request under the tenant its
    // connection authenticated as. Baseline stores have a single flat
    // namespace: their defaults serve every tenant from it (the paper's
    // comparison systems know nothing of namespaces), which keeps the
    // benchmark harness uniform. Only ShieldStore overrides these with
    // real cryptographic namespace isolation, quotas, and TTL.

    /// Admission weight for `tenant` (default 1: unweighted fair share).
    fn tenant_weight(&self, _tenant: u32) -> u32 {
        1
    }
    /// Tenant-scoped [`KvBackend::try_get`].
    fn try_get_t(&self, _tenant: u32, key: &[u8]) -> OpResult<Option<Vec<u8>>> {
        self.try_get(key)
    }
    /// Tenant-scoped [`KvBackend::try_set`] with a relative TTL
    /// (`ttl_ns == 0` means no expiry). Stores without expiry support
    /// fail a nonzero TTL closed instead of silently storing an
    /// immortal value.
    fn try_set_t(&self, _tenant: u32, key: &[u8], value: &[u8], ttl_ns: u64) -> OpResult<()> {
        if ttl_ns != 0 {
            return Err(OpError::Failed);
        }
        self.try_set(key, value)
    }
    /// Tenant-scoped [`KvBackend::try_delete`].
    fn try_delete_t(&self, _tenant: u32, key: &[u8]) -> OpResult<bool> {
        self.try_delete(key)
    }
    /// Tenant-scoped [`KvBackend::try_append`].
    fn try_append_t(&self, _tenant: u32, key: &[u8], suffix: &[u8]) -> OpResult<()> {
        self.try_append(key, suffix)
    }
    /// Tenant-scoped [`KvBackend::try_increment`].
    fn try_increment_t(&self, _tenant: u32, key: &[u8], delta: i64) -> OpResult<i64> {
        self.try_increment(key, delta)
    }
    /// Tenant-scoped [`KvBackend::try_multi_get`].
    fn try_multi_get_t(&self, _tenant: u32, keys: &[Vec<u8>]) -> OpResult<Vec<Option<Vec<u8>>>> {
        self.try_multi_get(keys)
    }
    /// Tenant-scoped [`KvBackend::try_multi_set`].
    fn try_multi_set_t(&self, _tenant: u32, items: &[(Vec<u8>, Vec<u8>)]) -> OpResult<()> {
        self.try_multi_set(items)
    }
    /// Tenant-scoped [`KvBackend::try_scan_prefix`].
    fn try_scan_prefix_t(
        &self,
        _tenant: u32,
        prefix: &[u8],
        limit: usize,
    ) -> OpResult<Vec<(Vec<u8>, Vec<u8>)>> {
        self.try_scan_prefix(prefix, limit)
    }
}

impl KvBackend for shieldstore::ShieldStore {
    fn name(&self) -> &str {
        "ShieldStore"
    }

    fn get(&self, key: &[u8]) -> Option<Vec<u8>> {
        ShieldStoreExt::get(self, key)
    }

    fn set(&self, key: &[u8], value: &[u8]) -> bool {
        shieldstore::ShieldStore::set(self, key, value).is_ok()
    }

    fn delete(&self, key: &[u8]) -> bool {
        shieldstore::ShieldStore::delete(self, key).is_ok()
    }

    fn append(&self, key: &[u8], suffix: &[u8]) -> bool {
        shieldstore::ShieldStore::append(self, key, suffix).is_ok()
    }

    fn increment(&self, key: &[u8], delta: i64) -> Option<i64> {
        shieldstore::ShieldStore::increment(self, key, delta).ok()
    }

    fn scan_prefix(&self, prefix: &[u8], limit: usize) -> Option<Vec<(Vec<u8>, Vec<u8>)>> {
        shieldstore::ShieldStore::scan_prefix(self, prefix, limit).ok()
    }

    fn multi_get(&self, keys: &[Vec<u8>]) -> Option<Vec<Option<Vec<u8>>>> {
        let refs: Vec<&[u8]> = keys.iter().map(|k| k.as_slice()).collect();
        // Unlike single `get`, a batch failure (integrity violation) is
        // reported to the caller instead of panicking: the wire server
        // turns it into an error response.
        shieldstore::ShieldStore::multi_get(self, &refs).ok()
    }

    fn multi_set(&self, items: &[(Vec<u8>, Vec<u8>)]) -> bool {
        let refs: Vec<(&[u8], &[u8])> =
            items.iter().map(|(k, v)| (k.as_slice(), v.as_slice())).collect();
        shieldstore::ShieldStore::multi_set(self, &refs).is_ok()
    }

    fn len(&self) -> usize {
        shieldstore::ShieldStore::len(self)
    }

    fn shard_hint(&self, key: &[u8]) -> Option<usize> {
        Some(self.shard_of(key))
    }

    fn reset_timing(&self) {
        self.enclave().reset_timing();
    }

    fn stats_snapshot(&self) -> Option<shieldstore::StatsSnapshot> {
        Some(self.snapshot())
    }

    fn flush(&self) -> bool {
        self.flush_wal().is_ok()
    }

    fn flush_durable(&self) -> OpResult<Option<(u64, u64)>> {
        match self.flush_wal() {
            Ok(Some(wm)) => Ok(Some((wm.generation, wm.seq))),
            Ok(None) => Ok(None),
            Err(e) => Err(op_error(e)),
        }
    }

    fn repl_subscribe(&self) -> OpResult<Vec<u8>> {
        shieldstore::ShieldStore::repl_subscribe(self).map(|h| h.encode()).map_err(op_error)
    }

    fn repl_batch(&self, generation: u64, after_seq: u64, max_bytes: u32) -> OpResult<Vec<u8>> {
        shieldstore::ShieldStore::repl_batch(self, generation, after_seq, max_bytes as usize)
            .map(|b| b.encode())
            .map_err(op_error)
    }

    fn repl_ack(&self, subscriber: u64, generation: u64, seq: u64) -> OpResult<()> {
        shieldstore::ShieldStore::repl_ack(
            self,
            subscriber,
            shieldstore::Watermark::new(generation, seq),
        )
        .map_err(op_error)
    }

    fn try_get(&self, key: &[u8]) -> OpResult<Option<Vec<u8>>> {
        match shieldstore::ShieldStore::get(self, key) {
            Ok(v) => Ok(Some(v)),
            Err(shieldstore::Error::KeyNotFound) => Ok(None),
            Err(e) => Err(op_error(e)),
        }
    }

    fn try_set(&self, key: &[u8], value: &[u8]) -> OpResult<()> {
        shieldstore::ShieldStore::set(self, key, value).map_err(op_error)
    }

    fn try_delete(&self, key: &[u8]) -> OpResult<bool> {
        match shieldstore::ShieldStore::delete(self, key) {
            Ok(()) => Ok(true),
            Err(shieldstore::Error::KeyNotFound) => Ok(false),
            Err(e) => Err(op_error(e)),
        }
    }

    fn try_append(&self, key: &[u8], suffix: &[u8]) -> OpResult<()> {
        shieldstore::ShieldStore::append(self, key, suffix).map(|_| ()).map_err(op_error)
    }

    fn try_increment(&self, key: &[u8], delta: i64) -> OpResult<i64> {
        shieldstore::ShieldStore::increment(self, key, delta).map_err(op_error)
    }

    fn try_multi_get(&self, keys: &[Vec<u8>]) -> OpResult<Vec<Option<Vec<u8>>>> {
        let refs: Vec<&[u8]> = keys.iter().map(|k| k.as_slice()).collect();
        shieldstore::ShieldStore::multi_get(self, &refs).map_err(op_error)
    }

    fn try_multi_set(&self, items: &[(Vec<u8>, Vec<u8>)]) -> OpResult<()> {
        let refs: Vec<(&[u8], &[u8])> =
            items.iter().map(|(k, v)| (k.as_slice(), v.as_slice())).collect();
        shieldstore::ShieldStore::multi_set(self, &refs).map_err(op_error)
    }

    fn try_scan_prefix(&self, prefix: &[u8], limit: usize) -> OpResult<Vec<(Vec<u8>, Vec<u8>)>> {
        shieldstore::ShieldStore::scan_prefix(self, prefix, limit).map_err(op_error)
    }

    fn tenant_weight(&self, tenant: u32) -> u32 {
        self.tenants().weight(tenant)
    }

    fn try_get_t(&self, tenant: u32, key: &[u8]) -> OpResult<Option<Vec<u8>>> {
        match shieldstore::ShieldStore::get_t(self, tenant, key) {
            Ok(v) => Ok(Some(v)),
            Err(shieldstore::Error::KeyNotFound) => Ok(None),
            Err(e) => Err(op_error(e)),
        }
    }

    fn try_set_t(&self, tenant: u32, key: &[u8], value: &[u8], ttl_ns: u64) -> OpResult<()> {
        if ttl_ns == 0 {
            shieldstore::ShieldStore::set_t(self, tenant, key, value).map_err(op_error)
        } else {
            shieldstore::ShieldStore::set_ttl(self, tenant, key, value, ttl_ns).map_err(op_error)
        }
    }

    fn try_delete_t(&self, tenant: u32, key: &[u8]) -> OpResult<bool> {
        match shieldstore::ShieldStore::delete_t(self, tenant, key) {
            Ok(()) => Ok(true),
            Err(shieldstore::Error::KeyNotFound) => Ok(false),
            Err(e) => Err(op_error(e)),
        }
    }

    fn try_append_t(&self, tenant: u32, key: &[u8], suffix: &[u8]) -> OpResult<()> {
        shieldstore::ShieldStore::append_t(self, tenant, key, suffix).map(|_| ()).map_err(op_error)
    }

    fn try_increment_t(&self, tenant: u32, key: &[u8], delta: i64) -> OpResult<i64> {
        shieldstore::ShieldStore::increment_t(self, tenant, key, delta).map_err(op_error)
    }

    fn try_multi_get_t(&self, tenant: u32, keys: &[Vec<u8>]) -> OpResult<Vec<Option<Vec<u8>>>> {
        let refs: Vec<&[u8]> = keys.iter().map(|k| k.as_slice()).collect();
        shieldstore::ShieldStore::multi_get_t(self, tenant, &refs).map_err(op_error)
    }

    fn try_multi_set_t(&self, tenant: u32, items: &[(Vec<u8>, Vec<u8>)]) -> OpResult<()> {
        let refs: Vec<(&[u8], &[u8])> =
            items.iter().map(|(k, v)| (k.as_slice(), v.as_slice())).collect();
        shieldstore::ShieldStore::multi_set_t(self, tenant, &refs, 0).map_err(op_error)
    }

    fn try_scan_prefix_t(
        &self,
        tenant: u32,
        prefix: &[u8],
        limit: usize,
    ) -> OpResult<Vec<(Vec<u8>, Vec<u8>)>> {
        shieldstore::ShieldStore::scan_prefix_t(self, tenant, prefix, limit).map_err(op_error)
    }
}

/// Maps a ShieldStore error to the wire-expressible failure class.
fn op_error(e: shieldstore::Error) -> OpError {
    match e {
        shieldstore::Error::Quarantined { .. } => OpError::Quarantined,
        shieldstore::Error::QuotaExceeded { .. } => OpError::QuotaExceeded,
        shieldstore::Error::StorageFailed => OpError::StorageFailed,
        _ => OpError::Failed,
    }
}

/// Private helper so the trait impl can adapt ShieldStore's `Result` API.
trait ShieldStoreExt {
    fn get(&self, key: &[u8]) -> Option<Vec<u8>>;
}

impl ShieldStoreExt for shieldstore::ShieldStore {
    fn get(&self, key: &[u8]) -> Option<Vec<u8>> {
        match shieldstore::ShieldStore::get(self, key) {
            Ok(v) => Some(v),
            Err(shieldstore::Error::KeyNotFound) => None,
            Err(e) => panic!("integrity failure in benchmark: {e}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sgx_sim::enclave::EnclaveBuilder;

    #[test]
    fn shieldstore_satisfies_backend() {
        let enclave = EnclaveBuilder::new("backend-test").epc_bytes(4 << 20).build();
        let store = shieldstore::ShieldStore::new(
            enclave,
            shieldstore::Config::shield_opt().buckets(64).mac_hashes(16),
        )
        .unwrap();
        let backend: &dyn KvBackend = &store;
        assert!(backend.set(b"k", b"v"));
        assert_eq!(backend.get(b"k").unwrap(), b"v");
        assert!(backend.append(b"k", b"2"));
        assert_eq!(backend.get(b"k").unwrap(), b"v2");
        assert!(backend.delete(b"k"));
        assert!(!backend.delete(b"k"));
        assert!(backend.is_empty());
        assert_eq!(backend.name(), "ShieldStore");
    }
}
