//! A memcached-flavoured store under a Graphene-style libOS.
//!
//! The paper compares against unmodified memcached run inside an enclave
//! with Graphene-SGX (Table 1, Figs. 10-13). Two of memcached's traits
//! matter for the reproduction:
//!
//! * its **slab allocator** gives it slightly better allocation behaviour
//!   than the paper's naive baseline (the paper credits this for the
//!   `-1 ~ +34%` spread of `Memcached+graphene` vs `Baseline`);
//! * its **maintainer thread** "continually adjusts the hash table while
//!   holding locks", which the paper identifies as the reason memcached
//!   *degrades* at 4 threads (Fig. 13).
//!
//! [`MemcachedLike`] reuses the naive enclave table (our allocator is
//! size-class based, i.e. slab-like) and models the maintainer's lock
//! interference. Because the harness runs modeled workers sequentially
//! (see `shieldstore-bench::harness`), maintainer contention cannot
//! appear as real lock waits; it is charged as *virtual* time per
//! operation, growing with the modeled worker count: with more workers,
//! an operation is more likely to queue behind the maintainer's stripe
//! sweep *and* behind other workers serialized by it. An optional real
//! spinning maintainer thread is available for multi-core hosts.

use crate::naive::NaiveEnclaveStore;
use crate::KvBackend;
use sgx_sim::cost::CostModel;
use sgx_sim::enclave::{Enclave, EnclaveBuilder};
use sgx_sim::vclock;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;

/// Maintainer interference model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MaintainerConfig {
    /// Virtual nanoseconds charged per operation per modeled worker
    /// beyond the first (lock-queueing interference).
    pub interference_ns_per_extra_worker: u64,
    /// Spawn a real spinning maintainer thread (multi-core hosts only).
    pub real_thread: bool,
    /// Real-thread sweep period.
    pub period: std::time::Duration,
    /// Real-thread lock hold per stripe.
    pub hold_per_stripe: std::time::Duration,
}

impl Default for MaintainerConfig {
    fn default() -> Self {
        Self {
            interference_ns_per_extra_worker: 5_000,
            real_thread: false,
            period: std::time::Duration::from_micros(500),
            hold_per_stripe: std::time::Duration::from_micros(20),
        }
    }
}

/// Memcached-like store: naive enclave table + maintainer interference.
pub struct MemcachedLike {
    inner: Arc<NaiveEnclaveStore>,
    cfg: MaintainerConfig,
    workers: AtomicUsize,
    stop: Arc<AtomicBool>,
    maintainer: Option<std::thread::JoinHandle<()>>,
    name: String,
}

impl std::fmt::Debug for MemcachedLike {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MemcachedLike").field("name", &self.name).finish()
    }
}

impl MemcachedLike {
    /// Memcached under Graphene-SGX: table in metered enclave memory.
    pub fn graphene(num_buckets: usize, epc_bytes: usize) -> Self {
        let enclave = EnclaveBuilder::new("memcached-graphene").epc_bytes(epc_bytes).build();
        Self::with_enclave("Memcached+graphene", enclave, num_buckets, MaintainerConfig::default())
    }

    /// Insecure memcached (no SGX), for Table 1 / Fig. 18.
    pub fn insecure(num_buckets: usize) -> Self {
        let enclave = EnclaveBuilder::new("memcached-insecure")
            .epc_bytes(0)
            .cost_model(CostModel::NO_SGX)
            .build();
        Self::with_enclave("Insecure Memcached", enclave, num_buckets, MaintainerConfig::default())
    }

    /// Builds over an explicit enclave and maintainer configuration.
    pub fn with_enclave(
        name: &str,
        enclave: Arc<Enclave>,
        num_buckets: usize,
        cfg: MaintainerConfig,
    ) -> Self {
        let inner = Arc::new(NaiveEnclaveStore::with_enclave(name, enclave, num_buckets));
        let stop = Arc::new(AtomicBool::new(false));

        let maintainer = if cfg.real_thread {
            let inner = Arc::clone(&inner);
            let stop = Arc::clone(&stop);
            Some(std::thread::spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    inner.maintainer_sweep(cfg.hold_per_stripe);
                    std::thread::sleep(cfg.period);
                }
            }))
        } else {
            None
        };

        Self { inner, cfg, workers: AtomicUsize::new(1), stop, maintainer, name: name.to_string() }
    }

    /// The enclave this store runs in (for stats).
    pub fn enclave(&self) -> &Arc<Enclave> {
        self.inner.enclave()
    }

    /// Charges the modeled maintainer interference for one operation.
    #[inline]
    fn charge_interference(&self) {
        let workers = self.workers.load(Ordering::Relaxed);
        if workers > 1 {
            vclock::charge(self.cfg.interference_ns_per_extra_worker * (workers as u64 - 1));
        }
    }
}

impl Drop for MemcachedLike {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(handle) = self.maintainer.take() {
            let _ = handle.join();
        }
    }
}

impl KvBackend for MemcachedLike {
    fn name(&self) -> &str {
        &self.name
    }

    fn get(&self, key: &[u8]) -> Option<Vec<u8>> {
        self.charge_interference();
        self.inner.get(key)
    }

    fn set(&self, key: &[u8], value: &[u8]) -> bool {
        self.charge_interference();
        self.inner.set(key, value)
    }

    fn delete(&self, key: &[u8]) -> bool {
        self.charge_interference();
        self.inner.delete(key)
    }

    fn len(&self) -> usize {
        self.inner.len()
    }

    fn reset_timing(&self) {
        self.inner.reset_timing();
    }

    fn set_concurrency(&self, workers: usize) {
        self.workers.store(workers.max(1), Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn behaves_like_a_kv_store() {
        let s = MemcachedLike::insecure(64);
        vclock::reset();
        assert!(s.set(b"k", b"v"));
        assert_eq!(s.get(b"k").unwrap(), b"v");
        assert!(s.delete(b"k"));
        assert!(s.get(b"k").is_none());
        vclock::reset();
    }

    #[test]
    fn interference_scales_with_modeled_workers() {
        let s = MemcachedLike::insecure(64);
        s.set(b"k", b"v");

        vclock::reset();
        s.set_concurrency(1);
        let _ = s.get(b"k");
        let one = vclock::take();

        s.set_concurrency(4);
        let _ = s.get(b"k");
        let four = vclock::take();
        s.set_concurrency(1);

        let expected = MaintainerConfig::default().interference_ns_per_extra_worker * 3;
        assert_eq!(four - one, expected);
    }

    #[test]
    fn real_maintainer_thread_stops_on_drop() {
        let enclave =
            EnclaveBuilder::new("mc-real").epc_bytes(0).cost_model(CostModel::NO_SGX).build();
        let cfg = MaintainerConfig { real_thread: true, ..Default::default() };
        let s = MemcachedLike::with_enclave("mc", enclave, 16, cfg);
        s.set(b"a", b"1");
        drop(s); // must not hang
    }

    #[test]
    fn concurrent_real_access_is_safe() {
        let s = Arc::new(MemcachedLike::insecure(256));
        vclock::reset();
        let mut handles = Vec::new();
        for t in 0..4 {
            let s = Arc::clone(&s);
            handles.push(std::thread::spawn(move || {
                for i in 0..200u32 {
                    let key = format!("t{t}-k{i}");
                    s.set(key.as_bytes(), b"value");
                    assert_eq!(s.get(key.as_bytes()).unwrap(), b"value");
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(s.len(), 800);
        vclock::reset();
    }
}
