//! The paper's Baseline: a hash-based key-value store whose entire table
//! lives in *enclave* memory (§3.1).
//!
//! With the working set beyond the EPC budget, nearly every chain access
//! demand-pages — the 134x collapse of Fig. 3 and the flat scalability of
//! Fig. 13. The identical code built with [`NaiveEnclaveStore::insecure`]
//! runs on an unmetered (`NoSGX`) enclave and serves as the paper's
//! insecure reference.
//!
//! Entries live in metered [`sgx_sim::memory::EnclaveMemory`]:
//!
//! ```text
//! [ next (8) | key_len (4) | val_len (4) | key | value ]
//! ```
//!
//! Locking is striped per bucket group, so lock contention does not mask
//! the paging serialization the experiment is about.

use crate::KvBackend;
use parking_lot::Mutex;
use sgx_sim::cost::CostModel;
use sgx_sim::enclave::{Enclave, EnclaveBuilder};
use shield_crypto::siphash::SipHash24;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

const HEADER: usize = 16;
const NULL: u64 = u64::MAX;
const STRIPES: usize = 64;

/// A chained hash table stored wholly in (simulated) enclave memory.
pub struct NaiveEnclaveStore {
    name: String,
    enclave: Arc<Enclave>,
    buckets_addr: u64,
    num_buckets: usize,
    stripes: Vec<Mutex<()>>,
    hash: SipHash24,
    count: AtomicUsize,
}

impl std::fmt::Debug for NaiveEnclaveStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NaiveEnclaveStore")
            .field("name", &self.name)
            .field("buckets", &self.num_buckets)
            .field("count", &self.count.load(Ordering::Relaxed))
            .finish()
    }
}

impl NaiveEnclaveStore {
    /// Creates the Baseline inside an enclave with `epc_bytes` of EPC.
    pub fn new(num_buckets: usize, epc_bytes: usize) -> Self {
        let enclave = EnclaveBuilder::new("naive-baseline").epc_bytes(epc_bytes).build();
        Self::with_enclave("Baseline", enclave, num_buckets)
    }

    /// Creates the NoSGX variant: identical code, zero-cost memory model.
    pub fn insecure(num_buckets: usize) -> Self {
        let enclave = EnclaveBuilder::new("insecure-baseline")
            .epc_bytes(0)
            .cost_model(CostModel::NO_SGX)
            .build();
        Self::with_enclave("Insecure Baseline", enclave, num_buckets)
    }

    /// Creates the store over an existing enclave (used by
    /// [`crate::memcached::MemcachedLike`]).
    pub fn with_enclave(name: &str, enclave: Arc<Enclave>, num_buckets: usize) -> Self {
        let buckets_addr =
            enclave.memory().alloc(num_buckets * 8).expect("bucket array allocation");
        // Initialize heads to NULL.
        let empty = vec![0xffu8; num_buckets * 8];
        enclave.memory().write(buckets_addr, &empty);
        Self {
            name: name.to_string(),
            enclave,
            buckets_addr,
            num_buckets,
            stripes: (0..STRIPES).map(|_| Mutex::new(())).collect(),
            hash: SipHash24::from_parts(0x5d5d_5d5d, 0xa7a7_a7a7),
            count: AtomicUsize::new(0),
        }
    }

    /// The enclave this store runs in (for stats).
    pub fn enclave(&self) -> &Arc<Enclave> {
        &self.enclave
    }

    #[inline]
    fn bucket_of(&self, key: &[u8]) -> usize {
        (self.hash.hash(key) % self.num_buckets as u64) as usize
    }

    fn head(&self, bucket: usize) -> u64 {
        self.enclave.memory().read_u64(self.buckets_addr + (bucket * 8) as u64)
    }

    fn set_head(&self, bucket: usize, head: u64) {
        self.enclave.memory().write_u64(self.buckets_addr + (bucket * 8) as u64, head);
    }

    fn read_header(&self, addr: u64) -> (u64, usize, usize) {
        let mut buf = [0u8; HEADER];
        self.enclave.memory().read(addr, &mut buf);
        let next = u64::from_le_bytes(buf[..8].try_into().expect("8 bytes"));
        let klen = u32::from_le_bytes(buf[8..12].try_into().expect("4 bytes")) as usize;
        let vlen = u32::from_le_bytes(buf[12..16].try_into().expect("4 bytes")) as usize;
        (next, klen, vlen)
    }

    /// Finds `(addr, prev_addr, klen, vlen)` of `key` in its chain.
    fn find(&self, bucket: usize, key: &[u8]) -> Option<(u64, u64, usize, usize)> {
        let mut prev = NULL;
        let mut cur = self.head(bucket);
        while cur != NULL {
            let (next, klen, vlen) = self.read_header(cur);
            if klen == key.len() {
                let stored = self.enclave.memory().read_vec(cur + HEADER as u64, klen);
                if stored == key {
                    return Some((cur, prev, klen, vlen));
                }
            }
            prev = cur;
            cur = next;
        }
        None
    }

    /// One maintainer sweep: grab every lock stripe in turn and hold it
    /// for `hold` (memcached's hash-table adjustment holding locks — the
    /// behaviour behind the paper's Fig. 13 degradation at 4 threads).
    pub fn maintainer_sweep(&self, hold: std::time::Duration) {
        for stripe in &self.stripes {
            let _guard = stripe.lock();
            let deadline = std::time::Instant::now() + hold;
            while std::time::Instant::now() < deadline {
                std::hint::spin_loop();
            }
        }
    }

    fn write_entry(&self, addr: u64, next: u64, key: &[u8], value: &[u8]) {
        let mut buf = Vec::with_capacity(HEADER + key.len() + value.len());
        buf.extend_from_slice(&next.to_le_bytes());
        buf.extend_from_slice(&(key.len() as u32).to_le_bytes());
        buf.extend_from_slice(&(value.len() as u32).to_le_bytes());
        buf.extend_from_slice(key);
        buf.extend_from_slice(value);
        self.enclave.memory().write(addr, &buf);
    }
}

impl KvBackend for NaiveEnclaveStore {
    fn name(&self) -> &str {
        &self.name
    }

    fn get(&self, key: &[u8]) -> Option<Vec<u8>> {
        let bucket = self.bucket_of(key);
        let _guard = self.stripes[bucket % STRIPES].lock();
        let (addr, _, klen, vlen) = self.find(bucket, key)?;
        Some(self.enclave.memory().read_vec(addr + (HEADER + klen) as u64, vlen))
    }

    fn set(&self, key: &[u8], value: &[u8]) -> bool {
        let bucket = self.bucket_of(key);
        let _guard = self.stripes[bucket % STRIPES].lock();
        match self.find(bucket, key) {
            Some((addr, prev, klen, vlen)) => {
                if vlen == value.len() {
                    // Overwrite the value bytes in place.
                    self.enclave.memory().write(addr + (HEADER + klen) as u64, value);
                } else {
                    // Reallocate, preserving the chain position.
                    let (next, _, _) = self.read_header(addr);
                    let new_len = HEADER + key.len() + value.len();
                    let Ok(fresh) = self.enclave.memory().alloc(new_len) else {
                        return false;
                    };
                    self.write_entry(fresh, next, key, value);
                    if prev == NULL {
                        self.set_head(bucket, fresh);
                    } else {
                        self.enclave.memory().write_u64(prev, fresh);
                    }
                    self.enclave.memory().free(addr, HEADER + klen + vlen);
                }
                true
            }
            None => {
                let new_len = HEADER + key.len() + value.len();
                let Ok(fresh) = self.enclave.memory().alloc(new_len) else {
                    return false;
                };
                self.write_entry(fresh, self.head(bucket), key, value);
                self.set_head(bucket, fresh);
                self.count.fetch_add(1, Ordering::Relaxed);
                true
            }
        }
    }

    fn delete(&self, key: &[u8]) -> bool {
        let bucket = self.bucket_of(key);
        let _guard = self.stripes[bucket % STRIPES].lock();
        let Some((addr, prev, klen, vlen)) = self.find(bucket, key) else {
            return false;
        };
        let (next, _, _) = self.read_header(addr);
        if prev == NULL {
            self.set_head(bucket, next);
        } else {
            self.enclave.memory().write_u64(prev, next);
        }
        self.enclave.memory().free(addr, HEADER + klen + vlen);
        self.count.fetch_sub(1, Ordering::Relaxed);
        true
    }

    fn len(&self) -> usize {
        self.count.load(Ordering::Relaxed)
    }

    fn reset_timing(&self) {
        self.enclave.reset_timing();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sgx_sim::vclock;

    #[test]
    fn set_get_delete_roundtrip() {
        let s = NaiveEnclaveStore::insecure(64);
        vclock::reset();
        assert!(s.get(b"missing").is_none());
        assert!(s.set(b"k1", b"v1"));
        assert!(s.set(b"k2", b"v2"));
        assert_eq!(s.get(b"k1").unwrap(), b"v1");
        assert_eq!(s.get(b"k2").unwrap(), b"v2");
        assert_eq!(s.len(), 2);
        assert!(s.delete(b"k1"));
        assert!(!s.delete(b"k1"));
        assert!(s.get(b"k1").is_none());
        assert_eq!(s.len(), 1);
        vclock::reset();
    }

    #[test]
    fn update_same_and_different_size() {
        let s = NaiveEnclaveStore::insecure(64);
        vclock::reset();
        s.set(b"k", b"aaaa");
        s.set(b"k", b"bbbb"); // same size: in-place
        assert_eq!(s.get(b"k").unwrap(), b"bbbb");
        s.set(b"k", b"a much longer value than before");
        assert_eq!(s.get(b"k").unwrap(), b"a much longer value than before");
        s.set(b"k", b"s");
        assert_eq!(s.get(b"k").unwrap(), b"s");
        assert_eq!(s.len(), 1);
        vclock::reset();
    }

    #[test]
    fn chains_handle_collisions() {
        let s = NaiveEnclaveStore::insecure(1); // everything collides
        vclock::reset();
        for i in 0..64u32 {
            s.set(format!("key{i}").as_bytes(), format!("val{i}").as_bytes());
        }
        for i in 0..64u32 {
            assert_eq!(s.get(format!("key{i}").as_bytes()).unwrap(), format!("val{i}").as_bytes());
        }
        // Delete middle elements.
        for i in (0..64u32).step_by(2) {
            assert!(s.delete(format!("key{i}").as_bytes()));
        }
        for i in 0..64u32 {
            assert_eq!(s.get(format!("key{i}").as_bytes()).is_some(), i % 2 == 1);
        }
        vclock::reset();
    }

    #[test]
    fn enclave_version_faults_when_oversubscribed() {
        // 64 KiB EPC, then insert far beyond it: faults must dominate.
        let s = NaiveEnclaveStore::new(256, 64 << 10);
        vclock::reset();
        for i in 0..500u32 {
            s.set(format!("key-{i:08}").as_bytes(), &[0u8; 256]);
        }
        for i in 0..500u32 {
            assert!(s.get(format!("key-{i:08}").as_bytes()).is_some());
        }
        let faults = s.enclave().stats().snapshot().epc_faults;
        assert!(faults > 500, "expected heavy paging, got {faults} faults");
        assert!(vclock::now() > 0);
        vclock::reset();
    }

    #[test]
    fn insecure_version_never_faults() {
        let s = NaiveEnclaveStore::insecure(256);
        vclock::reset();
        for i in 0..500u32 {
            s.set(format!("key-{i:08}").as_bytes(), &[0u8; 256]);
        }
        assert_eq!(s.enclave().stats().snapshot().epc_faults, 0);
        assert_eq!(vclock::now(), 0);
    }

    #[test]
    fn append_via_trait_default() {
        let s = NaiveEnclaveStore::insecure(16);
        vclock::reset();
        s.append(b"log", b"a");
        s.append(b"log", b"b");
        assert_eq!(s.get(b"log").unwrap(), b"ab");
        vclock::reset();
    }
}
