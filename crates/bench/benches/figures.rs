//! Criterion smoke versions of the figure experiments.
//!
//! `cargo bench` runs these tiny-scale versions of the headline
//! comparisons so regressions in the *shape* of the results (who wins,
//! and roughly by how much) show up in routine benchmarking. The full
//! figure regeneration lives in the `fig*`/`tab*` binaries.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use shield_baseline::{EleosStore, KvBackend, NaiveEnclaveStore};
use shield_workload::Spec;
use shieldstore::Config;
use shieldstore_bench::harness;
use shieldstore_bench::scale::Scale;
use std::sync::Arc;

fn tiny_scale() -> Scale {
    Scale {
        epc_bytes: 1 << 20,
        num_keys: 10_000,
        num_buckets: 1 << 13,
        num_mac_hashes: 1 << 11,
        ops: 2_000,
        ..Scale::quick()
    }
}

/// Fig. 3/10 shape: ShieldOpt vs the naive enclave Baseline.
fn bench_store_vs_baseline(c: &mut Criterion) {
    let scale = tiny_scale();
    let spec = Spec::by_name("RD50_Z").unwrap();
    let mut group = c.benchmark_group("fig10-shape");
    group.sample_size(10);

    let baseline: Arc<dyn KvBackend> =
        Arc::new(NaiveEnclaveStore::new(scale.num_buckets, scale.epc_bytes));
    harness::preload(&*baseline, scale.num_keys, 64);
    group.bench_function("baseline", |b| {
        b.iter(|| harness::run_backend(&baseline, spec, scale.num_keys, 64, 1, scale.ops, 1))
    });

    let shield = harness::build_shieldstore(
        Config::shield_opt().buckets(scale.num_buckets).mac_hashes(scale.num_mac_hashes),
        scale.epc_bytes,
        1,
    );
    for id in 0..scale.num_keys {
        shield
            .set(&shield_workload::make_key(id, 16), &shield_workload::make_value(id, 0, 64))
            .unwrap();
    }
    group.bench_function("shieldopt", |b| {
        b.iter(|| {
            harness::run_shieldstore_partitioned(&shield, spec, scale.num_keys, 64, 1, scale.ops, 1)
        })
    });
    group.finish();
}

/// Fig. 16 shape: ShieldOpt vs Eleos at small and page-sized values.
fn bench_vs_eleos(c: &mut Criterion) {
    let scale = tiny_scale();
    let spec = Spec::by_name("RD100_Z").unwrap();
    let mut group = c.benchmark_group("fig16-shape");
    group.sample_size(10);

    for val_len in [16usize, 1024] {
        let keys = 2_000u64;
        let eleos: Arc<dyn KvBackend> =
            Arc::new(EleosStore::new(2048, scale.epc_bytes / 2, 1024, scale.epc_bytes));
        harness::preload(&*eleos, keys, val_len);
        group.bench_with_input(BenchmarkId::new("eleos", val_len), &val_len, |b, &v| {
            b.iter(|| harness::run_backend(&eleos, spec, keys, v, 1, 500, 1))
        });

        let shield = harness::build_shieldstore(
            Config::shield_opt().buckets(2048).mac_hashes(512),
            scale.epc_bytes,
            1,
        );
        for id in 0..keys {
            shield
                .set(
                    &shield_workload::make_key(id, 16),
                    &shield_workload::make_value(id, 0, val_len),
                )
                .unwrap();
        }
        group.bench_with_input(BenchmarkId::new("shieldopt", val_len), &val_len, |b, &v| {
            b.iter(|| harness::run_shieldstore_partitioned(&shield, spec, keys, v, 1, 500, 1))
        });
    }
    group.finish();
}

criterion_group! {
    name = figures;
    config = Criterion::default().measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_store_vs_baseline, bench_vs_eleos
}
criterion_main!(figures);
