//! Criterion micro-benchmarks: the primitive operations whose costs
//! compose into every figure — crypto kernels, entry codec, and store
//! operations at several value sizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use sgx_sim::enclave::EnclaveBuilder;
use shield_crypto::cmac::Cmac;
use shield_crypto::ctr::AesCtr;
use shield_crypto::sha256::Sha256;
use shield_crypto::siphash::SipHash24;
use shieldstore::{Config, ShieldStore};
use std::sync::Arc;

fn bench_crypto(c: &mut Criterion) {
    let mut group = c.benchmark_group("crypto");
    let key = [7u8; 16];
    let ctr = AesCtr::new(&key);
    let cmac = Cmac::new(&key);
    let sip = SipHash24::new(&key);

    for size in [16usize, 64, 512, 4096] {
        let data = vec![0xabu8; size];
        group.throughput(Throughput::Bytes(size as u64));
        group.bench_with_input(BenchmarkId::new("aes-ctr", size), &data, |b, data| {
            let mut buf = data.clone();
            b.iter(|| ctr.apply_keystream(&[1u8; 16], &mut buf));
        });
        group.bench_with_input(BenchmarkId::new("cmac", size), &data, |b, data| {
            b.iter(|| cmac.compute(data));
        });
        group.bench_with_input(BenchmarkId::new("sha256", size), &data, |b, data| {
            b.iter(|| Sha256::digest(data));
        });
        group.bench_with_input(BenchmarkId::new("siphash", size), &data, |b, data| {
            b.iter(|| sip.hash(data));
        });
    }
    group.finish();
}

fn bench_entry_codec(c: &mut Criterion) {
    let mut group = c.benchmark_group("entry");
    let enc = AesCtr::new(&[1u8; 16]);
    let mac = Cmac::new(&[2u8; 16]);
    let key = vec![0x11u8; 16];

    for val_len in [16usize, 128, 512] {
        let value = vec![0x22u8; val_len];
        let entry_len = shieldstore::entry::HEADER_LEN + key.len() + value.len();
        group.throughput(Throughput::Bytes(entry_len as u64));
        group.bench_with_input(BenchmarkId::new("encode", val_len), &value, |b, value| {
            let mut buf = vec![0u8; entry_len];
            b.iter(|| {
                shieldstore::entry::encode_into(
                    &mut buf, 0, 0x42, 0, 0, &[9u8; 16], &key, value, &enc, &mac,
                )
            });
        });
        let mut buf = vec![0u8; entry_len];
        shieldstore::entry::encode_into(
            &mut buf, 0, 0x42, 0, 0, &[9u8; 16], &key, &value, &enc, &mac,
        );
        let header = shieldstore::entry::parse_header(&buf);
        group.bench_with_input(BenchmarkId::new("decrypt", val_len), &buf, |b, buf| {
            b.iter(|| {
                shieldstore::entry::decrypt_entry(
                    &enc,
                    &header,
                    &buf[shieldstore::entry::HEADER_LEN..],
                )
            });
        });
        group.bench_with_input(BenchmarkId::new("verify-mac", val_len), &buf, |b, buf| {
            b.iter(|| {
                shieldstore::entry::verify_mac(
                    &mac,
                    &header,
                    &buf[shieldstore::entry::HEADER_LEN..],
                )
            });
        });
    }
    group.finish();
}

fn store(config: Config) -> Arc<ShieldStore> {
    let enclave = EnclaveBuilder::new("micro-bench").epc_bytes(16 << 20).build();
    Arc::new(ShieldStore::new(enclave, config).expect("store"))
}

fn bench_store_ops(c: &mut Criterion) {
    let mut group = c.benchmark_group("store");
    for val_len in [16usize, 512] {
        let s = store(Config::shield_opt().buckets(1 << 14).mac_hashes(1 << 12));
        for i in 0..10_000u64 {
            s.set(&shield_workload::make_key(i, 16), &vec![0u8; val_len]).unwrap();
        }
        let mut i = 0u64;
        group.bench_function(BenchmarkId::new("get-hit", val_len), |b| {
            b.iter(|| {
                i = (i + 1) % 10_000;
                s.get(&shield_workload::make_key(i, 16)).unwrap()
            });
        });
        group.bench_function(BenchmarkId::new("set-update", val_len), |b| {
            b.iter(|| {
                i = (i + 1) % 10_000;
                s.set(&shield_workload::make_key(i, 16), &vec![1u8; val_len]).unwrap()
            });
        });
        group.bench_function(BenchmarkId::new("get-miss", val_len), |b| {
            b.iter(|| {
                i += 1;
                let _ = s.get(&shield_workload::make_key(10_000_000 + i, 16));
            });
        });
    }
    group.finish();
}

fn bench_optimization_toggles(c: &mut Criterion) {
    let mut group = c.benchmark_group("toggles");
    // One crowded bucket region: 20K keys over 2K buckets (chain ~10).
    for (name, config) in [
        ("shield-base", Config::shield_base().buckets(1 << 11).mac_hashes(1 << 11)),
        ("shield-opt", Config::shield_opt().buckets(1 << 11).mac_hashes(1 << 11)),
    ] {
        let s = store(config);
        for i in 0..20_000u64 {
            s.set(&shield_workload::make_key(i, 16), b"value-of-16-byte").unwrap();
        }
        let mut i = 0u64;
        group.bench_function(BenchmarkId::new("get-chain10", name), |b| {
            b.iter(|| {
                i = (i + 1) % 20_000;
                s.get(&shield_workload::make_key(i, 16)).unwrap()
            });
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_crypto, bench_entry_codec, bench_store_ops, bench_optimization_toggles
}
criterion_main!(benches);
