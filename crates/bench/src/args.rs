//! Tiny command-line argument handling for the figure binaries.
//!
//! Every binary accepts the same flags:
//!
//! ```text
//! --paper          paper-scale parameters (slow)
//! --keys N         override key count
//! --ops N          override operations per configuration
//! --threads N      override max thread count
//! --seed N         override the RNG seed
//! ```

use crate::scale::Scale;

/// Parsed common arguments.
#[derive(Debug, Clone, Copy)]
pub struct Args {
    /// The selected scale preset (with overrides applied).
    pub scale: Scale,
    /// Maximum thread count for scalability sweeps.
    pub max_threads: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Args {
    /// Parses `std::env::args()`.
    ///
    /// # Panics
    ///
    /// Panics with a usage message on malformed flags — these are
    /// developer-facing binaries.
    pub fn parse() -> Args {
        Self::from_iter(std::env::args().skip(1))
    }

    /// Parses an explicit iterator (testable).
    // Not `FromIterator`: parsing panics on malformed flags, which that
    // trait's contract does not allow for.
    #[allow(clippy::should_implement_trait)]
    pub fn from_iter(args: impl IntoIterator<Item = String>) -> Args {
        let mut paper = false;
        let mut keys = None;
        let mut ops = None;
        let mut max_threads = 4usize;
        let mut seed = 42u64;

        let mut iter = args.into_iter();
        while let Some(arg) = iter.next() {
            let mut grab = |name: &str| -> u64 {
                iter.next()
                    .unwrap_or_else(|| panic!("{name} requires a value"))
                    .parse()
                    .unwrap_or_else(|_| panic!("{name} requires a number"))
            };
            match arg.as_str() {
                "--paper" => paper = true,
                "--keys" => keys = Some(grab("--keys")),
                "--ops" => ops = Some(grab("--ops")),
                "--threads" => max_threads = grab("--threads") as usize,
                "--seed" => seed = grab("--seed"),
                "--help" | "-h" => {
                    eprintln!("flags: --paper | --keys N | --ops N | --threads N | --seed N");
                    std::process::exit(0);
                }
                other => panic!("unknown flag {other} (try --help)"),
            }
        }

        let mut scale = Scale::from_flag(paper);
        if let Some(k) = keys {
            scale.num_keys = k;
        }
        if let Some(o) = ops {
            scale.ops = o;
        }
        Args { scale, max_threads, seed }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Args {
        Args::from_iter(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn defaults_are_quick() {
        let a = parse(&[]);
        assert_eq!(a.scale.name, "quick");
        assert_eq!(a.max_threads, 4);
        assert_eq!(a.seed, 42);
    }

    #[test]
    fn paper_flag() {
        assert_eq!(parse(&["--paper"]).scale.name, "paper");
    }

    #[test]
    fn overrides() {
        let a = parse(&["--keys", "123", "--ops", "456", "--threads", "2", "--seed", "9"]);
        assert_eq!(a.scale.num_keys, 123);
        assert_eq!(a.scale.ops, 456);
        assert_eq!(a.max_threads, 2);
        assert_eq!(a.seed, 9);
    }

    #[test]
    #[should_panic(expected = "unknown flag")]
    fn unknown_flag_panics() {
        parse(&["--bogus"]);
    }
}
