//! Batched-operation sweep: multi-get/multi-set vs the per-op loop.
//!
//! The batched path amortizes the per-operation integrity work the paper
//! charges on every access (§4.3): operations sorted by bucket set verify
//! each touched set's MAC hash once per batch, and writes re-derive the
//! stored hash once per set instead of once per op. This sweep measures
//! ops/s and per-op verification counts across batch sizes, against the
//! per-op loop as the baseline.
//!
//! Results are also written as JSON to `BENCH_batch.json` at the repo
//! root for machine consumption.

use sgx_sim::vclock;
use shield_workload::{make_key, make_value};
use shieldstore::{Config, ShieldStore};
use shieldstore_bench::{harness, report, Args};
use std::time::Instant;

const BATCH_SIZES: &[usize] = &[1, 4, 16, 64, 256];
const VAL_LEN: usize = 16;

/// One measured configuration.
struct Row {
    mode: String,
    batch: usize,
    phase: &'static str,
    kops: f64,
    verifications_per_op: f64,
    verifications_saved: u64,
    hash_updates_saved: u64,
    p50_ns: u64,
    p95_ns: u64,
    p99_ns: u64,
    max_ns: u64,
}

impl Row {
    /// Builds a row from a measured run: throughput plus the latency
    /// quantiles of whichever histogram timed this configuration (the
    /// per-op paths record in the get/set histograms, the batched paths
    /// in the batch histogram).
    fn from_run(
        mode: String,
        batch: usize,
        phase: &'static str,
        kops: f64,
        ops: u64,
        snap: &shieldstore::StatsSnapshot,
    ) -> Row {
        let hist = match (batch > 1 || mode.starts_with("batched"), phase) {
            (true, _) => &snap.hists.batch,
            (false, "set") => &snap.hists.set,
            (false, _) => &snap.hists.get,
        };
        Row {
            mode,
            batch,
            phase,
            kops,
            verifications_per_op: snap.ops.integrity_verifications as f64 / ops as f64,
            verifications_saved: snap.ops.batch_verifications_saved,
            hash_updates_saved: snap.ops.batch_hash_updates_saved,
            p50_ns: hist.p50(),
            p95_ns: hist.p95(),
            p99_ns: hist.p99(),
            max_ns: hist.max_ns(),
        }
    }
}

/// Measures `ops` operations and returns (kops, observability delta).
fn measure(
    store: &ShieldStore,
    ops: u64,
    mut body: impl FnMut(&ShieldStore),
) -> (f64, shieldstore::StatsSnapshot) {
    // Reset first so the interval max (which diff() cannot recover) is
    // exact for this run; the diff then only strips gauge baselines.
    store.reset_stats();
    store.enclave().reset_timing();
    let before = store.snapshot();
    vclock::reset();
    let start = Instant::now();
    body(store);
    let effective_ns = start.elapsed().as_nanos() as u64 + vclock::take();
    let snap = store.snapshot().diff(&before);
    let kops = if effective_ns == 0 { 0.0 } else { ops as f64 / (effective_ns as f64 / 1e9) / 1e3 };
    (kops, snap)
}

fn sweep(store: &ShieldStore, num_keys: u64, ops: u64) -> Vec<Row> {
    let keys: Vec<Vec<u8>> = (0..num_keys).map(|id| make_key(id, 16)).collect();
    let values: Vec<Vec<u8>> = (0..num_keys).map(|id| make_value(id, 1, VAL_LEN)).collect();
    let key_at = |i: u64| &keys[(i % num_keys) as usize];
    let val_at = |i: u64| &values[(i % num_keys) as usize];
    let mut rows = Vec::new();

    // Baseline: the per-op loop (one verify + one hash re-derivation per
    // operation).
    let (kops, snap) = measure(store, ops, |s| {
        for i in 0..ops {
            s.set(key_at(i), val_at(i)).expect("set");
        }
    });
    rows.push(Row::from_run("per-op".into(), 1, "set", kops, ops, &snap));
    let (kops, snap) = measure(store, ops, |s| {
        for i in 0..ops {
            s.get(key_at(i)).expect("get");
        }
    });
    rows.push(Row::from_run("per-op".into(), 1, "get", kops, ops, &snap));

    for &batch in BATCH_SIZES {
        let (kops, snap) = measure(store, ops, |s| {
            let mut i = 0u64;
            while i < ops {
                let n = batch.min((ops - i) as usize);
                let items: Vec<(&[u8], &[u8])> = (i..i + n as u64)
                    .map(|j| (key_at(j).as_slice(), val_at(j).as_slice()))
                    .collect();
                s.multi_set(&items).expect("multi_set");
                i += n as u64;
            }
        });
        rows.push(Row::from_run(format!("batched x{batch}"), batch, "set", kops, ops, &snap));

        let (kops, snap) = measure(store, ops, |s| {
            let mut i = 0u64;
            while i < ops {
                let n = batch.min((ops - i) as usize);
                let batch_keys: Vec<&[u8]> =
                    (i..i + n as u64).map(|j| key_at(j).as_slice()).collect();
                s.multi_get(&batch_keys).expect("multi_get");
                i += n as u64;
            }
        });
        rows.push(Row::from_run(format!("batched x{batch}"), batch, "get", kops, ops, &snap));
    }
    rows
}

/// Hand-rolled JSON (no serde in the tree).
fn to_json(rows: &[Row], num_keys: u64, ops: u64, seed: u64) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"bench\": \"batch_sweep\",\n");
    out.push_str(&format!("  \"keys\": {num_keys},\n"));
    out.push_str(&format!("  \"ops_per_config\": {ops},\n"));
    out.push_str(&format!("  \"val_len\": {VAL_LEN},\n"));
    out.push_str(&format!("  \"seed\": {seed},\n"));
    out.push_str("  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"mode\": \"{}\", \"batch\": {}, \"phase\": \"{}\", \"kops\": {:.3}, \
             \"verifications_per_op\": {:.4}, \"verifications_saved\": {}, \
             \"hash_updates_saved\": {}, \"p50_ns\": {}, \"p95_ns\": {}, \"p99_ns\": {}, \
             \"max_ns\": {}}}{}\n",
            r.mode,
            r.batch,
            r.phase,
            r.kops,
            r.verifications_per_op,
            r.verifications_saved,
            r.hash_updates_saved,
            r.p50_ns,
            r.p95_ns,
            r.p99_ns,
            r.max_ns,
            if i + 1 == rows.len() { "" } else { "," },
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

fn main() {
    let args = Args::parse();
    let scale = args.scale;
    report::banner("Batch sweep", "multi-get/multi-set amortization", &scale);

    // Batch amortization is a locality effect: it pays exactly when ops
    // in one batch land in the same bucket set, so the sweep fixes the
    // set-sharing geometry instead of inheriting the scale preset's.
    // A bounded working set over 16 MAC-hash sets keeps the probability
    // that a batch revisits a set high (a batch of 16 touches ~10 of the
    // 16 sets in expectation), while each verification still gathers a
    // realistic few-hundred entry MACs. The per-op baseline runs on the
    // identical store and working set.
    let working_set = scale.num_keys.min(4096);
    let buckets = (working_set as usize).next_power_of_two().max(64);
    let store = harness::build_shieldstore(
        Config::shield_opt().buckets(buckets).mac_hashes(16),
        scale.epc_bytes,
        args.seed,
    );
    harness::preload(&*store, working_set, VAL_LEN);

    // Warm-up pass: touch every key once so the first measured
    // configuration does not absorb cold-memory costs alone.
    for id in 0..working_set {
        let _ = store.get(&shield_workload::make_key(id, 16));
    }

    let rows = sweep(&store, working_set, scale.ops);

    let mut table = report::Table::new(&[
        "mode",
        "phase",
        "kops",
        "verifies/op",
        "verifies saved",
        "p50",
        "p95",
        "p99",
    ]);
    for r in &rows {
        table.row(&[
            r.mode.clone(),
            r.phase.into(),
            report::kops(r.kops),
            format!("{:.4}", r.verifications_per_op),
            r.verifications_saved.to_string(),
            format!("{}ns", r.p50_ns),
            format!("{}ns", r.p95_ns),
            format!("{}ns", r.p99_ns),
        ]);
    }
    table.print();
    println!();
    println!("expect: verifies/op falls toward buckets-touched/batch as batch grows;");
    println!("        batched x16+ beats the per-op loop on kops.");

    let json = to_json(&rows, working_set, scale.ops, args.seed);
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_batch.json");
    match std::fs::write(path, &json) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
}
