//! Batched-operation sweep: multi-get/multi-set vs the per-op loop.
//!
//! The batched path amortizes the per-operation integrity work the paper
//! charges on every access (§4.3): operations sorted by bucket set verify
//! each touched set's MAC hash once per batch, and writes re-derive the
//! stored hash once per set instead of once per op. This sweep measures
//! ops/s and per-op verification counts across batch sizes, against the
//! per-op loop as the baseline.
//!
//! Results are also written as JSON to `BENCH_batch.json` at the repo
//! root for machine consumption.

use sgx_sim::vclock;
use shield_workload::{make_key, make_value};
use shieldstore::{Config, ShieldStore};
use shieldstore_bench::{harness, report, Args};
use std::time::Instant;

const BATCH_SIZES: &[usize] = &[1, 4, 16, 64, 256];
const VAL_LEN: usize = 16;

/// One measured configuration.
struct Row {
    mode: String,
    batch: usize,
    phase: &'static str,
    kops: f64,
    verifications_per_op: f64,
    verifications_saved: u64,
    hash_updates_saved: u64,
}

/// Measures `ops` operations and returns (kops, stats deltas).
fn measure(
    store: &ShieldStore,
    ops: u64,
    mut body: impl FnMut(&ShieldStore),
) -> (f64, shieldstore::OpStats) {
    store.reset_stats();
    store.enclave().reset_timing();
    vclock::reset();
    let start = Instant::now();
    body(store);
    let effective_ns = start.elapsed().as_nanos() as u64 + vclock::take();
    let stats = store.stats();
    let kops = if effective_ns == 0 { 0.0 } else { ops as f64 / (effective_ns as f64 / 1e9) / 1e3 };
    (kops, stats)
}

fn sweep(store: &ShieldStore, num_keys: u64, ops: u64) -> Vec<Row> {
    let keys: Vec<Vec<u8>> = (0..num_keys).map(|id| make_key(id, 16)).collect();
    let values: Vec<Vec<u8>> = (0..num_keys).map(|id| make_value(id, 1, VAL_LEN)).collect();
    let key_at = |i: u64| &keys[(i % num_keys) as usize];
    let val_at = |i: u64| &values[(i % num_keys) as usize];
    let mut rows = Vec::new();

    // Baseline: the per-op loop (one verify + one hash re-derivation per
    // operation).
    let (kops, stats) = measure(store, ops, |s| {
        for i in 0..ops {
            s.set(key_at(i), val_at(i)).expect("set");
        }
    });
    rows.push(Row {
        mode: "per-op".into(),
        batch: 1,
        phase: "set",
        kops,
        verifications_per_op: stats.integrity_verifications as f64 / ops as f64,
        verifications_saved: stats.batch_verifications_saved,
        hash_updates_saved: stats.batch_hash_updates_saved,
    });
    let (kops, stats) = measure(store, ops, |s| {
        for i in 0..ops {
            s.get(key_at(i)).expect("get");
        }
    });
    rows.push(Row {
        mode: "per-op".into(),
        batch: 1,
        phase: "get",
        kops,
        verifications_per_op: stats.integrity_verifications as f64 / ops as f64,
        verifications_saved: stats.batch_verifications_saved,
        hash_updates_saved: stats.batch_hash_updates_saved,
    });

    for &batch in BATCH_SIZES {
        let (kops, stats) = measure(store, ops, |s| {
            let mut i = 0u64;
            while i < ops {
                let n = batch.min((ops - i) as usize);
                let items: Vec<(&[u8], &[u8])> = (i..i + n as u64)
                    .map(|j| (key_at(j).as_slice(), val_at(j).as_slice()))
                    .collect();
                s.multi_set(&items).expect("multi_set");
                i += n as u64;
            }
        });
        rows.push(Row {
            mode: format!("batched x{batch}"),
            batch,
            phase: "set",
            kops,
            verifications_per_op: stats.integrity_verifications as f64 / ops as f64,
            verifications_saved: stats.batch_verifications_saved,
            hash_updates_saved: stats.batch_hash_updates_saved,
        });

        let (kops, stats) = measure(store, ops, |s| {
            let mut i = 0u64;
            while i < ops {
                let n = batch.min((ops - i) as usize);
                let batch_keys: Vec<&[u8]> =
                    (i..i + n as u64).map(|j| key_at(j).as_slice()).collect();
                s.multi_get(&batch_keys).expect("multi_get");
                i += n as u64;
            }
        });
        rows.push(Row {
            mode: format!("batched x{batch}"),
            batch,
            phase: "get",
            kops,
            verifications_per_op: stats.integrity_verifications as f64 / ops as f64,
            verifications_saved: stats.batch_verifications_saved,
            hash_updates_saved: stats.batch_hash_updates_saved,
        });
    }
    rows
}

/// Hand-rolled JSON (no serde in the tree).
fn to_json(rows: &[Row], num_keys: u64, ops: u64, seed: u64) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"bench\": \"batch_sweep\",\n");
    out.push_str(&format!("  \"keys\": {num_keys},\n"));
    out.push_str(&format!("  \"ops_per_config\": {ops},\n"));
    out.push_str(&format!("  \"val_len\": {VAL_LEN},\n"));
    out.push_str(&format!("  \"seed\": {seed},\n"));
    out.push_str("  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"mode\": \"{}\", \"batch\": {}, \"phase\": \"{}\", \"kops\": {:.3}, \
             \"verifications_per_op\": {:.4}, \"verifications_saved\": {}, \
             \"hash_updates_saved\": {}}}{}\n",
            r.mode,
            r.batch,
            r.phase,
            r.kops,
            r.verifications_per_op,
            r.verifications_saved,
            r.hash_updates_saved,
            if i + 1 == rows.len() { "" } else { "," },
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

fn main() {
    let args = Args::parse();
    let scale = args.scale;
    report::banner("Batch sweep", "multi-get/multi-set amortization", &scale);

    // Batch amortization is a locality effect: it pays exactly when ops
    // in one batch land in the same bucket set, so the sweep fixes the
    // set-sharing geometry instead of inheriting the scale preset's.
    // A bounded working set over 16 MAC-hash sets keeps the probability
    // that a batch revisits a set high (a batch of 16 touches ~10 of the
    // 16 sets in expectation), while each verification still gathers a
    // realistic few-hundred entry MACs. The per-op baseline runs on the
    // identical store and working set.
    let working_set = scale.num_keys.min(4096);
    let buckets = (working_set as usize).next_power_of_two().max(64);
    let store = harness::build_shieldstore(
        Config::shield_opt().buckets(buckets).mac_hashes(16),
        scale.epc_bytes,
        args.seed,
    );
    harness::preload(&*store, working_set, VAL_LEN);

    // Warm-up pass: touch every key once so the first measured
    // configuration does not absorb cold-memory costs alone.
    for id in 0..working_set {
        let _ = store.get(&shield_workload::make_key(id, 16));
    }

    let rows = sweep(&store, working_set, scale.ops);

    let mut table = report::Table::new(&[
        "mode",
        "phase",
        "kops",
        "verifies/op",
        "verifies saved",
        "hash updates saved",
    ]);
    for r in &rows {
        table.row(&[
            r.mode.clone(),
            r.phase.into(),
            report::kops(r.kops),
            format!("{:.4}", r.verifications_per_op),
            r.verifications_saved.to_string(),
            r.hash_updates_saved.to_string(),
        ]);
    }
    table.print();
    println!();
    println!("expect: verifies/op falls toward buckets-touched/batch as batch grows;");
    println!("        batched x16+ beats the per-op loop on kops.");

    let json = to_json(&rows, working_set, scale.ops, args.seed);
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_batch.json");
    match std::fs::write(path, &json) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
}
