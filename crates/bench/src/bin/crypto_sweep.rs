//! Crypto hot-path sweep: soft (table-based) vs AES-NI backends.
//!
//! Measures the four primitives the ShieldStore data path spends its
//! cycles on — raw AES-128 block encryption, CTR keystream application
//! (entry encrypt/decrypt), CMAC (entry and bucket-set MACs), and the
//! fused verify+decrypt used on the get hit path — for every backend the
//! host can run. The soft backend always runs; the AES-NI backend runs
//! when the CPU reports support.
//!
//! Results are also written as JSON to `BENCH_crypto.json` at the repo
//! root for machine consumption.

use shield_crypto::backend::{aesni_available, selected_kind, AesBackend, BackendKind};
use shield_crypto::cmac::Cmac;
use shield_crypto::ctr::AesCtr;
use shield_crypto::fused;
use shieldstore_bench::{report, Args};
use std::time::Instant;

/// Bytes processed per timed iteration (mirrors a large-ish entry batch;
/// a multiple of the fused span and the AES block size).
const BUF_LEN: usize = 16 << 10;

/// Minimum measured wall time per configuration.
const MIN_MEASURE_NS: u64 = 200_000_000;

struct Row {
    backend: &'static str,
    primitive: &'static str,
    gib_s: f64,
    bytes: u64,
}

/// Runs `body` (which processes `bytes_per_iter` bytes per call) until at
/// least [`MIN_MEASURE_NS`] of wall time has elapsed, and returns the
/// throughput in GiB/s plus the total bytes processed.
fn measure(bytes_per_iter: usize, mut body: impl FnMut()) -> (f64, u64) {
    // Warm-up: fault in buffers and let the first-use key schedule costs
    // fall outside the timed region.
    for _ in 0..4 {
        body();
    }
    let mut iters = 0u64;
    let start = Instant::now();
    loop {
        for _ in 0..16 {
            body();
        }
        iters += 16;
        if start.elapsed().as_nanos() as u64 >= MIN_MEASURE_NS {
            break;
        }
    }
    let elapsed = start.elapsed().as_nanos() as u64;
    let bytes = iters * bytes_per_iter as u64;
    (bytes as f64 / (elapsed as f64 / 1e9) / (1u64 << 30) as f64, bytes)
}

/// Deterministic test data: no RNG so runs are comparable across seeds.
fn pattern(seed: u64, len: usize) -> Vec<u8> {
    (0..len).map(|i| (seed.wrapping_mul(0x9e37_79b9).wrapping_add(i as u64) >> 3) as u8).collect()
}

fn sweep_backend(kind: BackendKind, seed: u64, rows: &mut Vec<Row>) {
    let key = [0x2bu8; 16];
    let iv = [0x07u8; 16];
    let data = pattern(seed, BUF_LEN);

    // Raw block encryption: the primitive both CTR and CMAC reduce to.
    let aes = AesBackend::with_kind(kind, &key);
    let mut block = [0u8; 16];
    block.copy_from_slice(&data[..16]);
    let blocks = BUF_LEN / 16;
    let (gib_s, bytes) = measure(BUF_LEN, || {
        for _ in 0..blocks {
            block = aes.encrypt_to(&block);
        }
    });
    rows.push(Row { backend: kind.name(), primitive: "block", gib_s, bytes });
    std::hint::black_box(block);

    // CTR keystream: the entry encrypt/decrypt path.
    let ctr = AesCtr::with_backend(kind, &key);
    let mut buf = data.clone();
    let (gib_s, bytes) = measure(BUF_LEN, || {
        ctr.apply_keystream(&iv, &mut buf);
    });
    rows.push(Row { backend: kind.name(), primitive: "ctr", gib_s, bytes });
    std::hint::black_box(&buf);

    // CMAC: entry MACs and the streaming bucket-set hash.
    let mac = Cmac::with_backend(kind, &key);
    let mut tag = [0u8; 16];
    let (gib_s, bytes) = measure(BUF_LEN, || {
        tag = mac.compute(&data);
    });
    rows.push(Row { backend: kind.name(), primitive: "cmac", gib_s, bytes });
    std::hint::black_box(tag);

    // Fused verify+decrypt: the get hit path (one pass over the
    // ciphertext feeds the MAC and the CTR decrypt together).
    let mut ct = data.clone();
    ctr.apply_keystream(&iv, &mut ct);
    let tag = mac.compute(&ct);
    let mut out = Vec::new();
    let (gib_s, bytes) = measure(BUF_LEN, || {
        let ok = fused::open_verify(&ctr, &mac, &iv, &[], &ct, &[], &tag, &mut out);
        assert!(ok, "fused open must verify");
    });
    rows.push(Row { backend: kind.name(), primitive: "fused_open", gib_s, bytes });
    std::hint::black_box(&out);
}

/// Hand-rolled JSON (no serde in the tree).
fn to_json(rows: &[Row], seed: u64) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"bench\": \"crypto_sweep\",\n");
    out.push_str(&format!("  \"buf_len\": {BUF_LEN},\n"));
    out.push_str(&format!("  \"seed\": {seed},\n"));
    out.push_str(&format!("  \"aesni_available\": {},\n", aesni_available()));
    out.push_str(&format!("  \"selected_backend\": \"{}\",\n", selected_kind().name()));
    out.push_str("  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"backend\": \"{}\", \"primitive\": \"{}\", \"gib_per_s\": {:.4}, \
             \"bytes\": {}}}{}\n",
            r.backend,
            r.primitive,
            r.gib_s,
            r.bytes,
            if i + 1 == rows.len() { "" } else { "," },
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

fn main() {
    let args = Args::parse();
    report::banner("Crypto sweep", "soft vs AES-NI data-path primitives", &args.scale);

    let mut backends = vec![BackendKind::Soft];
    if aesni_available() {
        backends.push(BackendKind::AesNi);
    } else {
        println!("note: CPU lacks AES-NI; measuring the soft backend only");
    }

    let mut rows = Vec::new();
    for &kind in &backends {
        sweep_backend(kind, args.seed, &mut rows);
    }

    let mut table = report::Table::new(&["backend", "primitive", "GiB/s", "bytes"]);
    for r in &rows {
        table.row(&[
            r.backend.into(),
            r.primitive.into(),
            format!("{:.3}", r.gib_s),
            r.bytes.to_string(),
        ]);
    }
    table.print();
    println!();

    if backends.len() == 2 {
        let soft = |p: &str| rows.iter().find(|r| r.backend == "soft" && r.primitive == p);
        let ni = |p: &str| rows.iter().find(|r| r.backend == "aesni" && r.primitive == p);
        for p in ["block", "ctr", "cmac", "fused_open"] {
            if let (Some(s), Some(n)) = (soft(p), ni(p)) {
                println!("{:<12} aesni/soft = {}", p, report::ratio(n.gib_s / s.gib_s));
            }
        }
        println!();
        println!("expect: aesni >= 2x soft on ctr and cmac (the hot-path primitives).");
    }

    let json = to_json(&rows, args.seed);
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_crypto.json");
    match std::fs::write(path, &json) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
}
