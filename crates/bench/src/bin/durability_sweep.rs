//! Durability sweep: WAL group-commit policies vs the snapshot-only store.
//!
//! The write-ahead log puts a sealed, MAC-chained record stream between
//! every acknowledged write and a crash. What that costs depends entirely
//! on the group-commit policy: `Strict` pays one fsync per operation,
//! `EveryN` amortizes the fsync (and the per-record seal) over N buffered
//! operations, and `None` defers everything to explicit flushes. This
//! sweep measures a set-only workload under each policy against the same
//! store with no WAL attached, reporting throughput, fsyncs and log bytes
//! per operation, and the achieved group sizes.
//!
//! Results are also written as JSON to `BENCH_durability.json` at the
//! repo root for machine consumption.

use sgx_sim::vclock;
use shield_workload::{make_key, make_value};
use shieldstore::{Config, DurabilityPolicy, ShieldStore};
use shieldstore_bench::{harness, report, Args};
use std::sync::Arc;
use std::time::Instant;

const VAL_LEN: usize = 16;

/// One measured policy configuration.
struct Row {
    policy: &'static str,
    kops: f64,
    /// Throughput relative to the no-WAL baseline (1.0 = free).
    relative: f64,
    fsyncs_per_op: f64,
    log_bytes_per_op: f64,
    group_p50: u64,
    group_max: u64,
}

/// The policies under test. `None` still logs every op into the sealed
/// buffer; the final explicit flush inside the measured body is its only
/// commit.
const POLICIES: &[(&str, Option<DurabilityPolicy>)] = &[
    ("no-wal", None),
    ("none+flush", Some(DurabilityPolicy::None)),
    ("group-16", Some(DurabilityPolicy::EveryN(16))),
    ("group-64", Some(DurabilityPolicy::EveryN(64))),
    ("strict", Some(DurabilityPolicy::Strict)),
];

/// Builds a store for one configuration, preloaded *before* the WAL is
/// attached so the log carries only the measured operations.
fn build(
    policy: Option<DurabilityPolicy>,
    args: &Args,
    keys: u64,
    dir: &std::path::Path,
) -> Arc<ShieldStore> {
    let mut config = Config::shield_opt().buckets(4096).mac_hashes(64).with_shards(2);
    if let Some(p) = policy {
        config = config.with_durability(p);
    }
    let store = harness::build_shieldstore(config, args.scale.epc_bytes, args.seed);
    harness::preload(&*store, keys, VAL_LEN);
    if policy.is_some() {
        std::fs::remove_dir_all(dir).ok();
        store.attach_wal(dir).expect("attach wal");
    }
    store
}

/// Measures `ops` sets (plus one final flush) under one policy.
fn measure(name: &'static str, store: &ShieldStore, keys: u64, ops: u64, baseline: f64) -> Row {
    let key_at = |i: u64| make_key(i % keys, 16);
    let val_at = |i: u64| make_value(i % keys, 2, VAL_LEN);
    store.reset_stats();
    store.enclave().reset_timing();
    let before = store.snapshot();
    vclock::reset();
    let start = Instant::now();
    for i in 0..ops {
        store.set(&key_at(i), &val_at(i)).expect("set");
    }
    // The barrier is part of the measured cost: a store that buffers
    // everything must still pay for durability once per run.
    store.flush_wal().expect("flush");
    let effective_ns = start.elapsed().as_nanos() as u64 + vclock::take();
    let snap = store.snapshot().diff(&before);
    let kops = if effective_ns == 0 { 0.0 } else { ops as f64 / (effective_ns as f64 / 1e9) / 1e3 };
    Row {
        policy: name,
        kops,
        relative: if baseline == 0.0 { 1.0 } else { kops / baseline },
        fsyncs_per_op: snap.wal_fsyncs as f64 / ops as f64,
        log_bytes_per_op: snap.wal_bytes as f64 / ops as f64,
        group_p50: snap.hists.wal_group.p50(),
        group_max: snap.hists.wal_group.max_ns(),
    }
}

/// Hand-rolled JSON (no serde in the tree).
fn to_json(rows: &[Row], keys: u64, ops: u64, seed: u64) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"bench\": \"durability_sweep\",\n");
    out.push_str(&format!("  \"keys\": {keys},\n"));
    out.push_str(&format!("  \"ops_per_config\": {ops},\n"));
    out.push_str(&format!("  \"val_len\": {VAL_LEN},\n"));
    out.push_str(&format!("  \"seed\": {seed},\n"));
    out.push_str("  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"policy\": \"{}\", \"kops\": {:.3}, \"relative\": {:.4}, \
             \"fsyncs_per_op\": {:.4}, \"log_bytes_per_op\": {:.2}, \
             \"group_p50\": {}, \"group_max\": {}}}{}\n",
            r.policy,
            r.kops,
            r.relative,
            r.fsyncs_per_op,
            r.log_bytes_per_op,
            r.group_p50,
            r.group_max,
            if i + 1 == rows.len() { "" } else { "," },
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

fn main() {
    let args = Args::parse();
    let scale = args.scale;
    report::banner("Durability sweep", "WAL group-commit policies vs snapshot-only", &scale);

    // A bounded working set keeps the run dominated by the write path
    // under test, not by cold-memory effects; each policy gets its own
    // freshly-preloaded store and its own log directory.
    let keys = scale.num_keys.min(4096);
    let ops = scale.ops;
    let scratch = std::env::temp_dir().join(format!("ss-durability-{}", std::process::id()));

    let mut rows: Vec<Row> = Vec::new();
    let mut baseline = 0.0f64;
    for (i, &(name, policy)) in POLICIES.iter().enumerate() {
        let dir = scratch.join(name);
        let store = build(policy, &args, keys, &dir);
        // Warm-up: touch every key once so no configuration absorbs
        // cold-memory costs alone.
        for id in 0..keys {
            let _ = store.get(&make_key(id, 16));
        }
        let row = measure(name, &store, keys, ops, baseline);
        if i == 0 {
            baseline = row.kops;
        }
        rows.push(row);
    }
    std::fs::remove_dir_all(&scratch).ok();

    let mut table = report::Table::new(&[
        "policy",
        "kops",
        "vs no-wal",
        "fsyncs/op",
        "log B/op",
        "group p50",
        "group max",
    ]);
    for r in &rows {
        table.row(&[
            r.policy.into(),
            report::kops(r.kops),
            report::ratio(r.relative),
            format!("{:.4}", r.fsyncs_per_op),
            format!("{:.1}", r.log_bytes_per_op),
            r.group_p50.to_string(),
            r.group_max.to_string(),
        ]);
    }
    table.print();
    println!();
    println!("expect: strict pays ~1 fsync/op; group-N amortizes toward 1/N; the");
    println!("        buffered policies approach the no-wal baseline's throughput.");

    let json = to_json(&rows, keys, ops, args.seed);
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_durability.json");
    match std::fs::write(path, &json) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
}
