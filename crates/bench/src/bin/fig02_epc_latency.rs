//! Figure 2: memory access latencies with and without SGX.
//!
//! Random 64-byte reads and writes across an increasing working set, in
//! three configurations:
//!
//! * `NoSGX` — plain memory, no cost model;
//! * `SGX_Enclave` — enclave memory through the EPC model (faults once
//!   the working set exceeds the EPC budget);
//! * `SGX_Unprotected` — untrusted memory accessed from inside the
//!   enclave (no metering — the paper's key observation).
//!
//! Expected shape: `SGX_Enclave` sits a few times above `NoSGX` while the
//! working set fits the EPC, then jumps by orders of magnitude past it;
//! `SGX_Unprotected` tracks `NoSGX` throughout.

use sgx_sim::cost::CostModel;
use sgx_sim::enclave::EnclaveBuilder;
use sgx_sim::vclock;
use shield_workload::rng::SplitMix64;
use shieldstore_bench::{report, Args};
use std::time::Instant;

const ACCESS: usize = 64;

/// Measures average effective ns/op for random accesses over `wss` bytes
/// of enclave memory built with `cost`/`epc_bytes`.
fn enclave_latency(wss: usize, epc_bytes: usize, cost: CostModel, write: bool, ops: u64) -> f64 {
    let enclave = EnclaveBuilder::new("fig2").epc_bytes(epc_bytes).cost_model(cost).build();
    let region = enclave.memory().alloc(wss).expect("region");
    // Touch every page once so the resident set starts warm.
    let zero = [0u8; ACCESS];
    let pages = wss / 4096;
    for p in 0..pages {
        enclave.memory().write(region + (p * 4096) as u64, &zero);
    }

    vclock::reset();
    let mut rng = SplitMix64::new(0xf162);
    let mut buf = [0u8; ACCESS];
    let start = Instant::now();
    for _ in 0..ops {
        let page = rng.next_below(pages as u64);
        let offset = rng.next_below((4096 - ACCESS) as u64) & !63;
        let addr = region + page * 4096 + offset;
        if write {
            enclave.memory().write(addr, &zero);
        } else {
            enclave.memory().read(addr, &mut buf);
        }
    }
    let wall = start.elapsed().as_nanos() as f64;
    let penalty = vclock::take() as f64;
    std::hint::black_box(buf);
    (wall + penalty) / ops as f64
}

/// Measures plain (untrusted) memory as accessed from an enclave.
fn unprotected_latency(wss: usize, write: bool, ops: u64) -> f64 {
    // Untrusted memory is ordinary host memory: model it with a plain
    // buffer and real accesses only.
    let mut region = vec![0u8; wss];
    let pages = wss / 4096;
    let mut rng = SplitMix64::new(0xf162);
    let mut sink = 0u8;
    let start = Instant::now();
    for _ in 0..ops {
        let page = rng.next_below(pages as u64) as usize;
        let offset = (rng.next_below((4096 - ACCESS) as u64) & !63) as usize;
        let at = page * 4096 + offset;
        if write {
            region[at..at + ACCESS].fill(sink);
        } else {
            sink = sink.wrapping_add(region[at]);
        }
    }
    let wall = start.elapsed().as_nanos() as f64;
    std::hint::black_box(sink);
    wall / ops as f64
}

fn main() {
    let args = Args::parse();
    let scale = args.scale;
    report::banner("Figure 2", "memory access latency vs working set", &scale);

    // Working sets from well below to well above the EPC budget,
    // mirroring the paper's 16 MB .. 4096 MB sweep over a 90 MB EPC.
    let epc = scale.epc_bytes;
    let wss_points: Vec<usize> =
        [1, 2, 4, 6, 8, 12, 16, 32, 64].iter().map(|f| epc * f / 8).collect();
    let ops = scale.ops.min(200_000);

    for write in [false, true] {
        let mode = if write { "write" } else { "read" };
        let mut table = report::Table::new(&[
            "WSS(MB)",
            "NoSGX(ns)",
            "SGX_Enclave(ns)",
            "SGX_Unprotected(ns)",
            "enclave/nosgx",
        ]);
        for &wss in &wss_points {
            let nosgx = enclave_latency(wss, 0, CostModel::NO_SGX, write, ops);
            let enclave = enclave_latency(wss, epc, CostModel::I7_7700, write, ops);
            let unprotected = unprotected_latency(wss, write, ops);
            table.row(&[
                format!("{:.1}", wss as f64 / (1 << 20) as f64),
                format!("{nosgx:.0}"),
                format!("{enclave:.0}"),
                format!("{unprotected:.0}"),
                report::ratio(enclave / nosgx),
            ]);
        }
        println!("[{mode}]");
        table.print();
        println!();
    }
    println!(
        "expect: enclave/nosgx small (~MEE overhead) below EPC={}MB, then 100x+ past it;",
        epc >> 20
    );
    println!("        SGX_Unprotected tracks NoSGX at every size.");
}
