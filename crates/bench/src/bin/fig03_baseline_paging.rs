//! Figure 3: naive SGX key-value store performance vs working set.
//!
//! The paper's Baseline places the whole hash table inside the enclave.
//! While the database fits the EPC its throughput tracks the insecure
//! store; once it outgrows the EPC, demand paging collapses throughput by
//! two orders of magnitude (134x at the paper's 4 GB point).
//!
//! This binary sweeps the database size by varying the number of
//! preloaded keys (512-byte values, 50:50 get/set uniform, as in §3.1)
//! and prints `NoSGX` vs `Baseline` throughput plus their ratio.

use shield_baseline::{KvBackend, NaiveEnclaveStore};
use shield_workload::Spec;
use shieldstore_bench::{harness, report, Args};
use std::sync::Arc;

fn main() {
    let args = Args::parse();
    let scale = args.scale;
    report::banner("Figure 3", "baseline KV throughput vs working set", &scale);

    const VAL_LEN: usize = 512;
    const ENTRY: u64 = (16 + VAL_LEN + 16) as u64; // key + value + header
    let spec = Spec::by_name("RD50_U").expect("workload");

    // Database sizes from fitting-in-EPC to ~8x beyond, as the paper's
    // 16 MB .. 4096 MB sweep does around its 90 MB EPC.
    let epc = scale.epc_bytes as u64;
    let sizes: Vec<u64> = [1u64, 2, 4, 6, 8, 16, 32, 64].iter().map(|f| epc * f / 8).collect();
    let ops = scale.ops.min(60_000);

    let mut table =
        report::Table::new(&["DB size(MB)", "keys", "NoSGX(Kop/s)", "Baseline(Kop/s)", "slowdown"]);

    for &db_bytes in &sizes {
        let num_keys = (db_bytes / ENTRY).max(100);
        let buckets = (num_keys as usize).next_power_of_two();

        let insecure: Arc<dyn KvBackend> = Arc::new(NaiveEnclaveStore::insecure(buckets));
        harness::preload(&*insecure, num_keys, VAL_LEN);
        let r_insecure =
            harness::run_backend(&insecure, spec, num_keys, VAL_LEN, 1, ops, args.seed);

        let baseline: Arc<dyn KvBackend> =
            Arc::new(NaiveEnclaveStore::new(buckets, scale.epc_bytes));
        harness::preload(&*baseline, num_keys, VAL_LEN);
        let r_baseline =
            harness::run_backend(&baseline, spec, num_keys, VAL_LEN, 1, ops, args.seed);

        table.row(&[
            format!("{:.1}", db_bytes as f64 / (1 << 20) as f64),
            num_keys.to_string(),
            report::kops(r_insecure.kops()),
            report::kops(r_baseline.kops()),
            report::ratio(r_insecure.kops() / r_baseline.kops()),
        ]);
    }
    table.print();
    println!();
    println!(
        "expect: slowdown near 1-2x while the DB fits EPC ({} MB), then growing to 100x+.",
        epc >> 20
    );
}
