//! Figure 6: OCALL count and throughput vs allocation granularity.
//!
//! ShieldStore's custom heap allocator runs inside the enclave but hands
//! out untrusted memory, OCALLing only for pool chunks (§5.1). Larger
//! chunk granularity means fewer OCALLs. The paper sweeps 1-32 MB on the
//! RD50_Z small-data workload and settles on 16 MB.
//!
//! For reference the first row shows the unoptimized configuration
//! (`per-alloc`): one OCALL per allocation, as with the stock SDK's
//! untrusted heap.

use shield_workload::Spec;
use shieldstore::{AllocMode, Config};
use shieldstore_bench::{harness, report, Args};

fn run(alloc: AllocMode, args: &Args) -> (u64, f64) {
    let scale = args.scale;
    let config = Config { alloc, ..Config::shield_opt() }
        .buckets(scale.num_buckets)
        .mac_hashes(scale.num_mac_hashes);
    let store = harness::build_shieldstore(config, scale.epc_bytes, args.seed);
    // Start from an empty table: the 50% set operations of RD50_Z insert
    // fresh keys as the zipfian touches them, exercising the allocator
    // the way the paper's run does.
    let before = store.enclave().stats().snapshot().ocalls;
    let spec = Spec::by_name("RD50_Z").expect("workload");
    let result = harness::run_shieldstore_partitioned(
        &store,
        spec,
        scale.num_keys,
        16,
        1,
        scale.ops,
        args.seed,
    );
    let after = store.enclave().stats().snapshot().ocalls;
    (after - before, result.kops())
}

fn main() {
    let args = Args::parse();
    report::banner(
        "Figure 6",
        "OCALLs and throughput vs allocation granularity (RD50_Z, small)",
        &args.scale,
    );

    let mut table =
        report::Table::new(&["granularity", "OCALLs (measure phase)", "throughput(Kop/s)"]);

    let (ocalls, kops) = run(AllocMode::OcallPerAlloc, &args);
    table.row(&["per-alloc".into(), ocalls.to_string(), report::kops(kops)]);

    for mb in [1usize, 2, 4, 8, 16, 32] {
        let (ocalls, kops) = run(AllocMode::Pooled { granularity: mb << 20 }, &args);
        table.row(&[format!("{mb}MB"), ocalls.to_string(), report::kops(kops)]);
    }
    table.print();
    println!();
    println!("expect: OCALLs drop sharply with granularity; throughput recovers accordingly.");
}
