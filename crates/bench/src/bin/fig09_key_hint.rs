//! Figure 9: number of key decryptions with and without the key hint.
//!
//! Searching an encrypted chain requires decrypting candidate keys; the
//! 1-byte key hint prunes ~255/256 of the non-matching candidates (§5.4).
//! The paper counts decryptions over the small data set with 1 M and 8 M
//! buckets (average chain lengths 10 and 1.25); the reduction is larger
//! when chains are long.

use shield_workload::Spec;
use shield_workload::{make_key, make_value};
use shieldstore::Config;
use shieldstore_bench::{harness, report, Args};

fn decryptions(buckets: usize, key_hint: bool, args: &Args) -> (u64, f64) {
    let scale = args.scale;
    let config = Config { key_hint, two_step_search: key_hint, ..Config::shield_opt() }
        .buckets(buckets)
        .mac_hashes(buckets.min(scale.num_mac_hashes));
    let store = harness::build_shieldstore(config, scale.epc_bytes, args.seed);
    for id in 0..scale.num_keys {
        store.set(&make_key(id, 16), &make_value(id, 0, 16)).unwrap();
    }
    store.reset_stats();
    let spec = Spec::by_name("RD100_Z").expect("workload");
    let _ = harness::run_shieldstore_partitioned(
        &store,
        spec,
        scale.num_keys,
        16,
        1,
        scale.ops,
        args.seed,
    );
    let stats = store.stats();
    (stats.key_decryptions, stats.key_decryptions as f64 / stats.gets.max(1) as f64)
}

fn main() {
    let args = Args::parse();
    let scale = args.scale;
    report::banner("Figure 9", "key decryptions w/ and w/o the key hint", &scale);

    // The paper's 1 M and 8 M buckets over 10 M keys give average chains
    // of 10 and 1.25; reproduce the same chain lengths at this key count.
    let long_chain_buckets = (scale.num_keys / 10).next_power_of_two() as usize;
    let short_chain_buckets = (scale.num_keys * 4 / 5).next_power_of_two() as usize;

    let mut table =
        report::Table::new(&["buckets", "avg chain", "hint", "decryptions", "decrypts/op"]);
    for (label, buckets) in [("1M-scaled", long_chain_buckets), ("8M-scaled", short_chain_buckets)]
    {
        let chain = scale.num_keys as f64 / buckets as f64;
        for hint in [false, true] {
            let (total, per_op) = decryptions(buckets, hint, &args);
            table.row(&[
                format!("{label} ({buckets})"),
                format!("{chain:.2}"),
                if hint { "yes" } else { "no" }.into(),
                total.to_string(),
                format!("{per_op:.2}"),
            ]);
        }
    }
    table.print();
    println!();
    println!("expect: hints cut decryptions dramatically for long chains; less so for short.");
}
