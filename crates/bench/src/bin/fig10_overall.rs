//! Figure 10: overall performance, 1 and 4 threads, three data sizes.
//!
//! Average throughput over the eight Table 2 workloads, normalized to the
//! Baseline at the same thread count. The paper reports ShieldOpt at
//! 8-11x the Baseline with 1 thread and 24-30x with 4 threads;
//! Memcached+graphene lands within +-35% of the Baseline.

use shield_workload::TABLE2;
use shieldstore_bench::setups::{AnyStore, StoreKind};
use shieldstore_bench::{report, Args};

fn average_kops(
    store: &AnyStore,
    num_keys: u64,
    val_len: usize,
    threads: usize,
    ops: u64,
    seed: u64,
) -> f64 {
    let mut total = 0.0;
    for spec in TABLE2 {
        total += store.run(spec, num_keys, val_len, threads, ops, seed).kops();
    }
    total / TABLE2.len() as f64
}

fn main() {
    let args = Args::parse();
    let scale = args.scale;
    report::banner("Figure 10", "overall throughput, normalized to Baseline", &scale);

    let sizes = [("Small", 16usize), ("Medium", 128), ("Large", 512)];
    let ops_per_workload = (scale.ops / 4).max(2_000);

    for threads in [1usize, 4] {
        let mut table = report::Table::new(&["store", "size", "Kop/s", "normalized"]);
        for (size_name, val_len) in sizes {
            let mut results: Vec<(StoreKind, f64)> = Vec::new();
            for kind in StoreKind::ALL {
                let store = AnyStore::build(kind, &scale, threads.max(4), args.seed);
                store.preload(scale.num_keys, val_len);
                let kops = average_kops(
                    &store,
                    scale.num_keys,
                    val_len,
                    threads,
                    ops_per_workload,
                    args.seed,
                );
                results.push((kind, kops));
            }
            let baseline = results
                .iter()
                .find(|(k, _)| *k == StoreKind::Baseline)
                .map(|(_, v)| *v)
                .expect("baseline result");
            for (kind, kops) in results {
                table.row(&[
                    kind.name().into(),
                    size_name.into(),
                    report::kops(kops),
                    report::ratio(kops / baseline),
                ]);
            }
        }
        println!("[{threads} thread(s)]");
        table.print();
        println!();
    }
    println!("expect: ShieldOpt ~8-11x Baseline at 1 thread, ~24-30x at 4 threads;");
    println!("        ShieldBase slightly below ShieldOpt; Memcached+graphene ~ Baseline.");
}
