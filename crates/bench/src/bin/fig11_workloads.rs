//! Figure 11: per-workload throughput on the large data set.
//!
//! Throughput of Memcached+graphene, Baseline, ShieldBase and ShieldOpt
//! for each of the eight Table 2 workloads, with 512-byte values. In the
//! paper, ShieldBase gains ~7.3x over the Baseline on the 50%-set
//! workloads and ~11x on the read-mostly ones.

use shield_workload::TABLE2;
use shieldstore_bench::setups::{AnyStore, StoreKind};
use shieldstore_bench::{report, Args};

fn main() {
    let args = Args::parse();
    let scale = args.scale;
    report::banner("Figure 11", "per-workload throughput, large data set", &scale);

    const VAL_LEN: usize = 512;
    let threads = 1usize;
    let ops = scale.ops;

    // Build and preload each store once; workloads run back to back, as
    // in the paper's measurement over a preloaded 10M-key store.
    let stores: Vec<(StoreKind, AnyStore)> = StoreKind::ALL
        .iter()
        .map(|&kind| {
            let store = AnyStore::build(kind, &scale, 4, args.seed);
            store.preload(scale.num_keys, VAL_LEN);
            (kind, store)
        })
        .collect();

    let mut header: Vec<&str> = vec!["workload"];
    for kind in StoreKind::ALL.iter() {
        header.push(kind.name());
    }
    header.push("ShieldOpt/Base");
    let mut table = report::Table::new(&header);

    for spec in TABLE2 {
        let mut cells = vec![spec.name.to_string()];
        let mut baseline = 0.0;
        let mut shieldopt = 0.0;
        for (kind, store) in &stores {
            let kops = store.run(spec, scale.num_keys, VAL_LEN, threads, ops, args.seed).kops();
            if *kind == StoreKind::Baseline {
                baseline = kops;
            }
            if *kind == StoreKind::ShieldOpt {
                shieldopt = kops;
            }
            cells.push(report::kops(kops));
        }
        cells.push(report::ratio(shieldopt / baseline));
        table.row(&cells);
    }
    table.print();
    println!();
    println!("expect: ShieldStore gains smallest on 50%-set workloads (~7x in the paper)");
    println!("        and largest on read-mostly ones (~11x).");
}
