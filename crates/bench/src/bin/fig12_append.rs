//! Figure 12: append-operation workloads.
//!
//! Server-side encryption enables value-dependent operations such as
//! `append` (paper §3.2). Four mixes are evaluated: 95% read / 5% append
//! under zipfian 0.99, zipfian 0.5 and uniform keys, and 50% read / 50%
//! append uniform. The paper reports 1.7-16x gains over the Baseline,
//! with the *smallest* gains under the skewed distribution: repeated
//! appends balloon the hot keys, and re-encrypting those large values
//! dominates ShieldStore's cost.

use shield_workload::APPEND_SPECS;
use shieldstore_bench::setups::{AnyStore, StoreKind};
use shieldstore_bench::{report, Args};

fn main() {
    let args = Args::parse();
    let scale = args.scale;
    report::banner("Figure 12", "append workloads (RD:read / AP:append)", &scale);

    const VAL_LEN: usize = 128;
    let ops = scale.ops;

    let mut header: Vec<&str> = vec!["workload"];
    for kind in StoreKind::ALL.iter() {
        header.push(kind.name());
    }
    header.push("ShieldOpt/Base");
    let mut table = report::Table::new(&header);

    for spec in APPEND_SPECS {
        // Fresh stores per mix: append grows values cumulatively, and the
        // paper's point is precisely how that growth affects each store.
        let mut cells = vec![spec.name.to_string()];
        let mut baseline = 0.0;
        let mut shieldopt = 0.0;
        for kind in StoreKind::ALL {
            let store = AnyStore::build(kind, &scale, 4, args.seed);
            store.preload(scale.num_keys, VAL_LEN);
            let kops = store.run(spec, scale.num_keys, VAL_LEN, 1, ops, args.seed).kops();
            if kind == StoreKind::Baseline {
                baseline = kops;
            }
            if kind == StoreKind::ShieldOpt {
                shieldopt = kops;
            }
            cells.push(report::kops(kops));
        }
        cells.push(report::ratio(shieldopt / baseline));
        table.row(&cells);
    }
    table.print();
    println!();
    println!("expect: ShieldStore ahead everywhere, least under zipfian 0.99 (hot keys grow");
    println!("        large; re-encryption of big values narrows the gap, as in the paper).");
}
