//! Figure 13: multi-core scalability from 1 to 4 threads.
//!
//! The paper's three panels: Memcached+graphene and the Baseline gain
//! nothing beyond two threads (demand paging serializes them; memcached
//! additionally degrades because its maintainer thread adjusts the hash
//! table while holding locks), while ShieldOpt scales linearly (~330
//! Kop/s at 1 thread to ~1250 Kop/s at 4 in the paper) because its hash
//! partitions share nothing.

use shield_workload::TABLE2;
use shieldstore_bench::setups::{AnyStore, StoreKind};
use shieldstore_bench::{report, Args};

fn main() {
    let args = Args::parse();
    let scale = args.scale;
    report::banner("Figure 13", "throughput scalability, 1..4 threads", &scale);

    const VAL_LEN: usize = 512;
    let ops = (scale.ops / 2).max(4_000);
    let thread_counts: Vec<usize> = (1..=args.max_threads.clamp(1, 4)).collect();

    for kind in [StoreKind::MemcachedGraphene, StoreKind::Baseline, StoreKind::ShieldOpt] {
        let store = AnyStore::build(kind, &scale, 4, args.seed);
        store.preload(scale.num_keys, VAL_LEN);

        let mut header: Vec<String> = vec!["workload".into()];
        for &t in &thread_counts {
            header.push(format!("{t}thr(Kop/s)"));
        }
        header.push("4/1 speedup".into());
        let header_refs: Vec<&str> = header.iter().map(|s| s.as_str()).collect();
        let mut table = report::Table::new(&header_refs);

        for spec in TABLE2 {
            let mut cells = vec![spec.name.to_string()];
            let mut first = 0.0;
            let mut last = 0.0;
            for &threads in &thread_counts {
                let kops = store.run(spec, scale.num_keys, VAL_LEN, threads, ops, args.seed).kops();
                if threads == 1 {
                    first = kops;
                }
                last = kops;
                cells.push(report::kops(kops));
            }
            cells.push(report::ratio(last / first));
            table.row(&cells);
        }
        println!("[{}]", kind.name());
        table.print();
        println!();
    }
    println!("expect: ShieldOpt near-linear speedup; Baseline flat beyond ~2 threads;");
    println!("        Memcached+graphene degrades at 4 threads (maintainer lock model).");
}
