//! Figure 14: effect of the §5 optimizations.
//!
//! Cumulative ablation — `ShieldBase`, `+KeyOPT` (key hint), `+HeapAlloc`
//! (pooled untrusted allocator), `+MACBucket` — across two bucket counts
//! and two key counts, i.e. average chain lengths of roughly 1.25, 5, 10
//! and 40 as in the paper. The optimizations matter little at chain
//! length 1.25 and progressively more as chains grow.

use shield_workload::Spec;
use shield_workload::{make_key, make_value};
use shieldstore::{AllocMode, Config};
use shieldstore_bench::{harness, report, Args};

struct Variant {
    name: &'static str,
    key_hint: bool,
    pooled_alloc: bool,
    mac_bucket: bool,
}

const VARIANTS: [Variant; 4] = [
    Variant { name: "ShieldBase", key_hint: false, pooled_alloc: false, mac_bucket: false },
    Variant { name: "+KeyOPT", key_hint: true, pooled_alloc: false, mac_bucket: false },
    Variant { name: "+HeapAlloc", key_hint: true, pooled_alloc: true, mac_bucket: false },
    Variant { name: "+MACBucket", key_hint: true, pooled_alloc: true, mac_bucket: true },
];

fn main() {
    let args = Args::parse();
    let scale = args.scale;
    report::banner("Figure 14", "optimization ablation (large values)", &scale);

    const VAL_LEN: usize = 512;
    let workloads = ["RD50_Z", "RD95_Z", "RD100_Z"];
    // The paper's four (buckets, entries) quadrants give chain lengths
    // 1.25, 5, 10 and 40; reproduce the same chain lengths at this scale
    // (exact bucket counts — no power-of-two rounding).
    let base_keys = scale.num_keys;
    let quadrants = [
        ("8M-scaled buckets, 10M-scaled keys", (base_keys * 4 / 5) as usize, base_keys),
        ("8M-scaled buckets, 40M-scaled keys", (base_keys * 4 / 5) as usize, base_keys * 4),
        ("1M-scaled buckets, 10M-scaled keys", (base_keys / 10) as usize, base_keys),
        ("1M-scaled buckets, 40M-scaled keys", (base_keys / 10) as usize, base_keys * 4),
    ];

    for (label, buckets, keys) in quadrants {
        let mut header: Vec<&str> = vec!["variant"];
        for w in &workloads {
            header.push(w);
        }
        let mut table = report::Table::new(&header);

        for variant in &VARIANTS {
            let config = Config {
                key_hint: variant.key_hint,
                two_step_search: variant.key_hint,
                mac_bucket: variant.mac_bucket,
                alloc: if variant.pooled_alloc {
                    AllocMode::pooled_default()
                } else {
                    AllocMode::OcallPerAlloc
                },
                ..Config::shield_opt()
            }
            .buckets(buckets)
            .mac_hashes(scale.num_mac_hashes.min(buckets));
            let store = harness::build_shieldstore(config, scale.epc_bytes, args.seed);
            for id in 0..keys {
                store.set(&make_key(id, 16), &make_value(id, 0, VAL_LEN)).expect("preload");
            }

            let mut cells = vec![variant.name.to_string()];
            for w in &workloads {
                let spec = Spec::by_name(w).expect("workload");
                // Median of three repetitions: the optimization deltas are
                // 5-30%, below single-run noise on a busy host.
                let mut samples: Vec<f64> = (0..3)
                    .map(|rep| {
                        harness::run_shieldstore_partitioned(
                            &store,
                            spec,
                            keys,
                            VAL_LEN,
                            1,
                            scale.ops / 2,
                            args.seed + rep,
                        )
                        .kops()
                    })
                    .collect();
                samples.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
                cells.push(report::kops(samples[1]));
            }
            table.row(&cells);
        }
        println!("[{label}: avg chain {:.2}]", keys as f64 / buckets as f64);
        table.print();
        println!();
    }
    println!("expect: little change at chain ~1.25; +KeyOPT and +MACBucket grow with chain");
    println!("        length; +HeapAlloc helps most on the 50%-set workload.");
}
