//! Figure 15: the MAC-hash count trade-off.
//!
//! The in-enclave MAC hash array is ShieldStore's dominant EPC consumer.
//! More hashes mean smaller bucket sets (cheaper per-operation
//! verification) — until the array outgrows the EPC and starts demand
//! paging, at which point throughput collapses. The paper sweeps 1M, 2M,
//! 4M and 8M hashes over an 8M-bucket table (16..128 MB of hashes against
//! a ~90 MB EPC): throughput rises by 5-14% up to 4M, then drops sharply
//! at 8M.
//!
//! This sweep reproduces the same ratios: the bucket count is the scaled
//! analogue of 8M (sized so a one-hash-per-bucket array is ~128/90 of the
//! EPC), and hash counts are 1/8, 1/4, 1/2 and 1x the bucket count.

use shield_workload::Spec;
use shield_workload::{make_key, make_value, DataSize};
use shieldstore::Config;
use shieldstore_bench::{harness, report, Args};

fn main() {
    let args = Args::parse();
    let scale = args.scale;
    report::banner("Figure 15", "throughput vs number of MAC hashes", &scale);

    let epc = scale.epc_bytes;
    // Scaled 8M buckets: a full per-bucket hash array is 128/90 of EPC.
    let buckets = epc * 128 / 90 / 16;
    // Preserve the paper's 10M keys over 8M buckets (chain ~1.25).
    let num_keys = (buckets as u64) * 5 / 4;
    let points: [(&str, usize); 4] = [
        ("1M-scaled", buckets / 8),
        ("2M-scaled", buckets / 4),
        ("4M-scaled", buckets / 2),
        ("8M-scaled", buckets),
    ];
    println!("buckets={buckets} keys={num_keys} (chain ~1.25, as in the paper)\n");

    let spec = Spec::by_name("RD95_Z").expect("workload");
    let mut table = report::Table::new(&["MAC hashes", "array", "Small", "Medium", "Large"]);
    for (label, num_hashes) in points {
        let mut cells =
            vec![format!("{label} n={num_hashes}"), format!("{}KB", (num_hashes * 16) >> 10)];
        for size in [DataSize::SMALL, DataSize::MEDIUM, DataSize::LARGE] {
            let config = Config::shield_opt().buckets(buckets).mac_hashes(num_hashes);
            let store = harness::build_shieldstore(config, epc, args.seed);
            for id in 0..num_keys {
                store.set(&make_key(id, 16), &make_value(id, 0, size.val_len)).expect("preload");
            }
            let r = harness::run_shieldstore_partitioned(
                &store,
                spec,
                num_keys,
                size.val_len,
                1,
                scale.ops / 2,
                args.seed,
            );
            cells.push(report::kops(r.kops()));
        }
        table.row(&cells);
    }
    table.print();
    println!();
    println!("expect: modest gains up to the 4M-scaled point, then a sharp drop at the");
    println!("        8M-scaled point where the array exceeds the EPC and pages.");
}
