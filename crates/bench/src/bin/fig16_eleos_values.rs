//! Figure 16: ShieldStore vs Eleos across value sizes.
//!
//! Eleos extends enclave memory with exit-less *user-space paging*: an
//! in-EPC secure page cache backed by page-granularity encrypted
//! untrusted memory. At page-sized values (4 KB) its per-miss crypto is
//! proportionate; at small values it decrypts a whole page to read 16
//! bytes. The paper fixes a 500 MB data set, sweeps value sizes 16 B-4 KB
//! with 100% gets, and finds ShieldStore 7x and 40x faster at 512 B and
//! 16 B.

use shield_baseline::{EleosStore, KvBackend};
use shield_workload::Spec;
use shield_workload::{make_key, make_value};
use shieldstore::Config;
use shieldstore_bench::{harness, report, Args};
use std::sync::Arc;

fn main() {
    let args = Args::parse();
    let scale = args.scale;
    report::banner("Figure 16", "ShieldStore vs Eleos across value sizes", &scale);

    // Fixed total data volume, scaled from the paper's 500 MB by the same
    // EPC ratio; Eleos' secure page cache gets most of the EPC.
    let data_bytes = scale.epc_bytes as u64 * 500 / 90;
    let spc_bytes = scale.epc_bytes * 3 / 4;
    let spec = Spec::by_name("RD100_Z").expect("workload");

    let mut table =
        report::Table::new(&["value size", "keys", "Eleos(Kop/s)", "ShieldOpt(Kop/s)", "ratio"]);

    for val_len in [16usize, 512, 1024, 4096] {
        let num_keys = (data_bytes / (val_len as u64 + 32)).max(64);
        let buckets = (num_keys as usize).next_power_of_two();

        let eleos: Arc<dyn KvBackend> =
            Arc::new(EleosStore::new(buckets, spc_bytes, 4096, scale.epc_bytes));
        harness::preload(&*eleos, num_keys, val_len);
        let r_eleos =
            harness::run_backend(&eleos, spec, num_keys, val_len, 1, scale.ops, args.seed);

        let shield = harness::build_shieldstore(
            Config::shield_opt().buckets(buckets).mac_hashes(buckets.min(scale.num_mac_hashes)),
            scale.epc_bytes,
            args.seed,
        );
        for id in 0..num_keys {
            shield.set(&make_key(id, 16), &make_value(id, 0, val_len)).expect("preload");
        }
        let r_shield = harness::run_shieldstore_partitioned(
            &shield, spec, num_keys, val_len, 1, scale.ops, args.seed,
        );

        table.row(&[
            format!("{val_len}B"),
            num_keys.to_string(),
            report::kops(r_eleos.kops()),
            report::kops(r_shield.kops()),
            report::ratio(r_shield.kops() / r_eleos.kops()),
        ]);
    }
    table.print();
    println!();
    println!("expect: ShieldStore far ahead at 16B (paper: 40x) and 512B (7x); the gap");
    println!("        narrows as values approach the 4KB paging granularity.");
}
