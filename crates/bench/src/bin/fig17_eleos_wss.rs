//! Figure 17: ShieldStore vs Eleos across working-set sizes.
//!
//! With 4 KB values (Eleos' best case) and a growing data set, three
//! curves: Eleos, ShieldOpt, and ShieldOpt with its spare-EPC cache. In
//! the paper, Eleos wins modestly while the data fits its secure page
//! cache, the cache variant closes that gap, ShieldStore is flat at every
//! size, and Eleos cannot run past 2 GB (its memsys5-style pool limit).

use shield_baseline::{EleosStore, KvBackend};
use shield_workload::Spec;
use shield_workload::{make_key, make_value};
use shieldstore::Config;
use shieldstore_bench::{harness, report, Args};
use std::sync::Arc;

const VAL_LEN: usize = 4096;

fn main() {
    let args = Args::parse();
    let scale = args.scale;
    report::banner("Figure 17", "ShieldStore vs Eleos across working sets", &scale);

    // The paper sweeps 32 MB..8 GB over a 90 MB EPC with a 2 GB Eleos
    // pool; reproduce the same WSS/EPC and pool/EPC ratios.
    let epc = scale.epc_bytes as u64;
    let sizes: Vec<u64> =
        [32u64, 64, 128, 256, 512, 1024, 2048, 4096, 8192].iter().map(|mb| mb * epc / 90).collect();
    let pool_limit = 2048 * epc / 90;
    let spc_bytes = (epc * 3 / 4) as usize;
    let cache_bytes = (epc / 2) as usize;
    let spec = Spec::by_name("RD100_Z").expect("workload");
    let ops = (scale.ops / 2).max(4_000);

    let mut table = report::Table::new(&["WSS", "keys", "Eleos", "ShieldOpt", "ShieldOpt+cache"]);

    for &wss in &sizes {
        let num_keys = (wss / (VAL_LEN as u64 + 64)).max(16);
        let buckets = (num_keys as usize).next_power_of_two().max(64);

        // Eleos, subject to its pool limit.
        let eleos_store =
            EleosStore::with_pool_limit(buckets, spc_bytes, 4096, scale.epc_bytes, pool_limit);
        let eleos: Arc<dyn KvBackend> = Arc::new(eleos_store);
        let loaded = harness::preload(&*eleos, num_keys, VAL_LEN);
        let eleos_cell = if loaded < num_keys {
            "DNF (pool limit)".to_string()
        } else {
            let r = harness::run_backend(&eleos, spec, num_keys, VAL_LEN, 1, ops, args.seed);
            report::kops(r.kops())
        };

        // ShieldOpt with and without the spare-EPC cache.
        let mut cells = vec![format!("{:.1}MB", wss as f64 / (1 << 20) as f64)];
        cells.push(num_keys.to_string());
        cells.push(eleos_cell);
        for cache in [0usize, cache_bytes] {
            let shield = harness::build_shieldstore(
                Config::shield_opt()
                    .buckets(buckets)
                    .mac_hashes(buckets.min(scale.num_mac_hashes))
                    .with_cache(cache),
                scale.epc_bytes,
                args.seed,
            );
            for id in 0..num_keys {
                shield.set(&make_key(id, 16), &make_value(id, 0, VAL_LEN)).expect("preload");
            }
            let r = harness::run_shieldstore_partitioned(
                &shield, spec, num_keys, VAL_LEN, 1, ops, args.seed,
            );
            cells.push(report::kops(r.kops()));
        }
        table.row(&cells);
    }
    table.print();
    println!();
    println!("expect: Eleos ahead at small sets, degrading as the set outgrows its page");
    println!("        cache and DNF past the scaled 2GB pool; ShieldOpt flat throughout;");
    println!("        the cache variant matches Eleos at small sets.");
}
