//! Figure 18: networked client-server evaluation.
//!
//! Clients connect over TCP (loopback here; a 10 GbE link in the paper),
//! remote-attest the server, and drive encrypted requests. Six
//! configurations per data size: Memcached+graphene, Baseline, ShieldOpt,
//! ShieldOpt+HotCalls, Insecure Memcached, and Insecure Baseline. The
//! secure configurations charge an enclave crossing per request (ECALL
//! ~8,000 cycles, or HotCalls ~620); insecure ones skip attestation,
//! traffic crypto and crossings.
//!
//! Note: on a single-core host the server workers and client threads
//! share one CPU, so the 1-vs-4-worker scaling of the paper cannot
//! manifest; the comparison *between stores* at fixed concurrency is the
//! reproducible part, and the store-side SGX penalties are virtual-time
//! accounted as everywhere else.

use sgx_sim::attest::AttestationVerifier;
use sgx_sim::enclave::Enclave;
use shield_baseline::{KvBackend, MemcachedLike, NaiveEnclaveStore};
use shield_net::client::{run_load, LoadConfig};
use shield_net::server::{CrossingMode, Server, ServerConfig};
use shieldstore::Config;
use shieldstore_bench::{harness, report, Args};
use std::sync::Arc;
use std::time::Duration;

struct NetCase {
    name: &'static str,
    secure: bool,
    crossing: CrossingMode,
}

const CASES: [NetCase; 6] = [
    NetCase { name: "Memcached+graphene", secure: true, crossing: CrossingMode::Ecall },
    NetCase { name: "Baseline", secure: true, crossing: CrossingMode::Ecall },
    NetCase { name: "ShieldOpt", secure: true, crossing: CrossingMode::Ecall },
    NetCase { name: "ShieldOpt+HotCalls", secure: true, crossing: CrossingMode::HotCalls },
    NetCase { name: "Insecure Memcached", secure: false, crossing: CrossingMode::Ecall },
    NetCase { name: "Insecure Baseline", secure: false, crossing: CrossingMode::Ecall },
];

fn build_store(
    case: &NetCase,
    scale: &shieldstore_bench::Scale,
    seed: u64,
) -> (Arc<dyn KvBackend>, Option<Arc<Enclave>>) {
    let buckets = scale.num_buckets;
    match case.name {
        "Memcached+graphene" => {
            let s = Arc::new(MemcachedLike::graphene(buckets, scale.epc_bytes));
            let e = Arc::clone(s.enclave());
            (s, Some(e))
        }
        "Baseline" => {
            let s = Arc::new(NaiveEnclaveStore::new(buckets, scale.epc_bytes));
            let e = Arc::clone(s.enclave());
            (s, Some(e))
        }
        "ShieldOpt" | "ShieldOpt+HotCalls" => {
            let s = harness::build_shieldstore(
                Config::shield_opt()
                    .buckets(buckets)
                    .mac_hashes(scale.num_mac_hashes)
                    .with_shards(4),
                scale.epc_bytes,
                seed,
            );
            let e = Arc::clone(s.enclave());
            (s, Some(e))
        }
        "Insecure Memcached" => (Arc::new(MemcachedLike::insecure(buckets)), None),
        "Insecure Baseline" => (Arc::new(NaiveEnclaveStore::insecure(buckets)), None),
        other => panic!("unknown case {other}"),
    }
}

fn main() {
    let args = Args::parse();
    let scale = args.scale;
    report::banner("Figure 18", "networked evaluation (loopback TCP)", &scale);

    let sizes = [("Small", 16usize), ("Medium", 128), ("Large", 512)];
    let workloads = ["RD50_Z", "RD95_Z", "RD100_Z"];

    for workers in [1usize, 4] {
        let mut table = report::Table::new(&["store", "size", "Kop/s"]);
        for (size_name, val_len) in sizes {
            for case in &CASES {
                let (store, enclave) = build_store(case, &scale, args.seed);
                harness::preload(&*store, scale.num_keys, val_len);
                store.reset_timing();
                store.set_concurrency(workers);

                let server = Server::start(
                    Arc::clone(&store),
                    enclave.clone(),
                    ServerConfig {
                        workers,
                        crossing: case.crossing,
                        secure: case.secure,
                        ..Default::default()
                    },
                )
                .expect("server start");

                let verifier = enclave.as_ref().map(|e| {
                    AttestationVerifier::for_enclave(e).expect_measurement(*e.measurement())
                });

                let mut total_kops = 0.0;
                for workload in workloads {
                    server.reset_accounting();
                    let report = run_load(
                        server.addr(),
                        verifier.as_ref(),
                        &LoadConfig {
                            users: scale.users,
                            requests_per_user: scale.requests_per_user,
                            secure: case.secure,
                            workload: workload.into(),
                            num_keys: scale.num_keys,
                            val_len,
                            seed: args.seed,
                        },
                    )
                    .expect("load run");
                    let penalty = server.worker_penalties_ns().into_iter().max().unwrap_or(0);
                    total_kops += report.kops(Duration::from_nanos(penalty));
                }
                server.shutdown();
                table.row(&[
                    case.name.into(),
                    size_name.into(),
                    report::kops(total_kops / workloads.len() as f64),
                ]);
            }
        }
        println!("[{workers} server worker(s), {} users]", scale.users);
        table.print();
        println!();
    }
    println!("expect: ShieldOpt+HotCalls ~5-6x Baseline; insecure stores fastest;");
    println!("        HotCalls beats plain ECALLs; Baseline far behind everything.");
}
