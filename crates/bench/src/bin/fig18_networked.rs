//! Figure 18: networked client-server evaluation.
//!
//! Clients connect over TCP (loopback here; a 10 GbE link in the paper),
//! remote-attest the server, and drive encrypted requests. Six
//! configurations per data size: Memcached+graphene, Baseline, ShieldOpt,
//! ShieldOpt+HotCalls, Insecure Memcached, and Insecure Baseline. The
//! secure configurations charge an enclave crossing per request (ECALL
//! ~8,000 cycles, or HotCalls ~620); insecure ones skip attestation,
//! traffic crypto and crossings.
//!
//! Note: on a single-core host the server workers and client threads
//! share one CPU, so the 1-vs-4-worker scaling of the paper cannot
//! manifest; the comparison *between stores* at fixed concurrency is the
//! reproducible part, and the store-side SGX penalties are virtual-time
//! accounted as everywhere else.

use sgx_sim::attest::AttestationVerifier;
use sgx_sim::enclave::Enclave;
use shield_baseline::{KvBackend, MemcachedLike, NaiveEnclaveStore};
use shield_net::client::{run_load, KvClient, LoadConfig};
use shield_net::poller::raise_nofile_limit;
use shield_net::server::{CrossingMode, Server, ServerConfig};
use shieldstore::hist::LatencyHist;
use shieldstore::Config;
use shieldstore_bench::{harness, report, Args};
use std::sync::Arc;
use std::time::{Duration, Instant};

struct NetCase {
    name: &'static str,
    secure: bool,
    crossing: CrossingMode,
}

const CASES: [NetCase; 6] = [
    NetCase { name: "Memcached+graphene", secure: true, crossing: CrossingMode::Ecall },
    NetCase { name: "Baseline", secure: true, crossing: CrossingMode::Ecall },
    NetCase { name: "ShieldOpt", secure: true, crossing: CrossingMode::Ecall },
    NetCase { name: "ShieldOpt+HotCalls", secure: true, crossing: CrossingMode::HotCalls },
    NetCase { name: "Insecure Memcached", secure: false, crossing: CrossingMode::Ecall },
    NetCase { name: "Insecure Baseline", secure: false, crossing: CrossingMode::Ecall },
];

fn build_store(
    case: &NetCase,
    scale: &shieldstore_bench::Scale,
    seed: u64,
) -> (Arc<dyn KvBackend>, Option<Arc<Enclave>>) {
    let buckets = scale.num_buckets;
    match case.name {
        "Memcached+graphene" => {
            let s = Arc::new(MemcachedLike::graphene(buckets, scale.epc_bytes));
            let e = Arc::clone(s.enclave());
            (s, Some(e))
        }
        "Baseline" => {
            let s = Arc::new(NaiveEnclaveStore::new(buckets, scale.epc_bytes));
            let e = Arc::clone(s.enclave());
            (s, Some(e))
        }
        "ShieldOpt" | "ShieldOpt+HotCalls" => {
            let s = harness::build_shieldstore(
                Config::shield_opt()
                    .buckets(buckets)
                    .mac_hashes(scale.num_mac_hashes)
                    .with_shards(4),
                scale.epc_bytes,
                seed,
            );
            let e = Arc::clone(s.enclave());
            (s, Some(e))
        }
        "Insecure Memcached" => (Arc::new(MemcachedLike::insecure(buckets)), None),
        "Insecure Baseline" => (Arc::new(NaiveEnclaveStore::insecure(buckets)), None),
        other => panic!("unknown case {other}"),
    }
}

const ROLE_ENV: &str = "SS_FIG18_ROLE";
const CLIENTS_ENV: &str = "SS_FIG18_CLIENTS";

/// Child role for the scale section: an insecure ShieldOpt server that
/// announces its port and parks until killed (both socket ends of a
/// loopback connection share one process's fd budget otherwise).
fn run_scale_server() -> ! {
    let clients: usize =
        std::env::var(CLIENTS_ENV).ok().and_then(|v| v.parse().ok()).unwrap_or(10_000);
    let _ = raise_nofile_limit((clients + 512) as u64);
    let store = harness::build_shieldstore(
        Config::shield_opt().buckets(1024).mac_hashes(64).with_shards(4),
        64 << 20,
        42,
    );
    let enclave = Arc::clone(store.enclave());
    let server = Server::start(
        store,
        Some(enclave),
        ServerConfig {
            event_loops: 4,
            secure: false,
            max_connections: clients + 128,
            frame_timeout: Duration::from_secs(600),
            ..Default::default()
        },
    )
    .expect("scale server start");
    println!("ADDR={}", server.addr());
    use std::io::Write;
    std::io::stdout().flush().expect("flush addr");
    loop {
        std::thread::park();
    }
}

/// Scale addendum: the readiness engine holding 10k+ live connections,
/// with request p99 measured while the whole herd stays open.
fn scale_section() {
    let clients: usize =
        std::env::var(CLIENTS_ENV).ok().and_then(|v| v.parse().ok()).unwrap_or(10_000);
    let _ = raise_nofile_limit((clients + 512) as u64);

    let exe = std::env::current_exe().expect("own executable path");
    let mut child = std::process::Command::new(&exe)
        .env(ROLE_ENV, "server")
        .env(CLIENTS_ENV, clients.to_string())
        .stdout(std::process::Stdio::piped())
        .spawn()
        .expect("spawn scale server");
    let addr: std::net::SocketAddr = {
        use std::io::BufRead;
        let stdout = child.stdout.take().expect("child stdout");
        let mut line = String::new();
        std::io::BufReader::new(stdout).read_line(&mut line).expect("child addr");
        line.trim().strip_prefix("ADDR=").expect("ADDR line").parse().expect("addr")
    };

    let ramp_started = Instant::now();
    let mut herd: Vec<KvClient> = Vec::with_capacity(clients);
    for i in 0..clients {
        herd.push(KvClient::connect_insecure(addr).expect("ramp connect"));
        if i.is_multiple_of(512) && i > 0 {
            std::thread::sleep(Duration::from_millis(2));
        }
    }
    let ramp = ramp_started.elapsed();

    let mut hist = LatencyHist::new();
    for (i, client) in herd.iter_mut().enumerate() {
        let key = shield_workload::make_key(i as u64, 16);
        let t = Instant::now();
        client.set(&key, b"fig18-scale").expect("scale set");
        hist.record(t.elapsed().as_nanos() as u64);
    }
    for (i, client) in herd.iter_mut().enumerate() {
        let key = shield_workload::make_key(i as u64, 16);
        let t = Instant::now();
        let got = client.get(&key).expect("scale get");
        hist.record(t.elapsed().as_nanos() as u64);
        assert_eq!(got.as_deref(), Some(b"fig18-scale".as_ref()));
    }

    let mut table = report::Table::new(&["clients", "ramp", "samples", "p50", "p95", "p99", "max"]);
    table.row(&[
        clients.to_string(),
        format!("{:.1}s", ramp.as_secs_f64()),
        hist.count().to_string(),
        format!("{}ns", hist.p50()),
        format!("{}ns", hist.p95()),
        format!("{}ns", hist.p99()),
        format!("{}ns", hist.max_ns()),
    ]);
    println!("[scale: {clients} concurrent clients, 4 event loops, insecure ShieldOpt]");
    table.print();
    println!();

    drop(herd);
    child.kill().ok();
    child.wait().ok();
}

fn main() {
    if std::env::var(ROLE_ENV).as_deref() == Ok("server") {
        run_scale_server();
    }
    let args = Args::parse();
    let scale = args.scale;
    report::banner("Figure 18", "networked evaluation (loopback TCP)", &scale);

    let sizes = [("Small", 16usize), ("Medium", 128), ("Large", 512)];
    let workloads = ["RD50_Z", "RD95_Z", "RD100_Z"];

    for workers in [1usize, 4] {
        let mut table = report::Table::new(&["store", "size", "Kop/s"]);
        for (size_name, val_len) in sizes {
            for case in &CASES {
                let (store, enclave) = build_store(case, &scale, args.seed);
                harness::preload(&*store, scale.num_keys, val_len);
                store.reset_timing();
                store.set_concurrency(workers);

                let server = Server::start(
                    Arc::clone(&store),
                    enclave.clone(),
                    ServerConfig {
                        event_loops: workers,
                        crossing: case.crossing,
                        secure: case.secure,
                        ..Default::default()
                    },
                )
                .expect("server start");

                let verifier = enclave.as_ref().map(|e| {
                    AttestationVerifier::for_enclave(e).expect_measurement(*e.measurement())
                });

                let mut total_kops = 0.0;
                for workload in workloads {
                    server.reset_accounting();
                    let report = run_load(
                        server.addr(),
                        verifier.as_ref(),
                        &LoadConfig {
                            users: scale.users,
                            requests_per_user: scale.requests_per_user,
                            secure: case.secure,
                            workload: workload.into(),
                            num_keys: scale.num_keys,
                            val_len,
                            seed: args.seed,
                        },
                    )
                    .expect("load run");
                    let penalty = server.worker_penalties_ns().into_iter().max().unwrap_or(0);
                    total_kops += report.kops(Duration::from_nanos(penalty));
                }
                server.shutdown();
                table.row(&[
                    case.name.into(),
                    size_name.into(),
                    report::kops(total_kops / workloads.len() as f64),
                ]);
            }
        }
        println!("[{workers} server worker(s), {} users]", scale.users);
        table.print();
        println!();
    }
    scale_section();

    println!("expect: ShieldOpt+HotCalls ~5-6x Baseline; insecure stores fastest;");
    println!("        HotCalls beats plain ECALLs; Baseline far behind everything;");
    println!("        the scale row holds 10k+ live connections with sub-ms p99.");
}
