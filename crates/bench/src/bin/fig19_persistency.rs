//! Figure 19: persistency support.
//!
//! ShieldStore snapshots periodically (the paper: every 60 s, like
//! Redis). Three modes per workload and data size:
//!
//! * **No Persist.** — snapshots disabled;
//! * **Naive Persist.** — request processing blocks while the whole
//!   store is written (`snapshot_blocking`);
//! * **OPT Persist.** — Algorithm 1: the main table freezes behind a
//!   background writer while a temporary table absorbs writes
//!   (`snapshot_background`), merged back when the writer finishes.
//!
//! The paper measures up to 25% degradation for naive snapshots on the
//! large set and 2.1-6.5% for the optimized design; with 100% reads the
//! optimized version is nearly free.

use sgx_sim::counter::PersistentCounter;
use shield_workload::{make_key, make_value, Generator, Op, Spec};
use shieldstore::Config;
use shieldstore_bench::{harness, report, Args};
use std::time::Instant;

#[derive(Clone, Copy, PartialEq)]
enum Mode {
    None,
    Naive,
    Optimized,
}

/// Runs `ops` operations with a snapshot triggered every `interval` ops,
/// returning Kop/s over effective time (wall + worker penalty).
fn run_with_snapshots(
    mode: Mode,
    spec: Spec,
    val_len: usize,
    args: &Args,
    dir: &std::path::Path,
) -> f64 {
    let scale = args.scale;
    let store = harness::build_shieldstore(
        Config::shield_opt().buckets(scale.num_buckets).mac_hashes(scale.num_mac_hashes),
        scale.epc_bytes,
        args.seed,
    );
    for id in 0..scale.num_keys {
        store.set(&make_key(id, 16), &make_value(id, 0, val_len)).expect("preload");
    }
    let counter =
        PersistentCounter::open(dir.join(format!("ctr-{val_len}-{}", spec.name))).expect("counter");

    // Length the run so the snapshot-to-serving work ratio approximates
    // the paper's (a 10M-entry snapshot amortized over ~18M operations
    // between 60-second snapshots).
    let ops = scale.ops.max(scale.num_keys * 2);
    let interval = ops / 2; // one snapshot cycle per run, at the midpoint
    let mut generator = Generator::new(spec, scale.num_keys, args.seed);

    store.enclave().reset_timing();
    sgx_sim::vclock::reset();
    let start = Instant::now();
    let mut job: Option<shieldstore::SnapshotJob<'_>> = None;
    let mut writer_cpu = std::time::Duration::ZERO;
    let snap_path = dir.join(format!("snap-{val_len}-{}.db", spec.name));

    for i in 0..ops {
        if i == interval {
            match mode {
                Mode::None => {}
                Mode::Naive => {
                    store.snapshot_blocking(&snap_path, &counter).expect("naive snapshot");
                }
                Mode::Optimized => {
                    if job.is_none() {
                        job = Some(
                            store.snapshot_background(&snap_path, &counter).expect("bg snapshot"),
                        );
                    }
                }
            }
        }
        // Poll the background writer and merge when it finishes.
        if let Some(j) = job.take() {
            if j.is_done() {
                writer_cpu += j.finish().expect("snapshot finish");
            } else {
                job = Some(j);
            }
        }

        let op = generator.next_op();
        let id = op.key_id();
        let key = make_key(id, 16);
        match op {
            Op::Get(_) => {
                let _ = store.get(&key);
            }
            _ => {
                store.set(&key, &make_value(id, generator.round(), val_len)).expect("set");
            }
        }
    }
    if let Some(j) = job.take() {
        writer_cpu += j.finish().expect("final snapshot finish");
    }
    let wall = start.elapsed();
    let penalty = std::time::Duration::from_nanos(sgx_sim::vclock::take());
    // On a single-core host the background writer's CPU is stolen from
    // the request loop; on the paper's machine it runs on a spare core.
    // Subtract it to model that (see DESIGN.md on modeled parallelism).
    let effective = (wall + penalty).saturating_sub(writer_cpu);
    ops as f64 / effective.as_secs_f64() / 1e3
}

fn main() {
    let args = Args::parse();
    let scale = args.scale;
    report::banner("Figure 19", "persistency: none vs naive vs optimized", &scale);

    let dir = std::env::temp_dir().join(format!("shieldstore-fig19-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");

    let sizes = [("Small", 16usize), ("Medium", 128), ("Large", 512)];
    let workloads = ["RD50_Z", "RD95_Z", "RD100_Z"];

    let mut table = report::Table::new(&[
        "size",
        "workload",
        "No Persist.",
        "Naive Persist.",
        "OPT Persist.",
        "naive loss",
        "opt loss",
    ]);
    for (size_name, val_len) in sizes {
        for name in workloads {
            let spec = Spec::by_name(name).expect("workload");
            let none = run_with_snapshots(Mode::None, spec, val_len, &args, &dir);
            let naive = run_with_snapshots(Mode::Naive, spec, val_len, &args, &dir);
            let opt = run_with_snapshots(Mode::Optimized, spec, val_len, &args, &dir);
            table.row(&[
                size_name.into(),
                name.into(),
                report::kops(none),
                report::kops(naive),
                report::kops(opt),
                format!("{:.1}%", (1.0 - naive / none) * 100.0),
                format!("{:.1}%", (1.0 - opt / none) * 100.0),
            ]);
        }
    }
    table.print();
    let _ = std::fs::remove_dir_all(&dir);
    println!();
    println!("expect: naive losses grow with data size (paper: up to 25% at large);");
    println!("        optimized losses stay small (2-7%), near zero for 100% reads.");
}
