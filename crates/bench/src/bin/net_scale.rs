//! Network-engine scale benchmark: 10k concurrent clients + throughput.
//!
//! Two measurements against the readiness-loop engine, written to
//! `BENCH_net_scale.json` at the repo root:
//!
//! 1. **Throughput at 64 clients** — a mixed read-heavy load over 64
//!    concurrent connections, the regression anchor for the engine's
//!    hot path (compare across commits; it must not fall when the
//!    engine changes).
//! 2. **Latency at ≥10k concurrent clients** — ramp `SS_NET_SCALE_CLIENTS`
//!    (default 10,000) connections, keep them all open, then measure
//!    per-request round-trip latency with every other connection parked
//!    on the pollers. Reports p50/p95/p99.
//!
//! The process fd ceiling here is 20,000 and each loopback connection
//! consumes an fd on both ends, so the server runs in a child process
//! (`SS_NET_SCALE_ROLE=server`, port handed back over stdout) and the
//! parent keeps its whole budget for client sockets.

use shield_net::client::{run_load, KvClient, LoadConfig};
use shield_net::poller::raise_nofile_limit;
use shield_net::server::{Server, ServerConfig};
use shieldstore::hist::LatencyHist;
use std::io::BufRead;
use std::time::{Duration, Instant};

const ROLE_ENV: &str = "SS_NET_SCALE_ROLE";
const LOOPS_ENV: &str = "SS_NET_SCALE_EVENT_LOOPS";
const CLIENTS_ENV: &str = "SS_NET_SCALE_CLIENTS";
const REQS_ENV: &str = "SS_NET_SCALE_REQS";

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

/// Child role: serve until killed, announcing the bound port first.
fn run_server() -> ! {
    let clients = env_usize(CLIENTS_ENV, 10_000);
    let _ = raise_nofile_limit((clients + 512) as u64);
    let enclave = sgx_sim::enclave::EnclaveBuilder::new("net-scale").epc_bytes(64 << 20).build();
    let store = std::sync::Arc::new(
        shieldstore::ShieldStore::new(
            std::sync::Arc::clone(&enclave),
            shieldstore::Config::shield_opt().buckets(1024).mac_hashes(64).with_shards(4),
        )
        .expect("store"),
    );
    let backend: std::sync::Arc<dyn shield_baseline::KvBackend> = store as _;
    let server = Server::start(
        backend,
        Some(enclave),
        ServerConfig {
            event_loops: env_usize(LOOPS_ENV, 2),
            secure: false,
            max_connections: clients + 128,
            // Parked clients go minutes between requests at this scale.
            frame_timeout: Duration::from_secs(600),
            ..Default::default()
        },
    )
    .expect("server start");
    println!("ADDR={}", server.addr());
    use std::io::Write;
    std::io::stdout().flush().expect("flush addr");
    loop {
        std::thread::park();
    }
}

fn main() {
    if std::env::var(ROLE_ENV).as_deref() == Ok("server") {
        run_server();
    }

    let clients = env_usize(CLIENTS_ENV, 10_000);
    let event_loops = env_usize(LOOPS_ENV, 2);
    let reqs_per_user = env_usize(REQS_ENV, 1000);
    let _ = raise_nofile_limit((clients + 512) as u64);

    let exe = std::env::current_exe().expect("own executable path");
    let mut child = std::process::Command::new(&exe)
        .env(ROLE_ENV, "server")
        .env(LOOPS_ENV, event_loops.to_string())
        .env(CLIENTS_ENV, clients.to_string())
        .stdout(std::process::Stdio::piped())
        .spawn()
        .expect("spawn server child");
    let addr: std::net::SocketAddr = {
        let stdout = child.stdout.take().expect("child stdout");
        let mut line = String::new();
        std::io::BufReader::new(stdout).read_line(&mut line).expect("child addr line");
        line.trim()
            .strip_prefix("ADDR=")
            .expect("child announces ADDR=")
            .parse()
            .expect("valid server addr")
    };

    // Phase 1: 64-client mixed-load throughput (the regression anchor).
    let load = run_load(
        addr,
        None,
        &LoadConfig {
            users: 64,
            requests_per_user: reqs_per_user,
            secure: false,
            workload: "RD95_Z".into(),
            num_keys: 10_000,
            val_len: 128,
            seed: 42,
        },
    )
    .expect("64-client load");
    let kops_64 = load.kops(Duration::ZERO);
    println!(
        "64-client throughput: {kops_64:.1} Kop/s ({} ops, {} errors, {:?})",
        load.ops, load.errors, load.wall
    );

    // Phase 2: ramp the full herd and hold it open.
    let ramp_started = Instant::now();
    let mut herd: Vec<KvClient> = Vec::with_capacity(clients);
    for i in 0..clients {
        herd.push(KvClient::connect_insecure(addr).expect("ramp connect"));
        if i.is_multiple_of(512) && i > 0 {
            // Brief pause so the accept loops keep ahead of the listen
            // backlog; loopback SYN drops cost a 1s retransmit.
            std::thread::sleep(Duration::from_millis(2));
        }
    }
    let ramp = ramp_started.elapsed();
    println!("ramped {clients} concurrent clients in {ramp:?}");

    // Per-request round trips with every connection live. Two sweeps:
    // a write sweep (distinct keys per client) and a read sweep.
    let mut hist = LatencyHist::new();
    let mut errors = 0u64;
    for (i, client) in herd.iter_mut().enumerate() {
        let key = format!("scale-{i}");
        let t = Instant::now();
        match client.set(key.as_bytes(), b"net-scale") {
            Ok(()) => hist.record(t.elapsed().as_nanos() as u64),
            Err(_) => errors += 1,
        }
    }
    for (i, client) in herd.iter_mut().enumerate() {
        let key = format!("scale-{i}");
        let t = Instant::now();
        match client.get(key.as_bytes()) {
            Ok(Some(v)) if v == b"net-scale" => hist.record(t.elapsed().as_nanos() as u64),
            _ => errors += 1,
        }
    }
    println!(
        "latency over {} samples at {clients} live connections: \
         p50={}ns p95={}ns p99={}ns max={}ns ({errors} errors)",
        hist.count(),
        hist.p50(),
        hist.p95(),
        hist.p99(),
        hist.max_ns(),
    );

    drop(herd);
    child.kill().ok();
    child.wait().ok();

    let json = format!(
        "{{\n  \"bench\": \"net_scale\",\n  \"event_loops\": {event_loops},\n  \
         \"throughput_64_clients\": {{\n    \"users\": 64,\n    \"workload\": \"RD95_Z\",\n    \
         \"ops\": {},\n    \"errors\": {},\n    \"wall_ms\": {},\n    \"kops\": {:.3}\n  }},\n  \
         \"concurrency\": {{\n    \"concurrent_clients\": {clients},\n    \
         \"ramp_ms\": {},\n    \"samples\": {},\n    \"errors\": {errors},\n    \
         \"p50_ns\": {},\n    \"p95_ns\": {},\n    \"p99_ns\": {},\n    \"max_ns\": {}\n  }}\n}}\n",
        load.ops,
        load.errors,
        load.wall.as_millis(),
        kops_64,
        ramp.as_millis(),
        hist.count(),
        hist.p50(),
        hist.p95(),
        hist.p99(),
        hist.max_ns(),
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_net_scale.json");
    match std::fs::write(path, &json) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
    assert!(errors == 0, "scale sweep saw {errors} errors");
    assert!(hist.count() as usize >= 2 * clients - 2, "lost latency samples");
}
