//! Replication benchmark: read scale-out with two attested replicas and
//! verifiable failover time, written to `BENCH_replication.json` at the
//! repo root.
//!
//! Three measurements against a secure primary with two streaming
//! [`ReplicaNode`]s:
//!
//! 1. **Solo read throughput** — closed-loop readers against the
//!    primary alone, the denominator of the scale-out ratio.
//! 2. **Aggregate read capacity** — the same reader fleet driven against
//!    each node *in isolation*, one node at a time; the aggregate is the
//!    sum. A deployment puts each node on its own machine, so fleet
//!    capacity is the sum of per-node capacities — and the bench host
//!    routinely has fewer cores than nodes, where driving all three
//!    concurrently would measure host CPU contention instead of
//!    replication scale-out. The gate: aggregate ≥
//!    `SS_REPL_SCALEOUT_GATE` (default 1.8) × solo.
//! 3. **Failover time** — wall-clock from killing the primary's server
//!    to a *completed* promotion (fence + catch-up + WAL adoption) plus
//!    the first acknowledged write on the new primary, with every
//!    durably-acked write verified readable afterwards.

use sgx_sim::attest::AttestationVerifier;
use sgx_sim::enclave::{Enclave, EnclaveBuilder};
use shield_net::repl::{ReplicaConfig, ReplicaNode};
use shield_net::{KvClient, Server, ServerConfig};
use shield_workload::rng::SplitMix64;
use shieldstore::{Config, DurabilityPolicy, ShieldStore, Watermark};
use std::net::SocketAddr;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

const SEED: u64 = 42;
const VAL_LEN: usize = 128;

fn env_parse<T: std::str::FromStr>(name: &str, default: T) -> T {
    std::env::var(name).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

/// Primary and replicas run the same enclave binary: promotion needs the
/// shared MRENCLAVE sealing identity to read the primary's pin.
fn enclave() -> Arc<Enclave> {
    EnclaveBuilder::new("bench-repl").seed(SEED).epc_bytes(64 << 20).build()
}

fn store_config() -> Config {
    Config::shield_opt()
        .buckets(1024)
        .mac_hashes(64)
        .with_shards(2)
        .with_durability(DurabilityPolicy::EveryN(32))
}

fn server_config() -> ServerConfig {
    ServerConfig { event_loops: 1, secure: true, ..Default::default() }
}

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ss-bench-repl-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn key_bytes(id: u64) -> Vec<u8> {
    format!("user{id:08}").into_bytes()
}

fn value_bytes(id: u64) -> Vec<u8> {
    let mut v = format!("repl-val-{id}-").into_bytes();
    while v.len() < VAL_LEN {
        v.push(b'x');
    }
    v.truncate(VAL_LEN);
    v
}

fn wait_caught_up(handle: &shield_net::ReplicaHandle, target: Watermark, who: &str) {
    let deadline = Instant::now() + Duration::from_secs(60);
    while handle.watermark() < target {
        assert!(
            Instant::now() < deadline,
            "{who} stuck at {} chasing {target}",
            handle.watermark()
        );
        std::thread::sleep(Duration::from_millis(2));
    }
}

/// Closed-loop random reads from `readers` threads against one node;
/// returns Kop/s over the slowest thread's wall time.
fn drive_reads(
    addr: SocketAddr,
    verifier: &AttestationVerifier,
    readers: u64,
    ops: u64,
    num_keys: u64,
) -> f64 {
    let handles: Vec<_> = (0..readers)
        .map(|r| {
            let verifier = verifier.clone();
            std::thread::spawn(move || {
                let mut client =
                    KvClient::connect_secure(addr, &verifier, 1000 + r).expect("reader connect");
                let mut rng = SplitMix64::new(SEED ^ (r << 8));
                let started = Instant::now();
                for _ in 0..ops {
                    let id = rng.next_below(num_keys);
                    let got = client.get(&key_bytes(id)).expect("read");
                    assert!(got.is_some(), "preloaded key missing");
                }
                started.elapsed()
            })
        })
        .collect();
    let wall =
        handles.into_iter().map(|h| h.join().expect("reader thread")).max().unwrap_or_default();
    readers as f64 * ops as f64 / wall.as_secs_f64() / 1e3
}

fn main() {
    let num_keys: u64 = env_parse("SS_REPL_KEYS", 4_000);
    let readers: u64 = env_parse("SS_REPL_READERS", 4);
    let ops: u64 = env_parse("SS_REPL_OPS", 3_000);
    let gate: f64 = env_parse("SS_REPL_SCALEOUT_GATE", 1.8);
    let acked_writes: u64 = env_parse("SS_REPL_ACKED_WRITES", 500);

    let primary_wal = scratch("p-wal");
    let primary_enclave = enclave();
    let primary =
        Arc::new(ShieldStore::new(Arc::clone(&primary_enclave), store_config()).expect("primary"));
    primary.attach_wal(&primary_wal).expect("attach wal");
    let primary_server = Server::start(
        Arc::clone(&primary) as Arc<dyn shield_baseline::KvBackend>,
        Some(Arc::clone(&primary_enclave)),
        server_config(),
    )
    .expect("primary server");
    let verifier = AttestationVerifier::for_enclave(&primary_enclave)
        .expect_measurement(*primary_enclave.measurement());

    // Preload, then bring up two streaming replicas and let them drain
    // the whole preload before any measurement.
    {
        let mut loader =
            KvClient::connect_secure(primary_server.addr(), &verifier, 999).expect("loader");
        for id in 0..num_keys {
            loader.set(&key_bytes(id), &value_bytes(id)).expect("preload");
        }
        let (g, s) = loader.flush().expect("flush").expect("primary has a WAL");
        println!("preloaded {num_keys} keys, durable at ({g}, {s})");
    }
    let durable = primary.flush_wal().expect("flush").expect("watermark");

    let mut nodes = Vec::new();
    let wal_dirs: Vec<PathBuf> = (0..2).map(|i| scratch(&format!("r{i}-wal"))).collect();
    for (i, wal_dir) in wal_dirs.iter().enumerate() {
        let replica_enclave = enclave();
        let store = Arc::new(
            ShieldStore::new(Arc::clone(&replica_enclave), store_config()).expect("replica store"),
        );
        let node = ReplicaNode::start(
            primary_server.addr(),
            &verifier,
            store,
            replica_enclave,
            server_config(),
            ReplicaConfig {
                primary_wal_dir: primary_wal.clone(),
                wal_dir: wal_dir.clone(),
                session_seed: 7000 + i as u64 * 100,
                ..Default::default()
            },
        )
        .expect("replica node");
        wait_caught_up(&node.handle(), durable, &format!("replica {i}"));
        nodes.push(node);
    }
    println!("2 replicas caught up to {durable}");

    // Phase 1 + 2: per-node isolated read capacity; the primary's run is
    // the solo baseline.
    let solo_kops = drive_reads(primary_server.addr(), &verifier, readers, ops, num_keys);
    println!("solo primary: {solo_kops:.1} Kop/s ({readers} readers x {ops} ops)");
    let mut replica_kops = Vec::new();
    for (i, node) in nodes.iter().enumerate() {
        let kops = drive_reads(node.addr(), &verifier, readers, ops, num_keys);
        println!("replica {i}: {kops:.1} Kop/s");
        replica_kops.push(kops);
    }
    let replicated_kops = solo_kops + replica_kops.iter().sum::<f64>();
    let scaleout = replicated_kops / solo_kops;
    println!(
        "aggregate read capacity: {replicated_kops:.1} Kop/s, scale-out {scaleout:.2}x \
         (gate {gate:.1}x)"
    );

    // Phase 3: acked writes, then failover. The clock covers the fence,
    // catch-up from the frozen log, WAL adoption, and the first write
    // the new primary acknowledges.
    let acked = {
        let mut client =
            KvClient::connect_secure(primary_server.addr(), &verifier, 2000).expect("writer");
        for i in 0..acked_writes {
            client.set(format!("f{i:05}").as_bytes(), &value_bytes(i)).expect("acked write");
        }
        let (g, s) = client.flush().expect("flush").expect("watermark");
        Watermark::new(g, s)
    };
    wait_caught_up(&nodes[0].handle(), acked, "failover target");

    let mut rc =
        KvClient::connect_secure(nodes[0].addr(), &verifier, 2001).expect("replica client");
    let failover_started = Instant::now();
    primary_server.shutdown();
    let (pg, ps) = rc.promote().expect("promotion");
    rc.set(b"failover-probe", b"new-primary").expect("first write on new primary");
    let failover_ms = failover_started.elapsed().as_secs_f64() * 1e3;
    let promoted = Watermark::new(pg, ps);
    assert!(promoted >= acked, "promotion at {promoted} lost acked writes (acked {acked})");

    // Zero acked-write loss: every write acked at the durable watermark
    // reads back on the new primary.
    let mut lost = 0u64;
    for i in 0..acked_writes {
        match rc.get(format!("f{i:05}").as_bytes()) {
            Ok(Some(v)) if v == value_bytes(i) => {}
            _ => lost += 1,
        }
    }
    println!(
        "failover: {failover_ms:.1} ms to promoted watermark {promoted}, {lost} of \
         {acked_writes} acked writes lost"
    );

    let pass = scaleout >= gate && lost == 0;
    let json = format!(
        "{{\n  \"bench\": \"replication\",\n  \"seed\": {SEED},\n  \"replicas\": 2,\n  \
         \"num_keys\": {num_keys},\n  \"readers\": {readers},\n  \
         \"ops_per_reader\": {ops},\n  \"solo_kops\": {solo_kops:.3},\n  \
         \"replica_kops\": [{:.3}, {:.3}],\n  \"replicated_kops\": {replicated_kops:.3},\n  \
         \"scaleout\": {scaleout:.3},\n  \"scaleout_gate\": {gate:.2},\n  \
         \"failover_ms\": {failover_ms:.2},\n  \"acked_writes\": {acked_writes},\n  \
         \"acked_writes_lost\": {lost},\n  \"promoted_watermark\": {{\"generation\": {}, \
         \"seq\": {}}},\n  \"pass\": {pass}\n}}\n",
        replica_kops[0], replica_kops[1], promoted.generation, promoted.seq,
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_replication.json");
    match std::fs::write(path, &json) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }

    drop(rc);
    for node in nodes {
        node.shutdown();
    }
    let _ = std::fs::remove_dir_all(&primary_wal);
    for dir in wal_dirs {
        let _ = std::fs::remove_dir_all(&dir);
    }
    assert!(lost == 0, "failover lost {lost} acked writes");
    assert!(
        scaleout >= gate,
        "read scale-out {scaleout:.2}x under the {gate:.1}x gate with 2 replicas"
    );
}
