//! Sensitivity analysis: do the paper's conclusions survive changes to
//! the simulator's calibration constants?
//!
//! The reproduction's headline claim — ShieldStore beats the in-enclave
//! Baseline by an order of magnitude once data exceeds the EPC — rests on
//! modeled costs (EPC fault cycles, MEE per-cacheline overhead). This
//! binary sweeps those constants across a 4x range in each direction and
//! reports the ShieldOpt/Baseline throughput ratio for each point. The
//! *conclusion* is robust iff the ratio stays well above 1 everywhere;
//! only its magnitude moves with the calibration.

use sgx_sim::cost::CostModel;
use sgx_sim::enclave::EnclaveBuilder;
use shield_baseline::{KvBackend, NaiveEnclaveStore};
use shield_workload::Spec;
use shieldstore::{Config, ShieldStore};
use shieldstore_bench::{harness, report, Args};
use std::sync::Arc;

fn ratio_with(cost: CostModel, args: &Args) -> (f64, f64, f64) {
    let scale = args.scale;
    const VAL_LEN: usize = 128;
    let spec = Spec::by_name("RD50_Z").expect("workload");
    let ops = (scale.ops / 2).max(5_000);

    // Baseline with the swept cost model.
    let baseline_enclave =
        EnclaveBuilder::new("sens-baseline").epc_bytes(scale.epc_bytes).cost_model(cost).build();
    let baseline: Arc<dyn KvBackend> =
        Arc::new(NaiveEnclaveStore::with_enclave("Baseline", baseline_enclave, scale.num_buckets));
    harness::preload(&*baseline, scale.num_keys, VAL_LEN);
    let base_kops =
        harness::run_backend(&baseline, spec, scale.num_keys, VAL_LEN, 1, ops, args.seed).kops();

    // ShieldOpt with the same model.
    let shield_enclave =
        EnclaveBuilder::new("sens-shield").epc_bytes(scale.epc_bytes).cost_model(cost).build();
    let shield = Arc::new(
        ShieldStore::new(
            shield_enclave,
            Config::shield_opt().buckets(scale.num_buckets).mac_hashes(scale.num_mac_hashes),
        )
        .expect("store"),
    );
    for id in 0..scale.num_keys {
        shield
            .set(&shield_workload::make_key(id, 16), &shield_workload::make_value(id, 0, VAL_LEN))
            .expect("preload");
    }
    let shield_kops = harness::run_shieldstore_partitioned(
        &shield,
        spec,
        scale.num_keys,
        VAL_LEN,
        1,
        ops,
        args.seed,
    )
    .kops();

    (base_kops, shield_kops, shield_kops / base_kops)
}

fn main() {
    let args = Args::parse();
    report::banner("Sensitivity", "ShieldOpt/Baseline ratio vs simulator calibration", &args.scale);

    let mut table =
        report::Table::new(&["parameter", "value", "Baseline(Kop/s)", "ShieldOpt(Kop/s)", "ratio"]);

    // Sweep the EPC fault cost (default 150k cycles) 4x down and up.
    for mult in [4u64, 2, 1] {
        let cost = CostModel { epc_fault_cycles: 150_000 / mult, ..CostModel::I7_7700 };
        let (b, s, r) = ratio_with(cost, &args);
        table.row(&[
            "fault cycles".into(),
            format!("{}k", 150 / mult),
            report::kops(b),
            report::kops(s),
            report::ratio(r),
        ]);
    }
    let cost = CostModel { epc_fault_cycles: 600_000, ..CostModel::I7_7700 };
    let (b, s, r) = ratio_with(cost, &args);
    table.row(&[
        "fault cycles".into(),
        "600k".into(),
        report::kops(b),
        report::kops(s),
        report::ratio(r),
    ]);

    // Sweep the MEE per-cacheline overhead (default 400 ns).
    for mee in [100u64, 400, 1600] {
        let cost = CostModel { mee_cacheline_ns: mee, ..CostModel::I7_7700 };
        let (b, s, r) = ratio_with(cost, &args);
        table.row(&[
            "MEE ns/line".into(),
            mee.to_string(),
            report::kops(b),
            report::kops(s),
            report::ratio(r),
        ]);
    }

    table.print();
    println!();
    println!("expect: the ratio scales with the fault cost (that IS the paper's effect)");
    println!("        but stays >>1 at every calibration — the conclusion is not an");
    println!("        artifact of the chosen constants.");
}
