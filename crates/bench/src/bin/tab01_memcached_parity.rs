//! Table 1: baseline maturity check — memcached vs our baseline, no SGX.
//!
//! The paper validates its hand-written baseline key-value store by
//! showing it matches memcached's throughput in the networked setting
//! with 512-byte values (313.5 vs 311.6 Kop/s at 1 thread; 876.6 vs
//! 845.8 at 4). Here both stores run insecure (no SGX model) over
//! loopback TCP.

use shield_baseline::{KvBackend, MemcachedLike, NaiveEnclaveStore};
use shield_net::client::{run_load, LoadConfig};
use shield_net::server::{CrossingMode, Server, ServerConfig};
use shieldstore_bench::{harness, report, Args};
use std::sync::Arc;
use std::time::Duration;

fn main() {
    let args = Args::parse();
    let scale = args.scale;
    report::banner("Table 1", "memcached vs baseline, no SGX, 512B values", &scale);

    const VAL_LEN: usize = 512;
    let mut table =
        report::Table::new(&["workers", "Insecure Memcached(Kop/s)", "Insecure Baseline(Kop/s)"]);

    for workers in [1usize, 4] {
        let mut row = vec![workers.to_string()];
        for is_memcached in [true, false] {
            let store: Arc<dyn KvBackend> = if is_memcached {
                Arc::new(MemcachedLike::insecure(scale.num_buckets))
            } else {
                Arc::new(NaiveEnclaveStore::insecure(scale.num_buckets))
            };
            harness::preload(&*store, scale.num_keys, VAL_LEN);
            store.set_concurrency(workers);
            let server = Server::start(
                Arc::clone(&store),
                None,
                ServerConfig {
                    event_loops: workers,
                    crossing: CrossingMode::Ecall,
                    secure: false,
                    ..Default::default()
                },
            )
            .expect("server start");
            let report = run_load(
                server.addr(),
                None,
                &LoadConfig {
                    users: scale.users,
                    requests_per_user: scale.requests_per_user,
                    secure: false,
                    workload: "RD50_Z".into(),
                    num_keys: scale.num_keys,
                    val_len: VAL_LEN,
                    seed: args.seed,
                },
            )
            .expect("load");
            server.shutdown();
            row.push(report::kops(report.kops(Duration::ZERO)));
        }
        table.row(&row);
    }
    table.print();
    println!();
    println!("expect: the two stores within a few percent of each other at both worker");
    println!("        counts, as in the paper's Table 1.");
}
