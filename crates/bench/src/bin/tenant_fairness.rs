//! Multi-tenant interference benchmark: victim latency under an
//! aggressor flood, written to `BENCH_tenant.json` at the repo root.
//!
//! The scenario is [`MultiTenantMix::aggressor_victim`]: tenant 1 is a
//! well-behaved read-mostly victim (YCSB-B over two connections),
//! tenant 2 an update-flooding aggressor (YCSB-A over
//! `2 * SS_TENANT_AGGRESSOR_FACTOR` connections) at *equal* admission
//! weight — isolation must come from the weighted fair-admission gate,
//! not from starving the aggressor by configuration.
//!
//! Two measurements over a secure (attested, per-tenant handshake)
//! server with a deliberately small in-flight cap:
//!
//! 1. **Solo baseline** — the victim runs alone; p50/p95/p99 per-op
//!    latency and throughput.
//! 2. **Contended** — the aggressor floods concurrently; the victim's
//!    latency distribution is measured again, plus each side's
//!    client-observed `Busy` sheds.
//!
//! The regression gate (same bound the deterministic
//! `crates/net/tests/fairness.rs` simulation enforces on virtual time):
//! the victim's contended p99 must stay within
//! `SS_TENANT_P99_FACTOR` (default 2.0) of its solo baseline.

use sgx_sim::attest::AttestationVerifier;
use sgx_sim::enclave::EnclaveBuilder;
use shield_net::client::KvClient;
use shield_net::server::{Server, ServerConfig};
use shield_net::{NetError, OpCode, Request, Status};
use shield_workload::ycsb::{MultiTenantMix, TenantLoad, YcsbGenerator, YcsbOp};
use shieldstore::TenantQuota;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

const SEED: u64 = 42;
const VAL_LEN: usize = 128;
/// Per-connection ops excluded from the latency distributions.
const WARMUP_OPS: u64 = 2_000;

fn env_parse<T: std::str::FromStr>(name: &str, default: T) -> T {
    std::env::var(name).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

fn key_bytes(tenant: u32, id: u64) -> Vec<u8> {
    // Identical names across tenants: the namespace, not the key text,
    // must keep them apart.
    let _ = tenant;
    format!("user{id:08}").into_bytes()
}

fn value_bytes(id: u64) -> Vec<u8> {
    let mut v = format!("tenant-val-{id}-").into_bytes();
    while v.len() < VAL_LEN {
        v.push(b'x');
    }
    v.truncate(VAL_LEN);
    v
}

/// One connection's run: plays the generator against the server,
/// retrying `Busy` sheds, recording per-op latency (shed retries
/// included — that is the latency a real client experiences).
///
/// With a nonzero `gap` the connection is paced: one op is scheduled
/// per `gap`, with the spare time spent asleep (think time). Latency is
/// measured from the actual send — on the small hosts this bench must
/// run on, measuring from the *scheduled* time would mostly record the
/// OS sleep-wakeup jitter of the client thread, drowning the server
/// queueing signal the bench exists to compare. Server-side stalls
/// longer than a gap are still visible as back-to-back slow sends.
struct ConnOutcome {
    samples: Vec<u64>,
    ops: u64,
    sheds: u64,
}

/// Exact percentiles over raw samples: the log-bucketed histogram's
/// power-of-two buckets would quantize an interference *ratio* to 2x
/// jumps, which is useless for a 2x gate.
struct Percentiles {
    p50: u64,
    p95: u64,
    p99: u64,
}

fn percentiles(mut samples: Vec<u64>) -> Percentiles {
    if samples.is_empty() {
        // The pipelined flood records throughput only.
        return Percentiles { p50: 0, p95: 0, p99: 0 };
    }
    samples.sort_unstable();
    let at = |q: usize| samples[(samples.len() * q / 100).min(samples.len() - 1)];
    Percentiles { p50: at(50), p95: at(95), p99: at(99) }
}

#[allow(clippy::too_many_arguments)]
fn drive(
    mut client: KvClient,
    load: TenantLoad,
    mut generator: YcsbGenerator,
    ops: u64,
    gap: Duration,
    stop: Arc<AtomicBool>,
) -> ConnOutcome {
    let mut out = ConnOutcome { samples: Vec::new(), ops: 0, sheds: 0 };
    let mut scheduled = Instant::now();
    for i in 0..ops {
        if stop.load(Ordering::Relaxed) {
            break;
        }
        let op = generator.next_op();
        if !gap.is_zero() {
            let now = Instant::now();
            if scheduled > now {
                std::thread::sleep(scheduled - now);
            }
            scheduled += gap;
        }
        let started = Instant::now();
        loop {
            let result = match op {
                YcsbOp::Read(id) | YcsbOp::Scan(id, _) => {
                    client.get(&key_bytes(load.tenant, id)).map(|_| ())
                }
                YcsbOp::Update(id) | YcsbOp::Insert(id) => {
                    client.set(&key_bytes(load.tenant, id), &value_bytes(id))
                }
                YcsbOp::ReadModifyWrite(id) => {
                    let key = key_bytes(load.tenant, id);
                    client.get(&key).and_then(|_| client.set(&key, &value_bytes(id)))
                }
            };
            match result {
                Ok(()) => break,
                Err(NetError::Busy) => {
                    out.sheds += 1;
                    // Back off like a production client would; a tight
                    // shed-retry spin would burn the very CPU the
                    // admitted requests need.
                    std::thread::sleep(Duration::from_micros(200));
                }
                Err(e) => panic!("tenant {} op failed: {e}", load.tenant),
            }
        }
        // Identical warmup trim in both phases: the first ops pay for
        // page faults, allocator growth, and branch warmup, not for the
        // scenario under test.
        if i >= WARMUP_OPS {
            out.samples.push(started.elapsed().as_nanos() as u64);
        }
        out.ops += 1;
    }
    out
}

fn merge(outcomes: Vec<ConnOutcome>, wall: Duration) -> (Percentiles, u64, u64, f64) {
    let mut samples = Vec::new();
    let mut ops = 0u64;
    let mut sheds = 0u64;
    for o in outcomes {
        samples.extend_from_slice(&o.samples);
        ops += o.ops;
        sheds += o.sheds;
    }
    let kops = if wall.is_zero() { 0.0 } else { ops as f64 / wall.as_secs_f64() / 1e3 };
    (percentiles(samples), ops, sheds, kops)
}

/// Drives every flood connection from ONE thread: each round sends one
/// request on every connection, then collects every reply. Server-side
/// the flood keeps `connections` requests in flight, but client-side it
/// costs a single runnable thread — on small hosts, per-connection
/// flood threads would starve the victim's client of CPU and the bench
/// would measure the OS scheduler instead of the server.
fn drive_flood(
    mut conns: Vec<(KvClient, TenantLoad, YcsbGenerator)>,
    stop: Arc<AtomicBool>,
) -> ConnOutcome {
    let mut out = ConnOutcome { samples: Vec::new(), ops: 0, sheds: 0 };
    while !stop.load(Ordering::Relaxed) {
        // Small staggered sub-rounds rather than one big synchronized
        // volley: a real flood's requests arrive spread in time, and a
        // burst of N frames would hand the victim an N-deep queue spike
        // this bench would then misread as unfairness.
        for group in conns.chunks_mut(4) {
            for (client, load, generator) in group.iter_mut() {
                let op = generator.next_op();
                let id = op.key_id();
                let request = if op.is_write() {
                    Request {
                        op: OpCode::Set,
                        key: key_bytes(load.tenant, id),
                        value: value_bytes(id),
                    }
                } else {
                    Request { op: OpCode::Get, key: key_bytes(load.tenant, id), value: Vec::new() }
                };
                client.send(&request).expect("flood send");
            }
            let mut round_sheds = 0u64;
            for (client, _, _) in group.iter_mut() {
                match client.recv().expect("flood recv").status {
                    Status::Busy => round_sheds += 1,
                    _ => out.ops += 1,
                }
            }
            out.sheds += round_sheds;
            if round_sheds * 2 >= group.len() as u64 {
                // Mostly shed: the gate has clamped this tenant. Back
                // off like a production retry policy instead of burning
                // server cycles (and the whole host's CPU) on Busy
                // replies. The stock RetryClient waits 10ms and
                // doubles; a millisecond per four-connection group is
                // already ten times hotter than any real client.
                std::thread::sleep(Duration::from_millis(1));
            }
        }
    }
    out
}

/// Runs the victim's paced connections (one thread each) against the
/// aggressor's single-threaded pipelined flood. `victim_only` skips the
/// flood for the solo baseline.
fn run_phase(
    addr: std::net::SocketAddr,
    verifier: &AttestationVerifier,
    mix: &MultiTenantMix,
    victim_tenant: u32,
    victim_only: bool,
    ops_per_conn: u64,
    gap: Duration,
) -> Vec<(u32, ConnOutcome, Duration)> {
    let stop = Arc::new(AtomicBool::new(false));
    let mut victim_handles = Vec::new();
    let mut flood_conns = Vec::new();
    for (i, (load, generator)) in mix.generators(SEED).into_iter().enumerate() {
        if load.tenant != victim_tenant && victim_only {
            continue;
        }
        let client = KvClient::connect_secure_tenant(addr, verifier, SEED + i as u64, load.tenant)
            .expect("tenant connect");
        if load.tenant == victim_tenant {
            let stop = Arc::clone(&stop);
            victim_handles.push(std::thread::spawn(move || {
                let started = Instant::now();
                let out = drive(client, load, generator, ops_per_conn, gap, stop);
                (out, started.elapsed())
            }));
        } else {
            flood_conns.push((client, load, generator));
        }
    }
    let flood_handle = (!flood_conns.is_empty()).then(|| {
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let started = Instant::now();
            let out = drive_flood(flood_conns, stop);
            (out, started.elapsed())
        })
    });
    let mut results = Vec::new();
    for handle in victim_handles {
        let (out, wall) = handle.join().expect("victim connection");
        results.push((victim_tenant, out, wall));
    }
    stop.store(true, Ordering::Relaxed);
    if let Some(handle) = flood_handle {
        let (out, wall) = handle.join().expect("flood thread");
        // The flood's tenant is every non-victim load (there is one).
        let tenant = mix.loads.iter().map(|l| l.tenant).find(|t| *t != victim_tenant).unwrap();
        results.push((tenant, out, wall));
    }
    results
}

fn main() {
    let ops_per_conn: u64 = env_parse("SS_TENANT_OPS", 8_000);
    // The victim is paced open-loop (one op per gap per connection): a
    // well-behaved tenant at modest offered load, against a saturating
    // closed-loop flood. An unpaced victim would itself saturate the
    // server, and then *any* fair split of capacity doubles its
    // latency — the gate below would measure arithmetic, not isolation.
    let victim_gap = Duration::from_micros(env_parse("SS_TENANT_VICTIM_GAP_US", 500));
    let aggressor_factor: usize = env_parse("SS_TENANT_AGGRESSOR_FACTOR", 4);
    let p99_factor: f64 = env_parse("SS_TENANT_P99_FACTOR", 2.0);
    let num_keys: u64 = env_parse("SS_TENANT_KEYS", 10_000);

    let mix = MultiTenantMix::aggressor_victim(num_keys, aggressor_factor);
    let victim = mix.loads[0];
    let aggressor = mix.loads[1];

    let enclave = EnclaveBuilder::new("tenant-fairness").epc_bytes(64 << 20).build();
    let store = Arc::new(
        shieldstore::ShieldStore::new(
            Arc::clone(&enclave),
            shieldstore::Config::shield_opt().buckets(1024).mac_hashes(64).with_shards(4),
        )
        .expect("store"),
    );
    for load in &mix.loads {
        store.tenants().configure(
            load.tenant,
            TenantQuota { max_bytes: u64::MAX, max_keys: u64::MAX, weight: load.weight },
        );
    }
    let backend: Arc<dyn shield_baseline::KvBackend> = Arc::clone(&store) as _;
    let server = Server::start(
        backend,
        Some(Arc::clone(&enclave)),
        ServerConfig {
            // Two loops over four shards: cross-loop handoffs give the
            // admission gate real in-flight pressure to clamp (a single
            // loop executes inline and the cap never binds).
            event_loops: 2,
            secure: true,
            // Small on purpose: admission pressure is the experiment.
            // With the flood's eight connections against a cap of four,
            // the aggressor lives at its clamped share and most of its
            // demand is shed at the gate.
            max_in_flight: 4,
            ..Default::default()
        },
    )
    .expect("server start");
    let verifier =
        AttestationVerifier::for_enclave(&enclave).expect_measurement(*enclave.measurement());

    // Preload both namespaces so reads hit.
    {
        let mut loader =
            KvClient::connect_secure_tenant(server.addr(), &verifier, 999, victim.tenant)
                .expect("victim loader");
        let mut loader2 =
            KvClient::connect_secure_tenant(server.addr(), &verifier, 998, aggressor.tenant)
                .expect("aggressor loader");
        for id in 0..num_keys {
            loader.set(&key_bytes(victim.tenant, id), &value_bytes(id)).expect("preload victim");
            loader2
                .set(&key_bytes(aggressor.tenant, id), &value_bytes(id))
                .expect("preload aggressor");
        }
    }

    // Phase 1: victim alone.
    let solo_outcomes =
        run_phase(server.addr(), &verifier, &mix, victim.tenant, true, ops_per_conn, victim_gap);
    let solo_wall = solo_outcomes.iter().map(|(_, _, w)| *w).max().unwrap_or_default();
    let (solo_p, solo_ops, solo_sheds, solo_kops) =
        merge(solo_outcomes.into_iter().map(|(_, o, _)| o).collect(), solo_wall);
    println!(
        "solo victim ({} x{} conns): {solo_ops} ops, {solo_sheds} sheds, {:.1} Kop/s, \
         p50={}ns p95={}ns p99={}ns",
        victim.workload.name(),
        victim.connections,
        solo_kops,
        solo_p.p50,
        solo_p.p95,
        solo_p.p99,
    );

    // Phase 2: aggressor floods while the victim repeats the same run.
    let contended =
        run_phase(server.addr(), &verifier, &mix, victim.tenant, false, ops_per_conn, victim_gap);
    let victim_wall = contended
        .iter()
        .filter(|(t, _, _)| *t == victim.tenant)
        .map(|(_, _, w)| *w)
        .max()
        .unwrap_or_default();
    let aggressor_wall = contended
        .iter()
        .filter(|(t, _, _)| *t == aggressor.tenant)
        .map(|(_, _, w)| *w)
        .max()
        .unwrap_or_default();
    let mut victim_outs = Vec::new();
    let mut aggressor_outs = Vec::new();
    for (tenant, out, _) in contended {
        if tenant == victim.tenant {
            victim_outs.push(out);
        } else {
            aggressor_outs.push(out);
        }
    }
    let (v_p, v_ops, v_sheds, v_kops) = merge(victim_outs, victim_wall);
    let (_, a_ops, a_sheds, a_kops) = merge(aggressor_outs, aggressor_wall);
    println!(
        "contended victim: {v_ops} ops, {v_sheds} sheds, {v_kops:.1} Kop/s, \
         p50={}ns p95={}ns p99={}ns",
        v_p.p50, v_p.p95, v_p.p99,
    );
    println!(
        "aggressor ({} x{} conns): {a_ops} ops, {a_sheds} sheds, {a_kops:.1} Kop/s",
        aggressor.workload.name(),
        aggressor.connections,
    );

    let ratio = v_p.p99 as f64 / solo_p.p99.max(1) as f64;
    println!("victim p99 interference ratio: {ratio:.2}x (gate: {p99_factor:.1}x)");

    let json = format!(
        "{{\n  \"bench\": \"tenant_fairness\",\n  \"seed\": {SEED},\n  \
         \"scenario\": {{\n    \"victim\": {{\"tenant\": {}, \"workload\": \"{}\", \
         \"connections\": {}, \"weight\": {}}},\n    \
         \"aggressor\": {{\"tenant\": {}, \"workload\": \"{}\", \"connections\": {}, \
         \"weight\": {}}},\n    \"num_keys\": {num_keys},\n    \"ops_per_connection\": \
         {ops_per_conn},\n    \"max_in_flight\": 8\n  }},\n  \
         \"solo_victim\": {{\n    \"ops\": {solo_ops},\n    \"sheds\": {solo_sheds},\n    \
         \"kops\": {solo_kops:.3},\n    \"p50_ns\": {},\n    \"p95_ns\": {},\n    \
         \"p99_ns\": {}\n  }},\n  \
         \"contended_victim\": {{\n    \"ops\": {v_ops},\n    \"sheds\": {v_sheds},\n    \
         \"kops\": {v_kops:.3},\n    \"p50_ns\": {},\n    \"p95_ns\": {},\n    \
         \"p99_ns\": {}\n  }},\n  \
         \"aggressor\": {{\n    \"ops\": {a_ops},\n    \"sheds\": {a_sheds},\n    \
         \"kops\": {a_kops:.3}\n  }},\n  \
         \"victim_p99_ratio\": {ratio:.3},\n  \"p99_gate\": {p99_factor:.1}\n}}\n",
        victim.tenant,
        victim.workload.name(),
        victim.connections,
        victim.weight,
        aggressor.tenant,
        aggressor.workload.name(),
        aggressor.connections,
        aggressor.weight,
        solo_p.p50,
        solo_p.p95,
        solo_p.p99,
        v_p.p50,
        v_p.p95,
        v_p.p99,
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_tenant.json");
    match std::fs::write(path, &json) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }

    server.shutdown();
    assert!(a_ops > 0, "aggressor must actually run");
    assert!(
        ratio <= p99_factor,
        "victim p99 degraded {ratio:.2}x under the aggressor (gate {p99_factor:.1}x)"
    );
}
