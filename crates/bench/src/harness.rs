//! Workload runners over stores, with modeled parallelism and
//! virtual-time accounting.
//!
//! ## Modeled parallelism
//!
//! The paper measures on a 4-core i7-7700. This reproduction must also
//! run on single-core hosts, where spawning four worker threads measures
//! scheduler interleaving, not scalability. The runners therefore execute
//! each worker's partition *sequentially* and model an N-core machine:
//!
//! * each worker's **busy time** is measured alone (it would own a core);
//! * each worker's **virtual penalty** (EPC faults, crossings, MEE
//!   overhead) accumulates on its own clock, and faults of different
//!   workers still queue through the EPC's serialized fault channel —
//!   which is what denies the Baseline its scaling (paper Fig. 13);
//! * the run's effective duration is `max_i(busy_i + penalty_i)`.
//!
//! This is deterministic, host-independent, and preserves exactly the
//! effects the paper attributes to multi-threading: ShieldStore's
//! partitions share nothing (linear scaling), the Baseline bottlenecks on
//! the paging channel (flat), and memcached's maintainer interference
//! (modeled virtually, see `shield-baseline`) degrades it beyond two
//! workers.

use sgx_sim::vclock;
use shield_baseline::KvBackend;
use shield_workload::{make_key, make_value, Generator, Op, Spec};
use shieldstore::ShieldStore;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// The outcome of one measured run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RunResult {
    /// Operations completed.
    pub ops: u64,
    /// Modeled run duration: `max_i(busy_i + penalty_i)`.
    pub effective: Duration,
    /// Largest per-worker busy (real CPU) time.
    pub max_busy: Duration,
    /// Largest per-worker virtual penalty.
    pub max_penalty_ns: u64,
    /// Operations refused (e.g. Eleos pool exhaustion).
    pub refused: u64,
}

impl RunResult {
    /// Throughput in Kop/s over effective time.
    pub fn kops(&self) -> f64 {
        let secs = self.effective.as_secs_f64();
        if secs == 0.0 {
            0.0
        } else {
            self.ops as f64 / secs / 1e3
        }
    }

    /// Effective average latency per operation in nanoseconds.
    pub fn ns_per_op(&self) -> f64 {
        if self.ops == 0 {
            0.0
        } else {
            self.effective.as_nanos() as f64 / self.ops as f64
        }
    }
}

/// Combines per-worker `(busy, penalty)` samples into a [`RunResult`].
fn combine(ops: u64, refused: u64, workers: &[(Duration, u64)]) -> RunResult {
    let mut effective = Duration::ZERO;
    let mut max_busy = Duration::ZERO;
    let mut max_penalty = 0u64;
    for &(busy, penalty) in workers {
        effective = effective.max(busy + Duration::from_nanos(penalty));
        max_busy = max_busy.max(busy);
        max_penalty = max_penalty.max(penalty);
    }
    RunResult { ops, effective, max_busy, max_penalty_ns: max_penalty, refused }
}

/// Executes one workload op against a [`KvBackend`]. Returns `false` when
/// the store refused it (capacity).
fn apply_op(store: &dyn KvBackend, op: Op, round: u64, val_len: usize) -> bool {
    let id = op.key_id();
    let key = make_key(id, 16);
    match op {
        Op::Get(_) => {
            let _ = store.get(&key);
            true
        }
        Op::Set(_) => store.set(&key, &make_value(id, round, val_len)),
        Op::Append(_) => store.append(&key, b"-app"),
        Op::ReadModifyWrite(_) => {
            let mut v = store.get(&key).unwrap_or_else(|| make_value(id, 0, val_len));
            let n = v.len();
            if n > 0 {
                v[n - 1] = v[n - 1].wrapping_add(1);
            }
            store.set(&key, &v)
        }
    }
}

/// Preloads `num_keys` keys with `val_len`-byte values.
pub fn preload(store: &dyn KvBackend, num_keys: u64, val_len: usize) -> u64 {
    let mut loaded = 0;
    for id in 0..num_keys {
        if store.set(&make_key(id, 16), &make_value(id, 0, val_len)) {
            loaded += 1;
        }
    }
    loaded
}

/// Runs `total_ops` workload operations against a backend, modeling
/// `threads` concurrent workers (see the module docs).
pub fn run_backend(
    store: &Arc<dyn KvBackend>,
    spec: Spec,
    num_keys: u64,
    val_len: usize,
    threads: usize,
    total_ops: u64,
    seed: u64,
) -> RunResult {
    let ops_per_thread = total_ops / threads as u64;
    store.reset_timing();
    store.set_concurrency(threads);

    let mut ops = 0u64;
    let mut refused = 0u64;
    let mut workers = Vec::with_capacity(threads);
    for t in 0..threads {
        let mut generator = Generator::new(spec, num_keys, seed ^ ((t as u64) << 32));
        vclock::reset();
        let start = Instant::now();
        for _ in 0..ops_per_thread {
            if apply_op(&**store, generator.next_op(), generator.round(), val_len) {
                ops += 1;
            } else {
                refused += 1;
            }
        }
        workers.push((start.elapsed(), vclock::take()));
    }
    store.set_concurrency(1);
    combine(ops, refused, &workers)
}

/// Runs a workload against a [`ShieldStore`] in the paper's partitioned
/// mode (§5.3): operations are routed to their serving shard ahead of
/// time and each modeled worker owns exactly one group of shards, so the
/// run involves no cross-worker synchronization at all.
///
/// `threads` must not exceed the store's shard count.
pub fn run_shieldstore_partitioned(
    store: &Arc<ShieldStore>,
    spec: Spec,
    num_keys: u64,
    val_len: usize,
    threads: usize,
    total_ops: u64,
    seed: u64,
) -> RunResult {
    assert!(threads <= store.num_shards(), "more threads than shards");

    // Pre-generate and route operations (generation excluded from timing).
    let mut queues: Vec<Vec<Op>> = vec![Vec::new(); store.num_shards()];
    let mut generator = Generator::new(spec, num_keys, seed);
    for _ in 0..total_ops {
        let op = generator.next_op();
        let shard = store.shard_of(&make_key(op.key_id(), 16));
        queues[shard].push(op);
    }

    // Assign shards round-robin to modeled workers.
    let mut assignments: Vec<Vec<(usize, Vec<Op>)>> = (0..threads).map(|_| Vec::new()).collect();
    for (shard, queue) in queues.into_iter().enumerate() {
        assignments[shard % threads].push((shard, queue));
    }

    store.enclave().reset_timing();
    let mut ops = 0u64;
    let mut workers = Vec::with_capacity(threads);
    for shard_group in assignments {
        vclock::reset();
        let start = Instant::now();
        for (shard_idx, queue) in shard_group {
            store.with_shard(shard_idx, |shard| {
                let mut round = 0u64;
                for op in queue {
                    let id = op.key_id();
                    let key = make_key(id, 16);
                    match op {
                        Op::Get(_) => {
                            let _ = shard.get(&key);
                        }
                        Op::Set(_) => {
                            round += 1;
                            shard.set(&key, &make_value(id, round, val_len)).expect("set");
                        }
                        Op::Append(_) => {
                            shard.append(&key, b"-app").expect("append");
                        }
                        Op::ReadModifyWrite(_) => {
                            let mut v =
                                shard.get(&key).unwrap_or_else(|_| make_value(id, 0, val_len));
                            let n = v.len();
                            v[n - 1] = v[n - 1].wrapping_add(1);
                            shard.set(&key, &v).expect("rmw set");
                        }
                    }
                    ops += 1;
                }
            });
        }
        workers.push((start.elapsed(), vclock::take()));
    }
    combine(ops, 0, &workers)
}

/// Runs `body` against the store and returns its result together with
/// the observability delta the run produced: operation counters, latency
/// histograms, and SGX transition counts as a snapshot diff. Benchmarks
/// use this to report tail latencies next to throughput without
/// resetting any live counters.
pub fn with_snapshot<T>(
    store: &ShieldStore,
    body: impl FnOnce(&ShieldStore) -> T,
) -> (T, shieldstore::StatsSnapshot) {
    let before = store.snapshot();
    let out = body(store);
    let after = store.snapshot();
    (out, after.diff(&before))
}

/// Builds a ShieldStore with the given preset over a fresh enclave.
pub fn build_shieldstore(
    config: shieldstore::Config,
    epc_bytes: usize,
    seed: u64,
) -> Arc<ShieldStore> {
    let enclave = sgx_sim::enclave::EnclaveBuilder::new("bench-shieldstore")
        .epc_bytes(epc_bytes)
        .seed(seed)
        .build();
    Arc::new(ShieldStore::new(enclave, config).expect("store construction"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use shieldstore::Config;

    #[test]
    fn backend_runner_counts_ops() {
        let store: Arc<dyn KvBackend> = Arc::new(shield_baseline::NaiveEnclaveStore::insecure(256));
        preload(&*store, 200, 16);
        let spec = Spec::by_name("RD50_U").unwrap();
        let result = run_backend(&store, spec, 200, 16, 2, 1000, 1);
        assert_eq!(result.ops, 1000);
        assert_eq!(result.refused, 0);
        assert!(result.kops() > 0.0);
    }

    #[test]
    fn partitioned_runner_matches_store_contents() {
        let store = build_shieldstore(
            Config::shield_opt().buckets(512).mac_hashes(128).with_shards(4),
            8 << 20,
            7,
        );
        for id in 0..300u64 {
            store.set(&make_key(id, 16), &make_value(id, 0, 16)).unwrap();
        }
        let spec = Spec::by_name("RD95_Z").unwrap();
        let result = run_shieldstore_partitioned(&store, spec, 300, 16, 4, 2000, 3);
        assert_eq!(result.ops, 2000);
        let stats = store.stats();
        assert!(stats.gets > 0);
    }

    #[test]
    fn modeled_scaling_shrinks_effective_time() {
        // A store with no penalties: N modeled workers each do 1/N of the
        // work, so effective time must drop with N.
        let store = build_shieldstore(
            Config::shield_opt().buckets(4096).mac_hashes(256).with_shards(4),
            64 << 20,
            1,
        );
        for id in 0..2000u64 {
            store.set(&make_key(id, 16), &make_value(id, 0, 16)).unwrap();
        }
        let spec = Spec::by_name("RD100_U").unwrap();
        let r1 = run_shieldstore_partitioned(&store, spec, 2000, 16, 1, 20_000, 3);
        let r4 = run_shieldstore_partitioned(&store, spec, 2000, 16, 4, 20_000, 3);
        assert!(
            r4.effective < r1.effective * 3 / 4,
            "4 modeled workers should beat 1: {:?} vs {:?}",
            r4.effective,
            r1.effective
        );
    }

    #[test]
    fn with_snapshot_isolates_the_run() {
        let store = build_shieldstore(Config::shield_opt().buckets(128).mac_hashes(32), 8 << 20, 5);
        store.set(b"pre", b"x").unwrap();
        let (hit, delta) = with_snapshot(&store, |s| {
            s.set(b"a", b"1").unwrap();
            s.set(b"b", b"2").unwrap();
            s.get(b"a").is_ok()
        });
        assert!(hit);
        // Only the ops inside the closure appear in the delta.
        assert_eq!(delta.ops.sets, 2);
        assert_eq!(delta.ops.gets, 1);
        assert_eq!(delta.hists.set.count(), 2);
        assert_eq!(delta.hists.get.count(), 1);
        assert!(delta.hists.set.p50() > 0);
        delta.check_consistent().expect("delta is self-consistent");
    }

    #[test]
    fn effective_time_includes_penalty() {
        let r = combine(1000, 0, &[(Duration::from_millis(1), 999_000_000)]);
        // 1 ms busy + 999 ms penalty = 1 s effective -> 1 Kop/s.
        assert!((r.kops() - 1.0).abs() < 1e-9);
        assert!((r.ns_per_op() - 1_000_000.0).abs() < 1.0);
    }

    #[test]
    fn combine_takes_worker_maximum() {
        let r = combine(
            100,
            0,
            &[(Duration::from_millis(10), 5_000_000), (Duration::from_millis(2), 20_000_000)],
        );
        // Worker 2: 2 ms + 20 ms = 22 ms > worker 1's 15 ms.
        assert_eq!(r.effective, Duration::from_millis(22));
        assert_eq!(r.max_busy, Duration::from_millis(10));
        assert_eq!(r.max_penalty_ns, 20_000_000);
    }
}
