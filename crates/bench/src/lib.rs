//! Benchmark harness for the ShieldStore reproduction.
//!
//! Every table and figure in the paper's evaluation (§6) has a binary in
//! `src/bin/` that regenerates it: same workloads, same parameter sweeps,
//! same rows/series — at a scaled-down default size so the whole suite
//! runs in minutes (pass `--paper` for paper-scale parameters; see
//! [`scale::Scale`]).
//!
//! Time accounting: real work (crypto, hashing, data movement) is
//! executed and measured in wall time; SGX penalties (EPC faults,
//! boundary crossings) accumulate on per-thread virtual clocks inside
//! `sgx-sim`. Reported throughput is `ops / (wall + max per-thread
//! penalty)` — see DESIGN.md section 2.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod args;
pub mod harness;
pub mod report;
pub mod scale;
pub mod setups;

pub use args::Args;
pub use harness::RunResult;
pub use scale::Scale;
