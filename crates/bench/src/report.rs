//! Plain-text table rendering for the figure binaries.
//!
//! Each binary prints the same rows/series the paper's figure shows, in a
//! fixed-width table that is easy to diff across runs and to paste into
//! EXPERIMENTS.md.

/// A simple fixed-width table builder.
#[derive(Debug, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Starts a table with column headers.
    pub fn new(header: &[&str]) -> Self {
        Self { header: header.iter().map(|s| s.to_string()).collect(), rows: Vec::new() }
    }

    /// Appends one row (must match the header arity).
    pub fn row(&mut self, cells: &[String]) {
        assert_eq!(cells.len(), self.header.len(), "row arity mismatch");
        self.rows.push(cells.to_vec());
    }

    /// Renders the table to a string.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths = vec![0usize; cols];
        for (i, h) in self.header.iter().enumerate() {
            widths[i] = widths[i].max(h.len());
        }
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (i, cell) in cells.iter().enumerate() {
                if i > 0 {
                    line.push_str("  ");
                }
                line.push_str(&format!("{cell:>width$}", width = widths[i]));
            }
            line
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (cols - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Prints the rendered table to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// Prints a figure banner with scale information.
pub fn banner(figure: &str, description: &str, scale: &crate::scale::Scale) {
    println!("=== {figure}: {description} ===");
    println!(
        "scale={} epc={}MB keys={} ops={}",
        scale.name,
        scale.epc_bytes >> 20,
        scale.num_keys,
        scale.ops
    );
    println!();
}

/// Formats a Kop/s value.
pub fn kops(v: f64) -> String {
    format!("{v:.1}")
}

/// Formats a ratio like `12.3x`.
pub fn ratio(v: f64) -> String {
    format!("{v:.2}x")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(&["name", "kops"]);
        t.row(&["a".into(), "1.0".into()]);
        t.row(&["longer-name".into(), "123.4".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("name"));
        assert!(lines[3].contains("longer-name"));
        // All rows the same width.
        assert_eq!(lines[2].len(), lines[3].len());
    }

    #[test]
    #[should_panic(expected = "row arity mismatch")]
    fn arity_enforced() {
        let mut t = Table::new(&["a", "b"]);
        t.row(&["only-one".into()]);
    }

    #[test]
    fn formatters() {
        assert_eq!(kops(12.34), "12.3");
        assert_eq!(ratio(2.0), "2.00x");
    }
}
