//! Experiment scale presets.
//!
//! The paper runs 10 M keys over a 90 MB effective EPC on real hardware.
//! Simulated at full scale the suite would take hours and tens of GB of
//! RAM, so the default [`Scale::quick`] shrinks everything by roughly one
//! order of magnitude *while preserving every ratio that drives the
//! results*: working sets still exceed the EPC budget by the same
//! factors, chain lengths match (keys/buckets is preserved), and the MAC
//! hash array still crosses the EPC boundary at the same sweep point.

/// Scale parameters shared by the figure binaries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Scale {
    /// Human-readable name (`quick` / `paper`).
    pub name: &'static str,
    /// Effective EPC budget in bytes (paper: ~90 MB).
    pub epc_bytes: usize,
    /// Number of preloaded keys (paper: 10 M).
    pub num_keys: u64,
    /// Default bucket count (paper: 8 M).
    pub num_buckets: usize,
    /// Default MAC hash count (paper: 4 M).
    pub num_mac_hashes: usize,
    /// Operations per measured configuration.
    pub ops: u64,
    /// Concurrent users for networked runs (paper: 256).
    pub users: usize,
    /// Requests per user for networked runs.
    pub requests_per_user: usize,
}

impl Scale {
    /// Fast preset: minutes for the full suite.
    pub const fn quick() -> Scale {
        Scale {
            name: "quick",
            // 4 MiB EPC; the small data set (100 K x ~96 B entries ~ 10 MB)
            // exceeds it ~2.5x, the large set (~56 MB) ~14x — the same
            // regime as the paper's 320 MB..5.2 GB over 90 MB.
            epc_bytes: 4 << 20,
            num_keys: 100_000,
            num_buckets: 1 << 17, // 128 Ki ~ paper's 8 M scaled by 64
            num_mac_hashes: 1 << 16,
            ops: 40_000,
            users: 16,
            requests_per_user: 250,
        }
    }

    /// Paper-scale preset (slow; hours, >8 GB RAM).
    pub const fn paper() -> Scale {
        Scale {
            name: "paper",
            epc_bytes: 90 << 20,
            num_keys: 10_000_000,
            num_buckets: 8 << 20,
            num_mac_hashes: 4 << 20,
            ops: 1_000_000,
            users: 256,
            requests_per_user: 4_000,
        }
    }

    /// Selects by flag.
    pub fn from_flag(paper: bool) -> Scale {
        if paper {
            Scale::paper()
        } else {
            Scale::quick()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratios_preserved() {
        let q = Scale::quick();
        let p = Scale::paper();
        // Chain length (keys / buckets) within 2x of the paper's.
        let q_chain = q.num_keys as f64 / q.num_buckets as f64;
        let p_chain = p.num_keys as f64 / p.num_buckets as f64;
        assert!((q_chain / p_chain) < 2.0 && (p_chain / q_chain) < 2.0);
        // Small-set working set exceeds EPC in both presets.
        let q_wss = q.num_keys * 96;
        assert!(q_wss > q.epc_bytes as u64);
    }
}
