//! Store construction shared by the figure binaries.

use crate::harness::{self, RunResult};
use crate::scale::Scale;
use shield_baseline::{KvBackend, MemcachedLike, NaiveEnclaveStore};
use shield_workload::Spec;
use shieldstore::{Config, ShieldStore};
use std::sync::Arc;

/// The four standalone systems of Figs. 10-14.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StoreKind {
    /// memcached under Graphene-SGX.
    MemcachedGraphene,
    /// The paper's naive in-enclave Baseline.
    Baseline,
    /// ShieldStore without §5 optimizations.
    ShieldBase,
    /// ShieldStore with all optimizations.
    ShieldOpt,
}

impl StoreKind {
    /// Display name matching the paper's legends.
    pub fn name(&self) -> &'static str {
        match self {
            StoreKind::MemcachedGraphene => "Memcached+graphene",
            StoreKind::Baseline => "Baseline",
            StoreKind::ShieldBase => "ShieldBase",
            StoreKind::ShieldOpt => "ShieldOpt",
        }
    }

    /// The standard comparison set.
    pub const ALL: [StoreKind; 4] = [
        StoreKind::MemcachedGraphene,
        StoreKind::Baseline,
        StoreKind::ShieldBase,
        StoreKind::ShieldOpt,
    ];
}

/// A store under test: either a trait-object backend (internally
/// synchronized) or a ShieldStore driven in partitioned mode.
pub enum AnyStore {
    /// Baseline-family store.
    Backend(Arc<dyn KvBackend>),
    /// ShieldStore (partitioned runner).
    Shield(Arc<ShieldStore>),
}

impl AnyStore {
    /// Builds the store for `kind` at `scale` with enough shards for
    /// `max_threads` workers.
    pub fn build(kind: StoreKind, scale: &Scale, max_threads: usize, seed: u64) -> AnyStore {
        let buckets = scale.num_buckets;
        match kind {
            StoreKind::MemcachedGraphene => {
                AnyStore::Backend(Arc::new(MemcachedLike::graphene(buckets, scale.epc_bytes)))
            }
            StoreKind::Baseline => {
                AnyStore::Backend(Arc::new(NaiveEnclaveStore::new(buckets, scale.epc_bytes)))
            }
            StoreKind::ShieldBase => AnyStore::Shield(harness::build_shieldstore(
                Config::shield_base()
                    .buckets(buckets)
                    .mac_hashes(scale.num_mac_hashes)
                    .with_shards(max_threads),
                scale.epc_bytes,
                seed,
            )),
            StoreKind::ShieldOpt => AnyStore::Shield(harness::build_shieldstore(
                Config::shield_opt()
                    .buckets(buckets)
                    .mac_hashes(scale.num_mac_hashes)
                    .with_shards(max_threads),
                scale.epc_bytes,
                seed,
            )),
        }
    }

    /// Preloads `num_keys` keys of `val_len` bytes.
    pub fn preload(&self, num_keys: u64, val_len: usize) {
        match self {
            AnyStore::Backend(b) => {
                harness::preload(&**b, num_keys, val_len);
            }
            AnyStore::Shield(s) => {
                for id in 0..num_keys {
                    s.set(
                        &shield_workload::make_key(id, 16),
                        &shield_workload::make_value(id, 0, val_len),
                    )
                    .expect("preload");
                }
            }
        }
    }

    /// Runs a workload with `threads` workers.
    pub fn run(
        &self,
        spec: Spec,
        num_keys: u64,
        val_len: usize,
        threads: usize,
        ops: u64,
        seed: u64,
    ) -> RunResult {
        match self {
            AnyStore::Backend(b) => {
                harness::run_backend(b, spec, num_keys, val_len, threads, ops, seed)
            }
            AnyStore::Shield(s) => {
                harness::run_shieldstore_partitioned(s, spec, num_keys, val_len, threads, ops, seed)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_and_runs_every_kind() {
        let scale = Scale {
            epc_bytes: 1 << 20,
            num_keys: 500,
            num_buckets: 1 << 10,
            num_mac_hashes: 1 << 8,
            ops: 500,
            ..Scale::quick()
        };
        let spec = Spec::by_name("RD50_U").unwrap();
        for kind in StoreKind::ALL {
            let store = AnyStore::build(kind, &scale, 2, 1);
            store.preload(scale.num_keys, 16);
            let r = store.run(spec, scale.num_keys, 16, 2, scale.ops, 1);
            assert_eq!(r.ops, scale.ops, "{}", kind.name());
            assert!(r.kops() > 0.0);
        }
    }
}
