//! The custom untrusted-memory heap allocator (paper §5.1).
//!
//! ShieldStore's data entries live in *untrusted* memory, but the code that
//! allocates them runs *inside* the enclave. The stock SGX SDK offers two
//! heaps: the trusted one (allocates enclave memory — useless here) and the
//! conventional untrusted one (every call OCALLs out of the enclave —
//! ~8,000 cycles each). The paper adds a third: an allocator that runs in
//! the enclave, carves allocations from a pool of untrusted chunks, and
//! OCALLs (`sbrk`/`mmap`) only when the pool runs dry. Fig. 6 sweeps the
//! chunk granularity from 1 to 32 MiB and settles on 16 MiB.
//!
//! [`UntrustedHeap`] implements both modes behind [`AllocMode`]. Handles
//! are opaque non-zero `u64`s packing `(chunk index + 1, byte offset)`, so
//! `0` serves as the null chain terminator. Each shard owns its heap
//! exclusively (`&mut self` for writes), matching the paper's
//! synchronization-free partitioning.

use crate::config::AllocMode;
use sgx_sim::enclave::Enclave;
use std::sync::Arc;

/// An opaque handle to an untrusted-memory allocation. `NULL_HANDLE` (0)
/// never denotes a live allocation.
pub type Handle = u64;

/// The null handle: terminates entry chains.
pub const NULL_HANDLE: Handle = 0;

/// Minimum allocation granule (one size class below this is pointless).
const MIN_CLASS: usize = 16;

#[inline]
fn pack(chunk: usize, offset: usize) -> Handle {
    (((chunk + 1) as u64) << 32) | offset as u64
}

#[inline]
fn unpack(h: Handle) -> (usize, usize) {
    debug_assert_ne!(h, NULL_HANDLE, "dereferencing the null handle");
    (((h >> 32) as usize) - 1, (h & 0xffff_ffff) as usize)
}

#[inline]
fn size_class(len: usize) -> usize {
    len.max(MIN_CLASS).next_power_of_two()
}

/// An in-enclave allocator for untrusted memory.
pub struct UntrustedHeap {
    enclave: Arc<Enclave>,
    mode: AllocMode,
    chunks: Vec<Box<[u8]>>,
    /// Free lists indexed by size-class log2.
    free_lists: Vec<Vec<Handle>>,
    bump_chunk: Option<usize>,
    bump_offset: usize,
    live_bytes: usize,
}

impl std::fmt::Debug for UntrustedHeap {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("UntrustedHeap")
            .field("mode", &self.mode)
            .field("chunks", &self.chunks.len())
            .field("live_bytes", &self.live_bytes)
            .finish()
    }
}

impl UntrustedHeap {
    /// Creates a heap that obtains untrusted chunks from `enclave`.
    pub fn new(enclave: Arc<Enclave>, mode: AllocMode) -> Self {
        Self {
            enclave,
            mode,
            chunks: Vec::new(),
            free_lists: Vec::new(),
            bump_chunk: None,
            bump_offset: 0,
            live_bytes: 0,
        }
    }

    /// Allocates `len` bytes of untrusted memory, zero-initialized.
    pub fn alloc(&mut self, len: usize) -> Handle {
        let class = size_class(len);
        self.live_bytes += class;

        if matches!(self.mode, AllocMode::OcallPerAlloc) {
            // The conventional untrusted allocator: one OCALL per call.
            // Memory is still pooled internally (the host heap), but the
            // crossing cost and count are charged faithfully.
            self.enclave.ocall();
        }

        let granularity = match self.mode {
            AllocMode::Pooled { granularity } => granularity,
            AllocMode::OcallPerAlloc => 16 << 20,
        };

        if class >= granularity {
            // Jumbo allocation: a dedicated chunk straight from an OCALL.
            if matches!(self.mode, AllocMode::Pooled { .. }) {
                let chunk = self.enclave.ocall_alloc_untrusted_chunk(class);
                self.chunks.push(chunk.into_boxed_slice());
            } else {
                self.chunks.push(vec![0u8; class].into_boxed_slice());
            }
            return pack(self.chunks.len() - 1, 0);
        }

        let class_log = class.trailing_zeros() as usize;
        if self.free_lists.len() <= class_log {
            self.free_lists.resize_with(class_log + 1, Vec::new);
        }
        if let Some(h) = self.free_lists[class_log].pop() {
            // Zero recycled memory: entries assume fresh buffers.
            let (chunk, offset) = unpack(h);
            self.chunks[chunk][offset..offset + class].fill(0);
            return h;
        }

        let need_new = match self.bump_chunk {
            None => true,
            Some(c) => self.bump_offset + class > self.chunks[c].len(),
        };
        if need_new {
            let chunk = if matches!(self.mode, AllocMode::Pooled { .. }) {
                self.enclave.ocall_alloc_untrusted_chunk(granularity)
            } else {
                vec![0u8; granularity]
            };
            self.chunks.push(chunk.into_boxed_slice());
            self.bump_chunk = Some(self.chunks.len() - 1);
            self.bump_offset = 0;
        }
        let chunk = self.bump_chunk.expect("bump chunk exists");
        let offset = self.bump_offset;
        self.bump_offset += class;
        pack(chunk, offset)
    }

    /// Frees an allocation of `len` bytes (the length passed to `alloc`).
    pub fn free(&mut self, handle: Handle, len: usize) {
        debug_assert_ne!(handle, NULL_HANDLE);
        let class = size_class(len);
        self.live_bytes = self.live_bytes.saturating_sub(class);
        if matches!(self.mode, AllocMode::OcallPerAlloc) {
            self.enclave.ocall();
        }
        let class_log = class.trailing_zeros() as usize;
        if self.free_lists.len() <= class_log {
            self.free_lists.resize_with(class_log + 1, Vec::new);
        }
        self.free_lists[class_log].push(handle);
    }

    /// Returns the bytes of an allocation.
    ///
    /// # Panics
    ///
    /// Panics if `handle` is null or the range exceeds its chunk — which
    /// would be a store bug, not an input error.
    #[inline]
    pub fn bytes(&self, handle: Handle, len: usize) -> &[u8] {
        let (chunk, offset) = unpack(handle);
        &self.chunks[chunk][offset..offset + len]
    }

    /// Returns the bytes of an allocation at `offset_in_alloc`.
    #[inline]
    pub fn bytes_at(&self, handle: Handle, offset_in_alloc: usize, len: usize) -> &[u8] {
        let (chunk, offset) = unpack(handle);
        &self.chunks[chunk][offset + offset_in_alloc..offset + offset_in_alloc + len]
    }

    /// Checked variant of [`UntrustedHeap::bytes_at`]: `None` when the
    /// range leaves the backing chunk. Untrusted memory holds
    /// attacker-controlled length fields; store code validating a parsed
    /// length against memory must use this rather than panicking.
    #[inline]
    pub fn try_bytes_at(
        &self,
        handle: Handle,
        offset_in_alloc: usize,
        len: usize,
    ) -> Option<&[u8]> {
        // A corrupted chain pointer can be any u64; a zero chunk field
        // would underflow `unpack`. Reject before unpacking.
        if handle >> 32 == 0 {
            return None;
        }
        let (chunk, offset) = unpack(handle);
        let data = self.chunks.get(chunk)?;
        let start = offset.checked_add(offset_in_alloc)?;
        let end = start.checked_add(len)?;
        data.get(start..end)
    }

    /// Mutable access to an allocation's bytes.
    #[inline]
    pub fn bytes_mut(&mut self, handle: Handle, len: usize) -> &mut [u8] {
        let (chunk, offset) = unpack(handle);
        &mut self.chunks[chunk][offset..offset + len]
    }

    /// Mutable access at an offset within an allocation.
    #[inline]
    pub fn bytes_at_mut(
        &mut self,
        handle: Handle,
        offset_in_alloc: usize,
        len: usize,
    ) -> &mut [u8] {
        let (chunk, offset) = unpack(handle);
        &mut self.chunks[chunk][offset + offset_in_alloc..offset + offset_in_alloc + len]
    }

    /// Reads a little-endian u64 at an offset within an allocation.
    #[inline]
    pub fn read_u64_at(&self, handle: Handle, offset: usize) -> u64 {
        u64::from_le_bytes(self.bytes_at(handle, offset, 8).try_into().expect("8 bytes"))
    }

    /// Writes a little-endian u64 at an offset within an allocation.
    #[inline]
    pub fn write_u64_at(&mut self, handle: Handle, offset: usize, value: u64) {
        self.bytes_at_mut(handle, offset, 8).copy_from_slice(&value.to_le_bytes());
    }

    /// Bytes handed out and not yet freed (rounded to size classes).
    pub fn live_bytes(&self) -> usize {
        self.live_bytes
    }

    /// Whether the new-data capacity `len` fits in the size class of an
    /// existing allocation of `old_len` (in-place update check).
    pub fn fits_in_class(old_len: usize, len: usize) -> bool {
        size_class(len) <= size_class(old_len)
    }

    /// Checked variant of [`UntrustedHeap::read_u64_at`]: `None` when the
    /// handle is corrupt or the read leaves the backing chunk.
    #[inline]
    pub fn try_read_u64_at(&self, handle: Handle, offset: usize) -> Option<u64> {
        let bytes = self.try_bytes_at(handle, offset, 8)?;
        Some(u64::from_le_bytes(bytes.try_into().expect("8 bytes")))
    }

    /// The enclave this heap OCALLs through.
    pub fn enclave(&self) -> &Arc<Enclave> {
        &self.enclave
    }

    /// Number of backing chunks currently held.
    pub fn chunk_count(&self) -> usize {
        self.chunks.len()
    }

    /// Length in bytes of chunk `index` (testing only).
    #[cfg(any(test, feature = "testing"))]
    pub fn chunk_len(&self, index: usize) -> usize {
        self.chunks[index].len()
    }

    /// XORs `mask` into one byte of raw chunk memory, simulating an
    /// attacker with write access to the untrusted address space
    /// (testing only). Returns `false` when the location is out of range.
    #[cfg(any(test, feature = "testing"))]
    pub fn corrupt_raw(&mut self, chunk: usize, offset: usize, mask: u8) -> bool {
        match self.chunks.get_mut(chunk).and_then(|c| c.get_mut(offset)) {
            Some(byte) => {
                *byte ^= mask;
                true
            }
            None => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sgx_sim::enclave::EnclaveBuilder;
    use sgx_sim::vclock;

    fn heap(mode: AllocMode) -> UntrustedHeap {
        UntrustedHeap::new(EnclaveBuilder::new("alloc-test").build(), mode)
    }

    #[test]
    fn alloc_write_read_roundtrip() {
        let mut h = heap(AllocMode::Pooled { granularity: 1 << 20 });
        vclock::reset();
        let a = h.alloc(100);
        h.bytes_mut(a, 100).copy_from_slice(&[7u8; 100]);
        assert_eq!(h.bytes(a, 100), &[7u8; 100]);
        vclock::reset();
    }

    #[test]
    fn handles_are_nonzero_and_distinct() {
        let mut h = heap(AllocMode::pooled_default());
        vclock::reset();
        let mut seen = std::collections::HashSet::new();
        for _ in 0..100 {
            let a = h.alloc(64);
            assert_ne!(a, NULL_HANDLE);
            assert!(seen.insert(a), "handle reused while live");
        }
        vclock::reset();
    }

    #[test]
    fn free_recycles_and_zeroes() {
        let mut h = heap(AllocMode::Pooled { granularity: 1 << 20 });
        vclock::reset();
        let a = h.alloc(64);
        h.bytes_mut(a, 64).fill(0xff);
        h.free(a, 64);
        let b = h.alloc(64);
        assert_eq!(a, b);
        assert_eq!(h.bytes(b, 64), &[0u8; 64], "recycled memory must be zeroed");
        vclock::reset();
    }

    #[test]
    fn pooled_mode_ocalls_once_per_chunk() {
        let enclave = EnclaveBuilder::new("pool").build();
        let mut h =
            UntrustedHeap::new(Arc::clone(&enclave), AllocMode::Pooled { granularity: 4096 });
        vclock::reset();
        // 8 allocations of 1 KiB: 2 KiB used per... 1024-byte class, 4 per
        // 4 KiB chunk -> 2 chunk OCALLs.
        for _ in 0..8 {
            h.alloc(1000);
        }
        assert_eq!(enclave.stats().snapshot().ocalls, 2);
        vclock::reset();
    }

    #[test]
    fn ocall_per_alloc_mode_charges_every_call() {
        let enclave = EnclaveBuilder::new("naive").build();
        let mut h = UntrustedHeap::new(Arc::clone(&enclave), AllocMode::OcallPerAlloc);
        vclock::reset();
        let a = h.alloc(64);
        let b = h.alloc(64);
        h.free(a, 64);
        h.free(b, 64);
        assert_eq!(enclave.stats().snapshot().ocalls, 4);
        vclock::reset();
    }

    #[test]
    fn jumbo_allocation() {
        let mut h = heap(AllocMode::Pooled { granularity: 1 << 16 });
        vclock::reset();
        let a = h.alloc(1 << 20);
        h.bytes_mut(a, 1 << 20)[1 << 19] = 42;
        assert_eq!(h.bytes(a, 1 << 20)[1 << 19], 42);
        vclock::reset();
    }

    #[test]
    fn live_bytes_accounting() {
        let mut h = heap(AllocMode::pooled_default());
        vclock::reset();
        assert_eq!(h.live_bytes(), 0);
        let a = h.alloc(100); // class 128
        assert_eq!(h.live_bytes(), 128);
        h.free(a, 100);
        assert_eq!(h.live_bytes(), 0);
        vclock::reset();
    }

    #[test]
    fn fits_in_class_logic() {
        assert!(UntrustedHeap::fits_in_class(100, 128)); // both class 128
        assert!(UntrustedHeap::fits_in_class(100, 20));
        assert!(!UntrustedHeap::fits_in_class(100, 129)); // 128 -> 256
    }

    #[test]
    fn u64_helpers() {
        let mut h = heap(AllocMode::pooled_default());
        vclock::reset();
        let a = h.alloc(32);
        h.write_u64_at(a, 8, 0xfeed_f00d);
        assert_eq!(h.read_u64_at(a, 8), 0xfeed_f00d);
        assert_eq!(h.read_u64_at(a, 0), 0);
        vclock::reset();
    }
}
