//! In-enclave entry cache (`ShieldOpt+cache`, paper Fig. 17).
//!
//! When the working set is small, the EPC has headroom beyond the MAC hash
//! array; ShieldStore can use it as a plaintext cache of hot entries so
//! that repeated `get`s skip untrusted-memory decryption and integrity
//! verification entirely. Cached values are stored in metered enclave
//! memory — size the cache beyond the spare EPC and it starts faulting,
//! which is exactly the paper's trade-off.
//!
//! Eviction is exact LRU via an intrusive doubly-linked list over a slab.

use sgx_sim::enclave::Enclave;
use std::collections::HashMap;
use std::sync::Arc;

const NIL: usize = usize::MAX;

#[derive(Debug)]
struct Node {
    key: Vec<u8>,
    addr: u64,
    len: usize,
    prev: usize,
    next: usize,
}

/// A byte-budgeted LRU cache of plaintext values in enclave memory.
pub struct EnclaveCache {
    enclave: Arc<Enclave>,
    capacity_bytes: usize,
    used_bytes: usize,
    map: HashMap<Vec<u8>, usize>,
    slab: Vec<Node>,
    free_slots: Vec<usize>,
    head: usize, // most recently used
    tail: usize, // least recently used
    hits: u64,
    misses: u64,
}

impl std::fmt::Debug for EnclaveCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EnclaveCache")
            .field("capacity_bytes", &self.capacity_bytes)
            .field("used_bytes", &self.used_bytes)
            .field("entries", &self.map.len())
            .finish()
    }
}

impl EnclaveCache {
    /// Creates a cache with a `capacity_bytes` value-byte budget.
    pub fn new(enclave: Arc<Enclave>, capacity_bytes: usize) -> Self {
        Self {
            enclave,
            capacity_bytes,
            used_bytes: 0,
            map: HashMap::new(),
            slab: Vec::new(),
            free_slots: Vec::new(),
            head: NIL,
            tail: NIL,
            hits: 0,
            misses: 0,
        }
    }

    fn detach(&mut self, idx: usize) {
        let (prev, next) = (self.slab[idx].prev, self.slab[idx].next);
        if prev != NIL {
            self.slab[prev].next = next;
        } else {
            self.head = next;
        }
        if next != NIL {
            self.slab[next].prev = prev;
        } else {
            self.tail = prev;
        }
    }

    fn attach_front(&mut self, idx: usize) {
        self.slab[idx].prev = NIL;
        self.slab[idx].next = self.head;
        if self.head != NIL {
            self.slab[self.head].prev = idx;
        }
        self.head = idx;
        if self.tail == NIL {
            self.tail = idx;
        }
    }

    /// Looks up `key`, returning the cached plaintext value and bumping
    /// its recency. Reading the value is metered enclave-memory access.
    pub fn get(&mut self, key: &[u8]) -> Option<Vec<u8>> {
        let Some(&idx) = self.map.get(key) else {
            self.misses += 1;
            return None;
        };
        self.hits += 1;
        self.detach(idx);
        self.attach_front(idx);
        let node = &self.slab[idx];
        Some(self.enclave.memory().read_vec(node.addr, node.len))
    }

    /// Inserts or updates `key` with `value`, evicting LRU entries to stay
    /// within budget. Values larger than the whole budget are not cached.
    pub fn put(&mut self, key: &[u8], value: &[u8]) {
        if value.len() > self.capacity_bytes {
            self.remove(key);
            return;
        }
        if let Some(&idx) = self.map.get(key) {
            // Update in place when the new value fits the old allocation
            // class; otherwise reallocate.
            let old_len = self.slab[idx].len;
            if crate::alloc::UntrustedHeap::fits_in_class(old_len, value.len()) {
                let addr = self.slab[idx].addr;
                self.enclave.memory().write(addr, value);
                self.used_bytes = self.used_bytes - old_len + value.len();
                self.slab[idx].len = value.len();
            } else {
                let addr = self.slab[idx].addr;
                self.enclave.memory().free(addr, old_len);
                let new_addr = match self.enclave.memory().alloc(value.len().max(1)) {
                    Ok(a) => a,
                    Err(_) => {
                        self.remove(key);
                        return;
                    }
                };
                self.enclave.memory().write(new_addr, value);
                self.used_bytes = self.used_bytes - old_len + value.len();
                self.slab[idx].addr = new_addr;
                self.slab[idx].len = value.len();
            }
            self.detach(idx);
            self.attach_front(idx);
            self.evict_to_budget();
            return;
        }

        let Ok(addr) = self.enclave.memory().alloc(value.len().max(1)) else {
            return;
        };
        self.enclave.memory().write(addr, value);
        let node = Node { key: key.to_vec(), addr, len: value.len(), prev: NIL, next: NIL };
        let idx = if let Some(slot) = self.free_slots.pop() {
            self.slab[slot] = node;
            slot
        } else {
            self.slab.push(node);
            self.slab.len() - 1
        };
        self.map.insert(key.to_vec(), idx);
        self.attach_front(idx);
        self.used_bytes += value.len();
        self.evict_to_budget();
    }

    /// Removes `key` from the cache (e.g. on delete).
    pub fn remove(&mut self, key: &[u8]) {
        if let Some(idx) = self.map.remove(key) {
            self.detach(idx);
            let node = &self.slab[idx];
            self.enclave.memory().free(node.addr, node.len);
            self.used_bytes -= node.len;
            self.free_slots.push(idx);
        }
    }

    fn evict_to_budget(&mut self) {
        while self.used_bytes > self.capacity_bytes && self.tail != NIL {
            let victim = self.tail;
            let key = std::mem::take(&mut self.slab[victim].key);
            self.detach(victim);
            self.map.remove(&key);
            let node = &self.slab[victim];
            self.enclave.memory().free(node.addr, node.len);
            self.used_bytes -= node.len;
            self.free_slots.push(victim);
        }
    }

    /// Number of cached entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when the cache holds nothing.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Value bytes currently cached.
    pub fn used_bytes(&self) -> usize {
        self.used_bytes
    }

    /// `(hits, misses)` so far.
    pub fn hit_stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sgx_sim::enclave::EnclaveBuilder;
    use sgx_sim::vclock;

    fn cache(capacity: usize) -> EnclaveCache {
        EnclaveCache::new(EnclaveBuilder::new("cache-test").build(), capacity)
    }

    #[test]
    fn put_get_roundtrip() {
        let mut c = cache(1024);
        vclock::reset();
        assert!(c.get(b"k").is_none());
        c.put(b"k", b"value");
        assert_eq!(c.get(b"k").unwrap(), b"value");
        assert_eq!(c.hit_stats(), (1, 1));
        vclock::reset();
    }

    #[test]
    fn lru_eviction_order() {
        let mut c = cache(30);
        vclock::reset();
        c.put(b"a", &[0u8; 10]);
        c.put(b"b", &[1u8; 10]);
        c.put(b"c", &[2u8; 10]);
        // Touch `a` so `b` is the LRU victim.
        assert!(c.get(b"a").is_some());
        c.put(b"d", &[3u8; 10]);
        assert!(c.get(b"b").is_none(), "b should have been evicted");
        assert!(c.get(b"a").is_some());
        assert!(c.get(b"c").is_some());
        assert!(c.get(b"d").is_some());
        vclock::reset();
    }

    #[test]
    fn update_changes_value_and_budget() {
        let mut c = cache(100);
        vclock::reset();
        c.put(b"k", &[1u8; 40]);
        assert_eq!(c.used_bytes(), 40);
        c.put(b"k", &[2u8; 10]);
        assert_eq!(c.used_bytes(), 10);
        assert_eq!(c.get(b"k").unwrap(), vec![2u8; 10]);
        // Growing beyond the allocation class reallocates.
        c.put(b"k", &[3u8; 90]);
        assert_eq!(c.get(b"k").unwrap(), vec![3u8; 90]);
        vclock::reset();
    }

    #[test]
    fn oversize_value_not_cached() {
        let mut c = cache(10);
        vclock::reset();
        c.put(b"k", &[0u8; 11]);
        assert!(c.get(b"k").is_none());
        assert_eq!(c.used_bytes(), 0);
        // An oversize update of an existing key removes the stale copy.
        c.put(b"j", &[1u8; 5]);
        c.put(b"j", &[2u8; 11]);
        assert!(c.get(b"j").is_none());
        vclock::reset();
    }

    #[test]
    fn remove_frees_budget() {
        let mut c = cache(100);
        vclock::reset();
        c.put(b"k", &[0u8; 60]);
        c.remove(b"k");
        assert_eq!(c.used_bytes(), 0);
        assert!(c.is_empty());
        c.put(b"l", &[0u8; 100]);
        assert_eq!(c.len(), 1);
        vclock::reset();
    }

    #[test]
    fn many_entries_survive_slab_recycling() {
        let mut c = cache(64);
        vclock::reset();
        for round in 0..10u8 {
            for i in 0..16u8 {
                c.put(&[round, i], &[i; 4]);
            }
        }
        assert!(c.used_bytes() <= 64);
        assert_eq!(c.len(), 16);
        for i in 0..16u8 {
            assert_eq!(c.get(&[9, i]).unwrap(), vec![i; 4]);
        }
        vclock::reset();
    }
}
