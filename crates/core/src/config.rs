//! ShieldStore configuration.
//!
//! Every optimization in the paper's §5 has a toggle here so that the
//! ablation of Fig. 14 (`ShieldBase`, `+KeyOPT`, `+HeapAlloc`,
//! `+MACBucket`) can be reproduced by flipping switches on one code base.

/// How data entries are allocated in untrusted memory (paper §5.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AllocMode {
    /// Every allocation and free calls out of the enclave, as with the
    /// stock SGX SDK's untrusted heap allocator. This is the unoptimized
    /// configuration of Fig. 6.
    OcallPerAlloc,
    /// ShieldStore's custom in-enclave allocator for untrusted memory: a
    /// pooled allocator that OCALLs only to obtain `granularity`-sized
    /// chunks (`sbrk`/`mmap`) when the free pool runs dry.
    Pooled {
        /// Chunk size requested per OCALL. The paper sweeps 1–32 MiB and
        /// settles on 16 MiB.
        granularity: usize,
    },
}

impl AllocMode {
    /// The paper's default: pooled with 16 MiB chunks.
    pub const fn pooled_default() -> Self {
        AllocMode::Pooled { granularity: 16 << 20 }
    }
}

/// When the write-ahead log commits (seals, writes, and fsyncs) its
/// buffered operations — the knob trading durability for write latency.
///
/// A *commit* turns every buffered operation into one sealed, MAC-chained
/// log record, fsyncs it, and advances the freshness pin, so the whole
/// group costs one seal + one fsync however many operations ride in it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DurabilityPolicy {
    /// Never commit implicitly: operations buffer in enclave memory until
    /// an explicit [`crate::ShieldStore::flush_wal`] (or the buffer cap).
    /// A crash loses everything since the last flush or snapshot.
    None,
    /// Commit once `n` operations have buffered. A crash loses at most
    /// `n - 1` acknowledged operations.
    EveryN(
        /// Operations per group commit (must be positive).
        usize,
    ),
    /// Commit when a write arrives and the oldest buffered operation has
    /// waited at least this long — a time bound on the durability window
    /// instead of an operation count. The bound is enforced by the *next*
    /// write (there is no background timer), so it only holds under
    /// continuous write traffic: trailing operations buffered before an
    /// idle period stay unflushed until another write arrives or
    /// [`crate::ShieldStore::flush_wal`] is called. Flush explicitly
    /// before going idle.
    Interval(std::time::Duration),
    /// Commit every operation before acknowledging it. Recovery is exact:
    /// no acknowledged write is ever lost.
    Strict,
}

/// ShieldStore configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Config {
    /// Total number of hash buckets across all shards.
    pub num_buckets: usize,
    /// Total number of in-enclave MAC hashes (flattened Merkle nodes)
    /// across all shards. Each MAC hash covers
    /// `ceil(num_buckets / num_mac_hashes)` buckets (paper §4.3).
    pub num_mac_hashes: usize,
    /// Number of hash-partitioned shards (worker threads, paper §5.3).
    pub shards: usize,
    /// Store a 1-byte keyed hash of the plaintext key in each entry to
    /// prune decryptions during search (paper §5.4, `+KeyOPT`).
    pub key_hint: bool,
    /// On a hint-guided miss, fall back to a full decrypting scan so a
    /// hint-corruption attack cannot hide existing entries (paper §5.4).
    pub two_step_search: bool,
    /// Keep a per-bucket side array of entry MACs so integrity
    /// verification does not pointer-chase the chain (paper §5.2,
    /// `+MACBucket`).
    pub mac_bucket: bool,
    /// MACs per MAC-bucket node before chaining (paper: 30).
    pub mac_bucket_capacity: usize,
    /// Untrusted-memory allocation strategy (paper §5.1, `+HeapAlloc`).
    pub alloc: AllocMode,
    /// Bytes of spare EPC used as a plaintext entry cache
    /// (`ShieldOpt+cache` in Fig. 17); 0 disables the cache.
    pub cache_bytes: usize,
    /// Maintain an enclave-resident ordered key index enabling range and
    /// prefix scans — the paper's stated future work, at the cost of EPC
    /// proportional to the key count (see [`crate::ordered`]).
    pub ordered_index: bool,
    /// On an [`crate::Error::IntegrityViolation`], quarantine the
    /// affected bucket set (and, on a repeat violation, the whole
    /// shard): subsequent operations touching the quarantined partition
    /// fail closed with [`crate::Error::Quarantined`] instead of
    /// re-probing tampered memory, while every other hash partition
    /// keeps serving. Off by default so differential harnesses observe
    /// raw per-operation verification outcomes.
    pub quarantine: bool,
    /// Maximum key or value size accepted.
    pub max_item_len: usize,
    /// Seed for the store's key generation (via the enclave DRBG stream).
    pub seed: u64,
    /// Group-commit policy for the write-ahead log, once one is attached
    /// with [`crate::ShieldStore::attach_wal`]. Stores without a WAL
    /// ignore this.
    pub durability: DurabilityPolicy,
}

impl Config {
    /// `ShieldBase`: the paper's unoptimized design — fine-grained
    /// encryption and integrity only, with multi-threading but without
    /// the §5 optimizations.
    pub fn shield_base() -> Self {
        Self {
            num_buckets: 1 << 16,
            num_mac_hashes: 1 << 16,
            shards: 1,
            key_hint: false,
            two_step_search: false,
            mac_bucket: false,
            mac_bucket_capacity: 30,
            alloc: AllocMode::OcallPerAlloc,
            cache_bytes: 0,
            ordered_index: false,
            quarantine: false,
            max_item_len: 64 << 20,
            seed: 0,
            durability: DurabilityPolicy::None,
        }
    }

    /// `ShieldOpt`: all optimizations enabled (the paper's final design).
    pub fn shield_opt() -> Self {
        Self {
            key_hint: true,
            two_step_search: true,
            mac_bucket: true,
            alloc: AllocMode::pooled_default(),
            ..Self::shield_base()
        }
    }

    /// Sets the bucket count.
    pub fn buckets(mut self, n: usize) -> Self {
        self.num_buckets = n;
        self
    }

    /// Sets the MAC hash count.
    pub fn mac_hashes(mut self, n: usize) -> Self {
        self.num_mac_hashes = n;
        self
    }

    /// Sets the shard count.
    pub fn with_shards(mut self, n: usize) -> Self {
        self.shards = n;
        self
    }

    /// Enables the in-enclave cache with a byte budget.
    pub fn with_cache(mut self, bytes: usize) -> Self {
        self.cache_bytes = bytes;
        self
    }

    /// Enables the ordered key index for range/prefix scans.
    pub fn with_ordered_index(mut self) -> Self {
        self.ordered_index = true;
        self
    }

    /// Sets the write-ahead-log group-commit policy.
    pub fn with_durability(mut self, policy: DurabilityPolicy) -> Self {
        self.durability = policy;
        self
    }

    /// Enables partition quarantine on integrity violations.
    pub fn with_quarantine(mut self) -> Self {
        self.quarantine = true;
        self
    }

    /// Per-shard bucket count (at least 1).
    pub fn buckets_per_shard(&self) -> usize {
        (self.num_buckets / self.shards.max(1)).max(1)
    }

    /// Per-shard MAC hash count, capped at the per-shard bucket count
    /// (more hashes than buckets buys nothing).
    pub fn mac_hashes_per_shard(&self) -> usize {
        (self.num_mac_hashes / self.shards.max(1)).max(1).min(self.buckets_per_shard())
    }

    /// Validates invariants, panicking with a clear message on misuse.
    pub(crate) fn validate(&self) {
        assert!(self.num_buckets > 0, "num_buckets must be positive");
        assert!(self.num_mac_hashes > 0, "num_mac_hashes must be positive");
        assert!(self.shards > 0, "shards must be positive");
        assert!(self.mac_bucket_capacity > 0, "mac_bucket_capacity must be positive");
        if let DurabilityPolicy::EveryN(n) = self.durability {
            assert!(n > 0, "DurabilityPolicy::EveryN needs a positive group size");
        }
        if let AllocMode::Pooled { granularity } = self.alloc {
            assert!(granularity >= 4096, "allocation granularity below one page");
        }
    }
}

impl Default for Config {
    fn default() -> Self {
        Self::shield_opt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_differ_in_optimizations() {
        let base = Config::shield_base();
        let opt = Config::shield_opt();
        assert!(!base.key_hint && !base.mac_bucket);
        assert!(opt.key_hint && opt.mac_bucket && opt.two_step_search);
        assert_eq!(base.num_buckets, opt.num_buckets);
        assert_eq!(opt.alloc, AllocMode::Pooled { granularity: 16 << 20 });
    }

    #[test]
    fn per_shard_derivation() {
        let cfg = Config::shield_opt().buckets(1024).mac_hashes(64).with_shards(4);
        assert_eq!(cfg.buckets_per_shard(), 256);
        assert_eq!(cfg.mac_hashes_per_shard(), 16);
    }

    #[test]
    fn mac_hashes_capped_by_buckets() {
        let cfg = Config::shield_opt().buckets(64).mac_hashes(1 << 20).with_shards(2);
        assert_eq!(cfg.buckets_per_shard(), 32);
        assert_eq!(cfg.mac_hashes_per_shard(), 32);
    }

    #[test]
    #[should_panic(expected = "num_buckets")]
    fn zero_buckets_rejected() {
        Config::shield_opt().buckets(0).validate();
    }
}
