//! The data-entry format (paper Fig. 5, extended with tenancy).
//!
//! Each key-value pair is stored in untrusted memory as one entry:
//!
//! ```text
//! offset  size  field
//! 0       8     next       chain pointer (handle; 0 terminates)
//! 8       1     key hint   1-byte keyed hash of the plaintext key (§5.4)
//! 9       4     key size   u32 LE
//! 13      4     value size u32 LE
//! 17      4     tenant     u32 LE owning-tenant id (0 = default tenant)
//! 21      8     expires_at u64 LE absolute deadline in ns (0 = no TTL)
//! 29      16    IV/counter combined field, incremented per re-encryption
//! 45      16    MAC        CMAC over (enc key/value, sizes, hint, tenant,
//!                          expiry, IV/ctr) under the TENANT's derived key
//! 61      k+v   Enc(key ‖ value)  AES-CTR under the TENANT's derived key
//! ```
//!
//! The `next` pointer is *not* covered by the MAC: the paper deliberately
//! leaves index structure unprotected (confidentiality and integrity of
//! keys and values are what matter; chain tampering can at worst harm
//! availability, and the bucket-set hash detects entry removal/replay).
//!
//! The tenant id and expiry deadline are plaintext so a chain walk can
//! skip foreign-tenant entries and spot dead ones without decrypting,
//! but both are MAC-covered — and, crucially, the MAC key itself is the
//! per-tenant derived key, so rewriting the tenant field re-routes
//! verification to a key under which the tag cannot match. A ciphertext
//! re-stitched into another tenant's namespace fails closed twice over:
//! the entry MAC verifies under the wrong key, and the bucket-set hash
//! (keyed under the master key the attacker never sees) no longer
//! matches.

use crate::alloc::{Handle, UntrustedHeap};
use shield_crypto::cmac::Cmac;
use shield_crypto::ctr::AesCtr;
use shield_crypto::Tag128;

/// Byte offset of the `next` handle.
pub const OFF_NEXT: usize = 0;
/// Byte offset of the key hint.
pub const OFF_HINT: usize = 8;
/// Byte offset of the key size.
pub const OFF_KEY_LEN: usize = 9;
/// Byte offset of the value size.
pub const OFF_VAL_LEN: usize = 13;
/// Byte offset of the owning tenant id.
pub const OFF_TENANT: usize = 17;
/// Byte offset of the expiry deadline (ns; 0 = none).
pub const OFF_EXPIRY: usize = 21;
/// Byte offset of the IV/counter.
pub const OFF_IV: usize = 29;
/// Byte offset of the MAC.
pub const OFF_MAC: usize = 45;
/// Total header length; the encrypted key/value follows.
pub const HEADER_LEN: usize = 61;

/// Parsed entry header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EntryHeader {
    /// Next entry in the bucket chain (0 = end).
    pub next: Handle,
    /// 1-byte key hint.
    pub hint: u8,
    /// Plaintext key length.
    pub key_len: u32,
    /// Plaintext value length.
    pub val_len: u32,
    /// Owning tenant.
    pub tenant: u32,
    /// Absolute expiry deadline in nanoseconds (0 = no TTL).
    pub expires_at: u64,
    /// Combined IV/counter.
    pub iv: [u8; 16],
    /// Entry MAC.
    pub mac: Tag128,
}

impl EntryHeader {
    /// Total entry size in bytes (header + ciphertext).
    pub fn entry_len(&self) -> usize {
        HEADER_LEN + self.key_len as usize + self.val_len as usize
    }

    /// Ciphertext length (key + value).
    pub fn ct_len(&self) -> usize {
        self.key_len as usize + self.val_len as usize
    }

    /// True when the entry's TTL deadline has passed at `now_ns`.
    /// Entries without a TTL (`expires_at == 0`) never expire.
    pub fn expired_at(&self, now_ns: u64) -> bool {
        self.expires_at != 0 && now_ns >= self.expires_at
    }
}

/// Parses the fixed header from an entry's first [`HEADER_LEN`] bytes.
pub fn parse_header(bytes: &[u8]) -> EntryHeader {
    EntryHeader {
        next: u64::from_le_bytes(bytes[OFF_NEXT..OFF_NEXT + 8].try_into().expect("8 bytes")),
        hint: bytes[OFF_HINT],
        key_len: u32::from_le_bytes(
            bytes[OFF_KEY_LEN..OFF_KEY_LEN + 4].try_into().expect("4 bytes"),
        ),
        val_len: u32::from_le_bytes(
            bytes[OFF_VAL_LEN..OFF_VAL_LEN + 4].try_into().expect("4 bytes"),
        ),
        tenant: u32::from_le_bytes(bytes[OFF_TENANT..OFF_TENANT + 4].try_into().expect("4 bytes")),
        expires_at: u64::from_le_bytes(
            bytes[OFF_EXPIRY..OFF_EXPIRY + 8].try_into().expect("8 bytes"),
        ),
        iv: bytes[OFF_IV..OFF_IV + 16].try_into().expect("16 bytes"),
        mac: bytes[OFF_MAC..OFF_MAC + 16].try_into().expect("16 bytes"),
    }
}

/// Reads the header of the entry at `handle`.
pub fn read_header(heap: &UntrustedHeap, handle: Handle) -> EntryHeader {
    parse_header(heap.bytes(handle, HEADER_LEN))
}

/// Computes an entry's MAC: CMAC over
/// `(ciphertext ‖ key_len ‖ val_len ‖ hint ‖ tenant ‖ expires_at ‖ iv)`,
/// Fig. 5 extended with the tenancy fields. The `cmac` must be the
/// owning tenant's derived MAC key.
#[allow(clippy::too_many_arguments)]
pub fn compute_mac(
    cmac: &Cmac,
    ciphertext: &[u8],
    key_len: u32,
    val_len: u32,
    hint: u8,
    tenant: u32,
    expires_at: u64,
    iv: &[u8; 16],
) -> Tag128 {
    cmac.compute_parts(&[
        ciphertext,
        &key_len.to_le_bytes(),
        &val_len.to_le_bytes(),
        &[hint],
        &tenant.to_le_bytes(),
        &expires_at.to_le_bytes(),
        iv,
    ])
}

/// Encrypts `key ‖ value` and writes a complete entry into `buf`
/// (`buf.len()` must equal `HEADER_LEN + key.len() + value.len()`).
///
/// `enc`/`cmac` must be the owning tenant's derived keys. Returns the
/// entry's MAC.
#[allow(clippy::too_many_arguments)]
pub fn encode_into(
    buf: &mut [u8],
    next: Handle,
    hint: u8,
    tenant: u32,
    expires_at: u64,
    iv: &[u8; 16],
    key: &[u8],
    value: &[u8],
    enc: &AesCtr,
    cmac: &Cmac,
) -> Tag128 {
    let key_len = key.len() as u32;
    let val_len = value.len() as u32;
    debug_assert_eq!(buf.len(), HEADER_LEN + key.len() + value.len());

    buf[OFF_NEXT..OFF_NEXT + 8].copy_from_slice(&next.to_le_bytes());
    buf[OFF_HINT] = hint;
    buf[OFF_KEY_LEN..OFF_KEY_LEN + 4].copy_from_slice(&key_len.to_le_bytes());
    buf[OFF_VAL_LEN..OFF_VAL_LEN + 4].copy_from_slice(&val_len.to_le_bytes());
    buf[OFF_TENANT..OFF_TENANT + 4].copy_from_slice(&tenant.to_le_bytes());
    buf[OFF_EXPIRY..OFF_EXPIRY + 8].copy_from_slice(&expires_at.to_le_bytes());
    buf[OFF_IV..OFF_IV + 16].copy_from_slice(iv);

    let ct = &mut buf[HEADER_LEN..];
    ct[..key.len()].copy_from_slice(key);
    ct[key.len()..].copy_from_slice(value);
    enc.apply_keystream(iv, ct);

    let mac = compute_mac(cmac, &buf[HEADER_LEN..], key_len, val_len, hint, tenant, expires_at, iv);
    buf[OFF_MAC..OFF_MAC + 16].copy_from_slice(&mac);
    mac
}

/// Decrypts only the key prefix of an entry's ciphertext.
///
/// Searching a chain only needs key comparisons; decrypting the value too
/// would waste exactly the work the key-hint optimization is trying to
/// save (§5.4).
pub fn decrypt_key(enc: &AesCtr, header: &EntryHeader, ciphertext: &[u8]) -> Vec<u8> {
    let mut key = ciphertext[..header.key_len as usize].to_vec();
    enc.apply_keystream(&header.iv, &mut key);
    key
}

/// Allocation-free [`decrypt_key`] comparison: decrypts the key prefix
/// into `scratch` (reusing its capacity) and compares against `key`.
///
/// The chain search runs this once per candidate entry, so the hot path
/// borrows the shard's scratch buffer instead of allocating a `Vec` per
/// probe.
pub fn key_matches(
    enc: &AesCtr,
    header: &EntryHeader,
    ciphertext: &[u8],
    key: &[u8],
    scratch: &mut Vec<u8>,
) -> bool {
    let key_len = header.key_len as usize;
    if key_len != key.len() || ciphertext.len() < key_len {
        return false;
    }
    scratch.clear();
    scratch.extend_from_slice(&ciphertext[..key_len]);
    enc.apply_keystream(&header.iv, scratch);
    scratch == key
}

/// Fused verify + decrypt of one entry: a single pass over the ciphertext
/// absorbs it into the MAC and XORs the keystream, then the tag is
/// checked (constant time) *before* any plaintext is released.
///
/// On success `out` holds `key ‖ value`; on tamper `out` is wiped and
/// emptied and `false` is returned — the exact fail-closed behavior of
/// [`verify_mac`] followed by [`decrypt_entry`], at one memory pass.
pub fn open_entry(
    enc: &AesCtr,
    cmac: &Cmac,
    header: &EntryHeader,
    ciphertext: &[u8],
    out: &mut Vec<u8>,
) -> bool {
    shield_crypto::fused::open_verify(
        enc,
        cmac,
        &header.iv,
        &[],
        ciphertext,
        &[
            &header.key_len.to_le_bytes(),
            &header.val_len.to_le_bytes(),
            &[header.hint],
            &header.tenant.to_le_bytes(),
            &header.expires_at.to_le_bytes(),
            &header.iv,
        ],
        &header.mac,
        out,
    )
}

/// Decrypts an entry's full plaintext, returning `(key, value)`.
pub fn decrypt_entry(enc: &AesCtr, header: &EntryHeader, ciphertext: &[u8]) -> (Vec<u8>, Vec<u8>) {
    let mut plain = ciphertext.to_vec();
    enc.apply_keystream(&header.iv, &mut plain);
    let value = plain.split_off(header.key_len as usize);
    (plain, value)
}

/// Verifies an entry's stored MAC against its contents.
pub fn verify_mac(cmac: &Cmac, header: &EntryHeader, ciphertext: &[u8]) -> bool {
    let expected = compute_mac(
        cmac,
        ciphertext,
        header.key_len,
        header.val_len,
        header.hint,
        header.tenant,
        header.expires_at,
        &header.iv,
    );
    shield_crypto::constant_time::ct_eq(&expected, &header.mac)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ciphers() -> (AesCtr, Cmac) {
        (AesCtr::new(&[1u8; 16]), Cmac::new(&[2u8; 16]))
    }

    #[test]
    fn encode_parse_decrypt_roundtrip() {
        let (enc, cmac) = ciphers();
        let key = b"user:1234";
        let value = b"some value payload";
        let mut buf = vec![0u8; HEADER_LEN + key.len() + value.len()];
        let iv = [9u8; 16];
        let mac = encode_into(&mut buf, 0xdeadbeef, 0x5a, 7, 12345, &iv, key, value, &enc, &cmac);

        let header = parse_header(&buf);
        assert_eq!(header.next, 0xdeadbeef);
        assert_eq!(header.hint, 0x5a);
        assert_eq!(header.key_len, key.len() as u32);
        assert_eq!(header.val_len, value.len() as u32);
        assert_eq!(header.tenant, 7);
        assert_eq!(header.expires_at, 12345);
        assert_eq!(header.iv, iv);
        assert_eq!(header.mac, mac);
        assert_eq!(header.entry_len(), buf.len());

        let ct = &buf[HEADER_LEN..];
        assert_ne!(&ct[..key.len()], key, "key must be encrypted");
        let (k, v) = decrypt_entry(&enc, &header, ct);
        assert_eq!(k, key);
        assert_eq!(v, value);
        assert_eq!(decrypt_key(&enc, &header, ct), key);
        assert!(verify_mac(&cmac, &header, ct));
    }

    #[test]
    fn mac_binds_every_field() {
        let (enc, cmac) = ciphers();
        let mut buf = vec![0u8; HEADER_LEN + 4 + 4];
        encode_into(&mut buf, 0, 7, 3, 99, &[3u8; 16], b"abcd", b"wxyz", &enc, &cmac);
        let pristine = buf.clone();

        // Tamper with each MAC-covered region and expect rejection.
        for &offset in &[
            OFF_HINT,
            OFF_KEY_LEN,
            OFF_VAL_LEN,
            OFF_TENANT,
            OFF_EXPIRY,
            OFF_IV,
            HEADER_LEN,
            buf.len() - 1,
        ] {
            let mut t = pristine.clone();
            t[offset] ^= 1;
            let header = parse_header(&t);
            assert!(
                !verify_mac(&cmac, &header, &t[HEADER_LEN..]),
                "tampering at offset {offset} must be detected"
            );
        }

        // The chain pointer is intentionally NOT covered.
        let mut t = pristine;
        t[OFF_NEXT] ^= 1;
        let header = parse_header(&t);
        assert!(verify_mac(&cmac, &header, &t[HEADER_LEN..]));
    }

    #[test]
    fn expiry_deadline_semantics() {
        let h = EntryHeader {
            next: 0,
            hint: 0,
            key_len: 1,
            val_len: 1,
            tenant: 0,
            expires_at: 0,
            iv: [0; 16],
            mac: [0; 16],
        };
        assert!(!h.expired_at(u64::MAX), "no TTL never expires");
        let h = EntryHeader { expires_at: 100, ..h };
        assert!(!h.expired_at(99));
        assert!(h.expired_at(100), "deadline is inclusive");
        assert!(h.expired_at(101));
    }

    #[test]
    fn empty_value_supported() {
        let (enc, cmac) = ciphers();
        let mut buf = vec![0u8; HEADER_LEN + 3];
        encode_into(&mut buf, 0, 0, 0, 0, &[0u8; 16], b"abc", b"", &enc, &cmac);
        let header = parse_header(&buf);
        let (k, v) = decrypt_entry(&enc, &header, &buf[HEADER_LEN..]);
        assert_eq!(k, b"abc");
        assert!(v.is_empty());
    }

    #[test]
    fn distinct_ivs_distinct_ciphertexts() {
        let (enc, cmac) = ciphers();
        let mut b1 = vec![0u8; HEADER_LEN + 8];
        let mut b2 = vec![0u8; HEADER_LEN + 8];
        encode_into(&mut b1, 0, 0, 0, 0, &[1u8; 16], b"key1", b"val1", &enc, &cmac);
        encode_into(&mut b2, 0, 0, 0, 0, &[2u8; 16], b"key1", b"val1", &enc, &cmac);
        assert_ne!(&b1[HEADER_LEN..], &b2[HEADER_LEN..]);
    }

    #[test]
    fn header_offsets_are_packed() {
        assert_eq!(OFF_NEXT, 0);
        assert_eq!(OFF_HINT, 8);
        assert_eq!(OFF_KEY_LEN, 9);
        assert_eq!(OFF_VAL_LEN, 13);
        assert_eq!(OFF_TENANT, 17);
        assert_eq!(OFF_EXPIRY, 21);
        assert_eq!(OFF_IV, 29);
        assert_eq!(OFF_MAC, 45);
        assert_eq!(HEADER_LEN, 61);
    }
}
