//! ShieldStore error types.

/// Errors returned by ShieldStore operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// The requested key does not exist.
    KeyNotFound,
    /// An entry or bucket-set failed integrity verification: the untrusted
    /// memory was tampered with (or rolled back).
    IntegrityViolation {
        /// The logical bucket (within its shard) where the violation was
        /// detected.
        bucket: usize,
    },
    /// `increment` was called on a value that is not a decimal integer.
    ValueNotNumeric,
    /// An integer overflow occurred applying `increment`.
    NumericOverflow,
    /// Key or value exceeds the configured maximum size.
    OversizeItem {
        /// Offending length in bytes.
        len: usize,
        /// Configured maximum.
        max: usize,
    },
    /// A snapshot/restore operation failed.
    Persistence(String),
    /// The underlying enclave simulator reported an error.
    Sim(sgx_sim::SimError),
    /// Rollback detected during restore: the snapshot is older than the
    /// monotonic counter allows.
    Rollback,
    /// A write-ahead-log record failed chain verification during
    /// recovery: its CMAC (covering the previous record's MAC and the
    /// monotone sequence number) did not verify, so the log was tampered
    /// with, spliced, or reordered.
    LogIntegrity {
        /// Sequence number of the offending record.
        seq: u64,
    },
    /// A range/prefix scan was attempted without
    /// [`crate::Config::ordered_index`] enabled.
    IndexDisabled,
    /// The hash partition holding this key was quarantined after an
    /// earlier [`Error::IntegrityViolation`] (requires
    /// [`crate::Config::quarantine`]). The operation was rejected
    /// without touching untrusted memory; other partitions keep
    /// serving.
    Quarantined {
        /// The logical bucket (within its shard) the rejected key maps
        /// to (0 for keyless operations such as scans).
        bucket: usize,
    },
    /// The write would exceed the tenant's byte or key quota
    /// ([`crate::TenantQuota`]). The store was left untouched.
    QuotaExceeded {
        /// The tenant whose quota was hit.
        tenant: u32,
    },
    /// Durable storage failed underneath the write-ahead log and the
    /// writer is poisoned: a write, fsync, or pin update did not reach
    /// disk, so the durable watermark is frozen at the last verified
    /// commit and every further commit fails closed (retrying an fsync
    /// after failure can silently lose the unflushed pages — the
    /// "fsyncgate" semantics). Reads keep serving; recover from the
    /// on-disk genuine prefix or fail over to a replica.
    StorageFailed,
}

impl core::fmt::Display for Error {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Error::KeyNotFound => write!(f, "key not found"),
            Error::IntegrityViolation { bucket } => {
                write!(f, "integrity violation detected in bucket {bucket}")
            }
            Error::ValueNotNumeric => write!(f, "value is not a decimal integer"),
            Error::NumericOverflow => write!(f, "numeric overflow in increment"),
            Error::OversizeItem { len, max } => {
                write!(f, "item of {len} bytes exceeds maximum {max}")
            }
            Error::Persistence(msg) => write!(f, "persistence failure: {msg}"),
            Error::Sim(e) => write!(f, "simulator error: {e}"),
            Error::Rollback => write!(f, "snapshot rollback detected"),
            Error::LogIntegrity { seq } => {
                write!(f, "write-ahead log record {seq} failed chain verification")
            }
            Error::IndexDisabled => {
                write!(f, "range scans require Config::ordered_index")
            }
            Error::Quarantined { bucket } => {
                write!(
                    f,
                    "partition holding bucket {bucket} is quarantined after an integrity violation"
                )
            }
            Error::QuotaExceeded { tenant } => {
                write!(f, "write exceeds tenant {tenant}'s quota")
            }
            Error::StorageFailed => {
                write!(f, "durable storage failed; the log writer is poisoned")
            }
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Sim(e) => Some(e),
            _ => None,
        }
    }
}

impl From<sgx_sim::SimError> for Error {
    fn from(e: sgx_sim::SimError) -> Self {
        match e {
            sgx_sim::SimError::CounterRollback => Error::Rollback,
            other => Error::Sim(other),
        }
    }
}

impl From<std::io::Error> for Error {
    fn from(e: std::io::Error) -> Self {
        Error::Persistence(e.to_string())
    }
}

/// Convenience result alias.
pub type Result<T> = core::result::Result<T, Error>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_strings() {
        assert_eq!(Error::KeyNotFound.to_string(), "key not found");
        assert!(Error::IntegrityViolation { bucket: 3 }.to_string().contains("bucket 3"));
        assert!(Error::OversizeItem { len: 10, max: 5 }.to_string().contains("10"));
        assert!(Error::Quarantined { bucket: 7 }.to_string().contains("quarantined"));
    }

    #[test]
    fn sim_error_conversion() {
        let e: Error = sgx_sim::SimError::CounterRollback.into();
        assert_eq!(e, Error::Rollback);
        let e: Error = sgx_sim::SimError::SealVerify.into();
        assert_eq!(e, Error::Sim(sgx_sim::SimError::SealVerify));
    }
}
