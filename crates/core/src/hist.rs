//! Log-bucketed latency histograms.
//!
//! Every hot-path operation records its latency into a [`LatencyHist`]:
//! 64 power-of-two buckets, a fixed-size value type with no interior
//! allocation, so recording costs a handful of arithmetic instructions
//! and never touches the heap (the observability layer must not perturb
//! what it observes — see DESIGN.md "Observability" for the budget).
//!
//! Latencies are measured in *effective nanoseconds*: wall time plus the
//! virtual-clock penalty ([`sgx_sim::vclock`]) accumulated during the
//! operation, so EPC faults and enclave crossings show up in the tails
//! exactly as they do in the throughput model.

use sgx_sim::vclock;
use std::time::Instant;

/// Number of power-of-two buckets. Bucket 0 holds zero, bucket `i`
/// (1 ≤ i < 63) holds `[2^(i-1), 2^i)`, bucket 63 holds everything from
/// `2^62` up. 64 buckets cover the full `u64` nanosecond range.
pub const NUM_BUCKETS: usize = 64;

/// An allocation-free log-bucketed histogram of `u64` samples.
///
/// Recording, merging, and quantile queries all operate on the fixed
/// bucket array; nothing is allocated after construction. Counters only
/// grow, so bucket-wise subtraction ([`LatencyHist::diff`]) yields the
/// histogram of an interval between two snapshots.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LatencyHist {
    buckets: [u64; NUM_BUCKETS],
    count: u64,
    sum: u64,
    max: u64,
}

impl Default for LatencyHist {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHist {
    /// An empty histogram.
    pub const fn new() -> Self {
        Self { buckets: [0; NUM_BUCKETS], count: 0, sum: 0, max: 0 }
    }

    /// The bucket index a sample lands in.
    #[inline]
    pub fn bucket_index(sample: u64) -> usize {
        if sample == 0 {
            0
        } else {
            (64 - sample.leading_zeros() as usize).min(NUM_BUCKETS - 1)
        }
    }

    /// Inclusive `[lo, hi]` bounds of bucket `i`.
    ///
    /// # Panics
    /// Panics when `i >= NUM_BUCKETS`.
    pub fn bucket_bounds(i: usize) -> (u64, u64) {
        assert!(i < NUM_BUCKETS, "bucket index out of range");
        match i {
            0 => (0, 0),
            63 => (1 << 62, u64::MAX),
            _ => (1 << (i - 1), (1 << i) - 1),
        }
    }

    /// Records one sample. Allocation-free.
    #[inline]
    pub fn record(&mut self, sample: u64) {
        self.buckets[Self::bucket_index(sample)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(sample);
        self.max = self.max.max(sample);
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &LatencyHist) {
        for (mine, theirs) in self.buckets.iter_mut().zip(&other.buckets) {
            *mine += theirs;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.max = self.max.max(other.max);
    }

    /// Samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Saturating sum of all samples (nanoseconds).
    pub fn sum_ns(&self) -> u64 {
        self.sum
    }

    /// Largest sample recorded.
    pub fn max_ns(&self) -> u64 {
        self.max
    }

    /// Mean sample, or 0.0 when empty.
    pub fn mean_ns(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The raw bucket array (serialization, reporting).
    pub fn buckets(&self) -> &[u64; NUM_BUCKETS] {
        &self.buckets
    }

    /// The quantile estimate for `p` in `[0, 1]`: the upper bound of the
    /// first bucket whose cumulative count reaches rank `ceil(p·count)`,
    /// clamped to the recorded maximum (so `quantile(1.0) == max`).
    /// Monotone non-decreasing in `p`. Returns 0 for an empty histogram.
    pub fn quantile(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((p * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return Self::bucket_bounds(i).1.min(self.max);
            }
        }
        self.max
    }

    /// Median estimate.
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 95th-percentile estimate.
    pub fn p95(&self) -> u64 {
        self.quantile(0.95)
    }

    /// 99th-percentile estimate.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// Reconstructs a histogram from its serialized parts, deriving the
    /// sample count from the buckets. Fails (`None`) when the bucket
    /// counts overflow, or when `max`/`sum` are inconsistent with the
    /// buckets (a non-empty histogram needs `max` inside the top
    /// non-empty bucket's bounds and `sum >= `nothing checkable beyond
    /// overflow — wire decoders use this to fail closed on junk).
    pub fn from_raw(buckets: [u64; NUM_BUCKETS], sum: u64, max: u64) -> Option<Self> {
        let mut count = 0u64;
        let mut top: Option<usize> = None;
        for (i, &n) in buckets.iter().enumerate() {
            count = count.checked_add(n)?;
            if n > 0 {
                top = Some(i);
            }
        }
        match top {
            None => {
                if sum != 0 || max != 0 {
                    return None;
                }
            }
            Some(i) => {
                let (lo, hi) = Self::bucket_bounds(i);
                if max < lo || max > hi {
                    return None;
                }
            }
        }
        Some(Self { buckets, count, sum, max })
    }

    /// The histogram of the interval since `earlier`, assuming `self`
    /// was recorded strictly after it on the same (merged) lineage.
    /// Bucket-wise saturating subtraction; `max` keeps the later value
    /// (a maximum cannot be un-recorded, so it is since-reset, not
    /// per-interval).
    pub fn diff(&self, earlier: &LatencyHist) -> LatencyHist {
        let mut buckets = [0u64; NUM_BUCKETS];
        let mut count = 0u64;
        for (i, slot) in buckets.iter_mut().enumerate() {
            *slot = self.buckets[i].saturating_sub(earlier.buckets[i]);
            count += *slot;
        }
        LatencyHist { buckets, count, sum: self.sum.saturating_sub(earlier.sum), max: self.max }
    }
}

/// Per-operation-class latency histograms, one set per shard.
///
/// `get`/`set`/`delete` time the single-key entry points; `batch` times
/// whole `multi_get`/`multi_set` calls (one sample per batch, not per
/// carried key). `append`/`increment`/`exists` are compound reads over
/// the same verified lookup path and are deliberately not sampled.
/// `wal_group` is not a latency at all: it records the *size* (operation
/// count) of each write-ahead-log group commit, so the distribution shows
/// how well the durability policy amortizes sealing and fsync.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OpHists {
    /// `get` latency.
    pub get: LatencyHist,
    /// `set` latency.
    pub set: LatencyHist,
    /// `delete` latency.
    pub delete: LatencyHist,
    /// Whole-batch `multi_get`/`multi_set` latency.
    pub batch: LatencyHist,
    /// Operations per WAL group commit (a size distribution, one sample
    /// per committed log record).
    pub wal_group: LatencyHist,
}

impl OpHists {
    /// Merges another set into this one.
    pub fn merge(&mut self, other: &OpHists) {
        self.get.merge(&other.get);
        self.set.merge(&other.set);
        self.delete.merge(&other.delete);
        self.batch.merge(&other.batch);
        self.wal_group.merge(&other.wal_group);
    }

    /// `(name, histogram)` pairs in a fixed order, for reports and
    /// serialization.
    pub fn iter(&self) -> [(&'static str, &LatencyHist); 5] {
        [
            ("get", &self.get),
            ("set", &self.set),
            ("delete", &self.delete),
            ("batch", &self.batch),
            ("wal_group", &self.wal_group),
        ]
    }

    /// The per-interval difference against an earlier snapshot.
    pub fn diff(&self, earlier: &OpHists) -> OpHists {
        OpHists {
            get: self.get.diff(&earlier.get),
            set: self.set.diff(&earlier.set),
            delete: self.delete.diff(&earlier.delete),
            batch: self.batch.diff(&earlier.batch),
            wal_group: self.wal_group.diff(&earlier.wal_group),
        }
    }
}

/// Times one operation in effective nanoseconds: wall clock plus the
/// virtual penalty the operation charged to this thread's
/// [`sgx_sim::vclock`] (EPC faults, crossings, MEE overhead).
#[derive(Debug)]
pub struct OpTimer {
    wall: Instant,
    vstart: u64,
}

impl OpTimer {
    /// Starts timing.
    #[inline]
    pub fn start() -> Self {
        Self { wall: Instant::now(), vstart: vclock::now() }
    }

    /// Effective nanoseconds since [`OpTimer::start`]. Saturates if the
    /// virtual clock was reset mid-operation (harness boundaries only).
    #[inline]
    pub fn elapsed_ns(&self) -> u64 {
        let wall = self.wall.elapsed().as_nanos() as u64;
        wall.saturating_add(vclock::now().saturating_sub(self.vstart))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_geometry() {
        assert_eq!(LatencyHist::bucket_index(0), 0);
        assert_eq!(LatencyHist::bucket_index(1), 1);
        assert_eq!(LatencyHist::bucket_index(2), 2);
        assert_eq!(LatencyHist::bucket_index(3), 2);
        assert_eq!(LatencyHist::bucket_index(4), 3);
        assert_eq!(LatencyHist::bucket_index(u64::MAX), 63);
        for sample in [0u64, 1, 2, 3, 4, 7, 8, 1023, 1024, 1 << 62, u64::MAX] {
            let i = LatencyHist::bucket_index(sample);
            let (lo, hi) = LatencyHist::bucket_bounds(i);
            assert!(lo <= sample && sample <= hi, "{sample} outside bucket {i} [{lo}, {hi}]");
        }
    }

    #[test]
    fn record_and_quantiles() {
        let mut h = LatencyHist::new();
        assert_eq!(h.p50(), 0);
        for ns in [100u64, 200, 300, 400, 10_000] {
            h.record(ns);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.max_ns(), 10_000);
        assert_eq!(h.sum_ns(), 11_000);
        // p50 falls in the bucket holding 200..=255.
        let p50 = h.p50();
        assert!((200..512).contains(&p50), "p50 = {p50}");
        assert!(h.p50() <= h.p95());
        assert!(h.p95() <= h.p99());
        assert!(h.p99() <= h.max_ns());
        assert_eq!(h.quantile(1.0), 10_000);
    }

    #[test]
    fn merge_adds() {
        let mut a = LatencyHist::new();
        let mut b = LatencyHist::new();
        a.record(10);
        b.record(1000);
        b.record(u64::MAX);
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.max_ns(), u64::MAX);
        assert_eq!(a.buckets().iter().sum::<u64>(), 3);
    }

    #[test]
    fn diff_recovers_interval() {
        let mut before = LatencyHist::new();
        before.record(5);
        let mut after = before;
        after.record(700);
        after.record(800);
        let d = after.diff(&before);
        assert_eq!(d.count(), 2);
        assert_eq!(d.sum_ns(), 1500);
        let p50 = d.p50();
        assert!((512..=1023).contains(&p50), "p50 = {p50}");
    }

    #[test]
    fn from_raw_validates() {
        let mut h = LatencyHist::new();
        h.record(42);
        h.record(9000);
        let rebuilt = LatencyHist::from_raw(*h.buckets(), h.sum_ns(), h.max_ns()).unwrap();
        assert_eq!(rebuilt, h);
        // max outside the top non-empty bucket fails closed.
        assert!(LatencyHist::from_raw(*h.buckets(), h.sum_ns(), 1).is_none());
        // A non-zero max with empty buckets fails closed.
        assert!(LatencyHist::from_raw([0; NUM_BUCKETS], 0, 7).is_none());
        // Bucket counts that overflow the total fail closed.
        let mut bad = [0u64; NUM_BUCKETS];
        bad[1] = u64::MAX;
        bad[2] = 1;
        assert!(LatencyHist::from_raw(bad, 0, 3).is_none());
    }

    #[test]
    fn timer_monotone() {
        let t = OpTimer::start();
        let first = t.elapsed_ns();
        let second = t.elapsed_ns();
        assert!(second >= first);
    }
}
