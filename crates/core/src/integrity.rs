//! Flattened-Merkle integrity verification (paper §4.3).
//!
//! Instead of one deep Merkle tree over all key-value pairs, ShieldStore
//! keeps a flat array of *MAC hashes* inside the enclave. MAC hash `i`
//! covers a *bucket set* — `ceil(buckets / num_hashes)` consecutive
//! buckets — and stores the CMAC over the concatenation of every entry MAC
//! in that set, in deterministic traversal order. A `get` recomputes the
//! set's hash from untrusted MACs and compares; a `set` recomputes and
//! overwrites after mutating.
//!
//! The array is the dominant EPC consumer of the whole store: when it
//! outgrows the EPC budget, the enclave starts demand-paging and throughput
//! collapses — the trade-off measured in Fig. 15.

use crate::error::{Error, Result};
use sgx_sim::enclave::Enclave;
use shield_crypto::cmac::Cmac;
use shield_crypto::Tag128;
use std::sync::Arc;

/// Storage for the MAC hash array.
///
/// The main table keeps it in metered enclave memory (EPC); the small
/// temporary table used during snapshots keeps a plain in-enclave vector
/// (its footprint is negligible, and it is discarded after the merge).
pub enum MacStore {
    /// Metered enclave-memory array of `num` 16-byte hashes.
    Enclave {
        /// The owning enclave (for metered access).
        enclave: Arc<Enclave>,
        /// Base address of the array in enclave memory.
        addr: u64,
        /// Number of hashes.
        num: usize,
    },
    /// Plain vector (unmetered, for temporary tables).
    Plain(Vec<Tag128>),
}

impl std::fmt::Debug for MacStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MacStore::Enclave { num, .. } => write!(f, "MacStore::Enclave({num})"),
            MacStore::Plain(v) => write!(f, "MacStore::Plain({})", v.len()),
        }
    }
}

impl MacStore {
    /// Allocates a metered in-EPC array of `num` hashes.
    pub fn in_enclave(enclave: Arc<Enclave>, num: usize) -> Result<Self> {
        let addr = enclave.memory().alloc(num * 16).map_err(Error::from)?;
        Ok(MacStore::Enclave { enclave, addr, num })
    }

    /// Creates a plain in-enclave vector of `num` hashes.
    pub fn plain(num: usize) -> Self {
        MacStore::Plain(vec![[0u8; 16]; num])
    }

    /// Number of MAC hashes.
    pub fn len(&self) -> usize {
        match self {
            MacStore::Enclave { num, .. } => *num,
            MacStore::Plain(v) => v.len(),
        }
    }

    /// True when the store holds no hashes.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Reads hash `idx` (metered for the enclave variant).
    pub fn get(&self, idx: usize) -> Tag128 {
        match self {
            MacStore::Enclave { enclave, addr, num } => {
                assert!(idx < *num, "MAC hash index out of range");
                let mut out = [0u8; 16];
                enclave.memory().read(addr + (idx * 16) as u64, &mut out);
                out
            }
            MacStore::Plain(v) => v[idx],
        }
    }

    /// Writes hash `idx` (metered for the enclave variant).
    pub fn set(&mut self, idx: usize, tag: &Tag128) {
        match self {
            MacStore::Enclave { enclave, addr, num } => {
                assert!(idx < *num, "MAC hash index out of range");
                enclave.memory().write(*addr + (idx * 16) as u64, tag);
            }
            MacStore::Plain(v) => v[idx] = *tag,
        }
    }

    /// Exports the whole array (for sealing into a snapshot).
    pub fn export(&self) -> Vec<u8> {
        match self {
            MacStore::Enclave { enclave, addr, num } => enclave.memory().read_vec(*addr, num * 16),
            MacStore::Plain(v) => v.iter().flat_map(|t| t.iter().copied()).collect(),
        }
    }

    /// Imports an exported array (for snapshot restore).
    pub fn import(&mut self, bytes: &[u8]) -> Result<()> {
        if bytes.len() != self.len() * 16 {
            return Err(Error::Persistence(format!(
                "MAC hash array length mismatch: {} != {}",
                bytes.len(),
                self.len() * 16
            )));
        }
        for (idx, chunk) in bytes.chunks_exact(16).enumerate() {
            self.set(idx, chunk.try_into().expect("16 bytes"));
        }
        Ok(())
    }
}

/// Maps buckets to MAC hash (bucket set) indices.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BucketSets {
    buckets: usize,
    num_hashes: usize,
    buckets_per_set: usize,
}

impl BucketSets {
    /// Creates the mapping for `buckets` buckets covered by `num_hashes`
    /// MAC hashes. When `num_hashes >= buckets` each hash covers exactly
    /// one bucket (the paper's <1M-bucket case).
    pub fn new(buckets: usize, num_hashes: usize) -> Self {
        let num_hashes = num_hashes.min(buckets).max(1);
        let buckets_per_set = buckets.div_ceil(num_hashes);
        Self { buckets, num_hashes, buckets_per_set }
    }

    /// The MAC hash index covering `bucket`.
    #[inline]
    pub fn set_of(&self, bucket: usize) -> usize {
        bucket / self.buckets_per_set
    }

    /// The bucket range covered by MAC hash `set`.
    pub fn buckets_of(&self, set: usize) -> core::ops::Range<usize> {
        let start = set * self.buckets_per_set;
        let end = ((set + 1) * self.buckets_per_set).min(self.buckets);
        start..end
    }

    /// Number of bucket sets (== usable MAC hashes).
    pub fn num_sets(&self) -> usize {
        self.buckets.div_ceil(self.buckets_per_set)
    }

    /// Buckets per set.
    pub fn buckets_per_set(&self) -> usize {
        self.buckets_per_set
    }
}

/// Computes a bucket-set hash over the concatenated entry MACs.
pub fn set_hash(cmac: &Cmac, concatenated_macs: &[u8]) -> Tag128 {
    cmac.compute(concatenated_macs)
}

/// Compares a recomputed set hash against the stored one.
pub fn verify_set_hash(stored: &Tag128, recomputed: &Tag128) -> bool {
    shield_crypto::constant_time::ct_eq(stored, recomputed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sgx_sim::enclave::EnclaveBuilder;
    use sgx_sim::vclock;

    #[test]
    fn bucket_set_mapping_one_to_one() {
        let bs = BucketSets::new(8, 8);
        assert_eq!(bs.buckets_per_set(), 1);
        for b in 0..8 {
            assert_eq!(bs.set_of(b), b);
            assert_eq!(bs.buckets_of(b), b..b + 1);
        }
    }

    #[test]
    fn bucket_set_mapping_many_to_one() {
        let bs = BucketSets::new(10, 3);
        // ceil(10/3) = 4 buckets per set -> 3 sets (0..4, 4..8, 8..10).
        assert_eq!(bs.buckets_per_set(), 4);
        assert_eq!(bs.num_sets(), 3);
        assert_eq!(bs.set_of(0), 0);
        assert_eq!(bs.set_of(3), 0);
        assert_eq!(bs.set_of(4), 1);
        assert_eq!(bs.buckets_of(2), 8..10);
    }

    #[test]
    fn more_hashes_than_buckets_collapses() {
        let bs = BucketSets::new(4, 100);
        assert_eq!(bs.num_sets(), 4);
        assert_eq!(bs.buckets_per_set(), 1);
    }

    #[test]
    fn plain_store_roundtrip() {
        let mut s = MacStore::plain(4);
        assert_eq!(s.len(), 4);
        s.set(2, &[9u8; 16]);
        assert_eq!(s.get(2), [9u8; 16]);
        assert_eq!(s.get(0), [0u8; 16]);
    }

    #[test]
    fn enclave_store_is_metered() {
        let enclave = EnclaveBuilder::new("macs").epc_bytes(1 << 16).build();
        vclock::reset();
        let mut s = MacStore::in_enclave(Arc::clone(&enclave), 1024).unwrap();
        s.set(1000, &[5u8; 16]);
        assert_eq!(s.get(1000), [5u8; 16]);
        assert!(enclave.stats().snapshot().epc_faults > 0 || vclock::now() > 0);
        vclock::reset();
    }

    #[test]
    fn export_import_roundtrip() {
        let mut a = MacStore::plain(3);
        a.set(0, &[1u8; 16]);
        a.set(1, &[2u8; 16]);
        a.set(2, &[3u8; 16]);
        let bytes = a.export();
        let mut b = MacStore::plain(3);
        b.import(&bytes).unwrap();
        for i in 0..3 {
            assert_eq!(b.get(i), a.get(i));
        }
        let mut c = MacStore::plain(2);
        assert!(c.import(&bytes).is_err());
    }

    #[test]
    fn set_hash_changes_with_any_mac() {
        let cmac = Cmac::new(&[0u8; 16]);
        let mut macs = vec![0u8; 64];
        let h1 = set_hash(&cmac, &macs);
        macs[33] ^= 1;
        let h2 = set_hash(&cmac, &macs);
        assert!(!verify_set_hash(&h1, &h2));
        macs[33] ^= 1;
        assert!(verify_set_hash(&h1, &set_hash(&cmac, &macs)));
    }
}
