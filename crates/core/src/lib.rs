//! # ShieldStore: shielded in-memory key-value storage
//!
//! A Rust reproduction of *ShieldStore: Shielded In-memory Key-value
//! Storage with SGX* (Kim, Park, Woo, Jeon, Huh — EuroSys 2019), built on
//! the [`sgx_sim`] software model of SGX.
//!
//! ## The problem
//!
//! SGX protects enclave memory with hardware encryption and integrity
//! verification, but the protected region (EPC) is only ~90 MB effective.
//! A key-value store holding gigabytes inside an enclave spends almost all
//! of its time in demand paging — the paper measures a 134x slowdown at a
//! 4 GB working set.
//!
//! ## The design
//!
//! ShieldStore inverts the layout: the main hash table lives in
//! *untrusted* memory, and enclave code encrypts (AES-CTR, per-entry
//! IV/counter) and MACs (AES-CMAC) every key-value pair individually.
//! Only the secret keys and a flattened Merkle array of bucket-set MAC
//! hashes stay inside the enclave. Four optimizations from the paper's
//! section 5 — a custom untrusted heap allocator, MAC bucketing,
//! hash-partitioned multi-threading, and a 1-byte key hint — are all
//! implemented and individually toggleable via [`Config`].
//!
//! ## Quick start
//!
//! ```
//! use sgx_sim::enclave::EnclaveBuilder;
//! use shieldstore::{Config, ShieldStore};
//!
//! let enclave = EnclaveBuilder::new("quickstart").epc_bytes(8 << 20).build();
//! let store = ShieldStore::new(enclave, Config::shield_opt().buckets(1024)).unwrap();
//!
//! store.set(b"session:42", b"{\"user\": \"alice\"}").unwrap();
//! assert_eq!(store.get(b"session:42").unwrap(), b"{\"user\": \"alice\"}");
//!
//! // Server-side operations on encrypted data (paper section 3.2):
//! store.increment(b"visits", 1).unwrap();
//! store.append(b"audit", b"login;").unwrap();
//! ```
//!
//! ## Module map
//!
//! | Module | Paper section | Contents |
//! |---|---|---|
//! | [`entry`] | 4.2, Fig. 5 | encrypted data-entry codec |
//! | [`integrity`] | 4.3 | flattened-Merkle bucket-set hashes |
//! | [`alloc`] | 5.1, Fig. 6 | custom untrusted heap allocator |
//! | [`mac_bucket`] | 5.2, Fig. 7 | per-bucket MAC side arrays |
//! | [`shard`] | 5.3, Fig. 8 | partition-per-thread operations |
//! | [`cache`] | Fig. 17 | spare-EPC plaintext cache |
//! | [`persist`] | 4.4, Alg. 1 | snapshots, sealing, rollback defense |
//! | [`wal`] | beyond 4.4 | sealed write-ahead log, group commit |
//! | [`repl`] | beyond 4.4 | sealed-log replication, fenced failover |
//! | [`scrub`] | beyond 4.4 | background re-verification and repair |
//! | [`store`] | — | the sharded top-level API |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod alloc;
pub mod cache;
pub mod config;
pub mod entry;
pub mod error;
pub mod hist;
pub mod integrity;
pub mod mac_bucket;
pub mod ordered;
pub mod persist;
pub mod repl;
pub mod scrub;
pub mod shard;
pub mod stats;
pub mod store;
pub mod table;
pub mod tenant;
#[cfg(any(test, feature = "testing"))]
pub mod testing;
pub mod ttl;
pub mod wal;

pub use config::{AllocMode, Config, DurabilityPolicy};
pub use error::{Error, Result};
pub use hist::{LatencyHist, OpHists};
pub use persist::SnapshotJob;
pub use repl::{ReplBatch, ReplHello, Replica, Watermark};
pub use scrub::ScrubTick;
pub use shard::Shard;
pub use stats::{OpStats, StatsSnapshot, TenantStat, MAX_TENANT_STATS};
pub use store::{QuarantineReport, ShardQuarantine, ShieldStore};
pub use tenant::{TenantId, TenantKeys, TenantQuota, TenantRegistry, TenantUsage, DEFAULT_TENANT};
pub use wal::{Wal, WalCodec, WalOp};
