//! MAC buckets (paper §5.2).
//!
//! Verifying a bucket-set hash needs the MACs of *every* entry in the
//! bucket, even when the requested key is found early in the chain. Without
//! help, gathering them pointer-chases the whole entry chain. A *MAC
//! bucket* is a side array in untrusted memory holding only the MAC fields,
//! in chain order, so the gather is a couple of contiguous reads. Each node
//! holds up to `capacity` MACs (30 in the paper) and chains to another node
//! when a bucket outgrows it.
//!
//! The logical structure is a vector of MACs mirroring the entry chain:
//! position 0 corresponds to the chain head. All nodes except the last are
//! kept full, so insertion at the front cascades the last MAC of each node
//! into the next.

use crate::alloc::{Handle, UntrustedHeap, NULL_HANDLE};
use shield_crypto::Tag128;

const OFF_NEXT: usize = 0;
const OFF_COUNT: usize = 8;
const OFF_MACS: usize = 12;

/// Size in bytes of a MAC-bucket node with the given capacity.
pub fn node_len(capacity: usize) -> usize {
    OFF_MACS + capacity * 16
}

fn read_count(heap: &UntrustedHeap, node: Handle) -> usize {
    u32::from_le_bytes(heap.bytes_at(node, OFF_COUNT, 4).try_into().expect("4 bytes")) as usize
}

fn write_count(heap: &mut UntrustedHeap, node: Handle, count: usize) {
    heap.bytes_at_mut(node, OFF_COUNT, 4).copy_from_slice(&(count as u32).to_le_bytes());
}

fn read_next(heap: &UntrustedHeap, node: Handle) -> Handle {
    heap.read_u64_at(node, OFF_NEXT)
}

fn write_next(heap: &mut UntrustedHeap, node: Handle, next: Handle) {
    heap.write_u64_at(node, OFF_NEXT, next);
}

fn read_mac(heap: &UntrustedHeap, node: Handle, slot: usize) -> Tag128 {
    heap.bytes_at(node, OFF_MACS + slot * 16, 16).try_into().expect("16 bytes")
}

fn write_mac(heap: &mut UntrustedHeap, node: Handle, slot: usize, mac: &Tag128) {
    heap.bytes_at_mut(node, OFF_MACS + slot * 16, 16).copy_from_slice(mac);
}

/// Appends every MAC in the chain starting at `head` to `out`, in order.
/// Returns the number of MACs gathered.
pub fn gather(heap: &UntrustedHeap, head: Handle, out: &mut Vec<u8>) -> usize {
    let mut node = head;
    let mut total = 0;
    while node != NULL_HANDLE {
        let count = read_count(heap, node);
        out.extend_from_slice(heap.bytes_at(node, OFF_MACS, count * 16));
        total += count;
        node = read_next(heap, node);
    }
    total
}

/// Checked [`gather`]: the node chain lives in untrusted memory, so its
/// `next` pointers and `count` fields are attacker-writable. Returns
/// `None` — which callers surface as an integrity violation — when a node
/// pointer does not address readable memory, a count field points past
/// its chunk, or the walk exceeds `max_macs` MACs (cycle / inflated
/// counts), instead of panicking or looping forever.
pub fn try_gather(
    heap: &UntrustedHeap,
    head: Handle,
    out: &mut Vec<u8>,
    max_macs: usize,
) -> Option<usize> {
    let mut node = head;
    let mut total = 0usize;
    let mut nodes = 0usize;
    while node != NULL_HANDLE {
        nodes += 1;
        if nodes > max_macs.saturating_add(1) {
            return None;
        }
        let count =
            u32::from_le_bytes(heap.try_bytes_at(node, OFF_COUNT, 4)?.try_into().expect("4 bytes"))
                as usize;
        if total.saturating_add(count) > max_macs {
            return None;
        }
        out.extend_from_slice(heap.try_bytes_at(node, OFF_MACS, count * 16)?);
        total += count;
        node = heap.try_read_u64_at(node, OFF_NEXT)?;
    }
    Some(total)
}

/// Streaming [`try_gather`]: walks the chain with the same corruption
/// bounds but hands each node's contiguous MAC slab to `absorb` instead
/// of copying into a buffer. Set-hash verification feeds the slabs
/// straight into a streaming CMAC, so the per-verify gather `Vec` from
/// the two-pass design disappears entirely.
pub fn try_absorb(
    heap: &UntrustedHeap,
    head: Handle,
    max_macs: usize,
    absorb: &mut dyn FnMut(&[u8]),
) -> Option<usize> {
    let mut node = head;
    let mut total = 0usize;
    let mut nodes = 0usize;
    while node != NULL_HANDLE {
        nodes += 1;
        if nodes > max_macs.saturating_add(1) {
            return None;
        }
        let count =
            u32::from_le_bytes(heap.try_bytes_at(node, OFF_COUNT, 4)?.try_into().expect("4 bytes"))
                as usize;
        if total.saturating_add(count) > max_macs {
            return None;
        }
        absorb(heap.try_bytes_at(node, OFF_MACS, count * 16)?);
        total += count;
        node = heap.try_read_u64_at(node, OFF_NEXT)?;
    }
    Some(total)
}

/// Total number of MACs in the chain.
pub fn len(heap: &UntrustedHeap, head: Handle) -> usize {
    let mut node = head;
    let mut total = 0;
    while node != NULL_HANDLE {
        total += read_count(heap, node);
        node = read_next(heap, node);
    }
    total
}

/// Checked [`len`], bounded like [`try_gather`].
pub fn try_len(heap: &UntrustedHeap, head: Handle, max_macs: usize) -> Option<usize> {
    let mut node = head;
    let mut total = 0usize;
    let mut nodes = 0usize;
    while node != NULL_HANDLE {
        nodes += 1;
        if nodes > max_macs.saturating_add(1) {
            return None;
        }
        let count =
            u32::from_le_bytes(heap.try_bytes_at(node, OFF_COUNT, 4)?.try_into().expect("4 bytes"))
                as usize;
        total = total.saturating_add(count);
        if total > max_macs {
            return None;
        }
        node = heap.try_read_u64_at(node, OFF_NEXT)?;
    }
    Some(total)
}

/// Inserts `mac` at logical position 0 (new chain head), cascading
/// overflow down the node chain. Updates `head` if a first node had to be
/// allocated.
pub fn insert_front(heap: &mut UntrustedHeap, head: &mut Handle, mac: &Tag128, capacity: usize) {
    if *head == NULL_HANDLE {
        let node = heap.alloc(node_len(capacity));
        write_count(heap, node, 1);
        write_mac(heap, node, 0, mac);
        *head = node;
        return;
    }
    let mut carry = *mac;
    let mut node = *head;
    loop {
        let count = read_count(heap, node);
        // Shift the node's MACs right by one slot (dropping the last when
        // full) and place the carry at slot 0.
        let keep = count.min(capacity - 1);
        let overflow =
            if count == capacity { Some(read_mac(heap, node, capacity - 1)) } else { None };
        // memmove within the node.
        heap.bytes_at_mut(node, OFF_MACS, (keep + 1) * 16).copy_within(0..keep * 16, 16);
        write_mac(heap, node, 0, &carry);
        match overflow {
            Some(evicted) => {
                carry = evicted;
                let next = read_next(heap, node);
                if next == NULL_HANDLE {
                    let fresh = heap.alloc(node_len(capacity));
                    write_count(heap, fresh, 1);
                    write_mac(heap, fresh, 0, &carry);
                    write_next(heap, node, fresh);
                    return;
                }
                node = next;
            }
            None => {
                write_count(heap, node, count + 1);
                return;
            }
        }
    }
}

/// Appends `mac` at the logical end of the chain (snapshot restore, which
/// replays entries in original chain order).
pub fn insert_back(heap: &mut UntrustedHeap, head: &mut Handle, mac: &Tag128, capacity: usize) {
    if *head == NULL_HANDLE {
        let node = heap.alloc(node_len(capacity));
        write_count(heap, node, 1);
        write_mac(heap, node, 0, mac);
        *head = node;
        return;
    }
    let mut node = *head;
    loop {
        let next = read_next(heap, node);
        if next == NULL_HANDLE {
            break;
        }
        node = next;
    }
    let count = read_count(heap, node);
    if count < capacity {
        write_mac(heap, node, count, mac);
        write_count(heap, node, count + 1);
    } else {
        let fresh = heap.alloc(node_len(capacity));
        write_count(heap, fresh, 1);
        write_mac(heap, fresh, 0, mac);
        write_next(heap, node, fresh);
    }
}

/// Overwrites the MAC at logical position `idx`.
///
/// # Panics
///
/// Panics if `idx` is out of range — a store invariant violation.
pub fn set_at(heap: &mut UntrustedHeap, head: Handle, mut idx: usize, mac: &Tag128) {
    let mut node = head;
    loop {
        assert_ne!(node, NULL_HANDLE, "MAC chain shorter than index");
        let count = read_count(heap, node);
        if idx < count {
            write_mac(heap, node, idx, mac);
            return;
        }
        idx -= count;
        node = read_next(heap, node);
    }
}

/// Reads the MAC at logical position `idx`.
pub fn get_at(heap: &UntrustedHeap, head: Handle, mut idx: usize) -> Tag128 {
    let mut node = head;
    loop {
        assert_ne!(node, NULL_HANDLE, "MAC chain shorter than index");
        let count = read_count(heap, node);
        if idx < count {
            return read_mac(heap, node, idx);
        }
        idx -= count;
        node = read_next(heap, node);
    }
}

/// Checked [`get_at`], bounded like [`try_gather`]: `None` when the chain
/// is shorter than `idx`, structurally corrupt, or longer than `max_macs`.
pub fn try_get_at(
    heap: &UntrustedHeap,
    head: Handle,
    mut idx: usize,
    max_macs: usize,
) -> Option<Tag128> {
    let mut node = head;
    let mut nodes = 0usize;
    while node != NULL_HANDLE {
        nodes += 1;
        if nodes > max_macs.saturating_add(1) {
            return None;
        }
        let count =
            u32::from_le_bytes(heap.try_bytes_at(node, OFF_COUNT, 4)?.try_into().expect("4 bytes"))
                as usize;
        if idx < count {
            return heap
                .try_bytes_at(node, OFF_MACS + idx * 16, 16)
                .map(|b| b.try_into().expect("16 bytes"));
        }
        idx -= count;
        node = heap.try_read_u64_at(node, OFF_NEXT)?;
    }
    None
}

/// Removes the MAC at logical position `idx`, pulling trailing MACs
/// forward across nodes to keep all non-tail nodes full. Frees and unlinks
/// nodes that become empty; updates `head` when the first node is freed.
pub fn remove_at(heap: &mut UntrustedHeap, head: &mut Handle, mut idx: usize, capacity: usize) {
    // Locate the node containing idx, remembering the path for unlinking.
    let mut node = *head;
    let mut prev: Handle = NULL_HANDLE;
    loop {
        assert_ne!(node, NULL_HANDLE, "MAC chain shorter than index");
        let count = read_count(heap, node);
        if idx < count {
            break;
        }
        idx -= count;
        prev = node;
        node = read_next(heap, node);
    }

    // Shift left within the node to close the hole.
    let count = read_count(heap, node);
    heap.bytes_at_mut(node, OFF_MACS, count * 16).copy_within((idx + 1) * 16.., idx * 16);

    // Pull the head MAC of each subsequent node into the freed tail slot.
    let mut cur = node;
    let mut cur_count = count;
    loop {
        let next = read_next(heap, cur);
        if next == NULL_HANDLE {
            write_count(heap, cur, cur_count - 1);
            if cur_count - 1 == 0 {
                // Free the emptied tail node.
                if cur == *head {
                    *head = NULL_HANDLE;
                } else if cur == node {
                    write_next(heap, prev, NULL_HANDLE);
                } else {
                    // `cur` trails `node`; find its predecessor by walking.
                    let mut p = node;
                    while read_next(heap, p) != cur {
                        p = read_next(heap, p);
                    }
                    write_next(heap, p, NULL_HANDLE);
                }
                heap.free(cur, node_len(capacity));
            }
            return;
        }
        let next_count = read_count(heap, next);
        debug_assert!(next_count > 0, "non-tail nodes are never empty");
        let pulled = read_mac(heap, next, 0);
        write_mac(heap, cur, cur_count - 1, &pulled);
        // Shift the next node left by one.
        heap.bytes_at_mut(next, OFF_MACS, next_count * 16).copy_within(16.., 0);
        cur = next;
        cur_count = next_count;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::AllocMode;
    use sgx_sim::enclave::EnclaveBuilder;

    fn heap() -> UntrustedHeap {
        UntrustedHeap::new(
            EnclaveBuilder::new("macbucket-test").build(),
            AllocMode::Pooled { granularity: 1 << 20 },
        )
    }

    fn mac(i: u8) -> Tag128 {
        [i; 16]
    }

    fn collect(heap: &UntrustedHeap, head: Handle) -> Vec<u8> {
        let mut out = Vec::new();
        gather(heap, head, &mut out);
        out.chunks(16).map(|c| c[0]).collect()
    }

    #[test]
    fn insert_front_orders_like_a_stack() {
        let mut h = heap();
        let mut head = NULL_HANDLE;
        for i in 1..=5 {
            insert_front(&mut h, &mut head, &mac(i), 30);
        }
        assert_eq!(collect(&h, head), vec![5, 4, 3, 2, 1]);
        assert_eq!(len(&h, head), 5);
    }

    #[test]
    fn overflow_cascades_to_chained_nodes() {
        let mut h = heap();
        let mut head = NULL_HANDLE;
        // Capacity 3: inserting 8 MACs spans 3 nodes.
        for i in 1..=8 {
            insert_front(&mut h, &mut head, &mac(i), 3);
        }
        assert_eq!(collect(&h, head), vec![8, 7, 6, 5, 4, 3, 2, 1]);
        assert_eq!(len(&h, head), 8);
    }

    #[test]
    fn set_and_get_by_logical_index() {
        let mut h = heap();
        let mut head = NULL_HANDLE;
        for i in 1..=7 {
            insert_front(&mut h, &mut head, &mac(i), 3);
        }
        // Order is 7..1; position 4 holds mac(3).
        assert_eq!(get_at(&h, head, 4), mac(3));
        set_at(&mut h, head, 4, &mac(0xaa));
        assert_eq!(collect(&h, head), vec![7, 6, 5, 4, 0xaa, 2, 1]);
    }

    #[test]
    fn remove_middle_keeps_nodes_full() {
        let mut h = heap();
        let mut head = NULL_HANDLE;
        for i in 1..=7 {
            insert_front(&mut h, &mut head, &mac(i), 3);
        }
        // [7,6,5 | 4,3,2 | 1]; remove index 1 (mac 6).
        remove_at(&mut h, &mut head, 1, 3);
        assert_eq!(collect(&h, head), vec![7, 5, 4, 3, 2, 1]);
        // First node must have been refilled to capacity 3.
        assert_eq!(read_count(&h, head), 3);
    }

    #[test]
    fn remove_frees_emptied_tail() {
        let mut h = heap();
        let mut head = NULL_HANDLE;
        for i in 1..=4 {
            insert_front(&mut h, &mut head, &mac(i), 3);
        }
        // [4,3,2 | 1]; removing any element should leave one node of 3.
        remove_at(&mut h, &mut head, 3, 3);
        assert_eq!(collect(&h, head), vec![4, 3, 2]);
        let live_before = h.live_bytes();
        // Removing down to empty frees the head node too.
        remove_at(&mut h, &mut head, 0, 3);
        remove_at(&mut h, &mut head, 0, 3);
        remove_at(&mut h, &mut head, 0, 3);
        assert_eq!(head, NULL_HANDLE);
        assert!(h.live_bytes() < live_before);
    }

    #[test]
    fn remove_only_element() {
        let mut h = heap();
        let mut head = NULL_HANDLE;
        insert_front(&mut h, &mut head, &mac(9), 30);
        remove_at(&mut h, &mut head, 0, 30);
        assert_eq!(head, NULL_HANDLE);
        assert_eq!(len(&h, head), 0);
    }

    #[test]
    fn insert_back_appends_in_order() {
        let mut h = heap();
        let mut head = NULL_HANDLE;
        for i in 1..=8 {
            insert_back(&mut h, &mut head, &mac(i), 3);
        }
        assert_eq!(collect(&h, head), vec![1, 2, 3, 4, 5, 6, 7, 8]);
        assert_eq!(len(&h, head), 8);
    }

    #[test]
    fn insert_back_equals_reversed_insert_front() {
        let mut back = heap();
        let mut front = heap();
        let mut back_head = NULL_HANDLE;
        let mut front_head = NULL_HANDLE;
        for i in 1..=10 {
            insert_back(&mut back, &mut back_head, &mac(i), 4);
            insert_front(&mut front, &mut front_head, &mac(11 - i), 4);
        }
        assert_eq!(collect(&back, back_head), collect(&front, front_head));
    }

    #[test]
    fn mirror_of_reference_vector_under_random_ops() {
        let mut h = heap();
        let mut head = NULL_HANDLE;
        let mut reference: Vec<Tag128> = Vec::new();
        let mut seed = 12345u64;
        let mut rng = move || {
            seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (seed >> 33) as usize
        };
        for step in 0u8..200 {
            let op = rng() % 3;
            if op == 0 || reference.is_empty() {
                let m = mac(step);
                insert_front(&mut h, &mut head, &m, 4);
                reference.insert(0, m);
            } else if op == 1 {
                let idx = rng() % reference.len();
                let m = mac(step ^ 0x80);
                set_at(&mut h, head, idx, &m);
                reference[idx] = m;
            } else {
                let idx = rng() % reference.len();
                remove_at(&mut h, &mut head, idx, 4);
                reference.remove(idx);
            }
            let mut out = Vec::new();
            gather(&h, head, &mut out);
            let got: Vec<Tag128> = out.chunks(16).map(|c| c.try_into().unwrap()).collect();
            assert_eq!(got, reference, "divergence at step {step}");
        }
    }
}
