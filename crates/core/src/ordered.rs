//! Opt-in ordered key index: range queries over a hash-based store.
//!
//! The paper's §7 names range queries as ShieldStore's main functional
//! limitation and future work: a hash index cannot enumerate keys in
//! order, and grafting a tree index onto the untrusted region would
//! require redesigning the integrity metadata (the HardIDX line of work).
//!
//! This module implements the pragmatic middle ground: an *enclave-
//! resident* ordered index of plaintext keys (per shard, a `BTreeSet`).
//! Range queries become an ordered walk of the index followed by normal
//! verified `get`s, so confidentiality and integrity of values are
//! unchanged — the index itself never leaves the enclave.
//!
//! The trade-off is exactly why the paper postponed it: the index keeps
//! every key inside the enclave, so EPC consumption grows with the key
//! count (~key bytes + B-tree overhead) instead of staying constant. The
//! index memory is *accounted* (see [`crate::shard::Shard::index_bytes`])
//! so deployments can check it against their EPC budget; metering every
//! B-tree node access through the EPC model would require an intrusive
//! allocator and is left out — the accounting makes the cost visible,
//! which is the decision-relevant part.
//!
//! Enable with [`crate::Config::with_ordered_index`]. Disabled, the store
//! behaves exactly as the paper's (no index is maintained at all).

use std::collections::BTreeSet;
use std::ops::Bound;

/// An ordered index over one shard's plaintext keys.
#[derive(Debug, Default)]
pub struct OrderedIndex {
    keys: BTreeSet<Vec<u8>>,
    bytes: usize,
}

/// Approximate enclave overhead per index entry beyond the key bytes
/// (B-tree node amortization + Vec header).
const PER_ENTRY_OVERHEAD: usize = 48;

impl OrderedIndex {
    /// Creates an empty index.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records `key` (idempotent).
    pub fn insert(&mut self, key: &[u8]) {
        if self.keys.insert(key.to_vec()) {
            self.bytes += key.len() + PER_ENTRY_OVERHEAD;
        }
    }

    /// Forgets `key`.
    pub fn remove(&mut self, key: &[u8]) {
        if self.keys.remove(key) {
            self.bytes -= key.len() + PER_ENTRY_OVERHEAD;
        }
    }

    /// Number of indexed keys.
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// True when no keys are indexed.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// Approximate enclave bytes consumed by the index.
    pub fn approx_bytes(&self) -> usize {
        self.bytes
    }

    /// Keys in `[start, end)`, in order, up to `limit`.
    pub fn range(&self, start: &[u8], end: &[u8], limit: usize) -> Vec<Vec<u8>> {
        self.keys
            .range::<[u8], _>((Bound::Included(start), Bound::Excluded(end)))
            .take(limit)
            .cloned()
            .collect()
    }

    /// Keys with the given prefix, in order, up to `limit`.
    pub fn prefix(&self, prefix: &[u8], limit: usize) -> Vec<Vec<u8>> {
        self.keys
            .range::<[u8], _>((Bound::Included(prefix), Bound::Unbounded))
            .take_while(|k| k.starts_with(prefix))
            .take(limit)
            .cloned()
            .collect()
    }

    /// Iterates every key in order (snapshot rebuilds).
    pub fn iter(&self) -> impl Iterator<Item = &Vec<u8>> {
        self.keys.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_remove_tracks_bytes() {
        let mut idx = OrderedIndex::new();
        assert!(idx.is_empty());
        idx.insert(b"alpha");
        idx.insert(b"alpha"); // idempotent
        idx.insert(b"beta");
        assert_eq!(idx.len(), 2);
        let bytes = idx.approx_bytes();
        assert_eq!(bytes, 5 + 4 + 2 * PER_ENTRY_OVERHEAD);
        idx.remove(b"alpha");
        idx.remove(b"alpha"); // idempotent
        assert_eq!(idx.len(), 1);
        assert!(idx.approx_bytes() < bytes);
    }

    #[test]
    fn range_is_ordered_half_open() {
        let mut idx = OrderedIndex::new();
        for k in ["a", "b", "c", "d", "e"] {
            idx.insert(k.as_bytes());
        }
        let got = idx.range(b"b", b"e", 100);
        assert_eq!(got, vec![b"b".to_vec(), b"c".to_vec(), b"d".to_vec()]);
        assert_eq!(idx.range(b"b", b"e", 2).len(), 2);
        assert!(idx.range(b"x", b"z", 10).is_empty());
    }

    #[test]
    fn prefix_scan() {
        let mut idx = OrderedIndex::new();
        for k in ["user:1", "user:2", "user:30", "visit:1"] {
            idx.insert(k.as_bytes());
        }
        let got = idx.prefix(b"user:", 100);
        assert_eq!(got.len(), 3);
        assert_eq!(got[0], b"user:1");
        assert_eq!(idx.prefix(b"user:", 2).len(), 2);
        assert!(idx.prefix(b"admin:", 10).is_empty());
    }

    #[test]
    fn binary_keys_sort_bytewise() {
        let mut idx = OrderedIndex::new();
        idx.insert(&[0x00, 0xff]);
        idx.insert(&[0x01]);
        idx.insert(&[0x00]);
        let all = idx.range(&[0x00], &[0xff], 10);
        assert_eq!(all, vec![vec![0x00], vec![0x00, 0xff], vec![0x01]]);
    }
}
