//! Snapshot persistency (paper §4.4, Algorithm 1).
//!
//! ShieldStore persists by periodic snapshots. The key observation: the
//! bulk of the data — the entries in untrusted memory — is *already*
//! encrypted and integrity-protected, so a snapshot writes those bytes to
//! storage verbatim; only the small in-enclave metadata (secret keys, MAC
//! hash arrays, counters) must be sealed.
//!
//! Two modes are provided, matching Fig. 19:
//!
//! * **Naive**: request processing stops while the whole store is written.
//! * **Optimized**: each shard's main table is frozen behind an `Arc` and
//!   handed to a background writer thread; incoming writes land in a
//!   temporary table that is merged back once the writer finishes — the
//!   observable behaviour of the paper's `fork()`-based copy-on-write
//!   design without `fork()` (unsound with threads, non-portable).
//!
//! Rollback protection: every snapshot increments a monotonic counter and
//! seals its value into the metadata; restore rejects snapshots older than
//! the counter (paper's defense via SGX monotonic counters).

use crate::config::Config;
use crate::entry;
use crate::error::{Error, Result};
use crate::shard::StoreKeys;
use crate::store::ShieldStore;
use crate::table::TableCtx;
use sgx_sim::counter::PersistentCounter;
use sgx_sim::enclave::Enclave;
use sgx_sim::seal;
use sgx_sim::storage::{OpenMode, RealFs, StorageFs};
use std::io::{BufReader, BufWriter, Read, Write};
use std::path::{Path, PathBuf};
use std::sync::Arc;

// Format v2 ("SSSNAP02"): five sealed raw keys (the fifth is the
// tenant-KDF master) and tenant/expiry-bearing entry headers. A v1
// snapshot fails the magic check and must be discarded — its entries
// predate per-tenant sealing and cannot be re-keyed offline.
const MAGIC: &[u8; 8] = b"SSSNAP02";

// Upper bounds on length fields read from the (untrusted) snapshot file.
// A corrupted or hostile length must fail the restore with an error, not
// drive a multi-gigabyte allocation.
/// Sealed metadata blob: keys + per-shard MAC hash arrays.
const MAX_SEALED_LEN: usize = 1 << 24;
/// One shard's exported MAC hash array.
const MAX_MAC_ARRAY_LEN: usize = 1 << 24;
/// One serialized entry (header + key + value ciphertext).
const MAX_ENTRY_LEN: usize = 1 << 26;

fn write_u32(w: &mut impl Write, v: u32) -> std::io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

fn write_u64(w: &mut impl Write, v: u64) -> std::io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

fn read_u32(r: &mut impl Read) -> std::io::Result<u32> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b)?;
    Ok(u32::from_le_bytes(b))
}

fn read_u64(r: &mut impl Read) -> std::io::Result<u64> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(u64::from_le_bytes(b))
}

fn read_vec(r: &mut impl Read, len: usize, limit: usize) -> Result<Vec<u8>> {
    if len > limit {
        return Err(Error::Persistence(format!("snapshot field of {len} bytes exceeds limit")));
    }
    let mut v = vec![0u8; len];
    r.read_exact(&mut v).map_err(Error::from)?;
    Ok(v)
}

/// Reads the monotonic-counter value a snapshot file claims in its
/// header. The claim is untrusted until [`ShieldStore::restore`] checks
/// it against the sealed metadata; recovery only uses it to select which
/// write-ahead-log generation must accompany the snapshot, and a lie
/// surfaces as a rollback error there.
pub(crate) fn snapshot_counter(path: &Path) -> Result<u64> {
    let file = std::fs::File::open(path)?;
    let mut r = BufReader::new(file);
    let mut magic = [0u8; 8];
    r.read_exact(&mut magic).map_err(Error::from)?;
    if &magic != MAGIC {
        return Err(Error::Persistence("bad snapshot magic".into()));
    }
    read_u64(&mut r).map_err(Error::from)
}

/// Sealed per-snapshot metadata (serialized, then sealed as one blob).
struct Metadata {
    counter: u64,
    raw_keys: [[u8; 16]; 5],
    /// Exported MAC hash arrays, one per shard.
    mac_arrays: Vec<Vec<u8>>,
}

impl Metadata {
    fn serialize(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(&self.counter.to_le_bytes());
        for k in &self.raw_keys {
            out.extend_from_slice(k);
        }
        out.extend_from_slice(&(self.mac_arrays.len() as u32).to_le_bytes());
        for arr in &self.mac_arrays {
            out.extend_from_slice(&(arr.len() as u32).to_le_bytes());
            out.extend_from_slice(arr);
        }
        out
    }

    fn deserialize(bytes: &[u8]) -> Result<Self> {
        let mut r = bytes;
        let counter = read_u64(&mut r)?;
        let mut raw_keys = [[0u8; 16]; 5];
        for k in raw_keys.iter_mut() {
            r.read_exact(k).map_err(Error::from)?;
        }
        let n = read_u32(&mut r)? as usize;
        let mut mac_arrays = Vec::with_capacity(n);
        for _ in 0..n {
            let len = read_u32(&mut r)? as usize;
            mac_arrays.push(read_vec(&mut r, len, MAX_MAC_ARRAY_LEN)?);
        }
        Ok(Self { counter, raw_keys, mac_arrays })
    }
}

/// Serializes one frozen table's entries: `(bucket, entry bytes)` pairs
/// with the chain pointer zeroed (it is rebuilt on restore).
fn write_table(w: &mut impl Write, ctx: &TableCtx) -> std::io::Result<()> {
    write_u64(w, ctx.count as u64)?;
    let mut failed = None;
    ctx.for_each_entry(|bucket, handle| {
        if failed.is_some() {
            return;
        }
        let header = ctx.header(handle);
        let bytes = ctx.entry_bytes(handle);
        let r = (|| {
            write_u32(w, bucket as u32)?;
            write_u32(w, bytes.len() as u32)?;
            // Zero the chain pointer in the output.
            w.write_all(&[0u8; 8])?;
            w.write_all(&bytes[8..])?;
            let _ = header;
            Ok::<(), std::io::Error>(())
        })();
        if let Err(e) = r {
            failed = Some(e);
        }
    });
    match failed {
        Some(e) => Err(e),
        None => Ok(()),
    }
}

/// Best-effort fsync of `path`'s parent directory so the rename that
/// published a snapshot survives power loss.
fn sync_parent_dir(fs: &dyn StorageFs, path: &Path) {
    if let Some(parent) = path.parent() {
        let dir = if parent.as_os_str().is_empty() { Path::new(".") } else { parent };
        let _ = fs.sync_dir(dir);
    }
}

/// Reads the calling thread's consumed CPU time from procfs (Linux).
/// Returns 0 where unavailable; resolution is one scheduler tick (10 ms).
fn thread_cpu_ns() -> u64 {
    let Ok(stat) = std::fs::read_to_string("/proc/thread-self/stat") else {
        return 0;
    };
    // Fields after the parenthesized command name; utime and stime are
    // fields 14 and 15 of the full line (1-indexed).
    let Some(after_comm) = stat.rsplit_once(')').map(|(_, rest)| rest) else {
        return 0;
    };
    let fields: Vec<&str> = after_comm.split_whitespace().collect();
    // after_comm starts at field 3 (state), so utime/stime are at indices
    // 11 and 12 here.
    let ticks: u64 = fields.get(11).and_then(|s| s.parse::<u64>().ok()).unwrap_or(0)
        + fields.get(12).and_then(|s| s.parse::<u64>().ok()).unwrap_or(0);
    // USER_HZ is 100 on every mainstream Linux configuration.
    ticks * 10_000_000
}

/// A handle to an in-progress optimized snapshot.
///
/// Dropping the handle without calling [`SnapshotJob::finish`] leaves the
/// store serving from its temporary tables; `finish` must be called to
/// merge them back.
pub struct SnapshotJob<'a> {
    store: &'a ShieldStore,
    writer: Option<std::thread::JoinHandle<Result<()>>>,
    writer_cpu_ns: Arc<std::sync::atomic::AtomicU64>,
    /// Snapshot generation being written; WAL rotation commits against it
    /// once the writer's rename is confirmed durable.
    generation: u64,
    /// Destination path, recorded for the scrubber once durable.
    path: PathBuf,
}

impl<'a> SnapshotJob<'a> {
    /// True once the background writer has finished writing the snapshot
    /// file (the merge still requires [`SnapshotJob::finish`]).
    pub fn is_done(&self) -> bool {
        self.writer.as_ref().map(|w| w.is_finished()).unwrap_or(true)
    }

    /// CPU time the background writer consumed (valid once it finished).
    ///
    /// Single-core benchmark hosts cannot physically overlap the writer
    /// with request processing the way the paper's spare core does;
    /// harnesses subtract this from measured wall time to model the
    /// writer running on its own core.
    pub fn writer_cpu(&self) -> std::time::Duration {
        std::time::Duration::from_nanos(
            self.writer_cpu_ns.load(std::sync::atomic::Ordering::Relaxed),
        )
    }

    /// Waits for the writer, then merges the temporary tables back into
    /// the main tables. Returns the writer's consumed CPU time.
    ///
    /// Only after the writer confirms the snapshot's durable rename does
    /// the WAL retire the pre-snapshot log generation
    /// ([`crate::wal::Wal::rotate_commit`]); a writer error leaves the
    /// old generation pinned, so every acknowledged write stays
    /// recoverable from the previous snapshot plus the retained logs.
    pub fn finish(mut self) -> Result<std::time::Duration> {
        if let Some(writer) = self.writer.take() {
            writer.join().map_err(|_| Error::Persistence("snapshot writer panicked".into()))??;
        }
        for i in 0..self.store.num_shards() {
            self.store.with_shard(i, |shard| shard.unfreeze())?;
        }
        // Temp-table merges bypass quota metering; re-derive per-tenant
        // usage from the merged tables.
        self.store.recount_usage();
        if let Some(wal) = self.store.wal_ref() {
            wal.rotate_commit(self.generation)?;
        }
        self.store.note_snapshot(&self.path);
        Ok(self.writer_cpu())
    }
}

impl ShieldStore {
    /// Writes a snapshot, blocking all request processing until it is on
    /// disk — the *naive* persistency of Fig. 19.
    pub fn snapshot_blocking(
        &self,
        path: impl AsRef<Path>,
        counter: &PersistentCounter,
    ) -> Result<()> {
        // Hold every shard lock for the duration: requests stall.
        let mut guards: Vec<_> = self.shards().iter().map(|s| s.lock()).collect();
        let count = counter.increment().map_err(Error::from)?;
        // Begin rotation before the snapshot is written: the old
        // generation's log and pin segment are retained until the rename
        // below is durable, so a crash or write failure at any point in
        // between recovers from the old snapshot plus both log segments.
        if let Some(wal) = self.wal_ref() {
            wal.rotate_begin(count)?;
        }

        let metadata = Metadata {
            counter: count,
            raw_keys: self.keys().raw,
            mac_arrays: guards
                .iter()
                .map(|g| g.main_table().expect("not snapshotting").macs.export())
                .collect(),
        };
        let sealed = seal::seal(self.enclave(), &metadata.serialize());

        let fs = self.storage_ref();
        let tmp = path.as_ref().with_extension("tmp");
        {
            let file = fs.open(&tmp, OpenMode::Create)?;
            let mut w = BufWriter::new(file);
            w.write_all(MAGIC)?;
            write_u64(&mut w, count)?;
            write_u32(&mut w, guards.len() as u32)?;
            write_u32(&mut w, sealed.len() as u32)?;
            w.write_all(&sealed)?;
            for guard in guards.iter_mut() {
                write_table(&mut w, guard.main_table().expect("not snapshotting"))?;
            }
            w.flush()?;
            // rotate_commit below deletes the only other durable copy of
            // these operations, so the snapshot must actually be on disk,
            // not in the page cache.
            w.get_mut().sync_all()?;
        }
        fs.rename(&tmp, path.as_ref())?;
        sync_parent_dir(fs.as_ref(), path.as_ref());
        // The snapshot is durable and captures everything ever logged
        // (shard locks are still held, so no write can race): retire the
        // superseded log generations.
        if let Some(wal) = self.wal_ref() {
            wal.rotate_commit(count)?;
        }
        self.note_snapshot(path.as_ref());
        Ok(())
    }

    /// Starts an *optimized* snapshot (Algorithm 1): freezes every shard,
    /// spawns a background writer, and returns immediately. Requests keep
    /// flowing (writes go to temporary tables) until
    /// [`SnapshotJob::finish`] merges them back.
    pub fn snapshot_background(
        &self,
        path: impl AsRef<Path>,
        counter: &PersistentCounter,
    ) -> Result<SnapshotJob<'_>> {
        let count = counter.increment().map_err(Error::from)?;
        // Begin rotation *before* freezing: every op logged so far is in
        // the tables about to be frozen, so the snapshot will cover the
        // old generation. Ops that land between rotation and freeze go to
        // both the new log and the snapshot — harmless, because WAL
        // records are idempotent (set/delete of final values) so replay
        // over the snapshot converges. Rotating after the freeze would
        // lose the inverse race: ops logged to the old log but missing
        // from the frozen tables would be dropped with it. The old
        // generation's log and pin segment survive until
        // [`SnapshotJob::finish`] confirms the background writer's rename
        // — a crash or writer failure before that recovers from the old
        // snapshot plus both log segments.
        if let Some(wal) = self.wal_ref() {
            wal.rotate_begin(count)?;
        }
        let mut frozen: Vec<Arc<TableCtx>> = Vec::with_capacity(self.num_shards());
        for i in 0..self.num_shards() {
            frozen.push(self.with_shard(i, |shard| shard.freeze()));
        }
        let metadata = Metadata {
            counter: count,
            raw_keys: self.keys().raw,
            mac_arrays: frozen.iter().map(|f| f.macs.export()).collect(),
        };
        let sealed = seal::seal(self.enclave(), &metadata.serialize());
        let path = path.as_ref().to_path_buf();
        let dest = path.clone();
        let writer_cpu_ns = Arc::new(std::sync::atomic::AtomicU64::new(0));

        let cpu_slot = Arc::clone(&writer_cpu_ns);
        let fs = Arc::clone(self.storage_ref());
        let writer = std::thread::spawn(move || -> Result<()> {
            let cpu_start = thread_cpu_ns();
            let tmp = path.with_extension("tmp");
            {
                let file = fs.open(&tmp, OpenMode::Create)?;
                let mut w = BufWriter::new(file);
                w.write_all(MAGIC)?;
                write_u64(&mut w, count)?;
                write_u32(&mut w, frozen.len() as u32)?;
                write_u32(&mut w, sealed.len() as u32)?;
                w.write_all(&sealed)?;
                for ctx in &frozen {
                    write_table(&mut w, ctx)?;
                }
                w.flush()?;
                // The old log generation is deleted once this snapshot is
                // declared durable: make it actually so.
                w.get_mut().sync_all()?;
            }
            fs.rename(&tmp, &path)?;
            sync_parent_dir(fs.as_ref(), &path);
            // Drop the frozen Arcs so unfreeze() can reclaim the tables.
            drop(frozen);
            cpu_slot.store(
                thread_cpu_ns().saturating_sub(cpu_start),
                std::sync::atomic::Ordering::Relaxed,
            );
            Ok(())
        });

        Ok(SnapshotJob {
            store: self,
            writer: Some(writer),
            writer_cpu_ns,
            generation: count,
            path: dest,
        })
    }

    /// Restores a store from a snapshot written by this enclave identity.
    ///
    /// Verifies: the seal (enclave identity), the monotonic counter (no
    /// rollback), every entry MAC, every entry's shard/bucket placement
    /// (re-derived from the decrypted key — the file's claim is untrusted),
    /// and every bucket-set hash against the sealed MAC hash arrays.
    pub fn restore(
        enclave: Arc<Enclave>,
        config: Config,
        path: impl AsRef<Path>,
        counter: &PersistentCounter,
    ) -> Result<ShieldStore> {
        Self::restore_inner(enclave, config, path.as_ref(), Some(counter), RealFs::shared())
    }

    /// [`ShieldStore::restore`] with the monotonic-counter freshness
    /// check optional. [`ShieldStore::recover`] passes `None` when a
    /// sealed WAL pin exists: the snapshot generation may then
    /// legitimately lag the counter (a crash mid-snapshot leaves the
    /// counter ahead of the last durable snapshot), and freshness is
    /// instead enforced by [`crate::wal::Wal::recover`], which rejects
    /// any generation the pin does not vouch for.
    pub(crate) fn restore_inner(
        enclave: Arc<Enclave>,
        config: Config,
        path: &Path,
        counter: Option<&PersistentCounter>,
        storage: Arc<dyn StorageFs>,
    ) -> Result<ShieldStore> {
        let data = storage.read(path)?;
        let mut r: &[u8] = &data;

        let mut magic = [0u8; 8];
        r.read_exact(&mut magic).map_err(Error::from)?;
        if &magic != MAGIC {
            return Err(Error::Persistence("bad snapshot magic".into()));
        }
        let file_counter = read_u64(&mut r)?;
        let num_shards = read_u32(&mut r)? as usize;
        if num_shards != config.shards {
            return Err(Error::Persistence(format!(
                "snapshot has {num_shards} shards, config expects {}",
                config.shards
            )));
        }
        let sealed_len = read_u32(&mut r)? as usize;
        let sealed = read_vec(&mut r, sealed_len, MAX_SEALED_LEN)?;
        let metadata = Metadata::deserialize(&seal::unseal(&enclave, &sealed)?)?;

        // Rollback protection: the sealed counter must match the file
        // header and — unless a WAL pin is rooting freshness instead —
        // be current with respect to the monotonic counter.
        if metadata.counter != file_counter {
            return Err(Error::Persistence("snapshot counter mismatch".into()));
        }
        if let Some(counter) = counter {
            counter.check_fresh(metadata.counter)?;
        }

        let keys = Arc::new(StoreKeys::from_raw(metadata.raw_keys));
        let store = ShieldStore::with_keys(enclave, config, Arc::clone(&keys), storage)?;

        for (shard_idx, mac_array) in metadata.mac_arrays.iter().enumerate() {
            store.with_shard(shard_idx, |shard| -> Result<()> {
                let count = read_u64(&mut r)? as usize;
                let (mac_bucket, mac_cap) = (shard.config().mac_bucket, shard.config().mac_cap);
                {
                    let ctx = shard.main_table_mut().expect("fresh store");
                    for _ in 0..count {
                        let bucket = read_u32(&mut r)? as usize;
                        let len = read_u32(&mut r)? as usize;
                        if bucket >= ctx.buckets() || len < entry::HEADER_LEN {
                            return Err(Error::Persistence("corrupt snapshot entry".into()));
                        }
                        let bytes = read_vec(&mut r, len, MAX_ENTRY_LEN)?;
                        restore_entry(
                            ctx, &keys, bucket, &bytes, mac_bucket, mac_cap, shard_idx, num_shards,
                        )?;
                    }
                    ctx.macs.import(mac_array)?;
                }
                // Verify every bucket set against the sealed hashes.
                shard.verify_all_sets()?;
                shard.rebuild_index()?;
                Ok(())
            })?;
        }
        // Quota accounting restarts from the physical truth of the
        // restored tables.
        store.recount_usage();
        Ok(store)
    }
}

/// Re-verifies a snapshot file end-to-end without materializing a store:
/// magic, sealed metadata (enclave identity + counter binding), and every
/// entry's structure and MAC under its owner tenant's derived keys. Used
/// by the background scrubber to catch bitrot while the snapshot is cold,
/// long before a recovery would trip over it. Returns the number of bytes
/// verified.
pub(crate) fn verify_snapshot(
    fs: &dyn StorageFs,
    enclave: &Arc<Enclave>,
    path: &Path,
) -> Result<u64> {
    let data = fs.read(path)?;
    let mut r: &[u8] = &data;

    let mut magic = [0u8; 8];
    r.read_exact(&mut magic).map_err(Error::from)?;
    if &magic != MAGIC {
        return Err(Error::Persistence("bad snapshot magic".into()));
    }
    let file_counter = read_u64(&mut r)?;
    let num_shards = read_u32(&mut r)? as usize;
    let sealed_len = read_u32(&mut r)? as usize;
    let sealed = read_vec(&mut r, sealed_len, MAX_SEALED_LEN)?;
    let metadata = Metadata::deserialize(&seal::unseal(enclave, &sealed)?)?;
    if metadata.counter != file_counter {
        return Err(Error::Persistence("snapshot counter mismatch".into()));
    }
    if metadata.mac_arrays.len() != num_shards {
        return Err(Error::Persistence("snapshot shard count mismatch".into()));
    }
    let keys = StoreKeys::from_raw(metadata.raw_keys);
    for _ in 0..num_shards {
        let count = read_u64(&mut r)? as usize;
        for _ in 0..count {
            let _bucket = read_u32(&mut r)? as usize;
            let len = read_u32(&mut r)? as usize;
            if len < entry::HEADER_LEN {
                return Err(Error::Persistence("corrupt snapshot entry".into()));
            }
            let bytes = read_vec(&mut r, len, MAX_ENTRY_LEN)?;
            let header = entry::parse_header(&bytes);
            if header.entry_len() != bytes.len() {
                return Err(Error::Persistence("entry length mismatch".into()));
            }
            let tkeys = keys.tenant_keys(header.tenant);
            let mut plain = Vec::new();
            if !entry::open_entry(
                &tkeys.enc,
                &tkeys.mac,
                &header,
                &bytes[entry::HEADER_LEN..],
                &mut plain,
            ) {
                return Err(Error::IntegrityViolation { bucket: 0 });
            }
        }
    }
    if !r.is_empty() {
        return Err(Error::Persistence("trailing bytes after snapshot tables".into()));
    }
    Ok(data.len() as u64)
}

/// Re-links one serialized entry into a table during restore, verifying
/// its MAC before trusting it.
#[allow(clippy::too_many_arguments)]
fn restore_entry(
    ctx: &mut TableCtx,
    keys: &StoreKeys,
    bucket: usize,
    bytes: &[u8],
    mac_bucket: bool,
    mac_cap: usize,
    shard_idx: usize,
    num_shards: usize,
) -> Result<()> {
    let header = entry::parse_header(bytes);
    if header.entry_len() != bytes.len() {
        return Err(Error::Persistence("entry length mismatch".into()));
    }
    // The per-entry shard/bucket placement in the file is untrusted and —
    // unlike ciphertext, lengths, hint and IV — not covered by the entry
    // MAC (Fig. 5). Trusting the file's claim lets an attacker relocate an
    // entry within its bucket set: when the set's MAC concatenation order
    // happens to be preserved (tail of one chain moved to an empty later
    // bucket), every set hash still verifies and the key becomes a silent
    // miss. Derive the true placement from the decrypted key instead; the
    // fused open verifies the MAC and decrypts in one ciphertext pass.
    // Each entry is sealed under its owner tenant's derived keys; the
    // header's tenant claim routes verification, and a forged claim lands
    // on a key under which the stored tag cannot verify.
    let tkeys = keys.tenant_keys(header.tenant);
    let mut plain = Vec::new();
    if !entry::open_entry(&tkeys.enc, &tkeys.mac, &header, &bytes[entry::HEADER_LEN..], &mut plain)
    {
        return Err(Error::IntegrityViolation { bucket });
    }
    let key = &plain[..header.key_len as usize];
    let hash = keys.index_hash(key);
    let true_shard = (((hash >> 32) * num_shards as u64) >> 32) as usize;
    let true_bucket = (hash % ctx.buckets() as u64) as usize;
    if true_shard != shard_idx || true_bucket != bucket {
        return Err(Error::IntegrityViolation { bucket });
    }
    let handle = ctx.heap.alloc(bytes.len());
    ctx.heap.bytes_mut(handle, bytes.len()).copy_from_slice(bytes);
    // Snapshots are written head-to-tail per bucket; inserting each entry
    // at the tail preserves the original chain order... but head insertion
    // is O(1). Chain order only matters for hash recomputation, and we
    // verify against the *sealed* hashes, so we must reproduce the exact
    // original order: snapshot order is head-first, so head-insertion
    // would reverse it. Insert at tail by remembering the previous tail.
    // Simpler and O(1): entries arrive head-first, so we append at tail
    // via the bucket's last handle, which we track in the header's next
    // pointer chain.
    ctx.heap.write_u64_at(handle, entry::OFF_NEXT, crate::alloc::NULL_HANDLE);
    if ctx.heads[bucket] == crate::alloc::NULL_HANDLE {
        ctx.heads[bucket] = handle;
    } else {
        // Walk to the tail. Restore is a one-time cost; chains are short.
        let mut tail = ctx.heads[bucket];
        loop {
            let next = ctx.heap.read_u64_at(tail, entry::OFF_NEXT);
            if next == crate::alloc::NULL_HANDLE {
                break;
            }
            tail = next;
        }
        ctx.heap.write_u64_at(tail, entry::OFF_NEXT, handle);
    }
    if mac_bucket {
        // Append the MAC at the tail of the MAC chain to mirror the entry
        // chain order: gather, push, rebuild via insert_front in reverse
        // would be O(n^2); instead use set/insert helpers.
        let mut head = ctx.mac_heads[bucket];
        crate::mac_bucket::insert_back(&mut ctx.heap, &mut head, &header.mac, mac_cap);
        ctx.mac_heads[bucket] = head;
    }
    ctx.count += 1;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Config;
    use sgx_sim::enclave::EnclaveBuilder;
    use sgx_sim::vclock;

    fn tmpdir(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("shieldstore-{}-{}", name, std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn new_store(seed: u64) -> ShieldStore {
        let enclave = EnclaveBuilder::new("persist-test").seed(seed).epc_bytes(8 << 20).build();
        ShieldStore::new(enclave, Config::shield_opt().buckets(128).mac_hashes(32).with_shards(2))
            .unwrap()
    }

    #[test]
    fn blocking_snapshot_and_restore() {
        vclock::reset();
        let dir = tmpdir("naive");
        let snap = dir.join("snap.db");
        let ctr_path = dir.join("ctr");
        let _ = std::fs::remove_file(&ctr_path);
        let counter = PersistentCounter::open(&ctr_path).unwrap();

        let store = new_store(7);
        for i in 0..100u32 {
            store.set(format!("k{i}").as_bytes(), format!("value-{i}").as_bytes()).unwrap();
        }
        store.snapshot_blocking(&snap, &counter).unwrap();

        let enclave = EnclaveBuilder::new("persist-test").seed(7).epc_bytes(8 << 20).build();
        let restored = ShieldStore::restore(
            enclave,
            Config::shield_opt().buckets(128).mac_hashes(32).with_shards(2),
            &snap,
            &counter,
        )
        .unwrap();
        assert_eq!(restored.len(), 100);
        for i in 0..100u32 {
            assert_eq!(
                restored.get(format!("k{i}").as_bytes()).unwrap(),
                format!("value-{i}").as_bytes()
            );
        }
        vclock::reset();
    }

    #[test]
    fn background_snapshot_serves_during_write() {
        vclock::reset();
        let dir = tmpdir("opt");
        let snap = dir.join("snap.db");
        let ctr_path = dir.join("ctr");
        let _ = std::fs::remove_file(&ctr_path);
        let counter = PersistentCounter::open(&ctr_path).unwrap();

        let store = new_store(8);
        for i in 0..50u32 {
            store.set(format!("k{i}").as_bytes(), b"before").unwrap();
        }
        let job = store.snapshot_background(&snap, &counter).unwrap();
        // The store keeps serving while the snapshot is written.
        store.set(b"k0", b"after").unwrap();
        store.set(b"new-key", b"new").unwrap();
        assert_eq!(store.get(b"k0").unwrap(), b"after");
        assert_eq!(store.get(b"k1").unwrap(), b"before");
        job.finish().unwrap();
        assert_eq!(store.get(b"k0").unwrap(), b"after");
        assert_eq!(store.get(b"new-key").unwrap(), b"new");

        // The snapshot captured the pre-snapshot state.
        let enclave = EnclaveBuilder::new("persist-test").seed(8).epc_bytes(8 << 20).build();
        let restored = ShieldStore::restore(
            enclave,
            Config::shield_opt().buckets(128).mac_hashes(32).with_shards(2),
            &snap,
            &counter,
        );
        // Restore fails the freshness check only if the counter moved on;
        // here it has not.
        let restored = restored.unwrap();
        assert_eq!(restored.get(b"k0").unwrap(), b"before");
        assert_eq!(restored.get(b"new-key"), Err(Error::KeyNotFound));
        vclock::reset();
    }

    #[test]
    fn failed_background_snapshot_keeps_every_write_recoverable() {
        use crate::config::DurabilityPolicy;
        vclock::reset();
        let dir = tmpdir("wal-failed-bg");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let snap = dir.join("snap.db");
        let counter = PersistentCounter::open(dir.join("ctr")).unwrap();
        let cfg = || {
            Config::shield_opt()
                .buckets(128)
                .mac_hashes(32)
                .with_shards(2)
                .with_durability(DurabilityPolicy::Strict)
        };

        let enclave = EnclaveBuilder::new("persist-test").seed(12).epc_bytes(8 << 20).build();
        let store = ShieldStore::new(enclave, cfg()).unwrap();
        store.attach_wal(dir.join("wal")).unwrap();
        for i in 0..20u32 {
            store.set(format!("k{i}").as_bytes(), b"base").unwrap();
        }
        store.snapshot_blocking(&snap, &counter).unwrap();
        for i in 0..10u32 {
            store.set(format!("m{i}").as_bytes(), b"mid").unwrap();
        }
        // A background snapshot whose writer fails (target directory does
        // not exist): rotation began, but the old generation must survive
        // because the snapshot never landed.
        let job =
            store.snapshot_background(dir.join("no-such-dir").join("s.db"), &counter).unwrap();
        assert!(job.finish().is_err(), "writer into a missing directory must fail");
        // The store keeps serving and logging into the new generation.
        for i in 0..10u32 {
            store.set(format!("t{i}").as_bytes(), b"tail").unwrap();
        }
        store.wal_handle().unwrap().simulate_crash();
        drop(store);

        // Recovery from the last *successful* snapshot replays both
        // retained log generations: nothing acknowledged is lost.
        let enclave = EnclaveBuilder::new("persist-test").seed(12).epc_bytes(8 << 20).build();
        let r = ShieldStore::recover(enclave, cfg(), Some(&snap), &counter, dir.join("wal"))
            .expect("recovery after a failed background snapshot");
        assert_eq!(r.len(), 40);
        for i in 0..20u32 {
            assert_eq!(r.get(format!("k{i}").as_bytes()).unwrap(), b"base");
        }
        for i in 0..10u32 {
            assert_eq!(r.get(format!("m{i}").as_bytes()).unwrap(), b"mid");
            assert_eq!(r.get(format!("t{i}").as_bytes()).unwrap(), b"tail");
        }
        vclock::reset();
    }

    #[test]
    fn rollback_detected() {
        vclock::reset();
        let dir = tmpdir("rollback");
        let ctr_path = dir.join("ctr");
        let _ = std::fs::remove_file(&ctr_path);
        let counter = PersistentCounter::open(&ctr_path).unwrap();

        let store = new_store(9);
        store.set(b"k", b"v1").unwrap();
        let old_snap = dir.join("old.db");
        store.snapshot_blocking(&old_snap, &counter).unwrap();
        store.set(b"k", b"v2").unwrap();
        let new_snap = dir.join("new.db");
        store.snapshot_blocking(&new_snap, &counter).unwrap();

        // Restoring the *old* snapshot must be rejected: counter is ahead.
        let enclave = EnclaveBuilder::new("persist-test").seed(9).epc_bytes(8 << 20).build();
        let r = ShieldStore::restore(
            enclave,
            Config::shield_opt().buckets(128).mac_hashes(32).with_shards(2),
            &old_snap,
            &counter,
        );
        assert!(matches!(r, Err(Error::Rollback)), "got {r:?}");
        vclock::reset();
    }

    #[test]
    fn tampered_snapshot_rejected() {
        vclock::reset();
        let dir = tmpdir("tamper");
        let snap = dir.join("snap.db");
        let ctr_path = dir.join("ctr");
        let _ = std::fs::remove_file(&ctr_path);
        let counter = PersistentCounter::open(&ctr_path).unwrap();

        let store = new_store(10);
        for i in 0..20u32 {
            store.set(format!("k{i}").as_bytes(), b"value").unwrap();
        }
        store.snapshot_blocking(&snap, &counter).unwrap();

        // Flip one byte near the end (an entry's ciphertext).
        let mut bytes = std::fs::read(&snap).unwrap();
        let n = bytes.len();
        bytes[n - 10] ^= 0xff;
        std::fs::write(&snap, &bytes).unwrap();

        let enclave = EnclaveBuilder::new("persist-test").seed(10).epc_bytes(8 << 20).build();
        let r = ShieldStore::restore(
            enclave,
            Config::shield_opt().buckets(128).mac_hashes(32).with_shards(2),
            &snap,
            &counter,
        );
        assert!(
            matches!(r, Err(Error::IntegrityViolation { .. }) | Err(Error::Persistence(_))),
            "got {r:?}"
        );
        vclock::reset();
    }

    #[test]
    fn wrong_enclave_cannot_restore() {
        vclock::reset();
        let dir = tmpdir("identity");
        let snap = dir.join("snap.db");
        let ctr_path = dir.join("ctr");
        let _ = std::fs::remove_file(&ctr_path);
        let counter = PersistentCounter::open(&ctr_path).unwrap();

        let store = new_store(11);
        store.set(b"k", b"v").unwrap();
        store.snapshot_blocking(&snap, &counter).unwrap();

        let other = EnclaveBuilder::new("malicious-enclave").seed(11).epc_bytes(8 << 20).build();
        let r = ShieldStore::restore(
            other,
            Config::shield_opt().buckets(128).mac_hashes(32).with_shards(2),
            &snap,
            &counter,
        );
        assert!(matches!(r, Err(Error::Sim(sgx_sim::SimError::SealVerify))), "got {r:?}");
        vclock::reset();
    }
}
