//! Replication by sealed-log shipping.
//!
//! The write-ahead log ([`crate::wal`]) is already a cryptographically
//! verifiable replication stream: CMAC-chained records rooted in a
//! generation genesis tag, segmented by snapshot rotation, and pinned
//! to a monotonic counter. This module ships that stream to replicas
//! and makes failover rollback-safe. The primary side is a thin reader
//! over its own log files; the replica side re-verifies every byte and
//! replays records through the same apply path recovery uses.
//!
//! # Stream format
//!
//! A subscription starts with a [`ReplHello`] carrying the log keys
//! (sent over the attested session layer only — see
//! `shield_net::repl`), the generation to start from (always genesis:
//! the primary refuses subscribers once rotation has pruned history —
//! snapshot transfer is future work, see DESIGN.md), and the primary's
//! durable watermark. The replica then polls [`ReplBatch`]es: raw
//! on-disk record frames, exactly as sealed, which the replica opens
//! with [`WalCodec::open_record`] against its own chain state. A batch
//! never carries records past the primary's **durable** watermark — a
//! buffered-but-unfsynced op (the `Interval`/`EveryN` window) is
//! invisible to replicas, so a replica ack can never claim more than
//! the primary could survive losing.
//!
//! When the subscriber drains a finished generation the batch instead
//! carries a generation handover (`advance_to`) authenticated by
//! [`WalCodec::rotation_tag`]: the tag binds the *replica's own*
//! verified end position to the successor generation, so a tampered
//! stream cannot rebase a replica early and silently drop a tail.
//!
//! # Watermark protocol
//!
//! A [`Watermark`] is a `(generation, seq)` pair ordered
//! lexicographically. Replicas report their applied watermark back
//! ([`ShieldStore::repl_ack`]); the primary keeps the minimum across
//! subscribers as the log's *retention floor* so rotation never prunes
//! a generation someone is still streaming. [`ShieldStore::flush_wal`]
//! returns the durable watermark, so a client can write, flush, and
//! then wait for a specific replica to reach that exact commit point.
//!
//! # Promotion and fencing
//!
//! [`Replica::promote`] turns a replica into a primary in four steps,
//! each fail-closed:
//!
//! 1. **Pre-flight**: read the primary's sealed pin and verify it is
//!    current against a fresh read of its monotonic counter, carries
//!    the same log keys, and lists the replica's generation. A stale
//!    replica (its generation already pruned) or an already-fenced
//!    directory is rejected here.
//! 2. **Fence**: bump the primary's pin counter twice. The pin can
//!    claim at most `c + 1`, so after the bump no pin the old primary
//!    ever wrote verifies again: recovery from its directory reports
//!    [`Error::Rollback`], and a still-live primary fails closed on
//!    its next commit (the WAL re-reads the counter *file* before
//!    every pin write — the in-memory cache cannot mask the fence).
//! 3. **Catch-up**: verify every pinned segment end-to-end from the
//!    primary's (now frozen) directory, apply the records the stream
//!    had not yet delivered, and copy the verified bytes into the
//!    replica's own log directory.
//! 4. **Adopt**: seal a new pin over the copied segments bound to the
//!    replica's *own* monotonic counter and attach the log to the
//!    store. The first post-promotion commit chains off the shipped
//!    MAC, keeping the log verifiable end-to-end across the handover.
//!
//! Two replicas racing to promote are serialized by the counter
//! itself: [`PersistentCounter::increment`] refuses to clobber a value
//! another instance moved, so the loser's fence — and therefore its
//! promotion — fails closed.

use std::collections::HashMap;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering::SeqCst};
use std::sync::Arc;

use parking_lot::Mutex;
use sgx_sim::storage::{OpenMode, StorageFile, StorageFs};
use shield_crypto::constant_time::ct_eq;

use crate::error::{Error, Result};
use crate::stats::StatsSnapshot;
use crate::store::ShieldStore;
use crate::wal::{self, Segment, Wal, WalCodec, WalOp};

/// A replication stream position: `(generation, seq)`, ordered
/// lexicographically (derive order matters). `generation` is the
/// snapshot generation whose log the position lies in; `seq` the last
/// applied record within it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Default)]
pub struct Watermark {
    /// Snapshot generation (WAL segment) of the position.
    pub generation: u64,
    /// Last applied/committed record sequence number within it.
    pub seq: u64,
}

impl Watermark {
    /// Builds a watermark from a `(generation, seq)` pair.
    pub fn new(generation: u64, seq: u64) -> Self {
        Watermark { generation, seq }
    }
}

impl From<(u64, u64)> for Watermark {
    fn from((generation, seq): (u64, u64)) -> Self {
        Watermark { generation, seq }
    }
}

impl std::fmt::Display for Watermark {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{}", self.generation, self.seq)
    }
}

/// Subscription handshake payload: everything a replica needs to start
/// verifying the sealed stream. Carries the raw log keys — it must
/// only ever travel over the attested, encrypted session layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplHello {
    /// Subscriber id assigned by the primary; quoted in acks.
    pub subscriber: u64,
    /// The log's AES-CTR encryption key.
    pub enc_key: [u8; 16],
    /// The log's CMAC chain key.
    pub mac_key: [u8; 16],
    /// Generation the replica starts streaming from (its chain roots
    /// at this generation's genesis tag).
    pub start_generation: u64,
    /// The primary's durable watermark at subscription time.
    pub durable: Watermark,
}

const HELLO_VERSION: u8 = 1;
const HELLO_LEN: usize = 1 + 8 + 16 + 16 + 8 + 16;

impl ReplHello {
    /// Serializes the hello (versioned, fixed length).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(HELLO_LEN);
        out.push(HELLO_VERSION);
        out.extend_from_slice(&self.subscriber.to_le_bytes());
        out.extend_from_slice(&self.enc_key);
        out.extend_from_slice(&self.mac_key);
        out.extend_from_slice(&self.start_generation.to_le_bytes());
        out.extend_from_slice(&self.durable.generation.to_le_bytes());
        out.extend_from_slice(&self.durable.seq.to_le_bytes());
        out
    }

    /// Decodes a hello; fails closed on any length or version
    /// mismatch.
    pub fn decode(bytes: &[u8]) -> Option<ReplHello> {
        if bytes.len() != HELLO_LEN || bytes[0] != HELLO_VERSION {
            return None;
        }
        let u64_at = |i: usize| u64::from_le_bytes(bytes[i..i + 8].try_into().unwrap());
        let arr_at = |i: usize| -> [u8; 16] { bytes[i..i + 16].try_into().unwrap() };
        Some(ReplHello {
            subscriber: u64_at(1),
            enc_key: arr_at(9),
            mac_key: arr_at(25),
            start_generation: u64_at(41),
            durable: Watermark::new(u64_at(49), u64_at(57)),
        })
    }
}

/// One chunk of the sealed stream: raw on-disk record frames from a
/// single generation, plus the primary's durable watermark and an
/// optional authenticated generation handover.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplBatch {
    /// Generation the frames belong to.
    pub generation: u64,
    /// Sequence number of the first record in `frames`.
    pub start_seq: u64,
    /// Number of complete record frames in `frames`.
    pub count: u32,
    /// Raw length-prefixed sealed records, exactly as on the
    /// primary's disk.
    pub frames: Vec<u8>,
    /// When set, `generation` is finished at the subscriber's position
    /// and the stream continues in this generation.
    pub advance_to: Option<u64>,
    /// [`WalCodec::rotation_tag`] authenticating the handover; all
    /// zeros when `advance_to` is `None`.
    pub advance_tag: [u8; 16],
    /// The primary's durable watermark when the batch was cut. A
    /// replica refuses to apply (and therefore to ack) anything past
    /// it.
    pub durable: Watermark,
}

const BATCH_VERSION: u8 = 1;
const BATCH_HEADER_LEN: usize = 1 + 8 + 8 + 4 + 16 + 1 + 8 + 16 + 4;

impl ReplBatch {
    /// Serializes the batch (versioned header + raw frames).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(BATCH_HEADER_LEN + self.frames.len());
        out.push(BATCH_VERSION);
        out.extend_from_slice(&self.generation.to_le_bytes());
        out.extend_from_slice(&self.start_seq.to_le_bytes());
        out.extend_from_slice(&self.count.to_le_bytes());
        out.extend_from_slice(&self.durable.generation.to_le_bytes());
        out.extend_from_slice(&self.durable.seq.to_le_bytes());
        out.push(self.advance_to.is_some() as u8);
        out.extend_from_slice(&self.advance_to.unwrap_or(0).to_le_bytes());
        out.extend_from_slice(&self.advance_tag);
        out.extend_from_slice(&(self.frames.len() as u32).to_le_bytes());
        out.extend_from_slice(&self.frames);
        out
    }

    /// Decodes a batch; fails closed on any structural mismatch
    /// (version, flag byte, or frame-length accounting).
    pub fn decode(bytes: &[u8]) -> Option<ReplBatch> {
        if bytes.len() < BATCH_HEADER_LEN || bytes[0] != BATCH_VERSION {
            return None;
        }
        let u64_at = |i: usize| u64::from_le_bytes(bytes[i..i + 8].try_into().unwrap());
        let generation = u64_at(1);
        let start_seq = u64_at(9);
        let count = u32::from_le_bytes(bytes[17..21].try_into().unwrap());
        let durable = Watermark::new(u64_at(21), u64_at(29));
        let advance_flag = bytes[37];
        if advance_flag > 1 {
            return None;
        }
        let advance_raw = u64_at(38);
        let advance_tag: [u8; 16] = bytes[46..62].try_into().unwrap();
        let nbytes = u32::from_le_bytes(bytes[62..66].try_into().unwrap()) as usize;
        if bytes.len() != BATCH_HEADER_LEN + nbytes {
            return None;
        }
        Some(ReplBatch {
            generation,
            start_seq,
            count,
            frames: bytes[BATCH_HEADER_LEN..].to_vec(),
            advance_to: (advance_flag == 1).then_some(advance_raw),
            advance_tag,
            durable,
        })
    }
}

/// Primary-side replication bookkeeping: subscriber watermarks (the
/// minimum is the log's retention floor) and shipping counters for
/// the stats gauges. Lives inside every [`ShieldStore`]; inert until
/// the first subscription.
#[derive(Default)]
pub(crate) struct PrimaryState {
    subscribers: Mutex<HashMap<u64, Watermark>>,
    next_id: AtomicU64,
    batches_shipped: AtomicU64,
    bytes_shipped: AtomicU64,
}

impl PrimaryState {
    /// Oldest generation any subscriber still needs, or `u64::MAX`
    /// with no subscribers.
    fn retention_floor(subs: &HashMap<u64, Watermark>) -> u64 {
        subs.values().map(|w| w.generation).min().unwrap_or(u64::MAX)
    }

    /// Fills the replication gauges of a stats snapshot from the
    /// primary's perspective (`repl_role` 1 when anyone subscribes).
    pub(crate) fn fill_gauges(&self, snap: &mut StatsSnapshot, durable: Option<(u64, u64)>) {
        snap.repl_segments_shipped = self.batches_shipped.load(SeqCst);
        snap.repl_bytes_shipped = self.bytes_shipped.load(SeqCst);
        let subs = self.subscribers.lock();
        if subs.is_empty() {
            return;
        }
        snap.repl_role = 1;
        snap.repl_subscribers = subs.len() as u64;
        let min = subs.values().min().copied().unwrap_or_default();
        snap.repl_acked_generation = min.generation;
        snap.repl_acked_seq = min.seq;
        if let Some((gen, seq)) = durable {
            if gen == min.generation {
                snap.repl_lag_records = seq.saturating_sub(min.seq);
            }
        }
    }
}

impl ShieldStore {
    fn repl_wal(&self) -> Result<&Wal> {
        self.wal_ref().ok_or_else(|| {
            Error::Persistence("replication requires an attached write-ahead log".into())
        })
    }

    /// Registers a replication subscriber and returns the handshake
    /// payload (log keys included — callers must only send it over an
    /// attested, encrypted session). Fails when no WAL is attached or
    /// when rotation has already pruned the log's genesis: a replica
    /// bootstraps by replaying the *whole* stream, and this store does
    /// not ship snapshots (documented limitation — the subscriber's
    /// retention floor prevents pruning from then on).
    pub fn repl_subscribe(&self) -> Result<ReplHello> {
        let wal = self.repl_wal()?;
        let ((enc_key, mac_key), oldest, durable) = wal.repl_hello_parts();
        if oldest != 0 {
            return Err(Error::Persistence(
                "cannot bootstrap a replica: rotation already pruned the log's genesis \
                 (snapshot transfer is not implemented)"
                    .into(),
            ));
        }
        let state = self.repl_state();
        let subscriber = state.next_id.fetch_add(1, SeqCst) + 1;
        let mut subs = state.subscribers.lock();
        subs.insert(subscriber, Watermark::new(oldest, 0));
        let floor = PrimaryState::retention_floor(&subs);
        drop(subs);
        wal.set_retain_floor(floor);
        Ok(ReplHello {
            subscriber,
            enc_key,
            mac_key,
            start_generation: oldest,
            durable: durable.into(),
        })
    }

    /// Cuts a batch of the sealed stream for a subscriber positioned
    /// after `(generation, after_seq)` — see [`Wal::ship_from`] via
    /// the module docs for the exact rules. Stateless with respect to
    /// the subscriber: position comes from the caller, progress from
    /// [`ShieldStore::repl_ack`].
    pub fn repl_batch(
        &self,
        generation: u64,
        after_seq: u64,
        max_bytes: usize,
    ) -> Result<ReplBatch> {
        let batch = self.repl_wal()?.ship_from(generation, after_seq, max_bytes)?;
        if batch.count > 0 || batch.advance_to.is_some() {
            let state = self.repl_state();
            state.batches_shipped.fetch_add(1, SeqCst);
            state.bytes_shipped.fetch_add(batch.frames.len() as u64, SeqCst);
        }
        Ok(batch)
    }

    /// Records a subscriber's applied watermark and refreshes the
    /// log's retention floor. An ack past the durable watermark is the
    /// Interval-durability violation replicas are built never to
    /// commit ([`Replica::apply_batch`] refuses the records first) —
    /// it fails closed here too.
    pub fn repl_ack(&self, subscriber: u64, ack: Watermark) -> Result<()> {
        let wal = self.repl_wal()?;
        let durable: Watermark = wal.durable_watermark().into();
        if ack > durable {
            return Err(Error::Rollback);
        }
        let state = self.repl_state();
        let mut subs = state.subscribers.lock();
        let slot = subs
            .get_mut(&subscriber)
            .ok_or_else(|| Error::Persistence("unknown replication subscriber".into()))?;
        if ack > *slot {
            *slot = ack;
        }
        let floor = PrimaryState::retention_floor(&subs);
        drop(subs);
        wal.set_retain_floor(floor);
        Ok(())
    }

    /// Drops a subscriber, releasing its hold on the retention floor.
    /// Forgotten subscribers pin log history forever (rotation then
    /// fails once [`crate::wal`]'s segment cap fills) — operators must
    /// unsubscribe replicas they retire.
    pub fn repl_unsubscribe(&self, subscriber: u64) -> Result<()> {
        let wal = self.repl_wal()?;
        let state = self.repl_state();
        let mut subs = state.subscribers.lock();
        subs.remove(&subscriber);
        let floor = PrimaryState::retention_floor(&subs);
        drop(subs);
        wal.set_retain_floor(floor);
        Ok(())
    }
}

/// The replica's verified-frame journal: every record that survives
/// chain verification in [`Replica::apply_batch`] is appended, raw and
/// length-prefixed exactly as on the primary's disk, to
/// `wal-<generation>.log` under the journal directory. The journal is a
/// **repair cache**, not a durability root — it carries no pin, is never
/// fsynced, and any write failure silently disables it — but because
/// every byte in it already verified against the CMAC chain, a primary
/// whose scrubber finds a rotted segment can re-fetch the damaged
/// generation from here ([`Replica::serve_frames`]) and re-verify the
/// chain before swap-in.
struct Journal {
    fs: Arc<dyn StorageFs>,
    dir: PathBuf,
    file: Box<dyn StorageFile>,
}

/// Replica-side stream state: verifies batches against its own chain
/// position and replays records into a live (read-only by convention)
/// store through the same apply path recovery uses. The store must be
/// fresh — empty, with no WAL of its own — so its contents are exactly
/// the verified stream.
pub struct Replica {
    store: Arc<ShieldStore>,
    codec: WalCodec,
    enc_key: [u8; 16],
    mac_key: [u8; 16],
    generation: u64,
    seq: u64,
    chain: [u8; 16],
    primary_durable: Watermark,
    journal: Option<Journal>,
}

impl Replica {
    /// Binds a fresh store to a subscription. Fails when the store
    /// already holds data or a WAL — a replica's state must come from
    /// the stream alone.
    pub fn new(store: Arc<ShieldStore>, hello: &ReplHello) -> Result<Replica> {
        if store.wal_ref().is_some() {
            return Err(Error::Persistence(
                "a replica store must not have its own write-ahead log".into(),
            ));
        }
        if !store.is_empty() {
            return Err(Error::Persistence("a replica store must start empty".into()));
        }
        let codec = WalCodec::new(&hello.enc_key, &hello.mac_key);
        let chain = codec.genesis(hello.start_generation);
        Ok(Replica {
            store,
            codec,
            enc_key: hello.enc_key,
            mac_key: hello.mac_key,
            generation: hello.start_generation,
            seq: 0,
            chain,
            primary_durable: hello.durable,
            journal: None,
        })
    }

    /// [`Replica::new`], additionally journaling every verified frame
    /// under `journal_dir` so this replica can later serve segment
    /// repairs back to a primary whose disk rotted (see [`Journal`]).
    /// The directory must not be the replica's future promotion WAL
    /// directory — promotion writes its own files there.
    pub fn with_journal(
        store: Arc<ShieldStore>,
        hello: &ReplHello,
        journal_dir: &Path,
    ) -> Result<Replica> {
        let mut replica = Self::new(store, hello)?;
        let fs = Arc::clone(replica.store.storage_ref());
        fs.create_dir_all(journal_dir)?;
        let file =
            fs.open(&wal::log_path(journal_dir, hello.start_generation), OpenMode::Create)?;
        replica.journal = Some(Journal { fs, dir: journal_dir.to_path_buf(), file });
        Ok(replica)
    }

    /// The replica's applied (and therefore ackable) watermark.
    pub fn watermark(&self) -> Watermark {
        Watermark::new(self.generation, self.seq)
    }

    /// The primary's durable watermark as of the last applied batch —
    /// `watermark() == primary_durable()` means fully caught up.
    pub fn primary_durable(&self) -> Watermark {
        self.primary_durable
    }

    /// The store this replica replays into.
    pub fn store(&self) -> &Arc<ShieldStore> {
        &self.store
    }

    /// Verifies and applies one batch, returning the new watermark.
    /// Every failure is fail-closed *without desyncing the chain*: the
    /// replica's position stays at the last record that verified, so a
    /// clean re-poll from that position recovers. Records are refused
    /// (before MAC verification is even attempted) if they would take
    /// the replica past the batch's claimed durable watermark — the
    /// Interval-durability guarantee that an ack never exceeds what
    /// the primary could survive losing.
    pub fn apply_batch(&mut self, batch: &ReplBatch) -> Result<Watermark> {
        if batch.generation != self.generation {
            return Err(Error::Rollback);
        }
        if batch.count > 0 && batch.start_seq != self.seq + 1 {
            return Err(Error::LogIntegrity { seq: self.seq + 1 });
        }
        let data = &batch.frames;
        let mut off = 0usize;
        for _ in 0..batch.count {
            let fail = Error::LogIntegrity { seq: self.seq + 1 };
            if data.len() - off < 4 {
                return Err(fail);
            }
            let len = u32::from_le_bytes(data[off..off + 4].try_into().unwrap()) as usize;
            if off + 4 + len > data.len() {
                return Err(fail);
            }
            if Watermark::new(self.generation, self.seq + 1) > batch.durable {
                return Err(Error::Rollback);
            }
            let (ops, mac) =
                self.codec.open_record(self.seq + 1, &self.chain, &data[off + 4..off + 4 + len])?;
            for op in ops {
                self.store.apply_replicated(op)?;
            }
            self.seq += 1;
            self.chain = mac;
            // Journal the frame only now that it verified: the journal
            // must never hold a byte the chain does not vouch for. A
            // failed journal write disables journaling (the cache goes
            // away; replication itself is unaffected).
            if let Some(j) = &mut self.journal {
                if j.file.write_all(&data[off..off + 4 + len]).is_err() {
                    self.journal = None;
                }
            }
            off += 4 + len;
        }
        if off != data.len() {
            return Err(Error::LogIntegrity { seq: self.seq + 1 });
        }
        if let Some(next_gen) = batch.advance_to {
            let expect = self.codec.rotation_tag(self.generation, self.seq, &self.chain, next_gen);
            if next_gen <= self.generation || !ct_eq(&expect, &batch.advance_tag) {
                return Err(Error::LogIntegrity { seq: self.seq });
            }
            self.generation = next_gen;
            self.seq = 0;
            self.chain = self.codec.genesis(next_gen);
            // Roll the journal with the stream.
            if let Some(j) = &mut self.journal {
                match j.fs.open(&wal::log_path(&j.dir, next_gen), OpenMode::Create) {
                    Ok(f) => j.file = f,
                    Err(_) => self.journal = None,
                }
            }
        }
        self.primary_durable = self.primary_durable.max(batch.durable);
        let wm = self.watermark();
        debug_assert!(
            wm <= self.primary_durable,
            "replica applied past the primary's durable watermark"
        );
        Ok(wm)
    }

    /// Serves verified frames of generation `gen` back out of the
    /// journal, in [`ReplBatch`] form so the existing segment-transfer
    /// plumbing carries them unchanged: frames after `after_seq`, up to
    /// ~`max_bytes` (always at least one frame when any remain). This is
    /// the donor side of scrub-and-repair — a primary that found `gen`
    /// rotted on its own disk fetches the frames from here and
    /// re-verifies the full CMAC chain before swapping them in
    /// ([`ShieldStore::repair_wal_segment`]). Fails when journaling is
    /// off (or was disabled by a write failure) or the generation was
    /// never journaled.
    pub fn serve_frames(&self, gen: u64, after_seq: u64, max_bytes: usize) -> Result<ReplBatch> {
        let j = self
            .journal
            .as_ref()
            .ok_or_else(|| Error::Persistence("replica journal is not enabled".into()))?;
        let data = j.fs.read(&wal::log_path(&j.dir, gen)).map_err(|_| {
            Error::Persistence(format!("generation {gen} is not in the replica journal"))
        })?;
        let mut off = 0usize;
        let mut seq = 0u64;
        let mut start = data.len();
        let mut end = data.len();
        while off + 4 <= data.len() {
            let len = u32::from_le_bytes(data[off..off + 4].try_into().unwrap()) as usize;
            if off + 4 + len > data.len() {
                // A frame torn by the disabling write failure: serve only
                // the intact prefix.
                break;
            }
            seq += 1;
            if seq == after_seq + 1 {
                start = off;
            }
            if seq > after_seq {
                end = off + 4 + len;
                if end - start >= max_bytes {
                    break;
                }
            }
            off += 4 + len;
        }
        let count = seq.saturating_sub(after_seq).min(u32::MAX as u64) as u32;
        let frames = if start < end { data[start..end].to_vec() } else { Vec::new() };
        Ok(ReplBatch {
            generation: gen,
            start_seq: after_seq + 1,
            count: if frames.is_empty() { 0 } else { count },
            frames,
            advance_to: None,
            advance_tag: [0u8; 16],
            durable: self.primary_durable,
        })
    }

    /// Promotes this replica to primary: fences the old primary
    /// through its monotonic counter, catches up from its (now
    /// frozen) sealed log on shared storage, copies the verified
    /// segments into `own_wal_dir`, and adopts them as the store's own
    /// WAL. Returns the promoted watermark — every write the old
    /// primary durably acked at or below it is readable here. See the
    /// module docs for the full fencing argument; every deviation
    /// (stale replica, stale pin, foreign keys, racing promotion)
    /// fails closed with [`Error::Rollback`].
    pub fn promote(self, primary_wal_dir: &Path, own_wal_dir: &Path) -> Result<Watermark> {
        let enclave = Arc::clone(self.store.enclave());
        let fs = Arc::clone(self.store.storage_ref());
        // Pre-flight on the live pin: refuse — before fencing anything —
        // when this replica's stream position is not one the pin can
        // extend, or the pin is already stale/fenced.
        let (pre, _) = wal::read_pin(&enclave, &fs, primary_wal_dir)?;
        if pre.enc_key != self.enc_key
            || pre.mac_key != self.mac_key
            || !pre.segments.iter().any(|s| s.snap == self.generation)
        {
            return Err(Error::Rollback);
        }
        // Fence, then re-read: the old primary can no longer advance its
        // pin, so catch-up below runs against a frozen log. The two
        // bumps put the counter exactly one or two past the last pin
        // legitimately written before the fence — anything older is a
        // stale pin swapped in underneath us.
        wal::fence(&fs, primary_wal_dir)?;
        let (pin, pcv) = wal::read_pin_unchecked(&enclave, &fs, primary_wal_dir)?;
        if pin.pin_ctr + 2 != pcv && pin.pin_ctr + 1 != pcv {
            return Err(Error::Rollback);
        }
        if pin.enc_key != self.enc_key || pin.mac_key != self.mac_key {
            return Err(Error::Rollback);
        }
        let my_idx =
            pin.segments.iter().position(|s| s.snap == self.generation).ok_or(Error::Rollback)?;
        fs.create_dir_all(own_wal_dir)?;
        let store = Arc::clone(&self.store);
        let mut adopted: Vec<Segment> = Vec::with_capacity(pin.segments.len());
        for (i, seg) in pin.segments.iter().enumerate() {
            // Verify every segment end-to-end (what we copy must be
            // recoverable later); apply only records the stream had
            // not already delivered.
            let applied_up_to = match i.cmp(&my_idx) {
                std::cmp::Ordering::Less => u64::MAX,
                std::cmp::Ordering::Equal => self.seq,
                std::cmp::Ordering::Greater => 0,
            };
            let mut apply = |seq: u64, ops: Vec<WalOp>| -> Result<()> {
                if seq <= applied_up_to {
                    return Ok(());
                }
                for op in ops {
                    store.apply_replicated(op)?;
                }
                Ok(())
            };
            let (seq, chain, verified) =
                wal::verify_segment(fs.as_ref(), primary_wal_dir, &self.codec, seg, &mut apply)?;
            let path = wal::log_path(own_wal_dir, seg.snap);
            let mut f = fs.open(&path, OpenMode::Create)?;
            f.write_all(&verified)?;
            f.sync_all()?;
            adopted.push(Segment { snap: seg.snap, last_seq: seq, last_mac: chain });
        }
        let wm =
            adopted.last().map(|s| Watermark::new(s.snap, s.last_seq)).ok_or(Error::Rollback)?;
        let policy = self.store.config().durability;
        let adopted_wal =
            Wal::adopt(enclave, fs, own_wal_dir, policy, self.enc_key, self.mac_key, adopted)?;
        self.store.install_wal(adopted_wal)?;
        self.store.recount_usage();
        Ok(wm)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{Config, DurabilityPolicy};
    use sgx_sim::counter::PersistentCounter;
    use sgx_sim::enclave::{Enclave, EnclaveBuilder};
    use std::fs;
    use std::path::PathBuf;

    fn tmpdir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("ss-repl-{}-{name}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn enclave(seed: u64) -> Arc<Enclave> {
        EnclaveBuilder::new("repl-test").seed(seed).epc_bytes(8 << 20).build()
    }

    fn config(policy: DurabilityPolicy) -> Config {
        Config::shield_opt().buckets(64).mac_hashes(16).with_shards(2).with_durability(policy)
    }

    fn primary(seed: u64, dir: &Path, policy: DurabilityPolicy) -> Arc<ShieldStore> {
        let store = Arc::new(ShieldStore::new(enclave(seed), config(policy)).unwrap());
        store.attach_wal(dir).unwrap();
        store
    }

    /// A replica runs the same config as its primary — its durability
    /// policy governs the WAL it adopts at promotion.
    fn replica_store(seed: u64) -> Arc<ShieldStore> {
        Arc::new(ShieldStore::new(enclave(seed), config(DurabilityPolicy::Strict)).unwrap())
    }

    /// Pumps the stream until the replica reaches the primary's
    /// durable watermark. Returns the number of batches applied.
    fn catch_up(store: &ShieldStore, replica: &mut Replica, sub: u64) -> usize {
        let mut batches = 0;
        loop {
            let durable: Watermark = store.flush_wal().unwrap().unwrap();
            if replica.watermark() == durable {
                return batches;
            }
            let wm = replica.watermark();
            let batch = store.repl_batch(wm.generation, wm.seq, 1 << 16).unwrap();
            let acked = replica.apply_batch(&batch).unwrap();
            store.repl_ack(sub, acked).unwrap();
            batches += 1;
        }
    }

    #[test]
    fn hello_and_batch_roundtrip() {
        let hello = ReplHello {
            subscriber: 7,
            enc_key: [1; 16],
            mac_key: [2; 16],
            start_generation: 3,
            durable: Watermark::new(3, 9),
        };
        assert_eq!(ReplHello::decode(&hello.encode()), Some(hello.clone()));
        let mut bytes = hello.encode();
        bytes[0] = 9;
        assert_eq!(ReplHello::decode(&bytes), None);
        assert_eq!(ReplHello::decode(&hello.encode()[..10]), None);

        let batch = ReplBatch {
            generation: 1,
            start_seq: 4,
            count: 2,
            frames: vec![5; 96],
            advance_to: Some(6),
            advance_tag: [7; 16],
            durable: Watermark::new(1, 9),
        };
        assert_eq!(ReplBatch::decode(&batch.encode()), Some(batch.clone()));
        let mut bytes = batch.encode();
        bytes.push(0); // trailing garbage
        assert_eq!(ReplBatch::decode(&bytes), None);
        bytes = batch.encode();
        bytes[37] = 2; // invalid flag byte
        assert_eq!(ReplBatch::decode(&bytes), None);
    }

    #[test]
    fn watermark_orders_lexicographically() {
        assert!(Watermark::new(0, 9) < Watermark::new(1, 0));
        assert!(Watermark::new(1, 0) < Watermark::new(1, 1));
        assert_eq!(Watermark::new(2, 3).to_string(), "2:3");
    }

    #[test]
    fn stream_replicates_and_acks_track() {
        let dir = tmpdir("stream");
        let store = primary(31, &dir, DurabilityPolicy::Strict);
        for i in 0..20u32 {
            store.set(format!("k{i}").as_bytes(), format!("v{i}").as_bytes()).unwrap();
        }
        store.delete(b"k0").unwrap();

        let hello = store.repl_subscribe().unwrap();
        let rstore = replica_store(32);
        let mut replica = Replica::new(Arc::clone(&rstore), &hello).unwrap();
        catch_up(&store, &mut replica, hello.subscriber);

        assert_eq!(rstore.len(), 19);
        assert_eq!(rstore.get(b"k5").unwrap(), b"v5");
        assert!(rstore.get(b"k0").is_err());

        // Lag gauges: fully acked, zero lag, role = primary.
        let snap = store.snapshot();
        assert_eq!(snap.repl_role, 1);
        assert_eq!(snap.repl_subscribers, 1);
        assert_eq!(snap.repl_lag_records, 0);
        assert!(snap.repl_segments_shipped > 0);
        assert!(snap.repl_bytes_shipped > 0);
        snap.check_consistent().unwrap();
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn replica_never_sees_buffered_ops_and_over_ack_rejected() {
        let dir = tmpdir("durable-caveat");
        // EveryN(100): writes buffer in enclave memory, nothing durable.
        let store = primary(33, &dir, DurabilityPolicy::EveryN(100));
        let hello = store.repl_subscribe().unwrap();
        store.set(b"buffered", b"x").unwrap();

        // The batch for a caught-up subscriber is empty: the buffered
        // op is not durable, so it must not ship.
        let batch = store.repl_batch(0, 0, 1 << 16).unwrap();
        assert_eq!(batch.count, 0);
        assert_eq!(batch.durable, Watermark::new(0, 0));

        // An ack past the durable watermark fails closed.
        assert_eq!(store.repl_ack(hello.subscriber, Watermark::new(0, 1)), Err(Error::Rollback));

        // A tampered batch claiming records beyond its own durable
        // watermark is refused by the replica before apply.
        let durable: Watermark = store.flush_wal().unwrap().unwrap();
        assert_eq!(durable, Watermark::new(0, 1));
        let mut batch = store.repl_batch(0, 0, 1 << 16).unwrap();
        assert_eq!(batch.count, 1);
        batch.durable = Watermark::new(0, 0); // pretend nothing is durable
        let rstore = replica_store(34);
        let mut replica = Replica::new(Arc::clone(&rstore), &hello).unwrap();
        assert_eq!(replica.apply_batch(&batch), Err(Error::Rollback));
        assert_eq!(replica.watermark(), Watermark::new(0, 0), "chain must not desync");
        // The honest batch still applies from the same position.
        batch.durable = durable;
        assert_eq!(replica.apply_batch(&batch).unwrap(), Watermark::new(0, 1));
        assert_eq!(rstore.get(b"buffered").unwrap(), b"x");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn stream_survives_rotation_gaplessly() {
        let dir = tmpdir("rotate");
        let store = primary(35, &dir, DurabilityPolicy::Strict);
        let hello = store.repl_subscribe().unwrap();
        let rstore = replica_store(36);
        let mut replica = Replica::new(Arc::clone(&rstore), &hello).unwrap();

        store.set(b"before", b"1").unwrap();
        let wal = store.wal_handle().unwrap();
        wal.rotate_begin(5).unwrap();
        store.set(b"mid", b"2").unwrap();
        // rotate_commit with a subscriber still in generation 0: the
        // retention floor must keep the old segment (and its file).
        wal.rotate_commit(5).unwrap();
        assert!(
            wal::log_path(&dir, 0).exists(),
            "retention floor must keep the subscribed generation alive"
        );
        store.set(b"after", b"3").unwrap();

        catch_up(&store, &mut replica, hello.subscriber);
        assert_eq!(replica.watermark().generation, 5);
        assert_eq!(rstore.get(b"before").unwrap(), b"1");
        assert_eq!(rstore.get(b"mid").unwrap(), b"2");
        assert_eq!(rstore.get(b"after").unwrap(), b"3");

        // Once the subscriber acked into generation 5, the floor moves
        // and rotate_commit may prune generation 0.
        wal.rotate_commit(5).unwrap();
        assert!(!wal::log_path(&dir, 0).exists(), "acked-past generations may be pruned");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn forged_advance_fails_closed() {
        let dir = tmpdir("forged-advance");
        let store = primary(37, &dir, DurabilityPolicy::Strict);
        let hello = store.repl_subscribe().unwrap();
        let rstore = replica_store(38);
        let mut replica = Replica::new(Arc::clone(&rstore), &hello).unwrap();
        store.set(b"a", b"1").unwrap();
        store.set(b"b", b"2").unwrap();

        // Forge an early handover: correct-looking advance to a new
        // generation while records remain in generation 0. Without the
        // MAC key the tag cannot be forged.
        let batch = ReplBatch {
            generation: 0,
            start_seq: 1,
            count: 0,
            frames: Vec::new(),
            advance_to: Some(5),
            advance_tag: [0xAB; 16],
            durable: Watermark::new(0, 2),
        };
        assert!(matches!(replica.apply_batch(&batch), Err(Error::LogIntegrity { .. })));
        assert_eq!(replica.watermark(), Watermark::new(0, 0), "chain must not desync");

        // The honest stream still applies.
        catch_up(&store, &mut replica, hello.subscriber);
        assert_eq!(rstore.get(b"b").unwrap(), b"2");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn promote_fences_stale_primary_and_keeps_acked_writes() {
        let pdir = tmpdir("promote-primary");
        let rdir = tmpdir("promote-replica");
        let enc = enclave(39);
        let store =
            Arc::new(ShieldStore::new(Arc::clone(&enc), config(DurabilityPolicy::Strict)).unwrap());
        store.attach_wal(&pdir).unwrap();
        for i in 0..10u32 {
            store.set(format!("k{i}").as_bytes(), b"v").unwrap();
        }
        let hello = store.repl_subscribe().unwrap();
        // Same name + seed: the replica runs the same enclave binary on
        // the same platform, so MRENCLAVE sealing lets it read the pin.
        let rstore = replica_store(39);
        let mut replica = Replica::new(Arc::clone(&rstore), &hello).unwrap();
        // Stream only half the records; the rest must come from
        // promotion catch-up off the shared log directory.
        let batch = store.repl_batch(0, 0, 1).unwrap();
        assert!(u64::from(batch.count) < 10);
        replica.apply_batch(&batch).unwrap();

        let wm = replica.promote(&pdir, &rdir).unwrap();
        assert_eq!(wm, Watermark::new(0, 10));
        for i in 0..10u32 {
            assert_eq!(rstore.get(format!("k{i}").as_bytes()).unwrap(), b"v");
        }

        // The promoted store accepts writes through its adopted WAL.
        rstore.set(b"post-promotion", b"w").unwrap();

        // The fenced stale primary fails closed on its next commit...
        assert_eq!(store.set(b"stale-write", b"x"), Err(Error::Rollback));
        // ...and recovery from its directory reports a rollback.
        let ctr = PersistentCounter::open(pdir.join("snapctr")).unwrap();
        let recovered =
            ShieldStore::recover(enclave(39), config(DurabilityPolicy::Strict), None, &ctr, &pdir);
        assert!(matches!(recovered, Err(Error::Rollback)));

        // The promoted node's own directory recovers cleanly,
        // including the post-promotion write chained onto the shipped
        // MAC chain.
        rstore.wal_handle().unwrap().simulate_crash();
        let ctr = PersistentCounter::open(rdir.join("snapctr")).unwrap();
        let recovered =
            ShieldStore::recover(enclave(39), config(DurabilityPolicy::Strict), None, &ctr, &rdir)
                .unwrap();
        assert_eq!(recovered.len(), 11);
        assert_eq!(recovered.get(b"post-promotion").unwrap(), b"w");
        fs::remove_dir_all(&pdir).unwrap();
        fs::remove_dir_all(&rdir).unwrap();
    }

    #[test]
    fn second_promotion_fails_closed() {
        let pdir = tmpdir("double-primary");
        let r1dir = tmpdir("double-r1");
        let r2dir = tmpdir("double-r2");
        let store = primary(41, &pdir, DurabilityPolicy::Strict);
        store.set(b"a", b"1").unwrap();
        let h1 = store.repl_subscribe().unwrap();
        let h2 = store.repl_subscribe().unwrap();
        let s1 = replica_store(41);
        let s2 = replica_store(41);
        let mut r1 = Replica::new(Arc::clone(&s1), &h1).unwrap();
        let mut r2 = Replica::new(Arc::clone(&s2), &h2).unwrap();
        catch_up(&store, &mut r1, h1.subscriber);
        catch_up(&store, &mut r2, h2.subscriber);

        r1.promote(&pdir, &r1dir).unwrap();
        // The second replica's promotion must fail closed: the pin's
        // counter was already fenced past its claim.
        assert_eq!(r2.promote(&pdir, &r2dir), Err(Error::Rollback));
        // The failed promotion must not have produced a usable store:
        // its store keeps serving reads but never got a WAL.
        assert!(s2.wal_handle().is_none());
        for d in [&pdir, &r1dir, &r2dir] {
            let _ = fs::remove_dir_all(d);
        }
    }
}
