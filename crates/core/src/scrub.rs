//! Background scrub-and-repair loop.
//!
//! Disks rot: sealed WAL segments, the freshness pin, and snapshot files
//! all sit on untrusted storage for long stretches between crashes, and
//! a flipped bit is only discovered when recovery needs the data — the
//! worst possible moment. The scrubber walks all durable state
//! *proactively*, re-verifying the same CMAC chains and seals recovery
//! would, at a caller-controlled byte budget per tick so verification
//! never stalls request processing.
//!
//! One scrub **pass** visits, in order:
//!
//! 1. **Pin** — the sealed freshness pin is re-read, unsealed, and
//!    checked against the monotonic counter. A rotted pin is repaired
//!    in place (its full content lives in enclave memory, so a fresh
//!    seal + atomic replace needs no peer).
//! 2. **Segments** — every pinned WAL generation's sealed chain is
//!    re-walked from its genesis tag to the pinned `(seq, MAC)`,
//!    budget-bounded and resumable across ticks. Damage quarantines the
//!    writer ([`crate::Error::StorageFailed`] on commits; reads and
//!    replication keep serving) until
//!    [`ShieldStore::repair_wal_segment`] swaps in a verified copy
//!    fetched from an attested replica or primary peer.
//! 3. **Snapshot** — the last written/restored snapshot file is
//!    re-verified end-to-end: seal, counter binding, and every entry's
//!    MAC under its tenant's derived keys.
//!
//! The loop is pull-based: callers (the server's maintenance tick, the
//! adversary harness, tests) drive [`ShieldStore::scrub_tick`] at
//! whatever rate implements their bytes/sec budget. Progress and
//! findings surface as `scrub_*` gauges in
//! [`crate::StatsSnapshot`].

use crate::error::{Error, Result};
use crate::store::ShieldStore;
use crate::wal::{ScrubChunk, ScrubPos};

/// What one [`ShieldStore::scrub_tick`] accomplished.
#[derive(Debug, Default, Clone)]
pub struct ScrubTick {
    /// Bytes re-verified this tick.
    pub verified_bytes: u64,
    /// WAL generation found damaged this tick, if any.
    pub corrupt_generation: Option<u64>,
    /// The sealed pin failed verification this tick (self-repair was
    /// attempted immediately; check `repaired` gauges for the outcome).
    pub pin_corrupt: bool,
    /// The snapshot file failed verification this tick.
    pub snapshot_corrupt: bool,
    /// A full pass (pin + all segments + snapshot) just completed.
    pub pass_completed: bool,
}

/// Where a pass currently is.
enum Phase {
    /// Re-verify the sealed freshness pin.
    Pin,
    /// Walk pinned segment chains, one budgeted chunk at a time.
    Segments { work: Vec<u64>, idx: usize, pos: Option<ScrubPos> },
    /// Re-verify the last snapshot file.
    Snapshot,
}

/// Scrubber cursor plus the monotone counters behind the `scrub_*`
/// gauges. Lives on the store behind a mutex; ticks are serialized.
pub(crate) struct ScrubState {
    phase: Phase,
    /// Completed full passes.
    pub(crate) passes: u64,
    /// Total bytes re-verified.
    pub(crate) bytes: u64,
    /// Corruption findings (pin, segment, or snapshot).
    pub(crate) corrupt: u64,
    /// Successful repairs (pin rewrites and segment swap-ins).
    pub(crate) repaired: u64,
}

impl Default for ScrubState {
    fn default() -> Self {
        Self { phase: Phase::Pin, passes: 0, bytes: 0, corrupt: 0, repaired: 0 }
    }
}

impl ShieldStore {
    /// Advances the background scrubber by one step, re-verifying up to
    /// ~`budget_bytes` of durable state (see the [module docs](self)
    /// for the pass structure). Callers drive this at whatever rate
    /// implements their bytes/sec budget; each tick holds the WAL lock
    /// only for its own bounded walk. Corruption findings quarantine
    /// the WAL writer and are reported in the returned [`ScrubTick`]
    /// and the `scrub_*` gauges.
    pub fn scrub_tick(&self, budget_bytes: usize) -> Result<ScrubTick> {
        let mut st = self.scrub_state().lock();
        let mut tick = ScrubTick::default();
        match &mut st.phase {
            Phase::Pin => {
                if let Some(wal) = self.wal_ref() {
                    let (ok, bytes) = wal.scrub_pin();
                    tick.verified_bytes = bytes;
                    let mut repaired = false;
                    if !ok {
                        tick.pin_corrupt = true;
                        // Self-repair: reseal the in-enclave pin state
                        // and replace the rotted file atomically.
                        if wal.rewrite_pin().is_ok() {
                            repaired = true;
                        } else {
                            wal.quarantine_corrupt();
                        }
                    }
                    let work = wal.segments().iter().map(|s| s.snap).collect();
                    st.phase = Phase::Segments { work, idx: 0, pos: None };
                    st.repaired += repaired as u64;
                } else {
                    st.phase = Phase::Snapshot;
                }
            }
            Phase::Segments { work, idx, pos } => match (self.wal_ref(), work.get(*idx)) {
                (Some(wal), Some(&gen)) => match wal.scrub_chunk(gen, *pos, budget_bytes)? {
                    ScrubChunk::Progress { bytes, pos: p } => {
                        tick.verified_bytes = bytes;
                        *pos = Some(p);
                    }
                    ScrubChunk::Clean { bytes } => {
                        tick.verified_bytes = bytes;
                        *idx += 1;
                        *pos = None;
                    }
                    ScrubChunk::Gone => {
                        *idx += 1;
                        *pos = None;
                    }
                    ScrubChunk::Corrupt { bytes } => {
                        tick.verified_bytes = bytes;
                        tick.corrupt_generation = Some(gen);
                        wal.quarantine_corrupt();
                        *idx += 1;
                        *pos = None;
                    }
                },
                _ => st.phase = Phase::Snapshot,
            },
            Phase::Snapshot => {
                if let Some(path) = self.last_snapshot_path() {
                    match crate::persist::verify_snapshot(
                        self.storage_ref().as_ref(),
                        self.enclave(),
                        &path,
                    ) {
                        Ok(bytes) => tick.verified_bytes = bytes,
                        Err(_) => tick.snapshot_corrupt = true,
                    }
                }
                st.passes += 1;
                tick.pass_completed = true;
                st.phase = Phase::Pin;
            }
        }
        st.bytes += tick.verified_bytes;
        st.corrupt += tick.pin_corrupt as u64
            + tick.snapshot_corrupt as u64
            + tick.corrupt_generation.is_some() as u64;
        Ok(tick)
    }

    /// Swaps a verified copy of WAL generation `gen` — its raw frames,
    /// fetched from an attested replica or primary peer over the
    /// replication session — in over the damaged on-disk segment. The
    /// frames must walk the sealed chain from the generation's genesis
    /// tag to exactly the pinned `(seq, MAC)`; anything else fails
    /// closed without touching the file. A successful repair lifts the
    /// scrub quarantine so commits resume.
    pub fn repair_wal_segment(&self, gen: u64, frames: &[u8]) -> Result<()> {
        let wal = self
            .wal_ref()
            .ok_or_else(|| Error::Persistence("no write-ahead log attached".into()))?;
        wal.repair_segment(gen, frames)?;
        self.scrub_state().lock().repaired += 1;
        Ok(())
    }
}
