//! A shard: one hash-partitioned slice of the store, owned by one worker.
//!
//! ShieldStore avoids cross-thread synchronization by giving each worker
//! thread an exclusive partition of the hash key space (paper §5.3,
//! Fig. 8). A [`Shard`] is that partition: its own hash table, untrusted
//! heap, MAC chains, and in-enclave MAC hash array. All operations take
//! `&mut self` — exclusive ownership is the concurrency model.
//!
//! During a snapshot the shard's main table is frozen behind an `Arc`
//! (read-only, shared with the snapshot writer thread) and writes are
//! absorbed by a temporary table, reproducing Algorithm 1's fork-based
//! copy-on-write behaviour without `fork()`.
//!
//! ## Tenancy
//!
//! Every operation runs in a tenant namespace ([`crate::tenant`]). The
//! untenanted methods are sugar for tenant 0. Entries carry their owner
//! tenant in the (MAC-covered) header and are sealed under the owner's
//! *derived* keys, so a leaked tenant key opens exactly one namespace and
//! a re-stitched tenant field fails verification. Flat byte-keyed side
//! structures — the plaintext cache, the ordered index, snapshot
//! tombstones — are keyed by [`nskey`] (tenant-prefixed) for *every*
//! tenant including 0, so no namespace can collide into another.

use crate::alloc::{Handle, UntrustedHeap, NULL_HANDLE};
use crate::cache::EnclaveCache;
use crate::config::{AllocMode, Config};
use crate::entry::{self, EntryHeader};
use crate::error::{Error, Result};
use crate::hist::{OpHists, OpTimer};
use crate::integrity::{self, MacStore};
use crate::mac_bucket;
use crate::ordered::OrderedIndex;
use crate::stats::{OpStats, StatsSnapshot};
use crate::table::TableCtx;
use crate::tenant::DEFAULT_TENANT;
use crate::tenant::{nskey, split_nskey, TenantId, TenantKeys, TenantRegistry, TenantState};
use crate::ttl;
use sgx_sim::enclave::Enclave;
use shield_crypto::cmac::Cmac;
use shield_crypto::siphash::SipHash24;
use std::collections::{HashMap, HashSet};
use std::sync::atomic::Ordering as AtomicOrdering;
use std::sync::{Arc, Mutex};

/// The store's secret keys. Generated inside the enclave at store creation
/// and never exposed in plaintext outside it (they are sealed into
/// snapshot metadata).
///
/// Entry data keys are *per tenant*, derived on demand from the KDF
/// master (`raw[4]`) and memoized in an in-enclave keyring. The master
/// CMAC key keys the bucket-set hashes only — it is never involved in
/// entry sealing, so no tenant-key compromise can forge set hashes.
pub(crate) struct StoreKeys {
    /// CMAC for bucket-set hashes (master; never derivable by tenants).
    pub mac: Cmac,
    /// Keyed hash for bucket indexing (hides key distribution, §4.2).
    pub index: SipHash24,
    /// Keyed hash for the 1-byte key hint (§5.4).
    pub hint: SipHash24,
    /// Raw key material, kept for sealing. `raw[0]` is the legacy entry
    /// encryption key slot (still sealed for format stability), `raw[4]`
    /// the tenant-KDF master.
    pub raw: [[u8; 16]; 5],
    /// Memoized per-tenant derived keys (enclave-resident).
    tenants: Mutex<HashMap<TenantId, Arc<TenantKeys>>>,
}

impl StoreKeys {
    /// Generates fresh keys from enclave randomness.
    pub fn generate(enclave: &Enclave) -> Self {
        let mut raw = [[0u8; 16]; 5];
        for key in raw.iter_mut() {
            enclave.read_rand(key);
        }
        Self::from_raw(raw)
    }

    /// Reconstructs keys from raw material (snapshot restore).
    pub fn from_raw(raw: [[u8; 16]; 5]) -> Self {
        Self {
            mac: Cmac::new(&raw[1]),
            index: SipHash24::new(&raw[2]),
            hint: SipHash24::new(&raw[3]),
            raw,
            tenants: Mutex::new(HashMap::new()),
        }
    }

    /// The derived data keys for `tenant`, deriving and memoizing on
    /// first use. Derivation is deterministic, so the keyring is a pure
    /// cache — it never needs sealing.
    pub fn tenant_keys(&self, tenant: TenantId) -> Arc<TenantKeys> {
        let mut map = self.tenants.lock().expect("tenant keyring poisoned");
        Arc::clone(
            map.entry(tenant).or_insert_with(|| Arc::new(TenantKeys::derive(&self.raw[4], tenant))),
        )
    }

    /// The 64-bit keyed index hash of `key`.
    #[inline]
    pub fn index_hash(&self, key: &[u8]) -> u64 {
        self.index.hash(key)
    }

    /// The 1-byte key hint of `key`.
    #[inline]
    pub fn hint_byte(&self, key: &[u8]) -> u8 {
        (self.hint.hash(key) & 0xff) as u8
    }
}

/// The per-operation tenant context threaded through the table-level
/// free functions: who is operating, under which derived keys, at what
/// TTL-clock reading, with what deadline for writes, against which
/// quota/usage accounting (`None` = unmetered, e.g. internal merges).
pub(crate) struct OpCtx<'a> {
    pub tenant: TenantId,
    pub tkeys: &'a TenantKeys,
    pub now: u64,
    pub expires_at: u64,
    pub state: Option<&'a TenantState>,
}

/// Per-shard configuration derived from [`Config`].
#[derive(Debug, Clone)]
pub(crate) struct ShardConfig {
    pub buckets: usize,
    pub mac_hashes: usize,
    pub key_hint: bool,
    pub two_step: bool,
    pub mac_bucket: bool,
    pub mac_cap: usize,
    pub alloc: AllocMode,
    pub max_item_len: usize,
    pub ordered_index: bool,
    pub quarantine: bool,
}

impl ShardConfig {
    pub fn from_config(cfg: &Config) -> Self {
        Self {
            buckets: cfg.buckets_per_shard(),
            mac_hashes: cfg.mac_hashes_per_shard(),
            key_hint: cfg.key_hint,
            two_step: cfg.two_step_search,
            mac_bucket: cfg.mac_bucket,
            mac_cap: cfg.mac_bucket_capacity,
            alloc: cfg.alloc,
            max_item_len: cfg.max_item_len,
            ordered_index: cfg.ordered_index,
            quarantine: cfg.quarantine,
        }
    }
}

/// Which parts of a shard are quarantined after integrity violations.
///
/// The first violation quarantines the bucket set (§4.3 MAC-hash
/// granule) it was detected in; any further violation — evidence the
/// attack is not confined to one granule — or a violation raised while
/// a snapshot makes bucket attribution ambiguous escalates to the whole
/// shard. Quarantine never clears at runtime: recovery is a restore
/// from sealed snapshot + WAL, which rebuilds and re-verifies the
/// partition from scratch.
#[derive(Debug, Clone, Default)]
pub(crate) struct QuarantineState {
    /// Quarantined bucket-set indices (meaningful while `whole` is off).
    pub sets: std::collections::BTreeSet<usize>,
    /// The entire shard is quarantined.
    pub whole: bool,
    /// Integrity violations observed by this shard.
    pub violations: u64,
}

/// A located entry within a chain.
#[derive(Debug, Clone, Copy)]
struct Found {
    handle: Handle,
    prev: Handle,
    pos: usize,
    header: EntryHeader,
}

/// What a chain search discovered.
#[derive(Debug, Clone, Copy)]
enum SearchOutcome {
    /// The key was located.
    Found(Found),
    /// The full-scan fallback hit an entry whose MAC does not match its
    /// contents: untrusted memory was tampered with.
    Tampered,
}

/// The temporary table absorbing writes during a snapshot. Tombstones
/// are [`nskey`]s — deletes during a snapshot are per-namespace.
struct TempTable {
    ctx: TableCtx,
    tombstones: HashSet<Vec<u8>>,
}

/// Reusable scratch buffers threaded through the table operations so the
/// steady-state seal/unseal path performs no per-op heap allocation: the
/// buffers grow to the working-set item size once and are reused for
/// every subsequent operation. All three stage *plaintext or MAC* bytes
/// and live inside the enclave; nothing here is ever handed to untrusted
/// memory.
#[derive(Default)]
pub(crate) struct Scratch {
    /// Entry staging: fused-open plaintext on reads, encode buffer on
    /// realloc/insert writes.
    entry: Vec<u8>,
    /// Candidate-key decryption during chain searches.
    key: Vec<u8>,
    /// MAC side-array gathers for the absence/membership checks.
    side: Vec<u8>,
}

/// One hash partition of the store.
pub struct Shard {
    cfg: ShardConfig,
    keys: Arc<StoreKeys>,
    enclave: Arc<Enclave>,
    main: Option<TableCtx>,
    frozen: Option<Arc<TableCtx>>,
    temp: Option<TempTable>,
    cache: Option<EnclaveCache>,
    index: Option<OrderedIndex>,
    quarantine: QuarantineState,
    scratch: Scratch,
    pub(crate) stats: OpStats,
    pub(crate) hists: OpHists,
}

impl std::fmt::Debug for Shard {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Shard")
            .field("buckets", &self.cfg.buckets)
            .field("len", &self.len())
            .field("snapshotting", &self.temp.is_some())
            .finish()
    }
}

// ---------------------------------------------------------------------------
// Table-level operations: free functions so main and temp tables share them.
// ---------------------------------------------------------------------------

fn bucket_of(keys: &StoreKeys, ctx: &TableCtx, key: &[u8]) -> usize {
    (keys.index_hash(key) % ctx.buckets() as u64) as usize
}

/// Searches `bucket` for `key` *within `op`'s tenant namespace*, counting
/// decryptions as the paper's Fig. 9 does. First pass honours the key
/// hint and silently steps over foreign tenants' entries; if nothing
/// matched and the two-step fallback is enabled, a full scan follows
/// (§5.4) in which **every** entry — whoever owns it — is verified under
/// its owner's derived MAC key, so content tampering (including a
/// rewritten tenant field) cannot masquerade as a clean miss.
#[allow(clippy::too_many_arguments)]
fn search(
    cfg: &ShardConfig,
    keys: &StoreKeys,
    op: &OpCtx<'_>,
    ctx: &TableCtx,
    stats: &mut OpStats,
    scratch: &mut Scratch,
    bucket: usize,
    hint_byte: u8,
    key: &[u8],
) -> Option<SearchOutcome> {
    // Chains are untrusted: a corrupted `next` pointer can form a cycle
    // or escape the heap. No honest chain is longer than the whole table,
    // so walks past `count` steps (or into unreadable memory) report
    // tampering instead of panicking or spinning.
    let max_steps = ctx.count.saturating_add(1);

    // First step: hint-guided, same-tenant entries only.
    let mut prev = NULL_HANDLE;
    let mut pos = 0usize;
    let mut h = ctx.heads[bucket];
    while h != NULL_HANDLE {
        if pos >= max_steps {
            return Some(SearchOutcome::Tampered);
        }
        let Some(header) = ctx.try_header(h) else {
            return Some(SearchOutcome::Tampered);
        };
        if header.tenant != op.tenant {
            // Foreign namespace: skip without decrypting anything.
        } else if cfg.key_hint && header.hint != hint_byte {
            stats.hint_skips += 1;
        } else if header.key_len as usize == key.len() {
            stats.key_decryptions += 1;
            let Some(ct) = ctx.try_ciphertext(h, &header) else {
                // Corrupted length fields in untrusted memory.
                return Some(SearchOutcome::Tampered);
            };
            if entry::key_matches(&op.tkeys.enc, &header, ct, key, &mut scratch.key) {
                return Some(SearchOutcome::Found(Found { handle: h, prev, pos, header }));
            }
        }
        prev = h;
        pos += 1;
        h = header.next;
    }

    // Second step: full scan, defending against hint (and tenant-field)
    // corruption. Every entry's MAC is verified under its *owner's*
    // derived key: a corrupted ciphertext or a re-stitched tenant id
    // would make a key silently unfindable otherwise.
    if cfg.key_hint && cfg.two_step {
        stats.full_scans += 1;
        let mut prev = NULL_HANDLE;
        let mut pos = 0usize;
        let mut h = ctx.heads[bucket];
        while h != NULL_HANDLE {
            if pos >= max_steps {
                return Some(SearchOutcome::Tampered);
            }
            let Some(header) = ctx.try_header(h) else {
                return Some(SearchOutcome::Tampered);
            };
            let Some(ct) = ctx.try_ciphertext(h, &header) else {
                return Some(SearchOutcome::Tampered);
            };
            let verified = if header.tenant == op.tenant {
                entry::verify_mac(&op.tkeys.mac, &header, ct)
            } else {
                // Foreign entry: its owner's derived key decides. A forged
                // tenant id routes here and fails closed (the stored tag
                // cannot verify under the re-routed key).
                let owner = keys.tenant_keys(header.tenant);
                entry::verify_mac(&owner.mac, &header, ct)
            };
            if !verified {
                return Some(SearchOutcome::Tampered);
            }
            if header.tenant == op.tenant && header.key_len as usize == key.len() {
                stats.key_decryptions += 1;
                if entry::key_matches(&op.tkeys.enc, &header, ct, key, &mut scratch.key) {
                    return Some(SearchOutcome::Found(Found { handle: h, prev, pos, header }));
                }
            }
            prev = h;
            pos += 1;
            h = header.next;
        }
    }
    None
}

/// Derives the bucket-set MAC hash for `set` in one streaming pass: the
/// entry MACs of every bucket are absorbed straight into a CMAC context
/// (via MAC buckets — contiguous reads — or entry-chain pointer chasing)
/// with no intermediate concatenation buffer, so the hash of a large set
/// costs one pipelined CMAC and zero allocations. The CMAC is keyed by
/// the *master* MAC key — entry MACs are per-tenant, but the set hash
/// binds them all under a key no tenant (or tenant-key thief) holds.
/// `None` means the untrusted structure itself is corrupt (unreadable
/// pointer, cycle, inflated count field) — callers surface it as an
/// integrity violation.
fn derive_set_hash(
    cfg: &ShardConfig,
    keys: &StoreKeys,
    ctx: &TableCtx,
    stats: &mut OpStats,
    set: usize,
) -> Option<[u8; 16]> {
    let max_macs = ctx.count.saturating_add(1);
    let mut mac_ctx = keys.mac.ctx();
    let mut absorbed = 0u64;
    for bucket in ctx.sets.buckets_of(set) {
        if cfg.mac_bucket {
            let n = mac_bucket::try_absorb(&ctx.heap, ctx.mac_heads[bucket], max_macs, &mut |m| {
                mac_ctx.update(m)
            })?;
            absorbed += n as u64;
        } else {
            let mut steps = 0usize;
            let mut h = ctx.heads[bucket];
            while h != NULL_HANDLE {
                steps += 1;
                if steps > max_macs {
                    return None;
                }
                let header = ctx.try_header(h)?;
                mac_ctx.update(&header.mac);
                absorbed += 1;
                h = header.next;
            }
        }
    }
    stats.macs_gathered += absorbed;
    Some(if absorbed == 0 { EMPTY_SET_HASH } else { mac_ctx.finalize() })
}

/// The stored hash for an empty bucket set.
const EMPTY_SET_HASH: [u8; 16] = [0u8; 16];

/// Verifies the bucket-set MAC hash for `set` against untrusted state.
fn verify_set(
    cfg: &ShardConfig,
    keys: &StoreKeys,
    ctx: &TableCtx,
    stats: &mut OpStats,
    set: usize,
) -> Result<()> {
    stats.integrity_verifications += 1;
    let Some(recomputed) = derive_set_hash(cfg, keys, ctx, stats, set) else {
        return Err(Error::IntegrityViolation { bucket: ctx.sets.buckets_of(set).start });
    };
    let stored = ctx.macs.get(set);
    if integrity::verify_set_hash(&stored, &recomputed) {
        Ok(())
    } else {
        Err(Error::IntegrityViolation { bucket: ctx.sets.buckets_of(set).start })
    }
}

/// Miss-path consistency check for MAC bucketing. The gather reads the
/// MAC side arrays, so an attacker who unlinks a *data entry* (leaving
/// the MAC bucket intact) would pass the set-hash check and turn the key
/// into a silent miss. A *found* key proves its own membership (its MAC
/// is verified against content and covered by the set hash), so the
/// chain walk is only paid when a search comes back empty — keeping the
/// very pointer-chasing MAC bucketing exists to avoid off the hit path.
fn verify_absence_consistency(
    cfg: &ShardConfig,
    ctx: &TableCtx,
    scratch: &mut Scratch,
    bucket: usize,
) -> Result<()> {
    if !cfg.mac_bucket {
        return Ok(());
    }
    let max_macs = ctx.count.saturating_add(1);
    let side = &mut scratch.side;
    side.clear();
    if mac_bucket::try_gather(&ctx.heap, ctx.mac_heads[bucket], side, max_macs).is_none() {
        return Err(Error::IntegrityViolation { bucket });
    }
    // Element-wise walk: every chained entry's header MAC must sit at its
    // chain position in the side array, and the two must have equal
    // length. This catches unlinking, splicing-in, reordering, and an
    // entry's bytes being overwritten with another (individually valid)
    // entry — all of which would otherwise read as a clean miss here.
    let mut pos = 0usize;
    let mut h = ctx.heads[bucket];
    while h != NULL_HANDLE {
        if pos >= max_macs {
            return Err(Error::IntegrityViolation { bucket });
        }
        let Some(header) = ctx.try_header(h) else {
            return Err(Error::IntegrityViolation { bucket });
        };
        if side.get(pos * 16..(pos + 1) * 16) != Some(header.mac.as_slice()) {
            return Err(Error::IntegrityViolation { bucket });
        }
        pos += 1;
        h = header.next;
    }
    if pos * 16 != side.len() {
        return Err(Error::IntegrityViolation { bucket });
    }
    Ok(())
}

/// Hit-path replay defense for MAC bucketing. With `mac_bucket` on, the
/// set hash covers the *side array*, not the entry bytes — so replaying
/// a stale copy of an in-place-updated entry (old ciphertext + its then-
/// valid MAC, written back over the same allocation) passes both the
/// entry's own MAC check and the set-hash check. The side array only
/// ever holds the MACs of the *current* entry versions: requiring the
/// found entry's header MAC to appear there pins every hit to a live
/// version. The fast path compares positionally; after a structural
/// attack elsewhere in the chain (an unlink shifting positions) an
/// innocent entry falls back to a membership scan and keeps working —
/// hits prove themselves. Without MAC bucketing the set hash is derived
/// from the entry chain itself, so a replayed MAC already breaks it and
/// no extra check is needed.
fn verify_side_mac_read(
    cfg: &ShardConfig,
    ctx: &TableCtx,
    stats: &mut OpStats,
    scratch: &mut Scratch,
    bucket: usize,
    found: &Found,
) -> Result<()> {
    if !cfg.mac_bucket {
        return Ok(());
    }
    let max_macs = ctx.count.saturating_add(1);
    if mac_bucket::try_get_at(&ctx.heap, ctx.mac_heads[bucket], found.pos, max_macs)
        == Some(found.header.mac)
    {
        return Ok(());
    }
    // Positional mismatch: either an attack on this entry (replay) or a
    // structural attack elsewhere in the chain. Membership decides.
    stats.side_mac_fallbacks += 1;
    let side = &mut scratch.side;
    side.clear();
    if mac_bucket::try_gather(&ctx.heap, ctx.mac_heads[bucket], side, max_macs).is_none() {
        return Err(Error::IntegrityViolation { bucket });
    }
    if side.chunks_exact(16).any(|m| m == found.header.mac) {
        Ok(())
    } else {
        Err(Error::IntegrityViolation { bucket })
    }
}

/// Write-path variant of [`verify_side_mac_read`]: strictly positional.
/// `set_at`/`remove_at` mutate the side array *by chain position*, so a
/// write through a desynchronized position would endorse the wrong slot
/// (and could launder a stale MAC back into the endorsed set). A bucket
/// whose chain and side array have drifted apart refuses all mutations.
fn verify_side_mac_write(
    cfg: &ShardConfig,
    ctx: &TableCtx,
    bucket: usize,
    found: &Found,
) -> Result<()> {
    if !cfg.mac_bucket {
        return Ok(());
    }
    let max_macs = ctx.count.saturating_add(1);
    match mac_bucket::try_get_at(&ctx.heap, ctx.mac_heads[bucket], found.pos, max_macs) {
        Some(side) if side == found.header.mac => Ok(()),
        _ => Err(Error::IntegrityViolation { bucket }),
    }
}

/// Recomputes and stores the bucket-set hash after a mutation. Fails —
/// leaving the stored hash untouched, so later verification fails closed
/// — when the untrusted structure cannot be walked.
fn update_set_hash(
    cfg: &ShardConfig,
    keys: &StoreKeys,
    ctx: &mut TableCtx,
    stats: &mut OpStats,
    set: usize,
) -> Result<()> {
    let Some(tag) = derive_set_hash(cfg, keys, ctx, stats, set) else {
        return Err(Error::IntegrityViolation { bucket: ctx.sets.buckets_of(set).start });
    };
    ctx.macs.set(set, &tag);
    Ok(())
}

/// Looks `key` up in `ctx` under `op`'s namespace, fully verifying
/// integrity. Returns the plaintext value and its (authenticated)
/// expiry deadline, or `None` for a clean miss — including the lazy-
/// expiry case, where an entry past its deadline is hidden without
/// mutation (safe against frozen snapshot tables; the sweep removes it).
fn get_in(
    cfg: &ShardConfig,
    keys: &StoreKeys,
    op: &OpCtx<'_>,
    ctx: &TableCtx,
    stats: &mut OpStats,
    scratch: &mut Scratch,
    key: &[u8],
) -> Result<Option<(Vec<u8>, u64)>> {
    let bucket = bucket_of(keys, ctx, key);
    let set = ctx.sets.set_of(bucket);
    verify_set(cfg, keys, ctx, stats, set)?;
    get_in_bucket(cfg, keys, op, ctx, stats, scratch, bucket, key)
}

/// Lookup within an already-verified bucket set. The caller must have
/// run [`verify_set`] for `bucket`'s set first — per-op wrappers do it
/// per call, the batched path once per touched set per batch.
#[allow(clippy::too_many_arguments)]
fn get_in_bucket(
    cfg: &ShardConfig,
    keys: &StoreKeys,
    op: &OpCtx<'_>,
    ctx: &TableCtx,
    stats: &mut OpStats,
    scratch: &mut Scratch,
    bucket: usize,
    key: &[u8],
) -> Result<Option<(Vec<u8>, u64)>> {
    let hint = keys.hint_byte(key);
    match search(cfg, keys, op, ctx, stats, scratch, bucket, hint, key) {
        Some(SearchOutcome::Found(found)) => {
            let Some(ct) = ctx.try_ciphertext(found.handle, &found.header) else {
                return Err(Error::IntegrityViolation { bucket });
            };
            // Fused verify+decrypt under the tenant's derived keys: MAC
            // absorption and keystream XOR share one pass over the
            // ciphertext. The plaintext is staged in the enclave-resident
            // scratch buffer and only released after the tag and the
            // side-array liveness check both pass.
            let mut plain = std::mem::take(&mut scratch.entry);
            if !entry::open_entry(&op.tkeys.enc, &op.tkeys.mac, &found.header, ct, &mut plain) {
                scratch.entry = plain;
                return Err(Error::IntegrityViolation { bucket });
            }
            if let Err(e) = verify_side_mac_read(cfg, ctx, stats, scratch, bucket, &found) {
                plain.iter_mut().for_each(|b| *b = 0);
                plain.clear();
                scratch.entry = plain;
                return Err(e);
            }
            // Lazy expiry: the fused open just authenticated the header,
            // `expires_at` included, so the deadline can be honoured. The
            // value is wiped and the entry reads as a miss; physical
            // removal is the sweep's job (this path must not mutate —
            // it also serves frozen snapshot tables).
            if found.header.expired_at(op.now) {
                plain.iter_mut().for_each(|b| *b = 0);
                plain.clear();
                scratch.entry = plain;
                stats.expired_lazy += 1;
                if let Some(st) = op.state {
                    st.usage.expired_lazy.fetch_add(1, AtomicOrdering::SeqCst);
                }
                return Ok(None);
            }
            let value = plain.split_off(found.header.key_len as usize);
            scratch.entry = plain;
            Ok(Some((value, found.header.expires_at)))
        }
        Some(SearchOutcome::Tampered) => Err(Error::IntegrityViolation { bucket }),
        None => {
            verify_absence_consistency(cfg, ctx, scratch, bucket)?;
            Ok(None)
        }
    }
}

/// Inserts or updates `key` in `ctx`. Returns `true` for an insert.
#[allow(clippy::too_many_arguments)]
fn set_in(
    cfg: &ShardConfig,
    keys: &StoreKeys,
    op: &OpCtx<'_>,
    ctx: &mut TableCtx,
    stats: &mut OpStats,
    scratch: &mut Scratch,
    key: &[u8],
    value: &[u8],
) -> Result<bool> {
    let bucket = bucket_of(keys, ctx, key);
    let set = ctx.sets.set_of(bucket);
    verify_set(cfg, keys, ctx, stats, set)?;
    let inserted = set_in_bucket(cfg, keys, op, ctx, stats, scratch, bucket, key, value)?;
    update_set_hash(cfg, keys, ctx, stats, set)?;
    Ok(inserted)
}

/// Charges a quota rejection to the op's tenant and fails the write.
fn quota_reject(op: &OpCtx<'_>, stats: &mut OpStats) -> Error {
    stats.quota_rejections += 1;
    if let Some(st) = op.state {
        st.usage.quota_rejections.fetch_add(1, AtomicOrdering::SeqCst);
    }
    Error::QuotaExceeded { tenant: op.tenant }
}

/// Insert/update within an already-verified bucket set, *without*
/// re-storing the set hash. The caller must have run [`verify_set`]
/// before the first access to this set and must call
/// [`update_set_hash`] after the last write to it — per-op wrappers do
/// both per call, the batched path once per touched set per batch.
///
/// Quota enforcement happens here, after the integrity checks and
/// before any mutation: an insert charges `(entry bytes, 1 key)`, an
/// update charges only byte *growth* (shrink refunds immediately), and
/// a rejection leaves both table and accounting untouched.
#[allow(clippy::too_many_arguments)]
fn set_in_bucket(
    cfg: &ShardConfig,
    keys: &StoreKeys,
    op: &OpCtx<'_>,
    ctx: &mut TableCtx,
    stats: &mut OpStats,
    scratch: &mut Scratch,
    bucket: usize,
    key: &[u8],
    value: &[u8],
) -> Result<bool> {
    let hint = keys.hint_byte(key);
    let new_len = entry::HEADER_LEN + key.len() + value.len();

    let outcome = search(cfg, keys, op, ctx, stats, scratch, bucket, hint, key);
    if matches!(outcome, Some(SearchOutcome::Tampered)) {
        return Err(Error::IntegrityViolation { bucket });
    }
    let inserted = match outcome {
        Some(SearchOutcome::Tampered) => unreachable!("handled above"),
        Some(SearchOutcome::Found(found)) => {
            // A stale replayed entry must not be accepted as the base of
            // an update (its IV+1 would reuse an already-spent counter).
            verify_side_mac_write(cfg, ctx, bucket, &found)?;
            let old_len = found.header.entry_len();
            if let Some(st) = op.state {
                if new_len > old_len {
                    if !st.usage.try_charge_bytes(&st.quota, (new_len - old_len) as u64) {
                        return Err(quota_reject(op, stats));
                    }
                } else {
                    st.usage.discharge((old_len - new_len) as u64, 0);
                }
            }
            // Update: bump the combined IV/counter for the re-encryption.
            // The search only matches same-tenant entries, so the bumped
            // counter stays within one derived keystream.
            let mut iv = found.header.iv;
            shield_crypto::ctr::increment_be(&mut iv);

            if UntrustedHeap::fits_in_class(old_len, new_len) {
                let buf = ctx.heap.bytes_mut(found.handle, new_len);
                let mac = entry::encode_into(
                    buf,
                    found.header.next,
                    hint,
                    op.tenant,
                    op.expires_at,
                    &iv,
                    key,
                    value,
                    &op.tkeys.enc,
                    &op.tkeys.mac,
                );
                if cfg.mac_bucket {
                    mac_bucket::set_at(&mut ctx.heap, ctx.mac_heads[bucket], found.pos, &mac);
                }
                stats.inplace_updates += 1;
            } else {
                let fresh = ctx.heap.alloc(new_len);
                let buf = &mut scratch.entry;
                buf.clear();
                buf.resize(new_len, 0);
                let mac = entry::encode_into(
                    buf,
                    found.header.next,
                    hint,
                    op.tenant,
                    op.expires_at,
                    &iv,
                    key,
                    value,
                    &op.tkeys.enc,
                    &op.tkeys.mac,
                );
                ctx.heap.bytes_mut(fresh, new_len).copy_from_slice(buf);
                // Relink in place of the old entry.
                if found.prev == NULL_HANDLE {
                    ctx.heads[bucket] = fresh;
                } else {
                    ctx.heap.write_u64_at(found.prev, entry::OFF_NEXT, fresh);
                }
                ctx.heap.free(found.handle, old_len);
                if cfg.mac_bucket {
                    mac_bucket::set_at(&mut ctx.heap, ctx.mac_heads[bucket], found.pos, &mac);
                }
                stats.realloc_updates += 1;
            }
            false
        }
        None => {
            verify_absence_consistency(cfg, ctx, scratch, bucket)?;
            if let Some(st) = op.state {
                if !st.usage.try_charge(&st.quota, new_len as u64, 1) {
                    return Err(quota_reject(op, stats));
                }
            }
            // Insert at the chain head with a fresh random IV/counter.
            let iv = ctx.heap.enclave().read_rand_block();
            let fresh = ctx.heap.alloc(new_len);
            let buf = &mut scratch.entry;
            buf.clear();
            buf.resize(new_len, 0);
            let mac = entry::encode_into(
                buf,
                ctx.heads[bucket],
                hint,
                op.tenant,
                op.expires_at,
                &iv,
                key,
                value,
                &op.tkeys.enc,
                &op.tkeys.mac,
            );
            ctx.heap.bytes_mut(fresh, new_len).copy_from_slice(buf);
            ctx.heads[bucket] = fresh;
            if cfg.mac_bucket {
                let mut head = ctx.mac_heads[bucket];
                mac_bucket::insert_front(&mut ctx.heap, &mut head, &mac, cfg.mac_cap);
                ctx.mac_heads[bucket] = head;
            }
            ctx.count += 1;
            stats.inserts += 1;
            true
        }
    };

    Ok(inserted)
}

/// Removes `key` from `ctx` within `op`'s namespace. Returns `true` if
/// a physical removal happened.
///
/// With `reap_expired = false` (normal deletes), an entry past its
/// deadline answers "not present" *without* being removed: the caller's
/// delete is not WAL-logged as having removed anything, so physical
/// removal must wait for the sweep (which is logged) — otherwise
/// recovery replay and the live table would diverge. Honouring the
/// deadline requires authenticating it first: the hint-guided search
/// does not verify MACs, and the set hash covers only the stored tag
/// bytes, so a flipped `expires_at` would otherwise let tampering
/// masquerade as a clean miss.
///
/// With `reap_expired = true` (the sweep, snapshot tombstone replay),
/// expired entries are removed like any other.
#[allow(clippy::too_many_arguments)]
fn delete_in(
    cfg: &ShardConfig,
    keys: &StoreKeys,
    op: &OpCtx<'_>,
    ctx: &mut TableCtx,
    stats: &mut OpStats,
    scratch: &mut Scratch,
    key: &[u8],
    reap_expired: bool,
) -> Result<bool> {
    let bucket = bucket_of(keys, ctx, key);
    let set = ctx.sets.set_of(bucket);
    verify_set(cfg, keys, ctx, stats, set)?;
    let hint = keys.hint_byte(key);
    let found = match search(cfg, keys, op, ctx, stats, scratch, bucket, hint, key) {
        Some(SearchOutcome::Found(found)) => found,
        Some(SearchOutcome::Tampered) => {
            return Err(Error::IntegrityViolation { bucket });
        }
        None => {
            verify_absence_consistency(cfg, ctx, scratch, bucket)?;
            return Ok(false);
        }
    };
    verify_side_mac_write(cfg, ctx, bucket, &found)?;

    if !reap_expired && found.header.expired_at(op.now) {
        // Fail-closed deadline trust: verify the entry MAC before
        // honouring the plaintext expiry field.
        let Some(ct) = ctx.try_ciphertext(found.handle, &found.header) else {
            return Err(Error::IntegrityViolation { bucket });
        };
        if !entry::verify_mac(&op.tkeys.mac, &found.header, ct) {
            return Err(Error::IntegrityViolation { bucket });
        }
        stats.expired_lazy += 1;
        if let Some(st) = op.state {
            st.usage.expired_lazy.fetch_add(1, AtomicOrdering::SeqCst);
        }
        return Ok(false);
    }

    if found.prev == NULL_HANDLE {
        ctx.heads[bucket] = found.header.next;
    } else {
        ctx.heap.write_u64_at(found.prev, entry::OFF_NEXT, found.header.next);
    }
    ctx.heap.free(found.handle, found.header.entry_len());
    if cfg.mac_bucket {
        let mut head = ctx.mac_heads[bucket];
        mac_bucket::remove_at(&mut ctx.heap, &mut head, found.pos, cfg.mac_cap);
        ctx.mac_heads[bucket] = head;
    }
    ctx.count -= 1;
    if let Some(st) = op.state {
        st.usage.discharge(found.header.entry_len() as u64, 1);
    }
    update_set_hash(cfg, keys, ctx, stats, set)?;
    Ok(true)
}

/// Accumulates per-tenant physical usage (`tenant → (bytes, keys)`) from
/// one table. Header fields are read unauthenticated — this feeds
/// resource accounting, where tampering only skews the tamperer's own
/// quota; data-path integrity is enforced at access time.
fn tally_usage(ctx: &TableCtx, out: &mut HashMap<TenantId, (u64, u64)>) {
    let mut handles = Vec::new();
    ctx.for_each_entry(|_, h| handles.push(h));
    for h in handles {
        if let Some(header) = ctx.try_header(h) {
            let slot = out.entry(header.tenant).or_insert((0, 0));
            slot.0 += header.entry_len() as u64;
            slot.1 += 1;
        }
    }
}

// ---------------------------------------------------------------------------
// Shard: public operations with snapshot-aware routing.
// ---------------------------------------------------------------------------

impl Shard {
    /// Creates an empty shard.
    pub(crate) fn new(
        enclave: Arc<Enclave>,
        keys: Arc<StoreKeys>,
        cfg: ShardConfig,
    ) -> Result<Self> {
        let heap = UntrustedHeap::new(Arc::clone(&enclave), cfg.alloc);
        let macs = MacStore::in_enclave(Arc::clone(&enclave), cfg.mac_hashes)?;
        let main = TableCtx::new(heap, cfg.buckets, macs);
        let index = cfg.ordered_index.then(OrderedIndex::new);
        Ok(Self {
            cfg,
            keys,
            enclave,
            main: Some(main),
            frozen: None,
            temp: None,
            cache: None,
            index,
            quarantine: QuarantineState::default(),
            scratch: Scratch::default(),
            stats: OpStats::default(),
            hists: OpHists::default(),
        })
    }

    /// Enables the in-enclave cache with a byte budget.
    pub(crate) fn enable_cache(&mut self, bytes: usize) {
        if bytes > 0 {
            self.cache = Some(EnclaveCache::new(Arc::clone(&self.enclave), bytes));
        }
    }

    fn check_item(&self, key: &[u8], value: &[u8]) -> Result<()> {
        let max = self.cfg.max_item_len;
        if key.len() > max {
            return Err(Error::OversizeItem { len: key.len(), max });
        }
        if value.len() > max {
            return Err(Error::OversizeItem { len: value.len(), max });
        }
        if key.is_empty() {
            return Err(Error::OversizeItem { len: 0, max });
        }
        Ok(())
    }

    /// Internal verified lookup across temp/frozen/main state, without
    /// touching the per-op counters (callers classify the op).
    fn lookup(&mut self, op: &OpCtx<'_>, key: &[u8]) -> Result<Option<Vec<u8>>> {
        Ok(self.lookup_traced(op, key)?.map(|(v, _, _)| v))
    }

    /// Like [`Shard::lookup`], also reporting the entry's expiry deadline
    /// and whether the value was served from the in-enclave cache (so
    /// callers neither re-insert cache hits — a redundant metered enclave
    /// write per hit — nor cache TTL'd values, which the cache cannot
    /// expire).
    fn lookup_traced(
        &mut self,
        op: &OpCtx<'_>,
        key: &[u8],
    ) -> Result<Option<(Vec<u8>, u64, bool)>> {
        if let Some(cache) = self.cache.as_mut() {
            if let Some(v) = cache.get(&nskey(op.tenant, key)) {
                self.stats.cache_hits += 1;
                // Only deadline-free entries are ever cached.
                return Ok(Some((v, 0, true)));
            }
            self.stats.cache_misses += 1;
        }
        if let Some(temp) = self.temp.as_ref() {
            if temp.tombstones.contains(&nskey(op.tenant, key)) {
                return Ok(None);
            }
            // Split borrows: temp ctx read + stats/scratch write.
            let (cfg, keys) = (&self.cfg, &self.keys);
            let temp = self.temp.as_ref().expect("checked above");
            if let Some((v, exp)) =
                get_in(cfg, keys, op, &temp.ctx, &mut self.stats, &mut self.scratch, key)?
            {
                return Ok(Some((v, exp, false)));
            }
            let frozen = self.frozen.as_ref().expect("frozen accompanies temp");
            return Ok(get_in(cfg, keys, op, frozen, &mut self.stats, &mut self.scratch, key)?
                .map(|(v, exp)| (v, exp, false)));
        }
        let main = self.main.as_ref().expect("main table present");
        Ok(get_in(&self.cfg, &self.keys, op, main, &mut self.stats, &mut self.scratch, key)?
            .map(|(v, exp)| (v, exp, false)))
    }

    /// Internal verified write across temp/main state.
    fn apply_write(&mut self, op: &OpCtx<'_>, key: &[u8], value: &[u8]) -> Result<()> {
        self.check_item(key, value)?;
        if let Some(temp) = self.temp.as_mut() {
            self.stats.temp_table_ops += 1;
            temp.tombstones.remove(&nskey(op.tenant, key));
            set_in(
                &self.cfg,
                &self.keys,
                op,
                &mut temp.ctx,
                &mut self.stats,
                &mut self.scratch,
                key,
                value,
            )?;
        } else {
            let main = self.main.as_mut().expect("main table present");
            set_in(
                &self.cfg,
                &self.keys,
                op,
                main,
                &mut self.stats,
                &mut self.scratch,
                key,
                value,
            )?;
        }
        if let Some(cache) = self.cache.as_mut() {
            let ns = nskey(op.tenant, key);
            if op.expires_at == 0 {
                cache.put(&ns, value);
            } else {
                // The cache has no deadline awareness: a cached TTL'd value
                // would keep serving after expiry. Never cache them.
                cache.remove(&ns);
            }
        }
        if let Some(index) = self.index.as_mut() {
            index.insert(&nskey(op.tenant, key));
        }
        Ok(())
    }

    /// The bucket `key` maps to in the main-table geometry (stable
    /// across snapshots — the temp table has its own smaller geometry).
    fn bucket_index(&self, key: &[u8]) -> usize {
        (self.keys.index_hash(key) % self.cfg.buckets as u64) as usize
    }

    /// The bucket-set mapping of the main-table geometry, available even
    /// while the main table is frozen out for a snapshot.
    fn sets_map(&self) -> crate::integrity::BucketSets {
        crate::integrity::BucketSets::new(self.cfg.buckets, self.cfg.mac_hashes)
    }

    /// Fails closed with [`Error::Quarantined`] when `key`'s partition
    /// is quarantined. A rejection never touches untrusted memory.
    fn quarantine_guard(&mut self, key: &[u8]) -> Result<()> {
        if !self.cfg.quarantine || (!self.quarantine.whole && self.quarantine.sets.is_empty()) {
            return Ok(());
        }
        let bucket = self.bucket_index(key);
        if self.quarantine.whole || self.quarantine.sets.contains(&self.sets_map().set_of(bucket)) {
            self.stats.quarantine_rejections += 1;
            return Err(Error::Quarantined { bucket });
        }
        Ok(())
    }

    /// Batch form of [`Shard::quarantine_guard`]: any quarantined key
    /// rejects the whole batch before any of it is dispatched.
    fn quarantine_guard_batch<'k>(&mut self, keys: impl Iterator<Item = &'k [u8]>) -> Result<()> {
        for key in keys {
            self.quarantine_guard(key)?;
        }
        Ok(())
    }

    /// Scans have no single key: they are rejected whenever any part of
    /// this shard is quarantined, since the verified read path would
    /// walk arbitrary buckets.
    fn quarantine_guard_scan(&mut self) -> Result<()> {
        if !self.cfg.quarantine || (!self.quarantine.whole && self.quarantine.sets.is_empty()) {
            return Ok(());
        }
        self.stats.quarantine_rejections += 1;
        let bucket = self
            .quarantine
            .sets
            .iter()
            .next()
            .map(|&set| self.sets_map().buckets_of(set).start)
            .unwrap_or(0);
        Err(Error::Quarantined { bucket })
    }

    /// Observes an operation result: an [`Error::IntegrityViolation`]
    /// quarantines the affected bucket set; a repeat violation, or one
    /// raised while a snapshot makes bucket attribution ambiguous,
    /// escalates to the whole shard. No-op unless
    /// [`Config::quarantine`] is enabled.
    fn observe<T>(&mut self, result: Result<T>) -> Result<T> {
        if self.cfg.quarantine {
            if let Err(Error::IntegrityViolation { bucket }) = &result {
                self.quarantine.violations += 1;
                if self.quarantine.violations > 1 || self.temp.is_some() {
                    self.quarantine.whole = true;
                } else {
                    let bucket = (*bucket).min(self.cfg.buckets - 1);
                    self.quarantine.sets.insert(self.sets_map().set_of(bucket));
                }
            }
        }
        result
    }

    /// The bucket set `key` maps to (main-table geometry).
    pub(crate) fn set_of_key(&self, key: &[u8]) -> usize {
        self.sets_map().set_of(self.bucket_index(key))
    }

    /// This shard's quarantine state: (whole-shard flag, quarantined
    /// set indices, violations observed).
    pub(crate) fn quarantine_state(&self) -> (bool, Vec<usize>, u64) {
        (
            self.quarantine.whole,
            self.quarantine.sets.iter().copied().collect(),
            self.quarantine.violations,
        )
    }

    // -- tenant-scoped operations --------------------------------------

    /// Retrieves the value for `key` in the default namespace.
    pub fn get(&mut self, key: &[u8]) -> Result<Vec<u8>> {
        self.get_t(DEFAULT_TENANT, key, None)
    }

    /// Retrieves the value for `key` in `tenant`'s namespace. `state`
    /// (when given) receives per-tenant op accounting.
    pub fn get_t(
        &mut self,
        tenant: TenantId,
        key: &[u8],
        state: Option<&TenantState>,
    ) -> Result<Vec<u8>> {
        let timer = OpTimer::start();
        let result = match self.quarantine_guard(key) {
            Ok(()) => {
                let r = self.get_untimed(tenant, key, state);
                self.observe(r)
            }
            Err(e) => {
                // A rejected op still counts as a served `get` so the
                // histogram/op-counter identities hold.
                self.stats.gets += 1;
                Err(e)
            }
        };
        self.hists.get.record(timer.elapsed_ns());
        result
    }

    fn get_untimed(
        &mut self,
        tenant: TenantId,
        key: &[u8],
        state: Option<&TenantState>,
    ) -> Result<Vec<u8>> {
        self.stats.gets += 1;
        if let Some(st) = state {
            st.usage.gets.fetch_add(1, AtomicOrdering::SeqCst);
        }
        let tkeys = self.keys.tenant_keys(tenant);
        let op = OpCtx { tenant, tkeys: &tkeys, now: ttl::now_ns(), expires_at: 0, state };
        match self.lookup_traced(&op, key)? {
            Some((v, expires_at, from_cache)) => {
                self.stats.hits += 1;
                if let Some(st) = state {
                    st.usage.hits.fetch_add(1, AtomicOrdering::SeqCst);
                }
                // Populate the cache on an untrusted-path hit (a cache hit
                // is already resident) — but never with a TTL'd value.
                if !from_cache && expires_at == 0 {
                    if let Some(cache) = self.cache.as_mut() {
                        cache.put(&nskey(tenant, key), &v);
                    }
                }
                Ok(v)
            }
            None => {
                self.stats.misses += 1;
                if let Some(st) = state {
                    st.usage.misses.fetch_add(1, AtomicOrdering::SeqCst);
                }
                Err(Error::KeyNotFound)
            }
        }
    }

    /// Stores `value` under `key` (insert or update) in the default
    /// namespace, with no expiry.
    pub fn set(&mut self, key: &[u8], value: &[u8]) -> Result<()> {
        self.set_t(DEFAULT_TENANT, key, value, 0, None)
    }

    /// Stores `value` under `key` in `tenant`'s namespace. `expires_at`
    /// is an absolute [`ttl`] deadline in ns (`0` = no expiry) and
    /// *replaces* any previous deadline. `state` (when given) enforces
    /// the tenant's quota and receives usage accounting.
    pub fn set_t(
        &mut self,
        tenant: TenantId,
        key: &[u8],
        value: &[u8],
        expires_at: u64,
        state: Option<&TenantState>,
    ) -> Result<()> {
        let timer = OpTimer::start();
        self.stats.sets += 1;
        if let Some(st) = state {
            st.usage.sets.fetch_add(1, AtomicOrdering::SeqCst);
        }
        let result = match self.quarantine_guard(key) {
            Ok(()) => {
                let tkeys = self.keys.tenant_keys(tenant);
                let op = OpCtx { tenant, tkeys: &tkeys, now: ttl::now_ns(), expires_at, state };
                let r = self.apply_write(&op, key, value);
                self.observe(r)
            }
            Err(e) => Err(e),
        };
        self.hists.set.record(timer.elapsed_ns());
        result
    }

    /// Batched lookup in the default namespace.
    pub fn multi_get(&mut self, batch: &[&[u8]]) -> Result<Vec<Option<Vec<u8>>>> {
        self.multi_get_t(DEFAULT_TENANT, batch, None)
    }

    /// Batched lookup in `tenant`'s namespace: re-derives each touched
    /// bucket-set hash once per batch instead of once per key (the
    /// flattened-Merkle check of paper §4.3/§5.2 is the dominant per-op
    /// cost this amortizes).
    ///
    /// Results come back in input order; a clean miss is `None` rather
    /// than an error, so one absent key does not fail the batch. Any
    /// integrity violation aborts the whole batch fail-closed.
    pub fn multi_get_t(
        &mut self,
        tenant: TenantId,
        batch: &[&[u8]],
        state: Option<&TenantState>,
    ) -> Result<Vec<Option<Vec<u8>>>> {
        let timer = OpTimer::start();
        let result = match self.quarantine_guard_batch(batch.iter().copied()) {
            Ok(()) => {
                let r = self.multi_get_untimed(tenant, batch, state);
                self.observe(r)
            }
            Err(e) => Err(e),
        };
        self.hists.batch.record(timer.elapsed_ns());
        result
    }

    fn multi_get_untimed(
        &mut self,
        tenant: TenantId,
        batch: &[&[u8]],
        state: Option<&TenantState>,
    ) -> Result<Vec<Option<Vec<u8>>>> {
        self.stats.batches += 1;
        self.stats.batch_ops += batch.len() as u64;
        self.stats.gets += batch.len() as u64;
        if let Some(st) = state {
            st.usage.gets.fetch_add(batch.len() as u64, AtomicOrdering::SeqCst);
        }
        let mut results: Vec<Option<Vec<u8>>> = vec![None; batch.len()];
        let tkeys = self.keys.tenant_keys(tenant);
        let op = OpCtx { tenant, tkeys: &tkeys, now: ttl::now_ns(), expires_at: 0, state };

        if self.temp.is_some() {
            // Snapshot in progress: lookups span the temp and frozen
            // tables, whose bucket sets do not line up — per-op path.
            for (i, key) in batch.iter().enumerate() {
                if let Some((v, exp, from_cache)) = self.lookup_traced(&op, key)? {
                    if !from_cache && exp == 0 {
                        if let Some(cache) = self.cache.as_mut() {
                            cache.put(&nskey(tenant, key), &v);
                        }
                    }
                    results[i] = Some(v);
                }
            }
            self.tally_batch_hits(state, &results);
            return Ok(results);
        }

        // Cache pass first: resident values need no untrusted access.
        let mut pending = Vec::with_capacity(batch.len());
        for (i, key) in batch.iter().enumerate() {
            if let Some(cache) = self.cache.as_mut() {
                if let Some(v) = cache.get(&nskey(tenant, key)) {
                    self.stats.cache_hits += 1;
                    results[i] = Some(v);
                    continue;
                }
                self.stats.cache_misses += 1;
            }
            pending.push(i);
        }

        let Shard { cfg, keys, main, cache, stats, scratch, .. } = self;
        let main = main.as_ref().expect("main table present");

        // Group by bucket set so each set hash is derived exactly once.
        let mut order: Vec<(usize, usize, usize)> = pending
            .into_iter()
            .map(|i| {
                let bucket = bucket_of(keys, main, batch[i]);
                (main.sets.set_of(bucket), bucket, i)
            })
            .collect();
        order.sort_unstable();

        let mut verified: Option<usize> = None;
        for (set, bucket, i) in order {
            if verified == Some(set) {
                stats.batch_verifications_saved += 1;
            } else {
                verify_set(cfg, keys, main, stats, set)?;
                verified = Some(set);
            }
            if let Some((v, exp)) =
                get_in_bucket(cfg, keys, &op, main, stats, scratch, bucket, batch[i])?
            {
                if exp == 0 {
                    if let Some(cache) = cache.as_mut() {
                        cache.put(&nskey(tenant, batch[i]), &v);
                    }
                }
                results[i] = Some(v);
            }
        }
        self.tally_batch_hits(state, &results);
        Ok(results)
    }

    /// Batched write in the default namespace (no expiry).
    pub fn multi_set(&mut self, items: &[(&[u8], &[u8])]) -> Result<()> {
        self.multi_set_t(DEFAULT_TENANT, items, 0, None)
    }

    /// Batched write in `tenant`'s namespace: verifies each touched
    /// bucket-set hash once before the set's first write and re-stores
    /// it once after the set's last write, instead of doing both per
    /// key. All items share `expires_at` (`0` = no expiry).
    ///
    /// Items are validated up front, so a malformed item rejects the
    /// batch before any mutation. Writes to the same key replay in
    /// submission order (last write wins). An integrity violation
    /// mid-batch aborts fail-closed; a quota rejection aborts with
    /// earlier items of the batch already applied (each was logged).
    pub fn multi_set_t(
        &mut self,
        tenant: TenantId,
        items: &[(&[u8], &[u8])],
        expires_at: u64,
        state: Option<&TenantState>,
    ) -> Result<()> {
        let timer = OpTimer::start();
        let result = match self.quarantine_guard_batch(items.iter().map(|(k, _)| *k)) {
            Ok(()) => {
                let r = self.multi_set_untimed(tenant, items, expires_at, state);
                self.observe(r)
            }
            Err(e) => Err(e),
        };
        self.hists.batch.record(timer.elapsed_ns());
        result
    }

    fn multi_set_untimed(
        &mut self,
        tenant: TenantId,
        items: &[(&[u8], &[u8])],
        expires_at: u64,
        state: Option<&TenantState>,
    ) -> Result<()> {
        for (key, value) in items {
            self.check_item(key, value)?;
        }
        self.stats.batches += 1;
        self.stats.batch_ops += items.len() as u64;
        self.stats.sets += items.len() as u64;
        if let Some(st) = state {
            st.usage.sets.fetch_add(items.len() as u64, AtomicOrdering::SeqCst);
        }
        let tkeys = self.keys.tenant_keys(tenant);
        let op = OpCtx { tenant, tkeys: &tkeys, now: ttl::now_ns(), expires_at, state };

        if self.temp.is_some() {
            // Snapshot in progress: writes land in the small temp table,
            // where batching the set-hash work is not worth the
            // bookkeeping — the temp table is merged away shortly.
            for (key, value) in items {
                self.apply_write(&op, key, value)?;
            }
            return Ok(());
        }

        let Shard { cfg, keys, main, cache, index, stats, scratch, .. } = self;
        let main = main.as_mut().expect("main table present");

        // Sort by (set, bucket, input position): grouped per set for the
        // hash amortization, while duplicate keys (same bucket) keep
        // their submission order.
        let mut order: Vec<(usize, usize, usize)> = items
            .iter()
            .enumerate()
            .map(|(i, (key, _))| {
                let bucket = bucket_of(keys, main, key);
                (main.sets.set_of(bucket), bucket, i)
            })
            .collect();
        order.sort_unstable();

        let mut current: Option<usize> = None;
        for (set, bucket, i) in order {
            if current == Some(set) {
                stats.batch_verifications_saved += 1;
                stats.batch_hash_updates_saved += 1;
            } else {
                if let Some(prev) = current {
                    update_set_hash(cfg, keys, main, stats, prev)?;
                }
                verify_set(cfg, keys, main, stats, set)?;
                current = Some(set);
            }
            let (key, value) = items[i];
            set_in_bucket(cfg, keys, &op, main, stats, scratch, bucket, key, value).map_err(
                |e| {
                    // The set hash for the current group must be re-stored
                    // even on a quota rejection mid-batch: earlier items in
                    // this set already mutated their buckets.
                    if matches!(e, Error::QuotaExceeded { .. }) {
                        let _ = update_set_hash(cfg, keys, main, stats, set);
                    }
                    e
                },
            )?;
            if let Some(cache) = cache.as_mut() {
                let ns = nskey(tenant, key);
                if expires_at == 0 {
                    cache.put(&ns, value);
                } else {
                    cache.remove(&ns);
                }
            }
            if let Some(index) = index.as_mut() {
                index.insert(&nskey(tenant, key));
            }
        }
        if let Some(prev) = current {
            update_set_hash(cfg, keys, main, stats, prev)?;
        }
        Ok(())
    }

    /// Classifies batched results into the hit/miss counters.
    fn tally_batch_hits(&mut self, state: Option<&TenantState>, results: &[Option<Vec<u8>>]) {
        let hits = results.iter().filter(|r| r.is_some()).count() as u64;
        let misses = results.len() as u64 - hits;
        self.stats.hits += hits;
        self.stats.misses += misses;
        if let Some(st) = state {
            st.usage.hits.fetch_add(hits, AtomicOrdering::SeqCst);
            st.usage.misses.fetch_add(misses, AtomicOrdering::SeqCst);
        }
    }

    /// Removes `key` from the default namespace.
    pub fn delete(&mut self, key: &[u8]) -> Result<()> {
        self.delete_t(DEFAULT_TENANT, key, None)
    }

    /// Removes `key` from `tenant`'s namespace. Errors with
    /// [`Error::KeyNotFound`] when absent — or already past its
    /// deadline, in which case physical removal is left to the sweep
    /// (which WAL-logs it; an unlogged removal here would diverge from
    /// recovery replay).
    pub fn delete_t(
        &mut self,
        tenant: TenantId,
        key: &[u8],
        state: Option<&TenantState>,
    ) -> Result<()> {
        let timer = OpTimer::start();
        let result = match self.quarantine_guard(key) {
            Ok(()) => {
                let r = self.delete_untimed(tenant, key, state);
                self.observe(r)
            }
            Err(e) => {
                self.stats.deletes += 1;
                Err(e)
            }
        };
        self.hists.delete.record(timer.elapsed_ns());
        result
    }

    fn delete_untimed(
        &mut self,
        tenant: TenantId,
        key: &[u8],
        state: Option<&TenantState>,
    ) -> Result<()> {
        self.stats.deletes += 1;
        let ns = nskey(tenant, key);
        if let Some(cache) = self.cache.as_mut() {
            cache.remove(&ns);
        }
        let tkeys = self.keys.tenant_keys(tenant);
        let op = OpCtx { tenant, tkeys: &tkeys, now: ttl::now_ns(), expires_at: 0, state };
        if let Some(temp) = self.temp.as_mut() {
            self.stats.temp_table_ops += 1;
            // Remove any temp-table copy.
            let (cfg, keys) = (&self.cfg, &self.keys);
            let removed_temp = delete_in(
                cfg,
                keys,
                &op,
                &mut temp.ctx,
                &mut self.stats,
                &mut self.scratch,
                key,
                false,
            )?;
            // Check the frozen main for presence (verified search).
            let frozen = Arc::clone(self.frozen.as_ref().expect("frozen accompanies temp"));
            let in_frozen = get_in(
                &self.cfg,
                &self.keys,
                &op,
                &frozen,
                &mut self.stats,
                &mut self.scratch,
                key,
            )?
            .is_some();
            if !removed_temp && !in_frozen {
                self.stats.misses += 1;
                if let Some(st) = state {
                    st.usage.misses.fetch_add(1, AtomicOrdering::SeqCst);
                }
                return Err(Error::KeyNotFound);
            }
            if in_frozen {
                let temp = self.temp.as_mut().expect("checked above");
                temp.tombstones.insert(ns.clone());
            }
            if let Some(index) = self.index.as_mut() {
                index.remove(&ns);
            }
            self.stats.hits += 1;
            if let Some(st) = state {
                st.usage.hits.fetch_add(1, AtomicOrdering::SeqCst);
            }
            return Ok(());
        }
        let main = self.main.as_mut().expect("main table present");
        if delete_in(
            &self.cfg,
            &self.keys,
            &op,
            main,
            &mut self.stats,
            &mut self.scratch,
            key,
            false,
        )? {
            if let Some(index) = self.index.as_mut() {
                index.remove(&ns);
            }
            self.stats.hits += 1;
            if let Some(st) = state {
                st.usage.hits.fetch_add(1, AtomicOrdering::SeqCst);
            }
            Ok(())
        } else {
            self.stats.misses += 1;
            if let Some(st) = state {
                st.usage.misses.fetch_add(1, AtomicOrdering::SeqCst);
            }
            Err(Error::KeyNotFound)
        }
    }

    /// Appends `suffix` to the value of `key` (default namespace),
    /// creating it when absent — one of the server-side operations
    /// motivating server-side encryption (paper §3.2, Fig. 12).
    pub fn append(&mut self, key: &[u8], suffix: &[u8]) -> Result<usize> {
        self.append_value_t(DEFAULT_TENANT, key, suffix, None).map(|v| v.len())
    }

    /// Tenant-scoped append. Any existing expiry deadline is cleared by
    /// the rewrite (the produced value is WAL-logged as a plain set, so
    /// replay must be deadline-free to stay idempotent).
    pub fn append_value_t(
        &mut self,
        tenant: TenantId,
        key: &[u8],
        suffix: &[u8],
        state: Option<&TenantState>,
    ) -> Result<Vec<u8>> {
        self.stats.appends += 1;
        self.quarantine_guard(key)?;
        let tkeys = self.keys.tenant_keys(tenant);
        let op = OpCtx { tenant, tkeys: &tkeys, now: ttl::now_ns(), expires_at: 0, state };
        let result = (|| {
            let mut value = self.lookup(&op, key)?.unwrap_or_default();
            value.extend_from_slice(suffix);
            self.apply_write(&op, key, &value)?;
            Ok(value)
        })();
        self.observe(result)
    }

    /// Adds `delta` to the decimal-integer value of `key` in the default
    /// namespace (creating it as `delta` when absent) and returns the
    /// new value.
    pub fn increment(&mut self, key: &[u8], delta: i64) -> Result<i64> {
        self.increment_t(DEFAULT_TENANT, key, delta, None)
    }

    /// Tenant-scoped increment; clears any expiry deadline like
    /// [`Shard::append_value_t`].
    pub fn increment_t(
        &mut self,
        tenant: TenantId,
        key: &[u8],
        delta: i64,
        state: Option<&TenantState>,
    ) -> Result<i64> {
        self.stats.increments += 1;
        self.quarantine_guard(key)?;
        let tkeys = self.keys.tenant_keys(tenant);
        let op = OpCtx { tenant, tkeys: &tkeys, now: ttl::now_ns(), expires_at: 0, state };
        let result = (|| {
            let current = match self.lookup(&op, key)? {
                Some(v) => {
                    let text = core::str::from_utf8(&v).map_err(|_| Error::ValueNotNumeric)?;
                    text.trim().parse::<i64>().map_err(|_| Error::ValueNotNumeric)?
                }
                None => 0,
            };
            let next = current.checked_add(delta).ok_or(Error::NumericOverflow)?;
            self.apply_write(&op, key, next.to_string().as_bytes())?;
            Ok(next)
        })();
        self.observe(result)
    }

    /// True when `key` exists in the default namespace (verified lookup).
    pub fn exists(&mut self, key: &[u8]) -> Result<bool> {
        self.exists_t(DEFAULT_TENANT, key, None)
    }

    /// True when `key` exists in `tenant`'s namespace (verified lookup;
    /// an expired entry reads as absent).
    pub fn exists_t(
        &mut self,
        tenant: TenantId,
        key: &[u8],
        state: Option<&TenantState>,
    ) -> Result<bool> {
        self.quarantine_guard(key)?;
        let tkeys = self.keys.tenant_keys(tenant);
        let op = OpCtx { tenant, tkeys: &tkeys, now: ttl::now_ns(), expires_at: 0, state };
        let result = self.lookup(&op, key).map(|v| v.is_some());
        self.observe(result)
    }

    /// Recovery replay of a logged delete: removes `key` regardless of
    /// expiry state (the logged delete may itself be a sweep reap), with
    /// no stats or quota accounting — usage is recounted after replay.
    pub(crate) fn purge_t(&mut self, tenant: TenantId, key: &[u8]) -> Result<bool> {
        self.quarantine_guard(key)?;
        let ns = nskey(tenant, key);
        if let Some(cache) = self.cache.as_mut() {
            cache.remove(&ns);
        }
        let tkeys = self.keys.tenant_keys(tenant);
        let op = OpCtx { tenant, tkeys: &tkeys, now: ttl::now_ns(), expires_at: 0, state: None };
        let main = self.main.as_mut().expect("main table present");
        let removed = delete_in(
            &self.cfg,
            &self.keys,
            &op,
            main,
            &mut self.stats,
            &mut self.scratch,
            key,
            true,
        )?;
        if removed {
            if let Some(index) = self.index.as_mut() {
                index.remove(&ns);
            }
        }
        Ok(removed)
    }

    /// Ordered range scan over `[start, end)` in the default namespace
    /// (requires [`Config::ordered_index`]): returns up to `limit`
    /// key-value pairs in key order, each retrieved through the fully
    /// verified read path.
    pub fn scan_range(
        &mut self,
        start: &[u8],
        end: &[u8],
        limit: usize,
    ) -> Result<Vec<(Vec<u8>, Vec<u8>)>> {
        self.scan_range_t(DEFAULT_TENANT, start, end, limit)
    }

    /// Ordered prefix scan in the default namespace (requires
    /// [`Config::ordered_index`]).
    pub fn scan_prefix(&mut self, prefix: &[u8], limit: usize) -> Result<Vec<(Vec<u8>, Vec<u8>)>> {
        self.scan_prefix_t(DEFAULT_TENANT, prefix, limit)
    }

    /// Tenant-scoped ordered range scan. The index stores namespaced
    /// keys, so the scan window is confined to `tenant` by construction
    /// — it cannot leak even the *existence* of another tenant's keys.
    pub fn scan_range_t(
        &mut self,
        tenant: TenantId,
        start: &[u8],
        end: &[u8],
        limit: usize,
    ) -> Result<Vec<(Vec<u8>, Vec<u8>)>> {
        self.quarantine_guard_scan()?;
        let nskeys = self.index.as_ref().ok_or(Error::IndexDisabled)?.range(
            &nskey(tenant, start),
            &nskey(tenant, end),
            limit,
        );
        self.collect_keys(tenant, nskeys)
    }

    /// Tenant-scoped ordered prefix scan.
    pub fn scan_prefix_t(
        &mut self,
        tenant: TenantId,
        prefix: &[u8],
        limit: usize,
    ) -> Result<Vec<(Vec<u8>, Vec<u8>)>> {
        self.quarantine_guard_scan()?;
        let nskeys =
            self.index.as_ref().ok_or(Error::IndexDisabled)?.prefix(&nskey(tenant, prefix), limit);
        self.collect_keys(tenant, nskeys)
    }

    fn collect_keys(
        &mut self,
        tenant: TenantId,
        nskeys: Vec<Vec<u8>>,
    ) -> Result<Vec<(Vec<u8>, Vec<u8>)>> {
        let tkeys = self.keys.tenant_keys(tenant);
        let op = OpCtx { tenant, tkeys: &tkeys, now: ttl::now_ns(), expires_at: 0, state: None };
        let result = (|| {
            let mut out = Vec::with_capacity(nskeys.len());
            for ns in &nskeys {
                let (_, key) = split_nskey(ns);
                // The index can briefly lead the table during a snapshot
                // merge, and expired entries linger until swept; skip
                // keys that verified-miss rather than failing.
                if let Some((value, _, _)) = self.lookup_traced(&op, key)? {
                    out.push((key.to_vec(), value));
                }
            }
            Ok(out)
        })();
        self.observe(result)
    }

    /// Physically removes entries whose deadline is at or before `now`,
    /// returning the `(tenant, key)` pairs reaped so the store can
    /// WAL-log each removal (recovery must not resurrect them).
    ///
    /// Only entries whose MAC verifies under their owner's keys are
    /// reaped — a tampered `expires_at` cannot be laundered into a
    /// silent delete; it either fails the guarding verification here or
    /// trips [`Error::IntegrityViolation`] on the next read. Skipped
    /// while a snapshot freeze is active (the frozen table is immutable;
    /// lazy expiry keeps hiding dead entries until the next sweep).
    pub fn sweep_expired(
        &mut self,
        now: u64,
        registry: &TenantRegistry,
    ) -> Vec<(TenantId, Vec<u8>)> {
        let mut reaped = Vec::new();
        if self.temp.is_some() || self.quarantine.whole {
            return reaped;
        }
        // Pass 1 (read-only): collect authenticated expired candidates.
        let mut candidates: Vec<(TenantId, Vec<u8>)> = Vec::new();
        {
            let main = self.main.as_ref().expect("main table present");
            let mut handles = Vec::new();
            main.for_each_entry(|bucket, handle| handles.push((bucket, handle)));
            for (bucket, handle) in handles {
                // Quarantined sets are out of bounds — membership is
                // checked directly so the sweep does not inflate the
                // `quarantine_rejections` client-op counter.
                if self.quarantine.sets.contains(&main.sets.set_of(bucket)) {
                    continue;
                }
                let Some(header) = main.try_header(handle) else { continue };
                if !header.expired_at(now) {
                    continue;
                }
                let Some(ct) = main.try_ciphertext(handle, &header) else { continue };
                let owner = self.keys.tenant_keys(header.tenant);
                if !entry::verify_mac(&owner.mac, &header, ct) {
                    continue;
                }
                candidates.push((header.tenant, entry::decrypt_key(&owner.enc, &header, ct)));
            }
        }
        // Pass 2: reap through the normal verified delete path, so the
        // set hashes and MAC chains are maintained like any other write.
        for (tenant, key) in candidates {
            let state = registry.state(tenant);
            let tkeys = self.keys.tenant_keys(tenant);
            let op =
                OpCtx { tenant, tkeys: &tkeys, now, expires_at: 0, state: Some(state.as_ref()) };
            let main = self.main.as_mut().expect("main table present");
            let r = delete_in(
                &self.cfg,
                &self.keys,
                &op,
                main,
                &mut self.stats,
                &mut self.scratch,
                &key,
                true,
            );
            let r = self.observe(r);
            if let Ok(true) = r {
                self.stats.expired_swept += 1;
                state.usage.expired_swept.fetch_add(1, AtomicOrdering::SeqCst);
                let ns = nskey(tenant, &key);
                if let Some(index) = self.index.as_mut() {
                    index.remove(&ns);
                }
                if let Some(cache) = self.cache.as_mut() {
                    cache.remove(&ns);
                }
                reaped.push((tenant, key));
            }
            if self.quarantine.whole {
                break;
            }
        }
        reaped
    }

    /// Tallies live per-tenant occupancy — `(bytes, keys)` per tenant —
    /// straight from the table headers. Used by the store to re-baseline
    /// quota accounting after restore/recovery (expired-but-unswept
    /// entries still count: they still occupy untrusted memory).
    pub(crate) fn usage_by_tenant(&self) -> HashMap<TenantId, (u64, u64)> {
        let mut out = HashMap::new();
        if let Some(main) = self.main.as_ref() {
            tally_usage(main, &mut out);
        } else if let Some(frozen) = self.frozen.as_ref() {
            tally_usage(frozen, &mut out);
        }
        if let Some(temp) = self.temp.as_ref() {
            tally_usage(&temp.ctx, &mut out);
        }
        out
    }

    /// The number of live entries (main + temp tables). Entries past
    /// their deadline but not yet swept still count.
    pub fn len(&self) -> usize {
        let base = self
            .main
            .as_ref()
            .map(|m| m.count)
            .or_else(|| self.frozen.as_ref().map(|f| f.count))
            .unwrap_or(0);
        let temp = self.temp.as_ref().map(|t| t.ctx.count).unwrap_or(0);
        base + temp
    }

    /// True when the shard holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// This shard's operation counters.
    pub fn stats(&self) -> &OpStats {
        &self.stats
    }

    /// This shard's latency histograms.
    pub fn hists(&self) -> &OpHists {
        &self.hists
    }

    /// Resets the operation counters and latency histograms.
    pub fn reset_stats(&mut self) {
        self.stats = OpStats::default();
        self.hists = OpHists::default();
    }

    /// Folds this shard's counters, histograms, and occupancy gauges into
    /// a store-wide snapshot. Called under the shard lock, so the
    /// contribution is internally consistent.
    pub(crate) fn contribute_snapshot(&self, snap: &mut StatsSnapshot) {
        snap.ops.merge(&self.stats);
        snap.hists.merge(&self.hists);
        snap.entries += self.len() as u64;
        let mut add_table = |ctx: &TableCtx| {
            snap.heap_live_bytes += ctx.heap.live_bytes() as u64;
            snap.heap_chunks += ctx.heap.chunk_count() as u64;
        };
        if let Some(main) = self.main.as_ref() {
            add_table(main);
        }
        if let Some(frozen) = self.frozen.as_ref() {
            add_table(frozen);
        }
        if let Some(temp) = self.temp.as_ref() {
            add_table(&temp.ctx);
        }
        if let Some(cache) = self.cache.as_ref() {
            snap.cache_used_bytes += cache.used_bytes() as u64;
            snap.cache_entries += cache.len() as u64;
        }
        if self.quarantine.whole {
            snap.quarantined_shards += 1;
        } else {
            snap.quarantined_sets += self.quarantine.sets.len() as u64;
        }
    }

    /// The shard's configuration.
    pub(crate) fn config(&self) -> &ShardConfig {
        &self.cfg
    }

    /// Read access to the main table (diagnostics / persistence).
    pub(crate) fn main_table(&self) -> Option<&TableCtx> {
        self.main.as_ref()
    }

    /// Mutable access to the main table (persistence restore).
    pub(crate) fn main_table_mut(&mut self) -> Option<&mut TableCtx> {
        self.main.as_mut()
    }

    /// Approximate enclave bytes consumed by the ordered index (0 when
    /// disabled) — check this against the EPC budget before enabling the
    /// index on large key counts.
    pub fn index_bytes(&self) -> usize {
        self.index.as_ref().map(|i| i.approx_bytes()).unwrap_or(0)
    }

    /// Rebuilds the ordered index from the main table (snapshot restore).
    pub(crate) fn rebuild_index(&mut self) -> Result<()> {
        if !self.cfg.ordered_index {
            return Ok(());
        }
        let mut index = OrderedIndex::new();
        let main = self.main.as_ref().expect("main table present");
        let mut bad = false;
        main.for_each_entry(|_, handle| {
            let header = main.header(handle);
            match main.try_ciphertext(handle, &header) {
                Some(ct) => {
                    let tkeys = self.keys.tenant_keys(header.tenant);
                    let key = entry::decrypt_key(&tkeys.enc, &header, ct);
                    index.insert(&nskey(header.tenant, &key));
                }
                None => bad = true,
            }
        });
        if bad {
            return Err(Error::IntegrityViolation { bucket: 0 });
        }
        self.index = Some(index);
        Ok(())
    }

    /// True when a snapshot is in progress (temp table active).
    pub fn is_snapshotting(&self) -> bool {
        self.temp.is_some()
    }

    /// Verifies every bucket set of the main table — used after a
    /// snapshot restore to authenticate the reconstructed table against
    /// the sealed MAC hash array.
    pub fn verify_all_sets(&mut self) -> Result<()> {
        let main = self.main.as_ref().expect("main table present");
        for set in 0..main.sets.num_sets() {
            verify_set(&self.cfg, &self.keys, main, &mut self.stats, set)?;
        }
        // With MAC bucketing, also cross-check every chain length so an
        // unlinked entry in the restored table cannot hide.
        for bucket in 0..main.buckets() {
            verify_absence_consistency(&self.cfg, main, &mut self.scratch, bucket)?;
        }
        Ok(())
    }

    /// Freezes the main table for a snapshot: the returned `Arc` is handed
    /// to the snapshot writer; subsequent writes go to a fresh temporary
    /// table (Algorithm 1).
    pub(crate) fn freeze(&mut self) -> Arc<TableCtx> {
        assert!(self.temp.is_none(), "snapshot already in progress");
        let main = self.main.take().expect("main table present");
        let arc = Arc::new(main);
        self.frozen = Some(Arc::clone(&arc));
        // The temporary table is small: writes during a snapshot window are
        // bounded, and it is merged away afterwards.
        let temp_buckets = (self.cfg.buckets / 16).max(64);
        let heap = UntrustedHeap::new(Arc::clone(&self.enclave), self.cfg.alloc);
        let ctx = TableCtx::new(heap, temp_buckets, MacStore::plain(temp_buckets));
        self.temp = Some(TempTable { ctx, tombstones: HashSet::new() });
        arc
    }

    /// Unfreezes after the snapshot writer has dropped its `Arc`,
    /// merging the temporary table back into the main one. Quota
    /// accounting is re-baselined by the store afterwards (via
    /// [`Shard::usage_by_tenant`]), so the unmetered merge here cannot
    /// leave usage drifted.
    pub(crate) fn unfreeze(&mut self) -> Result<()> {
        let arc = self.frozen.take().expect("freeze() must precede unfreeze()");
        let mut main = Arc::try_unwrap(arc).map_err(|arc| {
            self.frozen = Some(arc);
            Error::Persistence("snapshot writer still holds the frozen table".into())
        })?;
        let temp = self.temp.take().expect("temp accompanies frozen");
        let now = ttl::now_ns();

        // Apply deletions first, then replay temp-table writes.
        for ns in &temp.tombstones {
            let (tenant, key) = split_nskey(ns);
            let tkeys = self.keys.tenant_keys(tenant);
            let op = OpCtx { tenant, tkeys: &tkeys, now, expires_at: 0, state: None };
            let _ = delete_in(
                &self.cfg,
                &self.keys,
                &op,
                &mut main,
                &mut self.stats,
                &mut self.scratch,
                key,
                true,
            )?;
        }
        let mut handles = Vec::new();
        temp.ctx.for_each_entry(|_, h| handles.push(h));
        let mut plain = Vec::new();
        for h in handles {
            let header = temp.ctx.header(h);
            let ct = temp.ctx.ciphertext(h, &header);
            let tkeys = self.keys.tenant_keys(header.tenant);
            // Fused verify+decrypt of the temp-table entry before it is
            // re-sealed into the merged main table.
            if !entry::open_entry(&tkeys.enc, &tkeys.mac, &header, ct, &mut plain) {
                return Err(Error::IntegrityViolation { bucket: 0 });
            }
            let (key, value) = plain.split_at(header.key_len as usize);
            let op = OpCtx {
                tenant: header.tenant,
                tkeys: &tkeys,
                now,
                expires_at: header.expires_at,
                state: None,
            };
            set_in(
                &self.cfg,
                &self.keys,
                &op,
                &mut main,
                &mut self.stats,
                &mut self.scratch,
                key,
                value,
            )?;
        }
        self.main = Some(main);
        Ok(())
    }
}
#[cfg(test)]
mod tests {
    use super::*;
    use sgx_sim::enclave::EnclaveBuilder;
    use sgx_sim::vclock;

    fn shard_with(cfg: Config) -> Shard {
        let enclave = EnclaveBuilder::new("shard-test").epc_bytes(4 << 20).build();
        let keys = Arc::new(StoreKeys::generate(&enclave));
        Shard::new(enclave, keys, ShardConfig::from_config(&cfg)).unwrap()
    }

    fn small_cfg() -> Config {
        Config::shield_opt().buckets(64).mac_hashes(16).with_shards(1)
    }

    #[test]
    fn set_get_roundtrip() {
        let mut s = shard_with(small_cfg());
        vclock::reset();
        s.set(b"alpha", b"one").unwrap();
        s.set(b"beta", b"two").unwrap();
        assert_eq!(s.get(b"alpha").unwrap(), b"one");
        assert_eq!(s.get(b"beta").unwrap(), b"two");
        assert_eq!(s.get(b"gamma"), Err(Error::KeyNotFound));
        assert_eq!(s.len(), 2);
        vclock::reset();
    }

    #[test]
    fn update_overwrites_and_bumps_counter() {
        let mut s = shard_with(small_cfg());
        vclock::reset();
        s.set(b"k", b"v1").unwrap();
        s.set(b"k", b"v2-longer-than-before").unwrap();
        assert_eq!(s.get(b"k").unwrap(), b"v2-longer-than-before");
        assert_eq!(s.len(), 1);
        assert_eq!(s.stats().inserts, 1);
        assert_eq!(s.stats().inplace_updates + s.stats().realloc_updates, 1);
        vclock::reset();
    }

    #[test]
    fn in_place_vs_realloc_updates() {
        let mut s = shard_with(small_cfg());
        vclock::reset();
        s.set(b"k", &[0u8; 10]).unwrap();
        s.set(b"k", &[1u8; 11]).unwrap(); // same size class
        assert_eq!(s.stats().inplace_updates, 1);
        s.set(b"k", &[2u8; 500]).unwrap(); // outgrows class
        assert_eq!(s.stats().realloc_updates, 1);
        assert_eq!(s.get(b"k").unwrap(), vec![2u8; 500]);
        vclock::reset();
    }

    #[test]
    fn delete_removes() {
        let mut s = shard_with(small_cfg());
        vclock::reset();
        s.set(b"k", b"v").unwrap();
        s.delete(b"k").unwrap();
        assert_eq!(s.get(b"k"), Err(Error::KeyNotFound));
        assert_eq!(s.delete(b"k"), Err(Error::KeyNotFound));
        assert_eq!(s.len(), 0);
        vclock::reset();
    }

    #[test]
    fn chains_survive_many_colliding_keys() {
        // A single bucket forces every key into one chain.
        let cfg = Config::shield_opt().buckets(1).mac_hashes(1);
        let mut s = shard_with(cfg);
        vclock::reset();
        for i in 0..50u32 {
            s.set(format!("key-{i}").as_bytes(), format!("val-{i}").as_bytes()).unwrap();
        }
        for i in 0..50u32 {
            assert_eq!(
                s.get(format!("key-{i}").as_bytes()).unwrap(),
                format!("val-{i}").as_bytes()
            );
        }
        // Delete odd keys and re-check.
        for i in (1..50u32).step_by(2) {
            s.delete(format!("key-{i}").as_bytes()).unwrap();
        }
        for i in 0..50u32 {
            let r = s.get(format!("key-{i}").as_bytes());
            if i % 2 == 0 {
                assert!(r.is_ok());
            } else {
                assert_eq!(r, Err(Error::KeyNotFound));
            }
        }
        vclock::reset();
    }

    #[test]
    fn append_and_increment() {
        let mut s = shard_with(small_cfg());
        vclock::reset();
        assert_eq!(s.append(b"log", b"hello ").unwrap(), 6);
        assert_eq!(s.append(b"log", b"world").unwrap(), 11);
        assert_eq!(s.get(b"log").unwrap(), b"hello world");

        assert_eq!(s.increment(b"ctr", 5).unwrap(), 5);
        assert_eq!(s.increment(b"ctr", -2).unwrap(), 3);
        assert_eq!(s.get(b"ctr").unwrap(), b"3");

        s.set(b"text", b"not a number").unwrap();
        assert_eq!(s.increment(b"text", 1), Err(Error::ValueNotNumeric));
        vclock::reset();
    }

    #[test]
    fn increment_overflow_detected() {
        let mut s = shard_with(small_cfg());
        vclock::reset();
        s.set(b"c", i64::MAX.to_string().as_bytes()).unwrap();
        assert_eq!(s.increment(b"c", 1), Err(Error::NumericOverflow));
        vclock::reset();
    }

    #[test]
    fn key_hint_reduces_decryptions() {
        // One bucket, many keys: without hints, every search decrypts the
        // whole chain; with hints it decrypts ~1/256 of it (Fig. 9).
        let n = 64u32;
        let mut with_hint = shard_with(Config::shield_opt().buckets(1).mac_hashes(1));
        let mut without = shard_with(
            Config { key_hint: false, two_step_search: false, ..Config::shield_opt() }
                .buckets(1)
                .mac_hashes(1),
        );
        vclock::reset();
        for s in [&mut with_hint, &mut without] {
            for i in 0..n {
                s.set(format!("key-{i}").as_bytes(), b"v").unwrap();
            }
            s.reset_stats();
            for i in 0..n {
                s.get(format!("key-{i}").as_bytes()).unwrap();
            }
        }
        assert!(
            with_hint.stats().key_decryptions * 4 < without.stats().key_decryptions,
            "hints: {} vs no hints: {}",
            with_hint.stats().key_decryptions,
            without.stats().key_decryptions
        );
        vclock::reset();
    }

    #[test]
    fn integrity_violation_detected_on_value_tamper() {
        let mut s = shard_with(small_cfg());
        vclock::reset();
        s.set(b"victim", b"original-value").unwrap();
        // Corrupt the entry ciphertext in untrusted memory.
        let (handle, _) = {
            let main = s.main_table().unwrap();
            let mut found = None;
            main.for_each_entry(|b, h| found = Some((h, b)));
            found.unwrap()
        };
        let main = s.main.as_mut().unwrap();
        main.heap.bytes_at_mut(handle, entry::HEADER_LEN, 1)[0] ^= 0xff;
        assert!(matches!(s.get(b"victim"), Err(Error::IntegrityViolation { .. })));
        vclock::reset();
    }

    #[test]
    fn integrity_violation_detected_on_entry_removal() {
        // Unlinking an entry from the chain (availability attack on the
        // index) must be caught when the victim key is looked up: the
        // miss-path consistency check compares chain length against the
        // MAC chain. Other keys keep working (they prove themselves).
        let cfg = Config::shield_opt().buckets(1).mac_hashes(1);
        let mut s = shard_with(cfg);
        vclock::reset();
        s.set(b"a", b"1").unwrap();
        s.set(b"b", b"2").unwrap(); // chain head: b -> a
                                    // Drop the chain head ("b") behind the store's back.
        let main = s.main.as_mut().unwrap();
        let head = main.heads[0];
        let next = main.heap.read_u64_at(head, entry::OFF_NEXT);
        main.heads[0] = next;
        // The surviving key still reads correctly.
        assert_eq!(s.get(b"a").unwrap(), b"1");
        // The unlinked key surfaces as tampering, not a silent miss.
        assert!(matches!(s.get(b"b"), Err(Error::IntegrityViolation { .. })));
        // Inserting into the corrupted bucket is refused too.
        assert!(matches!(s.set(b"c", b"3"), Err(Error::IntegrityViolation { .. })));
        vclock::reset();
    }

    #[test]
    fn entry_removal_without_mac_bucket_detected_by_set_hash() {
        // Without MAC bucketing the gather walks the chain itself, so an
        // unlink changes the recomputed set hash for ANY access.
        let cfg = Config { mac_bucket: false, ..Config::shield_opt() }.buckets(1).mac_hashes(1);
        let mut s = shard_with(cfg);
        vclock::reset();
        s.set(b"a", b"1").unwrap();
        s.set(b"b", b"2").unwrap();
        let main = s.main.as_mut().unwrap();
        let head = main.heads[0];
        let next = main.heap.read_u64_at(head, entry::OFF_NEXT);
        main.heads[0] = next;
        assert!(matches!(s.get(b"a"), Err(Error::IntegrityViolation { .. })));
        vclock::reset();
    }

    #[test]
    fn hint_corruption_defeated_by_two_step_search() {
        let cfg = Config::shield_opt().buckets(1).mac_hashes(1);
        let mut s = shard_with(cfg);
        vclock::reset();
        s.set(b"target", b"payload").unwrap();
        // Attacker flips the key hint in untrusted memory. The MAC covers
        // the hint, so verification would fail on the *found* entry — but
        // first the search must still find it via the two-step fallback.
        let mut handle = None;
        s.main_table().unwrap().for_each_entry(|_, h| handle = Some(h));
        let main = s.main.as_mut().unwrap();
        main.heap.bytes_at_mut(handle.unwrap(), entry::OFF_HINT, 1)[0] ^= 0xff;
        // The hint is MAC-covered, so the get reports tampering rather
        // than silently missing the key (availability attack detected).
        let r = s.get(b"target");
        assert!(
            matches!(r, Err(Error::IntegrityViolation { .. })),
            "two-step search must find the entry and expose the tamper: {r:?}"
        );
        vclock::reset();
    }

    #[test]
    fn snapshot_freeze_serves_reads_and_absorbs_writes() {
        let mut s = shard_with(small_cfg());
        vclock::reset();
        s.set(b"stable", b"before").unwrap();
        s.set(b"mutated", b"before").unwrap();
        let frozen = s.freeze();
        assert!(s.is_snapshotting());

        // Reads hit the frozen table.
        assert_eq!(s.get(b"stable").unwrap(), b"before");
        // Writes land in the temp table and shadow the frozen value.
        s.set(b"mutated", b"after").unwrap();
        s.set(b"fresh", b"new").unwrap();
        assert_eq!(s.get(b"mutated").unwrap(), b"after");
        assert_eq!(s.get(b"fresh").unwrap(), b"new");
        // Deletes are tombstoned.
        s.delete(b"stable").unwrap();
        assert_eq!(s.get(b"stable"), Err(Error::KeyNotFound));

        // The frozen table is unchanged throughout.
        assert_eq!(frozen.count, 2);

        drop(frozen);
        s.unfreeze().unwrap();
        assert!(!s.is_snapshotting());
        assert_eq!(s.get(b"mutated").unwrap(), b"after");
        assert_eq!(s.get(b"fresh").unwrap(), b"new");
        assert_eq!(s.get(b"stable"), Err(Error::KeyNotFound));
        assert_eq!(s.len(), 2);
        vclock::reset();
    }

    #[test]
    fn unfreeze_fails_while_writer_active() {
        let mut s = shard_with(small_cfg());
        vclock::reset();
        s.set(b"k", b"v").unwrap();
        let frozen = s.freeze();
        assert!(matches!(s.unfreeze(), Err(Error::Persistence(_))));
        drop(frozen);
        s.unfreeze().unwrap();
        assert_eq!(s.get(b"k").unwrap(), b"v");
        vclock::reset();
    }

    #[test]
    fn snapshot_set_then_delete_then_set_roundtrips() {
        let mut s = shard_with(small_cfg());
        vclock::reset();
        s.set(b"k", b"v0").unwrap();
        let frozen = s.freeze();
        s.delete(b"k").unwrap();
        s.set(b"k", b"v1").unwrap();
        assert_eq!(s.get(b"k").unwrap(), b"v1");
        drop(frozen);
        s.unfreeze().unwrap();
        assert_eq!(s.get(b"k").unwrap(), b"v1");
        assert_eq!(s.len(), 1);
        vclock::reset();
    }

    #[test]
    fn cache_serves_hot_reads() {
        let mut s = shard_with(small_cfg().with_cache(1 << 16));
        s.enable_cache(1 << 16);
        vclock::reset();
        s.set(b"hot", b"value").unwrap();
        for _ in 0..10 {
            assert_eq!(s.get(b"hot").unwrap(), b"value");
        }
        assert!(s.stats().cache_hits >= 9, "cache hits: {}", s.stats().cache_hits);
        // Updates keep the cache coherent.
        s.set(b"hot", b"value2").unwrap();
        assert_eq!(s.get(b"hot").unwrap(), b"value2");
        s.delete(b"hot").unwrap();
        assert_eq!(s.get(b"hot"), Err(Error::KeyNotFound));
        vclock::reset();
    }

    #[test]
    fn empty_key_rejected() {
        let mut s = shard_with(small_cfg());
        assert!(matches!(s.set(b"", b"v"), Err(Error::OversizeItem { .. })));
    }

    #[test]
    fn multi_set_multi_get_roundtrip_with_misses() {
        let mut s = shard_with(small_cfg());
        vclock::reset();
        let items: Vec<(Vec<u8>, Vec<u8>)> = (0..20u32)
            .map(|i| (format!("key-{i}").into_bytes(), format!("val-{i}").into_bytes()))
            .collect();
        let refs: Vec<(&[u8], &[u8])> =
            items.iter().map(|(k, v)| (k.as_slice(), v.as_slice())).collect();
        s.multi_set(&refs).unwrap();

        let mut lookups: Vec<&[u8]> = items.iter().map(|(k, _)| k.as_slice()).collect();
        lookups.push(b"absent-key");
        let got = s.multi_get(&lookups).unwrap();
        assert_eq!(got.len(), 21);
        for (i, (_, v)) in items.iter().enumerate() {
            assert_eq!(got[i].as_deref(), Some(v.as_slice()));
        }
        assert_eq!(got[20], None);
        assert_eq!(s.stats().batches, 2);
        assert_eq!(s.stats().batch_ops, 41);
        vclock::reset();
    }

    #[test]
    fn multi_set_duplicate_keys_last_write_wins() {
        let mut s = shard_with(small_cfg());
        vclock::reset();
        s.multi_set(&[
            (b"dup".as_slice(), b"first".as_slice()),
            (b"other", b"x"),
            (b"dup", b"second"),
            (b"dup", b"third"),
        ])
        .unwrap();
        assert_eq!(s.get(b"dup").unwrap(), b"third");
        assert_eq!(s.len(), 2);
        vclock::reset();
    }

    #[test]
    fn batch_on_one_bucket_set_verifies_once() {
        // One bucket => one bucket set: the whole batch shares a single
        // set hash, so the batched path derives it exactly once.
        let mut s = shard_with(Config::shield_opt().buckets(1).mac_hashes(1));
        vclock::reset();
        let items: Vec<(Vec<u8>, Vec<u8>)> =
            (0..16u32).map(|i| (format!("k{i}").into_bytes(), b"v".to_vec())).collect();
        let refs: Vec<(&[u8], &[u8])> =
            items.iter().map(|(k, v)| (k.as_slice(), v.as_slice())).collect();

        s.reset_stats();
        s.multi_set(&refs).unwrap();
        assert_eq!(s.stats().integrity_verifications, 1);
        assert_eq!(s.stats().batch_verifications_saved, 15);
        assert_eq!(s.stats().batch_hash_updates_saved, 15);

        let lookups: Vec<&[u8]> = items.iter().map(|(k, _)| k.as_slice()).collect();
        s.reset_stats();
        let got = s.multi_get(&lookups).unwrap();
        assert!(got.iter().all(|r| r.is_some()));
        assert_eq!(s.stats().integrity_verifications, 1);
        assert_eq!(s.stats().batch_verifications_saved, 15);
        vclock::reset();
    }

    #[test]
    fn batched_and_per_op_paths_agree() {
        let mut batched = shard_with(small_cfg());
        let mut per_op = shard_with(small_cfg());
        vclock::reset();
        let items: Vec<(Vec<u8>, Vec<u8>)> = (0..64u32)
            .map(|i| (format!("key-{i}").into_bytes(), format!("v{}", i * 7).into_bytes()))
            .collect();
        let refs: Vec<(&[u8], &[u8])> =
            items.iter().map(|(k, v)| (k.as_slice(), v.as_slice())).collect();
        batched.multi_set(&refs).unwrap();
        for (k, v) in &items {
            per_op.set(k, v).unwrap();
        }
        for (k, v) in &items {
            assert_eq!(batched.get(k).unwrap(), *v);
            assert_eq!(per_op.get(k).unwrap(), *v);
        }
        assert_eq!(batched.len(), per_op.len());
        vclock::reset();
    }

    #[test]
    fn multi_get_detects_tampering() {
        let mut s = shard_with(small_cfg());
        vclock::reset();
        for i in 0..8u32 {
            s.set(format!("k{i}").as_bytes(), b"value").unwrap();
        }
        use crate::testing::{EntryField, TamperOp};
        assert!(s.tamper(TamperOp::Field(EntryField::Any), 12345));
        let lookups: Vec<Vec<u8>> = (0..8u32).map(|i| format!("k{i}").into_bytes()).collect();
        let refs: Vec<&[u8]> = lookups.iter().map(|k| k.as_slice()).collect();
        assert!(matches!(s.multi_get(&refs), Err(Error::IntegrityViolation { .. })));
        vclock::reset();
    }

    #[test]
    fn batched_ops_during_snapshot_fall_back() {
        let mut s = shard_with(small_cfg());
        vclock::reset();
        s.set(b"old", b"frozen-value").unwrap();
        let frozen = s.freeze();
        s.multi_set(&[(b"new".as_slice(), b"temp-value".as_slice())]).unwrap();
        let got = s.multi_get(&[b"old".as_slice(), b"new", b"none"]).unwrap();
        assert_eq!(got[0].as_deref(), Some(b"frozen-value".as_slice()));
        assert_eq!(got[1].as_deref(), Some(b"temp-value".as_slice()));
        assert_eq!(got[2], None);
        drop(frozen);
        s.unfreeze().unwrap();
        assert_eq!(s.get(b"new").unwrap(), b"temp-value");
        vclock::reset();
    }

    #[test]
    fn multi_set_rejects_invalid_item_before_mutating() {
        let mut s = shard_with(small_cfg());
        vclock::reset();
        let r = s.multi_set(&[(b"good".as_slice(), b"v".as_slice()), (b"", b"v")]);
        assert!(matches!(r, Err(Error::OversizeItem { .. })));
        // Validation happens before any write: nothing landed.
        assert_eq!(s.len(), 0);
        vclock::reset();
    }

    #[test]
    fn quarantine_isolates_bucket_set_after_violation() {
        let mut s = shard_with(small_cfg().with_ordered_index().with_quarantine());
        vclock::reset();
        for i in 0..32u32 {
            s.set(format!("k{i}").as_bytes(), format!("v{i}").as_bytes()).unwrap();
        }
        use crate::testing::{EntryField, TamperOp};
        assert!(s.tamper(TamperOp::Field(EntryField::Any), 7));
        // First sweep: exactly one key (the corrupted entry) surfaces
        // the violation; later keys in its bucket set fail closed as
        // quarantined, every other partition keeps serving.
        let mut victim_set = None;
        for i in 0..32u32 {
            let k = format!("k{i}");
            match s.get(k.as_bytes()) {
                Ok(v) => assert_eq!(v, format!("v{i}").into_bytes()),
                Err(Error::IntegrityViolation { .. }) => {
                    assert!(victim_set.is_none(), "only the tampered entry itself fails open");
                    victim_set = Some(s.set_of_key(k.as_bytes()));
                }
                Err(Error::Quarantined { .. }) => {
                    assert_eq!(Some(s.set_of_key(k.as_bytes())), victim_set);
                }
                other => panic!("unexpected outcome: {other:?}"),
            }
        }
        let victim_set = victim_set.expect("the sweep visits the tampered entry");
        let (whole, sets, violations) = s.quarantine_state();
        assert!(!whole);
        assert_eq!(sets, vec![victim_set]);
        assert_eq!(violations, 1);
        // Second sweep: Quarantined on the poisoned partition only, and
        // never a wrong value anywhere.
        for i in 0..32u32 {
            let k = format!("k{i}");
            let in_set = s.set_of_key(k.as_bytes()) == victim_set;
            match s.get(k.as_bytes()) {
                Ok(v) => {
                    assert!(!in_set);
                    assert_eq!(v, format!("v{i}").into_bytes());
                }
                Err(Error::Quarantined { .. }) => assert!(in_set),
                other => panic!("unexpected outcome: {other:?}"),
            }
        }
        // Every op class fails closed on the quarantined partition.
        let qk = (0..32u32)
            .map(|i| format!("k{i}"))
            .find(|k| s.set_of_key(k.as_bytes()) == victim_set)
            .unwrap();
        assert!(matches!(s.set(qk.as_bytes(), b"x"), Err(Error::Quarantined { .. })));
        assert!(matches!(s.delete(qk.as_bytes()), Err(Error::Quarantined { .. })));
        assert!(matches!(s.append(qk.as_bytes(), b"x"), Err(Error::Quarantined { .. })));
        assert!(matches!(s.increment(qk.as_bytes(), 1), Err(Error::Quarantined { .. })));
        assert!(matches!(s.exists(qk.as_bytes()), Err(Error::Quarantined { .. })));
        assert!(matches!(s.multi_get(&[qk.as_bytes()]), Err(Error::Quarantined { .. })));
        assert!(matches!(
            s.multi_set(&[(qk.as_bytes(), b"x".as_slice())]),
            Err(Error::Quarantined { .. })
        ));
        // Scans span partitions, so any quarantined set fails them.
        assert!(matches!(s.scan_prefix(b"k", 100), Err(Error::Quarantined { .. })));
        assert!(s.stats().quarantine_rejections > 0);
        vclock::reset();
    }

    #[test]
    fn quarantine_escalates_to_whole_shard_on_repeat_violation() {
        let mut s = shard_with(small_cfg().with_quarantine());
        vclock::reset();
        let keys: Vec<String> = (0..32).map(|i| format!("k{i}")).collect();
        for k in &keys {
            s.set(k.as_bytes(), b"value").unwrap();
        }
        use crate::testing::{EntryField, TamperOp};
        // First violation: one bucket set quarantined.
        assert!(s.tamper(TamperOp::Field(EntryField::Any), 1));
        for k in &keys {
            let _ = s.get(k.as_bytes());
        }
        let (whole, sets, violations) = s.quarantine_state();
        assert!(!whole);
        assert_eq!((sets.len(), violations), (1, 1));
        // Keep corrupting entries until one lands outside the
        // quarantined partition; that second observed violation must
        // escalate the quarantine to the whole shard.
        for seed in 2..200u64 {
            assert!(s.tamper(TamperOp::Field(EntryField::Any), seed));
            for k in &keys {
                let _ = s.get(k.as_bytes());
            }
            if s.quarantine_state().0 {
                break;
            }
        }
        let (whole, _, violations) = s.quarantine_state();
        assert!(whole, "a violation outside the first set must escalate to the shard");
        assert_eq!(violations, 2);
        // Now every key fails closed, whatever its partition.
        for k in &keys {
            assert!(matches!(s.get(k.as_bytes()), Err(Error::Quarantined { .. })));
        }
        vclock::reset();
    }

    #[test]
    fn quarantine_escalates_during_snapshot_freeze() {
        let mut s = shard_with(small_cfg().with_quarantine());
        vclock::reset();
        for i in 0..8u32 {
            s.set(format!("k{i}").as_bytes(), b"value").unwrap();
        }
        use crate::testing::{EntryField, TamperOp};
        assert!(s.tamper(TamperOp::Field(EntryField::Any), 99));
        // With a snapshot overlay live, writes span the temp table, so
        // per-set isolation cannot be trusted: the first violation
        // quarantines the whole shard.
        let frozen = s.freeze();
        for i in 0..8u32 {
            let _ = s.get(format!("k{i}").as_bytes());
        }
        assert!(s.quarantine_state().0, "freeze-time violation must quarantine the shard");
        drop(frozen);
        vclock::reset();
    }

    #[test]
    fn quarantine_requires_opt_in() {
        // Without Config::quarantine the shard keeps reporting the raw
        // verification outcome on every access (differential harnesses
        // depend on that), and records no quarantine state.
        let mut s = shard_with(small_cfg());
        vclock::reset();
        for i in 0..8u32 {
            s.set(format!("k{i}").as_bytes(), b"value").unwrap();
        }
        use crate::testing::{EntryField, TamperOp};
        assert!(s.tamper(TamperOp::Field(EntryField::Any), 3));
        let mut violations = 0;
        for _ in 0..2 {
            for i in 0..8u32 {
                match s.get(format!("k{i}").as_bytes()) {
                    Ok(_) => {}
                    Err(Error::IntegrityViolation { .. }) => violations += 1,
                    other => panic!("unexpected outcome: {other:?}"),
                }
            }
        }
        assert_eq!(violations, 2, "same violation reported on every access");
        assert_eq!(s.quarantine_state(), (false, Vec::new(), 0));
        assert_eq!(s.stats().quarantine_rejections, 0);
        vclock::reset();
    }

    #[test]
    fn mac_bucket_and_chain_gathers_agree() {
        // The same workload with and without MAC bucketing must behave
        // identically (the MAC bucket is an optimization, not semantics).
        let mut with = shard_with(small_cfg());
        let mut without = shard_with(Config { mac_bucket: false, ..small_cfg() });
        vclock::reset();
        for i in 0..100u32 {
            let k = format!("k{i}");
            with.set(k.as_bytes(), k.as_bytes()).unwrap();
            without.set(k.as_bytes(), k.as_bytes()).unwrap();
        }
        for i in (0..100u32).step_by(3) {
            let k = format!("k{i}");
            with.delete(k.as_bytes()).unwrap();
            without.delete(k.as_bytes()).unwrap();
        }
        for i in 0..100u32 {
            let k = format!("k{i}");
            assert_eq!(with.get(k.as_bytes()).is_ok(), without.get(k.as_bytes()).is_ok());
        }
        vclock::reset();
    }

    // -- tenancy, TTL, quota ------------------------------------------

    use crate::tenant::{TenantQuota, TenantState, TenantUsage};

    #[test]
    fn tenants_are_isolated_namespaces() {
        let mut s = shard_with(small_cfg());
        vclock::reset();
        s.set_t(1, b"k", b"one", 0, None).unwrap();
        s.set_t(2, b"k", b"two", 0, None).unwrap();
        s.set(b"k", b"zero").unwrap(); // tenant 0 sugar
        assert_eq!(s.get_t(1, b"k", None).unwrap(), b"one");
        assert_eq!(s.get_t(2, b"k", None).unwrap(), b"two");
        assert_eq!(s.get(b"k").unwrap(), b"zero");
        assert_eq!(s.len(), 3, "same key in three namespaces = three entries");
        assert_eq!(s.get_t(3, b"k", None), Err(Error::KeyNotFound));
        s.delete_t(1, b"k", None).unwrap();
        assert_eq!(s.get_t(1, b"k", None), Err(Error::KeyNotFound));
        assert_eq!(s.get_t(2, b"k", None).unwrap(), b"two", "delete stays in its namespace");
        vclock::reset();
    }

    #[test]
    fn cache_respects_tenant_namespaces() {
        let mut s = shard_with(small_cfg());
        vclock::reset();
        s.enable_cache(64 << 10);
        s.set_t(1, b"k", b"secret", 0, None).unwrap();
        assert_eq!(s.get_t(1, b"k", None).unwrap(), b"secret");
        assert_eq!(s.get_t(1, b"k", None).unwrap(), b"secret"); // cache hit
        assert!(s.stats().cache_hits >= 1);
        // Tenant 2's view of the same byte key must not touch tenant 1's
        // cached plaintext.
        assert_eq!(s.get_t(2, b"k", None), Err(Error::KeyNotFound));
        vclock::reset();
    }

    #[test]
    fn ttl_lazy_expiry_and_sweep() {
        let mut s = shard_with(small_cfg());
        vclock::reset();
        let live = ttl::now_ns() + 3_600_000_000_000; // +1h
        s.set_t(0, b"eternal", b"e", 0, None).unwrap();
        s.set_t(0, b"live", b"l", live, None).unwrap();
        s.set_t(0, b"dead", b"d", 1, None).unwrap(); // long expired
        assert_eq!(s.len(), 3);

        // Lazy expiry: reads hide the dead entry without mutating.
        assert_eq!(s.get(b"dead"), Err(Error::KeyNotFound));
        assert_eq!(s.stats().expired_lazy, 1);
        assert_eq!(s.len(), 3, "lazy expiry does not remove");
        assert!(!s.exists(b"dead").unwrap());

        // Delete of an expired entry is KeyNotFound *without* removal:
        // physical reap is the sweep's job (it gets WAL-logged there).
        assert_eq!(s.delete(b"dead"), Err(Error::KeyNotFound));
        assert_eq!(s.len(), 3);

        let reg = TenantRegistry::new();
        let reaped = s.sweep_expired(ttl::now_ns(), &reg);
        assert_eq!(reaped, vec![(0, b"dead".to_vec())]);
        assert_eq!(s.len(), 2);
        assert_eq!(s.stats().expired_swept, 1);
        assert_eq!(s.get(b"eternal").unwrap(), b"e");
        assert_eq!(s.get(b"live").unwrap(), b"l");
        vclock::reset();
    }

    #[test]
    fn ttl_reset_on_set_and_cleared_by_merge_ops() {
        let mut s = shard_with(small_cfg());
        vclock::reset();
        let reg = TenantRegistry::new();

        // SET replaces the deadline wholesale (Redis semantics).
        s.set_t(0, b"k", b"v1", 1, None).unwrap();
        assert_eq!(s.get(b"k"), Err(Error::KeyNotFound));
        s.set(b"k", b"v2").unwrap();
        assert_eq!(s.get(b"k").unwrap(), b"v2", "overwrite revives: deadline replaced");

        // Append/increment clear any deadline: their WAL form is a plain
        // set of the produced value, which must replay deadline-free.
        let horizon = ttl::now_ns() + 3_600_000_000_000;
        s.set_t(0, b"n", b"5", horizon, None).unwrap();
        assert_eq!(s.increment(b"n", 2).unwrap(), 7);
        let far = ttl::now_ns() + 7_200_000_000_000; // past the old deadline
        assert!(s.sweep_expired(far, &reg).is_empty(), "increment cleared the deadline");
        assert_eq!(s.get(b"n").unwrap(), b"7");
        vclock::reset();
    }

    #[test]
    fn quota_rejects_inserts_but_allows_updates() {
        let mut s = shard_with(small_cfg());
        vclock::reset();
        let entry_cost = (entry::HEADER_LEN + 1 + 3) as u64; // 1-byte key, 3-byte value
        let state = TenantState {
            quota: TenantQuota { max_bytes: 2 * entry_cost + 8, max_keys: 2, weight: 1 },
            usage: Arc::new(TenantUsage::default()),
        };

        s.set_t(7, b"a", b"aaa", 0, Some(&state)).unwrap();
        s.set_t(7, b"b", b"bbb", 0, Some(&state)).unwrap();
        assert_eq!(
            s.set_t(7, b"c", b"ccc", 0, Some(&state)),
            Err(Error::QuotaExceeded { tenant: 7 }),
            "third insert exceeds max_keys"
        );
        assert_eq!(s.stats().quota_rejections, 1);
        assert_eq!(s.len(), 2, "rejected insert left no residue");

        // Same-size update is free; growth must fit the byte budget.
        s.set_t(7, b"a", b"AAA", 0, Some(&state)).unwrap();
        assert_eq!(
            s.set_t(7, b"a", vec![0u8; 64].as_slice(), 0, Some(&state)),
            Err(Error::QuotaExceeded { tenant: 7 })
        );
        assert_eq!(s.get_t(7, b"a", Some(&state)).unwrap(), b"AAA", "failed grow left old value");

        // Deleting frees budget for a new insert.
        s.delete_t(7, b"b", Some(&state)).unwrap();
        s.set_t(7, b"c", b"ccc", 0, Some(&state)).unwrap();
        assert_eq!(state.usage.used_keys.load(AtomicOrdering::SeqCst), 2);
        assert_eq!(state.usage.used_bytes.load(AtomicOrdering::SeqCst), 2 * entry_cost);
        vclock::reset();
    }

    #[test]
    fn tenant_field_rewrite_fails_closed() {
        // An attacker re-stitching an entry into another namespace by
        // editing the plaintext tenant field must trip verification under
        // *both* the claimed and the true owner's keys.
        let mut cfg = small_cfg();
        cfg = cfg.buckets(1);
        let mut s = shard_with(cfg);
        vclock::reset();
        s.set_t(1, b"k", b"owned", 0, None).unwrap();

        let main = s.main.as_mut().unwrap();
        let mut handle = None;
        main.for_each_entry(|_, h| handle = Some(h));
        main.heap.bytes_at_mut(handle.unwrap(), entry::OFF_TENANT, 4)[0] ^= 0x03;

        assert!(matches!(s.get_t(2, b"k", None), Err(Error::IntegrityViolation { .. })));
        assert!(matches!(s.get_t(1, b"k", None), Err(Error::IntegrityViolation { .. })));
        vclock::reset();
    }
}
