//! Operation statistics.
//!
//! The paper's Fig. 9 reports the *number of decryptions* needed to find a
//! matching entry with and without the key hint; these counters make that
//! experiment (and several others) directly measurable.

/// Per-shard operation counters. Plain fields — each shard is owned by one
/// thread at a time, so no atomics are needed; the store aggregates across
/// shards on demand.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OpStats {
    /// `get` operations served.
    pub gets: u64,
    /// `set` operations served.
    pub sets: u64,
    /// `delete` operations served.
    pub deletes: u64,
    /// `append` operations served.
    pub appends: u64,
    /// `increment` operations served.
    pub increments: u64,
    /// Operations that found their key.
    pub hits: u64,
    /// Operations that did not find their key.
    pub misses: u64,
    /// Key decryptions performed during searches (Fig. 9's metric).
    pub key_decryptions: u64,
    /// Chain entries skipped thanks to a key-hint mismatch.
    pub hint_skips: u64,
    /// Full decrypting scans performed by the two-step fallback.
    pub full_scans: u64,
    /// Bucket-set MAC hash verifications performed.
    pub integrity_verifications: u64,
    /// Entry MACs gathered for bucket-set verification.
    pub macs_gathered: u64,
    /// New entries inserted.
    pub inserts: u64,
    /// Entries updated in place (new data fit the old allocation).
    pub inplace_updates: u64,
    /// Entries reallocated on update (new data outgrew the allocation).
    pub realloc_updates: u64,
    /// In-enclave cache hits.
    pub cache_hits: u64,
    /// In-enclave cache misses (cache enabled but key not present).
    pub cache_misses: u64,
    /// Operations served from the temporary table during a snapshot.
    pub temp_table_ops: u64,
    /// Batched calls (`multi_get`/`multi_set`) served.
    pub batches: u64,
    /// Operations carried inside batched calls (`batch_ops / batches` is
    /// the average batch size).
    pub batch_ops: u64,
    /// Bucket-set verifications skipped because an earlier op in the same
    /// batch already verified the set.
    pub batch_verifications_saved: u64,
    /// Bucket-set hash recomputations skipped because a later write in
    /// the same batch touched the same set (the hash is stored once per
    /// batch per set, after the last write).
    pub batch_hash_updates_saved: u64,
    /// Hit-path side-array MAC checks that missed positionally and fell
    /// back to a membership scan (only ever non-zero after a structural
    /// attack on a bucket chain).
    pub side_mac_fallbacks: u64,
}

impl OpStats {
    /// Merges another counter set into this one.
    pub fn merge(&mut self, other: &OpStats) {
        self.gets += other.gets;
        self.sets += other.sets;
        self.deletes += other.deletes;
        self.appends += other.appends;
        self.increments += other.increments;
        self.hits += other.hits;
        self.misses += other.misses;
        self.key_decryptions += other.key_decryptions;
        self.hint_skips += other.hint_skips;
        self.full_scans += other.full_scans;
        self.integrity_verifications += other.integrity_verifications;
        self.macs_gathered += other.macs_gathered;
        self.inserts += other.inserts;
        self.inplace_updates += other.inplace_updates;
        self.realloc_updates += other.realloc_updates;
        self.cache_hits += other.cache_hits;
        self.cache_misses += other.cache_misses;
        self.temp_table_ops += other.temp_table_ops;
        self.batches += other.batches;
        self.batch_ops += other.batch_ops;
        self.batch_verifications_saved += other.batch_verifications_saved;
        self.batch_hash_updates_saved += other.batch_hash_updates_saved;
        self.side_mac_fallbacks += other.side_mac_fallbacks;
    }

    /// Total operations.
    pub fn total_ops(&self) -> u64 {
        self.gets + self.sets + self.deletes + self.appends + self.increments
    }

    /// Average key decryptions per search-carrying operation.
    pub fn decryptions_per_op(&self) -> f64 {
        let ops = self.total_ops();
        if ops == 0 {
            0.0
        } else {
            self.key_decryptions as f64 / ops as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_adds_fields() {
        let mut a = OpStats { gets: 1, key_decryptions: 5, ..Default::default() };
        let b = OpStats { gets: 2, sets: 3, key_decryptions: 7, ..Default::default() };
        a.merge(&b);
        assert_eq!(a.gets, 3);
        assert_eq!(a.sets, 3);
        assert_eq!(a.key_decryptions, 12);
        assert_eq!(a.total_ops(), 6);
    }

    #[test]
    fn decryptions_per_op() {
        let s = OpStats { gets: 4, key_decryptions: 10, ..Default::default() };
        assert!((s.decryptions_per_op() - 2.5).abs() < 1e-12);
        assert_eq!(OpStats::default().decryptions_per_op(), 0.0);
    }
}
