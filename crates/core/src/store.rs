//! The top-level sharded store.
//!
//! [`ShieldStore`] partitions the key space across [`Shard`]s by the keyed
//! index hash (paper §5.3): a request's serving shard is a pure function of
//! its key, so concurrent workers never touch the same buckets and need no
//! synchronization. For convenience the store wraps each shard in a mutex;
//! benchmark workers instead pin themselves to one shard each with
//! [`ShieldStore::with_shard`], paying the lock once per batch.

use crate::config::Config;
use crate::error::Result;
use crate::shard::{Shard, ShardConfig, StoreKeys};
use crate::stats::{OpStats, StatsSnapshot};
use parking_lot::Mutex;
use sgx_sim::enclave::Enclave;
use std::sync::Arc;

/// A shielded in-memory key-value store.
///
/// # Examples
///
/// ```
/// use sgx_sim::enclave::EnclaveBuilder;
/// use shieldstore::{Config, ShieldStore};
///
/// let enclave = EnclaveBuilder::new("kv").epc_bytes(8 << 20).build();
/// let store = ShieldStore::new(enclave, Config::shield_opt().buckets(1024)).unwrap();
/// store.set(b"user:1", b"alice").unwrap();
/// assert_eq!(store.get(b"user:1").unwrap(), b"alice");
/// ```
pub struct ShieldStore {
    enclave: Arc<Enclave>,
    keys: Arc<StoreKeys>,
    config: Config,
    shards: Vec<Mutex<Shard>>,
}

impl std::fmt::Debug for ShieldStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShieldStore")
            .field("shards", &self.shards.len())
            .field("buckets", &self.config.num_buckets)
            .finish()
    }
}

impl ShieldStore {
    /// Creates a store inside `enclave` with the given configuration.
    pub fn new(enclave: Arc<Enclave>, config: Config) -> Result<Self> {
        config.validate();
        let keys = Arc::new(StoreKeys::generate(&enclave));
        Self::with_keys(enclave, config, keys)
    }

    pub(crate) fn with_keys(
        enclave: Arc<Enclave>,
        config: Config,
        keys: Arc<StoreKeys>,
    ) -> Result<Self> {
        let shard_cfg = ShardConfig::from_config(&config);
        let mut shards = Vec::with_capacity(config.shards);
        for _ in 0..config.shards {
            let mut shard = Shard::new(Arc::clone(&enclave), Arc::clone(&keys), shard_cfg.clone())?;
            if config.cache_bytes > 0 {
                shard.enable_cache(config.cache_bytes / config.shards);
            }
            shards.push(Mutex::new(shard));
        }
        Ok(Self { enclave, keys, config, shards })
    }

    /// The shard index serving `key`: the high hash bits pick the shard,
    /// leaving the low bits for bucket selection inside the shard.
    #[inline]
    pub fn shard_of(&self, key: &[u8]) -> usize {
        let hash = self.keys.index_hash(key);
        (((hash >> 32) * self.shards.len() as u64) >> 32) as usize
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// The store's configuration.
    pub fn config(&self) -> &Config {
        &self.config
    }

    /// The enclave this store runs in.
    pub fn enclave(&self) -> &Arc<Enclave> {
        &self.enclave
    }

    /// Runs `f` with exclusive access to shard `idx`. Benchmark workers
    /// use this to own their partition for a whole run.
    pub fn with_shard<T>(&self, idx: usize, f: impl FnOnce(&mut Shard) -> T) -> T {
        f(&mut self.shards[idx].lock())
    }

    /// Retrieves the value stored under `key`.
    pub fn get(&self, key: &[u8]) -> Result<Vec<u8>> {
        self.with_shard(self.shard_of(key), |s| s.get(key))
    }

    /// Stores `value` under `key`.
    pub fn set(&self, key: &[u8], value: &[u8]) -> Result<()> {
        self.with_shard(self.shard_of(key), |s| s.set(key, value))
    }

    /// Removes `key`.
    pub fn delete(&self, key: &[u8]) -> Result<()> {
        self.with_shard(self.shard_of(key), |s| s.delete(key))
    }

    /// Appends `suffix` to `key`'s value, returning the new length.
    pub fn append(&self, key: &[u8], suffix: &[u8]) -> Result<usize> {
        self.with_shard(self.shard_of(key), |s| s.append(key, suffix))
    }

    /// Adds `delta` to `key`'s decimal value, returning the new value.
    pub fn increment(&self, key: &[u8], delta: i64) -> Result<i64> {
        self.with_shard(self.shard_of(key), |s| s.increment(key, delta))
    }

    /// True when `key` exists.
    pub fn exists(&self, key: &[u8]) -> Result<bool> {
        self.with_shard(self.shard_of(key), |s| s.exists(key))
    }

    /// Batched lookup across shards: groups `keys` by owning shard, takes
    /// each shard's lock once per batch (not once per key), and runs the
    /// shard-level batched path, which verifies each touched bucket-set
    /// hash once per batch. Results come back in input order; a clean
    /// miss is `None`. An integrity violation in any shard fails the
    /// whole call.
    pub fn multi_get(&self, keys: &[&[u8]]) -> Result<Vec<Option<Vec<u8>>>> {
        let mut groups: Vec<Vec<usize>> = vec![Vec::new(); self.shards.len()];
        for (i, key) in keys.iter().enumerate() {
            groups[self.shard_of(key)].push(i);
        }
        let mut results: Vec<Option<Vec<u8>>> = vec![None; keys.len()];
        for (shard_idx, group) in groups.iter().enumerate() {
            if group.is_empty() {
                continue;
            }
            let batch: Vec<&[u8]> = group.iter().map(|&i| keys[i]).collect();
            let shard_results = self.with_shard(shard_idx, |s| s.multi_get(&batch))?;
            for (&slot, value) in group.iter().zip(shard_results) {
                results[slot] = value;
            }
        }
        Ok(results)
    }

    /// Batched write across shards: groups `items` by owning shard and
    /// takes each shard's lock once per batch. Within a shard, set-hash
    /// recomputations are amortized to one per touched bucket set.
    /// Grouping preserves input order per shard, so duplicate keys keep
    /// last-write-wins semantics.
    pub fn multi_set(&self, items: &[(&[u8], &[u8])]) -> Result<()> {
        let mut groups: Vec<Vec<usize>> = vec![Vec::new(); self.shards.len()];
        for (i, (key, _)) in items.iter().enumerate() {
            groups[self.shard_of(key)].push(i);
        }
        for (shard_idx, group) in groups.iter().enumerate() {
            if group.is_empty() {
                continue;
            }
            let batch: Vec<(&[u8], &[u8])> = group.iter().map(|&i| items[i]).collect();
            self.with_shard(shard_idx, |s| s.multi_set(&batch))?;
        }
        Ok(())
    }

    /// Ordered range scan over `[start, end)`, merged across shards:
    /// up to `limit` key-value pairs in key order. Requires
    /// [`Config::ordered_index`] (the paper's future-work extension; see
    /// [`crate::ordered`] for the EPC trade-off).
    pub fn scan_range(
        &self,
        start: &[u8],
        end: &[u8],
        limit: usize,
    ) -> Result<Vec<(Vec<u8>, Vec<u8>)>> {
        let mut all = Vec::new();
        // Exclusive upper bound, narrowed once `limit` items are in hand:
        // a key at or past the current limit-th smallest can never make
        // the final cut, so later shards skip fetching (and verifying,
        // decrypting) everything beyond it instead of materializing their
        // full result.
        let mut bound: Option<Vec<u8>> = None;
        for shard in self.shards() {
            let hi = bound.as_deref().unwrap_or(end);
            all.extend(shard.lock().scan_range(start, hi, limit)?);
            if limit > 0 && all.len() >= limit {
                all.sort_by(|a, b| a.0.cmp(&b.0));
                all.truncate(limit);
                bound = Some(all[limit - 1].0.clone());
            }
        }
        all.sort_by(|a, b| a.0.cmp(&b.0));
        all.truncate(limit);
        Ok(all)
    }

    /// Ordered prefix scan, merged across shards with the same
    /// shrinking-bound short-circuit as [`ShieldStore::scan_range`].
    pub fn scan_prefix(&self, prefix: &[u8], limit: usize) -> Result<Vec<(Vec<u8>, Vec<u8>)>> {
        let mut all = Vec::new();
        let mut bound: Option<Vec<u8>> = None;
        for shard in self.shards() {
            let mut shard = shard.lock();
            let chunk = match bound.as_deref() {
                // Every prefixed key below `b` lies in `[prefix, b)`, and
                // conversely everything in that range shares the prefix:
                // `b` itself starts with it, so a key with a mismatching
                // byte would sort at or past `b`. A range scan with the
                // narrowed end is therefore an exact substitute.
                Some(b) => shard.scan_range(prefix, b, limit)?,
                None => shard.scan_prefix(prefix, limit)?,
            };
            all.extend(chunk);
            if limit > 0 && all.len() >= limit {
                all.sort_by(|a, b| a.0.cmp(&b.0));
                all.truncate(limit);
                bound = Some(all[limit - 1].0.clone());
            }
        }
        all.sort_by(|a, b| a.0.cmp(&b.0));
        all.truncate(limit);
        Ok(all)
    }

    /// Approximate enclave bytes held by the ordered index across shards.
    pub fn index_bytes(&self) -> usize {
        self.shards().iter().map(|s| s.lock().index_bytes()).sum()
    }

    /// Total live entries across shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().len()).sum()
    }

    /// True when the store holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Aggregated operation counters across shards.
    pub fn stats(&self) -> OpStats {
        let mut total = OpStats::default();
        for shard in &self.shards {
            total.merge(shard.lock().stats());
        }
        total
    }

    /// A full observability snapshot: counters and latency histograms
    /// aggregated across shards, occupancy gauges, and the enclave's SGX
    /// transition/paging counters. Each shard's contribution is taken
    /// under its lock, so per-shard state is consistent; cross-shard skew
    /// is bounded by ops that land between lock acquisitions.
    pub fn snapshot(&self) -> StatsSnapshot {
        let mut snap = StatsSnapshot { shards: self.shards.len() as u64, ..Default::default() };
        for shard in &self.shards {
            shard.lock().contribute_snapshot(&mut snap);
        }
        snap.sim = self.enclave.stats().snapshot();
        snap
    }

    /// Resets all shards' operation counters.
    pub fn reset_stats(&self) {
        for shard in &self.shards {
            shard.lock().reset_stats();
        }
    }

    pub(crate) fn keys(&self) -> &Arc<StoreKeys> {
        &self.keys
    }

    pub(crate) fn shards(&self) -> &[Mutex<Shard>] {
        &self.shards
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::Error;
    use sgx_sim::enclave::EnclaveBuilder;
    use sgx_sim::vclock;

    fn store(shards: usize) -> ShieldStore {
        let enclave = EnclaveBuilder::new("store-test").epc_bytes(8 << 20).build();
        ShieldStore::new(
            enclave,
            Config::shield_opt().buckets(256).mac_hashes(64).with_shards(shards),
        )
        .unwrap()
    }

    #[test]
    fn routes_across_shards() {
        let s = store(4);
        vclock::reset();
        for i in 0..200u32 {
            s.set(format!("key-{i}").as_bytes(), format!("v{i}").as_bytes()).unwrap();
        }
        assert_eq!(s.len(), 200);
        for i in 0..200u32 {
            assert_eq!(s.get(format!("key-{i}").as_bytes()).unwrap(), format!("v{i}").as_bytes());
        }
        // Keys actually spread over shards.
        let mut nonempty = 0;
        for i in 0..s.num_shards() {
            if s.with_shard(i, |sh| sh.len()) > 0 {
                nonempty += 1;
            }
        }
        assert!(nonempty >= 3, "200 keys should hit at least 3 of 4 shards");
        vclock::reset();
    }

    #[test]
    fn shard_of_is_stable_and_in_range() {
        let s = store(3);
        for i in 0..100u32 {
            let key = format!("stable-{i}");
            let a = s.shard_of(key.as_bytes());
            let b = s.shard_of(key.as_bytes());
            assert_eq!(a, b);
            assert!(a < 3);
        }
    }

    #[test]
    fn concurrent_disjoint_workers() {
        let s = Arc::new(store(4));
        vclock::reset();
        // Pre-partition keys by shard, then hammer each shard from its own
        // thread — the paper's synchronization-free pattern.
        let mut partitions: Vec<Vec<String>> = vec![Vec::new(); 4];
        for i in 0..400u32 {
            let key = format!("k{i}");
            partitions[s.shard_of(key.as_bytes())].push(key);
        }
        let mut handles = Vec::new();
        for (idx, keys) in partitions.into_iter().enumerate() {
            let s = Arc::clone(&s);
            handles.push(std::thread::spawn(move || {
                s.with_shard(idx, |shard| {
                    for k in &keys {
                        shard.set(k.as_bytes(), b"v").unwrap();
                    }
                    for k in &keys {
                        shard.get(k.as_bytes()).unwrap();
                    }
                });
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(s.len(), 400);
        vclock::reset();
    }

    #[test]
    fn stats_aggregate() {
        let s = store(2);
        vclock::reset();
        s.set(b"a", b"1").unwrap();
        s.set(b"b", b"2").unwrap();
        let _ = s.get(b"a");
        let _ = s.get(b"missing");
        let stats = s.stats();
        assert_eq!(stats.sets, 2);
        assert_eq!(stats.gets, 2);
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 1);
        s.reset_stats();
        assert_eq!(s.stats().total_ops(), 0);
        vclock::reset();
    }

    #[test]
    fn snapshot_aggregates_and_is_consistent() {
        let s = store(2);
        vclock::reset();
        for i in 0..50u32 {
            s.set(format!("snap-{i}").as_bytes(), b"v").unwrap();
        }
        for i in 0..50u32 {
            s.get(format!("snap-{i}").as_bytes()).unwrap();
        }
        let _ = s.get(b"absent");
        let _ = s.delete(b"also-absent");
        s.multi_get(&[b"snap-0".as_slice(), b"snap-1"]).unwrap();
        let snap = s.snapshot();
        snap.check_consistent().expect("clean run must be self-consistent");
        assert_eq!(snap.shards, 2);
        assert_eq!(snap.entries, 50);
        assert_eq!(snap.ops.sets, 50);
        assert_eq!(snap.ops.gets, 53);
        assert_eq!(snap.hists.set.count(), 50);
        assert_eq!(snap.hists.get.count(), 51, "batched gets are not sampled per key");
        assert_eq!(snap.hists.delete.count(), 1);
        assert!(snap.hists.batch.count() >= 1);
        assert!(snap.hists.get.p50() > 0, "timed ops take nonzero effective time");
        assert!(snap.heap_live_bytes > 0);
        assert!(snap.sim.ecalls + snap.sim.hotcalls + snap.sim.epc_hits > 0);
        // Clean runs resolve every searching op.
        assert_eq!(snap.ops.hits + snap.ops.misses, snap.ops.gets + snap.ops.deletes);
        vclock::reset();
    }

    #[test]
    fn single_shard_store_works() {
        let s = store(1);
        vclock::reset();
        s.set(b"x", b"y").unwrap();
        assert_eq!(s.get(b"x").unwrap(), b"y");
        assert_eq!(s.delete(b"z"), Err(Error::KeyNotFound));
        vclock::reset();
    }

    #[test]
    fn server_side_ops_route() {
        let s = store(4);
        vclock::reset();
        s.append(b"log", b"a").unwrap();
        s.append(b"log", b"b").unwrap();
        assert_eq!(s.get(b"log").unwrap(), b"ab");
        assert_eq!(s.increment(b"n", 41).unwrap(), 41);
        assert_eq!(s.increment(b"n", 1).unwrap(), 42);
        assert!(s.exists(b"n").unwrap());
        assert!(!s.exists(b"absent").unwrap());
        vclock::reset();
    }

    #[test]
    fn multi_ops_route_across_shards() {
        let s = store(4);
        vclock::reset();
        let items: Vec<(Vec<u8>, Vec<u8>)> = (0..100u32)
            .map(|i| (format!("mk-{i}").into_bytes(), format!("mv-{i}").into_bytes()))
            .collect();
        let refs: Vec<(&[u8], &[u8])> =
            items.iter().map(|(k, v)| (k.as_slice(), v.as_slice())).collect();
        s.multi_set(&refs).unwrap();
        assert_eq!(s.len(), 100);

        let mut lookups: Vec<&[u8]> = items.iter().map(|(k, _)| k.as_slice()).collect();
        lookups.push(b"mk-absent");
        let got = s.multi_get(&lookups).unwrap();
        for (i, (_, v)) in items.iter().enumerate() {
            assert_eq!(got[i].as_deref(), Some(v.as_slice()), "key {i}");
        }
        assert_eq!(got[100], None);

        // Each non-empty shard was visited exactly once per batched call.
        let stats = s.stats();
        assert!(stats.batches <= 2 * s.num_shards() as u64);
        assert_eq!(stats.batch_ops, 201);
        vclock::reset();
    }

    #[test]
    fn multi_get_duplicate_keys_in_one_batch() {
        let s = store(2);
        vclock::reset();
        s.set(b"dup", b"v").unwrap();
        let got = s.multi_get(&[b"dup".as_slice(), b"dup", b"missing"]).unwrap();
        assert_eq!(got[0].as_deref(), Some(b"v".as_slice()));
        assert_eq!(got[1].as_deref(), Some(b"v".as_slice()));
        assert_eq!(got[2], None);
        vclock::reset();
    }

    #[test]
    fn scan_short_circuit_matches_full_merge() {
        let enclave = EnclaveBuilder::new("scan-test").epc_bytes(8 << 20).build();
        let s = ShieldStore::new(
            enclave,
            Config { ordered_index: true, ..Config::shield_opt() }
                .buckets(256)
                .mac_hashes(64)
                .with_shards(4),
        )
        .unwrap();
        vclock::reset();
        for i in 0..200u32 {
            s.set(format!("scan-{i:04}").as_bytes(), format!("v{i}").as_bytes()).unwrap();
        }
        for limit in [0usize, 1, 7, 50, 200, 500] {
            let ranged = s.scan_range(b"scan-", b"scan-9999", limit).unwrap();
            let prefixed = s.scan_prefix(b"scan-", limit).unwrap();
            let expect: Vec<Vec<u8>> =
                (0..200u32).map(|i| format!("scan-{i:04}").into_bytes()).take(limit).collect();
            assert_eq!(
                ranged.iter().map(|(k, _)| k.clone()).collect::<Vec<_>>(),
                expect,
                "range limit {limit}"
            );
            assert_eq!(ranged, prefixed, "prefix/range agree at limit {limit}");
        }
        vclock::reset();
    }
}
