//! The top-level sharded store.
//!
//! [`ShieldStore`] partitions the key space across [`Shard`]s by the keyed
//! index hash (paper §5.3): a request's serving shard is a pure function of
//! its key, so concurrent workers never touch the same buckets and need no
//! synchronization. For convenience the store wraps each shard in a mutex;
//! benchmark workers instead pin themselves to one shard each with
//! [`ShieldStore::with_shard`], paying the lock once per batch.

use crate::config::Config;
use crate::error::{Error, Result};
use crate::repl::Watermark;
use crate::shard::{Shard, ShardConfig, StoreKeys};
use crate::stats::{OpStats, StatsSnapshot, TenantStat, MAX_TENANT_STATS};
use crate::tenant::{TenantId, TenantRegistry, TenantState, DEFAULT_TENANT};
use crate::ttl;
use crate::wal::{Wal, WalOp};
use parking_lot::Mutex;
use sgx_sim::counter::PersistentCounter;
use sgx_sim::enclave::Enclave;
use sgx_sim::storage::{RealFs, StorageFs};
use std::path::{Path, PathBuf};
use std::sync::{Arc, OnceLock};

/// A shielded in-memory key-value store.
///
/// # Examples
///
/// ```
/// use sgx_sim::enclave::EnclaveBuilder;
/// use shieldstore::{Config, ShieldStore};
///
/// let enclave = EnclaveBuilder::new("kv").epc_bytes(8 << 20).build();
/// let store = ShieldStore::new(enclave, Config::shield_opt().buckets(1024)).unwrap();
/// store.set(b"user:1", b"alice").unwrap();
/// assert_eq!(store.get(b"user:1").unwrap(), b"alice");
/// ```
pub struct ShieldStore {
    enclave: Arc<Enclave>,
    keys: Arc<StoreKeys>,
    config: Config,
    shards: Vec<Mutex<Shard>>,
    /// Optional write-ahead log; set once by [`ShieldStore::attach_wal`]
    /// or [`ShieldStore::recover`]. Writes log into it while holding the
    /// owning shard's lock (lock order: shard, then WAL), so per-key log
    /// order matches apply order.
    wal: OnceLock<Wal>,
    /// Tenant quotas, weights, and usage accounting. Tenant 0 exists
    /// implicitly (unlimited by default); the untenanted API is sugar
    /// for it.
    registry: TenantRegistry,
    /// Primary-side replication state (subscriber watermarks, shipping
    /// counters). Inert until the first [`ShieldStore::repl_subscribe`].
    repl: crate::repl::PrimaryState,
    /// The storage seam all durable I/O goes through — [`RealFs`] in
    /// production, a fault injector in tests and the adversary harness.
    storage: Arc<dyn StorageFs>,
    /// Incremental scrubber cursor and counters
    /// ([`ShieldStore::scrub_tick`]).
    scrub: Mutex<crate::scrub::ScrubState>,
    /// The last snapshot this store wrote or restored — what the
    /// scrubber's snapshot phase re-verifies.
    last_snapshot: Mutex<Option<PathBuf>>,
}

impl std::fmt::Debug for ShieldStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShieldStore")
            .field("shards", &self.shards.len())
            .field("buckets", &self.config.num_buckets)
            .finish()
    }
}

impl ShieldStore {
    /// Creates a store inside `enclave` with the given configuration.
    pub fn new(enclave: Arc<Enclave>, config: Config) -> Result<Self> {
        Self::new_with_storage(enclave, config, RealFs::shared())
    }

    /// [`ShieldStore::new`] with an explicit storage backend: all durable
    /// I/O (WAL, pin, counters, snapshots) routes through `storage`.
    /// Tests and the adversary harness pass a
    /// [`sgx_sim::storage::FaultFs`] to inject storage faults at every
    /// call site.
    pub fn new_with_storage(
        enclave: Arc<Enclave>,
        config: Config,
        storage: Arc<dyn StorageFs>,
    ) -> Result<Self> {
        config.validate();
        let keys = Arc::new(StoreKeys::generate(&enclave));
        Self::with_keys(enclave, config, keys, storage)
    }

    pub(crate) fn with_keys(
        enclave: Arc<Enclave>,
        config: Config,
        keys: Arc<StoreKeys>,
        storage: Arc<dyn StorageFs>,
    ) -> Result<Self> {
        let shard_cfg = ShardConfig::from_config(&config);
        let mut shards = Vec::with_capacity(config.shards);
        for _ in 0..config.shards {
            let mut shard = Shard::new(Arc::clone(&enclave), Arc::clone(&keys), shard_cfg.clone())?;
            if config.cache_bytes > 0 {
                shard.enable_cache(config.cache_bytes / config.shards);
            }
            shards.push(Mutex::new(shard));
        }
        Ok(Self {
            enclave,
            keys,
            config,
            shards,
            wal: OnceLock::new(),
            registry: TenantRegistry::new(),
            repl: crate::repl::PrimaryState::default(),
            storage,
            scrub: Mutex::new(crate::scrub::ScrubState::default()),
            last_snapshot: Mutex::new(None),
        })
    }

    /// Attaches a fresh write-ahead log in `dir` to this (fresh) store,
    /// using the [`Config::durability`] group-commit policy. Any log a
    /// previous store life left in `dir` is discarded — use
    /// [`ShieldStore::recover`] to replay one instead. Fails if a WAL is
    /// already attached.
    pub fn attach_wal(&self, dir: impl AsRef<Path>) -> Result<()> {
        let wal = Wal::create(
            Arc::clone(&self.enclave),
            Arc::clone(&self.storage),
            dir.as_ref(),
            self.config.durability,
            0,
        )?;
        self.wal.set(wal).map_err(|_| Error::Persistence("write-ahead log already attached".into()))
    }

    /// Commits any operations buffered in the write-ahead log, whatever
    /// the [`crate::DurabilityPolicy`], and returns the durable
    /// `(generation, seq)` watermark — the exact commit point a client
    /// can wait for a replica to reach. `None` without an attached WAL
    /// (a no-op).
    pub fn flush_wal(&self) -> Result<Option<Watermark>> {
        match self.wal.get() {
            Some(wal) => wal.flush().map(|wm| Some(wm.into())),
            None => Ok(None),
        }
    }

    /// Rebuilds a store after a crash: restores `snapshot` (when given),
    /// then verifies and replays the write-ahead log in `wal_dir`
    /// record-by-record, stopping cleanly at a torn final record. The
    /// snapshot generation must be one the sealed WAL pin vouches for —
    /// replay covers it and every later pinned log generation, so a crash
    /// anywhere in a snapshot/rotation sequence recovers completely. A
    /// stale or tampered log tail, a hidden pin, or an unpinned snapshot
    /// generation all fail closed ([`Error::Rollback`] /
    /// [`Error::LogIntegrity`]). When `wal_dir` holds no WAL state at
    /// all, freshness falls back to the snapshot's monotonic `counter`.
    /// Returns the store with the WAL re-attached and ready for new
    /// writes.
    pub fn recover(
        enclave: Arc<Enclave>,
        config: Config,
        snapshot: Option<&Path>,
        counter: &PersistentCounter,
        wal_dir: impl AsRef<Path>,
    ) -> Result<ShieldStore> {
        Self::recover_with_storage(enclave, RealFs::shared(), config, snapshot, counter, wal_dir)
    }

    /// [`ShieldStore::recover`] with an explicit storage backend — the
    /// fault-injection entry point for crash-recovery tests.
    pub fn recover_with_storage(
        enclave: Arc<Enclave>,
        storage: Arc<dyn StorageFs>,
        config: Config,
        snapshot: Option<&Path>,
        counter: &PersistentCounter,
        wal_dir: impl AsRef<Path>,
    ) -> Result<ShieldStore> {
        let policy = config.durability;
        // With WAL state present, the sealed pin (bound to its own
        // monotonic counter) is the freshness root: the snapshot may
        // legitimately lag the snapshot counter after a mid-snapshot
        // crash, and `Wal::recover` rejects any generation the pin does
        // not list. Without any WAL state the snapshot counter is the
        // only defense, so it is enforced here — including against a
        // wiped WAL dir presented alongside no snapshot at all.
        let pin_is_freshness_root = Wal::state_exists(&storage, wal_dir.as_ref());
        let (store, expected_snap) = match snapshot {
            Some(path) => {
                let generation = crate::persist::snapshot_counter(path)?;
                let freshness = if pin_is_freshness_root { None } else { Some(counter) };
                let store = Self::restore_inner(
                    enclave.clone(),
                    config,
                    path,
                    freshness,
                    Arc::clone(&storage),
                )?;
                *store.last_snapshot.lock() = Some(path.to_path_buf());
                (store, generation)
            }
            None => {
                if !pin_is_freshness_root {
                    counter.check_fresh(0).map_err(Error::from)?;
                }
                (Self::new_with_storage(enclave.clone(), config, Arc::clone(&storage))?, 0)
            }
        };
        // The WAL is not attached yet, so replayed ops are not re-logged.
        // Replay is unmetered (no quota state): every logged op was
        // admitted when it first ran; usage is recounted below.
        let wal =
            Wal::recover(enclave, storage, wal_dir.as_ref(), policy, expected_snap, &mut |op| {
                store.apply_replicated(op)
            })?;
        store
            .wal
            .set(wal)
            .map_err(|_| Error::Persistence("write-ahead log already attached".into()))?;
        store.recount_usage();
        Ok(store)
    }

    /// Logs an operation to the attached WAL, if any. Callers hold the
    /// owning shard's lock, so the log observes the shard's apply order.
    /// A commit failure surfaces as the operation's error even though
    /// the in-memory write already landed: durability fails closed. The
    /// record is built lazily so stores without a WAL pay no per-op
    /// allocation for it.
    fn log_wal(&self, op: impl FnOnce() -> WalOp) -> Result<()> {
        match self.wal.get() {
            Some(wal) => wal.log([op()]),
            None => Ok(()),
        }
    }

    /// Applies one verified WAL record op to the in-memory tables — the
    /// shared apply path for crash recovery and replica replay. Bypasses
    /// quota admission and the WAL (every op was admitted when it first
    /// ran on the primary; callers recount usage when done).
    pub(crate) fn apply_replicated(&self, op: WalOp) -> Result<()> {
        match op {
            WalOp::Set { tenant, key, value, expires_at } => self
                .with_shard(self.shard_of(&key), |s| {
                    s.set_t(tenant, &key, &value, expires_at, None)
                }),
            // A delete can replay against a store that never held the
            // key (or already lost it): that is the idempotent outcome,
            // not an error. Replay purges even expired entries — the
            // logged delete may itself be a sweep reap.
            WalOp::Delete { tenant, key } => {
                self.with_shard(self.shard_of(&key), |s| s.purge_t(tenant, &key).map(|_| ()))
            }
        }
    }

    /// Attaches an already-built WAL (the promotion path: a replica
    /// adopting the verified log it copied). Fails if one is attached.
    pub(crate) fn install_wal(&self, wal: Wal) -> Result<()> {
        self.wal.set(wal).map_err(|_| Error::Persistence("write-ahead log already attached".into()))
    }

    pub(crate) fn wal_ref(&self) -> Option<&Wal> {
        self.wal.get()
    }

    pub(crate) fn repl_state(&self) -> &crate::repl::PrimaryState {
        &self.repl
    }

    /// The storage seam this store's durable I/O goes through.
    pub(crate) fn storage_ref(&self) -> &Arc<dyn StorageFs> {
        &self.storage
    }

    pub(crate) fn scrub_state(&self) -> &Mutex<crate::scrub::ScrubState> {
        &self.scrub
    }

    /// Records the snapshot file the scrubber should re-verify.
    pub(crate) fn note_snapshot(&self, path: &Path) {
        *self.last_snapshot.lock() = Some(path.to_path_buf());
    }

    pub(crate) fn last_snapshot_path(&self) -> Option<PathBuf> {
        self.last_snapshot.lock().clone()
    }

    /// Testing-only access to the attached WAL, for crash injection.
    #[cfg(any(test, feature = "testing"))]
    pub fn wal_handle(&self) -> Option<&Wal> {
        self.wal.get()
    }

    /// The shard index serving `key`: the high hash bits pick the shard,
    /// leaving the low bits for bucket selection inside the shard.
    #[inline]
    pub fn shard_of(&self, key: &[u8]) -> usize {
        let hash = self.keys.index_hash(key);
        (((hash >> 32) * self.shards.len() as u64) >> 32) as usize
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// The store's configuration.
    pub fn config(&self) -> &Config {
        &self.config
    }

    /// The enclave this store runs in.
    pub fn enclave(&self) -> &Arc<Enclave> {
        &self.enclave
    }

    /// Runs `f` with exclusive access to shard `idx`. Benchmark workers
    /// use this to own their partition for a whole run.
    pub fn with_shard<T>(&self, idx: usize, f: impl FnOnce(&mut Shard) -> T) -> T {
        f(&mut self.shards[idx].lock())
    }

    /// The tenant registry: quotas, weights, and per-tenant usage.
    pub fn tenants(&self) -> &TenantRegistry {
        &self.registry
    }

    /// Retrieves the value stored under `key` (tenant 0).
    pub fn get(&self, key: &[u8]) -> Result<Vec<u8>> {
        self.get_t(DEFAULT_TENANT, key)
    }

    /// Retrieves the value stored under `key` in `tenant`'s namespace.
    pub fn get_t(&self, tenant: TenantId, key: &[u8]) -> Result<Vec<u8>> {
        let state = self.registry.state(tenant);
        self.with_shard(self.shard_of(key), |s| s.get_t(tenant, key, Some(&state)))
    }

    /// Stores `value` under `key` (tenant 0, no expiry).
    pub fn set(&self, key: &[u8], value: &[u8]) -> Result<()> {
        self.set_with_expiry(DEFAULT_TENANT, key, value, 0)
    }

    /// Stores `value` under `key` in `tenant`'s namespace, no expiry.
    pub fn set_t(&self, tenant: TenantId, key: &[u8], value: &[u8]) -> Result<()> {
        self.set_with_expiry(tenant, key, value, 0)
    }

    /// Stores `value` under `key` with a TTL of `ttl_ns` from now
    /// (`0` = an already-due deadline; use [`ShieldStore::set_t`] for no
    /// expiry).
    pub fn set_ttl(&self, tenant: TenantId, key: &[u8], value: &[u8], ttl_ns: u64) -> Result<()> {
        self.set_with_expiry(tenant, key, value, ttl::deadline_after(ttl_ns))
    }

    /// Stores `value` under `key` with an absolute expiry deadline
    /// (`expires_at` in ns since the epoch; `0` = no expiry). The write
    /// *replaces* any previous deadline and is admitted against
    /// `tenant`'s quota.
    pub fn set_with_expiry(
        &self,
        tenant: TenantId,
        key: &[u8],
        value: &[u8],
        expires_at: u64,
    ) -> Result<()> {
        let state = self.registry.state(tenant);
        self.with_shard(self.shard_of(key), |s| {
            s.set_t(tenant, key, value, expires_at, Some(&state))?;
            self.log_wal(|| WalOp::Set {
                tenant,
                key: key.to_vec(),
                value: value.to_vec(),
                expires_at,
            })
        })
    }

    /// Removes `key` (tenant 0).
    pub fn delete(&self, key: &[u8]) -> Result<()> {
        self.delete_t(DEFAULT_TENANT, key)
    }

    /// Removes `key` from `tenant`'s namespace.
    pub fn delete_t(&self, tenant: TenantId, key: &[u8]) -> Result<()> {
        let state = self.registry.state(tenant);
        self.with_shard(self.shard_of(key), |s| {
            s.delete_t(tenant, key, Some(&state))?;
            self.log_wal(|| WalOp::Delete { tenant, key: key.to_vec() })
        })
    }

    /// Appends `suffix` to `key`'s value (tenant 0), returning the new
    /// length. Logged to the WAL as the resulting full value, so replay
    /// is idempotent.
    pub fn append(&self, key: &[u8], suffix: &[u8]) -> Result<usize> {
        self.append_t(DEFAULT_TENANT, key, suffix)
    }

    /// Tenant-scoped [`ShieldStore::append`]. Clears any expiry deadline
    /// (the logged produced value must replay deadline-free).
    pub fn append_t(&self, tenant: TenantId, key: &[u8], suffix: &[u8]) -> Result<usize> {
        let state = self.registry.state(tenant);
        self.with_shard(self.shard_of(key), |s| {
            let value = s.append_value_t(tenant, key, suffix, Some(&state))?;
            let len = value.len();
            self.log_wal(|| WalOp::Set { tenant, key: key.to_vec(), value, expires_at: 0 })?;
            Ok(len)
        })
    }

    /// Adds `delta` to `key`'s decimal value (tenant 0), returning the
    /// new value. Logged to the WAL as the resulting value, so replay is
    /// idempotent.
    pub fn increment(&self, key: &[u8], delta: i64) -> Result<i64> {
        self.increment_t(DEFAULT_TENANT, key, delta)
    }

    /// Tenant-scoped [`ShieldStore::increment`]; clears any expiry
    /// deadline like [`ShieldStore::append_t`].
    pub fn increment_t(&self, tenant: TenantId, key: &[u8], delta: i64) -> Result<i64> {
        let state = self.registry.state(tenant);
        self.with_shard(self.shard_of(key), |s| {
            let next = s.increment_t(tenant, key, delta, Some(&state))?;
            self.log_wal(|| WalOp::Set {
                tenant,
                key: key.to_vec(),
                value: next.to_string().into_bytes(),
                expires_at: 0,
            })?;
            Ok(next)
        })
    }

    /// True when `key` exists (tenant 0).
    pub fn exists(&self, key: &[u8]) -> Result<bool> {
        self.exists_t(DEFAULT_TENANT, key)
    }

    /// True when `key` exists in `tenant`'s namespace (an expired entry
    /// reads as absent).
    pub fn exists_t(&self, tenant: TenantId, key: &[u8]) -> Result<bool> {
        let state = self.registry.state(tenant);
        self.with_shard(self.shard_of(key), |s| s.exists_t(tenant, key, Some(&state)))
    }

    /// Physically removes expired entries across all shards, logging
    /// each reap to the WAL so recovery cannot resurrect them. Returns
    /// the number of entries reaped. Shards mid-snapshot are skipped
    /// (lazy expiry keeps hiding their dead entries until the next
    /// sweep).
    pub fn sweep_expired(&self) -> Result<usize> {
        let now = ttl::now_ns();
        let mut total = 0;
        for shard in &self.shards {
            let mut shard = shard.lock();
            let reaped = shard.sweep_expired(now, &self.registry);
            if reaped.is_empty() {
                continue;
            }
            total += reaped.len();
            if let Some(wal) = self.wal.get() {
                wal.log(reaped.into_iter().map(|(tenant, key)| WalOp::Delete { tenant, key }))?;
            }
        }
        Ok(total)
    }

    /// Rebaselines per-tenant quota accounting from the tables
    /// themselves. Needed after flows that mutate tables without quota
    /// state (recovery replay, snapshot restore, temp-table merges).
    pub(crate) fn recount_usage(&self) {
        let mut usage = std::collections::HashMap::new();
        for shard in &self.shards {
            for (tenant, (bytes, keys)) in shard.lock().usage_by_tenant() {
                let slot = usage.entry(tenant).or_insert((0, 0));
                slot.0 += bytes;
                slot.1 += keys;
            }
        }
        self.registry.set_usage(&usage);
    }

    /// Batched lookup across shards: groups `keys` by owning shard, takes
    /// each shard's lock once per batch (not once per key), and runs the
    /// shard-level batched path, which verifies each touched bucket-set
    /// hash once per batch. Results come back in input order; a clean
    /// miss is `None`. An integrity violation in any shard fails the
    /// whole call.
    pub fn multi_get(&self, keys: &[&[u8]]) -> Result<Vec<Option<Vec<u8>>>> {
        self.multi_get_t(DEFAULT_TENANT, keys)
    }

    /// Tenant-scoped [`ShieldStore::multi_get`].
    pub fn multi_get_t(&self, tenant: TenantId, keys: &[&[u8]]) -> Result<Vec<Option<Vec<u8>>>> {
        let state = self.registry.state(tenant);
        let mut groups: Vec<Vec<usize>> = vec![Vec::new(); self.shards.len()];
        for (i, key) in keys.iter().enumerate() {
            groups[self.shard_of(key)].push(i);
        }
        let mut results: Vec<Option<Vec<u8>>> = vec![None; keys.len()];
        for (shard_idx, group) in groups.iter().enumerate() {
            if group.is_empty() {
                continue;
            }
            let batch: Vec<&[u8]> = group.iter().map(|&i| keys[i]).collect();
            let shard_results =
                self.with_shard(shard_idx, |s| s.multi_get_t(tenant, &batch, Some(&state)))?;
            for (&slot, value) in group.iter().zip(shard_results) {
                results[slot] = value;
            }
        }
        Ok(results)
    }

    /// Batched write across shards: groups `items` by owning shard and
    /// takes each shard's lock once per batch. Within a shard, set-hash
    /// recomputations are amortized to one per touched bucket set.
    /// Grouping preserves input order per shard, so duplicate keys keep
    /// last-write-wins semantics.
    pub fn multi_set(&self, items: &[(&[u8], &[u8])]) -> Result<()> {
        self.multi_set_t(DEFAULT_TENANT, items, 0)
    }

    /// Tenant-scoped [`ShieldStore::multi_set`]; all items share
    /// `expires_at` (`0` = no expiry).
    pub fn multi_set_t(
        &self,
        tenant: TenantId,
        items: &[(&[u8], &[u8])],
        expires_at: u64,
    ) -> Result<()> {
        let state = self.registry.state(tenant);
        let mut groups: Vec<Vec<usize>> = vec![Vec::new(); self.shards.len()];
        for (i, (key, _)) in items.iter().enumerate() {
            groups[self.shard_of(key)].push(i);
        }
        for (shard_idx, group) in groups.iter().enumerate() {
            if group.is_empty() {
                continue;
            }
            let batch: Vec<(&[u8], &[u8])> = group.iter().map(|&i| items[i]).collect();
            self.with_shard(shard_idx, |s| -> Result<()> {
                s.multi_set_t(tenant, &batch, expires_at, Some(&state))?;
                match self.wal.get() {
                    Some(wal) => wal.log(batch.iter().map(|&(k, v)| WalOp::Set {
                        tenant,
                        key: k.to_vec(),
                        value: v.to_vec(),
                        expires_at,
                    })),
                    None => Ok(()),
                }
            })?;
        }
        Ok(())
    }

    /// Ordered range scan over `[start, end)`, merged across shards:
    /// up to `limit` key-value pairs in key order. Requires
    /// [`Config::ordered_index`] (the paper's future-work extension; see
    /// [`crate::ordered`] for the EPC trade-off).
    pub fn scan_range(
        &self,
        start: &[u8],
        end: &[u8],
        limit: usize,
    ) -> Result<Vec<(Vec<u8>, Vec<u8>)>> {
        self.scan_range_t(DEFAULT_TENANT, start, end, limit)
    }

    /// Tenant-scoped [`ShieldStore::scan_range`] — the scan window is
    /// confined to `tenant`'s namespace by construction.
    pub fn scan_range_t(
        &self,
        tenant: TenantId,
        start: &[u8],
        end: &[u8],
        limit: usize,
    ) -> Result<Vec<(Vec<u8>, Vec<u8>)>> {
        let mut all = Vec::new();
        // Exclusive upper bound, narrowed once `limit` items are in hand:
        // a key at or past the current limit-th smallest can never make
        // the final cut, so later shards skip fetching (and verifying,
        // decrypting) everything beyond it instead of materializing their
        // full result.
        let mut bound: Option<Vec<u8>> = None;
        for shard in self.shards() {
            let hi = bound.as_deref().unwrap_or(end);
            all.extend(shard.lock().scan_range_t(tenant, start, hi, limit)?);
            if limit > 0 && all.len() >= limit {
                all.sort_by(|a, b| a.0.cmp(&b.0));
                all.truncate(limit);
                bound = Some(all[limit - 1].0.clone());
            }
        }
        all.sort_by(|a, b| a.0.cmp(&b.0));
        all.truncate(limit);
        Ok(all)
    }

    /// Ordered prefix scan, merged across shards with the same
    /// shrinking-bound short-circuit as [`ShieldStore::scan_range`].
    pub fn scan_prefix(&self, prefix: &[u8], limit: usize) -> Result<Vec<(Vec<u8>, Vec<u8>)>> {
        self.scan_prefix_t(DEFAULT_TENANT, prefix, limit)
    }

    /// Tenant-scoped [`ShieldStore::scan_prefix`].
    pub fn scan_prefix_t(
        &self,
        tenant: TenantId,
        prefix: &[u8],
        limit: usize,
    ) -> Result<Vec<(Vec<u8>, Vec<u8>)>> {
        let mut all = Vec::new();
        let mut bound: Option<Vec<u8>> = None;
        for shard in self.shards() {
            let mut shard = shard.lock();
            let chunk = match bound.as_deref() {
                // Every prefixed key below `b` lies in `[prefix, b)`, and
                // conversely everything in that range shares the prefix:
                // `b` itself starts with it, so a key with a mismatching
                // byte would sort at or past `b`. A range scan with the
                // narrowed end is therefore an exact substitute.
                Some(b) => shard.scan_range_t(tenant, prefix, b, limit)?,
                None => shard.scan_prefix_t(tenant, prefix, limit)?,
            };
            all.extend(chunk);
            if limit > 0 && all.len() >= limit {
                all.sort_by(|a, b| a.0.cmp(&b.0));
                all.truncate(limit);
                bound = Some(all[limit - 1].0.clone());
            }
        }
        all.sort_by(|a, b| a.0.cmp(&b.0));
        all.truncate(limit);
        Ok(all)
    }

    /// Approximate enclave bytes held by the ordered index across shards.
    pub fn index_bytes(&self) -> usize {
        self.shards().iter().map(|s| s.lock().index_bytes()).sum()
    }

    /// Total live entries across shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().len()).sum()
    }

    /// True when the store holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Aggregated operation counters across shards.
    pub fn stats(&self) -> OpStats {
        let mut total = OpStats::default();
        for shard in &self.shards {
            total.merge(shard.lock().stats());
        }
        total
    }

    /// A full observability snapshot: counters and latency histograms
    /// aggregated across shards, occupancy gauges, and the enclave's SGX
    /// transition/paging counters. Each shard's contribution is taken
    /// under its lock, so per-shard state is consistent; cross-shard skew
    /// is bounded by ops that land between lock acquisitions.
    pub fn snapshot(&self) -> StatsSnapshot {
        let mut snap = StatsSnapshot { shards: self.shards.len() as u64, ..Default::default() };
        for shard in &self.shards {
            shard.lock().contribute_snapshot(&mut snap);
        }
        if let Some(wal) = self.wal.get() {
            // One lock acquisition, so `wal_group.count() == wal_records`
            // holds atomically for `check_consistent`.
            let (bytes, records, fsyncs, hist) = wal.gauges();
            snap.wal_bytes = bytes;
            snap.wal_records = records;
            snap.wal_fsyncs = fsyncs;
            snap.hists.wal_group.merge(&hist);
        }
        self.repl.fill_gauges(&mut snap, self.wal.get().map(|w| w.durable_watermark()));
        {
            let scrub = self.scrub.lock();
            snap.scrub_passes = scrub.passes;
            snap.scrub_bytes = scrub.bytes;
            snap.scrub_corrupt = scrub.corrupt;
            snap.scrub_repaired = scrub.repaired;
        }
        snap.storage_failed = self.wal.get().is_some_and(|w| w.storage_failed()) as u64;
        snap.crypto_bytes = shield_crypto::stats::crypto_bytes();
        snap.crypto_ops = shield_crypto::stats::crypto_ops();
        snap.crypto_backend = shield_crypto::stats::backend_code();
        self.fill_tenant_stats(&mut snap);
        snap.sim = self.enclave.stats().snapshot();
        snap
    }

    /// Fills the snapshot's fixed-width per-tenant block. When more
    /// tenants exist than rows, the busiest (by op count) win and
    /// `tenant_count` still reports the true total.
    fn fill_tenant_stats(&self, snap: &mut StatsSnapshot) {
        let all = self.registry.all();
        snap.tenant_count = all.len() as u64;
        let mut rows: Vec<TenantStat> =
            all.iter().map(|(tenant, state)| tenant_stat_row(*tenant, state)).collect();
        if rows.len() > MAX_TENANT_STATS {
            rows.sort_by_key(|r| std::cmp::Reverse(r.gets + r.sets));
        }
        for (slot, row) in snap.tenants.iter_mut().zip(rows) {
            *slot = row;
        }
    }

    /// Resets all shards' operation counters.
    pub fn reset_stats(&self) {
        for shard in &self.shards {
            shard.lock().reset_stats();
        }
    }

    /// Which partitions are currently quarantined (all empty unless
    /// [`Config::quarantine`] is enabled and violations occurred).
    pub fn quarantine_report(&self) -> QuarantineReport {
        QuarantineReport {
            shards: self
                .shards
                .iter()
                .map(|shard| {
                    let (whole, sets, violations) = shard.lock().quarantine_state();
                    ShardQuarantine { whole, quarantined_sets: sets, violations }
                })
                .collect(),
        }
    }

    /// The `(shard, bucket set)` partition serving `key` — the
    /// granularity at which quarantine isolates integrity violations.
    pub fn key_partition(&self, key: &[u8]) -> (usize, usize) {
        let shard = self.shard_of(key);
        let set = self.with_shard(shard, |s| s.set_of_key(key));
        (shard, set)
    }

    pub(crate) fn keys(&self) -> &Arc<StoreKeys> {
        &self.keys
    }

    pub(crate) fn shards(&self) -> &[Mutex<Shard>] {
        &self.shards
    }
}

/// Materializes one [`TenantStat`] row from a tenant's live state.
fn tenant_stat_row(tenant: TenantId, state: &TenantState) -> TenantStat {
    use std::sync::atomic::Ordering::SeqCst;
    let u = &state.usage;
    TenantStat {
        tenant,
        weight: state.quota.weight.max(1),
        used_bytes: u.used_bytes.load(SeqCst),
        used_keys: u.used_keys.load(SeqCst),
        gets: u.gets.load(SeqCst),
        sets: u.sets.load(SeqCst),
        hits: u.hits.load(SeqCst),
        misses: u.misses.load(SeqCst),
        quota_rejections: u.quota_rejections.load(SeqCst),
        expired_lazy: u.expired_lazy.load(SeqCst),
        expired_swept: u.expired_swept.load(SeqCst),
        shed: 0,
    }
}

/// One shard's quarantine status within a [`QuarantineReport`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardQuarantine {
    /// The whole shard is quarantined (repeat violation, or a violation
    /// during a snapshot window).
    pub whole: bool,
    /// Quarantined bucket-set indices (empty when `whole` — the flag
    /// supersedes per-set tracking).
    pub quarantined_sets: Vec<usize>,
    /// Integrity violations this shard has observed.
    pub violations: u64,
}

/// Store-wide quarantine status from [`ShieldStore::quarantine_report`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QuarantineReport {
    /// Per-shard status, indexed by shard.
    pub shards: Vec<ShardQuarantine>,
}

impl QuarantineReport {
    /// True when nothing is quarantined.
    pub fn is_clean(&self) -> bool {
        self.shards.iter().all(|s| !s.whole && s.quarantined_sets.is_empty())
    }

    /// Bucket sets quarantined in partially quarantined shards (the
    /// `quarantined_sets` stats gauge).
    pub fn quarantined_sets(&self) -> u64 {
        self.shards.iter().filter(|s| !s.whole).map(|s| s.quarantined_sets.len() as u64).sum()
    }

    /// Shards quarantined wholesale (the `quarantined_shards` gauge).
    pub fn quarantined_shards(&self) -> u64 {
        self.shards.iter().filter(|s| s.whole).count() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::Error;
    use sgx_sim::enclave::EnclaveBuilder;
    use sgx_sim::vclock;

    fn store(shards: usize) -> ShieldStore {
        let enclave = EnclaveBuilder::new("store-test").epc_bytes(8 << 20).build();
        ShieldStore::new(
            enclave,
            Config::shield_opt().buckets(256).mac_hashes(64).with_shards(shards),
        )
        .unwrap()
    }

    #[test]
    fn routes_across_shards() {
        let s = store(4);
        vclock::reset();
        for i in 0..200u32 {
            s.set(format!("key-{i}").as_bytes(), format!("v{i}").as_bytes()).unwrap();
        }
        assert_eq!(s.len(), 200);
        for i in 0..200u32 {
            assert_eq!(s.get(format!("key-{i}").as_bytes()).unwrap(), format!("v{i}").as_bytes());
        }
        // Keys actually spread over shards.
        let mut nonempty = 0;
        for i in 0..s.num_shards() {
            if s.with_shard(i, |sh| sh.len()) > 0 {
                nonempty += 1;
            }
        }
        assert!(nonempty >= 3, "200 keys should hit at least 3 of 4 shards");
        vclock::reset();
    }

    #[test]
    fn shard_of_is_stable_and_in_range() {
        let s = store(3);
        for i in 0..100u32 {
            let key = format!("stable-{i}");
            let a = s.shard_of(key.as_bytes());
            let b = s.shard_of(key.as_bytes());
            assert_eq!(a, b);
            assert!(a < 3);
        }
    }

    #[test]
    fn concurrent_disjoint_workers() {
        let s = Arc::new(store(4));
        vclock::reset();
        // Pre-partition keys by shard, then hammer each shard from its own
        // thread — the paper's synchronization-free pattern.
        let mut partitions: Vec<Vec<String>> = vec![Vec::new(); 4];
        for i in 0..400u32 {
            let key = format!("k{i}");
            partitions[s.shard_of(key.as_bytes())].push(key);
        }
        let mut handles = Vec::new();
        for (idx, keys) in partitions.into_iter().enumerate() {
            let s = Arc::clone(&s);
            handles.push(std::thread::spawn(move || {
                s.with_shard(idx, |shard| {
                    for k in &keys {
                        shard.set(k.as_bytes(), b"v").unwrap();
                    }
                    for k in &keys {
                        shard.get(k.as_bytes()).unwrap();
                    }
                });
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(s.len(), 400);
        vclock::reset();
    }

    #[test]
    fn stats_aggregate() {
        let s = store(2);
        vclock::reset();
        s.set(b"a", b"1").unwrap();
        s.set(b"b", b"2").unwrap();
        let _ = s.get(b"a");
        let _ = s.get(b"missing");
        let stats = s.stats();
        assert_eq!(stats.sets, 2);
        assert_eq!(stats.gets, 2);
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 1);
        s.reset_stats();
        assert_eq!(s.stats().total_ops(), 0);
        vclock::reset();
    }

    #[test]
    fn snapshot_aggregates_and_is_consistent() {
        let s = store(2);
        vclock::reset();
        for i in 0..50u32 {
            s.set(format!("snap-{i}").as_bytes(), b"v").unwrap();
        }
        for i in 0..50u32 {
            s.get(format!("snap-{i}").as_bytes()).unwrap();
        }
        let _ = s.get(b"absent");
        let _ = s.delete(b"also-absent");
        s.multi_get(&[b"snap-0".as_slice(), b"snap-1"]).unwrap();
        let snap = s.snapshot();
        snap.check_consistent().expect("clean run must be self-consistent");
        assert_eq!(snap.shards, 2);
        assert_eq!(snap.entries, 50);
        assert_eq!(snap.ops.sets, 50);
        assert_eq!(snap.ops.gets, 53);
        assert_eq!(snap.hists.set.count(), 50);
        assert_eq!(snap.hists.get.count(), 51, "batched gets are not sampled per key");
        assert_eq!(snap.hists.delete.count(), 1);
        assert!(snap.hists.batch.count() >= 1);
        assert!(snap.hists.get.p50() > 0, "timed ops take nonzero effective time");
        assert!(snap.heap_live_bytes > 0);
        assert!(snap.sim.ecalls + snap.sim.hotcalls + snap.sim.epc_hits > 0);
        // Clean runs resolve every searching op.
        assert_eq!(snap.ops.hits + snap.ops.misses, snap.ops.gets + snap.ops.deletes);
        vclock::reset();
    }

    #[test]
    fn single_shard_store_works() {
        let s = store(1);
        vclock::reset();
        s.set(b"x", b"y").unwrap();
        assert_eq!(s.get(b"x").unwrap(), b"y");
        assert_eq!(s.delete(b"z"), Err(Error::KeyNotFound));
        vclock::reset();
    }

    #[test]
    fn server_side_ops_route() {
        let s = store(4);
        vclock::reset();
        s.append(b"log", b"a").unwrap();
        s.append(b"log", b"b").unwrap();
        assert_eq!(s.get(b"log").unwrap(), b"ab");
        assert_eq!(s.increment(b"n", 41).unwrap(), 41);
        assert_eq!(s.increment(b"n", 1).unwrap(), 42);
        assert!(s.exists(b"n").unwrap());
        assert!(!s.exists(b"absent").unwrap());
        vclock::reset();
    }

    #[test]
    fn multi_ops_route_across_shards() {
        let s = store(4);
        vclock::reset();
        let items: Vec<(Vec<u8>, Vec<u8>)> = (0..100u32)
            .map(|i| (format!("mk-{i}").into_bytes(), format!("mv-{i}").into_bytes()))
            .collect();
        let refs: Vec<(&[u8], &[u8])> =
            items.iter().map(|(k, v)| (k.as_slice(), v.as_slice())).collect();
        s.multi_set(&refs).unwrap();
        assert_eq!(s.len(), 100);

        let mut lookups: Vec<&[u8]> = items.iter().map(|(k, _)| k.as_slice()).collect();
        lookups.push(b"mk-absent");
        let got = s.multi_get(&lookups).unwrap();
        for (i, (_, v)) in items.iter().enumerate() {
            assert_eq!(got[i].as_deref(), Some(v.as_slice()), "key {i}");
        }
        assert_eq!(got[100], None);

        // Each non-empty shard was visited exactly once per batched call.
        let stats = s.stats();
        assert!(stats.batches <= 2 * s.num_shards() as u64);
        assert_eq!(stats.batch_ops, 201);
        vclock::reset();
    }

    #[test]
    fn multi_get_duplicate_keys_in_one_batch() {
        let s = store(2);
        vclock::reset();
        s.set(b"dup", b"v").unwrap();
        let got = s.multi_get(&[b"dup".as_slice(), b"dup", b"missing"]).unwrap();
        assert_eq!(got[0].as_deref(), Some(b"v".as_slice()));
        assert_eq!(got[1].as_deref(), Some(b"v".as_slice()));
        assert_eq!(got[2], None);
        vclock::reset();
    }

    #[test]
    fn wal_recovery_replays_acknowledged_writes() {
        vclock::reset();
        let dir = std::env::temp_dir().join(format!("ss-store-wal-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();

        let enclave = EnclaveBuilder::new("store-wal").seed(21).epc_bytes(8 << 20).build();
        let cfg = Config::shield_opt()
            .buckets(128)
            .mac_hashes(32)
            .with_shards(2)
            .with_durability(crate::DurabilityPolicy::Strict);
        let s = ShieldStore::new(enclave.clone(), cfg.clone()).unwrap();
        s.attach_wal(&dir).unwrap();
        s.set(b"a", b"1").unwrap();
        s.append(b"a", b"2").unwrap();
        s.increment(b"n", 41).unwrap();
        s.increment(b"n", 1).unwrap();
        s.set(b"gone", b"x").unwrap();
        s.delete(b"gone").unwrap();
        s.multi_set(&[(b"m1".as_slice(), b"v1".as_slice()), (b"m2", b"v2")]).unwrap();
        s.wal_handle().unwrap().simulate_crash();
        drop(s);

        let counter = PersistentCounter::open(dir.join("snapctr")).unwrap();
        let r = ShieldStore::recover(enclave, cfg, None, &counter, &dir).unwrap();
        assert_eq!(r.get(b"a").unwrap(), b"12");
        assert_eq!(r.get(b"n").unwrap(), b"42");
        assert_eq!(r.get(b"gone"), Err(Error::KeyNotFound));
        assert_eq!(r.get(b"m1").unwrap(), b"v1");
        assert_eq!(r.get(b"m2").unwrap(), b"v2");
        assert_eq!(r.len(), 4);
        // The recovered store keeps logging.
        r.set(b"post", b"recovery").unwrap();
        let snap = r.snapshot();
        snap.check_consistent().unwrap();
        assert!(snap.wal_records >= 1);
        assert!(snap.wal_bytes > 0);
        assert_eq!(snap.hists.wal_group.count(), snap.wal_records);
        std::fs::remove_dir_all(&dir).unwrap();
        vclock::reset();
    }

    #[test]
    fn wal_rotates_with_snapshot_and_recovers_tail() {
        vclock::reset();
        let dir = std::env::temp_dir().join(format!("ss-store-rot-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let snap_path = dir.join("snap.db");
        let counter = PersistentCounter::open(dir.join("snapctr")).unwrap();

        let enclave = EnclaveBuilder::new("store-rot").seed(22).epc_bytes(8 << 20).build();
        let cfg = Config::shield_opt()
            .buckets(128)
            .mac_hashes(32)
            .with_shards(2)
            .with_durability(crate::DurabilityPolicy::Strict);
        let s = ShieldStore::new(enclave.clone(), cfg.clone()).unwrap();
        s.attach_wal(dir.join("wal")).unwrap();
        for i in 0..20u32 {
            s.set(format!("pre-{i}").as_bytes(), b"v").unwrap();
        }
        s.snapshot_blocking(&snap_path, &counter).unwrap();
        s.set(b"tail-1", b"t1").unwrap();
        s.delete(b"pre-0").unwrap();
        s.wal_handle().unwrap().simulate_crash();
        drop(s);

        let r = ShieldStore::recover(enclave, cfg, Some(&snap_path), &counter, dir.join("wal"))
            .unwrap();
        assert_eq!(r.len(), 20); // 20 pre - 1 delete + 1 tail
        assert_eq!(r.get(b"tail-1").unwrap(), b"t1");
        assert_eq!(r.get(b"pre-0"), Err(Error::KeyNotFound));
        assert_eq!(r.get(b"pre-1").unwrap(), b"v");
        std::fs::remove_dir_all(&dir).unwrap();
        vclock::reset();
    }

    #[test]
    fn quarantine_report_names_the_poisoned_partition() {
        let enclave = EnclaveBuilder::new("store-quarantine").epc_bytes(8 << 20).build();
        let s = ShieldStore::new(
            enclave,
            Config::shield_opt().buckets(256).mac_hashes(64).with_shards(2).with_quarantine(),
        )
        .unwrap();
        vclock::reset();
        let keys: Vec<String> = (0..64).map(|i| format!("q{i}")).collect();
        for k in &keys {
            s.set(k.as_bytes(), b"value").unwrap();
        }
        assert!(s.quarantine_report().is_clean());
        assert!(s.tamper_any_entry_byte(7));
        // First sweep surfaces the violation and pins down the poisoned
        // (shard, set) partition.
        let mut victim = None;
        for k in &keys {
            match s.get(k.as_bytes()) {
                Ok(_) => {}
                Err(Error::IntegrityViolation { .. }) => {
                    assert!(victim.is_none());
                    victim = Some(s.key_partition(k.as_bytes()));
                }
                Err(Error::Quarantined { .. }) => {
                    assert_eq!(Some(s.key_partition(k.as_bytes())), victim);
                }
                other => panic!("unexpected outcome: {other:?}"),
            }
        }
        let victim = victim.expect("the sweep visits the tampered entry");
        // Second sweep: the quarantined partition fails closed, every
        // other partition — including the other shard — keeps serving.
        for k in &keys {
            let part = s.key_partition(k.as_bytes());
            match s.get(k.as_bytes()) {
                Ok(v) => {
                    assert_ne!(part, victim);
                    assert_eq!(v, b"value");
                }
                Err(Error::Quarantined { .. }) => assert_eq!(part, victim),
                other => panic!("unexpected outcome: {other:?}"),
            }
        }
        let report = s.quarantine_report();
        assert!(!report.is_clean());
        assert_eq!(report.quarantined_sets(), 1);
        assert_eq!(report.quarantined_shards(), 0);
        let shard = &report.shards[victim.0];
        assert!(!shard.whole);
        assert_eq!(shard.quarantined_sets, vec![victim.1]);
        assert_eq!(shard.violations, 1);
        assert_eq!(report.shards[1 - victim.0].violations, 0);
        let snap = s.snapshot();
        snap.check_consistent().unwrap();
        assert_eq!(snap.quarantined_sets, 1);
        assert_eq!(snap.quarantined_shards, 0);
        assert!(snap.ops.quarantine_rejections >= 1);
        vclock::reset();
    }

    #[test]
    fn scan_short_circuit_matches_full_merge() {
        let enclave = EnclaveBuilder::new("scan-test").epc_bytes(8 << 20).build();
        let s = ShieldStore::new(
            enclave,
            Config { ordered_index: true, ..Config::shield_opt() }
                .buckets(256)
                .mac_hashes(64)
                .with_shards(4),
        )
        .unwrap();
        vclock::reset();
        for i in 0..200u32 {
            s.set(format!("scan-{i:04}").as_bytes(), format!("v{i}").as_bytes()).unwrap();
        }
        for limit in [0usize, 1, 7, 50, 200, 500] {
            let ranged = s.scan_range(b"scan-", b"scan-9999", limit).unwrap();
            let prefixed = s.scan_prefix(b"scan-", limit).unwrap();
            let expect: Vec<Vec<u8>> =
                (0..200u32).map(|i| format!("scan-{i:04}").into_bytes()).take(limit).collect();
            assert_eq!(
                ranged.iter().map(|(k, _)| k.clone()).collect::<Vec<_>>(),
                expect,
                "range limit {limit}"
            );
            assert_eq!(ranged, prefixed, "prefix/range agree at limit {limit}");
        }
        vclock::reset();
    }
}
