//! The hash table structure: bucket heads, entry chains, MAC chains.
//!
//! A [`TableCtx`] bundles everything one hash table needs: the untrusted
//! heap its entries live in, the bucket-head array, the per-bucket MAC
//! chains (when MAC bucketing is on), and the in-enclave MAC hash array.
//! The main table and the snapshot-time temporary table are both
//! `TableCtx`s; during a snapshot the main one is frozen behind an `Arc`
//! and only read.

use crate::alloc::{Handle, UntrustedHeap, NULL_HANDLE};
use crate::entry::{self, EntryHeader};
use crate::integrity::{BucketSets, MacStore};

/// One hash table: structure + storage + integrity metadata.
pub struct TableCtx {
    /// The untrusted heap holding entries and MAC buckets.
    pub heap: UntrustedHeap,
    /// Bucket chain heads (`NULL_HANDLE` = empty). Conceptually untrusted
    /// memory; only the *pointer to* the table lives in the enclave
    /// (paper Fig. 4).
    pub heads: Vec<Handle>,
    /// Per-bucket MAC chain heads (used only when MAC bucketing is on).
    pub mac_heads: Vec<Handle>,
    /// The in-enclave MAC hash array.
    pub macs: MacStore,
    /// Bucket -> MAC hash mapping.
    pub sets: BucketSets,
    /// Live entry count.
    pub count: usize,
}

impl std::fmt::Debug for TableCtx {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TableCtx")
            .field("buckets", &self.heads.len())
            .field("count", &self.count)
            .finish()
    }
}

impl TableCtx {
    /// Creates an empty table with `buckets` buckets.
    pub fn new(heap: UntrustedHeap, buckets: usize, macs: MacStore) -> Self {
        let sets = BucketSets::new(buckets, macs.len());
        Self {
            heap,
            heads: vec![NULL_HANDLE; buckets],
            mac_heads: vec![NULL_HANDLE; buckets],
            macs,
            sets,
            count: 0,
        }
    }

    /// Number of buckets.
    pub fn buckets(&self) -> usize {
        self.heads.len()
    }

    /// Reads the header of the entry at `handle`.
    pub fn header(&self, handle: Handle) -> EntryHeader {
        entry::read_header(&self.heap, handle)
    }

    /// Checked header read: `None` when `handle` — an untrusted chain
    /// pointer an attacker may have overwritten — does not address
    /// `HEADER_LEN` readable bytes. Operation code treats that as an
    /// integrity violation rather than a panic.
    pub fn try_header(&self, handle: Handle) -> Option<EntryHeader> {
        self.heap.try_bytes_at(handle, 0, entry::HEADER_LEN).map(entry::parse_header)
    }

    /// Returns the full bytes of the entry at `handle`.
    pub fn entry_bytes(&self, handle: Handle) -> &[u8] {
        let header = self.header(handle);
        self.heap.bytes(handle, header.entry_len())
    }

    /// Returns the ciphertext slice of the entry at `handle`.
    pub fn ciphertext(&self, handle: Handle, header: &EntryHeader) -> &[u8] {
        self.heap.bytes_at(handle, entry::HEADER_LEN, header.ct_len())
    }

    /// Checked ciphertext access: `None` when the header's (untrusted,
    /// possibly attacker-written) length fields point past the backing
    /// chunk. Operation code treats that as an integrity violation.
    pub fn try_ciphertext(&self, handle: Handle, header: &EntryHeader) -> Option<&[u8]> {
        self.heap.try_bytes_at(handle, entry::HEADER_LEN, header.ct_len())
    }

    /// Visits every `(bucket, handle)` pair in the table.
    pub fn for_each_entry(&self, mut f: impl FnMut(usize, Handle)) {
        for (bucket, &head) in self.heads.iter().enumerate() {
            let mut h = head;
            while h != NULL_HANDLE {
                let next = self.heap.read_u64_at(h, entry::OFF_NEXT);
                f(bucket, h);
                h = next;
            }
        }
    }

    /// Average chain length over non-empty buckets (diagnostics).
    pub fn average_chain_length(&self) -> f64 {
        if self.heads.is_empty() {
            return 0.0;
        }
        self.count as f64 / self.heads.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::AllocMode;
    use sgx_sim::enclave::EnclaveBuilder;

    fn ctx(buckets: usize) -> TableCtx {
        let enclave = EnclaveBuilder::new("table-test").build();
        let heap = UntrustedHeap::new(enclave, AllocMode::Pooled { granularity: 1 << 20 });
        TableCtx::new(heap, buckets, MacStore::plain(buckets))
    }

    #[test]
    fn new_table_is_empty() {
        let t = ctx(8);
        assert_eq!(t.buckets(), 8);
        assert_eq!(t.count, 0);
        assert!(t.heads.iter().all(|&h| h == NULL_HANDLE));
        let mut visited = 0;
        t.for_each_entry(|_, _| visited += 1);
        assert_eq!(visited, 0);
    }

    #[test]
    fn for_each_walks_chains() {
        let mut t = ctx(2);
        // Hand-build a chain of three raw entries in bucket 1.
        let enc = shield_crypto::ctr::AesCtr::new(&[0u8; 16]);
        let cmac = shield_crypto::cmac::Cmac::new(&[0u8; 16]);
        let mut prev = NULL_HANDLE;
        for i in 0..3u8 {
            let len = entry::HEADER_LEN + 1 + 1;
            let h = t.heap.alloc(len);
            let mut buf = vec![0u8; len];
            entry::encode_into(&mut buf, prev, 0, 0, 0, &[i; 16], &[i], &[i], &enc, &cmac);
            t.heap.bytes_mut(h, len).copy_from_slice(&buf);
            prev = h;
        }
        t.heads[1] = prev;
        t.count = 3;

        let mut seen = Vec::new();
        t.for_each_entry(|bucket, h| {
            assert_eq!(bucket, 1);
            seen.push(h);
        });
        assert_eq!(seen.len(), 3);
        assert!((t.average_chain_length() - 1.5).abs() < 1e-12);
    }
}
