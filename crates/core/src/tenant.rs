//! Multi-tenant namespaces: per-tenant key derivation, quotas, weights.
//!
//! One enclave store serves many tenants. Isolation rests on three
//! mechanisms, layered:
//!
//! 1. **Key derivation.** Each tenant's data keys are derived from a
//!    dedicated KDF master key (generated inside the enclave alongside
//!    the store keys) with AES-CMAC as the PRF:
//!    `k_enc(T) = CMAC(k_kdf, "shieldstore-tenant-enc-v1" ‖ T_le)` and
//!    `k_mac(T) = CMAC(k_kdf, "shieldstore-tenant-mac-v1" ‖ T_le)`.
//!    CMAC is a PRF under standard assumptions, so compromising one
//!    derived pair reveals nothing about any other tenant's pair or the
//!    master. Every entry is encrypted and MAC'd under its owner's
//!    derived keys; the tenant id rides plaintext-but-MAC-covered in the
//!    entry header, so rewriting it re-routes verification to a key
//!    under which the stored tag cannot verify — cross-tenant
//!    re-stitching fails closed.
//! 2. **Quotas.** Per-tenant byte and key budgets, enforced atomically
//!    before any mutation lands ([`TenantUsage::try_charge`]).
//! 3. **Weights.** A scheduling weight consumed by the network layer's
//!    fair admission control, so one tenant saturating its share answers
//!    `Busy` without starving the others.
//!
//! Tenant `0` is the default namespace; the untenanted store API is
//! sugar for tenant 0, which keeps single-tenant deployments (and the
//! pre-tenancy test corpus) working unchanged.

use shield_crypto::cmac::Cmac;
use shield_crypto::ctr::AesCtr;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// A tenant identifier. Tenant 0 is the default namespace.
pub type TenantId = u32;

/// The default tenant, used by the untenanted API surface.
pub const DEFAULT_TENANT: TenantId = 0;

/// Domain-separation label for tenant encryption keys.
const KDF_ENC_LABEL: &[u8] = b"shieldstore-tenant-enc-v1";
/// Domain-separation label for tenant MAC keys.
const KDF_MAC_LABEL: &[u8] = b"shieldstore-tenant-mac-v1";

/// A tenant's derived data keys.
pub struct TenantKeys {
    /// AES-CTR cipher for this tenant's entry key/value encryption.
    pub enc: AesCtr,
    /// CMAC for this tenant's entry MACs.
    pub mac: Cmac,
}

impl TenantKeys {
    /// Derives tenant `id`'s keys from the KDF master key.
    pub fn derive(kdf_key: &[u8; 16], id: TenantId) -> Self {
        let (enc, mac) = Self::derive_raw(kdf_key, id);
        Self { enc: AesCtr::new(&enc), mac: Cmac::new(&mac) }
    }

    /// Derives tenant `id`'s raw `(enc, mac)` key bytes. Exposed so the
    /// adversarial harness can model a *leaked tenant key*: an attacker
    /// holding one tenant's derived keys must still be unable to open or
    /// forge another tenant's entries.
    pub fn derive_raw(kdf_key: &[u8; 16], id: TenantId) -> ([u8; 16], [u8; 16]) {
        let kdf = Cmac::new(kdf_key);
        let enc = kdf.compute_parts(&[KDF_ENC_LABEL, &id.to_le_bytes()]);
        let mac = kdf.compute_parts(&[KDF_MAC_LABEL, &id.to_le_bytes()]);
        (enc, mac)
    }
}

impl std::fmt::Debug for TenantKeys {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TenantKeys").finish_non_exhaustive()
    }
}

/// Namespace-prefixed key: `tenant (4 bytes BE) ‖ key`. Used wherever a
/// flat byte-keyed structure (ordered index, plaintext cache, snapshot
/// tombstones) must keep tenants apart; big-endian keeps one tenant's
/// keys contiguous in ordered iteration.
pub fn nskey(tenant: TenantId, key: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(4 + key.len());
    out.extend_from_slice(&tenant.to_be_bytes());
    out.extend_from_slice(key);
    out
}

/// Splits a [`nskey`] back into `(tenant, key)`.
pub fn split_nskey(ns: &[u8]) -> (TenantId, &[u8]) {
    let tenant = u32::from_be_bytes(ns[..4].try_into().expect("4-byte tenant prefix"));
    (tenant, &ns[4..])
}

/// Per-tenant resource limits and scheduling weight.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TenantQuota {
    /// Stored-bytes budget (entry bytes incl. header); `u64::MAX` = unlimited.
    pub max_bytes: u64,
    /// Live-key budget; `u64::MAX` = unlimited.
    pub max_keys: u64,
    /// Admission weight (≥ 1): this tenant's share of server capacity
    /// relative to the other registered tenants.
    pub weight: u32,
}

impl Default for TenantQuota {
    fn default() -> Self {
        Self { max_bytes: u64::MAX, max_keys: u64::MAX, weight: 1 }
    }
}

/// Live resource accounting and op counters for one tenant. Counters are
/// atomics so shards can account without taking the registry lock.
#[derive(Debug, Default)]
pub struct TenantUsage {
    /// Stored bytes (physical entries, including expired-not-yet-swept).
    pub used_bytes: AtomicU64,
    /// Live keys (physical entries, including expired-not-yet-swept).
    pub used_keys: AtomicU64,
    /// Reads served for this tenant.
    pub gets: AtomicU64,
    /// Writes served for this tenant.
    pub sets: AtomicU64,
    /// Read hits.
    pub hits: AtomicU64,
    /// Read misses (including lazily-expired reads).
    pub misses: AtomicU64,
    /// Writes rejected by quota.
    pub quota_rejections: AtomicU64,
    /// Reads that found an expired entry and hid it.
    pub expired_lazy: AtomicU64,
    /// Entries physically removed by the expiry sweep.
    pub expired_swept: AtomicU64,
}

/// One registered tenant: quota plus usage.
#[derive(Debug)]
pub struct TenantState {
    /// The tenant's configured quota and weight.
    pub quota: TenantQuota,
    /// The tenant's live accounting.
    pub usage: Arc<TenantUsage>,
}

impl TenantUsage {
    /// Atomically charges an insert of `bytes` and `keys` against
    /// `quota`, or returns `false` leaving usage untouched when either
    /// budget would be exceeded.
    pub fn try_charge(&self, quota: &TenantQuota, bytes: u64, keys: u64) -> bool {
        if self
            .used_keys
            .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |k| {
                (k.saturating_add(keys) <= quota.max_keys).then(|| k + keys)
            })
            .is_err()
        {
            return false;
        }
        if self
            .used_bytes
            .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |b| {
                (b.saturating_add(bytes) <= quota.max_bytes).then(|| b + bytes)
            })
            .is_err()
        {
            self.used_keys.fetch_sub(keys, Ordering::SeqCst);
            return false;
        }
        true
    }

    /// Atomically charges a value-growth of `delta` bytes (update path),
    /// or returns `false` when the byte budget would be exceeded.
    pub fn try_charge_bytes(&self, quota: &TenantQuota, delta: u64) -> bool {
        self.used_bytes
            .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |b| {
                (b.saturating_add(delta) <= quota.max_bytes).then(|| b + delta)
            })
            .is_ok()
    }

    /// Releases `bytes` and `keys` (delete / shrink / sweep).
    pub fn discharge(&self, bytes: u64, keys: u64) {
        // Saturating: recounts can race with in-flight ops; usage must
        // never wrap to a huge value and wedge the tenant.
        let _ = self
            .used_bytes
            .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |b| Some(b.saturating_sub(bytes)));
        let _ = self
            .used_keys
            .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |k| Some(k.saturating_sub(keys)));
    }
}

/// The store-wide tenant registry: quota/weight configuration and live
/// usage, shared (via `Arc`) between the store's shards and the network
/// layer's admission control.
#[derive(Debug, Default)]
pub struct TenantRegistry {
    tenants: Mutex<HashMap<TenantId, Arc<TenantState>>>,
}

impl TenantRegistry {
    /// Creates an empty registry. Tenants materialize on first use with
    /// the default (unlimited, weight-1) quota unless
    /// [`TenantRegistry::configure`] set one earlier.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets (or replaces) `tenant`'s quota and weight. Existing usage is
    /// preserved, so tightening a quota mid-flight takes effect on the
    /// next charge.
    pub fn configure(&self, tenant: TenantId, quota: TenantQuota) {
        let mut map = self.tenants.lock().expect("tenant registry poisoned");
        match map.get(&tenant) {
            Some(state) => {
                let usage = Arc::clone(&state.usage);
                map.insert(tenant, Arc::new(TenantState { quota, usage }));
            }
            None => {
                map.insert(
                    tenant,
                    Arc::new(TenantState { quota, usage: Arc::new(TenantUsage::default()) }),
                );
            }
        }
    }

    /// The state for `tenant`, materializing a default entry on first use.
    pub fn state(&self, tenant: TenantId) -> Arc<TenantState> {
        let mut map = self.tenants.lock().expect("tenant registry poisoned");
        Arc::clone(map.entry(tenant).or_insert_with(|| {
            Arc::new(TenantState {
                quota: TenantQuota::default(),
                usage: Arc::new(TenantUsage::default()),
            })
        }))
    }

    /// The admission weight of `tenant` (default 1 when unregistered).
    pub fn weight(&self, tenant: TenantId) -> u32 {
        self.tenants
            .lock()
            .expect("tenant registry poisoned")
            .get(&tenant)
            .map(|s| s.quota.weight.max(1))
            .unwrap_or(1)
    }

    /// Snapshot of all registered tenants, sorted by id.
    pub fn all(&self) -> Vec<(TenantId, Arc<TenantState>)> {
        let map = self.tenants.lock().expect("tenant registry poisoned");
        let mut out: Vec<_> = map.iter().map(|(id, s)| (*id, Arc::clone(s))).collect();
        out.sort_by_key(|(id, _)| *id);
        out
    }

    /// Overwrites every tenant's physical usage with `counts`
    /// (`tenant → (bytes, keys)`), zeroing tenants absent from the map.
    /// Called after snapshot restore / temp-table merges, when
    /// incremental accounting may have drifted from the physical truth.
    pub fn set_usage(&self, counts: &HashMap<TenantId, (u64, u64)>) {
        let mut map = self.tenants.lock().expect("tenant registry poisoned");
        for (id, (bytes, keys)) in counts {
            let state = map.entry(*id).or_insert_with(|| {
                Arc::new(TenantState {
                    quota: TenantQuota::default(),
                    usage: Arc::new(TenantUsage::default()),
                })
            });
            state.usage.used_bytes.store(*bytes, Ordering::SeqCst);
            state.usage.used_keys.store(*keys, Ordering::SeqCst);
        }
        for (id, state) in map.iter() {
            if !counts.contains_key(id) {
                state.usage.used_bytes.store(0, Ordering::SeqCst);
                state.usage.used_keys.store(0, Ordering::SeqCst);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_keys_differ_per_tenant_and_purpose() {
        let kdf = [7u8; 16];
        let a = TenantKeys::derive(&kdf, 1);
        let b = TenantKeys::derive(&kdf, 2);
        let msg = b"same message";
        // Distinct tenants produce distinct MACs for the same message.
        assert_ne!(a.mac.compute_parts(&[msg]), b.mac.compute_parts(&[msg]));
        // Distinct ciphertexts too.
        let mut ca = msg.to_vec();
        let mut cb = msg.to_vec();
        a.enc.apply_keystream(&[0u8; 16], &mut ca);
        b.enc.apply_keystream(&[0u8; 16], &mut cb);
        assert_ne!(ca, cb);
        // Derivation is deterministic.
        let a2 = TenantKeys::derive(&kdf, 1);
        assert_eq!(a.mac.compute_parts(&[msg]), a2.mac.compute_parts(&[msg]));
        // A different master yields unrelated keys.
        let other = TenantKeys::derive(&[8u8; 16], 1);
        assert_ne!(a.mac.compute_parts(&[msg]), other.mac.compute_parts(&[msg]));
    }

    #[test]
    fn nskey_roundtrip_and_ordering() {
        let ns = nskey(0x01020304, b"user:1");
        assert_eq!(&ns[..4], &[1, 2, 3, 4]);
        let (t, k) = split_nskey(&ns);
        assert_eq!(t, 0x01020304);
        assert_eq!(k, b"user:1");
        // Big-endian prefix: tenant 1's keys all sort before tenant 2's.
        assert!(nskey(1, b"zzz") < nskey(2, b"aaa"));
    }

    #[test]
    fn quota_charges_and_rejections() {
        let usage = TenantUsage::default();
        let quota = TenantQuota { max_bytes: 100, max_keys: 2, weight: 1 };
        assert!(usage.try_charge(&quota, 40, 1));
        assert!(usage.try_charge(&quota, 40, 1));
        // Third key exceeds the key budget; usage is untouched.
        assert!(!usage.try_charge(&quota, 1, 1));
        assert_eq!(usage.used_keys.load(Ordering::SeqCst), 2);
        assert_eq!(usage.used_bytes.load(Ordering::SeqCst), 80);
        // Growth beyond the byte budget is rejected.
        assert!(usage.try_charge_bytes(&quota, 20));
        assert!(!usage.try_charge_bytes(&quota, 1));
        // Discharge frees budget again.
        usage.discharge(50, 1);
        assert!(usage.try_charge(&quota, 10, 1));
    }

    #[test]
    fn byte_quota_failure_rolls_back_key_charge() {
        let usage = TenantUsage::default();
        let quota = TenantQuota { max_bytes: 10, max_keys: 10, weight: 1 };
        assert!(!usage.try_charge(&quota, 11, 1));
        assert_eq!(usage.used_keys.load(Ordering::SeqCst), 0);
        assert_eq!(usage.used_bytes.load(Ordering::SeqCst), 0);
    }

    #[test]
    fn registry_configure_preserves_usage() {
        let reg = TenantRegistry::new();
        let state = reg.state(5);
        state.usage.used_bytes.store(42, Ordering::SeqCst);
        reg.configure(5, TenantQuota { max_bytes: 1000, max_keys: 10, weight: 3 });
        let state = reg.state(5);
        assert_eq!(state.usage.used_bytes.load(Ordering::SeqCst), 42);
        assert_eq!(state.quota.weight, 3);
        assert_eq!(reg.weight(5), 3);
        assert_eq!(reg.weight(99), 1, "unknown tenants default to weight 1");
    }

    #[test]
    fn set_usage_overwrites_and_zeroes() {
        let reg = TenantRegistry::new();
        reg.state(1).usage.used_bytes.store(7, Ordering::SeqCst);
        reg.state(2).usage.used_keys.store(9, Ordering::SeqCst);
        let mut counts = HashMap::new();
        counts.insert(1u32, (100u64, 3u64));
        reg.set_usage(&counts);
        assert_eq!(reg.state(1).usage.used_bytes.load(Ordering::SeqCst), 100);
        assert_eq!(reg.state(1).usage.used_keys.load(Ordering::SeqCst), 3);
        assert_eq!(reg.state(2).usage.used_keys.load(Ordering::SeqCst), 0);
    }
}
