//! Fault-injection API for adversarial testing (feature `testing`).
//!
//! ShieldStore's threat model gives the attacker full read/write control
//! of untrusted memory (paper §3.1). This module *is* that attacker: it
//! mutates entry fields of the Fig. 5 layout, chain structure, MAC side
//! arrays, and raw heap chunks, deterministically from a caller-supplied
//! seed. Every mutation is recorded in the enclave's simulation counters
//! (`attack_steps`), so harnesses can assert how many attacks a run
//! actually landed.
//!
//! Nothing here is compiled into production builds: the module only
//! exists under `cfg(test)` or the `testing` cargo feature, and the store
//! itself never calls it.

use crate::alloc::Handle;
use crate::entry;
use crate::mac_bucket;
use crate::shard::Shard;
use crate::store::ShieldStore;
use crate::table::TableCtx;
use crate::tenant::{TenantId, TenantKeys};

/// One field of the Fig. 5 entry layout to corrupt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EntryField {
    /// The 1-byte key hint (§5.4).
    Hint,
    /// The 4-byte key size.
    KeySize,
    /// The 4-byte value size.
    ValueSize,
    /// The 4-byte plaintext (but MAC-covered) tenant id.
    Tenant,
    /// The 8-byte plaintext (but MAC-covered) expiry deadline.
    Expiry,
    /// The 16-byte IV/counter.
    Iv,
    /// The encrypted key‖value payload.
    Ciphertext,
    /// The 16-byte entry MAC.
    Mac,
    /// The 8-byte chain pointer (deliberately not MAC-covered).
    ChainNext,
    /// Any byte past the chain pointer — the behaviour of the old
    /// single-hook tamper API, kept for unbiased single-byte sweeps.
    Any,
}

/// One attack from the catalog, applied to a shard's untrusted state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TamperOp {
    /// Bit-flip within one field of a pseudo-randomly chosen entry.
    Field(EntryField),
    /// Unlink a chosen entry from its bucket chain, leaving the MAC side
    /// array untouched (the silent-miss attack of README "Beyond the
    /// paper").
    Unlink,
    /// Move a chosen entry's link into a different bucket's chain.
    Splice,
    /// Bit-flip a byte of a MAC side-array node (§5.2 desync).
    MacSideArray,
    /// Bit-flip a byte of raw allocator chunk memory — may hit entries,
    /// MAC nodes, chain pointers, or dead space.
    HeapChunk,
}

/// A stale byte-level copy of one entry, for replay/rollback attacks.
#[derive(Debug, Clone)]
pub struct StaleEntry {
    /// The untrusted-heap handle the bytes were captured from.
    pub handle: Handle,
    /// The raw entry bytes (header + ciphertext) at capture time.
    pub bytes: Vec<u8>,
}

/// Cheap deterministic mixer so one seed drives several choices.
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Bounded, panic-free enumeration of `(bucket, handle)` pairs. Unlike
/// `TableCtx::for_each_entry`, this tolerates chains already corrupted by
/// earlier attack steps (it stops at unreadable pointers and cycles).
fn checked_entries(ctx: &TableCtx) -> Vec<(usize, Handle)> {
    let max = ctx.count.saturating_add(1);
    let mut out = Vec::with_capacity(ctx.count);
    for (bucket, &head) in ctx.heads.iter().enumerate() {
        let mut h = head;
        let mut steps = 0usize;
        while h != 0 && steps < max {
            out.push((bucket, h));
            steps += 1;
            match ctx.heap.try_read_u64_at(h, entry::OFF_NEXT) {
                Some(next) => h = next,
                None => break,
            }
        }
    }
    out
}

/// Bounded enumeration of MAC side-array node handles.
fn checked_mac_nodes(ctx: &TableCtx) -> Vec<Handle> {
    let max = ctx.count.saturating_add(1);
    let mut out = Vec::new();
    for &head in &ctx.mac_heads {
        let mut node = head;
        let mut steps = 0usize;
        while node != 0 && steps < max {
            out.push(node);
            steps += 1;
            match ctx.heap.try_read_u64_at(node, 0) {
                Some(next) => node = next,
                None => break,
            }
        }
    }
    out
}

impl Shard {
    /// Applies `op` to this shard's untrusted state, with every random
    /// choice derived from `seed`. Returns `false` when the attack had no
    /// target (empty shard, single bucket for a splice, ...); `true`
    /// means untrusted memory was mutated and the attack step was
    /// recorded in the enclave counters.
    pub fn tamper(&mut self, op: TamperOp, seed: u64) -> bool {
        let Some(main) = self.main_table_mut() else {
            return false;
        };
        let mutated = match op {
            TamperOp::Field(field) => tamper_field(main, field, seed),
            TamperOp::Unlink => unlink_entry(main, seed),
            TamperOp::Splice => splice_entry(main, seed),
            TamperOp::MacSideArray => tamper_mac_node(main, seed),
            TamperOp::HeapChunk => {
                let chunks = main.heap.chunk_count();
                if chunks == 0 {
                    false
                } else {
                    let chunk = (mix(seed) as usize) % chunks;
                    let len = main.heap.chunk_len(chunk);
                    let offset = (mix(seed ^ 0xc4a7) as usize) % len;
                    main.heap.corrupt_raw(chunk, offset, 1 << (seed % 8))
                }
            }
        };
        if mutated {
            self.record_attack_step();
        }
        mutated
    }

    /// Captures byte-level copies of every entry, for later replay.
    pub fn stale_entry_copies(&self) -> Vec<StaleEntry> {
        let Some(main) = self.main_table() else {
            return Vec::new();
        };
        let mut out = Vec::new();
        for (_, h) in checked_entries(main) {
            let Some(header) = main.try_header(h) else { continue };
            let len = header.entry_len();
            if let Some(bytes) = main.heap.try_bytes_at(h, 0, len) {
                out.push(StaleEntry { handle: h, bytes: bytes.to_vec() });
            }
        }
        out
    }

    /// Replays a stale entry copy over its original allocation — the
    /// rollback attack: the bytes (including IV and then-valid MAC) are a
    /// genuine previous version. Returns `false` when the allocation no
    /// longer covers the copy.
    pub fn replay_entry(&mut self, stale: &StaleEntry) -> bool {
        let Some(main) = self.main_table_mut() else {
            return false;
        };
        if main.heap.try_bytes_at(stale.handle, 0, stale.bytes.len()).is_none() {
            return false;
        }
        main.heap.bytes_at_mut(stale.handle, 0, stale.bytes.len()).copy_from_slice(&stale.bytes);
        self.record_attack_step();
        true
    }

    fn record_attack_step(&self) {
        if let Some(main) = self.main_table() {
            main.heap.enclave().stats().record_attack_step();
        }
    }
}

fn tamper_field(ctx: &mut TableCtx, field: EntryField, seed: u64) -> bool {
    let entries = checked_entries(ctx);
    if entries.is_empty() {
        return false;
    }
    let (_, h) = entries[(mix(seed) as usize) % entries.len()];
    let Some(header) = ctx.try_header(h) else {
        return false;
    };
    let (start, len) = match field {
        EntryField::Hint => (entry::OFF_HINT, 1),
        EntryField::KeySize => (entry::OFF_KEY_LEN, 4),
        EntryField::ValueSize => (entry::OFF_VAL_LEN, 4),
        EntryField::Tenant => (entry::OFF_TENANT, 4),
        EntryField::Expiry => (entry::OFF_EXPIRY, 8),
        EntryField::Iv => (entry::OFF_IV, 16),
        EntryField::Mac => (entry::OFF_MAC, 16),
        EntryField::ChainNext => (entry::OFF_NEXT, 8),
        EntryField::Ciphertext => {
            let ct = header.ct_len();
            if ct == 0 {
                return false;
            }
            (entry::HEADER_LEN, ct)
        }
        EntryField::Any => {
            let total = header.entry_len();
            if total <= 8 {
                return false;
            }
            (8, total - 8)
        }
    };
    let offset = start + (mix(seed ^ 0x51ce) as usize) % len;
    if ctx.heap.try_bytes_at(h, offset, 1).is_none() {
        return false;
    }
    ctx.heap.bytes_at_mut(h, offset, 1)[0] ^= 1 << (seed % 8);
    true
}

/// Finds the in-chain predecessor of `target` in `bucket`, bounded.
/// Returns `None` when `target` is not reachable; `Some(0)` means it is
/// the chain head.
fn find_prev(ctx: &TableCtx, bucket: usize, target: Handle) -> Option<Handle> {
    let max = ctx.count.saturating_add(1);
    let mut prev = 0u64;
    let mut h = ctx.heads[bucket];
    let mut steps = 0usize;
    while h != 0 && steps < max {
        if h == target {
            return Some(prev);
        }
        prev = h;
        steps += 1;
        h = ctx.heap.try_read_u64_at(h, entry::OFF_NEXT)?;
    }
    None
}

/// Detaches a seed-chosen entry from its chain; returns `(bucket, handle)`.
fn detach_entry(ctx: &mut TableCtx, seed: u64) -> Option<(usize, Handle)> {
    let entries = checked_entries(ctx);
    if entries.is_empty() {
        return None;
    }
    let (bucket, h) = entries[(mix(seed) as usize) % entries.len()];
    let prev = find_prev(ctx, bucket, h)?;
    let next = ctx.heap.try_read_u64_at(h, entry::OFF_NEXT)?;
    if prev == 0 {
        ctx.heads[bucket] = next;
    } else {
        ctx.heap.write_u64_at(prev, entry::OFF_NEXT, next);
    }
    Some((bucket, h))
}

fn unlink_entry(ctx: &mut TableCtx, seed: u64) -> bool {
    detach_entry(ctx, seed).is_some()
}

fn splice_entry(ctx: &mut TableCtx, seed: u64) -> bool {
    if ctx.buckets() < 2 {
        return false;
    }
    let Some((bucket, h)) = detach_entry(ctx, seed) else {
        return false;
    };
    let mut target = (mix(seed ^ 0x3a1d) as usize) % ctx.buckets();
    if target == bucket {
        target = (target + 1) % ctx.buckets();
    }
    ctx.heap.write_u64_at(h, entry::OFF_NEXT, ctx.heads[target]);
    ctx.heads[target] = h;
    true
}

fn tamper_mac_node(ctx: &mut TableCtx, seed: u64) -> bool {
    let nodes = checked_mac_nodes(ctx);
    if nodes.is_empty() {
        return false;
    }
    let node = nodes[(mix(seed) as usize) % nodes.len()];
    // Aim at the MAC slots and count field; reading the node's own count
    // keeps the offset inside the allocation without knowing capacity.
    let count = match ctx.heap.try_bytes_at(node, 8, 4) {
        Some(b) => u32::from_le_bytes(b.try_into().expect("4 bytes")) as usize,
        None => return false,
    };
    let span = mac_bucket::node_len(count.clamp(1, 1 << 10));
    let offset = 8 + (mix(seed ^ 0x77aa) as usize) % (span - 8);
    if ctx.heap.try_bytes_at(node, offset, 1).is_none() {
        return false;
    }
    ctx.heap.bytes_at_mut(node, offset, 1)[0] ^= 1 << (seed % 8);
    true
}

impl ShieldStore {
    /// Applies `op` to the shard chosen by `seed`. See [`Shard::tamper`].
    pub fn tamper(&self, op: TamperOp, seed: u64) -> bool {
        let shard = (seed as usize) % self.num_shards();
        self.with_shard(shard, |s| s.tamper(op, seed))
    }

    /// Captures stale copies of every entry in `shard` for replay.
    pub fn stale_entry_copies(&self, shard: usize) -> Vec<StaleEntry> {
        self.with_shard(shard, |s| s.stale_entry_copies())
    }

    /// Replays a stale entry copy into `shard`. See
    /// [`Shard::replay_entry`].
    pub fn replay_entry(&self, shard: usize, stale: &StaleEntry) -> bool {
        self.with_shard(shard, |s| s.replay_entry(stale))
    }

    /// Old single-hook behaviour: flips one pseudo-random non-pointer
    /// byte of one pseudo-random entry somewhere in the store. Returns
    /// `false` when the chosen shard holds no entries.
    pub fn tamper_any_entry_byte(&self, seed: u64) -> bool {
        self.tamper(TamperOp::Field(EntryField::Any), seed)
    }

    /// Leaks `tenant`'s derived raw `(enc, mac)` key bytes, modelling a
    /// tenant whose own data keys were compromised. The isolation suite
    /// uses these to prove the leak opens exactly one namespace: with
    /// tenant A's keys an attacker can decrypt A's ciphertext at will,
    /// but cannot verify, decrypt, or forge an entry belonging to any
    /// other tenant.
    pub fn leak_tenant_keys(&self, tenant: TenantId) -> ([u8; 16], [u8; 16]) {
        TenantKeys::derive_raw(&self.keys().raw[4], tenant)
    }
}
