//! The TTL clock: absolute expiry deadlines in nanoseconds.
//!
//! Entry TTLs are stored as **absolute Unix-epoch deadlines** (ns), so
//! they survive process restarts and WAL replay without rebasing: the
//! wall clock after recovery is the same wall clock the deadline was cut
//! against. `expires_at == 0` means "no TTL".
//!
//! Tests need the clock to move on command, never on its own. Two
//! process-wide hooks provide that, mirroring the `sgx_sim::vclock`
//! idiom (always compiled, used by harnesses):
//!
//! * [`freeze`] pins [`now_ns`] to an explicit value — from then on the
//!   clock only moves via [`advance`]. Deterministic expiry tests freeze
//!   first, so wall-time jitter cannot flip a deadline.
//! * [`advance`] moves the clock forward: the frozen value when frozen,
//!   a standing offset over the wall clock otherwise.
//!
//! [`thaw`] returns to wall time (plus any accumulated offset).

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{SystemTime, UNIX_EPOCH};

/// Pinned clock value; 0 = not frozen (0 is never a valid frozen time).
static FROZEN: AtomicU64 = AtomicU64::new(0);
/// Offset added to the wall clock while unfrozen.
static OFFSET: AtomicU64 = AtomicU64::new(0);

fn wall_ns() -> u64 {
    SystemTime::now().duration_since(UNIX_EPOCH).map(|d| d.as_nanos() as u64).unwrap_or(0)
}

/// The current TTL-clock reading in nanoseconds since the Unix epoch.
pub fn now_ns() -> u64 {
    let frozen = FROZEN.load(Ordering::SeqCst);
    if frozen != 0 {
        frozen
    } else {
        wall_ns().saturating_add(OFFSET.load(Ordering::SeqCst))
    }
}

/// A deadline `ttl_ns` from now (saturating). `ttl_ns == 0` yields an
/// already-due deadline, *not* "no TTL" — pass `expires_at = 0` through
/// the store API for untimed entries.
pub fn deadline_after(ttl_ns: u64) -> u64 {
    now_ns().saturating_add(ttl_ns).max(1)
}

/// Test hook: pins the clock at `at_ns` (must be nonzero).
pub fn freeze(at_ns: u64) {
    assert!(at_ns != 0, "0 means unfrozen");
    FROZEN.store(at_ns, Ordering::SeqCst);
}

/// Test hook: moves the clock forward by `delta_ns` — the frozen value
/// when frozen, a standing wall-clock offset otherwise.
pub fn advance(delta_ns: u64) {
    if FROZEN.load(Ordering::SeqCst) != 0 {
        FROZEN.fetch_add(delta_ns, Ordering::SeqCst);
    } else {
        OFFSET.fetch_add(delta_ns, Ordering::SeqCst);
    }
}

/// Test hook: unfreezes and clears any offset (back to pure wall time).
pub fn thaw() {
    FROZEN.store(0, Ordering::SeqCst);
    OFFSET.store(0, Ordering::SeqCst);
}

#[cfg(test)]
mod tests {
    use super::*;

    // The clock is process-global; this single test exercises all modes
    // so parallel-test interleavings cannot fight over it.
    #[test]
    fn freeze_advance_thaw() {
        thaw();
        let before = now_ns();
        assert!(before > 0, "wall clock is past the epoch");

        freeze(1_000);
        assert_eq!(now_ns(), 1_000);
        advance(500);
        assert_eq!(now_ns(), 1_500);
        assert_eq!(deadline_after(100), 1_600);

        thaw();
        let w = now_ns();
        assert!(w >= before);
        advance(1 << 40);
        assert!(now_ns() >= w + (1 << 40));
        thaw();
    }
}
