//! Sealed write-ahead operation log (WAL).
//!
//! Snapshots (§4.4, [`crate::persist`]) bound durability only to the last
//! snapshot cut — every acknowledged write since then dies with the
//! process. This module closes that window with an append-only operation
//! log whose records are sealed *inside* the simulated enclave, so the
//! untrusted disk (and the host controlling it) learns nothing about keys
//! or values and cannot tamper with, reorder, splice, truncate, or roll
//! back the log without detection.
//!
//! # Record format
//!
//! ```text
//! [ len u32 | seq u64 | iv 16B | ciphertext | mac 16B ]
//!   `len` counts everything after itself (min 40 bytes).
//!   mac = CMAC(mac_key, prev_mac || seq_le || len_le || iv || ct)
//!   record 1 chains from a genesis tag:
//!   prev_mac(1) = CMAC(mac_key, "shieldstore-wal-genesis-v1" || snap_le)
//! ```
//!
//! Each record's CMAC covers the *previous* record's MAC and a monotone
//! sequence number, so the log forms a hash chain rooted in the snapshot
//! generation it extends. The plaintext payload is a batch of idempotent
//! operations (`set` / `delete`); non-idempotent writes (`append`,
//! `increment`) are logged as the resulting full value so replay after a
//! snapshot/log overlap cannot double-apply them.
//!
//! # Freshness pin
//!
//! A chain alone cannot stop the host from serving a *stale prefix* of the
//! log (every prefix is internally consistent). The WAL therefore keeps a
//! sealed pin file recording the log's encryption/MAC keys plus a list of
//! live *segments* — `(snapshot id, last seq, last MAC)` per log
//! generation — and binds the pin to an
//! [`sgx_sim::counter::PersistentCounter`] — the same §4.4 monotonic
//! counter defense snapshots use. Commit order is: write + fsync the
//! record, write + fsync the pin claiming counter value `c+1`, then
//! increment the counter to `c+1` (the counter file is fsynced too, so
//! under power loss the durable pin and counter cannot drift apart by
//! more than this one step). Recovery accepts a pin claiming `c` or `c+1`
//! (a crash between pin write and counter bump is legitimate); any stale
//! pin claims `< c` and is rejected as a rollback.
//!
//! # Rotation
//!
//! Cutting a snapshot rotates the log in two phases so that no crash
//! point strands acknowledged writes. [`Wal::rotate_begin`] opens a fresh
//! log for the *upcoming* snapshot generation while **retaining** the old
//! generation's log and its pin segment — until the snapshot is durably
//! renamed, the old log is still the only durable copy of those
//! operations. Once the snapshot is on disk, [`Wal::rotate_commit`]
//! prunes the superseded segments from the pin and only then deletes
//! their log files. A crash (or a failed snapshot writer) anywhere in
//! between leaves a pin listing both generations, and recovery replays
//! whichever pinned generation matches the restored snapshot *plus every
//! later segment* — repeated snapshot failures simply stack more
//! segments, never losing the logged tail.
//!
//! # Group commit
//!
//! Operations buffer in enclave memory and a *commit* turns the whole
//! buffer into one record — one seal, one fsync, one pin update — under a
//! [`DurabilityPolicy`]: every op (`Strict`), every N ops, after a time
//! interval, or only on explicit flush. Policies are evaluated when a
//! write arrives — there is no background timer — so `Interval` bounds
//! the window only under continuous traffic; call
//! [`crate::ShieldStore::flush_wal`] before going idle.
//!
//! # Recovery
//!
//! [`crate::ShieldStore::recover`] restores the latest snapshot, finds
//! its generation among the pinned segments, then replays each segment's
//! log record-by-record, verifying the chain as it goes. Records at or
//! below a segment's pinned sequence must all be present and valid (else
//! [`Error::Rollback`] / [`Error::LogIntegrity`]); past the pin, a torn
//! final record (crash mid-write) is truncated and replay stops cleanly,
//! while a *complete* record with a bad MAC still fails closed. The
//! sealed pin — not the snapshot's own counter — is the freshness root
//! here: any pinned generation's snapshot plus its later segments replays
//! to the same complete state, and a snapshot generation absent from the
//! pin is a rollback.

use std::io::{ErrorKind, Write as _};
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Instant;

use parking_lot::Mutex;
use sgx_sim::counter::PersistentCounter;
use sgx_sim::enclave::Enclave;
use sgx_sim::seal;
use sgx_sim::storage::{OpenMode, StorageFile, StorageFs};
use shield_crypto::cmac::Cmac;
use shield_crypto::constant_time::ct_eq;
use shield_crypto::ctr::AesCtr;

pub use crate::config::DurabilityPolicy;
use crate::error::{Error, Result};
use crate::hist::LatencyHist;

/// Largest accepted record body (`len` field value). Anything bigger is
/// treated as garbage rather than attempted as an allocation.
pub const MAX_RECORD_LEN: usize = 1 << 30;

/// Smallest possible record body: seq (8) + iv (16) + empty ct + mac (16).
const MIN_RECORD_LEN: usize = 8 + 16 + 16;

/// Ops buffered before a commit is forced regardless of policy, bounding
/// enclave memory spent on the buffer.
const BUFFER_CAP: usize = 4096;

/// Domain-separation prefix for the chain's genesis tag.
const GENESIS_DOMAIN: &[u8] = b"shieldstore-wal-genesis-v1";

/// Domain-separation prefix for the rotation authenticator shipped to
/// replicas (see [`crate::repl`]): it binds "generation `g` ends at
/// `(last_seq, last_mac)` and continues as generation `g'`" under the
/// log MAC key, so a tampered replication stream cannot rebase a
/// replica onto a new generation early (silently dropping the old
/// generation's tail).
const ROTATE_DOMAIN: &[u8] = b"shieldstore-wal-rotate-v1";

const PIN_FILE: &str = "wal.pin";
const PIN_TMP: &str = "wal.pin.tmp";
const PIN_CTR: &str = "wal.pin.ctr";

/// Sealed pin plaintext header: pin_ctr (u64), enc_key + mac_key
/// (16 bytes each), segment count (u32).
const PIN_HEADER_LEN: usize = 8 + 16 * 2 + 4;
/// One pinned segment: snap + last_seq (u64 each) + last_mac (16 bytes).
const PIN_SEG_LEN: usize = 8 * 2 + 16;
/// Most log generations a pin may reference at once. Reached only after
/// this many *consecutive failed snapshots*; further rotations fail
/// rather than dropping a segment that still holds the only durable copy
/// of acknowledged writes.
const MAX_SEGMENTS: usize = 32;

pub(crate) fn log_path(dir: &Path, snap: u64) -> PathBuf {
    dir.join(format!("wal-{snap}.log"))
}

/// One logical operation in a WAL record. Only idempotent forms exist:
/// read-modify-write store operations are logged as the value they
/// produced.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WalOp {
    /// Bind `key` to `value` in `tenant`'s namespace.
    Set {
        /// Owning tenant.
        tenant: u32,
        /// Plaintext key.
        key: Vec<u8>,
        /// Plaintext value.
        value: Vec<u8>,
        /// Absolute expiry deadline in ns (0 = no TTL). Logged so
        /// recovery reconstructs deadlines exactly — absolute time needs
        /// no rebasing across a restart.
        expires_at: u64,
    },
    /// Remove `key` from `tenant`'s namespace (replayed as a no-op if
    /// the key is absent). Sweep reaps are logged with this op too.
    Delete {
        /// Owning tenant.
        tenant: u32,
        /// Plaintext key.
        key: Vec<u8>,
    },
}

/// Seals and opens WAL records. Public so integration tests can fuzz the
/// codec directly (see `tests/wal_codec.rs`); the store constructs one
/// from keys drawn from the enclave DRBG and carried in the sealed pin.
pub struct WalCodec {
    enc: AesCtr,
    mac: Cmac,
}

impl WalCodec {
    /// Builds a codec over raw encryption and MAC keys.
    pub fn new(enc_key: &[u8; 16], mac_key: &[u8; 16]) -> Self {
        WalCodec { enc: AesCtr::new(enc_key), mac: Cmac::new(mac_key) }
    }

    /// The chain's genesis tag for snapshot generation `snap` — what the
    /// first record's MAC chains from.
    pub fn genesis(&self, snap: u64) -> [u8; 16] {
        self.mac.compute_parts(&[GENESIS_DOMAIN, &snap.to_le_bytes()])
    }

    /// Authenticator for a generation handover in the replication
    /// stream: binds generation `gen` ending at `(last_seq, last_mac)`
    /// to its successor `next_gen` under the log MAC key. A replica
    /// recomputes this from its *own* verified chain position, so a
    /// tampered stream cannot rebase it early or onto a stale
    /// generation.
    pub fn rotation_tag(
        &self,
        gen: u64,
        last_seq: u64,
        last_mac: &[u8; 16],
        next_gen: u64,
    ) -> [u8; 16] {
        self.mac.compute_parts(&[
            ROTATE_DOMAIN,
            &gen.to_le_bytes(),
            &last_seq.to_le_bytes(),
            last_mac,
            &next_gen.to_le_bytes(),
        ])
    }

    /// Seals `ops` into a framed record (including the `len` prefix).
    /// Returns the frame and the record's MAC, which the next record
    /// chains from.
    pub fn seal_record(
        &self,
        seq: u64,
        prev_mac: &[u8; 16],
        ops: &[WalOp],
        iv: &[u8; 16],
    ) -> (Vec<u8>, [u8; 16]) {
        let mut ct = encode_ops(ops);
        self.enc.apply_keystream(iv, &mut ct);
        let len = (MIN_RECORD_LEN + ct.len()) as u32;
        let mac =
            self.mac.compute_parts(&[prev_mac, &seq.to_le_bytes(), &len.to_le_bytes(), iv, &ct]);
        let mut frame = Vec::with_capacity(4 + len as usize);
        frame.extend_from_slice(&len.to_le_bytes());
        frame.extend_from_slice(&seq.to_le_bytes());
        frame.extend_from_slice(iv);
        frame.extend_from_slice(&ct);
        frame.extend_from_slice(&mac);
        (frame, mac)
    }

    /// Verifies and decrypts one record body (the bytes *after* the `len`
    /// prefix). `expect_seq` is the next sequence number in the chain and
    /// `prev_mac` the previous record's MAC (or the genesis tag). Returns
    /// the decoded ops and this record's MAC. Fails closed with
    /// [`Error::LogIntegrity`] on any mismatch.
    pub fn open_record(
        &self,
        expect_seq: u64,
        prev_mac: &[u8; 16],
        body: &[u8],
    ) -> Result<(Vec<WalOp>, [u8; 16])> {
        let fail = Error::LogIntegrity { seq: expect_seq };
        if body.len() < MIN_RECORD_LEN || body.len() > MAX_RECORD_LEN {
            return Err(fail);
        }
        let len = body.len() as u32;
        let seq = u64::from_le_bytes(body[..8].try_into().unwrap());
        if seq != expect_seq {
            return Err(fail);
        }
        let mut iv = [0u8; 16];
        iv.copy_from_slice(&body[8..24]);
        let ct = &body[24..body.len() - 16];
        let mac: [u8; 16] = body[body.len() - 16..].try_into().unwrap();
        let expect =
            self.mac.compute_parts(&[prev_mac, &seq.to_le_bytes(), &len.to_le_bytes(), &iv, ct]);
        if !ct_eq(&expect, &mac) {
            return Err(fail);
        }
        let mut plain = ct.to_vec();
        self.enc.apply_keystream(&iv, &mut plain);
        let ops = decode_ops(&plain).ok_or(fail)?;
        Ok((ops, mac))
    }
}

/// Payload plaintext: op count (u32) then per op a tag byte (0 = set,
/// 1 = delete), tenant (u32), key length (u32), key bytes, and for sets
/// a value length (u32) plus value bytes and the expiry deadline (u64).
fn encode_ops(ops: &[WalOp]) -> Vec<u8> {
    let mut out = Vec::with_capacity(4 + ops.len() * 24);
    out.extend_from_slice(&(ops.len() as u32).to_le_bytes());
    for op in ops {
        match op {
            WalOp::Set { tenant, key, value, expires_at } => {
                out.push(0);
                out.extend_from_slice(&tenant.to_le_bytes());
                out.extend_from_slice(&(key.len() as u32).to_le_bytes());
                out.extend_from_slice(key);
                out.extend_from_slice(&(value.len() as u32).to_le_bytes());
                out.extend_from_slice(value);
                out.extend_from_slice(&expires_at.to_le_bytes());
            }
            WalOp::Delete { tenant, key } => {
                out.push(1);
                out.extend_from_slice(&tenant.to_le_bytes());
                out.extend_from_slice(&(key.len() as u32).to_le_bytes());
                out.extend_from_slice(key);
            }
        }
    }
    out
}

fn decode_ops(bytes: &[u8]) -> Option<Vec<WalOp>> {
    fn take<'a>(bytes: &'a [u8], off: &mut usize, n: usize) -> Option<&'a [u8]> {
        let s = bytes.get(*off..off.checked_add(n)?)?;
        *off += n;
        Some(s)
    }
    fn take_u32(bytes: &[u8], off: &mut usize) -> Option<usize> {
        let raw = take(bytes, off, 4)?;
        Some(u32::from_le_bytes(raw.try_into().unwrap()) as usize)
    }
    let mut off = 0;
    let count = take_u32(bytes, &mut off)?;
    if count > bytes.len() {
        return None; // every op costs at least one byte
    }
    let mut ops = Vec::with_capacity(count);
    for _ in 0..count {
        let tag = *take(bytes, &mut off, 1)?.first()?;
        let tenant = u32::from_le_bytes(take(bytes, &mut off, 4)?.try_into().unwrap());
        let klen = take_u32(bytes, &mut off)?;
        let key = take(bytes, &mut off, klen)?.to_vec();
        match tag {
            0 => {
                let vlen = take_u32(bytes, &mut off)?;
                let value = take(bytes, &mut off, vlen)?.to_vec();
                let expires_at = u64::from_le_bytes(take(bytes, &mut off, 8)?.try_into().unwrap());
                ops.push(WalOp::Set { tenant, key, value, expires_at });
            }
            1 => ops.push(WalOp::Delete { tenant, key }),
            _ => return None,
        }
    }
    if off != bytes.len() {
        return None; // trailing garbage fails closed
    }
    Some(ops)
}

// ---------------------------------------------------------------------------
// Crash fuse (testing only): counts down at each durability-critical I/O
// boundary and aborts the process when it reaches zero, so the crash-matrix
// harness can kill a real writing process at every interesting point.
// ---------------------------------------------------------------------------

/// Test-only crash injection for the WAL commit path.
#[cfg(any(test, feature = "testing"))]
pub mod crash {
    use std::sync::atomic::{AtomicI64, Ordering};

    pub(super) static FUSE: AtomicI64 = AtomicI64::new(i64::MIN);

    /// Arms the crash fuse: the `n`-th crash point reached after this call
    /// aborts the process (`n >= 1`). The commit path passes five points
    /// per group commit: torn frame write, after full frame write, after
    /// fsync, after pin write, after counter increment.
    pub fn arm(n: i64) {
        FUSE.store(n, Ordering::SeqCst);
    }

    /// Disarms the fuse.
    pub fn disarm() {
        FUSE.store(i64::MIN, Ordering::SeqCst);
    }
}

#[cfg(any(test, feature = "testing"))]
fn fuse_fires() -> bool {
    use std::sync::atomic::Ordering;
    if crash::FUSE.load(Ordering::SeqCst) == i64::MIN {
        return false;
    }
    crash::FUSE.fetch_sub(1, Ordering::SeqCst) == 1
}

#[cfg(not(any(test, feature = "testing")))]
fn fuse_fires() -> bool {
    false
}

// ---------------------------------------------------------------------------
// The WAL proper
// ---------------------------------------------------------------------------

/// One live log generation as recorded in the pin: the snapshot
/// generation it extends, the last committed sequence number, and the
/// MAC the chain ends on. Crate-visible so [`crate::repl`] can read a
/// primary's pin during promotion.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Segment {
    pub(crate) snap: u64,
    pub(crate) last_seq: u64,
    pub(crate) last_mac: [u8; 16],
}

pub(crate) struct Pin {
    pub(crate) pin_ctr: u64,
    pub(crate) enc_key: [u8; 16],
    pub(crate) mac_key: [u8; 16],
    /// Live generations, oldest first; the last one is being appended to.
    pub(crate) segments: Vec<Segment>,
}

impl Pin {
    fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(PIN_HEADER_LEN + self.segments.len() * PIN_SEG_LEN);
        out.extend_from_slice(&self.pin_ctr.to_le_bytes());
        out.extend_from_slice(&self.enc_key);
        out.extend_from_slice(&self.mac_key);
        out.extend_from_slice(&(self.segments.len() as u32).to_le_bytes());
        for seg in &self.segments {
            out.extend_from_slice(&seg.snap.to_le_bytes());
            out.extend_from_slice(&seg.last_seq.to_le_bytes());
            out.extend_from_slice(&seg.last_mac);
        }
        out
    }

    fn decode(bytes: &[u8]) -> Option<Pin> {
        if bytes.len() < PIN_HEADER_LEN {
            return None;
        }
        let u64_at = |i: usize| u64::from_le_bytes(bytes[i..i + 8].try_into().unwrap());
        let arr_at = |i: usize| -> [u8; 16] { bytes[i..i + 16].try_into().unwrap() };
        let nseg = u32::from_le_bytes(bytes[40..44].try_into().unwrap()) as usize;
        if !(1..=MAX_SEGMENTS).contains(&nseg) || bytes.len() != PIN_HEADER_LEN + nseg * PIN_SEG_LEN
        {
            return None;
        }
        let mut segments = Vec::with_capacity(nseg);
        for i in 0..nseg {
            let off = PIN_HEADER_LEN + i * PIN_SEG_LEN;
            segments.push(Segment {
                snap: u64_at(off),
                last_seq: u64_at(off + 8),
                last_mac: arr_at(off + 16),
            });
        }
        Some(Pin { pin_ctr: u64_at(0), enc_key: arr_at(8), mac_key: arr_at(24), segments })
    }
}

/// Replays one pinned segment's log through `apply`, verifying the MAC
/// chain record-by-record from the segment's genesis tag. Returns the
/// sequence number and chain MAC actually reached (≥ the pinned pair
/// when a committed-but-unpinned final record survived the crash). A
/// torn record past the pinned sequence is truncated off the file;
/// anything short of the pin fails closed.
fn replay_segment(
    codec: &WalCodec,
    fs: &dyn StorageFs,
    dir: &Path,
    seg: &Segment,
    apply: &mut dyn FnMut(WalOp) -> Result<()>,
) -> Result<(u64, [u8; 16])> {
    let path = log_path(dir, seg.snap);
    let data = match fs.read(&path) {
        Ok(d) => d,
        Err(e) if e.kind() == ErrorKind::NotFound => {
            if seg.last_seq > 0 {
                return Err(Error::Rollback); // pinned records vanished
            }
            Vec::new()
        }
        Err(e) => return Err(e.into()),
    };
    let mut apply_op = |_seq: u64, ops: Vec<WalOp>| -> Result<()> {
        for op in ops {
            apply(op)?;
        }
        Ok(())
    };
    let (seq, chain, valid_end, torn) = walk_segment(codec, &data, seg, &mut apply_op)?;
    if torn {
        let mut f = fs.open(&path, OpenMode::ReadWrite)?;
        f.set_len(valid_end as u64)?;
        f.sync_data()?;
    }
    Ok((seq, chain))
}

/// Core of segment replay: walks `data` verifying the MAC chain
/// record-by-record from the segment's genesis tag, handing each
/// record's ops to `apply`. Returns the `(seq, chain)` reached, the
/// byte length of the verified prefix, and whether a torn tail was cut
/// off (past the pinned sequence only — anything short of the pin
/// fails closed). Shared by crash recovery (which truncates the file)
/// and replica promotion (which must not touch the primary's files and
/// copies the verified prefix instead).
fn walk_segment(
    codec: &WalCodec,
    data: &[u8],
    seg: &Segment,
    apply: &mut dyn FnMut(u64, Vec<WalOp>) -> Result<()>,
) -> Result<(u64, [u8; 16], usize, bool)> {
    let mut seq = 0u64;
    let mut chain = codec.genesis(seg.snap);
    let mut off = 0usize;
    let mut valid_end = 0usize;
    let mut torn = false;
    while off < data.len() {
        let header = data.len() - off >= 4;
        let len = if header {
            u32::from_le_bytes(data[off..off + 4].try_into().unwrap()) as usize
        } else {
            0
        };
        let plausible = header && (MIN_RECORD_LEN..=MAX_RECORD_LEN).contains(&len);
        let complete = plausible && off + 4 + len <= data.len();
        if !complete {
            // Truncated header, implausible length, or a frame that
            // runs past EOF: within the pinned region that means
            // pinned records are damaged — fail closed. Past the pin
            // it is a torn final append — cut it off and stop.
            if seq < seg.last_seq {
                return Err(Error::Rollback);
            }
            torn = true;
            break;
        }
        let body = &data[off + 4..off + 4 + len];
        let (ops, mac) = codec.open_record(seq + 1, &chain, body)?;
        seq += 1;
        chain = mac;
        if seq == seg.last_seq && !ct_eq(&chain, &seg.last_mac) {
            return Err(Error::LogIntegrity { seq });
        }
        apply(seq, ops)?;
        off += 4 + len;
        valid_end = off;
    }
    if seq < seg.last_seq {
        return Err(Error::Rollback); // log shorter than the pin claims
    }
    Ok((seq, chain, valid_end, torn))
}

/// Verifies one pinned segment's log end-to-end without mutating the
/// file, handing each record (with its sequence number) to `apply`.
/// Returns the `(seq, chain)` reached plus the verified byte prefix of
/// the file — what a promoting replica copies into its own log
/// directory. Fail-closed rules match recovery.
pub(crate) fn verify_segment(
    fs: &dyn StorageFs,
    dir: &Path,
    codec: &WalCodec,
    seg: &Segment,
    apply: &mut dyn FnMut(u64, Vec<WalOp>) -> Result<()>,
) -> Result<(u64, [u8; 16], Vec<u8>)> {
    let data = match fs.read(&log_path(dir, seg.snap)) {
        Ok(d) => d,
        Err(e) if e.kind() == ErrorKind::NotFound => {
            if seg.last_seq > 0 {
                return Err(Error::Rollback); // pinned records vanished
            }
            Vec::new()
        }
        Err(e) => return Err(e.into()),
    };
    let (seq, chain, valid_end, _) = walk_segment(codec, &data, seg, apply)?;
    let mut verified = data;
    verified.truncate(valid_end);
    Ok((seq, chain, verified))
}

/// Reads and unseals the pin in `dir` alongside a *fresh* view of its
/// monotonic counter, performing **no** freshness check — callers
/// apply their own acceptance window (a promoting replica reads once
/// before fencing with the normal `c`/`c + 1` window, and once after,
/// when the counter has deliberately moved two past the pin's claim).
pub(crate) fn read_pin_unchecked(
    enclave: &Arc<Enclave>,
    fs: &Arc<dyn StorageFs>,
    dir: &Path,
) -> Result<(Pin, u64)> {
    let counter = PersistentCounter::open_with(fs.clone(), dir.join(PIN_CTR))?;
    let pcv = counter.read();
    let sealed = match fs.read(&dir.join(PIN_FILE)) {
        Ok(bytes) => bytes,
        Err(e) if e.kind() == ErrorKind::NotFound => return Err(Error::Rollback),
        Err(e) => return Err(e.into()),
    };
    let pin = Pin::decode(&seal::unseal(enclave, &sealed)?)
        .ok_or_else(|| Error::Persistence("write-ahead log pin malformed".into()))?;
    Ok((pin, pcv))
}

/// Reads, unseals, and freshness-checks the pin in `dir` against a
/// fresh view of its monotonic counter, returning the decoded pin and
/// the counter value observed. A pin claiming anything other than `c`
/// or `c + 1` is stale — the directory was rolled back or another
/// promotion already fenced it.
pub(crate) fn read_pin(
    enclave: &Arc<Enclave>,
    fs: &Arc<dyn StorageFs>,
    dir: &Path,
) -> Result<(Pin, u64)> {
    let (pin, pcv) = read_pin_unchecked(enclave, fs, dir)?;
    if pin.pin_ctr != pcv && pin.pin_ctr != pcv + 1 {
        return Err(Error::Rollback);
    }
    Ok((pin, pcv))
}

/// Bumps the monotonic counter in `dir` past any value the pin there
/// can legitimately claim, fencing whatever instance currently owns
/// the directory: its next pin write (hence its next commit) fails
/// closed, and recovery from the directory reports a rollback. Two
/// bumps cover the `c + 1` crash window a live pin may already claim.
pub(crate) fn fence(fs: &Arc<dyn StorageFs>, dir: &Path) -> Result<()> {
    let counter = PersistentCounter::open_with(fs.clone(), dir.join(PIN_CTR))?;
    counter.increment().map_err(|e| Error::Persistence(format!("fencing counter bump: {e}")))?;
    counter.increment().map_err(|e| Error::Persistence(format!("fencing counter bump: {e}")))?;
    Ok(())
}

/// Deletes `wal-*.log` files in `dir` that belong to no live segment —
/// leftovers from segments superseded by the restored snapshot, or from
/// a crash between a pin prune and its file deletions. Best-effort.
fn gc_unreferenced_logs(fs: &dyn StorageFs, dir: &Path, prev: &[Segment], current_snap: u64) {
    let Ok(entries) = fs.list_dir(dir) else {
        return;
    };
    for path in entries {
        let Some(name) = path.file_name().map(|n| n.to_string_lossy().into_owned()) else {
            continue;
        };
        let Some(gen) = name
            .strip_prefix("wal-")
            .and_then(|s| s.strip_suffix(".log"))
            .and_then(|s| s.parse::<u64>().ok())
        else {
            continue;
        };
        if gen != current_snap && !prev.iter().any(|s| s.snap == gen) {
            let _ = fs.remove_file(&path);
        }
    }
}

/// Resumable position inside one segment's scrub walk: the byte offset
/// of the next frame, the last verified sequence number, and the chain
/// MAC it ended on.
#[derive(Debug, Clone, Copy)]
pub(crate) struct ScrubPos {
    pub(crate) offset: usize,
    pub(crate) seq: u64,
    pub(crate) chain: [u8; 16],
}

/// Outcome of one budgeted scrub step over a pinned segment.
#[derive(Debug, Clone, Copy)]
pub(crate) enum ScrubChunk {
    /// Budget exhausted mid-segment; resume from `pos`.
    Progress {
        /// Bytes verified this step.
        bytes: u64,
        /// Where the next step resumes.
        pos: ScrubPos,
    },
    /// The segment verified end-to-end through its pinned `(seq, MAC)`.
    Clean {
        /// Bytes verified this step.
        bytes: u64,
    },
    /// Pinned records are damaged on disk — bit rot, truncation, or a
    /// vanished file.
    Corrupt {
        /// Bytes verified before the damage.
        bytes: u64,
    },
    /// The generation is no longer pinned — rotated away mid-pass.
    Gone,
}

/// Why a WAL writer stopped accepting commits. Distinct from `crashed`
/// (a fencing signal or simulated kill, which also stops *reads* of the
/// log): a poisoned writer keeps serving its durable prefix to readers
/// and replicas — only the durable watermark is frozen.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Poison {
    /// Healthy.
    None,
    /// A scrub pass found a pinned segment damaged on disk. Cleared
    /// when a verified repair swaps the segment back in.
    Corrupt,
    /// A durable write, fsync, rename, or counter bump failed.
    /// Permanent for this writer's lifetime: after a failed fsync the
    /// kernel may have silently dropped the dirty pages, so retrying
    /// and acknowledging would lose data (the "fsyncgate" lesson).
    Storage,
}

/// Routes a durable-I/O result through the fail-closed rule: the first
/// failure storage-poisons the writer and every caller sees
/// [`Error::StorageFailed`] from then on.
fn fail_closed<T>(poison: &mut Poison, r: std::io::Result<T>) -> Result<T> {
    match r {
        Ok(v) => Ok(v),
        Err(_) => {
            *poison = Poison::Storage;
            Err(Error::StorageFailed)
        }
    }
}

struct WalInner {
    dir: PathBuf,
    fs: Arc<dyn StorageFs>,
    enclave: Arc<Enclave>,
    codec: WalCodec,
    enc_key: [u8; 16],
    mac_key: [u8; 16],
    policy: DurabilityPolicy,
    /// Snapshot generation this log extends (the persistent snapshot
    /// counter value at the last rotation; 0 = no snapshot yet).
    snap: u64,
    /// Sequence number of the last committed record.
    seq: u64,
    /// MAC of the last committed record (or the genesis tag).
    last_mac: [u8; 16],
    /// Completed older generations still awaiting [`WalInner::rotate_commit`]
    /// (their snapshot has not been confirmed durable), oldest first.
    prev: Vec<Segment>,
    /// Oldest generation replication still needs ([`u64::MAX`] = no
    /// subscribers): [`WalInner::rotate_commit`] keeps segments at or
    /// above this floor alive even after their snapshot lands, so the
    /// shipped stream stays gapless across rotations.
    retain_floor: u64,
    file: Option<Box<dyn StorageFile>>,
    buffer: Vec<WalOp>,
    /// When the oldest buffered op arrived (drives `Interval`).
    buffered_since: Option<Instant>,
    pin_counter: PersistentCounter,
    bytes: u64,
    records: u64,
    fsyncs: u64,
    group_hist: LatencyHist,
    /// Set by `simulate_crash`: all further WAL traffic errors out, and
    /// `Drop` skips its best-effort flush, so the on-disk state is exactly
    /// what a process kill would leave.
    crashed: bool,
    /// Fail-closed writer state — see [`Poison`].
    poison: Poison,
}

impl WalInner {
    /// Writes and fsyncs the freshness pin claiming counter value
    /// `current + 1`, then increments the counter. The pin file, the
    /// directory rename, and the counter are all fsynced, so even under
    /// power loss the durable pin and counter differ by at most the one
    /// accepted `c`/`c+1` step. See the module docs for why this order is
    /// crash-safe.
    fn write_pin(&mut self) -> Result<()> {
        // Fencing check: a promoting replica claims this directory by
        // bumping the pin counter from outside (see [`crate::repl`]).
        // The counter caches its value in memory, so only a fresh read
        // of the file sees the bump — and once seen, this instance is a
        // fenced stale primary: poison the WAL so every later commit
        // fails closed too, and surface the canonical rollback error.
        if self.pin_counter.verify_persisted().is_err() {
            self.crashed = true;
            return Err(Error::Rollback);
        }
        let mut segments = self.prev.clone();
        segments.push(Segment { snap: self.snap, last_seq: self.seq, last_mac: self.last_mac });
        let pin = Pin {
            pin_ctr: self.pin_counter.read() + 1,
            enc_key: self.enc_key,
            mac_key: self.mac_key,
            segments,
        };
        let sealed = seal::seal(&self.enclave, &pin.encode());
        let tmp = self.dir.join(PIN_TMP);
        {
            let mut f = fail_closed(&mut self.poison, self.fs.open(&tmp, OpenMode::Create))?;
            fail_closed(&mut self.poison, f.write_all(&sealed))?;
            fail_closed(&mut self.poison, f.sync_all())?;
        }
        fail_closed(&mut self.poison, self.fs.rename(&tmp, &self.dir.join(PIN_FILE)))?;
        fail_closed(&mut self.poison, self.fs.sync_dir(&self.dir))?;
        if fuse_fires() {
            std::process::abort(); // after pin write, before counter bump
        }
        if self.pin_counter.increment().is_err() {
            // A failed bump is ambiguous: it may be the fencing signal
            // (another instance moved the shared counter between the
            // check above and now) or a storage fault on the counter
            // file itself. Re-read to tell them apart.
            if self.pin_counter.verify_persisted().is_err() {
                self.crashed = true;
                return Err(Error::Rollback);
            }
            self.poison = Poison::Storage;
            return Err(Error::StorageFailed);
        }
        if fuse_fires() {
            std::process::abort(); // after the full commit sequence
        }
        Ok(())
    }

    /// Seals the whole buffer into one record, appends + fsyncs it, and
    /// advances the pin. One commit = one record = one fsync.
    fn commit(&mut self) -> Result<()> {
        if self.crashed {
            return Err(Error::Persistence("write-ahead log lost to a crash".into()));
        }
        if self.poison != Poison::None {
            return Err(Error::StorageFailed);
        }
        if self.buffer.is_empty() {
            return Ok(());
        }
        let seq = self.seq + 1;
        let iv = self.enclave.read_rand_block();
        let (frame, mac) = self.codec.seal_record(seq, &self.last_mac, &self.buffer, &iv);
        let file = self
            .file
            .as_mut()
            .ok_or_else(|| Error::Persistence("write-ahead log file not open".into()))?;
        if fuse_fires() {
            // Torn-write crash: half the frame reaches disk, modeling the
            // kernel tearing an append across a power cut. The half write
            // and its fsync pass through the same fail-closed rule as a
            // real commit — a storage fault here poisons the writer
            // before the simulated power cut lands, so the crash matrix
            // can compose torn writes with injected faults.
            if file.write_all(&frame[..frame.len() / 2]).and_then(|()| file.sync_data()).is_err() {
                self.poison = Poison::Storage;
            }
            std::process::abort();
        }
        fail_closed(&mut self.poison, file.write_all(&frame))?;
        if fuse_fires() {
            std::process::abort(); // written, not yet fsynced
        }
        fail_closed(&mut self.poison, file.sync_data())?;
        self.fsyncs += 1;
        if fuse_fires() {
            std::process::abort(); // durable, pin not yet advanced
        }
        self.seq = seq;
        self.last_mac = mac;
        self.bytes += frame.len() as u64;
        self.records += 1;
        self.group_hist.record(self.buffer.len() as u64);
        self.buffer.clear();
        self.buffered_since = None;
        self.write_pin()
    }

    /// Whether the policy demands a commit right now.
    fn should_commit(&self) -> bool {
        if self.buffer.len() >= BUFFER_CAP {
            return true;
        }
        match self.policy {
            DurabilityPolicy::None => false,
            DurabilityPolicy::Strict => true,
            DurabilityPolicy::EveryN(n) => self.buffer.len() >= n,
            DurabilityPolicy::Interval(d) => self.buffered_since.is_some_and(|t| t.elapsed() >= d),
        }
    }

    /// Phase one of rotation: commits the buffer into the current
    /// generation (making it complete), then opens a fresh, empty log for
    /// the *upcoming* snapshot generation `snap`. The old generation's
    /// log file and pin segment are **retained** — until the snapshot is
    /// durably on disk they are the only durable copy of those
    /// operations — and are pruned by [`WalInner::rotate_commit`] once
    /// the caller has confirmed the snapshot rename.
    fn rotate_begin(&mut self, snap: u64) -> Result<()> {
        if self.crashed {
            return Err(Error::Persistence("write-ahead log lost to a crash".into()));
        }
        if self.poison != Poison::None {
            return Err(Error::StorageFailed);
        }
        if self.prev.len() + 1 >= MAX_SEGMENTS {
            return Err(Error::Persistence(format!(
                "{} snapshot generations already pending; a snapshot must \
                 succeed before the log can rotate again",
                self.prev.len() + 1
            )));
        }
        self.commit()?;
        self.prev.push(Segment { snap: self.snap, last_seq: self.seq, last_mac: self.last_mac });
        self.snap = snap;
        self.seq = 0;
        self.last_mac = self.codec.genesis(snap);
        let file = fail_closed(
            &mut self.poison,
            self.fs.open(&log_path(&self.dir, snap), OpenMode::Create),
        )?;
        self.file = Some(file);
        self.write_pin()
    }

    /// Phase two of rotation, called once the snapshot of generation
    /// `snap` is durably renamed: drops every pinned segment older than
    /// `snap` (the snapshot supersedes them) and only then deletes their
    /// log files — pin first, so a crash in between leaves orphan files
    /// (garbage-collected on recovery), never a pin referencing missing
    /// logs. Idempotent: a no-op when nothing is pending.
    fn rotate_commit(&mut self, snap: u64) -> Result<()> {
        if self.crashed {
            return Err(Error::Persistence("write-ahead log lost to a crash".into()));
        }
        if self.poison != Poison::None {
            return Err(Error::StorageFailed);
        }
        // Prune only below both the confirmed snapshot and the
        // replication retention floor: a subscriber still mid-stream in
        // an old generation must be able to keep reading it.
        let cut = snap.min(self.retain_floor);
        let obsolete: Vec<Segment> = self.prev.iter().filter(|s| s.snap < cut).copied().collect();
        if obsolete.is_empty() {
            return Ok(());
        }
        self.prev.retain(|s| s.snap >= cut);
        self.write_pin()?;
        for seg in obsolete {
            let _ = self.fs.remove_file(&log_path(&self.dir, seg.snap));
        }
        Ok(())
    }
}

/// The sealed write-ahead log. One per store; all methods are
/// internally locked. See the module docs for the format and the
/// freshness argument.
pub struct Wal {
    inner: Mutex<WalInner>,
}

/// What [`Wal::repl_hello_parts`] hands the subscription path: the
/// `(enc, mac)` log keys, the oldest retained generation, and the
/// durable `(generation, seq)` watermark.
pub(crate) type HelloParts = (([u8; 16], [u8; 16]), u64, (u64, u64));

impl Wal {
    /// Creates a fresh WAL in `dir` for snapshot generation `snap`,
    /// discarding any log files a previous store life left there. Fresh
    /// encryption/MAC keys are drawn from the enclave DRBG and carried in
    /// the sealed pin.
    pub(crate) fn create(
        enclave: Arc<Enclave>,
        fs: Arc<dyn StorageFs>,
        dir: &Path,
        policy: DurabilityPolicy,
        snap: u64,
    ) -> Result<Wal> {
        fs.create_dir_all(dir)?;
        if let Ok(entries) = fs.list_dir(dir) {
            for path in entries {
                let Some(name) = path.file_name().map(|n| n.to_string_lossy().into_owned()) else {
                    continue;
                };
                if name.starts_with("wal-") && name.ends_with(".log") {
                    let _ = fs.remove_file(&path);
                }
            }
        }
        let pin_counter = PersistentCounter::open_with(fs.clone(), dir.join(PIN_CTR))?;
        let mut enc_key = [0u8; 16];
        let mut mac_key = [0u8; 16];
        enclave.read_rand(&mut enc_key);
        enclave.read_rand(&mut mac_key);
        let codec = WalCodec::new(&enc_key, &mac_key);
        let last_mac = codec.genesis(snap);
        let file = fs.open(&log_path(dir, snap), OpenMode::Create)?;
        let mut inner = WalInner {
            dir: dir.to_path_buf(),
            fs,
            enclave,
            codec,
            enc_key,
            mac_key,
            policy,
            snap,
            seq: 0,
            last_mac,
            prev: Vec::new(),
            retain_floor: u64::MAX,
            file: Some(file),
            buffer: Vec::new(),
            buffered_since: None,
            pin_counter,
            bytes: 0,
            records: 0,
            fsyncs: 0,
            group_hist: LatencyHist::default(),
            crashed: false,
            poison: Poison::None,
        };
        inner.write_pin()?;
        Ok(Wal { inner: Mutex::new(inner) })
    }

    /// Whether `dir` holds any WAL state — a pin file, or a pin counter
    /// that has ever moved. When it does, the sealed pin (not the
    /// snapshot's own counter) is the freshness root for recovery.
    pub(crate) fn state_exists(fs: &Arc<dyn StorageFs>, dir: &Path) -> bool {
        if fs.exists(&dir.join(PIN_FILE)) {
            return true;
        }
        match PersistentCounter::open_with(fs.clone(), dir.join(PIN_CTR)) {
            Ok(ctr) => ctr.read() > 0,
            // Unreadable counter: claim state so recovery surfaces the
            // real I/O error instead of silently starting fresh.
            Err(_) => true,
        }
    }

    /// Opens an existing WAL in `dir`, verifies the pin against the
    /// monotonic counter, locates `expected_snap` (the snapshot
    /// generation just restored) among the pinned segments, and replays
    /// that segment's log plus every later segment's through `apply`,
    /// verifying record-by-record. A torn record past a pinned sequence
    /// is truncated and replay stops cleanly; everything else fails
    /// closed. Segments older than the restored generation (their
    /// snapshot superseded them mid-rotation) are dropped and their log
    /// files garbage-collected. Returns the WAL ready for new appends.
    pub(crate) fn recover(
        enclave: Arc<Enclave>,
        fs: Arc<dyn StorageFs>,
        dir: &Path,
        policy: DurabilityPolicy,
        expected_snap: u64,
        apply: &mut dyn FnMut(WalOp) -> Result<()>,
    ) -> Result<Wal> {
        let pin_counter = PersistentCounter::open_with(fs.clone(), dir.join(PIN_CTR))?;
        let pcv = pin_counter.read();
        let sealed = match fs.read(&dir.join(PIN_FILE)) {
            Ok(bytes) => bytes,
            Err(e) if e.kind() == ErrorKind::NotFound => {
                if pcv == 0 {
                    // Never had a WAL here: start one.
                    return Self::create(enclave, fs, dir, policy, expected_snap);
                }
                // The counter moved, so a pin existed once — hiding it is
                // a rollback.
                return Err(Error::Rollback);
            }
            Err(e) => return Err(e.into()),
        };
        let pin = Pin::decode(&seal::unseal(&enclave, &sealed)?)
            .ok_or_else(|| Error::Persistence("write-ahead log pin malformed".into()))?;
        if pin.pin_ctr != pcv && pin.pin_ctr != pcv + 1 {
            // `pcv + 1` is the legitimate crash window between pin write
            // and counter bump; anything older is a replayed stale pin.
            return Err(Error::Rollback);
        }
        // The restored snapshot must be one the pin vouches for; replay
        // starts at its segment and runs through every later one, so any
        // pinned generation reconstructs the same complete state.
        let idx =
            pin.segments.iter().position(|s| s.snap == expected_snap).ok_or(Error::Rollback)?;
        let codec = WalCodec::new(&pin.enc_key, &pin.mac_key);
        let mut replayed = Vec::with_capacity(pin.segments.len() - idx);
        for seg in &pin.segments[idx..] {
            let (seq, chain) = replay_segment(&codec, fs.as_ref(), dir, seg, apply)?;
            replayed.push(Segment { snap: seg.snap, last_seq: seq, last_mac: chain });
        }
        let cur = replayed.pop().expect("at least one segment");
        gc_unreferenced_logs(fs.as_ref(), dir, &replayed, cur.snap);
        let file = fs.open(&log_path(dir, cur.snap), OpenMode::Append)?;
        let mut inner = WalInner {
            dir: dir.to_path_buf(),
            fs,
            enclave,
            codec,
            enc_key: pin.enc_key,
            mac_key: pin.mac_key,
            policy,
            snap: cur.snap,
            seq: cur.last_seq,
            last_mac: cur.last_mac,
            prev: replayed,
            retain_floor: u64::MAX,
            file: Some(file),
            buffer: Vec::new(),
            buffered_since: None,
            pin_counter,
            bytes: 0,
            records: 0,
            fsyncs: 0,
            group_hist: LatencyHist::default(),
            crashed: false,
            poison: Poison::None,
        };
        // Re-pin: drops superseded segments, covers records replayed past
        // a stale-but-acceptable pin, and restores the
        // `pin_ctr == counter` steady state.
        inner.write_pin()?;
        Ok(Wal { inner: Mutex::new(inner) })
    }

    /// Builds a WAL over an existing, fully verified set of segment log
    /// files in `dir` — the promotion path: a replica that has verified
    /// and copied the primary's sealed log adopts it as its own,
    /// continuing the same keys and MAC chain under a pin bound to its
    /// *own* monotonic counter. The last segment becomes the appendable
    /// current generation; the first post-promotion commit chains off
    /// its final MAC, so the log stays verifiable end-to-end across the
    /// handover.
    pub(crate) fn adopt(
        enclave: Arc<Enclave>,
        fs: Arc<dyn StorageFs>,
        dir: &Path,
        policy: DurabilityPolicy,
        enc_key: [u8; 16],
        mac_key: [u8; 16],
        mut segments: Vec<Segment>,
    ) -> Result<Wal> {
        let cur = segments.pop().ok_or_else(|| {
            Error::Persistence("adopting a log requires at least one segment".into())
        })?;
        fs.create_dir_all(dir)?;
        let pin_counter = PersistentCounter::open_with(fs.clone(), dir.join(PIN_CTR))?;
        let codec = WalCodec::new(&enc_key, &mac_key);
        let file = fs.open(&log_path(dir, cur.snap), OpenMode::Append)?;
        let mut inner = WalInner {
            dir: dir.to_path_buf(),
            fs,
            enclave,
            codec,
            enc_key,
            mac_key,
            policy,
            snap: cur.snap,
            seq: cur.last_seq,
            last_mac: cur.last_mac,
            prev: segments,
            retain_floor: u64::MAX,
            file: Some(file),
            buffer: Vec::new(),
            buffered_since: None,
            pin_counter,
            bytes: 0,
            records: 0,
            fsyncs: 0,
            group_hist: LatencyHist::default(),
            crashed: false,
            poison: Poison::None,
        };
        inner.write_pin()?;
        Ok(Wal { inner: Mutex::new(inner) })
    }

    /// Buffers `ops` and commits if the policy demands it. Called with the
    /// owning shard's lock held, so log order matches apply order per key.
    pub(crate) fn log(&self, ops: impl IntoIterator<Item = WalOp>) -> Result<()> {
        let mut inner = self.inner.lock();
        if inner.crashed {
            return Err(Error::Persistence("write-ahead log lost to a crash".into()));
        }
        if inner.poison != Poison::None {
            // A poisoned writer can never make these ops durable;
            // buffering them would let the caller believe they were
            // logged. Refuse up front so the store degrades writes
            // while reads keep serving.
            return Err(Error::StorageFailed);
        }
        let before = inner.buffer.len();
        inner.buffer.extend(ops);
        if before == 0 && !inner.buffer.is_empty() && inner.buffered_since.is_none() {
            inner.buffered_since = Some(Instant::now());
        }
        if inner.should_commit() {
            inner.commit()?;
        }
        Ok(())
    }

    /// Commits everything buffered, whatever the policy, and returns
    /// the durable `(generation, seq)` watermark — the commit point a
    /// client or replica can wait on.
    pub(crate) fn flush(&self) -> Result<(u64, u64)> {
        let mut inner = self.inner.lock();
        inner.commit()?;
        Ok((inner.snap, inner.seq))
    }

    /// The durable `(generation, seq)` watermark: everything at or
    /// below it is fsynced and pinned; buffered-but-uncommitted ops are
    /// *not* covered (the `Interval`/`EveryN` window).
    pub(crate) fn durable_watermark(&self) -> (u64, u64) {
        let inner = self.inner.lock();
        (inner.snap, inner.seq)
    }

    /// The log keys, the oldest retained generation (where a new
    /// subscriber must start), and the durable watermark — everything a
    /// replica needs to begin verifying the stream. Keys leave the
    /// enclave only over the attested session layer.
    pub(crate) fn repl_hello_parts(&self) -> HelloParts {
        let inner = self.inner.lock();
        let oldest = inner.prev.first().map(|s| s.snap).unwrap_or(inner.snap);
        ((inner.enc_key, inner.mac_key), oldest, (inner.snap, inner.seq))
    }

    /// Sets the oldest generation replication still needs;
    /// [`Wal::rotate_commit`] will not prune at or above it. Pass
    /// `u64::MAX` when no subscribers remain.
    pub(crate) fn set_retain_floor(&self, gen: u64) {
        self.inner.lock().retain_floor = gen;
    }

    /// Reads a chunk of the sealed stream for a subscriber positioned
    /// after `(gen, after_seq)`: raw on-disk frames (no decrypt — the
    /// replica verifies and opens them itself), at least one record
    /// when any is due, up to ~`max_bytes`. Only durable records ship;
    /// when the subscriber has drained a finished generation the batch
    /// instead carries an authenticated handover to the next one. A
    /// position the log cannot serve (unknown generation, or claiming
    /// records past the durable watermark) fails closed.
    pub(crate) fn ship_from(
        &self,
        gen: u64,
        after_seq: u64,
        max_bytes: usize,
    ) -> Result<crate::repl::ReplBatch> {
        use crate::repl::{ReplBatch, Watermark};
        let inner = self.inner.lock();
        if inner.crashed {
            return Err(Error::Persistence("write-ahead log lost to a crash".into()));
        }
        // Note: a *poisoned* writer still ships. Its durable prefix is
        // intact and verified — freezing replication too would turn a
        // local disk fault into cluster-wide data loss, when failing
        // over to a caught-up replica is the whole point.
        let mut segments = inner.prev.clone();
        segments.push(Segment { snap: inner.snap, last_seq: inner.seq, last_mac: inner.last_mac });
        let idx = segments.iter().position(|s| s.snap == gen).ok_or(Error::Rollback)?;
        let seg = segments[idx];
        if after_seq > seg.last_seq {
            // The subscriber claims records this log never durably
            // committed — a desynced or forged position.
            return Err(Error::Rollback);
        }
        let durable = Watermark { generation: inner.snap, seq: inner.seq };
        let mut batch = ReplBatch {
            generation: gen,
            start_seq: after_seq + 1,
            count: 0,
            frames: Vec::new(),
            advance_to: None,
            advance_tag: [0; 16],
            durable,
        };
        if after_seq == seg.last_seq {
            if let Some(next) = segments.get(idx + 1) {
                batch.advance_to = Some(next.snap);
                batch.advance_tag =
                    inner.codec.rotation_tag(gen, seg.last_seq, &seg.last_mac, next.snap);
            }
            return Ok(batch);
        }
        let data = inner.fs.read(&log_path(&inner.dir, gen))?;
        let mut off = 0usize;
        let mut seq = 0u64;
        while off < data.len() && seq < seg.last_seq {
            if data.len() - off < 4 {
                return Err(Error::Rollback); // durable frame torn on disk
            }
            let len = u32::from_le_bytes(data[off..off + 4].try_into().unwrap()) as usize;
            if !(MIN_RECORD_LEN..=MAX_RECORD_LEN).contains(&len) || off + 4 + len > data.len() {
                return Err(Error::Rollback);
            }
            seq += 1;
            if seq > after_seq {
                if !batch.frames.is_empty() && batch.frames.len() + 4 + len > max_bytes {
                    break;
                }
                batch.frames.extend_from_slice(&data[off..off + 4 + len]);
                batch.count += 1;
            }
            off += 4 + len;
        }
        if batch.count == 0 {
            // Records below the durable watermark are due but the file
            // ended before yielding a single one: durable frames are
            // missing from disk.
            return Err(Error::Rollback);
        }
        // The shipped range never exceeds the durable watermark: frames
        // are capped at the segment's committed `last_seq`, and the
        // current generation's `last_seq` *is* the watermark. This is
        // the Interval-durability caveat, enforced by construction.
        debug_assert!(
            Watermark { generation: gen, seq: after_seq + u64::from(batch.count) } <= durable
        );
        Ok(batch)
    }

    /// Phase one of rotation: commits the buffer and starts a fresh log
    /// for the upcoming snapshot generation `snap`, retaining the old
    /// generation until [`Wal::rotate_commit`] confirms the snapshot is
    /// durable.
    pub(crate) fn rotate_begin(&self, snap: u64) -> Result<()> {
        self.inner.lock().rotate_begin(snap)
    }

    /// Phase two of rotation: the snapshot of generation `snap` is
    /// durably on disk, so generations older than it are pruned from the
    /// pin and their log files deleted. Idempotent.
    pub(crate) fn rotate_commit(&self, snap: u64) -> Result<()> {
        self.inner.lock().rotate_commit(snap)
    }

    /// Returns `(bytes, records, fsyncs, group-size histogram)` from one
    /// lock acquisition, so `group_hist.count() == records` holds
    /// atomically for [`crate::StatsSnapshot::check_consistent`].
    pub(crate) fn gauges(&self) -> (u64, u64, u64, LatencyHist) {
        let inner = self.inner.lock();
        (inner.bytes, inner.records, inner.fsyncs, inner.group_hist)
    }

    /// True once the writer is poisoned — a storage fault or
    /// scrub-detected corruption froze the durable watermark. Reads and
    /// replication keep serving the verified durable prefix.
    pub(crate) fn storage_failed(&self) -> bool {
        self.inner.lock().poison != Poison::None
    }

    /// Corrupt-poisons the writer after a scrub pass found a pinned
    /// segment damaged on disk: commits fail closed until a verified
    /// repair swaps the segment back in. Storage poisoning (permanent)
    /// is never downgraded.
    pub(crate) fn quarantine_corrupt(&self) {
        let mut inner = self.inner.lock();
        if inner.poison == Poison::None {
            inner.poison = Poison::Corrupt;
        }
    }

    /// Re-reads, unseals, and freshness-checks the sealed pin from disk
    /// — the scrubber's check that the freshness root itself has not
    /// rotted. Returns `(ok, bytes_read)`; never mutates anything.
    pub(crate) fn scrub_pin(&self) -> (bool, u64) {
        let inner = self.inner.lock();
        let Ok(sealed) = inner.fs.read(&inner.dir.join(PIN_FILE)) else {
            return (false, 0);
        };
        let bytes = sealed.len() as u64;
        let Ok(plain) = seal::unseal(&inner.enclave, &sealed) else {
            return (false, bytes);
        };
        let Some(pin) = Pin::decode(&plain) else {
            return (false, bytes);
        };
        let pcv = inner.pin_counter.read();
        (pin.pin_ctr == pcv || pin.pin_ctr == pcv + 1, bytes)
    }

    /// Rewrites the sealed pin from in-enclave state — the scrubber's
    /// self-repair for a rotted pin file. No peer is needed: unlike log
    /// frames, the pin's full content lives in enclave memory, so a
    /// fresh seal + atomic replace restores it (and advances the
    /// counter by the normal commit protocol).
    pub(crate) fn rewrite_pin(&self) -> Result<()> {
        let mut inner = self.inner.lock();
        if inner.crashed {
            return Err(Error::Persistence("write-ahead log lost to a crash".into()));
        }
        if inner.poison == Poison::Storage {
            return Err(Error::StorageFailed);
        }
        inner.write_pin()
    }

    /// The pinned segment list, oldest first, the appendable current
    /// generation last — the scrubber's work list.
    pub(crate) fn segments(&self) -> Vec<Segment> {
        let inner = self.inner.lock();
        let mut segs = inner.prev.clone();
        segs.push(Segment { snap: inner.snap, last_seq: inner.seq, last_mac: inner.last_mac });
        segs
    }

    /// Verifies up to ~`budget` bytes of pinned segment `gen`'s sealed
    /// chain, resuming from `pos` (`None` = the generation's genesis
    /// tag). Read-only: bytes past the pinned sequence are ignored
    /// (recovery's torn-tail rule owns those), and damage to pinned
    /// records reports [`ScrubChunk::Corrupt`] without touching the
    /// file — the caller quarantines and, with an attested peer,
    /// repairs. The chain may grow between chunks; a saved position
    /// stays a valid verified prefix because the log is append-only.
    pub(crate) fn scrub_chunk(
        &self,
        gen: u64,
        pos: Option<ScrubPos>,
        budget: usize,
    ) -> Result<ScrubChunk> {
        let inner = self.inner.lock();
        let seg = if inner.snap == gen {
            Segment { snap: gen, last_seq: inner.seq, last_mac: inner.last_mac }
        } else {
            match inner.prev.iter().find(|s| s.snap == gen) {
                Some(s) => *s,
                None => return Ok(ScrubChunk::Gone),
            }
        };
        let mut pos =
            pos.unwrap_or(ScrubPos { offset: 0, seq: 0, chain: inner.codec.genesis(gen) });
        if pos.seq >= seg.last_seq {
            return Ok(ScrubChunk::Clean { bytes: 0 });
        }
        let data = match inner.fs.read(&log_path(&inner.dir, gen)) {
            Ok(d) => d,
            Err(e) if e.kind() == ErrorKind::NotFound => {
                return Ok(ScrubChunk::Corrupt { bytes: 0 }); // pinned records vanished
            }
            Err(e) => return Err(e.into()),
        };
        let start = pos.offset;
        loop {
            let done = (pos.offset - start) as u64;
            if data.len() < pos.offset + 4 {
                return Ok(ScrubChunk::Corrupt { bytes: done });
            }
            let len =
                u32::from_le_bytes(data[pos.offset..pos.offset + 4].try_into().unwrap()) as usize;
            if !(MIN_RECORD_LEN..=MAX_RECORD_LEN).contains(&len)
                || pos.offset + 4 + len > data.len()
            {
                return Ok(ScrubChunk::Corrupt { bytes: done });
            }
            let body = &data[pos.offset + 4..pos.offset + 4 + len];
            let Ok((_ops, mac)) = inner.codec.open_record(pos.seq + 1, &pos.chain, body) else {
                return Ok(ScrubChunk::Corrupt { bytes: done });
            };
            pos.seq += 1;
            pos.chain = mac;
            pos.offset += 4 + len;
            let done = (pos.offset - start) as u64;
            if pos.seq == seg.last_seq {
                if !ct_eq(&pos.chain, &seg.last_mac) {
                    return Ok(ScrubChunk::Corrupt { bytes: done });
                }
                return Ok(ScrubChunk::Clean { bytes: done });
            }
            if pos.offset - start >= budget {
                return Ok(ScrubChunk::Progress { bytes: done, pos });
            }
        }
    }

    /// Replaces pinned segment `gen`'s on-disk file with `frames`
    /// fetched from an attested peer, after verifying that the frames
    /// walk the sealed chain from the generation's genesis tag to
    /// *exactly* the pinned `(last_seq, last_mac)` with no torn tail
    /// and no trailing bytes. The swap-in is atomic (tmp file + fsync +
    /// rename + directory fsync). Repairing the current generation
    /// reopens the append handle on the repaired file and clears
    /// Corrupt poisoning; Storage poisoning is never cleared.
    pub(crate) fn repair_segment(&self, gen: u64, frames: &[u8]) -> Result<()> {
        let inner = &mut *self.inner.lock();
        if inner.crashed {
            return Err(Error::Persistence("write-ahead log lost to a crash".into()));
        }
        let current = inner.snap == gen;
        let seg = if current {
            Segment { snap: gen, last_seq: inner.seq, last_mac: inner.last_mac }
        } else {
            *inner.prev.iter().find(|s| s.snap == gen).ok_or(Error::Rollback)?
        };
        let mut nop = |_seq: u64, _ops: Vec<WalOp>| Ok(());
        let (seq, chain, valid_end, torn) = walk_segment(&inner.codec, frames, &seg, &mut nop)?;
        if torn || seq != seg.last_seq || valid_end != frames.len() || !ct_eq(&chain, &seg.last_mac)
        {
            // The peer shipped less, more, or other than the pinned
            // chain — swapping it in would silently move the durable
            // watermark.
            return Err(Error::LogIntegrity { seq });
        }
        let path = log_path(&inner.dir, gen);
        let tmp = path.with_extension("repair");
        {
            let mut f = fail_closed(&mut inner.poison, inner.fs.open(&tmp, OpenMode::Create))?;
            fail_closed(&mut inner.poison, f.write_all(frames))?;
            fail_closed(&mut inner.poison, f.sync_all())?;
        }
        fail_closed(&mut inner.poison, inner.fs.rename(&tmp, &path))?;
        fail_closed(&mut inner.poison, inner.fs.sync_dir(&inner.dir))?;
        if current {
            // The append handle may still reference the damaged inode;
            // future commits must extend the repaired file.
            let file = fail_closed(&mut inner.poison, inner.fs.open(&path, OpenMode::Append))?;
            inner.file = Some(file);
        }
        if inner.poison == Poison::Corrupt {
            // One repaired segment clears the quarantine; if *another*
            // segment is also damaged the next scrub pass re-detects it
            // and re-poisons before any commit could chain onto it.
            inner.poison = Poison::None;
        }
        Ok(())
    }

    /// Drops the buffer and file handle and poisons the WAL, leaving the
    /// on-disk state exactly as a process kill would. Testing only — the
    /// adversary harness uses this for in-process crash/recover cycles.
    #[cfg(any(test, feature = "testing"))]
    pub fn simulate_crash(&self) {
        let mut inner = self.inner.lock();
        inner.buffer.clear();
        inner.buffered_since = None;
        inner.file = None;
        inner.crashed = true;
    }
}

impl Drop for Wal {
    fn drop(&mut self) {
        let inner = self.inner.get_mut();
        if !inner.crashed && inner.poison == Poison::None {
            let _ = inner.commit(); // best-effort durability on clean exit
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sgx_sim::enclave::EnclaveBuilder;
    use sgx_sim::storage::{FaultFs, FaultKind, FaultOp, FaultSpec, RealFs};
    use std::fs;

    fn tmpdir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("ss-wal-{}-{name}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn enclave(seed: u64) -> Arc<Enclave> {
        EnclaveBuilder::new("wal-test").seed(seed).epc_bytes(8 << 20).build()
    }

    fn set(k: &str, v: &str) -> WalOp {
        WalOp::Set {
            tenant: 0,
            key: k.as_bytes().to_vec(),
            value: v.as_bytes().to_vec(),
            expires_at: 0,
        }
    }

    fn replay_all(enclave: &Arc<Enclave>, dir: &Path, snap: u64) -> Result<Vec<WalOp>> {
        let mut ops = Vec::new();
        let wal = Wal::recover(
            enclave.clone(),
            RealFs::shared(),
            dir,
            DurabilityPolicy::None,
            snap,
            &mut |op| {
                ops.push(op);
                Ok(())
            },
        )?;
        drop(wal);
        Ok(ops)
    }

    #[test]
    fn codec_roundtrip_and_chaining() {
        let codec = WalCodec::new(&[1; 16], &[2; 16]);
        let g = codec.genesis(0);
        let ops1 = vec![set("a", "1"), WalOp::Delete { tenant: 0, key: b"b".to_vec() }];
        let (f1, m1) = codec.seal_record(1, &g, &ops1, &[3; 16]);
        let (got, m1b) = codec.open_record(1, &g, &f1[4..]).unwrap();
        assert_eq!(got, ops1);
        assert_eq!(m1, m1b);
        // Record 2 chains off record 1's MAC; opening it against genesis
        // (splice to front) fails.
        let (f2, _) = codec.seal_record(2, &m1, &[set("c", "3")], &[4; 16]);
        assert!(codec.open_record(2, &m1, &f2[4..]).is_ok());
        assert_eq!(codec.open_record(2, &g, &f2[4..]), Err(Error::LogIntegrity { seq: 2 }));
        // Wrong sequence number fails even with the right chain.
        assert_eq!(codec.open_record(3, &m1, &f2[4..]), Err(Error::LogIntegrity { seq: 3 }));
    }

    #[test]
    fn log_flush_recover_roundtrip() {
        let dir = tmpdir("roundtrip");
        let enc = enclave(7);
        let wal =
            Wal::create(enc.clone(), RealFs::shared(), &dir, DurabilityPolicy::None, 0).unwrap();
        wal.log([set("k1", "v1"), set("k2", "v2")]).unwrap();
        wal.flush().unwrap();
        wal.log([WalOp::Delete { tenant: 0, key: b"k1".to_vec() }]).unwrap();
        drop(wal); // Drop commits the tail

        let ops = replay_all(&enc, &dir, 0).unwrap();
        assert_eq!(
            ops,
            vec![
                set("k1", "v1"),
                set("k2", "v2"),
                WalOp::Delete { tenant: 0, key: b"k1".to_vec() }
            ]
        );
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn strict_policy_commits_each_op() {
        let dir = tmpdir("strict");
        let enc = enclave(8);
        let wal =
            Wal::create(enc.clone(), RealFs::shared(), &dir, DurabilityPolicy::Strict, 0).unwrap();
        wal.log([set("a", "1")]).unwrap();
        wal.log([set("b", "2")]).unwrap();
        let (bytes, records, fsyncs, hist) = wal.gauges();
        assert!(bytes > 0);
        assert_eq!(records, 2);
        assert_eq!(fsyncs, 2);
        assert_eq!(hist.count(), 2);
        // A simulated crash loses nothing under Strict.
        wal.simulate_crash();
        drop(wal);
        assert_eq!(replay_all(&enc, &dir, 0).unwrap().len(), 2);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn every_n_groups_commits() {
        let dir = tmpdir("everyn");
        let enc = enclave(9);
        let wal = Wal::create(enc.clone(), RealFs::shared(), &dir, DurabilityPolicy::EveryN(3), 0)
            .unwrap();
        for i in 0..7 {
            wal.log([set(&format!("k{i}"), "v")]).unwrap();
        }
        let (_, records, fsyncs, hist) = wal.gauges();
        assert_eq!(records, 2); // two full groups of 3; one op buffered
        assert_eq!(fsyncs, 2);
        assert_eq!(hist.count(), 2);
        wal.simulate_crash(); // the 7th op was never fsynced
        drop(wal);
        assert_eq!(replay_all(&enc, &dir, 0).unwrap().len(), 6);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn interval_policy_commits_once_window_elapses() {
        let dir = tmpdir("interval");
        let enc = enclave(15);
        let wal = Wal::create(
            enc.clone(),
            RealFs::shared(),
            &dir,
            DurabilityPolicy::Interval(std::time::Duration::from_secs(3600)),
            0,
        )
        .unwrap();
        wal.log([set("a", "1")]).unwrap();
        assert_eq!(wal.gauges().1, 0, "window has not elapsed");
        // A zero window commits on the very next write.
        wal.inner.lock().policy = DurabilityPolicy::Interval(std::time::Duration::ZERO);
        wal.log([set("b", "2")]).unwrap();
        let (_, records, _, hist) = wal.gauges();
        assert_eq!(records, 1);
        assert_eq!(hist.count(), 1);
        assert_eq!(hist.max_ns(), 2, "both ops rode one group commit");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_tail_truncated_cleanly() {
        let dir = tmpdir("torn");
        let enc = enclave(10);
        let wal =
            Wal::create(enc.clone(), RealFs::shared(), &dir, DurabilityPolicy::Strict, 0).unwrap();
        wal.log([set("a", "1")]).unwrap();
        wal.log([set("b", "2")]).unwrap();
        wal.simulate_crash();
        drop(wal);
        // Tear the last record mid-frame, then write a stale pin? No —
        // tear only: the pin still claims seq 2, so losing record 2 must
        // fail closed...
        let path = log_path(&dir, 0);
        let full = fs::read(&path).unwrap();
        fs::write(&path, &full[..full.len() - 7]).unwrap();
        assert_eq!(replay_all(&enc, &dir, 0), Err(Error::Rollback));

        // But a torn record *past* the pin (never acknowledged as
        // durable) is clean-stopped: restore the log, then append junk
        // that looks like a partial frame.
        fs::write(&path, &full).unwrap();
        // Re-pin at seq 2 by recovering once (also proves recovery of the
        // intact log), then tear a hand-appended record.
        assert_eq!(replay_all(&enc, &dir, 0).unwrap().len(), 2);
        let mut data = fs::read(&path).unwrap();
        data.extend_from_slice(&[0x55; 11]); // garbage partial header/frame
        fs::write(&path, &data).unwrap();
        let ops = replay_all(&enc, &dir, 0).unwrap();
        assert_eq!(ops.len(), 2);
        // The torn bytes were truncated away.
        assert_eq!(fs::read(&path).unwrap(), full);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn bitflip_fails_closed() {
        let dir = tmpdir("bitflip");
        let enc = enclave(11);
        let wal =
            Wal::create(enc.clone(), RealFs::shared(), &dir, DurabilityPolicy::Strict, 0).unwrap();
        wal.log([set("a", "payload-payload")]).unwrap();
        wal.simulate_crash();
        drop(wal);
        let path = log_path(&dir, 0);
        let clean = fs::read(&path).unwrap();
        for i in 0..clean.len() {
            let mut bad = clean.clone();
            bad[i] ^= 0x01;
            fs::write(&path, &bad).unwrap();
            assert!(replay_all(&enc, &dir, 0).is_err(), "byte {i} flip must fail closed");
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn stale_log_and_pin_rejected() {
        let dir = tmpdir("stale");
        let enc = enclave(12);
        let wal =
            Wal::create(enc.clone(), RealFs::shared(), &dir, DurabilityPolicy::Strict, 0).unwrap();
        wal.log([set("a", "1")]).unwrap();
        // Capture a stale pin+log pair...
        let old_pin = fs::read(dir.join(PIN_FILE)).unwrap();
        let old_log = fs::read(log_path(&dir, 0)).unwrap();
        wal.log([set("b", "2")]).unwrap();
        wal.simulate_crash();
        drop(wal);
        // ...and replay them after the counter moved on.
        fs::write(dir.join(PIN_FILE), &old_pin).unwrap();
        fs::write(log_path(&dir, 0), &old_log).unwrap();
        assert_eq!(replay_all(&enc, &dir, 0), Err(Error::Rollback));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn rotation_truncates_and_rebases_chain() {
        let dir = tmpdir("rotate");
        let enc = enclave(13);
        let wal =
            Wal::create(enc.clone(), RealFs::shared(), &dir, DurabilityPolicy::Strict, 0).unwrap();
        wal.log([set("a", "1")]).unwrap();
        wal.rotate_begin(5).unwrap();
        // Old generation survives until the snapshot is confirmed.
        assert!(log_path(&dir, 0).exists());
        wal.rotate_commit(5).unwrap();
        assert!(!log_path(&dir, 0).exists());
        wal.log([set("b", "2")]).unwrap();
        drop(wal);
        // The old generation is gone; recovery against the new snapshot id
        // replays only post-rotation ops.
        let ops = replay_all(&enc, &dir, 5).unwrap();
        assert_eq!(ops, vec![set("b", "2")]);
        // Recovering against the wrong generation is a rollback.
        assert_eq!(replay_all(&enc, &dir, 0), Err(Error::Rollback));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn crash_between_rotate_begin_and_commit_loses_nothing() {
        let dir = tmpdir("rotate-window");
        let enc = enclave(16);
        let wal =
            Wal::create(enc.clone(), RealFs::shared(), &dir, DurabilityPolicy::Strict, 0).unwrap();
        wal.log([set("a", "1")]).unwrap();
        wal.rotate_begin(5).unwrap();
        // Ops after rotate_begin land in the new generation's log.
        wal.log([set("b", "2")]).unwrap();
        wal.simulate_crash();
        drop(wal);
        // The snapshot never materialized: recovery from the *old*
        // generation must replay both segments, in order.
        let ops = replay_all(&enc, &dir, 0).unwrap();
        assert_eq!(ops, vec![set("a", "1"), set("b", "2")]);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn crash_after_snapshot_durable_before_rotate_commit() {
        let dir = tmpdir("rotate-commit-window");
        let enc = enclave(17);
        let wal =
            Wal::create(enc.clone(), RealFs::shared(), &dir, DurabilityPolicy::Strict, 0).unwrap();
        wal.log([set("a", "1")]).unwrap();
        wal.rotate_begin(5).unwrap();
        wal.log([set("b", "2")]).unwrap();
        wal.simulate_crash();
        drop(wal);
        // The snapshot (generation 5) made it to disk but rotate_commit
        // never ran: recovery against generation 5 replays only the new
        // tail, drops the stale segment, and garbage-collects its log.
        let ops = replay_all(&enc, &dir, 5).unwrap();
        assert_eq!(ops, vec![set("b", "2")]);
        assert!(!log_path(&dir, 0).exists(), "superseded log not collected");
        // The dropped segment is no longer a valid recovery root.
        assert_eq!(replay_all(&enc, &dir, 0), Err(Error::Rollback));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn repeated_failed_snapshots_stack_segments() {
        let dir = tmpdir("rotate-stack");
        let enc = enclave(18);
        let wal =
            Wal::create(enc.clone(), RealFs::shared(), &dir, DurabilityPolicy::Strict, 0).unwrap();
        wal.log([set("a", "1")]).unwrap();
        wal.rotate_begin(3).unwrap(); // snapshot 3 fails
        wal.log([set("b", "2")]).unwrap();
        wal.rotate_begin(4).unwrap(); // snapshot 4 fails too
        wal.log([set("c", "3")]).unwrap();
        wal.simulate_crash();
        drop(wal);
        // All three generations chain into one recovery from the root.
        let ops = replay_all(&enc, &dir, 0).unwrap();
        assert_eq!(ops, vec![set("a", "1"), set("b", "2"), set("c", "3")]);
        // A mid-chain generation is also a valid root (its snapshot may
        // have been the one that landed): replay from there forward.
        let ops = replay_all(&enc, &dir, 3).unwrap();
        assert_eq!(ops, vec![set("b", "2"), set("c", "3")]);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn hidden_pin_rejected_once_counter_moved() {
        let dir = tmpdir("hidden");
        let enc = enclave(14);
        let wal =
            Wal::create(enc.clone(), RealFs::shared(), &dir, DurabilityPolicy::Strict, 0).unwrap();
        wal.log([set("a", "1")]).unwrap();
        wal.simulate_crash();
        drop(wal);
        fs::remove_file(dir.join(PIN_FILE)).unwrap();
        fs::remove_file(log_path(&dir, 0)).unwrap();
        assert_eq!(replay_all(&enc, &dir, 0), Err(Error::Rollback));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn failed_fsync_poisons_writer_permanently() {
        let dir = tmpdir("fsync-poison");
        let enc = enclave(20);
        let ffs = std::sync::Arc::new(FaultFs::new());
        let fs: Arc<dyn StorageFs> = ffs.clone();
        let wal = Wal::create(enc.clone(), fs, &dir, DurabilityPolicy::Strict, 0).unwrap();
        wal.log([set("a", "1")]).unwrap();
        assert_eq!(wal.durable_watermark(), (0, 1));

        // The next fsync on the log file lies.
        ffs.inject(FaultSpec::first(FaultOp::SyncData, "wal-0.log", FaultKind::SyncFail));
        assert_eq!(wal.log([set("b", "2")]), Err(Error::StorageFailed));
        assert_eq!(ffs.injected(), 1);
        assert!(wal.storage_failed());
        assert_eq!(wal.durable_watermark(), (0, 1), "watermark frozen at the failure");

        // The fault fired once and is disarmed, but the writer must NOT
        // retry the fsync: every later commit fails closed too.
        assert_eq!(wal.log([set("c", "3")]), Err(Error::StorageFailed));
        assert!(wal.flush().is_err());
        assert_eq!(wal.rotate_begin(5), Err(Error::StorageFailed));
        let (_, records, fsyncs, _) = wal.gauges();
        assert_eq!((records, fsyncs), (1, 1), "no durable progress after the poison");

        // Replication still serves the verified durable prefix.
        let batch = wal.ship_from(0, 0, 1 << 20).unwrap();
        assert_eq!(batch.count, 1);
        drop(wal); // Drop must not attempt a commit on a poisoned writer

        // Recovery sees a verified prefix that covers everything acked.
        // The un-acked record rides along here because only the fsync
        // lied, not the write — it is gone under power loss (see
        // power_cut_after_lost_sync_recovers_acked_prefix), and the
        // watermark never promised it either way.
        assert_eq!(replay_all(&enc, &dir, 0).unwrap(), vec![set("a", "1"), set("b", "2")]);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn enospc_mid_commit_leaves_verified_prefix() {
        let dir = tmpdir("enospc");
        let enc = enclave(21);
        let ffs = std::sync::Arc::new(FaultFs::new());
        let fs: Arc<dyn StorageFs> = ffs.clone();
        let wal = Wal::create(enc.clone(), fs, &dir, DurabilityPolicy::EveryN(2), 0).unwrap();
        wal.log([set("a", "1"), set("b", "2")]).unwrap(); // group 1 commits
        ffs.inject(FaultSpec::first(FaultOp::Write, "wal-0.log", FaultKind::Enospc));
        // Group 2 hits a full disk mid-append: a half-written frame is
        // on disk, so the writer must poison (appending more would
        // corrupt the chain).
        assert_eq!(wal.log([set("c", "3"), set("d", "4")]), Err(Error::StorageFailed));
        assert_eq!(wal.durable_watermark(), (0, 1));
        drop(wal);
        // Recovery truncates the torn half-frame and lands on the
        // genuine prefix: exactly the two acked ops.
        assert_eq!(replay_all(&enc, &dir, 0).unwrap(), vec![set("a", "1"), set("b", "2")]);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn failed_pin_rename_poisons_writer() {
        let dir = tmpdir("pin-rename");
        let enc = enclave(22);
        let ffs = std::sync::Arc::new(FaultFs::new());
        let fs: Arc<dyn StorageFs> = ffs.clone();
        let wal = Wal::create(enc.clone(), fs, &dir, DurabilityPolicy::Strict, 0).unwrap();
        wal.log([set("a", "1")]).unwrap();
        ffs.inject(FaultSpec::first(FaultOp::Rename, "wal.pin", FaultKind::Eio));
        assert_eq!(wal.log([set("b", "2")]), Err(Error::StorageFailed));
        assert!(wal.storage_failed());
        drop(wal);
        // Record 2 hit the log but its pin never landed; replay accepts
        // the committed-but-unpinned record (same as a crash there).
        let ops = replay_all(&enc, &dir, 0).unwrap();
        assert!(!ops.is_empty() && ops[0] == set("a", "1"));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn scrub_walks_chain_within_budget() {
        let dir = tmpdir("scrub");
        let enc = enclave(23);
        let wal =
            Wal::create(enc.clone(), RealFs::shared(), &dir, DurabilityPolicy::Strict, 0).unwrap();
        for i in 0..8 {
            wal.log([set(&format!("k{i}"), "payload-payload-payload")]).unwrap();
        }
        // A tiny budget takes several chunks; the sum covers the file.
        let file_len = fs::read(log_path(&dir, 0)).unwrap().len() as u64;
        let mut pos = None;
        let mut total = 0;
        let mut steps = 0;
        loop {
            match wal.scrub_chunk(0, pos, 64).unwrap() {
                ScrubChunk::Progress { bytes, pos: p } => {
                    total += bytes;
                    pos = Some(p);
                    steps += 1;
                }
                ScrubChunk::Clean { bytes } => {
                    total += bytes;
                    break;
                }
                other => panic!("unexpected {other:?}"),
            }
        }
        assert!(steps > 1, "budget must actually chunk the walk");
        assert_eq!(total, file_len, "every pinned byte verified");
        // An unpinned generation reports Gone.
        assert!(matches!(wal.scrub_chunk(9, None, 64).unwrap(), ScrubChunk::Gone));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn scrub_detects_bitrot_and_repair_restores() {
        let dir = tmpdir("scrub-repair");
        let enc = enclave(24);
        let wal =
            Wal::create(enc.clone(), RealFs::shared(), &dir, DurabilityPolicy::Strict, 0).unwrap();
        for i in 0..4 {
            wal.log([set(&format!("k{i}"), "vvvv")]).unwrap();
        }
        let path = log_path(&dir, 0);
        let clean = fs::read(&path).unwrap();

        // Rot a byte in the middle of the pinned region.
        let mut bad = clean.clone();
        bad[clean.len() / 2] ^= 0x40;
        fs::write(&path, &bad).unwrap();
        assert!(matches!(
            wal.scrub_chunk(0, None, usize::MAX).unwrap(),
            ScrubChunk::Corrupt { .. }
        ));
        wal.quarantine_corrupt();
        assert!(wal.storage_failed());
        assert_eq!(wal.log([set("x", "y")]), Err(Error::StorageFailed));

        // A repair shipping anything but the exact pinned chain fails.
        assert!(wal.repair_segment(0, &clean[..clean.len() - 1]).is_err());
        assert!(wal.repair_segment(0, &bad).is_err());
        // The genuine frames verify, swap in, and clear the quarantine.
        wal.repair_segment(0, &clean).unwrap();
        assert!(matches!(wal.scrub_chunk(0, None, usize::MAX).unwrap(), ScrubChunk::Clean { .. }));
        assert!(!wal.storage_failed());
        // The writer appends onto the repaired file again.
        wal.log([set("k4", "vvvv")]).unwrap();
        drop(wal);
        assert_eq!(replay_all(&enc, &dir, 0).unwrap().len(), 5);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn power_cut_after_lost_sync_recovers_acked_prefix() {
        let dir = tmpdir("power-cut");
        let enc = enclave(25);
        let ffs = std::sync::Arc::new(FaultFs::new());
        let fs: Arc<dyn StorageFs> = ffs.clone();
        let wal = Wal::create(enc.clone(), fs, &dir, DurabilityPolicy::Strict, 0).unwrap();
        wal.log([set("a", "1")]).unwrap();
        // The second commit's log fsync silently lies, poisoning the
        // writer; then the machine loses power, dropping every page the
        // lying fsync claimed to persist.
        ffs.inject(FaultSpec::first(FaultOp::SyncData, "wal-0.log", FaultKind::SyncFail));
        assert_eq!(wal.log([set("b", "2")]), Err(Error::StorageFailed));
        drop(wal);
        ffs.power_cut().unwrap();
        // Only the acked write survives — and recovery agrees.
        assert_eq!(replay_all(&enc, &dir, 0).unwrap(), vec![set("a", "1")]);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn decode_ops_rejects_malformed() {
        assert_eq!(decode_ops(&[]), None);
        assert_eq!(decode_ops(&1u32.to_le_bytes()), None); // count without body
        let mut huge = Vec::new();
        huge.extend_from_slice(&u32::MAX.to_le_bytes());
        assert_eq!(decode_ops(&huge), None);
        let empty = encode_ops(&[]);
        assert_eq!(decode_ops(&empty), Some(Vec::new()));
        let mut trailing = encode_ops(&[]);
        trailing.push(0);
        assert_eq!(decode_ops(&trailing), None);
    }
}
