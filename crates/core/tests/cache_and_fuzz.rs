//! Property tests for the enclave cache (LRU model equivalence) and
//! fuzz-shaped robustness tests for the snapshot parser.

use proptest::collection::vec as pvec;
use proptest::prelude::*;
use sgx_sim::counter::PersistentCounter;
use sgx_sim::enclave::EnclaveBuilder;
use shieldstore::cache::EnclaveCache;
use shieldstore::{Config, ShieldStore};
use std::collections::HashMap;

/// A reference LRU with the same byte-budget semantics as
/// [`EnclaveCache`].
struct ModelLru {
    capacity: usize,
    used: usize,
    /// Most-recent last.
    order: Vec<Vec<u8>>,
    map: HashMap<Vec<u8>, Vec<u8>>,
}

impl ModelLru {
    fn new(capacity: usize) -> Self {
        Self { capacity, used: 0, order: Vec::new(), map: HashMap::new() }
    }

    fn touch(&mut self, key: &[u8]) {
        if let Some(pos) = self.order.iter().position(|k| k == key) {
            let k = self.order.remove(pos);
            self.order.push(k);
        }
    }

    fn get(&mut self, key: &[u8]) -> Option<Vec<u8>> {
        let v = self.map.get(key).cloned();
        if v.is_some() {
            self.touch(key);
        }
        v
    }

    fn put(&mut self, key: &[u8], value: &[u8]) {
        if value.len() > self.capacity {
            self.remove(key);
            return;
        }
        if let Some(old) = self.map.insert(key.to_vec(), value.to_vec()) {
            self.used = self.used - old.len() + value.len();
            self.touch(key);
        } else {
            self.order.push(key.to_vec());
            self.used += value.len();
        }
        while self.used > self.capacity {
            let victim = self.order.remove(0);
            let gone = self.map.remove(&victim).expect("victim present");
            self.used -= gone.len();
        }
    }

    fn remove(&mut self, key: &[u8]) {
        if let Some(old) = self.map.remove(key) {
            self.used -= old.len();
            let pos = self.order.iter().position(|k| k == key).expect("ordered");
            self.order.remove(pos);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, .. ProptestConfig::default() })]

    /// The enclave cache behaves exactly like the reference LRU under
    /// arbitrary get/put/remove sequences.
    #[test]
    fn cache_matches_model_lru(
        capacity in 8usize..128,
        ops in pvec((0u8..3, 0u8..6, pvec(any::<u8>(), 0..40)), 1..150),
    ) {
        let enclave = EnclaveBuilder::new("cache-prop").epc_bytes(1 << 20).build();
        let mut cache = EnclaveCache::new(enclave, capacity);
        let mut model = ModelLru::new(capacity);
        for (op, key_id, value) in ops {
            let key = vec![b'k', key_id];
            match op {
                0 => {
                    prop_assert_eq!(cache.get(&key), model.get(&key));
                }
                1 => {
                    cache.put(&key, &value);
                    model.put(&key, &value);
                }
                _ => {
                    cache.remove(&key);
                    model.remove(&key);
                }
            }
            prop_assert_eq!(cache.used_bytes(), model.used, "byte accounting diverged");
            prop_assert_eq!(cache.len(), model.map.len());
        }
    }

    /// Arbitrary bytes fed to the snapshot parser produce errors, never
    /// panics or bogus stores.
    #[test]
    fn restore_rejects_arbitrary_bytes(bytes in pvec(any::<u8>(), 0..400)) {
        let dir = std::env::temp_dir().join(format!("ss-fuzz-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("fuzz.db");
        std::fs::write(&path, &bytes).unwrap();
        let counter = PersistentCounter::open(dir.join("ctr")).unwrap();
        let enclave = EnclaveBuilder::new("fuzz").epc_bytes(1 << 20).build();
        let result = ShieldStore::restore(
            enclave,
            Config::shield_opt().buckets(16).mac_hashes(4),
            &path,
            &counter,
        );
        prop_assert!(result.is_err(), "random bytes must never restore");
    }

    /// Truncating a genuine snapshot anywhere produces an error, never a
    /// partial store.
    #[test]
    fn restore_rejects_truncation(cut_frac in 0.0f64..1.0) {
        let dir = std::env::temp_dir().join(format!("ss-trunc-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let snap = dir.join("t.db");
        let ctr_path = dir.join("ctr");
        let _ = std::fs::remove_file(&ctr_path);
        let counter = PersistentCounter::open(&ctr_path).unwrap();
        let cfg = || Config::shield_opt().buckets(16).mac_hashes(4);

        let enclave = EnclaveBuilder::new("trunc").epc_bytes(1 << 20).seed(3).build();
        let store = ShieldStore::new(enclave, cfg()).unwrap();
        for i in 0..20u32 {
            store.set(format!("k{i}").as_bytes(), b"some value").unwrap();
        }
        store.snapshot_blocking(&snap, &counter).unwrap();

        let full = std::fs::read(&snap).unwrap();
        let cut = ((full.len() - 1) as f64 * cut_frac) as usize;
        std::fs::write(&snap, &full[..cut]).unwrap();

        let enclave = EnclaveBuilder::new("trunc").epc_bytes(1 << 20).seed(3).build();
        let result = ShieldStore::restore(enclave, cfg(), &snap, &counter);
        prop_assert!(result.is_err(), "truncated snapshot must never restore (cut {cut})");
    }
}
