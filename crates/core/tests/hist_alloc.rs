//! Proves histogram recording is allocation-free after construction.
//!
//! Installs a counting global allocator and asserts that `record`,
//! `merge`, and `quantile` perform zero heap allocations. This test
//! lives in its own integration-test binary so no sibling test thread
//! can allocate concurrently and pollute the counter.

use shieldstore::hist::{LatencyHist, OpHists, OpTimer};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

struct CountingAlloc;

// SAFETY: delegates every operation to the system allocator unchanged;
// the only addition is a relaxed counter bump.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

#[test]
fn recording_is_allocation_free() {
    // The allocation counter is process-global, and the libtest harness
    // thread may allocate (output buffering, timers) while the counted
    // section runs — a scheduling race, not a histogram allocation. The
    // property under test is per-invocation, so retry a few times and
    // fail only if *every* attempt observes allocations.
    let mut observed = u64::MAX;
    for _ in 0..5 {
        // Construct everything (and warm up lazy runtime state) first.
        let mut hist = LatencyHist::new();
        let mut other = LatencyHist::new();
        let mut ops = OpHists::default();
        let timer = OpTimer::start();
        hist.record(timer.elapsed_ns());

        let before = ALLOCATIONS.load(Ordering::SeqCst);
        for i in 0..10_000u64 {
            hist.record(i.wrapping_mul(0x9e37_79b9_7f4a_7c15));
            other.record(i);
        }
        hist.merge(&other);
        ops.get.merge(&hist);
        ops.batch.record(OpTimer::start().elapsed_ns());
        let q = hist.p50().max(hist.p95()).max(hist.p99()).max(hist.max_ns());
        let after = ALLOCATIONS.load(Ordering::SeqCst);

        assert!(q > 0, "quantiles over 20k samples must be nonzero");
        assert!(hist.count() >= 20_000);
        observed = observed.min(after - before);
        if observed == 0 {
            break;
        }
    }
    assert_eq!(observed, 0, "record/merge/quantile allocated {observed} time(s) in every attempt");
}
