//! Property tests for the latency histogram: merge algebra, quantile
//! monotonicity, and bucket containment hold for arbitrary sample sets.

use proptest::collection::vec as pvec;
use proptest::prelude::*;
use shieldstore::hist::{LatencyHist, NUM_BUCKETS};

fn hist_of(samples: &[u64]) -> LatencyHist {
    let mut h = LatencyHist::new();
    for &s in samples {
        h.record(s);
    }
    h
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 256, .. ProptestConfig::default() })]

    /// Every recorded sample lands in a bucket whose bounds contain it.
    #[test]
    fn samples_land_in_their_bucket(sample in any::<u64>()) {
        let i = LatencyHist::bucket_index(sample);
        let (lo, hi) = LatencyHist::bucket_bounds(i);
        prop_assert!(lo <= sample && sample <= hi, "{sample} outside bucket {i} [{lo}, {hi}]");
    }

    /// Bucket bounds tile the u64 range: contiguous and non-overlapping.
    #[test]
    fn buckets_tile_contiguously(i in 0usize..NUM_BUCKETS - 1) {
        let (_, hi) = LatencyHist::bucket_bounds(i);
        let (next_lo, _) = LatencyHist::bucket_bounds(i + 1);
        prop_assert_eq!(hi + 1, next_lo);
    }

    /// Merge is commutative: a+b == b+a.
    #[test]
    fn merge_commutative(
        a in pvec(any::<u64>(), 0..64),
        b in pvec(any::<u64>(), 0..64),
    ) {
        let (ha, hb) = (hist_of(&a), hist_of(&b));
        let mut ab = ha;
        ab.merge(&hb);
        let mut ba = hb;
        ba.merge(&ha);
        prop_assert_eq!(ab, ba);
    }

    /// Merge is associative: (a+b)+c == a+(b+c).
    #[test]
    fn merge_associative(
        a in pvec(any::<u64>(), 0..48),
        b in pvec(any::<u64>(), 0..48),
        c in pvec(any::<u64>(), 0..48),
    ) {
        let (ha, hb, hc) = (hist_of(&a), hist_of(&b), hist_of(&c));
        let mut left = ha;
        left.merge(&hb);
        left.merge(&hc);
        let mut bc = hb;
        bc.merge(&hc);
        let mut right = ha;
        right.merge(&bc);
        prop_assert_eq!(left, right);
    }

    /// Merging equals recording the concatenated sample stream.
    #[test]
    fn merge_equals_concatenation(
        a in pvec(any::<u64>(), 0..64),
        b in pvec(any::<u64>(), 0..64),
    ) {
        let mut merged = hist_of(&a);
        merged.merge(&hist_of(&b));
        let concat: Vec<u64> = a.iter().chain(b.iter()).copied().collect();
        prop_assert_eq!(merged, hist_of(&concat));
    }

    /// Quantiles are monotone non-decreasing in p, bounded by max, and
    /// quantile(1.0) is exactly the recorded maximum.
    #[test]
    fn quantiles_monotone(samples in pvec(any::<u64>(), 1..128), ps in pvec(0.0f64..1.0, 2..16)) {
        let h = hist_of(&samples);
        let mut ps = ps;
        ps.sort_by(|x, y| x.partial_cmp(y).expect("no NaN"));
        let mut prev = 0u64;
        for &p in &ps {
            let q = h.quantile(p);
            prop_assert!(q >= prev, "quantile({p}) = {q} < previous {prev}");
            prop_assert!(q <= h.max_ns());
            prev = q;
        }
        prop_assert_eq!(h.quantile(1.0), h.max_ns());
        prop_assert_eq!(h.quantile(1.0), *samples.iter().max().expect("non-empty"));
    }

    /// The quantile estimate is bucket-accurate: for each p, the true
    /// rank-th smallest sample shares a bucket with (or equals) the
    /// estimate.
    #[test]
    fn quantile_is_bucket_accurate(samples in pvec(any::<u64>(), 1..64), p in 0.0f64..1.0) {
        let h = hist_of(&samples);
        let mut sorted = samples.clone();
        sorted.sort_unstable();
        let rank = ((p * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
        let exact = sorted[rank - 1];
        let estimate = h.quantile(p);
        let (lo, hi) = LatencyHist::bucket_bounds(LatencyHist::bucket_index(exact));
        prop_assert!(
            (lo <= estimate && estimate <= hi) || estimate == h.max_ns(),
            "estimate {estimate} not in exact value's bucket [{lo}, {hi}]"
        );
    }

    /// Roundtrip through the raw serialized parts reconstructs the
    /// histogram exactly.
    #[test]
    fn from_raw_roundtrip(samples in pvec(any::<u64>(), 0..96)) {
        let h = hist_of(&samples);
        let rebuilt = LatencyHist::from_raw(*h.buckets(), h.sum_ns(), h.max_ns())
            .expect("self-encoded parts are consistent");
        prop_assert_eq!(rebuilt, h);
    }

    /// diff() recovers exactly the samples recorded after the earlier
    /// snapshot was taken.
    #[test]
    fn diff_recovers_suffix(
        before in pvec(any::<u64>(), 0..64),
        after in pvec(any::<u64>(), 0..64),
    ) {
        let earlier = hist_of(&before);
        let mut later = earlier;
        for &s in &after {
            later.record(s);
        }
        let d = later.diff(&earlier);
        prop_assert_eq!(d.count(), after.len() as u64);
        let expected = hist_of(&after);
        prop_assert_eq!(d.buckets(), expected.buckets());
    }

    /// Count always equals the bucket total and the number of records.
    #[test]
    fn count_matches_buckets(samples in pvec(any::<u64>(), 0..128)) {
        let h = hist_of(&samples);
        prop_assert_eq!(h.count(), samples.len() as u64);
        prop_assert_eq!(h.buckets().iter().sum::<u64>(), h.count());
    }
}
