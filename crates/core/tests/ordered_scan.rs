//! Tests for the ordered-index extension (range/prefix scans): the
//! paper's stated future work, implemented with an enclave-resident key
//! index.

use sgx_sim::counter::PersistentCounter;
use sgx_sim::enclave::EnclaveBuilder;
use shieldstore::testing::{EntryField, TamperOp};
use shieldstore::{Config, Error, ShieldStore};
use std::sync::Arc;

fn indexed_store(seed: u64) -> Arc<ShieldStore> {
    let enclave = EnclaveBuilder::new("ordered").epc_bytes(4 << 20).seed(seed).build();
    Arc::new(
        ShieldStore::new(
            enclave,
            Config::shield_opt().buckets(256).mac_hashes(64).with_shards(3).with_ordered_index(),
        )
        .unwrap(),
    )
}

#[test]
fn scans_disabled_without_index() {
    let enclave = EnclaveBuilder::new("noindex").epc_bytes(2 << 20).build();
    let store = ShieldStore::new(enclave, Config::shield_opt().buckets(64).mac_hashes(16)).unwrap();
    store.set(b"a", b"1").unwrap();
    assert!(matches!(store.scan_range(b"a", b"z", 10), Err(Error::IndexDisabled)));
    assert!(matches!(store.scan_prefix(b"a", 10), Err(Error::IndexDisabled)));
    assert_eq!(store.index_bytes(), 0);
}

#[test]
fn range_scan_ordered_across_shards() {
    let store = indexed_store(1);
    // Insert out of order; shard routing scatters them.
    for i in [50u32, 10, 40, 20, 30, 5, 60] {
        store.set(format!("item:{i:04}").as_bytes(), format!("v{i}").as_bytes()).unwrap();
    }
    let got = store.scan_range(b"item:0010", b"item:0050", 100).unwrap();
    let keys: Vec<String> =
        got.iter().map(|(k, _)| String::from_utf8_lossy(k).into_owned()).collect();
    assert_eq!(keys, ["item:0010", "item:0020", "item:0030", "item:0040"]);
    assert_eq!(got[0].1, b"v10");

    // Limit truncates in key order.
    let limited = store.scan_range(b"item:0000", b"item:9999", 3).unwrap();
    assert_eq!(limited.len(), 3);
    assert_eq!(limited[0].0, b"item:0005");
    assert_eq!(limited[2].0, b"item:0020");
}

#[test]
fn prefix_scan_across_shards() {
    let store = indexed_store(2);
    for i in 0..20u32 {
        store.set(format!("user:{i:03}").as_bytes(), b"u").unwrap();
        store.set(format!("post:{i:03}").as_bytes(), b"p").unwrap();
    }
    let users = store.scan_prefix(b"user:", 100).unwrap();
    assert_eq!(users.len(), 20);
    assert!(users.windows(2).all(|w| w[0].0 < w[1].0), "results must be sorted");
    assert!(users.iter().all(|(k, v)| k.starts_with(b"user:") && v == b"u"));
}

#[test]
fn index_follows_deletes_and_updates() {
    let store = indexed_store(3);
    store.set(b"k1", b"a").unwrap();
    store.set(b"k2", b"b").unwrap();
    store.set(b"k1", b"a2").unwrap(); // update: still one index entry
    assert_eq!(store.scan_prefix(b"k", 10).unwrap().len(), 2);
    store.delete(b"k1").unwrap();
    let rest = store.scan_prefix(b"k", 10).unwrap();
    assert_eq!(rest.len(), 1);
    assert_eq!(rest[0].0, b"k2");
}

#[test]
fn index_bytes_grow_and_shrink() {
    let store = indexed_store(4);
    assert_eq!(store.index_bytes(), 0);
    for i in 0..100u32 {
        store.set(format!("key-{i:04}").as_bytes(), b"v").unwrap();
    }
    let full = store.index_bytes();
    assert!(full > 100 * 8, "index accounting must reflect 100 keys: {full}");
    for i in 0..50u32 {
        store.delete(format!("key-{i:04}").as_bytes()).unwrap();
    }
    assert!(store.index_bytes() < full);
}

#[test]
fn scan_values_are_verified_reads() {
    // Tampering with a value makes the scan fail, not return garbage.
    let store = indexed_store(5);
    for i in 0..10u32 {
        store.set(format!("t{i}").as_bytes(), b"payload").unwrap();
    }
    assert!(store.tamper(TamperOp::Field(EntryField::Any), 12345));
    let result = store.scan_prefix(b"t", 100);
    match result {
        Err(Error::IntegrityViolation { .. }) => {}
        Ok(entries) => {
            // The tampered shard may not intersect the scan if detection
            // caught a different bucket first; but values returned must
            // be genuine.
            for (_, v) in entries {
                assert_eq!(v, b"payload");
            }
        }
        Err(e) => panic!("unexpected error: {e}"),
    }
}

#[test]
fn index_survives_snapshot_restore() {
    let dir = std::env::temp_dir().join(format!("ss-ordered-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let snap = dir.join("snap.db");
    let ctr_path = dir.join("ctr");
    let _ = std::fs::remove_file(&ctr_path);
    let counter = PersistentCounter::open(&ctr_path).unwrap();

    let config =
        || Config::shield_opt().buckets(256).mac_hashes(64).with_shards(3).with_ordered_index();
    {
        let enclave = EnclaveBuilder::new("ordered-snap").epc_bytes(4 << 20).seed(9).build();
        let store = ShieldStore::new(enclave, config()).unwrap();
        for i in 0..50u32 {
            store.set(format!("snap:{i:03}").as_bytes(), b"v").unwrap();
        }
        store.snapshot_blocking(&snap, &counter).unwrap();
    }
    let enclave = EnclaveBuilder::new("ordered-snap").epc_bytes(4 << 20).seed(9).build();
    let restored = ShieldStore::restore(enclave, config(), &snap, &counter).unwrap();
    let got = restored.scan_range(b"snap:010", b"snap:020", 100).unwrap();
    assert_eq!(got.len(), 10);
    assert!(restored.index_bytes() > 0);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn scans_work_during_snapshot_window() {
    let dir = std::env::temp_dir().join(format!("ss-ordered-win-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let counter = PersistentCounter::open(dir.join("ctr")).unwrap();

    let store = indexed_store(6);
    for i in 0..30u32 {
        store.set(format!("w{i:03}").as_bytes(), b"before").unwrap();
    }
    let job = store.snapshot_background(dir.join("s.db"), &counter).unwrap();
    store.set(b"w999", b"during").unwrap();
    store.delete(b"w000").unwrap();
    let got = store.scan_prefix(b"w", 100).unwrap();
    assert_eq!(got.len(), 30, "29 originals + the in-window insert");
    assert!(got.iter().any(|(k, _)| k == b"w999"));
    assert!(!got.iter().any(|(k, _)| k == b"w000"));
    job.finish().unwrap();
    assert_eq!(store.scan_prefix(b"w", 100).unwrap().len(), 30);
    std::fs::remove_dir_all(&dir).ok();
}
