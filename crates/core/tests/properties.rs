//! Property-based tests for ShieldStore's internal data structures: the
//! untrusted heap, MAC chains, the entry codec, and bucket-set mapping.

use proptest::collection::vec as pvec;
use proptest::prelude::*;
use sgx_sim::enclave::EnclaveBuilder;
use shield_crypto::cmac::Cmac;
use shield_crypto::ctr::AesCtr;
use shieldstore::alloc::{UntrustedHeap, NULL_HANDLE};
use shieldstore::config::AllocMode;
use shieldstore::entry;
use shieldstore::integrity::BucketSets;
use shieldstore::mac_bucket;

fn heap() -> UntrustedHeap {
    UntrustedHeap::new(
        EnclaveBuilder::new("core-prop").build(),
        AllocMode::Pooled { granularity: 1 << 20 },
    )
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 96, .. ProptestConfig::default() })]

    /// Live heap allocations never alias: each keeps its own contents
    /// across arbitrary alloc/free interleavings.
    #[test]
    fn heap_no_aliasing(ops in pvec((any::<u8>(), 1usize..300), 1..80)) {
        let mut h = heap();
        let mut live: Vec<(u64, Vec<u8>)> = Vec::new();
        for (i, &(tag, len)) in ops.iter().enumerate() {
            if tag % 3 != 0 || live.is_empty() {
                let handle = h.alloc(len);
                prop_assert_ne!(handle, NULL_HANDLE);
                let fill = vec![tag ^ (i as u8); len];
                h.bytes_mut(handle, len).copy_from_slice(&fill);
                live.push((handle, fill));
            } else {
                let idx = (tag as usize) % live.len();
                let (handle, data) = live.swap_remove(idx);
                prop_assert_eq!(h.bytes(handle, data.len()), &data[..]);
                h.free(handle, data.len());
            }
            for (handle, data) in &live {
                prop_assert_eq!(h.bytes(*handle, data.len()), &data[..]);
            }
        }
    }

    /// Freshly allocated memory is always zeroed, even after recycling.
    #[test]
    fn heap_alloc_zeroed(len in 1usize..500, rounds in 1usize..8) {
        let mut h = heap();
        for _ in 0..rounds {
            let a = h.alloc(len);
            prop_assert!(h.bytes(a, len).iter().all(|&b| b == 0));
            h.bytes_mut(a, len).fill(0xff);
            h.free(a, len);
        }
    }

    /// The MAC chain mirrors a reference vector under arbitrary
    /// insert-front / insert-back / set / remove sequences, for any
    /// node capacity.
    #[test]
    fn mac_chain_mirrors_vec(
        capacity in 1usize..8,
        ops in pvec((0u8..4, any::<u8>(), any::<prop::sample::Index>()), 1..120),
    ) {
        let mut h = heap();
        let mut head = NULL_HANDLE;
        let mut reference: Vec<[u8; 16]> = Vec::new();
        for &(op, fill, ref idx) in &ops {
            let mac = [fill; 16];
            match op {
                0 => {
                    mac_bucket::insert_front(&mut h, &mut head, &mac, capacity);
                    reference.insert(0, mac);
                }
                1 => {
                    mac_bucket::insert_back(&mut h, &mut head, &mac, capacity);
                    reference.push(mac);
                }
                2 if !reference.is_empty() => {
                    let at = idx.index(reference.len());
                    mac_bucket::set_at(&mut h, head, at, &mac);
                    reference[at] = mac;
                }
                3 if !reference.is_empty() => {
                    let at = idx.index(reference.len());
                    mac_bucket::remove_at(&mut h, &mut head, at, capacity);
                    reference.remove(at);
                }
                _ => continue,
            }
            let mut out = Vec::new();
            mac_bucket::gather(&h, head, &mut out);
            let got: Vec<[u8; 16]> = out.chunks(16).map(|c| c.try_into().unwrap()).collect();
            prop_assert_eq!(&got, &reference);
            prop_assert_eq!(mac_bucket::len(&h, head), reference.len());
            for (i, want) in reference.iter().enumerate() {
                prop_assert_eq!(&mac_bucket::get_at(&h, head, i), want);
            }
        }
    }

    /// Entry encode/parse/decrypt/verify roundtrips for arbitrary keys,
    /// values, hints and IVs.
    #[test]
    fn entry_codec_roundtrip(
        key in pvec(any::<u8>(), 1..64),
        value in pvec(any::<u8>(), 0..256),
        hint in any::<u8>(),
        tenant in any::<u32>(),
        expires_at in any::<u64>(),
        iv in any::<[u8; 16]>(),
        next in any::<u64>(),
        enc_key in any::<[u8; 16]>(),
        mac_key in any::<[u8; 16]>(),
    ) {
        let enc = AesCtr::new(&enc_key);
        let mac = Cmac::new(&mac_key);
        let mut buf = vec![0u8; entry::HEADER_LEN + key.len() + value.len()];
        entry::encode_into(&mut buf, next, hint, tenant, expires_at, &iv, &key, &value, &enc, &mac);

        let header = entry::parse_header(&buf);
        prop_assert_eq!(header.next, next);
        prop_assert_eq!(header.hint, hint);
        prop_assert_eq!(header.tenant, tenant);
        prop_assert_eq!(header.expires_at, expires_at);
        prop_assert_eq!(header.entry_len(), buf.len());
        let ct = &buf[entry::HEADER_LEN..];
        prop_assert!(entry::verify_mac(&mac, &header, ct));
        let (k, v) = entry::decrypt_entry(&enc, &header, ct);
        prop_assert_eq!(k.clone(), key.clone());
        prop_assert_eq!(v, value);
        prop_assert_eq!(entry::decrypt_key(&enc, &header, ct), key);
    }

    /// Bucket sets partition the bucket range: every bucket belongs to
    /// exactly one set, and the set ranges tile [0, buckets) in order.
    #[test]
    fn bucket_sets_partition(buckets in 1usize..5000, hashes in 1usize..5000) {
        let bs = BucketSets::new(buckets, hashes);
        let mut covered = 0usize;
        for set in 0..bs.num_sets() {
            let range = bs.buckets_of(set);
            prop_assert_eq!(range.start, covered);
            prop_assert!(range.end > range.start);
            for b in range.clone() {
                prop_assert_eq!(bs.set_of(b), set);
            }
            covered = range.end;
        }
        prop_assert_eq!(covered, buckets);
        prop_assert!(bs.num_sets() <= hashes.min(buckets).max(1));
    }
}
