//! Property-based tests for the replication stream: a replica replaying
//! a primary's sealed log must fail closed — without desyncing its MAC
//! chain — under every single-byte corruption, every truncation,
//! reordered or replayed batches, and stale-generation streams. The
//! stream crosses an attested session, but the records themselves come
//! off untrusted disk, so the replica trusts nothing it cannot verify
//! against its own chain position.

use proptest::prelude::*;
use sgx_sim::counter::PersistentCounter;
use sgx_sim::enclave::{Enclave, EnclaveBuilder};
use shieldstore::{Config, DurabilityPolicy, ReplBatch, Replica, ShieldStore, Watermark};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

static SCRATCH_SEQ: AtomicU64 = AtomicU64::new(0);

fn scratch(tag: &str) -> PathBuf {
    let n = SCRATCH_SEQ.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!("ss-repl-stream-{tag}-{}-{n}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn enclave(seed: u64) -> Arc<Enclave> {
    EnclaveBuilder::new("repl-stream").seed(seed).epc_bytes(8 << 20).build()
}

fn config() -> Config {
    Config::shield_opt()
        .buckets(64)
        .mac_hashes(16)
        .with_shards(2)
        .with_durability(DurabilityPolicy::Strict)
}

/// A primary with `n` durable records `r0..r{n-1}`.
fn primary(dir: &PathBuf, n: usize, fill: u8) -> Arc<ShieldStore> {
    let store = Arc::new(ShieldStore::new(enclave(1), config()).unwrap());
    store.attach_wal(dir).unwrap();
    for i in 0..n {
        store.set(format!("r{i}").as_bytes(), &[fill; 24]).unwrap();
    }
    store
}

/// A fresh, empty replica subscribed via `hello`.
fn fresh_replica(hello: &shieldstore::ReplHello, seed: u64) -> (Arc<ShieldStore>, Replica) {
    let store = Arc::new(ShieldStore::new(enclave(seed), config()).unwrap());
    let replica = Replica::new(Arc::clone(&store), hello).unwrap();
    (store, replica)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

    /// Every single-byte corruption of an encoded batch either fails to
    /// decode, fails to apply (with the replica's chain position
    /// unmoved), or — for unauthenticated metadata bytes such as the
    /// durable watermark, which can only *widen* what the replica is
    /// willing to apply — applies exactly the genuine record. No
    /// corruption ever yields wrong data or desyncs the chain: the
    /// genuine batch still applies afterwards from the same position.
    /// A single-record batch makes the sweep exhaustive — there is no
    /// verified prefix to legitimately apply (see
    /// `corrupted_tail_applies_only_verified_prefix` for multi-record
    /// batches).
    #[test]
    fn every_byte_corruption_fails_closed(mask_raw in 1u32..256, fill in any::<u8>()) {
        let mask = mask_raw as u8;
        let dir = scratch("corrupt");
        let store = primary(&dir, 1, fill);
        let hello = store.repl_subscribe().unwrap();
        let genuine = store.repl_batch(0, 0, 1 << 20).unwrap();
        let encoded = genuine.encode();
        let (mut rstore, mut replica) = fresh_replica(&hello, 2);
        let mut seed = 3u64;

        for pos in 0..encoded.len() {
            let mut bytes = encoded.clone();
            bytes[pos] ^= mask;
            let Some(batch) = ReplBatch::decode(&bytes) else {
                continue; // fail closed at decode
            };
            // Whether the batch is rejected outright or fails after the
            // genuine record (count widened, advance flag flipped), the
            // chain only ever sits on a verified genuine prefix.
            let applied = replica.apply_batch(&batch).is_ok();
            let wm = replica.watermark();
            prop_assert_eq!(wm.generation, 0);
            prop_assert!(wm.seq <= 1, "chain moved past the genuine stream");
            if applied {
                prop_assert_eq!(wm.seq, 1, "Ok must mean the record applied");
            }
            if wm.seq == 1 {
                // The only record that can apply is the genuine one.
                prop_assert_eq!(rstore.get(b"r0").unwrap(), vec![fill; 24]);
                // This replica consumed the stream; continue the sweep
                // on a fresh one.
                let (s, r) = fresh_replica(&hello, seed);
                seed += 1;
                rstore = s;
                replica = r;
            }
        }

        // No corrupted batch desynced the survivor: the genuine stream
        // still applies cleanly from its position.
        prop_assert_eq!(replica.apply_batch(&genuine).unwrap(), Watermark::new(0, 1));
        prop_assert_eq!(rstore.get(b"r0").unwrap(), vec![fill; 24]);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    /// Corrupting the stream's tail loses nothing that verified: the
    /// replica applies the intact prefix, stops at the first record
    /// that fails its chain, and resumes cleanly from exactly that
    /// position once the genuine tail arrives.
    #[test]
    fn corrupted_tail_applies_only_verified_prefix(
        n in 2usize..6,
        fill in any::<u8>(),
        mask_raw in 1u32..256,
    ) {
        let dir = scratch("prefix");
        let store = primary(&dir, n, fill);
        let hello = store.repl_subscribe().unwrap();
        let genuine = store.repl_batch(0, 0, 1 << 20).unwrap();
        // The last record's frame is everything past the first n-1
        // single-record polls.
        let prefix_len: usize =
            (0..n - 1).map(|i| store.repl_batch(0, i as u64, 1).unwrap().frames.len()).sum();

        let mut corrupted = genuine.clone();
        // Corrupt the last frame's final byte (its MAC): the prefix
        // stays intact, the tail record must not apply.
        let last = corrupted.frames.len() - 1;
        corrupted.frames[last] ^= mask_raw as u8;
        prop_assert!(prefix_len < corrupted.frames.len());

        let (rstore, mut replica) = fresh_replica(&hello, 2);
        prop_assert!(replica.apply_batch(&corrupted).is_err());
        let held = replica.watermark();
        prop_assert_eq!(held, Watermark::new(0, n as u64 - 1), "prefix short or long");
        let tail_key = format!("r{}", n - 1);
        prop_assert!(rstore.get(tail_key.as_bytes()).is_err(), "tail record must not apply");

        // The genuine tail, polled from the replica's held position,
        // completes the stream.
        let tail = store.repl_batch(0, held.seq, 1 << 20).unwrap();
        prop_assert_eq!(replica.apply_batch(&tail).unwrap(), Watermark::new(0, n as u64));
        prop_assert_eq!(rstore.get(tail_key.as_bytes()).unwrap(), vec![fill; 24]);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    /// Every truncation of the encoded batch is rejected at decode, and
    /// every truncation of a single record's frame bytes (header
    /// intact) is rejected at apply — in both cases without moving the
    /// chain.
    #[test]
    fn truncated_streams_fail_closed(fill in any::<u8>()) {
        let dir = scratch("trunc");
        let store = primary(&dir, 1, fill);
        let hello = store.repl_subscribe().unwrap();
        let genuine = store.repl_batch(0, 0, 1 << 20).unwrap();
        let encoded = genuine.encode();
        for cut in 0..encoded.len() {
            prop_assert!(
                ReplBatch::decode(&encoded[..cut]).is_none(),
                "decode accepted a truncation at {cut}"
            );
        }

        let (rstore, mut replica) = fresh_replica(&hello, 2);
        for cut in 0..genuine.frames.len() {
            let mut batch = genuine.clone();
            batch.frames.truncate(cut);
            prop_assert!(replica.apply_batch(&batch).is_err(), "applied truncation at {cut}");
            prop_assert_eq!(replica.watermark(), Watermark::new(0, 0));
        }
        prop_assert_eq!(replica.apply_batch(&genuine).unwrap(), Watermark::new(0, 1));
        prop_assert_eq!(rstore.len(), 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    /// Out-of-order delivery, replays, and intra-batch record swaps all
    /// fail closed; the in-order stream still applies afterwards.
    #[test]
    fn reordered_and_replayed_streams_fail_closed(
        n1 in 1usize..4,
        n2 in 1usize..4,
        fill in any::<u8>(),
    ) {
        let dir = scratch("reorder");
        let store = primary(&dir, n1 + n2, fill);
        let hello = store.repl_subscribe().unwrap();
        // Single-record polls (1-byte budget ships exactly one frame).
        let singles: Vec<ReplBatch> =
            (0..n1 + n2).map(|i| store.repl_batch(0, i as u64, 1).unwrap()).collect();
        let batch1 = store.repl_batch(0, 0, 1 << 20).unwrap();

        // A batch from the future (starting past the replica's
        // position) is refused.
        let (_, mut replica) = fresh_replica(&hello, 2);
        prop_assert!(replica.apply_batch(&singles[n1]).is_err());
        prop_assert_eq!(replica.watermark(), Watermark::new(0, 0));

        // Two adjacent records swapped inside one batch break the chain.
        if n1 + n2 >= 2 {
            let mut swapped = batch1.clone();
            swapped.frames =
                [singles[1].frames.clone(), singles[0].frames.clone()].concat();
            for s in &singles[2..] {
                swapped.frames.extend_from_slice(&s.frames);
            }
            prop_assert!(replica.apply_batch(&swapped).is_err());
            prop_assert_eq!(replica.watermark(), Watermark::new(0, 0));
        }

        // The in-order stream applies; replaying any earlier batch is
        // then refused without moving the chain.
        let applied = replica.apply_batch(&batch1).unwrap();
        prop_assert_eq!(applied, Watermark::new(0, (n1 + n2) as u64));
        prop_assert!(replica.apply_batch(&batch1).is_err(), "replay accepted");
        prop_assert!(replica.apply_batch(&singles[0]).is_err(), "record replay accepted");
        prop_assert_eq!(replica.watermark(), applied);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}

/// A stream stuck in a superseded generation is refused once the
/// replica has crossed the authenticated handover, and a subscriber
/// cannot bootstrap at all once generation 0 is pruned.
#[test]
fn stale_generation_stream_fails_closed() {
    let dir = scratch("stalegen");
    let snap = scratch("stalegen-snap");
    std::fs::create_dir_all(&snap).unwrap();
    let store = primary(&dir, 3, 0x5a);
    let hello = store.repl_subscribe().unwrap();
    let stale = store.repl_batch(0, 0, 1 << 20).unwrap();

    let (rstore, mut replica) = fresh_replica(&hello, 2);
    assert_eq!(replica.apply_batch(&stale).unwrap(), Watermark::new(0, 3));

    // Rotate: snapshot retires generation 0 (the subscriber floor keeps
    // its file until the replica acks past it).
    let counter = PersistentCounter::open(snap.join("ctr")).unwrap();
    store.snapshot_blocking(snap.join("snap.bin"), &counter).unwrap();
    store.set(b"after-rotate", b"x").unwrap();

    // The replica crosses the handover: an empty gen-0 batch carrying
    // the rotation authenticator, then the new generation's records.
    let hand = store.repl_batch(0, 3, 1 << 20).unwrap();
    let next_gen = hand.advance_to.expect("rotation handover");
    assert!(next_gen > 0);
    let crossed = replica.apply_batch(&hand).unwrap();
    assert_eq!(crossed.generation, next_gen);
    let rest = store.repl_batch(next_gen, crossed.seq, 1 << 20).unwrap();
    let wm = replica.apply_batch(&rest).unwrap();
    assert_eq!(rstore.get(b"after-rotate").unwrap(), b"x");

    // A stale generation-0 stream — however authentic its records were
    // at the time — is refused without desyncing the chain.
    assert!(replica.apply_batch(&stale).is_err(), "stale generation accepted");
    assert_eq!(replica.watermark(), wm);

    // Replaying the handover to drag the replica back also fails.
    assert!(replica.apply_batch(&hand).is_err(), "handover replay accepted");
    assert_eq!(replica.watermark(), wm);

    // Ack into the new generation, rotate again: generation 0 is gone,
    // so a fresh subscriber has no complete history to bootstrap from
    // and is refused instead of silently starting mid-stream.
    store.repl_ack(hello.subscriber, wm).unwrap();
    store.snapshot_blocking(snap.join("snap2.bin"), &counter).unwrap();
    assert!(store.repl_subscribe().is_err(), "bootstrap from pruned history accepted");

    std::fs::remove_dir_all(&dir).unwrap();
    std::fs::remove_dir_all(&snap).unwrap();
}
