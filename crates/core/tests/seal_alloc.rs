//! Proves the steady-state seal/unseal hot path is (nearly) allocation-
//! free: warmed in-place `set` updates perform zero heap allocations,
//! and a verified `get` allocates only the returned value.
//!
//! The shard threads reusable scratch buffers through its search,
//! encode, fused-open, and MAC-gather paths; the bucket-set hash is
//! derived by streaming entry MACs straight into a CMAC context. This
//! test pins that property with a counting global allocator, the same
//! pattern as `hist_alloc.rs`. It lives in its own integration-test
//! binary so no sibling test thread can allocate concurrently and
//! pollute the counter.

use sgx_sim::enclave::EnclaveBuilder;
use shieldstore::{Config, ShieldStore};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

struct CountingAlloc;

// SAFETY: delegates every operation to the system allocator unchanged;
// the only addition is a relaxed counter bump.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

#[test]
fn warmed_hot_path_is_allocation_free() {
    let enclave = EnclaveBuilder::new("seal-alloc").epc_bytes(8 << 20).build();
    let store =
        ShieldStore::new(enclave, Config::shield_opt().buckets(64).mac_hashes(16).with_shards(1))
            .unwrap();

    let keys: Vec<Vec<u8>> = (0..32u32).map(|i| format!("key-{i:04}").into_bytes()).collect();
    let value_a = vec![0xa5u8; 64];
    let value_b = vec![0x5au8; 64]; // same size class: in-place update

    // Warm up: populate, then run one full update+get sweep so every
    // scratch buffer, heap chunk, and lazy runtime structure reaches its
    // steady-state size before counting starts.
    for k in &keys {
        store.set(k, &value_a).unwrap();
    }
    for k in &keys {
        store.set(k, &value_b).unwrap();
        let got = store.get(k).unwrap();
        assert_eq!(got, value_b);
    }

    // In-place updates: zero allocations per op.
    let before = ALLOCATIONS.load(Ordering::SeqCst);
    for _ in 0..8 {
        for k in &keys {
            store.set(k, &value_a).unwrap();
        }
    }
    let set_allocs = ALLOCATIONS.load(Ordering::SeqCst) - before;
    assert_eq!(set_allocs, 0, "warmed in-place sets allocated {set_allocs} time(s)");

    // Verified gets: only the returned value may allocate (one Vec per
    // hit from releasing the plaintext out of the scratch buffer).
    let n_gets = 8 * keys.len() as u64;
    let before = ALLOCATIONS.load(Ordering::SeqCst);
    for _ in 0..8 {
        for k in &keys {
            let got = store.get(k).unwrap();
            assert_eq!(got.len(), value_a.len());
        }
    }
    let get_allocs = ALLOCATIONS.load(Ordering::SeqCst) - before;
    assert!(
        get_allocs <= n_gets,
        "gets allocated {get_allocs} time(s) over {n_gets} ops (> 1 per op)"
    );
}
