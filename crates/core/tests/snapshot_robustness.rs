//! Snapshot-file robustness: a snapshot lives on untrusted storage, so
//! `restore` must treat every byte of it as attacker-controlled. Any
//! truncation, bit flip, or length-field corruption must produce an
//! error — never a panic, a hang, or a store loaded with partial state.

use sgx_sim::counter::PersistentCounter;
use sgx_sim::enclave::EnclaveBuilder;
use sgx_sim::vclock;
use shieldstore::{Config, Error, ShieldStore};
use std::path::{Path, PathBuf};
use std::sync::Arc;

fn tmpdir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ss-snaprob-{}-{}", name, std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn config() -> Config {
    Config::shield_opt().buckets(128).mac_hashes(32).with_shards(2)
}

fn enclave(seed: u64) -> Arc<sgx_sim::enclave::Enclave> {
    EnclaveBuilder::new("snaprob").seed(seed).epc_bytes(8 << 20).build()
}

/// Builds a populated store, snapshots it, and returns the snapshot path
/// plus the counter needed to restore it.
fn write_snapshot(dir: &Path, seed: u64) -> (PathBuf, PersistentCounter) {
    let snap = dir.join("snap.db");
    let ctr_path = dir.join("ctr");
    let _ = std::fs::remove_file(&ctr_path);
    let counter = PersistentCounter::open(&ctr_path).unwrap();
    let store = ShieldStore::new(enclave(seed), config()).unwrap();
    for i in 0..64u32 {
        store.set(format!("key-{i:03}").as_bytes(), format!("value-{i}").as_bytes()).unwrap();
    }
    store.snapshot_blocking(&snap, &counter).unwrap();
    (snap, counter)
}

/// Asserts that restoring `snap` fails with an error (no panic, and no
/// `Ok` store carrying partial state).
fn assert_restore_fails(snap: &Path, counter: &PersistentCounter, seed: u64, what: &str) {
    match ShieldStore::restore(enclave(seed), config(), snap, counter) {
        Err(_) => {}
        Ok(store) => panic!("{what}: restore succeeded with {} entries", store.len()),
    }
}

#[test]
fn zero_length_snapshot_rejected() {
    vclock::reset();
    let dir = tmpdir("zero");
    let (snap, counter) = write_snapshot(&dir, 1);
    std::fs::write(&snap, b"").unwrap();
    assert_restore_fails(&snap, &counter, 1, "zero-length file");
    std::fs::remove_dir_all(&dir).ok();
    vclock::reset();
}

#[test]
fn truncation_at_every_fraction_rejected() {
    vclock::reset();
    let dir = tmpdir("trunc");
    let (snap, counter) = write_snapshot(&dir, 2);
    let full = std::fs::read(&snap).unwrap();
    // Cut the file at a spread of lengths: inside the magic, the header,
    // the sealed blob, and the entry stream.
    for cut in [1, 4, 7, 9, 17, 21, 25, full.len() / 4, full.len() / 2, full.len() - 1] {
        let cut = cut.min(full.len() - 1);
        std::fs::write(&snap, &full[..cut]).unwrap();
        assert_restore_fails(&snap, &counter, 2, &format!("truncated to {cut} bytes"));
    }
    std::fs::remove_dir_all(&dir).ok();
    vclock::reset();
}

#[test]
fn single_bit_flips_never_yield_wrong_data() {
    vclock::reset();
    let dir = tmpdir("flip");
    let (snap, counter) = write_snapshot(&dir, 3);
    let full = std::fs::read(&snap).unwrap();
    // Flip one bit at a spread of positions across the whole file. A flip
    // must either be rejected or (if it lands in slack the codec ignores)
    // still restore exactly the original data — never wrong data.
    let step = (full.len() / 97).max(1);
    for pos in (0..full.len()).step_by(step) {
        let mut bytes = full.clone();
        bytes[pos] ^= 1 << (pos % 8);
        std::fs::write(&snap, &bytes).unwrap();
        match ShieldStore::restore(enclave(3), config(), &snap, &counter) {
            Err(_) => {}
            Ok(store) => {
                assert_eq!(store.len(), 64, "flip at {pos}: partial state loaded");
                for i in 0..64u32 {
                    assert_eq!(
                        store.get(format!("key-{i:03}").as_bytes()).unwrap(),
                        format!("value-{i}").as_bytes(),
                        "flip at {pos}: wrong data for key-{i:03}"
                    );
                }
            }
        }
    }
    std::fs::remove_dir_all(&dir).ok();
    vclock::reset();
}

#[test]
fn inflated_length_fields_rejected_without_allocation() {
    vclock::reset();
    let dir = tmpdir("lenfield");
    let (snap, counter) = write_snapshot(&dir, 4);
    let full = std::fs::read(&snap).unwrap();

    // Sealed-blob length lives at offset 20 (magic 8 + counter 8 + shards 4).
    let mut bytes = full.clone();
    bytes[20..24].copy_from_slice(&u32::MAX.to_le_bytes());
    std::fs::write(&snap, &bytes).unwrap();
    assert_restore_fails(&snap, &counter, 4, "sealed length = u32::MAX");

    // Per-shard entry count (first u64 after the sealed blob).
    let sealed_len = u32::from_le_bytes(full[20..24].try_into().unwrap()) as usize;
    let count_off = 24 + sealed_len;
    let mut bytes = full.clone();
    bytes[count_off..count_off + 8].copy_from_slice(&u64::MAX.to_le_bytes());
    std::fs::write(&snap, &bytes).unwrap();
    assert_restore_fails(&snap, &counter, 4, "entry count = u64::MAX");

    // First entry's length field (bucket u32, then len u32).
    let len_off = count_off + 8 + 4;
    let mut bytes = full.clone();
    bytes[len_off..len_off + 4].copy_from_slice(&u32::MAX.to_le_bytes());
    std::fs::write(&snap, &bytes).unwrap();
    assert_restore_fails(&snap, &counter, 4, "entry length = u32::MAX");

    std::fs::remove_dir_all(&dir).ok();
    vclock::reset();
}

#[test]
fn entry_relocation_rejected() {
    // Regression: the per-entry bucket index in the snapshot is *not*
    // covered by the entry MAC (the Fig. 5 MAC covers ciphertext, lengths,
    // hint and IV). Before restore re-derived placement from the decrypted
    // key, relocating a chain-tail entry into an empty neighbouring bucket
    // of the same bucket set preserved the set's MAC concatenation, so
    // every hash verified and the key became a silent miss (found by the
    // adversary harness, seeds 567 and 787).
    vclock::reset();
    let dir = tmpdir("reloc");
    let (snap, counter) = write_snapshot(&dir, 6);
    let full = std::fs::read(&snap).unwrap();
    let num_shards = u32::from_le_bytes(full[16..20].try_into().unwrap()) as usize;
    let sealed_len = u32::from_le_bytes(full[20..24].try_into().unwrap()) as usize;
    let mut off = 24 + sealed_len;
    let mut relocations = 0;
    for _ in 0..num_shards {
        let count = u64::from_le_bytes(full[off..off + 8].try_into().unwrap()) as usize;
        off += 8;
        for _ in 0..count {
            let bucket_off = off;
            let len = u32::from_le_bytes(full[off + 4..off + 8].try_into().unwrap()) as usize;
            off += 8 + len;
            // Move the entry to the adjacent bucket — always in bounds for
            // a power-of-two bucket count, and within the same bucket set,
            // so only the placement check can catch it.
            let mut bytes = full.clone();
            bytes[bucket_off] ^= 1;
            std::fs::write(&snap, &bytes).unwrap();
            relocations += 1;
            assert_restore_fails(
                &snap,
                &counter,
                6,
                &format!("entry relocated at offset {bucket_off}"),
            );
        }
    }
    assert_eq!(off, full.len(), "walked the whole entry stream");
    assert!(relocations >= 64, "every entry exercised");
    std::fs::remove_dir_all(&dir).ok();
    vclock::reset();
}

#[test]
fn shard_count_mismatch_rejected() {
    vclock::reset();
    let dir = tmpdir("shards");
    let (snap, counter) = write_snapshot(&dir, 5);
    let wrong = Config::shield_opt().buckets(128).mac_hashes(32).with_shards(4);
    let r = ShieldStore::restore(enclave(5), wrong, &snap, &counter);
    assert!(matches!(r, Err(Error::Persistence(_))), "got {r:?}");
    std::fs::remove_dir_all(&dir).ok();
    vclock::reset();
}
