//! Storage-fault matrix: every durable-I/O call site must fail closed.
//!
//! The store's durability story ends at the disk, and disks fail in
//! more ways than "the bytes arrived": writes go short, fsync lies,
//! renames tear, directories forget. These tests drive a deterministic
//! [`FaultFs`] through the commit, rotation, and recovery paths and
//! check the two invariants the write-ahead log promises:
//!
//! * **Fail-closed**: the first failed durable operation poisons the
//!   writer — every later mutation answers
//!   [`shieldstore::Error::StorageFailed`], no silent retry, no
//!   re-acknowledgement of data the kernel may have dropped (the
//!   fsyncgate rule) — while reads keep serving the acked state.
//! * **Verified prefix ⊇ acked**: after a power cut, recovery replays a
//!   chain-verified prefix that contains every acknowledged write. The
//!   un-acked suffix may or may not survive (an fsync that lied leaves
//!   readable pages until power loss); it must never be wrong data.

use proptest::prelude::*;
use sgx_sim::counter::PersistentCounter;
use sgx_sim::enclave::{Enclave, EnclaveBuilder};
use sgx_sim::storage::{FaultFs, FaultKind, FaultOp, FaultSpec, StorageFs};
use shieldstore::{Config, DurabilityPolicy, Error, ShieldStore};
use std::collections::BTreeMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

static SCRATCH_SEQ: AtomicU64 = AtomicU64::new(0);

fn scratch(tag: &str) -> PathBuf {
    let n = SCRATCH_SEQ.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!("ss-stfault-{tag}-{}-{n}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn enclave(seed: u64) -> Arc<Enclave> {
    EnclaveBuilder::new("storage-faults").seed(seed).epc_bytes(8 << 20).build()
}

fn config() -> Config {
    Config::shield_opt()
        .buckets(64)
        .mac_hashes(16)
        .with_shards(2)
        .with_durability(DurabilityPolicy::Strict)
}

fn fault_store(seed: u64, wal_dir: &PathBuf) -> (Arc<FaultFs>, ShieldStore) {
    let ffs = Arc::new(FaultFs::new());
    let fs: Arc<dyn StorageFs> = Arc::clone(&ffs) as Arc<dyn StorageFs>;
    let store = ShieldStore::new_with_storage(enclave(seed), config(), fs).unwrap();
    store.attach_wal(wal_dir).unwrap();
    (ffs, store)
}

/// Faults a commit can hit: the log append and its group fsync.
const COMMIT_SITES: &[(FaultOp, &str, FaultKind)] = &[
    (FaultOp::Write, "wal-", FaultKind::Eio),
    (FaultOp::Write, "wal-", FaultKind::Enospc),
    (FaultOp::Write, "wal-", FaultKind::ShortWrite),
    (FaultOp::SyncData, "wal-", FaultKind::SyncFail),
    (FaultOp::SyncData, "wal-", FaultKind::Eio),
];

/// Faults rotation (snapshot + pin replacement) can hit on top.
const ROTATE_SITES: &[(FaultOp, &str, FaultKind)] = &[
    (FaultOp::Open, "wal-", FaultKind::Eio),
    (FaultOp::Write, "wal.pin", FaultKind::Eio),
    (FaultOp::SyncAll, "wal.pin", FaultKind::SyncFail),
    (FaultOp::Rename, "wal.pin", FaultKind::Eio),
    (FaultOp::Rename, "wal.pin", FaultKind::TornRename),
    (FaultOp::SyncDir, "", FaultKind::Eio),
    (FaultOp::Write, "snap", FaultKind::Enospc),
    (FaultOp::SyncAll, "snap", FaultKind::SyncFail),
    (FaultOp::Rename, "snap", FaultKind::TornRename),
];

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// A fault at any commit call site poisons the writer: the faulted
    /// set and every later mutation answer `StorageFailed`, reads keep
    /// serving every acked key, and after a power cut recovery yields
    /// exactly the acked state (strict policy: every `Ok` was synced).
    #[test]
    fn commit_fault_poisons_writer_and_acked_survives_power_cut(
        site in 0..COMMIT_SITES.len(),
        pre in 1u64..8,
        fault_at in 1u64..4,
        post in 1u64..5,
        seed in 0u64..1000,
    ) {
        let dir = scratch("commit");
        let wal_dir = dir.join("wal");
        let (ffs, store) = fault_store(seed, &wal_dir);
        let mut acked: BTreeMap<Vec<u8>, Vec<u8>> = BTreeMap::new();

        for i in 0..pre {
            let (k, v) = (format!("pre-{i}").into_bytes(), format!("pv-{seed}-{i}").into_bytes());
            store.set(&k, &v).unwrap();
            acked.insert(k, v);
        }

        let (op, path, kind) = COMMIT_SITES[site];
        // Fire within the post-fault op window (each strict set makes
        // exactly one matching append and one matching sync).
        let fault_at = (fault_at - 1) % post + 1;
        ffs.inject(FaultSpec { op, path_substr: path.into(), nth: fault_at, kind });

        let mut poisoned = false;
        for i in 0..post {
            let (k, v) = (format!("post-{i}").into_bytes(), format!("qv-{seed}-{i}").into_bytes());
            match store.set(&k, &v) {
                Ok(()) if !poisoned => { acked.insert(k, v); }
                Ok(()) => prop_assert!(false, "write accepted after the writer poisoned"),
                Err(Error::StorageFailed) => poisoned = true,
                Err(e) => prop_assert!(false, "unexpected error {e:?}"),
            }
        }
        prop_assert!(poisoned, "armed fault never fired (nth={fault_at}, post={post})");
        prop_assert_eq!(store.snapshot().storage_failed, 1);

        // Reads degrade gracefully: every acked key still serves.
        for (k, v) in &acked {
            prop_assert_eq!(&store.get(k).unwrap(), v);
        }

        // Power loss drops everything unsynced; recovery replays the
        // verified prefix, which under strict policy is exactly acked.
        ffs.power_cut().unwrap();
        drop(store);
        let counter = PersistentCounter::open(dir.join("ctr")).unwrap();
        let recovered = ShieldStore::recover_with_storage(
            enclave(seed),
            Arc::new(FaultFs::new()) as Arc<dyn StorageFs>,
            config(),
            None,
            &counter,
            &wal_dir,
        )
        .unwrap();
        prop_assert_eq!(recovered.len(), acked.len());
        for (k, v) in &acked {
            prop_assert_eq!(&recovered.get(k).unwrap(), v);
        }
        // The recovered writer is healthy again.
        recovered.set(b"after", b"ok").unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }

    /// A fault anywhere in the rotation protocol (snapshot write, pin
    /// replacement, directory syncs) leaves recovery able to reproduce
    /// every acked write — from the new snapshot if it became durable,
    /// from the old snapshot plus retained log segments otherwise.
    #[test]
    fn rotation_fault_never_loses_acked_writes(
        site in 0..ROTATE_SITES.len(),
        pre in 2u64..8,
        post in 0u64..4,
        seed in 0u64..1000,
    ) {
        let dir = scratch("rotate");
        let wal_dir = dir.join("wal");
        let (ffs, store) = fault_store(seed, &wal_dir);
        let counter = PersistentCounter::open_with(
            Arc::new(FaultFs::new()) as Arc<dyn StorageFs>,
            dir.join("snapctr"),
        )
        .unwrap();
        let mut acked: BTreeMap<Vec<u8>, Vec<u8>> = BTreeMap::new();

        for i in 0..pre {
            let (k, v) = (format!("pre-{i}").into_bytes(), format!("pv-{seed}-{i}").into_bytes());
            store.set(&k, &v).unwrap();
            acked.insert(k, v);
        }

        let (op, path, kind) = ROTATE_SITES[site];
        ffs.inject(FaultSpec::first(op, path, kind));
        let snap = dir.join("snap.db");
        let snap_ok = store.snapshot_blocking(&snap, &counter).is_ok();

        // Whatever the snapshot's fate, acked writes still read back,
        // and — unless the writer poisoned — new writes still land.
        for (k, v) in &acked {
            prop_assert_eq!(&store.get(k).unwrap(), v);
        }
        for i in 0..post {
            let (k, v) = (format!("post-{i}").into_bytes(), format!("qv-{seed}-{i}").into_bytes());
            match store.set(&k, &v) {
                Ok(()) => { acked.insert(k, v); }
                Err(Error::StorageFailed) => break,
                Err(e) => prop_assert!(false, "unexpected error {e:?}"),
            }
        }

        ffs.power_cut().unwrap();
        drop(store);
        // Recover from the snapshot when a durable one survived the cut
        // (a torn rename rolls back), else from the WAL alone.
        let real = Arc::new(FaultFs::new()) as Arc<dyn StorageFs>;
        let snapshot = snap.exists().then_some(snap);
        let recovered = ShieldStore::recover_with_storage(
            enclave(seed),
            real,
            config(),
            snapshot.as_deref(),
            &counter,
            &wal_dir,
        );
        let recovered = recovered.or_else(|_| {
            // A half-written snapshot file can be unusable; the WAL
            // alone must then carry every acked write.
            ShieldStore::recover_with_storage(
                enclave(seed),
                Arc::new(FaultFs::new()) as Arc<dyn StorageFs>,
                config(),
                None,
                &counter,
                &wal_dir,
            )
        });
        match recovered {
            Ok(recovered) => {
                for (k, v) in &acked {
                    prop_assert_eq!(&recovered.get(k).unwrap(), v, "lost acked key {:?}", k);
                }
            }
            // A torn rename is a disk that *lied*: the rename reported
            // durable (rotation then pruned the other copy) but rolled
            // back at power loss. No protocol survives that with data;
            // the guarantee is detection — recovery fails closed rather
            // than serving a partial or stale state.
            Err(_) if kind == FaultKind::TornRename => {}
            Err(e) => {
                prop_assert!(false, "recovery failed (snapshot ok: {snap_ok}): {e:?}");
            }
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}

/// ENOSPC halfway through a group commit leaves a torn tail on disk;
/// recovery replays only the verified genuine prefix and the store keeps
/// serving reads while refusing writes.
#[test]
fn enospc_mid_group_commit_recovers_verified_prefix() {
    let dir = scratch("enospc-group");
    let wal_dir = dir.join("wal");
    let ffs = Arc::new(FaultFs::new());
    let fs: Arc<dyn StorageFs> = Arc::clone(&ffs) as Arc<dyn StorageFs>;
    let store = ShieldStore::new_with_storage(
        enclave(3),
        Config::shield_opt()
            .buckets(64)
            .mac_hashes(16)
            .with_shards(2)
            .with_durability(DurabilityPolicy::EveryN(4)),
        fs,
    )
    .unwrap();
    store.attach_wal(&wal_dir).unwrap();

    // One full durable group.
    for i in 0..4u32 {
        store.set(format!("g0-{i}").as_bytes(), b"first").unwrap();
    }
    // Second group dies on a disk-full mid-write: the buffered ops were
    // never acked as durable, the writer poisons.
    ffs.inject(FaultSpec::first(FaultOp::Write, "wal-", FaultKind::Enospc));
    let mut failed = false;
    for i in 0..4u32 {
        if store.set(format!("g1-{i}").as_bytes(), b"second").is_err() {
            failed = true;
            break;
        }
    }
    assert!(failed, "group commit swallowed the injected ENOSPC");
    assert!(matches!(store.set(b"later", b"x"), Err(Error::StorageFailed)));
    assert_eq!(store.snapshot().storage_failed, 1);
    assert_eq!(store.get(b"g0-0").unwrap(), b"first");

    ffs.power_cut().unwrap();
    drop(store);
    let counter = PersistentCounter::open(dir.join("ctr")).unwrap();
    let recovered = ShieldStore::recover(
        enclave(3),
        Config::shield_opt()
            .buckets(64)
            .mac_hashes(16)
            .with_shards(2)
            .with_durability(DurabilityPolicy::EveryN(4)),
        None,
        &counter,
        &wal_dir,
    )
    .unwrap();
    // Exactly the durable group survives: the torn second group was
    // never acked and its bytes never synced.
    assert_eq!(recovered.len(), 4);
    for i in 0..4u32 {
        assert_eq!(recovered.get(format!("g0-{i}").as_bytes()).unwrap(), b"first");
    }
    std::fs::remove_dir_all(&dir).ok();
}

// ---------------------------------------------------------------------
// Scrub and repair
// ---------------------------------------------------------------------

/// Drives scrub ticks until one full pass completes, returning the
/// accumulated tick findings.
fn scrub_full_pass(store: &ShieldStore, budget: usize) -> (u64, Vec<u64>, bool, bool) {
    let mut bytes = 0;
    let mut corrupt = Vec::new();
    let (mut pin_bad, mut snap_bad) = (false, false);
    for _ in 0..10_000 {
        let tick = store.scrub_tick(budget).unwrap();
        bytes += tick.verified_bytes;
        if let Some(g) = tick.corrupt_generation {
            corrupt.push(g);
        }
        pin_bad |= tick.pin_corrupt;
        snap_bad |= tick.snapshot_corrupt;
        if tick.pass_completed {
            return (bytes, corrupt, pin_bad, snap_bad);
        }
    }
    panic!("scrub never completed a pass");
}

/// A clean store scrubs clean: bytes verified, nothing flagged, gauges
/// advance monotonically.
#[test]
fn scrub_pass_over_clean_state_finds_nothing() {
    sgx_sim::vclock::reset();
    let dir = scratch("scrub-clean");
    let store = ShieldStore::new(enclave(11), config()).unwrap();
    store.attach_wal(dir.join("wal")).unwrap();
    for i in 0..32u32 {
        store.set(format!("k{i}").as_bytes(), format!("v{i}").as_bytes()).unwrap();
    }
    let counter = PersistentCounter::open(dir.join("ctr")).unwrap();
    store.snapshot_blocking(dir.join("snap.db"), &counter).unwrap();

    // A tiny budget forces many resumable segment chunks.
    let (bytes, corrupt, pin_bad, snap_bad) = scrub_full_pass(&store, 256);
    assert!(bytes > 0, "scrub verified nothing");
    assert!(corrupt.is_empty() && !pin_bad && !snap_bad);

    let snap = store.snapshot();
    assert_eq!(snap.scrub_passes, 1);
    assert_eq!(snap.scrub_corrupt, 0);
    assert_eq!(snap.scrub_repaired, 0);
    assert!(snap.scrub_bytes >= bytes);

    // Further passes keep accumulating.
    scrub_full_pass(&store, 1 << 20);
    assert_eq!(store.snapshot().scrub_passes, 2);
    std::fs::remove_dir_all(&dir).ok();
    sgx_sim::vclock::reset();
}

/// Segment rot is detected, quarantines writes (reads keep serving),
/// and a verified repair from a journaling replica restores service.
/// A tampered repair is refused without lifting the quarantine.
#[test]
fn scrub_detects_segment_rot_and_peer_repair_restores_service() {
    let dir = scratch("scrub-repair");
    let store = Arc::new(ShieldStore::new(enclave(21), config()).unwrap());
    store.attach_wal(dir.join("wal")).unwrap();

    // A journaling replica caches every verified frame.
    let hello = store.repl_subscribe().unwrap();
    let rstore = Arc::new(ShieldStore::new(enclave(22), config()).unwrap());
    let mut replica =
        shieldstore::Replica::with_journal(Arc::clone(&rstore), &hello, &dir.join("journal"))
            .unwrap();
    for i in 0..24u32 {
        store.set(format!("k{i}").as_bytes(), format!("v{i}").as_bytes()).unwrap();
    }
    loop {
        let wm = replica.watermark();
        let batch = store.repl_batch(wm.generation, wm.seq, 1 << 20).unwrap();
        if batch.count == 0 && batch.advance_to.is_none() {
            break;
        }
        replica.apply_batch(&batch).unwrap();
    }

    // Rot one sealed byte mid-log on the primary's disk.
    let log = dir.join("wal").join("wal-0.log");
    let mut bytes = std::fs::read(&log).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x40;
    std::fs::write(&log, &bytes).unwrap();

    let (_, corrupt, _, _) = scrub_full_pass(&store, 1 << 20);
    assert_eq!(corrupt, vec![0], "scrub missed the rotted generation");
    assert!(matches!(store.set(b"while-bad", b"x"), Err(Error::StorageFailed)));
    assert_eq!(store.get(b"k0").unwrap(), b"v0", "reads must keep serving under quarantine");

    // A lying peer: flip a bit in the served frames. The chain check
    // refuses it and the quarantine holds.
    let genuine = {
        let mut frames = Vec::new();
        let mut after = 0u64;
        loop {
            let b = replica.serve_frames(0, after, 1 << 14).unwrap();
            if b.count == 0 {
                break;
            }
            after += u64::from(b.count);
            frames.extend_from_slice(&b.frames);
        }
        frames
    };
    let mut forged = genuine.clone();
    let flip = forged.len() / 3;
    forged[flip] ^= 0x01;
    assert!(store.repair_wal_segment(0, &forged).is_err(), "forged frames must be refused");
    assert!(matches!(store.set(b"still-bad", b"x"), Err(Error::StorageFailed)));

    // The genuine frames verify, swap in, and lift the quarantine.
    store.repair_wal_segment(0, &genuine).unwrap();
    assert!(store.snapshot().scrub_repaired >= 1);
    store.set(b"after-repair", b"back").unwrap();

    // The repaired log replays end to end.
    drop(replica);
    drop(store);
    let counter = PersistentCounter::open(dir.join("ctr")).unwrap();
    let recovered =
        ShieldStore::recover(enclave(21), config(), None, &counter, dir.join("wal")).unwrap();
    assert_eq!(recovered.get(b"k7").unwrap(), b"v7");
    assert_eq!(recovered.get(b"after-repair").unwrap(), b"back");
    std::fs::remove_dir_all(&dir).ok();
}

/// A rotted sealed pin self-repairs from in-enclave state: the scrubber
/// flags it, rewrites it, and recovery still works afterwards.
#[test]
fn scrub_self_repairs_a_rotted_pin() {
    let dir = scratch("scrub-pin");
    let store = ShieldStore::new(enclave(31), config()).unwrap();
    store.attach_wal(dir.join("wal")).unwrap();
    for i in 0..8u32 {
        store.set(format!("p{i}").as_bytes(), b"pinned").unwrap();
    }

    let pin = dir.join("wal").join("wal.pin");
    let mut bytes = std::fs::read(&pin).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x08;
    std::fs::write(&pin, &bytes).unwrap();

    let (_, _, pin_bad, _) = scrub_full_pass(&store, 1 << 20);
    assert!(pin_bad, "scrub missed the rotted pin");
    let snap = store.snapshot();
    assert_eq!(snap.scrub_corrupt, 1);
    assert_eq!(snap.scrub_repaired, 1);

    // The rewrite healed it: writes continue and recovery verifies.
    store.set(b"post-pin", b"ok").unwrap();
    drop(store);
    let counter = PersistentCounter::open(dir.join("ctr")).unwrap();
    let recovered =
        ShieldStore::recover(enclave(31), config(), None, &counter, dir.join("wal")).unwrap();
    assert_eq!(recovered.get(b"post-pin").unwrap(), b"ok");
    std::fs::remove_dir_all(&dir).ok();
}

/// Snapshot rot is reported (and counted) without quarantining the WAL:
/// the log, not the snapshot, is the durability root.
#[test]
fn scrub_reports_snapshot_rot_without_quarantining_writes() {
    sgx_sim::vclock::reset();
    let dir = scratch("scrub-snap");
    let store = ShieldStore::new(enclave(41), config()).unwrap();
    store.attach_wal(dir.join("wal")).unwrap();
    for i in 0..16u32 {
        store.set(format!("s{i}").as_bytes(), b"snapped").unwrap();
    }
    let counter = PersistentCounter::open(dir.join("ctr")).unwrap();
    let snap_path = dir.join("snap.db");
    store.snapshot_blocking(&snap_path, &counter).unwrap();

    let mut bytes = std::fs::read(&snap_path).unwrap();
    let off = bytes.len() * 2 / 3;
    bytes[off] ^= 0x80;
    std::fs::write(&snap_path, &bytes).unwrap();

    let (_, corrupt, pin_bad, snap_bad) = scrub_full_pass(&store, 1 << 20);
    assert!(snap_bad, "scrub missed the rotted snapshot");
    assert!(corrupt.is_empty() && !pin_bad);
    assert_eq!(store.snapshot().scrub_corrupt, 1);
    // The WAL is intact: writes keep flowing.
    store.set(b"post-snap-rot", b"ok").unwrap();
    std::fs::remove_dir_all(&dir).ok();
    sgx_sim::vclock::reset();
}
