//! Cross-tenant isolation properties.
//!
//! Three layers of the tenancy design are proven here:
//!
//! 1. **Namespace isolation** — for arbitrary op interleavings over N
//!    tenants sharing one store (and deliberately sharing key *names*),
//!    each tenant's view equals an independent shadow model. No write,
//!    delete, append, or increment in one namespace is ever visible in
//!    another.
//! 2. **Cryptographic isolation** — a leaked tenant-A derived key pair
//!    plus raw access to the untrusted entry bytes must neither decrypt
//!    nor forge tenant-B entries: B's MACs fail under A's key, A's
//!    cipher produces garbage on B's ciphertext, and an entry re-MACed
//!    under A's keys is rejected by B's reads (fail closed).
//! 3. **Re-stitch resistance** — flipping the plaintext tenant field of
//!    a stored entry (moving a ciphertext into another namespace) is
//!    always detected, because the tenant id is inside the MAC domain
//!    and the MAC key itself is tenant-derived.

use proptest::collection::vec as pvec;
use proptest::prelude::*;
use sgx_sim::enclave::EnclaveBuilder;
use shield_crypto::cmac::Cmac;
use shield_crypto::ctr::AesCtr;
use shieldstore::entry;
use shieldstore::testing::{EntryField, TamperOp};
use shieldstore::{Config, Error, ShieldStore};
use std::collections::HashMap;

fn store() -> ShieldStore {
    let enclave = EnclaveBuilder::new("tenant-isolation").epc_bytes(16 << 20).build();
    ShieldStore::new(enclave, Config::shield_opt().buckets(64).mac_hashes(16).with_shards(1))
        .unwrap()
}

/// One step of a multi-tenant interleaving.
#[derive(Debug, Clone)]
enum Step {
    Set { tenant: u32, key: u8, val: Vec<u8> },
    Get { tenant: u32, key: u8 },
    Delete { tenant: u32, key: u8 },
    Append { tenant: u32, key: u8, suffix: Vec<u8> },
}

fn step_strategy(tenants: u32, keys: u8) -> impl Strategy<Value = Step> {
    let t = 1..tenants + 1;
    let k = 0..keys;
    prop_oneof![
        (t.clone(), k.clone(), pvec(any::<u8>(), 1..24)).prop_map(|(tenant, key, val)| Step::Set {
            tenant,
            key,
            val
        }),
        (t.clone(), k.clone()).prop_map(|(tenant, key)| Step::Get { tenant, key }),
        (t.clone(), k.clone()).prop_map(|(tenant, key)| Step::Delete { tenant, key }),
        (t, k, pvec(any::<u8>(), 1..8)).prop_map(|(tenant, key, suffix)| Step::Append {
            tenant,
            key,
            suffix
        }),
    ]
}

fn key_name(key: u8) -> Vec<u8> {
    // The SAME name in every namespace — isolation must come from the
    // tenant id, not from the key bytes.
    format!("shared-key-{key:02}").into_bytes()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, .. ProptestConfig::default() })]

    /// Every tenant's view tracks its own independent shadow model
    /// under arbitrary interleavings over shared key names.
    #[test]
    fn tenant_views_match_independent_shadows(
        steps in pvec(step_strategy(3, 6), 1..120),
    ) {
        let s = store();
        let mut shadows: HashMap<u32, HashMap<u8, Vec<u8>>> = HashMap::new();
        for step in &steps {
            match step {
                Step::Set { tenant, key, val } => {
                    s.set_t(*tenant, &key_name(*key), val).unwrap();
                    shadows.entry(*tenant).or_default().insert(*key, val.clone());
                }
                Step::Get { tenant, key } => {
                    let want = shadows.get(tenant).and_then(|m| m.get(key));
                    match s.get_t(*tenant, &key_name(*key)) {
                        Ok(v) => prop_assert_eq!(Some(&v), want),
                        Err(Error::KeyNotFound) => prop_assert!(want.is_none()),
                        Err(e) => return Err(TestCaseError::fail(format!("get: {e}"))),
                    }
                }
                Step::Delete { tenant, key } => {
                    let existed =
                        shadows.get_mut(tenant).and_then(|m| m.remove(key)).is_some();
                    match s.delete_t(*tenant, &key_name(*key)) {
                        Ok(()) => prop_assert!(existed),
                        Err(Error::KeyNotFound) => prop_assert!(!existed),
                        Err(e) => return Err(TestCaseError::fail(format!("delete: {e}"))),
                    }
                }
                Step::Append { tenant, key, suffix } => {
                    let shadow = shadows.entry(*tenant).or_default();
                    match s.append_t(*tenant, &key_name(*key), suffix) {
                        Ok(_) => {
                            let v = shadow.entry(*key).or_default();
                            v.extend_from_slice(suffix);
                        }
                        Err(Error::KeyNotFound) => {
                            prop_assert!(!shadow.contains_key(key));
                        }
                        Err(e) => return Err(TestCaseError::fail(format!("append: {e}"))),
                    }
                }
            }
        }
        // Final sweep: every tenant sees exactly its shadow, nothing of
        // the others'.
        for tenant in 1..=3u32 {
            let shadow = shadows.get(&tenant).cloned().unwrap_or_default();
            for key in 0..6u8 {
                match s.get_t(tenant, &key_name(key)) {
                    Ok(v) => prop_assert_eq!(Some(&v), shadow.get(&key)),
                    Err(Error::KeyNotFound) => prop_assert!(!shadow.contains_key(&key)),
                    Err(e) => return Err(TestCaseError::fail(format!("final get: {e}"))),
                }
            }
        }
    }

    /// A leaked tenant-A key pair plus raw entry access cannot decrypt
    /// or forge tenant-B entries.
    #[test]
    fn leaked_key_cannot_open_or_forge_other_tenant(
        key in pvec(any::<u8>(), 1..24),
        val_b in pvec(any::<u8>(), 1..64),
        seed in any::<u64>(),
    ) {
        let s = store();
        s.set_t(1, &key, b"tenant-a-value").unwrap();
        s.set_t(2, &key, &val_b).unwrap();

        // The attacker: tenant A's full derived key pair and raw
        // read/write access to every entry's bytes in untrusted memory.
        let (enc_a, mac_a) = s.leak_tenant_keys(1);
        let enc = AesCtr::new(&enc_a);
        let mac = Cmac::new(&mac_a);

        let mut saw_b = false;
        for stale in s.stale_entry_copies(0) {
            let header = entry::parse_header(&stale.bytes);
            if header.tenant != 2 {
                continue;
            }
            saw_b = true;
            let ct = &stale.bytes[entry::HEADER_LEN..];
            // B's MAC never verifies under A's key...
            prop_assert!(
                !entry::verify_mac(&mac, &header, ct),
                "tenant-B entry authenticated under tenant-A's MAC key"
            );
            // ...and A's cipher cannot recover B's plaintext.
            let (k, v) = entry::decrypt_entry(&enc, &header, ct);
            prop_assert!(
                k != key || v != val_b,
                "tenant-A's data key decrypted tenant-B's entry"
            );

            // Forgery: re-MAC the B-tagged entry under A's key (the
            // strongest thing the attacker can compute) and plant it.
            let mut forged = stale.bytes.clone();
            let tag = entry::compute_mac(
                &mac, ct, header.key_len, header.val_len, header.hint,
                header.tenant, header.expires_at, &header.iv,
            );
            forged[entry::OFF_MAC..entry::OFF_MAC + 16].copy_from_slice(&tag);
            let planted = s.replay_entry(
                0,
                &shieldstore::testing::StaleEntry { handle: stale.handle, bytes: forged },
            );
            prop_assert!(planted, "replay hook must land");
        }
        prop_assert!(saw_b, "tenant-B entry must exist in raw memory");

        // B's reads reject the forgery outright (fail closed) — and
        // mix in an unrelated seed-derived read to vary timing.
        let _ = seed;
        match s.get_t(2, &key) {
            Ok(v) => prop_assert_eq!(v, val_b.clone(),
                "forged entry must never be served as tenant-B data"),
            Err(Error::IntegrityViolation { .. }) => {}
            Err(e) => return Err(TestCaseError::fail(format!("unexpected: {e}"))),
        }
        // A integrity failure above must have been the outcome, since
        // the forged MAC cannot verify under B's derived key.
        prop_assert!(
            s.get_t(2, &key).is_err(),
            "tenant-B read of a forged entry must fail closed"
        );
        // Tenant A's namespace is untouched by the whole exercise.
        prop_assert_eq!(s.get_t(1, &key).unwrap(), b"tenant-a-value".to_vec());
    }

    /// Re-stitching a ciphertext into another namespace by flipping the
    /// plaintext tenant field is always detected: no tenant ever reads
    /// a value its shadow does not hold.
    #[test]
    fn tenant_field_tamper_never_crosses_namespaces(
        val_a in pvec(any::<u8>(), 1..32),
        val_b in pvec(any::<u8>(), 1..32),
        seed in any::<u64>(),
    ) {
        prop_assume!(val_a != val_b);
        let s = store();
        s.set_t(1, b"the-key", &val_a).unwrap();
        s.set_t(2, b"the-key", &val_b).unwrap();
        prop_assert!(s.tamper(TamperOp::Field(EntryField::Tenant), seed));

        for (tenant, own) in [(1u32, &val_a), (2u32, &val_b)] {
            match s.get_t(tenant, b"the-key") {
                // Untampered entry: the value must be the tenant's own.
                Ok(v) => prop_assert_eq!(&v, own),
                // Tampered entry: detected, never misattributed.
                Err(Error::IntegrityViolation { .. }) | Err(Error::KeyNotFound) => {}
                Err(e) => return Err(TestCaseError::fail(format!("unexpected: {e}"))),
            }
        }
    }
}
