//! Property-based tests for the write-ahead-log record codec: sealed
//! frames must round-trip exactly, chain across arbitrary batches, and
//! fail closed under *every* single-byte corruption, every truncation
//! offset, wrong sequence numbers, wrong chain predecessors, and wrong
//! keys. The log lives on untrusted storage, so the codec is the only
//! thing standing between the host and a fabricated history.

use proptest::collection::vec as pvec;
use proptest::prelude::*;
use shieldstore::{Error, WalCodec, WalOp};

fn codec(enc_seed: u8, mac_seed: u8) -> WalCodec {
    WalCodec::new(&[enc_seed; 16], &[mac_seed; 16])
}

/// Arbitrary operation batches: sets with arbitrary keys/values and
/// deletes with arbitrary keys, including empty keys and values.
fn op_strategy() -> impl Strategy<Value = WalOp> {
    prop_oneof![
        (any::<u32>(), pvec(any::<u8>(), 0..40), pvec(any::<u8>(), 0..120), any::<u64>()).prop_map(
            |(tenant, key, value, expires_at)| WalOp::Set { tenant, key, value, expires_at }
        ),
        (any::<u32>(), pvec(any::<u8>(), 0..40))
            .prop_map(|(tenant, key)| WalOp::Delete { tenant, key }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, .. ProptestConfig::default() })]

    /// Seal → open round-trips any batch exactly, and consecutive
    /// records chain: each opens only with its predecessor's MAC.
    #[test]
    fn roundtrip_and_chaining(
        snap in any::<u64>(),
        batches in pvec(pvec(op_strategy(), 0..6), 1..8),
        iv_fill in any::<u8>(),
    ) {
        let c = codec(0x11, 0x22);
        let mut prev = c.genesis(snap);
        for (i, ops) in batches.iter().enumerate() {
            let seq = i as u64 + 1;
            let iv = [iv_fill.wrapping_add(i as u8); 16];
            let (frame, mac) = c.seal_record(seq, &prev, ops, &iv);
            let (opened, opened_mac) = c.open_record(seq, &prev, &frame[4..]).unwrap();
            prop_assert_eq!(&opened, ops);
            prop_assert_eq!(opened_mac, mac);
            // The frame refuses to verify out of sequence or off-chain.
            prop_assert!(c.open_record(seq + 1, &prev, &frame[4..]).is_err());
            prop_assert!(c.open_record(seq, &c.genesis(snap ^ 1), &frame[4..]).is_err());
            prev = mac;
        }
    }

    /// Every single-byte corruption of a sealed record body — length
    /// bytes, sequence, IV, ciphertext, MAC — fails closed with
    /// `LogIntegrity`, never wrong ops and never a panic.
    #[test]
    fn every_single_byte_corruption_rejected(
        ops in pvec(op_strategy(), 0..5),
        xor in 1u8..255,
    ) {
        let c = codec(0x33, 0x44);
        let prev = c.genesis(7);
        let (frame, _) = c.seal_record(1, &prev, &ops, &[0xab; 16]);
        let body = &frame[4..];
        for pos in 0..body.len() {
            let mut bad = body.to_vec();
            bad[pos] ^= xor;
            match c.open_record(1, &prev, &bad) {
                Err(Error::LogIntegrity { seq: 1 }) => {}
                other => prop_assert!(
                    false,
                    "corruption at byte {} returned {:?}",
                    pos,
                    other.map(|(ops, _)| ops)
                ),
            }
        }
    }

    /// Every truncation of a record body is rejected: a prefix of a
    /// sealed record never verifies as a shorter record.
    #[test]
    fn every_truncation_rejected(ops in pvec(op_strategy(), 0..5)) {
        let c = codec(0x55, 0x66);
        let prev = c.genesis(3);
        let (frame, _) = c.seal_record(1, &prev, &ops, &[0x5c; 16]);
        let body = &frame[4..];
        for cut in 0..body.len() {
            prop_assert!(
                c.open_record(1, &prev, &body[..cut]).is_err(),
                "truncation to {} bytes verified",
                cut
            );
        }
    }

    /// A record sealed under one key pair never opens under another:
    /// a different MAC key fails verification, and a different
    /// encryption key (same MAC key) would decrypt to garbage, which
    /// the op decoder must reject rather than fabricate operations.
    #[test]
    fn wrong_keys_rejected(
        ops in pvec(op_strategy(), 1..5),
        enc in any::<u8>(),
        mac in any::<u8>(),
    ) {
        prop_assume!(enc != 0x77 || mac != 0x88);
        let c = codec(0x77, 0x88);
        let prev = c.genesis(0);
        let (frame, _) = c.seal_record(1, &prev, &ops, &[0x01; 16]);
        let other = codec(enc, mac);
        // `prev` was derived from our MAC key; give the impostor its own
        // genesis too, so only the record keys differ.
        for genesis in [prev, other.genesis(0)] {
            prop_assert!(other.open_record(1, &genesis, &frame[4..]).is_err());
        }
    }

    /// The genesis tag separates snapshot generations: the same ops
    /// sealed as record 1 of generation A never verify in generation B.
    #[test]
    fn generations_do_not_cross(ops in pvec(op_strategy(), 0..5), a in any::<u64>(), b in any::<u64>()) {
        prop_assume!(a != b);
        let c = codec(0x99, 0xaa);
        let (frame, _) = c.seal_record(1, &c.genesis(a), &ops, &[0x3d; 16]);
        prop_assert!(c.open_record(1, &c.genesis(b), &frame[4..]).is_err());
    }
}
