//! AES-128 block cipher (FIPS 197).
//!
//! A straightforward table-based software implementation. The round
//! transformation uses the classic four T-tables derived from the S-box at
//! first use; decryption uses the inverse tables. This mirrors the software
//! fallback path of the Intel SGX SDK crypto library on hardware without
//! AES-NI.
//!
//! This implementation is *not* constant-time with respect to memory access
//! patterns (table lookups are data-dependent), which is acceptable for a
//! simulation substrate; the paper's threat model likewise excludes cache
//! side channels (§3.3).

/// The AES S-box.
pub const SBOX: [u8; 256] = [
    0x63, 0x7c, 0x77, 0x7b, 0xf2, 0x6b, 0x6f, 0xc5, 0x30, 0x01, 0x67, 0x2b, 0xfe, 0xd7, 0xab, 0x76,
    0xca, 0x82, 0xc9, 0x7d, 0xfa, 0x59, 0x47, 0xf0, 0xad, 0xd4, 0xa2, 0xaf, 0x9c, 0xa4, 0x72, 0xc0,
    0xb7, 0xfd, 0x93, 0x26, 0x36, 0x3f, 0xf7, 0xcc, 0x34, 0xa5, 0xe5, 0xf1, 0x71, 0xd8, 0x31, 0x15,
    0x04, 0xc7, 0x23, 0xc3, 0x18, 0x96, 0x05, 0x9a, 0x07, 0x12, 0x80, 0xe2, 0xeb, 0x27, 0xb2, 0x75,
    0x09, 0x83, 0x2c, 0x1a, 0x1b, 0x6e, 0x5a, 0xa0, 0x52, 0x3b, 0xd6, 0xb3, 0x29, 0xe3, 0x2f, 0x84,
    0x53, 0xd1, 0x00, 0xed, 0x20, 0xfc, 0xb1, 0x5b, 0x6a, 0xcb, 0xbe, 0x39, 0x4a, 0x4c, 0x58, 0xcf,
    0xd0, 0xef, 0xaa, 0xfb, 0x43, 0x4d, 0x33, 0x85, 0x45, 0xf9, 0x02, 0x7f, 0x50, 0x3c, 0x9f, 0xa8,
    0x51, 0xa3, 0x40, 0x8f, 0x92, 0x9d, 0x38, 0xf5, 0xbc, 0xb6, 0xda, 0x21, 0x10, 0xff, 0xf3, 0xd2,
    0xcd, 0x0c, 0x13, 0xec, 0x5f, 0x97, 0x44, 0x17, 0xc4, 0xa7, 0x7e, 0x3d, 0x64, 0x5d, 0x19, 0x73,
    0x60, 0x81, 0x4f, 0xdc, 0x22, 0x2a, 0x90, 0x88, 0x46, 0xee, 0xb8, 0x14, 0xde, 0x5e, 0x0b, 0xdb,
    0xe0, 0x32, 0x3a, 0x0a, 0x49, 0x06, 0x24, 0x5c, 0xc2, 0xd3, 0xac, 0x62, 0x91, 0x95, 0xe4, 0x79,
    0xe7, 0xc8, 0x37, 0x6d, 0x8d, 0xd5, 0x4e, 0xa9, 0x6c, 0x56, 0xf4, 0xea, 0x65, 0x7a, 0xae, 0x08,
    0xba, 0x78, 0x25, 0x2e, 0x1c, 0xa6, 0xb4, 0xc6, 0xe8, 0xdd, 0x74, 0x1f, 0x4b, 0xbd, 0x8b, 0x8a,
    0x70, 0x3e, 0xb5, 0x66, 0x48, 0x03, 0xf6, 0x0e, 0x61, 0x35, 0x57, 0xb9, 0x86, 0xc1, 0x1d, 0x9e,
    0xe1, 0xf8, 0x98, 0x11, 0x69, 0xd9, 0x8e, 0x94, 0x9b, 0x1e, 0x87, 0xe9, 0xce, 0x55, 0x28, 0xdf,
    0x8c, 0xa1, 0x89, 0x0d, 0xbf, 0xe6, 0x42, 0x68, 0x41, 0x99, 0x2d, 0x0f, 0xb0, 0x54, 0xbb, 0x16,
];

/// The inverse AES S-box.
pub const INV_SBOX: [u8; 256] = {
    let mut inv = [0u8; 256];
    let mut i = 0;
    while i < 256 {
        inv[SBOX[i] as usize] = i as u8;
        i += 1;
    }
    inv
};

/// Round constants for AES-128 key expansion.
const RCON: [u8; 10] = [0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40, 0x80, 0x1b, 0x36];

/// The four encryption T-tables: each entry combines SubBytes, ShiftRows
/// and MixColumns for one input byte, so a round is 16 table lookups and
/// XORs. Computed at compile time from the S-box.
static TE: [[u32; 256]; 4] = build_te();

const fn build_te() -> [[u32; 256]; 4] {
    let mut te = [[0u32; 256]; 4];
    let mut i = 0;
    while i < 256 {
        let s = SBOX[i] as u32;
        let s2 = xtime(SBOX[i]) as u32;
        let s3 = s2 ^ s;
        // MixColumns column for input byte at row 0: (2s, s, s, 3s).
        let w = (s2 << 24) | (s << 16) | (s << 8) | s3;
        te[0][i] = w;
        te[1][i] = w.rotate_right(8);
        te[2][i] = w.rotate_right(16);
        te[3][i] = w.rotate_right(24);
        i += 1;
    }
    te
}

/// Multiply `a` by `x` (i.e. by 2) in GF(2^8) with the AES polynomial.
#[inline]
const fn xtime(a: u8) -> u8 {
    (a << 1) ^ (((a >> 7) & 1) * 0x1b)
}

/// Multiply two elements of GF(2^8).
const fn gmul(mut a: u8, mut b: u8) -> u8 {
    let mut p = 0u8;
    let mut i = 0;
    while i < 8 {
        if b & 1 != 0 {
            p ^= a;
        }
        a = xtime(a);
        b >>= 1;
        i += 1;
    }
    p
}

/// An expanded AES-128 key schedule (11 round keys).
#[derive(Clone)]
pub struct Aes128 {
    round_keys: [[u8; 16]; 11],
    /// Round keys as big-endian column words, for the T-table path.
    rk_words: [[u32; 4]; 11],
}

impl Aes128 {
    /// Expands `key` into the full round-key schedule.
    ///
    /// # Examples
    ///
    /// ```
    /// let aes = shield_crypto::aes::Aes128::new(&[0u8; 16]);
    /// let mut block = [0u8; 16];
    /// aes.encrypt_block(&mut block);
    /// ```
    pub fn new(key: &[u8; 16]) -> Self {
        let mut w = [[0u8; 4]; 44];
        for (i, chunk) in key.chunks_exact(4).enumerate() {
            w[i].copy_from_slice(chunk);
        }
        for i in 4..44 {
            let mut temp = w[i - 1];
            if i % 4 == 0 {
                temp.rotate_left(1);
                for b in &mut temp {
                    *b = SBOX[*b as usize];
                }
                temp[0] ^= RCON[i / 4 - 1];
            }
            for j in 0..4 {
                w[i][j] = w[i - 4][j] ^ temp[j];
            }
        }
        let mut round_keys = [[0u8; 16]; 11];
        for (r, rk) in round_keys.iter_mut().enumerate() {
            for c in 0..4 {
                rk[4 * c..4 * c + 4].copy_from_slice(&w[4 * r + c]);
            }
        }
        let mut rk_words = [[0u32; 4]; 11];
        for (r, rk) in round_keys.iter().enumerate() {
            for c in 0..4 {
                rk_words[r][c] =
                    u32::from_be_bytes(rk[4 * c..4 * c + 4].try_into().expect("4 bytes"));
            }
        }
        Self { round_keys, rk_words }
    }

    /// Encrypts one 16-byte block in place (T-table fast path).
    pub fn encrypt_block(&self, block: &mut [u8; 16]) {
        let rk = &self.rk_words;
        let mut s0 = u32::from_be_bytes(block[0..4].try_into().expect("4 bytes")) ^ rk[0][0];
        let mut s1 = u32::from_be_bytes(block[4..8].try_into().expect("4 bytes")) ^ rk[0][1];
        let mut s2 = u32::from_be_bytes(block[8..12].try_into().expect("4 bytes")) ^ rk[0][2];
        let mut s3 = u32::from_be_bytes(block[12..16].try_into().expect("4 bytes")) ^ rk[0][3];

        for round in rk.iter().take(10).skip(1) {
            let t0 = TE[0][(s0 >> 24) as usize]
                ^ TE[1][((s1 >> 16) & 0xff) as usize]
                ^ TE[2][((s2 >> 8) & 0xff) as usize]
                ^ TE[3][(s3 & 0xff) as usize]
                ^ round[0];
            let t1 = TE[0][(s1 >> 24) as usize]
                ^ TE[1][((s2 >> 16) & 0xff) as usize]
                ^ TE[2][((s3 >> 8) & 0xff) as usize]
                ^ TE[3][(s0 & 0xff) as usize]
                ^ round[1];
            let t2 = TE[0][(s2 >> 24) as usize]
                ^ TE[1][((s3 >> 16) & 0xff) as usize]
                ^ TE[2][((s0 >> 8) & 0xff) as usize]
                ^ TE[3][(s1 & 0xff) as usize]
                ^ round[2];
            let t3 = TE[0][(s3 >> 24) as usize]
                ^ TE[1][((s0 >> 16) & 0xff) as usize]
                ^ TE[2][((s1 >> 8) & 0xff) as usize]
                ^ TE[3][(s2 & 0xff) as usize]
                ^ round[3];
            s0 = t0;
            s1 = t1;
            s2 = t2;
            s3 = t3;
        }

        // Final round: SubBytes + ShiftRows only.
        let sb = |w: u32, shift: u32| (SBOX[((w >> shift) & 0xff) as usize] as u32) << shift;
        let f0 = sb(s0, 24) | sb(s1, 16) | sb(s2, 8) | sb(s3, 0);
        let f1 = sb(s1, 24) | sb(s2, 16) | sb(s3, 8) | sb(s0, 0);
        let f2 = sb(s2, 24) | sb(s3, 16) | sb(s0, 8) | sb(s1, 0);
        let f3 = sb(s3, 24) | sb(s0, 16) | sb(s1, 8) | sb(s2, 0);
        block[0..4].copy_from_slice(&(f0 ^ rk[10][0]).to_be_bytes());
        block[4..8].copy_from_slice(&(f1 ^ rk[10][1]).to_be_bytes());
        block[8..12].copy_from_slice(&(f2 ^ rk[10][2]).to_be_bytes());
        block[12..16].copy_from_slice(&(f3 ^ rk[10][3]).to_be_bytes());
    }

    /// Encrypts one block with the straightforward (non-table) round
    /// transformation — kept as a cross-check oracle for the fast path.
    pub fn encrypt_block_slow(&self, block: &mut [u8; 16]) {
        add_round_key(block, &self.round_keys[0]);
        for round in 1..10 {
            sub_bytes(block);
            shift_rows(block);
            mix_columns(block);
            add_round_key(block, &self.round_keys[round]);
        }
        sub_bytes(block);
        shift_rows(block);
        add_round_key(block, &self.round_keys[10]);
    }

    /// Decrypts one 16-byte block in place.
    pub fn decrypt_block(&self, block: &mut [u8; 16]) {
        add_round_key(block, &self.round_keys[10]);
        for round in (1..10).rev() {
            inv_shift_rows(block);
            inv_sub_bytes(block);
            add_round_key(block, &self.round_keys[round]);
            inv_mix_columns(block);
        }
        inv_shift_rows(block);
        inv_sub_bytes(block);
        add_round_key(block, &self.round_keys[0]);
    }

    /// Encrypts `input` into a fresh block, leaving the input untouched.
    pub fn encrypt_to(&self, input: &[u8; 16]) -> [u8; 16] {
        let mut out = *input;
        self.encrypt_block(&mut out);
        out
    }
}

#[inline]
fn add_round_key(state: &mut [u8; 16], rk: &[u8; 16]) {
    for i in 0..16 {
        state[i] ^= rk[i];
    }
}

#[inline]
fn sub_bytes(state: &mut [u8; 16]) {
    for b in state.iter_mut() {
        *b = SBOX[*b as usize];
    }
}

#[inline]
fn inv_sub_bytes(state: &mut [u8; 16]) {
    for b in state.iter_mut() {
        *b = INV_SBOX[*b as usize];
    }
}

// The state is stored column-major: state[4*c + r] is row r, column c.

#[inline]
fn shift_rows(state: &mut [u8; 16]) {
    let s = *state;
    for r in 1..4 {
        for c in 0..4 {
            state[4 * c + r] = s[4 * ((c + r) % 4) + r];
        }
    }
}

#[inline]
fn inv_shift_rows(state: &mut [u8; 16]) {
    let s = *state;
    for r in 1..4 {
        for c in 0..4 {
            state[4 * ((c + r) % 4) + r] = s[4 * c + r];
        }
    }
}

#[inline]
fn mix_columns(state: &mut [u8; 16]) {
    for c in 0..4 {
        let col = [state[4 * c], state[4 * c + 1], state[4 * c + 2], state[4 * c + 3]];
        state[4 * c] = xtime(col[0]) ^ (xtime(col[1]) ^ col[1]) ^ col[2] ^ col[3];
        state[4 * c + 1] = col[0] ^ xtime(col[1]) ^ (xtime(col[2]) ^ col[2]) ^ col[3];
        state[4 * c + 2] = col[0] ^ col[1] ^ xtime(col[2]) ^ (xtime(col[3]) ^ col[3]);
        state[4 * c + 3] = (xtime(col[0]) ^ col[0]) ^ col[1] ^ col[2] ^ xtime(col[3]);
    }
}

#[inline]
fn inv_mix_columns(state: &mut [u8; 16]) {
    for c in 0..4 {
        let col = [state[4 * c], state[4 * c + 1], state[4 * c + 2], state[4 * c + 3]];
        state[4 * c] =
            gmul(col[0], 0x0e) ^ gmul(col[1], 0x0b) ^ gmul(col[2], 0x0d) ^ gmul(col[3], 0x09);
        state[4 * c + 1] =
            gmul(col[0], 0x09) ^ gmul(col[1], 0x0e) ^ gmul(col[2], 0x0b) ^ gmul(col[3], 0x0d);
        state[4 * c + 2] =
            gmul(col[0], 0x0d) ^ gmul(col[1], 0x09) ^ gmul(col[2], 0x0e) ^ gmul(col[3], 0x0b);
        state[4 * c + 3] =
            gmul(col[0], 0x0b) ^ gmul(col[1], 0x0d) ^ gmul(col[2], 0x09) ^ gmul(col[3], 0x0e);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// FIPS 197 Appendix B example.
    #[test]
    fn fips197_appendix_b() {
        let key = [
            0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6, 0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf,
            0x4f, 0x3c,
        ];
        let mut block = [
            0x32, 0x43, 0xf6, 0xa8, 0x88, 0x5a, 0x30, 0x8d, 0x31, 0x31, 0x98, 0xa2, 0xe0, 0x37,
            0x07, 0x34,
        ];
        let aes = Aes128::new(&key);
        aes.encrypt_block(&mut block);
        assert_eq!(
            block,
            [
                0x39, 0x25, 0x84, 0x1d, 0x02, 0xdc, 0x09, 0xfb, 0xdc, 0x11, 0x85, 0x97, 0x19, 0x6a,
                0x0b, 0x32
            ]
        );
        aes.decrypt_block(&mut block);
        assert_eq!(
            block,
            [
                0x32, 0x43, 0xf6, 0xa8, 0x88, 0x5a, 0x30, 0x8d, 0x31, 0x31, 0x98, 0xa2, 0xe0, 0x37,
                0x07, 0x34
            ]
        );
    }

    /// FIPS 197 Appendix C.1 (AES-128 known answer test).
    #[test]
    fn fips197_appendix_c1() {
        let key: [u8; 16] = core::array::from_fn(|i| i as u8);
        let mut block = [
            0x00, 0x11, 0x22, 0x33, 0x44, 0x55, 0x66, 0x77, 0x88, 0x99, 0xaa, 0xbb, 0xcc, 0xdd,
            0xee, 0xff,
        ];
        let aes = Aes128::new(&key);
        aes.encrypt_block(&mut block);
        assert_eq!(
            block,
            [
                0x69, 0xc4, 0xe0, 0xd8, 0x6a, 0x7b, 0x04, 0x30, 0xd8, 0xcd, 0xb7, 0x80, 0x70, 0xb4,
                0xc5, 0x5a
            ]
        );
    }

    #[test]
    fn encrypt_decrypt_roundtrip_random() {
        let mut seed = 0x1234_5678_u64;
        let mut next = || {
            seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (seed >> 33) as u8
        };
        for _ in 0..64 {
            let key: [u8; 16] = core::array::from_fn(|_| next());
            let plain: [u8; 16] = core::array::from_fn(|_| next());
            let aes = Aes128::new(&key);
            let mut block = plain;
            aes.encrypt_block(&mut block);
            assert_ne!(block, plain);
            aes.decrypt_block(&mut block);
            assert_eq!(block, plain);
        }
    }

    #[test]
    fn key_schedule_first_round_keys() {
        // FIPS 197 Appendix A.1: first expanded words for the sample key.
        let key = [
            0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6, 0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf,
            0x4f, 0x3c,
        ];
        let aes = Aes128::new(&key);
        assert_eq!(aes.round_keys[0], key);
        assert_eq!(
            aes.round_keys[1][..4],
            [0xa0, 0xfa, 0xfe, 0x17],
            "w[4] must match FIPS 197 A.1"
        );
    }

    #[test]
    fn inv_sbox_inverts_sbox() {
        for i in 0..=255u8 {
            assert_eq!(INV_SBOX[SBOX[i as usize] as usize], i);
        }
    }

    /// The T-table fast path must agree with the straightforward round
    /// transformation on random inputs.
    #[test]
    fn fast_path_matches_slow_path() {
        let mut seed = 0xfeed_beefu64;
        let mut next = || {
            seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (seed >> 33) as u8
        };
        for _ in 0..256 {
            let key: [u8; 16] = core::array::from_fn(|_| next());
            let plain: [u8; 16] = core::array::from_fn(|_| next());
            let aes = Aes128::new(&key);
            let mut fast = plain;
            let mut slow = plain;
            aes.encrypt_block(&mut fast);
            aes.encrypt_block_slow(&mut slow);
            assert_eq!(fast, slow);
        }
    }
}
